test/test_graphgen.ml: Alcotest Array Ds Graphgen Hashtbl List Printf QCheck2 Tutil
