test/test_bindings.ml: Alcotest Array Bindings Mpisim Serde Tutil
