test/test_extensions.ml: Alcotest Array Comm Ds Format Fun Int64 Kamping Kamping_plugins List Measurement Mpisim Nb_result Simnet Tutil
