test/test_properties.ml: Apps Array Comm Ds Fun Hashtbl Int64 Kamping Kamping_plugins List Mpisim QCheck2 Serde Tutil
