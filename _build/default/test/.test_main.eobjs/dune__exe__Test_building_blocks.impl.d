test/test_building_blocks.ml: Alcotest Array Comm Ds Kamping Kamping_plugins List Mpisim Printf QCheck2 Tutil
