test/test_serde.ml: Alcotest Archive Bytes Codec Hashtbl Int64 Json List Printf QCheck2 Serde Tutil
