test/test_cart.ml: Alcotest Array Cart Collectives Comm Datatype Errors Mpisim Op P2p Printf Tutil
