test/test_ds.ml: Alcotest Bitset Ds List QCheck2 Tutil Vec
