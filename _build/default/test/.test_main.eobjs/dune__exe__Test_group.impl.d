test/test_group.ml: Alcotest Array Collectives Comm Datatype Ds Errors Group Kamping Mpisim Op P2p Printf Simnet Tutil
