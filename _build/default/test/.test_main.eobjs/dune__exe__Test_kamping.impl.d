test/test_kamping.ml: Alcotest Array Assertions Comm Ds Flatten Format Fun Hashtbl Kamping List Mpisim Nb_result Option Printf Request_pool Resize_policy Serde String Tutil Type_traits
