test/tutil.ml: Alcotest Array Mpisim Printf QCheck2 QCheck_alcotest
