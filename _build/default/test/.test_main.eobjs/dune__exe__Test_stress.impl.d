test/test_stress.ml: Alcotest Apps Array Collectives Comm Datatype Ds Errors Kamping Kamping_plugins Mpisim Op Option P2p Request String Tutil
