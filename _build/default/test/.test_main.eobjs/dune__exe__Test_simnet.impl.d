test/test_simnet.ml: Alcotest Engine List Netmodel Option Pqueue QCheck2 Rng Simnet String Tutil
