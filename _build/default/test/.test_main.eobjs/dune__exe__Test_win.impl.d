test/test_win.ml: Alcotest Array Comm Datatype Errors Mpisim Op Tutil Win
