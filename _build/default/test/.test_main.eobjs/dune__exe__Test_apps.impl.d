test/test_apps.ml: Alcotest Apps Array Char Ds Float Graphgen Kamping List Mpisim Printf QCheck2 Queue Simnet String Tutil
