test/test_mpisim.ml: Alcotest Array Collectives Comm Datatype Ds Errors Fun List Mpisim Op P2p Printf Profiling QCheck2 Request Simnet Tutil
