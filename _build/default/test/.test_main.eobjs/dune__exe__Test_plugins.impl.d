test/test_plugins.ml: Alcotest Array Comm Ds Float Format Int64 Kamping Kamping_plugins List Mpisim Option Printf QCheck2 Simnet Tutil
