(* Unit and property tests for the container substrate. *)

open Ds

let test_vec_basic () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  Vec.push v 1;
  Vec.push v 2;
  Vec.push v 3;
  Alcotest.(check int) "length" 3 (Vec.length v);
  Alcotest.(check int) "get" 2 (Vec.get v 1);
  Alcotest.(check int) "pop" 3 (Vec.pop v);
  Alcotest.(check int) "length after pop" 2 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 2));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set: index out of bounds") (fun () ->
      Vec.set v (-1) 0);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty vector") (fun () ->
      ignore (Vec.pop (Vec.create ())))

let test_vec_resize () =
  let v = Vec.make 2 7 in
  Vec.resize v 5 9;
  Alcotest.(check (list int)) "grown" [ 7; 7; 9; 9; 9 ] (Vec.to_list v);
  Vec.resize v 1 0;
  Alcotest.(check (list int)) "shrunk" [ 7 ] (Vec.to_list v);
  Vec.ensure_length v 3 4;
  Alcotest.(check int) "ensured" 3 (Vec.length v);
  Vec.ensure_length v 2 4;
  Alcotest.(check int) "ensure never shrinks" 3 (Vec.length v)

let test_vec_reserve_empty () =
  (* reserve on an empty vector must apply once elements arrive *)
  let v = Vec.create () in
  Vec.reserve v 100;
  Vec.push v 1;
  Alcotest.(check bool) "capacity honored" true (Vec.capacity v >= 100)

let test_vec_blit_sub () =
  let a = Vec.of_list [ 1; 2; 3; 4; 5 ] in
  let b = Vec.make 5 0 in
  Vec.blit a 1 b 2 3;
  Alcotest.(check (list int)) "blit" [ 0; 0; 2; 3; 4 ] (Vec.to_list b);
  Alcotest.(check (list int)) "sub" [ 2; 3 ] (Vec.to_list (Vec.sub a 1 2))

let test_vec_append_iterate () =
  let a = Vec.of_list [ 1; 2 ] in
  Vec.append a (Vec.of_list [ 3 ]);
  Vec.append_array a [| 4; 5 |];
  Alcotest.(check (list int)) "append" [ 1; 2; 3; 4; 5 ] (Vec.to_list a);
  Alcotest.(check int) "fold" 15 (Vec.fold_left ( + ) 0 a);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 4) a);
  Alcotest.(check bool) "for_all" true (Vec.for_all (fun x -> x > 0) a);
  Alcotest.(check (list int)) "map" [ 2; 4; 6; 8; 10 ] (Vec.to_list (Vec.map (fun x -> 2 * x) a))

let test_vec_sort_slack () =
  (* sort must ignore slack capacity beyond the length *)
  let v = Vec.create () in
  List.iter (Vec.push v) [ 5; 1; 9; 3 ];
  ignore (Vec.pop v);
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 5; 9 ] (Vec.to_list v)

let prop_vec_roundtrip =
  Tutil.qtest "vec of_list/to_list roundtrip" QCheck2.Gen.(list int) (fun l ->
      Ds.Vec.to_list (Ds.Vec.of_list l) = l)

let prop_vec_push_matches_list =
  Tutil.qtest "vec push sequence equals list" QCheck2.Gen.(list int) (fun l ->
      let v = Ds.Vec.create () in
      List.iter (Ds.Vec.push v) l;
      Ds.Vec.to_list v = l)

let prop_vec_sort =
  Tutil.qtest "vec sort equals list sort" QCheck2.Gen.(list int) (fun l ->
      let v = Ds.Vec.of_list l in
      Ds.Vec.sort compare v;
      Ds.Vec.to_list v = List.sort compare l)

let test_bitset_basic () =
  let b = Bitset.create 130 in
  Bitset.set b 0;
  Bitset.set b 64;
  Bitset.set b 129;
  Alcotest.(check int) "count" 3 (Bitset.count b);
  Alcotest.(check bool) "mem" true (Bitset.mem b 64);
  Bitset.clear b 64;
  Alcotest.(check bool) "cleared" false (Bitset.mem b 64);
  let seen = ref [] in
  Bitset.iter_set (fun i -> seen := i :: !seen) b;
  Alcotest.(check (list int)) "iter_set" [ 0; 129 ] (List.rev !seen)

let test_bitset_fill () =
  let b = Bitset.create 70 in
  Bitset.fill b;
  Alcotest.(check int) "fill count" 70 (Bitset.count b);
  Bitset.reset b;
  Alcotest.(check int) "reset count" 0 (Bitset.count b)

let test_bitset_copy_equal () =
  let b = Bitset.create 10 in
  Bitset.set b 3;
  let c = Bitset.copy b in
  Alcotest.(check bool) "copies equal" true (Bitset.equal b c);
  Bitset.set c 4;
  Alcotest.(check bool) "diverged" false (Bitset.equal b c)

let prop_bitset_set_mem =
  Tutil.qtest "bitset set/mem" QCheck2.Gen.(list (int_bound 199)) (fun idxs ->
      let b = Ds.Bitset.create 200 in
      List.iter (Ds.Bitset.set b) idxs;
      List.for_all (Ds.Bitset.mem b) idxs
      && Ds.Bitset.count b = List.length (List.sort_uniq compare idxs))

let suite =
  [
    Alcotest.test_case "vec basic" `Quick test_vec_basic;
    Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
    Alcotest.test_case "vec resize" `Quick test_vec_resize;
    Alcotest.test_case "vec reserve on empty" `Quick test_vec_reserve_empty;
    Alcotest.test_case "vec blit/sub" `Quick test_vec_blit_sub;
    Alcotest.test_case "vec append/iterate" `Quick test_vec_append_iterate;
    Alcotest.test_case "vec sort with slack" `Quick test_vec_sort_slack;
    prop_vec_roundtrip;
    prop_vec_push_matches_list;
    prop_vec_sort;
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset fill/reset" `Quick test_bitset_fill;
    Alcotest.test_case "bitset copy/equal" `Quick test_bitset_copy_equal;
    prop_bitset_set_mem;
  ]
