(* Shared helpers for the test suites. *)

let run ~ranks f = Mpisim.Mpi.run_exn ~ranks f

let run_full ?net ?failures ~ranks f = Mpisim.Mpi.run ?net ?failures ~ranks f

let int_array = Alcotest.(array int)

let check_all_ranks name expected results =
  Array.iteri (fun r actual -> Alcotest.(check bool) (Printf.sprintf "%s@rank%d" name r) true (expected r actual)) results

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
