(* Stress and corner-case tests: large fiber counts, nested communicator
   management, repeated failure recovery, derived datatypes on the wire,
   and receive-capacity semantics. *)

open Mpisim
module K = Kamping.Comm
module V = Ds.Vec

let run = Tutil.run

let test_many_ranks () =
  (* 512 fibers through a full allreduce: exercises the event engine at a
     scale well above the benchmarks *)
  let results =
    run ~ranks:512 (fun comm ->
        let out = Array.make 1 0 in
        Collectives.allreduce comm Datatype.int Op.int_sum ~sendbuf:[| 1 |] ~recvbuf:out ~count:1;
        out.(0))
  in
  Array.iter (fun v -> Alcotest.(check int) "512-rank allreduce" 512 v) results

let test_nested_splits () =
  (* split a split of a split; leaf communicators stay consistent *)
  ignore
    (run ~ranks:12 (fun comm ->
         let r = Comm.rank comm in
         let half = Option.get (Collectives.split comm ~color:(r / 6) ~key:r) in
         let quarter = Option.get (Collectives.split half ~color:(Comm.rank half / 3) ~key:r) in
         let leaf = Option.get (Collectives.split quarter ~color:(Comm.rank quarter mod 3) ~key:r) in
         Alcotest.(check int) "leaf size" 1 (Comm.size leaf);
         let out = Array.make (Comm.size quarter) (-1) in
         Collectives.allgather quarter Datatype.int ~sendbuf:[| r |] ~recvbuf:out ~count:1;
         let base = (r / 3) * 3 in
         Alcotest.(check Tutil.int_array) "quarter members" [| base; base + 1; base + 2 |] out))

let test_shrink_of_shrink () =
  (* two failures, two recoveries *)
  let res =
    Tutil.run_full ~ranks:6
      ~failures:[ (20.0e-6, 1); (200.0e-6, 4) ]
      (fun raw ->
        let comm = ref (K.wrap raw) in
        let recoveries = ref 0 in
        let done_ = ref 0 in
        while !done_ < 6 && !recoveries < 4 do
          K.compute !comm 40.0e-6;
          try
            let (_ : int) = K.allreduce_single !comm Datatype.int Op.int_sum 1 in
            incr done_
          with Errors.Process_failed _ | Errors.Comm_revoked ->
            if not (Kamping_plugins.Ulfm.is_revoked !comm) then Kamping_plugins.Ulfm.revoke !comm;
            comm := Kamping_plugins.Ulfm.shrink !comm;
            incr recoveries;
            done_ := K.allreduce_single !comm Datatype.int Op.int_min !done_
        done;
        (Comm.size (K.raw !comm), !done_, !recoveries))
  in
  Array.iteri
    (fun r outcome ->
      if r <> 1 && r <> 4 then begin
        match outcome with
        | Ok (size, done_, recoveries) ->
            Alcotest.(check int) "final size" 4 size;
            Alcotest.(check int) "rounds finished" 6 done_;
            Alcotest.(check int) "two recoveries" 2 recoveries
        | Error e -> raise e
      end)
    res.Mpisim.Mpi.results

let test_contiguous_datatype_on_wire () =
  (* fixed-size blocks as single elements (MPI_Type_contiguous) *)
  let dt = Datatype.contiguous Datatype.int 3 in
  ignore
    (run ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then
           P2p.send comm dt [| [| 1; 2; 3 |]; [| 4; 5; 6 |] |] ~dst:1 ~tag:0
         else begin
           let buf = [| [| 0; 0; 0 |]; [| 0; 0; 0 |] |] in
           let st = P2p.recv comm dt buf ~src:0 ~tag:0 in
           Alcotest.(check int) "two blocks" 2 st.Request.count;
           Alcotest.(check Tutil.int_array) "block 0" [| 1; 2; 3 |] buf.(0);
           Alcotest.(check Tutil.int_array) "block 1" [| 4; 5; 6 |] buf.(1)
         end))

let test_struct_type_through_collective () =
  let dt : (int * float) Datatype.t =
    Kamping.Type_traits.struct_type ~default:(0, 0.0) ~name:"kv"
      Kamping.Type_traits.[ Int "k"; Float "v" ]
  in
  let results =
    run ~ranks:4 (fun raw ->
        let comm = K.wrap raw in
        let r = K.rank comm in
        V.to_list (K.allgather comm dt ~send_buf:(V.of_list [ (r, float_of_int r /. 2.0) ])))
  in
  Array.iter
    (fun got ->
      Alcotest.(check bool) "struct payload intact" true
        (got = [ (0, 0.0); (1, 0.5); (2, 1.0); (3, 1.5) ]))
    results

let test_recv_capacity_upper_bound () =
  (* ?count is a capacity: the vector shrinks to the actual size *)
  ignore
    (run ~ranks:2 (fun raw ->
         let comm = K.wrap raw in
         if K.rank comm = 0 then K.send comm Datatype.int ~send_buf:(V.of_list [ 1; 2 ]) ~dst:1
         else begin
           let got = K.recv ~count:10 comm Datatype.int ~src:0 in
           Alcotest.(check (list int)) "shrunk to actual" [ 1; 2 ] (V.to_list got)
         end))

let test_request_wait_any () =
  ignore
    (run ~ranks:3 (fun comm ->
         let r = Comm.rank comm in
         if r = 0 then begin
           (* two pending receives; rank 2 answers first (rank 1 is slow) *)
           let b1 = [| 0 |] and b2 = [| 0 |] in
           let r1 = P2p.irecv comm Datatype.int b1 ~src:1 ~tag:1 in
           let r2 = P2p.irecv comm Datatype.int b2 ~src:2 ~tag:2 in
           let idx, st = Request.wait_any [ r1; r2 ] in
           Alcotest.(check int) "fast sender completes first" 1 idx;
           Alcotest.(check int) "its source" 2 st.Request.source;
           ignore (Request.wait r1);
           Alcotest.(check int) "slow payload" 11 b1.(0);
           Alcotest.(check int) "fast payload" 22 b2.(0)
         end
         else if r = 1 then begin
           Mpisim.Comm.compute comm 100.0e-6;
           P2p.send comm Datatype.int [| 11 |] ~dst:0 ~tag:1
         end
         else P2p.send comm Datatype.int [| 22 |] ~dst:0 ~tag:2))

let test_deep_recursion_dcx_scale () =
  (* a longer unary-ish text: maximal recursion depth for DCX *)
  let text = String.make 1500 'a' in
  let n = String.length text in
  let results =
    run ~ranks:8 (fun raw ->
        let comm = K.wrap raw in
        let first, local_n = Apps.Dist_util.block_of ~n ~p:(K.size comm) (K.rank comm) in
        let local = Array.init local_n (fun i -> text.[first + i]) in
        Apps.Dcx.build comm ~text:local ~global_n:n)
  in
  let sa = Array.concat (Array.to_list results) in
  (* suffixes of a^n sort by decreasing start position *)
  Alcotest.(check Tutil.int_array) "unary text" (Array.init n (fun i -> n - 1 - i)) sa

let suite =
  [
    Alcotest.test_case "512-rank allreduce" `Quick test_many_ranks;
    Alcotest.test_case "nested splits" `Quick test_nested_splits;
    Alcotest.test_case "shrink of shrink (two failures)" `Quick test_shrink_of_shrink;
    Alcotest.test_case "contiguous datatype on the wire" `Quick test_contiguous_datatype_on_wire;
    Alcotest.test_case "struct type through a collective" `Quick test_struct_type_through_collective;
    Alcotest.test_case "recv capacity upper bound" `Quick test_recv_capacity_upper_bound;
    Alcotest.test_case "request wait_any" `Quick test_request_wait_any;
    Alcotest.test_case "dcx on a unary text (max recursion)" `Quick test_deep_recursion_dcx_scale;
  ]
