(* Application-level tests: every binding variant of sample sort and BFS
   must compute the same (correct) result; the suffix array must match a
   naive reference; the three label-propagation variants must agree; the
   RAxML layers must be equivalent. *)

module G = Graphgen.Distgraph
module Gen = Graphgen.Generators
module V = Ds.Vec

(* ---------- sample sort ---------- *)

let ss_variants =
  [
    ("mpi", Apps.Ss_mpi.sort);
    ("kamping", Apps.Ss_kamping.sort);
    ("boost", Apps.Ss_boost.sort);
    ("rwth", Apps.Ss_rwth.sort);
    ("mpl", Apps.Ss_mpl.sort);
  ]

let run_sample_sort sorter ~p ~n_per_rank =
  Tutil.run ~ranks:p (fun comm ->
      let data =
        Apps.Ss_common.generate_input ~rank:(Mpisim.Comm.rank comm) ~n_per_rank ~seed:3
      in
      sorter comm data)

let test_sample_sort_variants_agree () =
  let p = 5 and n_per_rank = 200 in
  let reference =
    let all =
      List.init p (fun r -> Apps.Ss_common.generate_input ~rank:r ~n_per_rank ~seed:3)
      |> Array.concat
    in
    Array.sort compare all;
    all
  in
  List.iter
    (fun (name, sorter) ->
      let results = run_sample_sort sorter ~p ~n_per_rank in
      let flat = Array.concat (Array.to_list results) in
      Alcotest.(check int) (name ^ ": no elements lost") (p * n_per_rank) (Array.length flat);
      Alcotest.(check bool) (name ^ ": globally sorted output") true (flat = reference))
    ss_variants

let test_sample_sort_various_p () =
  List.iter
    (fun p ->
      let results = run_sample_sort Apps.Ss_kamping.sort ~p ~n_per_rank:64 in
      let flat = Array.concat (Array.to_list results) in
      let sorted = Array.copy flat in
      Array.sort compare sorted;
      Alcotest.(check bool) (Printf.sprintf "sorted p=%d" p) true (flat = sorted))
    [ 1; 2; 3; 8 ]

(* ---------- BFS ---------- *)

let bfs_variants =
  [
    ("mpi", Apps.Bfs_mpi.bfs);
    ("kamping", Apps.Bfs_kamping.bfs);
    ("boost", Apps.Bfs_boost.bfs);
    ("rwth", Apps.Bfs_rwth.bfs);
    ("mpl", Apps.Bfs_mpl.bfs);
    ("sparse", Apps.Bfs_strategies.bfs_sparse);
    ("grid", Apps.Bfs_strategies.bfs_grid);
    ("neighbor", Apps.Bfs_strategies.bfs_neighbor);
    ("neighbor-dyn", Apps.Bfs_strategies.bfs_neighbor_dynamic);
  ]

(* Sequential reference BFS on the full edge list. *)
let reference_bfs ~n edges src =
  let adj = Array.make n [] in
  List.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) edges;
  let dist = Array.make n Apps.Bfs_common.undef in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if dist.(v) = Apps.Bfs_common.undef then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v q
        end)
      adj.(u)
  done;
  dist

let gather_edges family ~p ~n ~d =
  List.init p (fun rank -> Gen.generate family ~rank ~comm_size:p ~global_n:n ~avg_degree:d ~seed:11)
  |> List.concat_map (fun g ->
         let acc = ref [] in
         for i = 0 to g.G.local_n - 1 do
           G.iter_neighbors g i (fun u -> acc := (G.global_of_local g i, u) :: !acc)
         done;
         !acc)

let run_bfs variant family ~p ~n ~d ~src =
  Tutil.run ~ranks:p (fun comm ->
      let graph =
        Gen.generate family ~rank:(Mpisim.Comm.rank comm) ~comm_size:p ~global_n:n ~avg_degree:d
          ~seed:11
      in
      variant comm graph ~src)

let test_bfs_variants_agree () =
  let p = 4 and n = 120 and d = 3 and src = 7 in
  List.iter
    (fun family ->
      let expected = reference_bfs ~n (gather_edges family ~p ~n ~d) src in
      List.iter
        (fun (name, variant) ->
          let results = run_bfs variant family ~p ~n ~d ~src in
          let flat = Array.concat (Array.to_list results) in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s matches reference" name (Gen.family_name family))
            true (flat = expected))
        bfs_variants)
    [ Gen.Erdos_renyi; Gen.Rgg2d; Gen.Rhg ]

let test_bfs_unreachable () =
  (* a graph with no edges: only the source is reached *)
  let p = 3 and n = 30 in
  let results =
    Tutil.run ~ranks:p (fun comm ->
        let edges = V.create () in
        let graph = G.of_edges ~comm_size:p ~rank:(Mpisim.Comm.rank comm) ~global_n:n edges in
        Apps.Bfs_kamping.bfs comm graph ~src:5)
  in
  let flat = Array.concat (Array.to_list results) in
  Array.iteri
    (fun v d ->
      if v = 5 then Alcotest.(check int) "source" 0 d
      else Alcotest.(check int) "unreachable" Apps.Bfs_common.undef d)
    flat

let test_bfs_various_p () =
  let n = 90 and d = 4 and src = 0 in
  let family = Gen.Erdos_renyi in
  let expected = reference_bfs ~n (gather_edges family ~p:1 ~n ~d) src in
  List.iter
    (fun p ->
      let results = run_bfs Apps.Bfs_kamping.bfs family ~p ~n ~d ~src in
      let flat = Array.concat (Array.to_list results) in
      Alcotest.(check bool) (Printf.sprintf "p=%d" p) true (flat = expected))
    [ 1; 2; 5; 9 ]

(* ---------- suffix array ---------- *)

let run_suffix_array text p =
  let n = String.length text in
  let results =
    Tutil.run ~ranks:p (fun comm ->
        let first, local_n =
          G.block_range ~global_n:n ~comm_size:(Mpisim.Comm.size comm) (Mpisim.Comm.rank comm)
        in
        let local = Array.init local_n (fun i -> text.[first + i]) in
        Apps.Suffix_array.build comm ~text:local ~global_n:n)
  in
  Array.concat (Array.to_list results)

let test_suffix_array_known () =
  (* banana: SA = [5;3;1;0;4;2] *)
  let sa = run_suffix_array "banana" 2 in
  Alcotest.(check Tutil.int_array) "banana" [| 5; 3; 1; 0; 4; 2 |] sa

let test_suffix_array_matches_naive () =
  List.iter
    (fun (text, p) ->
      let expected = Apps.Suffix_array.naive_suffix_array text in
      let got = run_suffix_array text p in
      Alcotest.(check Tutil.int_array) (Printf.sprintf "%S p=%d" text p) expected got)
    [
      ("mississippi", 3);
      ("aaaaaaaa", 4);
      ("abcabcabc", 2);
      ("z", 1);
      ("ababababab", 5);
      ("thequickbrownfoxjumpsoverthelazydog", 4);
    ]

let prop_suffix_array =
  Tutil.qtest ~count:15 "suffix array equals naive reference"
    QCheck2.Gen.(pair (string_size ~gen:(char_range 'a' 'c') (int_range 1 40)) (int_range 1 6))
    (fun (text, p) ->
      run_suffix_array text p = Apps.Suffix_array.naive_suffix_array text)

(* ---------- DCX ---------- *)

let run_dcx text p =
  let n = String.length text in
  let results =
    Tutil.run ~ranks:p (fun raw ->
        let comm = Kamping.Comm.wrap raw in
        let first, local_n =
          Apps.Dist_util.block_of ~n ~p:(Kamping.Comm.size comm) (Kamping.Comm.rank comm)
        in
        let local = Array.init local_n (fun i -> text.[first + i]) in
        Apps.Dcx.build comm ~text:local ~global_n:n)
  in
  Array.concat (Array.to_list results)

let test_dcx_known () =
  Alcotest.(check Tutil.int_array) "banana" [| 5; 3; 1; 0; 4; 2 |] (run_dcx "banana" 2)

let test_dcx_matches_naive () =
  List.iter
    (fun (text, p) ->
      Alcotest.(check Tutil.int_array)
        (Printf.sprintf "%S p=%d" text p)
        (Apps.Suffix_array.naive_suffix_array text)
        (run_dcx text p))
    [ ("mississippi", 3); ("aaaaaaaa", 4); ("abcabcabc", 2); ("z", 1); ("abracadabra", 5) ]

let test_dcx_recursion_depth () =
  (* long low-entropy text: forces several recursion levels past the
     sequential base case *)
  let rng = Simnet.Rng.create 9L in
  let text = String.init 700 (fun _ -> Char.chr (97 + Simnet.Rng.int rng 2)) in
  let expected = Apps.Suffix_array.naive_suffix_array text in
  List.iter
    (fun p ->
      Alcotest.(check Tutil.int_array) (Printf.sprintf "n=700 p=%d" p) expected (run_dcx text p))
    [ 1; 5; 13 ]

let test_dcx_agrees_with_prefix_doubling () =
  let rng = Simnet.Rng.create 123L in
  let text = String.init 300 (fun _ -> Char.chr (97 + Simnet.Rng.int rng 4)) in
  Alcotest.(check Tutil.int_array) "two algorithms agree" (run_suffix_array text 6) (run_dcx text 6)

let prop_dcx =
  Tutil.qtest ~count:10 "dcx equals naive reference"
    QCheck2.Gen.(pair (string_size ~gen:(char_range 'a' 'b') (int_range 1 60)) (int_range 1 5))
    (fun (text, p) -> run_dcx text p = Apps.Suffix_array.naive_suffix_array text)

(* ---------- label propagation ---------- *)

let run_lp variant ~p ~n ~d =
  Tutil.run ~ranks:p (fun comm ->
      let graph =
        Gen.generate Gen.Rgg2d ~rank:(Mpisim.Comm.rank comm) ~comm_size:p ~global_n:n
          ~avg_degree:d ~seed:23
      in
      variant comm graph ~iterations:3 ~max_cluster_size:(n / 4))

let test_lp_variants_agree () =
  let p = 4 and n = 160 and d = 6 in
  let base = run_lp Apps.Lp_mpi.run ~p ~n ~d in
  let kamping = run_lp Apps.Lp_kamping.run ~p ~n ~d in
  let custom = run_lp Apps.Lp_custom.run ~p ~n ~d in
  Alcotest.(check bool) "kamping = mpi" true (kamping = base);
  Alcotest.(check bool) "custom = mpi" true (custom = base);
  (* labels actually coarsened: fewer distinct labels than vertices *)
  let flat = Array.concat (Array.to_list base) in
  let distinct = List.length (List.sort_uniq compare (Array.to_list flat)) in
  Alcotest.(check bool)
    (Printf.sprintf "clustering happened (%d labels for %d vertices)" distinct n)
    true
    (distinct < n / 2)

(* ---------- RAxML layer ---------- *)

let test_raxml_layers_equivalent () =
  let run variant =
    Tutil.run ~ranks:4 (fun comm -> Apps.Raxml_layer.search ~variant ~iterations:30 ~taxa:50 comm)
  in
  let before = run `Before and after = run `After in
  Array.iteri
    (fun r (b : Apps.Raxml_layer.stats) ->
      let a = after.(r) in
      Alcotest.(check (float 0.0)) "same likelihood" b.Apps.Raxml_layer.final_logl
        a.Apps.Raxml_layer.final_logl;
      (* "the mean running times are less than one standard deviation
         apart": here, within 2% of simulated time *)
      let rel =
        Float.abs (b.Apps.Raxml_layer.sim_seconds -. a.Apps.Raxml_layer.sim_seconds)
        /. b.Apps.Raxml_layer.sim_seconds
      in
      Alcotest.(check bool)
        (Printf.sprintf "runtime parity at rank %d (delta %.3f%%)" r (100.0 *. rel))
        true (rel < 0.02))
    before

let suite =
  [
    Alcotest.test_case "sample sort: all bindings agree" `Quick test_sample_sort_variants_agree;
    Alcotest.test_case "sample sort: various p" `Quick test_sample_sort_various_p;
    Alcotest.test_case "bfs: all variants match reference" `Quick test_bfs_variants_agree;
    Alcotest.test_case "bfs: unreachable vertices" `Quick test_bfs_unreachable;
    Alcotest.test_case "bfs: various p" `Quick test_bfs_various_p;
    Alcotest.test_case "suffix array: banana" `Quick test_suffix_array_known;
    Alcotest.test_case "suffix array: naive reference" `Quick test_suffix_array_matches_naive;
    prop_suffix_array;
    Alcotest.test_case "dcx: banana" `Quick test_dcx_known;
    Alcotest.test_case "dcx: naive reference" `Quick test_dcx_matches_naive;
    Alcotest.test_case "dcx: deep recursion" `Quick test_dcx_recursion_depth;
    Alcotest.test_case "dcx: agrees with prefix doubling" `Quick test_dcx_agrees_with_prefix_doubling;
    prop_dcx;
    Alcotest.test_case "label propagation: variants agree" `Quick test_lp_variants_agree;
    Alcotest.test_case "raxml: layers equivalent" `Quick test_raxml_layers_equivalent;
  ]
