(* Direct unit tests for the competing-binding emulation layers (they are
   also exercised end-to-end through the application variants). *)

module D = Mpisim.Datatype
module B = Bindings.Boost_mpi
module M = Bindings.Mpl
module R = Bindings.Rwth_mpi

let run = Tutil.run

(* ---------- Boost.MPI style ---------- *)

let test_boost_all_gather () =
  ignore
    (run ~ranks:4 (fun raw ->
         let comm = B.wrap raw in
         let got = B.all_gather comm D.int (B.rank comm * 3) in
         Alcotest.(check Tutil.int_array) "single values" [| 0; 3; 6; 9 |] got;
         let blocks = B.all_gather_block comm D.int [| B.rank comm; -1 |] in
         Alcotest.(check Tutil.int_array) "blocks" [| 0; -1; 1; -1; 2; -1; 3; -1 |] blocks))

let test_boost_all_gatherv_needs_user_counts () =
  (* the design trait: Boost computes displacements but the user must have
     exchanged the counts *)
  ignore
    (run ~ranks:3 (fun raw ->
         let comm = B.wrap raw in
         let r = B.rank comm in
         let sizes = B.all_gather comm D.int (r + 1) in
         let got = B.all_gatherv comm D.int (Array.make (r + 1) r) sizes in
         Alcotest.(check Tutil.int_array) "concatenated" [| 0; 1; 1; 2; 2; 2 |] got))

let test_boost_container_send_resizes () =
  (* Boost's hidden allocation: the receiver learns the size from a header *)
  ignore
    (run ~ranks:2 (fun raw ->
         let comm = B.wrap raw in
         if B.rank comm = 0 then B.send comm D.int [| 9; 8; 7 |] ~dst:1 ~tag:3
         else begin
           let got = B.recv comm D.int ~src:0 ~tag:3 in
           Alcotest.(check Tutil.int_array) "auto-sized" [| 9; 8; 7 |] got
         end))

let test_boost_implicit_serialization () =
  ignore
    (run ~ranks:2 (fun raw ->
         let comm = B.wrap raw in
         let codec = Serde.Codec.(list string) in
         if B.rank comm = 0 then B.send_serialized comm codec [ "a"; "bb" ] ~dst:1 ~tag:0
         else
           Alcotest.(check (list string)) "serialized payload" [ "a"; "bb" ]
             (B.recv_serialized comm codec ~src:0 ~tag:0)))

let test_boost_scatter_gather () =
  ignore
    (run ~ranks:3 (fun raw ->
         let comm = B.wrap raw in
         let r = B.rank comm in
         let mine = B.scatter comm D.int (if r = 1 then Some [| 10; 11; 12 |] else None) 1 in
         Alcotest.(check int) "scattered" (10 + r) mine;
         let all = B.gather comm D.int (mine * 2) 0 in
         if r = 0 then Alcotest.(check Tutil.int_array) "gathered" [| 20; 22; 24 |] all))

(* ---------- MPL style ---------- *)

let test_mpl_layouts () =
  let l = M.contiguous_layout ~displ:3 ~count:5 () in
  Alcotest.(check int) "count" 5 (M.layout_count l);
  Alcotest.(check int) "displ" 3 (M.layout_displ l);
  Alcotest.(check int) "empty" 0 (M.layout_count M.empty_layout)

let test_mpl_alltoallv_uses_alltoallw () =
  (* the defining behavior: MPL's v-collectives take the Alltoallw path *)
  let res =
    Tutil.run_full ~ranks:3 (fun raw ->
        let comm = M.wrap raw in
        let p = M.size comm in
        let send_layouts = Array.init p (fun d -> M.contiguous_layout ~displ:d ~count:1 ()) in
        let recv_layouts = Array.init p (fun s -> M.contiguous_layout ~displ:s ~count:1 ()) in
        let sendbuf = Array.init p (fun d -> (M.rank comm * 10) + d) in
        let recvbuf = Array.make p (-1) in
        M.alltoallv comm D.int sendbuf send_layouts recvbuf recv_layouts;
        recvbuf)
  in
  Array.iteri
    (fun r row ->
      match row with
      | Ok row ->
          Alcotest.(check Tutil.int_array) "transport correct" (Array.init 3 (fun s -> (s * 10) + r)) row
      | Error e -> raise e)
    res.Mpisim.Mpi.results;
  Alcotest.(check int) "Alltoallw on the wire" 3
    (Mpisim.Profiling.calls_of "MPI_Alltoallw" res.Mpisim.Mpi.profile);
  Alcotest.(check int) "no Alltoallv issued" 0
    (Mpisim.Profiling.calls_of "MPI_Alltoallv" res.Mpisim.Mpi.profile)

let test_mpl_allgatherv_via_alltoallw () =
  let res =
    Tutil.run_full ~ranks:4 (fun raw ->
        let comm = M.wrap raw in
        let r = M.rank comm in
        let displs = [| 0; 1; 3; 6 |] in
        let recv_layouts =
          Array.init 4 (fun s -> M.contiguous_layout ~displ:displs.(s) ~count:(s + 1) ())
        in
        let recvbuf = Array.make 10 (-1) in
        M.allgatherv comm D.int (Array.make (r + 1) r)
          (M.contiguous_layout ~count:(r + 1) ())
          recvbuf recv_layouts;
        recvbuf)
  in
  let expected = [| 0; 1; 1; 2; 2; 2; 3; 3; 3; 3 |] in
  Array.iter
    (function
      | Ok row -> Alcotest.(check Tutil.int_array) "gathered" expected row
      | Error e -> raise e)
    res.Mpisim.Mpi.results;
  Alcotest.(check int) "rides Alltoallw" 4
    (Mpisim.Profiling.calls_of "MPI_Alltoallw" res.Mpisim.Mpi.profile)

(* ---------- RWTH style ---------- *)

let test_rwth_allgather_resizes () =
  ignore
    (run ~ranks:3 (fun raw ->
         let comm = R.wrap raw in
         let got = R.allgather comm D.int [| R.rank comm |] in
         Alcotest.(check Tutil.int_array) "resized result" [| 0; 1; 2 |] got))

let test_rwth_inplace_autocounts () =
  (* the only overload with internal count gathering (paper footnote 2) *)
  ignore
    (run ~ranks:3 (fun raw ->
         let comm = R.wrap raw in
         let r = R.rank comm in
         (* data must already sit at the right offset *)
         let displs = [| 0; 1; 3 |] in
         let buf = Array.make 6 (-1) in
         for i = 0 to r do
           buf.(displs.(r) + i) <- r
         done;
         R.allgatherv_inplace comm D.int buf ~my_count:(r + 1);
         Alcotest.(check Tutil.int_array) "in-place gathered" [| 0; 1; 1; 2; 2; 2 |] buf))

let test_rwth_allgatherv_user_counts () =
  ignore
    (run ~ranks:3 (fun raw ->
         let comm = R.wrap raw in
         let r = R.rank comm in
         let got = R.allgatherv comm D.int (Array.make (r + 1) (r * 5)) ~rcounts:[| 1; 2; 3 |] in
         Alcotest.(check Tutil.int_array) "gathered" [| 0; 5; 5; 10; 10; 10 |] got))

let suite =
  [
    Alcotest.test_case "boost: all_gather" `Quick test_boost_all_gather;
    Alcotest.test_case "boost: all_gatherv needs user counts" `Quick
      test_boost_all_gatherv_needs_user_counts;
    Alcotest.test_case "boost: container send auto-resizes" `Quick test_boost_container_send_resizes;
    Alcotest.test_case "boost: implicit serialization" `Quick test_boost_implicit_serialization;
    Alcotest.test_case "boost: scatter/gather" `Quick test_boost_scatter_gather;
    Alcotest.test_case "mpl: layouts" `Quick test_mpl_layouts;
    Alcotest.test_case "mpl: alltoallv rides Alltoallw" `Quick test_mpl_alltoallv_uses_alltoallw;
    Alcotest.test_case "mpl: allgatherv rides Alltoallw" `Quick test_mpl_allgatherv_via_alltoallw;
    Alcotest.test_case "rwth: allgather resizes" `Quick test_rwth_allgather_resizes;
    Alcotest.test_case "rwth: in-place auto counts" `Quick test_rwth_inplace_autocounts;
    Alcotest.test_case "rwth: allgatherv user counts" `Quick test_rwth_allgatherv_user_counts;
  ]
