(* Tests for the KaMPIng layer: named-parameter defaults, out-parameters,
   resize policies, in-place calls, zero-overhead (via the profiling
   interface, as in paper Sec. III-H), non-blocking safety, request pools,
   type traits, serialization and assertions. *)

open Kamping
module V = Ds.Vec
module D = Mpisim.Datatype

let run = Tutil.run
let vec_int = Alcotest.testable (Ds.Vec.pp Format.pp_print_int) (Ds.Vec.equal ( = ))

let wrapped ~ranks f = run ~ranks (fun raw -> f (Comm.wrap raw))

(* ---------- allgatherv: the paper's running example ---------- *)

let test_allgatherv_defaults () =
  let results =
    wrapped ~ranks:4 (fun comm ->
        let r = Comm.rank comm in
        let v = V.init (r + 1) (fun i -> (r * 10) + i) in
        (* Fig. 1 (1): one-liner with all defaults *)
        (Comm.allgatherv comm D.int ~send_buf:v).Comm.recv_buf)
  in
  let expected = V.of_list [ 0; 10; 11; 20; 21; 22; 30; 31; 32; 33 ] in
  Array.iter (fun got -> Alcotest.check vec_int "concatenated" expected got) results

let test_allgatherv_empty_ranks () =
  (* Ranks with empty contributions and no local witness element: the
     datatype default must kick in. *)
  let results =
    wrapped ~ranks:3 (fun comm ->
        let v = if Comm.rank comm = 1 then V.of_list [ 42 ] else V.create () in
        (Comm.allgatherv comm D.int ~send_buf:v).Comm.recv_buf)
  in
  Array.iter (fun got -> Alcotest.check vec_int "only rank1" (V.of_list [ 42 ]) got) results

let test_allgatherv_out_parameters () =
  ignore
    (wrapped ~ranks:3 (fun comm ->
         let r = Comm.rank comm in
         let v = V.make (r + 1) r in
         let res = Comm.allgatherv ~recv_counts_out:true ~recv_displs_out:true comm D.int ~send_buf:v in
         Alcotest.(check (option Tutil.int_array)) "counts out" (Some [| 1; 2; 3 |]) res.Comm.recv_counts;
         Alcotest.(check (option Tutil.int_array)) "displs out" (Some [| 0; 1; 3 |]) res.Comm.recv_displs;
         (* without the flags, nothing is returned *)
         let res2 = Comm.allgatherv comm D.int ~send_buf:v in
         Alcotest.(check bool) "no counts unless requested" true (res2.Comm.recv_counts = None);
         Alcotest.(check bool) "no displs unless requested" true (res2.Comm.recv_displs = None)))

let test_allgatherv_given_counts_skips_exchange () =
  (* Paper Sec. III-H: with the profiling interface we verify that when the
     caller supplies recv_counts, KaMPIng issues ONLY MPI_Allgatherv — the
     zero-overhead property. *)
  let res =
    Tutil.run_full ~ranks:4 (fun raw ->
        let comm = Comm.wrap raw in
        let r = Comm.rank comm in
        let v = V.make 2 r in
        let counts = Array.make 4 2 in
        ignore (Comm.allgatherv ~recv_counts:counts comm D.int ~send_buf:v))
  in
  let prof = res.Mpisim.Mpi.profile in
  Alcotest.(check int) "exactly one Allgatherv per rank" 4
    (Mpisim.Profiling.calls_of "MPI_Allgatherv" prof);
  Alcotest.(check int) "no internal Allgather" 0 (Mpisim.Profiling.calls_of "MPI_Allgather" prof)

let test_allgatherv_computes_counts_like_handrolled () =
  (* Without recv_counts, the call sequence must equal the hand-rolled
     Fig. 2 pattern: one Allgather (counts) + one Allgatherv (data). *)
  let kamping =
    Tutil.run_full ~ranks:4 (fun raw ->
        let comm = Comm.wrap raw in
        ignore (Comm.allgatherv comm D.int ~send_buf:(V.make (Comm.rank comm + 1) 0)))
  in
  let handrolled =
    Tutil.run_full ~ranks:4 (fun raw ->
        let r = Mpisim.Comm.rank raw and p = Mpisim.Comm.size raw in
        let rc = Array.make p 0 in
        Mpisim.Collectives.allgather raw D.int ~sendbuf:[| r + 1 |] ~recvbuf:rc ~count:1;
        let rd = Array.make p 0 in
        for i = 1 to p - 1 do
          rd.(i) <- rd.(i - 1) + rc.(i - 1)
        done;
        let total = rd.(p - 1) + rc.(p - 1) in
        let out = Array.make total 0 in
        Mpisim.Collectives.allgatherv raw D.int ~sendbuf:(Array.make (r + 1) 0) ~scount:(r + 1)
          ~recvbuf:out ~rcounts:rc ~rdispls:rd)
  in
  Alcotest.(check (list (pair string int)))
    "identical MPI call profile" handrolled.Mpisim.Mpi.profile.Mpisim.Profiling.calls
    kamping.Mpisim.Mpi.profile.Mpisim.Profiling.calls

(* ---------- resize policies ---------- *)

let test_resize_policies () =
  ignore
    (wrapped ~ranks:2 (fun comm ->
         let r = Comm.rank comm in
         let send = V.make 2 r in
         (* Resize_to_fit shrinks/grows exactly *)
         let buf = V.make 10 (-1) in
         let res =
           Comm.allgatherv ~recv_buf:buf ~recv_policy:Resize_policy.Resize_to_fit comm D.int
             ~send_buf:send
         in
         Alcotest.(check int) "resized to fit" 4 (V.length res.Comm.recv_buf);
         (* Grow_only keeps excess capacity *)
         let buf = V.make 10 (-1) in
         ignore
           (Comm.allgatherv ~recv_buf:buf ~recv_policy:Resize_policy.Grow_only comm D.int
              ~send_buf:send);
         Alcotest.(check int) "grow_only keeps length" 10 (V.length buf);
         ignore r;
         Alcotest.(check int) "prefix written" 1 (V.get buf 2);
         (* No_resize raises when too small *)
         let small = V.make 1 (-1) in
         (match
            Comm.allgatherv ~recv_buf:small ~recv_policy:Resize_policy.No_resize comm D.int
              ~send_buf:send
          with
         | (_ : int Comm.vresult) -> Alcotest.fail "expected Buffer_too_small"
         | exception Resize_policy.Buffer_too_small { needed; capacity } ->
             Alcotest.(check int) "needed" 4 needed;
             Alcotest.(check int) "capacity" 1 capacity);
         (* user buffer defaults to No_resize *)
         let ok = V.make 4 (-1) in
         ignore (Comm.allgatherv ~recv_buf:ok comm D.int ~send_buf:send)))

let test_recv_buf_reuse_no_alloc () =
  (* the returned vector must be physically the caller's buffer *)
  ignore
    (wrapped ~ranks:2 (fun comm ->
         let send = V.make 1 (Comm.rank comm) in
         let mine = V.make 2 0 in
         let res = Comm.allgatherv ~recv_buf:mine comm D.int ~send_buf:send in
         Alcotest.(check bool) "same vector returned" true (res.Comm.recv_buf == mine)))

(* ---------- other collectives with defaults ---------- *)

let test_bcast_and_single () =
  ignore
    (wrapped ~ranks:5 (fun comm ->
         let buf = if Comm.rank comm = 2 then V.of_list [ 9; 8; 7 ] else V.make 3 0 in
         Comm.bcast ~root:2 comm D.int ~send_recv_buf:buf;
         Alcotest.check vec_int "bcast" (V.of_list [ 9; 8; 7 ]) buf;
         let v = Comm.bcast_single comm D.int (Comm.rank comm * 11) in
         Alcotest.(check int) "bcast_single" 0 v))

let test_gatherv_default_counts () =
  ignore
    (wrapped ~ranks:4 (fun comm ->
         let r = Comm.rank comm in
         let res = Comm.gatherv ~root:1 ~recv_counts_out:true comm D.int ~send_buf:(V.make r r) in
         if r = 1 then begin
           Alcotest.(check (option Tutil.int_array)) "gathered counts" (Some [| 0; 1; 2; 3 |])
             res.Comm.recv_counts;
           Alcotest.check vec_int "gathered data" (V.of_list [ 1; 2; 2; 3; 3; 3 ]) res.Comm.recv_buf
         end
         else Alcotest.(check int) "others empty" 0 (V.length res.Comm.recv_buf)))

let test_scatter_defaults () =
  ignore
    (wrapped ~ranks:3 (fun comm ->
         let r = Comm.rank comm in
         (* block size broadcast internally *)
         let send = if r = 0 then Some (V.init 6 (fun i -> i)) else None in
         let mine = Comm.scatter ?send_buf:send comm D.int in
         Alcotest.check vec_int "scatter" (V.of_list [ 2 * r; (2 * r) + 1 ]) mine;
         (* scatterv with internally scattered counts *)
         let counts = [| 1; 2; 3 |] in
         let sendv = if r = 0 then Some (V.init 6 (fun i -> 100 + i)) else None in
         let minev =
           Comm.scatterv ?send_buf:sendv ?send_counts:(if r = 0 then Some counts else None) comm
             D.int
         in
         let expected = V.init counts.(r) (fun i -> 100 + (if r = 0 then 0 else if r = 1 then 1 else 3) + i) in
         Alcotest.check vec_int "scatterv" expected minev))

let test_alltoallv_defaults () =
  let results =
    wrapped ~ranks:3 (fun comm ->
        let r = Comm.rank comm in
        (* rank r sends (r+1) copies of r*10+d to each d *)
        let p = Comm.size comm in
        let send_counts = Array.make p (r + 1) in
        let send_buf = V.create () in
        for d = 0 to p - 1 do
          for _ = 1 to r + 1 do
            V.push send_buf ((r * 10) + d)
          done
        done;
        let res = Comm.alltoallv ~recv_counts_out:true comm D.int ~send_buf ~send_counts in
        (res.Comm.recv_buf, Option.get res.Comm.recv_counts))
  in
  Array.iteri
    (fun r (buf, counts) ->
      Alcotest.(check Tutil.int_array) "recv counts are sender ranks + 1" [| 1; 2; 3 |] counts;
      let expected = V.create () in
      for s = 0 to 2 do
        for _ = 1 to s + 1 do
          V.push expected ((s * 10) + r)
        done
      done;
      Alcotest.check vec_int (Printf.sprintf "alltoallv@%d" r) expected buf)
    results

let test_alltoallv_zero_overhead () =
  let res =
    Tutil.run_full ~ranks:3 (fun raw ->
        let comm = Comm.wrap raw in
        let p = Comm.size comm in
        let counts = Array.make p 1 in
        ignore
          (Comm.alltoallv ~recv_counts:counts comm D.int ~send_buf:(V.make p 0) ~send_counts:counts))
  in
  Alcotest.(check (list (pair string int)))
    "only Alltoallv issued"
    [ ("MPI_Alltoallv", 3) ]
    res.Mpisim.Mpi.profile.Mpisim.Profiling.calls

let test_allgather_inplace () =
  ignore
    (wrapped ~ranks:4 (fun comm ->
         let r = Comm.rank comm in
         let buf = V.make 4 (-1) in
         V.set buf r (r * 7);
         Comm.allgather_inplace comm D.int ~send_recv_buf:buf;
         Alcotest.check vec_int "inplace" (V.of_list [ 0; 7; 14; 21 ]) buf))

let test_reductions () =
  ignore
    (wrapped ~ranks:4 (fun comm ->
         let r = Comm.rank comm in
         let sum = Comm.allreduce_single comm D.int Mpisim.Op.int_sum (r + 1) in
         Alcotest.(check int) "allreduce_single" 10 sum;
         let prefix = Comm.scan_single comm D.int Mpisim.Op.int_sum (r + 1) in
         Alcotest.(check int) "scan_single" ((r + 1) * (r + 2) / 2) prefix;
         let ex = Comm.exscan_single ~init:0 comm D.int Mpisim.Op.int_sum (r + 1) in
         Alcotest.(check int) "exscan_single" (r * (r + 1) / 2) ex;
         let v = Comm.reduce ~root:3 comm D.float Mpisim.Op.float_max ~send_buf:(V.make 1 (float_of_int r)) in
         if r = 3 then Alcotest.(check (float 0.0)) "reduce root" 3.0 (V.get v 0)
         else Alcotest.(check int) "reduce non-root empty" 0 (V.length v);
         (* lambda reduction, as in the paper's feature list *)
         let med = Comm.allreduce_single comm D.int (Mpisim.Op.of_fun (fun a b -> a + b + 1)) 0 in
         Alcotest.(check int) "lambda op" 3 med))

(* ---------- point-to-point with probing ---------- *)

let test_recv_exact_size () =
  ignore
    (wrapped ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then Comm.send comm D.int ~send_buf:(V.of_list [ 5; 6; 7 ]) ~dst:1
         else begin
           (* no count given: probe sizes the buffer exactly *)
           let got = Comm.recv comm D.int ~src:0 in
           Alcotest.check vec_int "exact" (V.of_list [ 5; 6; 7 ]) got
         end))

let test_nb_result_safety () =
  ignore
    (wrapped ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then begin
           (* Fig. 6: buffer moves into the call, comes back on wait *)
           let data = V.of_list [ 1; 2; 3 |> Fun.id ] in
           let res = Comm.isend comm D.int ~send_buf:data ~dst:1 in
           let back = Nb_result.wait res in
           Alcotest.(check bool) "same buffer returned" true (back == data)
         end
         else begin
           let res = Comm.irecv ~count:3 comm D.int ~src:0 in
           (* test returns None while in flight... by construction the data
              is unreachable until completion *)
           let rec wait_loop n =
             match Nb_result.test res with
             | Some v -> (v, n)
             | None ->
                 Comm.compute comm 0.5e-6;
                 wait_loop (n + 1)
           in
           let v, polls = wait_loop 0 in
           Alcotest.(check bool) "needed at least one poll" true (polls > 0);
           Alcotest.check vec_int "payload" (V.of_list [ 1; 2; 3 ]) v
         end))

let test_nb_result_map () =
  ignore
    (wrapped ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then Comm.send comm D.int ~send_buf:(V.of_list [ 4; 5 ]) ~dst:1
         else begin
           let res = Comm.irecv ~count:2 comm D.int ~src:0 in
           let sum = Nb_result.map (fun v -> V.fold_left ( + ) 0 v) res in
           Alcotest.(check int) "mapped" 9 (Nb_result.wait sum)
         end))

let test_request_pool () =
  ignore
    (wrapped ~ranks:2 (fun comm ->
         let pool = Request_pool.create () in
         if Comm.rank comm = 0 then begin
           for i = 1 to 5 do
             let res = Comm.isend ~tag:i comm D.int ~send_buf:(V.make 1 i) ~dst:1 in
             Request_pool.add pool (Nb_result.request res)
           done;
           Alcotest.(check int) "in flight" 5 (Request_pool.in_flight pool);
           Request_pool.wait_all pool;
           Alcotest.(check int) "drained" 0 (Request_pool.in_flight pool)
         end
         else
           for i = 1 to 5 do
             ignore (Comm.recv ~tag:i ~count:1 comm D.int ~src:0)
           done))

let test_bounded_request_pool () =
  ignore
    (wrapped ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then begin
           let pool = Request_pool.create_bounded ~slots:2 () in
           for i = 1 to 6 do
             let res = Comm.isend ~tag:i comm D.int ~send_buf:(V.make 1 i) ~dst:1 in
             Request_pool.add pool (Nb_result.request res);
             Alcotest.(check bool) "never above capacity" true (Request_pool.in_flight pool <= 2)
           done;
           Request_pool.wait_all pool
         end
         else
           for i = 1 to 6 do
             ignore (Comm.recv ~tag:i ~count:1 comm D.int ~src:0)
           done))

(* ---------- type traits ---------- *)

let test_type_traits_layouts () =
  (* struct { int64 a; double b; char c; int[3] d } from the paper's Fig. 4 *)
  let fields =
    Type_traits.[ Int64 "a"; Float "b"; Char "c"; Array ("d", 3, Int "elt") ]
  in
  Alcotest.(check int) "padding" 7 (Type_traits.padding fields);
  let contiguous : unit D.t = Type_traits.trivially_copyable ~name:"MyType" fields in
  let strct : unit D.t = Type_traits.struct_type ~name:"MyTypeS" fields in
  (* contiguous ships padding too, struct ships payload only *)
  Alcotest.(check int) "contiguous extent" 48 (D.extent contiguous);
  Alcotest.(check int) "struct extent" 41 (D.extent strct);
  Alcotest.(check bool) "struct pays pack penalty" true (D.pack_factor strct > 1.0);
  Alcotest.(check (float 1e-9)) "contiguous has none" 1.0 (D.pack_factor contiguous)

let test_custom_type_roundtrip () =
  (* communicate a custom record type end to end *)
  let dt : (int * float) D.t =
    Type_traits.trivially_copyable ~default:(0, 0.0) ~name:"pairrec"
      Type_traits.[ Int "k"; Float "v" ]
  in
  let results =
    wrapped ~ranks:3 (fun comm ->
        let r = Comm.rank comm in
        (Comm.allgatherv comm dt ~send_buf:(V.of_list [ (r, float_of_int r) ])).Comm.recv_buf)
  in
  let expected = V.of_list [ (0, 0.0); (1, 1.0); (2, 2.0) ] in
  Array.iter
    (fun got ->
      Alcotest.(check bool) "custom type payload" true (V.equal ( = ) expected got))
    results

(* ---------- serialization ---------- *)

let test_serialized_p2p () =
  ignore
    (wrapped ~ranks:2 (fun comm ->
         let codec = Serde.Codec.(assoc string) in
         let dict = [ ("hello", "world"); ("k", "v") ] in
         if Comm.rank comm = 0 then Comm.send_serialized comm codec dict ~dst:1
         else begin
           let got = Comm.recv_serialized comm codec ~src:0 in
           Alcotest.(check (list (pair string string))) "dict" dict got
         end))

let test_bcast_serialized () =
  ignore
    (wrapped ~ranks:4 (fun comm ->
         let codec = Serde.Codec.(list (pair int string)) in
         let payload = if Comm.rank comm = 0 then [ (1, "a"); (2, "bc") ] else [] in
         let got = Comm.bcast_serialized comm codec payload in
         Alcotest.(check (list (pair int string))) "bcast serialized" [ (1, "a"); (2, "bc") ] got))

let test_alltoallv_serialized () =
  ignore
    (wrapped ~ranks:3 (fun comm ->
         let r = Comm.rank comm and p = Comm.size comm in
         (* ship a different string list to every rank *)
         let messages = Array.init p (fun d -> List.init d (fun i -> Printf.sprintf "%d->%d#%d" r d i)) in
         let got = Comm.alltoallv_serialized comm Serde.Codec.(list string) messages in
         Array.iteri
           (fun s l ->
             let expected = List.init r (fun i -> Printf.sprintf "%d->%d#%d" s r i) in
             Alcotest.(check (list string)) (Printf.sprintf "from %d" s) expected l)
           got))

let test_allgather_serialized () =
  ignore
    (wrapped ~ranks:3 (fun comm ->
         let codec = Serde.Codec.string in
         let got = Comm.allgather_serialized comm codec (String.make (Comm.rank comm + 1) 'x') in
         Alcotest.(check (array string)) "variable strings" [| "x"; "xx"; "xxx" |] got))

(* ---------- assertions ---------- *)

let test_assertion_levels () =
  Alcotest.(check bool) "default light" true (Assertions.enabled Assertions.Light);
  Assertions.with_level Assertions.Off (fun () ->
      Alcotest.(check bool) "off disables light" false (Assertions.enabled Assertions.Light);
      (* disabled checks do not even evaluate the condition *)
      Assertions.check Assertions.Light (fun () -> Alcotest.fail "must not run") "boom");
  Alcotest.(check bool) "restored" true (Assertions.enabled Assertions.Light)

let test_heavy_assertion_catches_mismatch () =
  let failures =
    Tutil.run_full ~ranks:2 (fun raw ->
        let comm = Comm.wrap raw in
        Assertions.with_level Assertions.Heavy (fun () ->
            (* ranks disagree on the bcast count: heavy mode must catch it *)
            let buf = V.make (1 + Comm.rank comm) 0 in
            Comm.bcast comm D.int ~send_recv_buf:buf))
  in
  Array.iter
    (fun r ->
      match r with
      | Error (Mpisim.Errors.Usage_error msg) ->
          Alcotest.(check bool) "mentions disagreement" true
            (String.length msg > 0 && String.sub msg 0 5 = "heavy")
      | Ok () -> Alcotest.fail "heavy assertion missed the mismatch"
      | Error e -> raise e)
    failures.Mpisim.Mpi.results

let test_heavy_assertions_cost_communication () =
  let with_heavy =
    Tutil.run_full ~ranks:2 (fun raw ->
        Assertions.with_level Assertions.Heavy (fun () ->
            ignore (Comm.allgather (Comm.wrap raw) D.int ~send_buf:(V.make 1 0))))
  in
  let with_off =
    Tutil.run_full ~ranks:2 (fun raw ->
        Assertions.with_level Assertions.Off (fun () ->
            ignore (Comm.allgather (Comm.wrap raw) D.int ~send_buf:(V.make 1 0))))
  in
  let calls prof = List.fold_left (fun acc (_, n) -> acc + n) 0 prof.Mpisim.Profiling.calls in
  Alcotest.(check bool) "heavy issues extra MPI calls" true
    (calls with_heavy.Mpisim.Mpi.profile > calls with_off.Mpisim.Mpi.profile);
  Alcotest.(check int) "off mode: single call" 2 (calls with_off.Mpisim.Mpi.profile)

(* ---------- flatten ---------- *)

let test_flatten () =
  let tbl = Hashtbl.create 4 in
  Hashtbl.add tbl 2 (V.of_list [ 20; 21 ]);
  Hashtbl.add tbl 0 (V.of_list [ 1 ]);
  let flat = Flatten.flatten ~comm_size:4 tbl in
  Alcotest.(check Tutil.int_array) "counts" [| 1; 0; 2; 0 |] flat.Flatten.send_counts;
  Alcotest.check vec_int "data in rank order" (V.of_list [ 1; 20; 21 ]) flat.Flatten.data;
  Alcotest.(check bool) "bad destination rejected" true
    (let bad = Hashtbl.create 1 in
     Hashtbl.add bad 9 (V.of_list [ 1 ]);
     match Flatten.flatten ~comm_size:4 bad with
     | (_ : int Flatten.flat) -> false
     | exception Mpisim.Errors.Usage_error _ -> true)

let test_flatten_roundtrip () =
  ignore
    (wrapped ~ranks:3 (fun comm ->
         let r = Comm.rank comm in
         let tbl = Hashtbl.create 4 in
         (* send my rank to every other rank *)
         for d = 0 to 2 do
           if d <> r then Hashtbl.add tbl d (V.of_list [ r ])
         done;
         let res = Comm.alltoallv_flat comm D.int (Flatten.flatten ~comm_size:3 tbl) in
         let expected = V.of_list (List.filter (fun x -> x <> r) [ 0; 1; 2 ]) in
         Alcotest.check vec_int "flat roundtrip" expected res.Comm.recv_buf))

let suite =
  [
    Alcotest.test_case "allgatherv one-liner (Fig. 1)" `Quick test_allgatherv_defaults;
    Alcotest.test_case "allgatherv with empty ranks" `Quick test_allgatherv_empty_ranks;
    Alcotest.test_case "allgatherv out-parameters" `Quick test_allgatherv_out_parameters;
    Alcotest.test_case "zero overhead: counts given" `Quick test_allgatherv_given_counts_skips_exchange;
    Alcotest.test_case "default computation matches hand-rolled" `Quick
      test_allgatherv_computes_counts_like_handrolled;
    Alcotest.test_case "resize policies" `Quick test_resize_policies;
    Alcotest.test_case "recv_buf physically reused" `Quick test_recv_buf_reuse_no_alloc;
    Alcotest.test_case "bcast + bcast_single" `Quick test_bcast_and_single;
    Alcotest.test_case "gatherv default counts" `Quick test_gatherv_default_counts;
    Alcotest.test_case "scatter/scatterv defaults" `Quick test_scatter_defaults;
    Alcotest.test_case "alltoallv default counts" `Quick test_alltoallv_defaults;
    Alcotest.test_case "alltoallv zero overhead" `Quick test_alltoallv_zero_overhead;
    Alcotest.test_case "allgather in-place (send_recv_buf)" `Quick test_allgather_inplace;
    Alcotest.test_case "reductions incl. lambda ops" `Quick test_reductions;
    Alcotest.test_case "recv sizes buffer exactly" `Quick test_recv_exact_size;
    Alcotest.test_case "non-blocking result safety (Fig. 6)" `Quick test_nb_result_safety;
    Alcotest.test_case "non-blocking result map" `Quick test_nb_result_map;
    Alcotest.test_case "request pool" `Quick test_request_pool;
    Alcotest.test_case "bounded request pool" `Quick test_bounded_request_pool;
    Alcotest.test_case "type traits layouts (Fig. 4)" `Quick test_type_traits_layouts;
    Alcotest.test_case "custom type end-to-end" `Quick test_custom_type_roundtrip;
    Alcotest.test_case "serialized p2p (Fig. 5)" `Quick test_serialized_p2p;
    Alcotest.test_case "serialized bcast (Fig. 11)" `Quick test_bcast_serialized;
    Alcotest.test_case "serialized allgather" `Quick test_allgather_serialized;
    Alcotest.test_case "serialized alltoallv" `Quick test_alltoallv_serialized;
    Alcotest.test_case "assertion levels" `Quick test_assertion_levels;
    Alcotest.test_case "heavy assertion catches mismatch" `Quick test_heavy_assertion_catches_mismatch;
    Alcotest.test_case "assertion levels change call profile" `Quick
      test_heavy_assertions_cost_communication;
    Alcotest.test_case "with_flattened" `Quick test_flatten;
    Alcotest.test_case "flatten + alltoallv roundtrip" `Quick test_flatten_roundtrip;
  ]
