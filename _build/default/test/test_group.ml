(* Tests for process groups, group-collective communicator creation, the
   hierarchical network model and the *_single convenience wrappers. *)

open Mpisim
module K = Kamping.Comm
module V = Ds.Vec

let run = Tutil.run

let test_group_set_ops () =
  ignore
    (run ~ranks:6 (fun comm ->
         let g = Group.of_comm comm in
         Alcotest.(check int) "size" 6 (Group.size g);
         let evens = Group.incl g [| 0; 2; 4 |] in
         Alcotest.(check int) "incl size" 3 (Group.size evens);
         let odds = Group.excl g [| 0; 2; 4 |] in
         Alcotest.(check int) "excl size" 3 (Group.size odds);
         Alcotest.(check int) "union" 6 (Group.size (Group.union evens odds));
         Alcotest.(check int) "intersection" 0 (Group.size (Group.intersection evens odds));
         let low = Group.incl g [| 0; 1; 2; 3 |] in
         Alcotest.(check int) "difference" 2 (Group.size (Group.difference low evens));
         Alcotest.(check bool) "duplicate rejected" true
           (match Group.incl g [| 1; 1 |] with
           | (_ : Group.t) -> false
           | exception Errors.Usage_error _ -> true)))

let test_group_translate () =
  ignore
    (run ~ranks:5 (fun comm ->
         let g = Group.of_comm comm in
         let sub = Group.incl g [| 4; 2; 0 |] in
         let translated = Group.translate_ranks sub [| 0; 1; 2 |] g in
         Alcotest.(check (array (option int))) "positions in world group"
           [| Some 4; Some 2; Some 0 |] translated;
         let back = Group.translate_ranks g [| 0; 1; 2; 3; 4 |] sub in
         Alcotest.(check (array (option int))) "reverse, with misses"
           [| Some 2; None; Some 1; None; Some 0 |] back))

let test_comm_create_group () =
  (* only the group members participate — the excluded rank does other
     work, which MPI_Comm_create could not allow *)
  let results =
    run ~ranks:5 (fun comm ->
        let r = Comm.rank comm in
        let g = Group.excl (Group.of_comm comm) [| 2 |] in
        match Group.rank_in g comm with
        | Some _ ->
            let sub = Group.comm_create_group comm g ~tag:99 in
            let out = Array.make (Comm.size sub) (-1) in
            Collectives.allgather sub Datatype.int ~sendbuf:[| r |] ~recvbuf:out ~count:1;
            Array.to_list out
        | None -> [ -2 ] (* rank 2 never joins *))
  in
  Alcotest.(check (list int)) "members" [ 0; 1; 3; 4 ] results.(0);
  Alcotest.(check (list int)) "excluded did not participate" [ -2 ] results.(2)

let test_hierarchical_network_faster_intra () =
  let ping ?node () =
    let res =
      Mpisim.Mpi.run ?node ~ranks:4 (fun comm ->
          if Comm.rank comm = 0 then
            P2p.send comm Datatype.int (Array.make 1000 7) ~dst:1 ~tag:0
          else if Comm.rank comm = 1 then
            ignore (P2p.recv comm Datatype.int (Array.make 1000 0) ~src:0 ~tag:0))
    in
    res.Mpisim.Mpi.sim_time
  in
  let flat = ping () in
  let hier = ping ~node:(Simnet.Netmodel.intra_node, 2) () in
  Alcotest.(check bool)
    (Printf.sprintf "intra-node cheaper (%.2fus vs %.2fus)" (1e6 *. hier) (1e6 *. flat))
    true (hier < flat)

let test_hierarchical_inter_node_unchanged () =
  (* ranks 0 and 1 on different single-rank nodes: same cost as flat *)
  let ping ?node () =
    (Mpisim.Mpi.run ?node ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then P2p.send comm Datatype.int [| 1 |] ~dst:1 ~tag:0
         else ignore (P2p.recv comm Datatype.int [| 0 |] ~src:0 ~tag:0)))
      .Mpisim.Mpi.sim_time
  in
  Alcotest.(check (float 1e-12)) "node_size 1 = flat" (ping ())
    (ping ~node:(Simnet.Netmodel.intra_node, 1) ())

let test_single_wrappers () =
  ignore
    (run ~ranks:4 (fun raw ->
         let comm = K.wrap raw in
         let r = K.rank comm in
         (match K.reduce_single ~root:2 comm Datatype.int Op.int_sum (r + 1) with
         | Some total -> Alcotest.(check int) "reduce_single at root" 10 total
         | None -> Alcotest.(check bool) "non-root gets None" true (r <> 2));
         let gathered = K.gather_single ~root:1 comm Datatype.int (r * r) in
         if r = 1 then
           Alcotest.(check (list int)) "gather_single" [ 0; 1; 4; 9 ] (V.to_list gathered)
         else Alcotest.(check int) "others empty" 0 (V.length gathered)))

let suite =
  [
    Alcotest.test_case "group set operations" `Quick test_group_set_ops;
    Alcotest.test_case "group rank translation" `Quick test_group_translate;
    Alcotest.test_case "comm_create_group" `Quick test_comm_create_group;
    Alcotest.test_case "hierarchical net: intra-node cheaper" `Quick
      test_hierarchical_network_faster_intra;
    Alcotest.test_case "hierarchical net: degenerate = flat" `Quick
      test_hierarchical_inter_node_unchanged;
    Alcotest.test_case "reduce_single / gather_single" `Quick test_single_wrappers;
  ]
