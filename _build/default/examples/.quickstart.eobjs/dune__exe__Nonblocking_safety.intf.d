examples/nonblocking_safety.mli:
