examples/serialization_example.ml: Kamping List Mpisim Printf Serde String
