examples/serialization_example.mli:
