examples/quickstart.mli:
