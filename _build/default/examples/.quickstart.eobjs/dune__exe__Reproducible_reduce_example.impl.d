examples/reproducible_reduce_example.ml: Array Ds Kamping Kamping_plugins List Mpisim Printf
