examples/sample_sort_example.ml: Apps Array Mpisim Printf
