examples/quickstart.ml: Array Ds Kamping Mpisim Printf
