examples/vector_allgather.mli:
