examples/vector_allgather.ml: Array Ds Kamping List Mpisim Printf
