examples/bfs_example.mli:
