examples/sorter_example.ml: Ds Kamping Kamping_plugins Mpisim Printf Simnet
