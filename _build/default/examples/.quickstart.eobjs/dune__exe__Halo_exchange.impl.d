examples/halo_exchange.ml: Array Ds Format Kamping Kamping_plugins List Mpisim Printf
