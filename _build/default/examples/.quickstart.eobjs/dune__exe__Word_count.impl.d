examples/word_count.ml: Array Ds Hashtbl Kamping Kamping_plugins List Mpisim Option Printf Serde String
