examples/one_sided.ml: Array List Mpisim Printf Simnet String
