examples/one_sided.mli:
