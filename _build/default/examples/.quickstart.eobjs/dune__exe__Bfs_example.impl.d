examples/bfs_example.ml: Apps Array Float Graphgen List Mpisim Printf
