examples/sample_sort_example.mli:
