examples/sorter_example.mli:
