examples/nonblocking_safety.ml: Ds Kamping List Mpisim Printf String
