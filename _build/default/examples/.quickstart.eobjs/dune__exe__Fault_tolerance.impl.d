examples/fault_tolerance.ml: Array Kamping Kamping_plugins Mpisim Printf Simnet
