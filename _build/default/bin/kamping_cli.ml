(* Command-line driver: run individual applications or paper experiments on
   the simulated machine with custom parameters.

   Examples:
     dune exec bin/kamping_cli.exe -- sort --ranks 32 --n 10000
     dune exec bin/kamping_cli.exe -- bfs --ranks 16 --family rgg2d --strategy grid
     dune exec bin/kamping_cli.exe -- suffix --ranks 8 --n 2000
     dune exec bin/kamping_cli.exe -- experiment fig10 *)

open Cmdliner

let ranks_arg =
  Arg.(value & opt int 8 & info [ "p"; "ranks" ] ~docv:"P" ~doc:"Number of simulated MPI ranks.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

(* ------------- sort ------------- *)

let sort_cmd =
  let n_arg =
    Arg.(value & opt int 10_000 & info [ "n"; "count" ] ~docv:"N" ~doc:"Elements per rank.")
  in
  let binding_arg =
    Arg.(
      value
      & opt (enum [ ("mpi", `Mpi); ("kamping", `Kamping); ("boost", `Boost); ("rwth", `Rwth); ("mpl", `Mpl) ]) `Kamping
      & info [ "binding" ] ~docv:"BINDING" ~doc:"Binding style: mpi|kamping|boost|rwth|mpl.")
  in
  let run ranks n seed binding =
    let sorter =
      match binding with
      | `Mpi -> Apps.Ss_mpi.sort
      | `Kamping -> Apps.Ss_kamping.sort
      | `Boost -> Apps.Ss_boost.sort
      | `Rwth -> Apps.Ss_rwth.sort
      | `Mpl -> Apps.Ss_mpl.sort
    in
    let res =
      Mpisim.Mpi.run ~ranks (fun comm ->
          let data =
            Apps.Ss_common.generate_input ~rank:(Mpisim.Comm.rank comm) ~n_per_rank:n ~seed
          in
          let t0 = Mpisim.Comm.now comm in
          let out = sorter comm data in
          (Array.length out, Mpisim.Comm.now comm -. t0))
    in
    let parts = Mpisim.Mpi.results_exn res in
    let total = Array.fold_left (fun acc (k, _) -> acc + k) 0 parts in
    let time = Array.fold_left (fun acc (_, t) -> Float.max acc t) 0.0 parts in
    Printf.printf "sorted %d integers on %d ranks in %.3f ms simulated (%d events)\n" total ranks
      (1e3 *. time) res.Mpisim.Mpi.events
  in
  Cmd.v (Cmd.info "sort" ~doc:"Distributed sample sort.")
    Term.(const run $ ranks_arg $ n_arg $ seed_arg $ binding_arg)

(* ------------- bfs ------------- *)

let bfs_cmd =
  let n_arg =
    Arg.(value & opt int 1024 & info [ "n"; "count" ] ~docv:"N" ~doc:"Vertices per rank.")
  in
  let degree_arg =
    Arg.(value & opt int 8 & info [ "degree" ] ~docv:"D" ~doc:"Average vertex degree.")
  in
  let family_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("erdos-renyi", Graphgen.Generators.Erdos_renyi); ("rgg2d", Graphgen.Generators.Rgg2d);
               ("rhg", Graphgen.Generators.Rhg) ])
          Graphgen.Generators.Erdos_renyi
      & info [ "family" ] ~docv:"FAMILY" ~doc:"Graph family: erdos-renyi|rgg2d|rhg.")
  in
  let strategy_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("mpi", `Mpi); ("kamping", `Kamping); ("mpl", `Mpl); ("sparse", `Sparse);
               ("grid", `Grid); ("hypergrid3", `Hypergrid3); ("neighbor", `Neighbor);
               ("neighbor-dyn", `NeighborDyn) ])
          `Kamping
      & info [ "strategy" ] ~docv:"S"
          ~doc:
            "Frontier exchange: mpi|kamping|mpl|sparse|grid|hypergrid3|neighbor|neighbor-dyn.")
  in
  let run ranks n seed degree family strategy =
    let bfs =
      match strategy with
      | `Mpi -> Apps.Bfs_mpi.bfs
      | `Kamping -> Apps.Bfs_kamping.bfs
      | `Mpl -> Apps.Bfs_mpl.bfs
      | `Sparse -> Apps.Bfs_strategies.bfs_sparse
      | `Grid -> Apps.Bfs_strategies.bfs_grid
      | `Hypergrid3 ->
          fun comm graph ~src ->
            let kc = Kamping.Comm.wrap comm in
            let hg = Kamping_plugins.Hypergrid.create kc ~ndims:3 in
            let exchange (st : Apps.Bfs_common.state) remote =
              let p = Mpisim.Comm.size st.Apps.Bfs_common.comm in
              let data, send_counts = Apps.Bfs_common.flatten_buckets p remote in
              fst (Kamping_plugins.Hypergrid.alltoallv hg Mpisim.Datatype.int ~send_buf:data ~send_counts)
            in
            let all_empty (st : Apps.Bfs_common.state) empty =
              Kamping.Comm.allreduce_single
                (Kamping.Comm.wrap st.Apps.Bfs_common.comm)
                Mpisim.Datatype.bool Mpisim.Op.bool_and empty
            in
            Apps.Bfs_common.run (Apps.Bfs_common.init comm graph src) ~exchange ~all_empty
      | `Neighbor -> Apps.Bfs_strategies.bfs_neighbor
      | `NeighborDyn -> Apps.Bfs_strategies.bfs_neighbor_dynamic
    in
    let global_n = ranks * n in
    let res =
      Mpisim.Mpi.run ~ranks (fun comm ->
          let graph =
            Graphgen.Generators.generate family ~rank:(Mpisim.Comm.rank comm) ~comm_size:ranks
              ~global_n ~avg_degree:degree ~seed
          in
          let t0 = Mpisim.Comm.now comm in
          let dist = bfs comm graph ~src:0 in
          (dist, Mpisim.Comm.now comm -. t0))
    in
    let parts = Mpisim.Mpi.results_exn res in
    let dist = Array.concat (List.map fst (Array.to_list parts)) in
    let time = Array.fold_left (fun acc (_, t) -> Float.max acc t) 0.0 parts in
    let reached =
      Array.fold_left (fun acc d -> if d <> Apps.Bfs_common.undef then acc + 1 else acc) 0 dist
    in
    Printf.printf "reached %d/%d vertices in %.3f ms simulated\n" reached global_n (1e3 *. time)
  in
  Cmd.v (Cmd.info "bfs" ~doc:"Distributed breadth-first search.")
    Term.(const run $ ranks_arg $ n_arg $ seed_arg $ degree_arg $ family_arg $ strategy_arg)

(* ------------- suffix ------------- *)

let suffix_cmd =
  let n_arg = Arg.(value & opt int 2000 & info [ "n"; "count" ] ~docv:"N" ~doc:"Text length.") in
  let run ranks n seed =
    let text = Experiments.Suffix_exp.random_text ~n ~sigma:4 ~seed in
    let sa, seconds = Experiments.Suffix_exp.build_distributed text ranks in
    let ok = sa = Apps.Suffix_array.naive_suffix_array text in
    Printf.printf "suffix array of %d chars on %d ranks: %.3f ms simulated, correct: %b\n" n ranks
      (1e3 *. seconds) ok
  in
  Cmd.v (Cmd.info "suffix" ~doc:"Distributed suffix array construction (prefix doubling).")
    Term.(const run $ ranks_arg $ n_arg $ seed_arg)

(* ------------- experiment ------------- *)

let experiment_cmd =
  let which_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "Experiment to run: table1, fig8, fig10, types, overhead, suffix, labelprop, raxml, \
             ulfm, reprored.")
  in
  let run name =
    let experiments =
      [
        ("table1", Experiments.Loc_table.run);
        ("fig8", Experiments.Fig8_sort.run);
        ("fig10", Experiments.Fig10_bfs.run);
        ("types", Experiments.Types_bench.run);
        ("overhead", Experiments.Overhead.run);
        ("suffix", Experiments.Suffix_exp.run);
        ("labelprop", Experiments.Labelprop_exp.run);
        ("raxml", Experiments.Raxml_exp.run);
        ("ulfm", Experiments.Ulfm_exp.run);
        ("reprored", Experiments.Reprored_exp.run);
        ("ablation", Experiments.Ablation.run);
      ]
    in
    match List.assoc_opt name experiments with
    | Some f ->
        f ();
        `Ok ()
    | None -> `Error (false, Printf.sprintf "unknown experiment %s" name)
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Re-run one of the paper's tables/figures.")
    Term.(ret (const run $ which_arg))

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "kamping_cli" ~version:"1.0"
      ~doc:"KaMPIng-OCaml: flexible message-passing bindings on a simulated MPI machine."
  in
  exit (Cmd.eval (Cmd.group ~default info [ sort_cmd; bfs_cmd; suffix_cmd; experiment_cmd ]))
