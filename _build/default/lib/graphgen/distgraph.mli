(** Distributed graphs in CSR form.

    Vertices [0 .. global_n) are block-distributed: every rank owns a
    contiguous range (balanced to within one vertex) and stores the
    adjacency lists of its local vertices with {e global} neighbor ids —
    the representation the paper's BFS example assumes (Sec. IV-B). *)

type t = {
  comm_size : int;
  global_n : int;
  first_vertex : int;  (** global id of this rank's first vertex *)
  local_n : int;
  xadj : int array;  (** CSR offsets, length [local_n + 1] *)
  adjncy : int array;  (** neighbor global ids *)
}

(** [block_range ~global_n ~comm_size rank] is [(first, count)] of the
    rank's vertex block. *)
val block_range : global_n:int -> comm_size:int -> int -> int * int

(** [owner g v] is the rank owning global vertex [v]. *)
val owner : t -> int -> int

(** [is_local g v] tests whether this rank owns global vertex [v]. *)
val is_local : t -> int -> bool

(** [local_of_global g v] converts a global id owned here to a local
    index.  @raise Errors.Usage_error when not local. *)
val local_of_global : t -> int -> int

(** [global_of_local g i] converts a local index to the global id. *)
val global_of_local : t -> int -> int

(** [degree g i] is local vertex [i]'s out-degree. *)
val degree : t -> int -> int

(** [iter_neighbors g i f] applies [f] to each neighbor (global id) of
    local vertex [i]. *)
val iter_neighbors : t -> int -> (int -> unit) -> unit

(** [local_edges g] is the number of locally stored edges. *)
val local_edges : t -> int

(** [of_edges ~comm_size ~rank ~global_n edges] builds the CSR for one rank
    from (local-source global id, target global id) pairs. *)
val of_edges : comm_size:int -> rank:int -> global_n:int -> (int * int) Ds.Vec.t -> t

(** [rank_partners g] is the sorted list of other ranks this rank has at
    least one edge to (used to build static graph topologies). *)
val rank_partners : t -> int array
