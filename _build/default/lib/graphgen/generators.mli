(** Communication-free distributed graph generators (the role KaGen — Funke
    et al. — plays in the paper's Fig. 10).

    All generators are deterministic in [(seed, global parameters)]: every
    rank recomputes exactly the slice it owns, without communication, and
    the global graph does not depend on the number of ranks.  The three
    families reproduce the locality spectrum of the paper's BFS evaluation:

    - {!erdos_renyi}: uniform random targets — no locality, small diameter;
    - {!rgg_2d}: 2D random geometric — high locality, large diameter;
    - {!rhg_like}: power-law degrees (a Chung-Lu-style stand-in for random
      hyperbolic graphs) — skewed degrees, small diameter, mixed locality. *)

(** [erdos_renyi ~rank ~comm_size ~global_n ~avg_degree ~seed] draws
    [avg_degree] uniform out-neighbors per vertex. *)
val erdos_renyi :
  rank:int -> comm_size:int -> global_n:int -> avg_degree:int -> seed:int -> Distgraph.t

(** [rgg_2d ~rank ~comm_size ~global_n ~avg_degree ~seed] places points on
    the unit square (cell-major ids, so vertex blocks are geometric blocks)
    and connects points within the radius that yields [avg_degree] expected
    neighbors.  The produced graph is symmetric. *)
val rgg_2d :
  rank:int -> comm_size:int -> global_n:int -> avg_degree:int -> seed:int -> Distgraph.t

(** [rhg_like ~rank ~comm_size ~global_n ~avg_degree ~seed] draws targets
    with probability proportional to a power-law weight (w_v ~ v^-1/2, i.e.
    a degree exponent of 3), creating hub vertices. *)
val rhg_like :
  rank:int -> comm_size:int -> global_n:int -> avg_degree:int -> seed:int -> Distgraph.t

(** The generator family tags used by benchmarks. *)
type family = Erdos_renyi | Rgg2d | Rhg

val family_name : family -> string

(** [generate family ~rank ~comm_size ~global_n ~avg_degree ~seed]
    dispatches on the family tag. *)
val generate :
  family -> rank:int -> comm_size:int -> global_n:int -> avg_degree:int -> seed:int -> Distgraph.t
