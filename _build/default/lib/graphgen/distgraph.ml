type t = {
  comm_size : int;
  global_n : int;
  first_vertex : int;
  local_n : int;
  xadj : int array;
  adjncy : int array;
}

let block_range ~global_n ~comm_size rank =
  let base = global_n / comm_size and extra = global_n mod comm_size in
  let count = base + (if rank < extra then 1 else 0) in
  let first = (rank * base) + min rank extra in
  (first, count)

let owner g v =
  if v < 0 || v >= g.global_n then Mpisim.Errors.usage "vertex %d out of range" v;
  let base = g.global_n / g.comm_size and extra = g.global_n mod g.comm_size in
  if base = 0 then min v (g.comm_size - 1)
  else begin
    let boundary = extra * (base + 1) in
    if v < boundary then v / (base + 1) else extra + ((v - boundary) / base)
  end

let is_local g v = v >= g.first_vertex && v < g.first_vertex + g.local_n

let local_of_global g v =
  if not (is_local g v) then Mpisim.Errors.usage "vertex %d is not local" v;
  v - g.first_vertex

let global_of_local g i = g.first_vertex + i
let degree g i = g.xadj.(i + 1) - g.xadj.(i)

let iter_neighbors g i f =
  for e = g.xadj.(i) to g.xadj.(i + 1) - 1 do
    f g.adjncy.(e)
  done

let local_edges g = Array.length g.adjncy

let of_edges ~comm_size ~rank ~global_n edges =
  let first_vertex, local_n = block_range ~global_n ~comm_size rank in
  let xadj = Array.make (local_n + 1) 0 in
  Ds.Vec.iter
    (fun (src, _) ->
      let i = src - first_vertex in
      if i < 0 || i >= local_n then Mpisim.Errors.usage "edge source %d is not local" src;
      xadj.(i + 1) <- xadj.(i + 1) + 1)
    edges;
  for i = 1 to local_n do
    xadj.(i) <- xadj.(i) + xadj.(i - 1)
  done;
  let adjncy = Array.make (Ds.Vec.length edges) 0 in
  let cursor = Array.sub xadj 0 (max local_n 1) in
  Ds.Vec.iter
    (fun (src, dst) ->
      let i = src - first_vertex in
      adjncy.(cursor.(i)) <- dst;
      cursor.(i) <- cursor.(i) + 1)
    edges;
  { comm_size; global_n; first_vertex; local_n; xadj; adjncy }

let rank_partners g =
  let seen = Ds.Bitset.create g.comm_size in
  let my = if g.local_n > 0 then owner g g.first_vertex else -1 in
  Array.iter
    (fun v ->
      let o = owner g v in
      if o <> my then Ds.Bitset.set seen o)
    g.adjncy;
  let out = Ds.Vec.create () in
  Ds.Bitset.iter_set (fun r -> Ds.Vec.push out r) seen;
  Ds.Vec.to_array out
