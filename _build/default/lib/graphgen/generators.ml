module V = Ds.Vec

(* Per-vertex random streams keyed by (seed, vertex id) keep the global
   graph independent of the rank count. *)
let vertex_stream ~seed v = Simnet.Rng.split (Simnet.Rng.create (Int64.of_int seed)) v

let erdos_renyi ~rank ~comm_size ~global_n ~avg_degree ~seed =
  let first, local_n = Distgraph.block_range ~global_n ~comm_size rank in
  let edges = V.create () in
  for i = 0 to local_n - 1 do
    let v = first + i in
    let rng = vertex_stream ~seed v in
    for _ = 1 to avg_degree do
      let rec draw () =
        let u = Simnet.Rng.int rng global_n in
        if u = v && global_n > 1 then draw () else u
      in
      V.push edges (v, draw ())
    done
  done;
  Distgraph.of_edges ~comm_size ~rank ~global_n edges

(* --- 2D random geometric graph, cell-major ids --- *)

type rgg_layout = { k : int; base : int; rem : int; radius : float; seed : int }

let rgg_layout ~global_n ~avg_degree ~seed =
  let radius = sqrt (float_of_int avg_degree /. (Float.pi *. float_of_int global_n)) in
  let k = max 1 (int_of_float (1.0 /. radius)) in
  let cells = k * k in
  { k; base = global_n / cells; rem = global_n mod cells; radius; seed }

let cell_count layout c = layout.base + (if c < layout.rem then 1 else 0)

let cell_offset layout c = (c * layout.base) + min c layout.rem

let cell_of_vertex layout v =
  if layout.base = 0 then min v (layout.rem - 1)
  else begin
    let boundary = layout.rem * (layout.base + 1) in
    if v < boundary then v / (layout.base + 1) else layout.rem + ((v - boundary) / layout.base)
  end

let position layout v =
  let c = cell_of_vertex layout v in
  let cx = c mod layout.k and cy = c / layout.k in
  let rng = vertex_stream ~seed:layout.seed v in
  let side = 1.0 /. float_of_int layout.k in
  ( (float_of_int cx +. Simnet.Rng.float rng) *. side,
    (float_of_int cy +. Simnet.Rng.float rng) *. side )

let rgg_2d ~rank ~comm_size ~global_n ~avg_degree ~seed =
  let layout = rgg_layout ~global_n ~avg_degree ~seed in
  let first, local_n = Distgraph.block_range ~global_n ~comm_size rank in
  let edges = V.create () in
  let r2 = layout.radius *. layout.radius in
  for i = 0 to local_n - 1 do
    let v = first + i in
    let xv, yv = position layout v in
    let c = cell_of_vertex layout v in
    let cx = c mod layout.k and cy = c / layout.k in
    for dy = -1 to 1 do
      for dx = -1 to 1 do
        let nx = cx + dx and ny = cy + dy in
        if nx >= 0 && nx < layout.k && ny >= 0 && ny < layout.k then begin
          let nc = (ny * layout.k) + nx in
          let off = cell_offset layout nc in
          for j = 0 to cell_count layout nc - 1 do
            let u = off + j in
            if u <> v then begin
              let xu, yu = position layout u in
              let dx = xu -. xv and dy = yu -. yv in
              if (dx *. dx) +. (dy *. dy) <= r2 then V.push edges (v, u)
            end
          done
        end
      done
    done
  done;
  Distgraph.of_edges ~comm_size ~rank ~global_n edges

(* --- power-law targets: u = floor(n * U^2) favors low ids --- *)

let rhg_like ~rank ~comm_size ~global_n ~avg_degree ~seed =
  let first, local_n = Distgraph.block_range ~global_n ~comm_size rank in
  let edges = V.create () in
  for i = 0 to local_n - 1 do
    let v = first + i in
    let rng = vertex_stream ~seed v in
    for _ = 1 to avg_degree do
      let rec draw () =
        let u = Simnet.Rng.float rng in
        let t = int_of_float (u *. u *. float_of_int global_n) in
        let t = min t (global_n - 1) in
        if t = v && global_n > 1 then draw () else t
      in
      V.push edges (v, draw ())
    done
  done;
  Distgraph.of_edges ~comm_size ~rank ~global_n edges

type family = Erdos_renyi | Rgg2d | Rhg

let family_name = function Erdos_renyi -> "erdos-renyi" | Rgg2d -> "rgg2d" | Rhg -> "rhg"

let generate family ~rank ~comm_size ~global_n ~avg_degree ~seed =
  match family with
  | Erdos_renyi -> erdos_renyi ~rank ~comm_size ~global_n ~avg_degree ~seed
  | Rgg2d -> rgg_2d ~rank ~comm_size ~global_n ~avg_degree ~seed
  | Rhg -> rhg_like ~rank ~comm_size ~global_n ~avg_degree ~seed
