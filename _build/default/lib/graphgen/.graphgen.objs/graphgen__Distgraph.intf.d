lib/graphgen/distgraph.mli: Ds
