lib/graphgen/generators.mli: Distgraph
