lib/graphgen/generators.ml: Distgraph Ds Float Int64 Simnet
