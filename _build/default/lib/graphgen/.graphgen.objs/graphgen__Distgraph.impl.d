lib/graphgen/distgraph.ml: Array Ds Mpisim
