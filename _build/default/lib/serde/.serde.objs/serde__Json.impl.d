lib/serde/json.ml: Buffer Char Float List Printf String
