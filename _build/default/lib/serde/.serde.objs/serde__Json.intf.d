lib/serde/json.mli:
