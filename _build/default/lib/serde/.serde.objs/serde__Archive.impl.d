lib/serde/archive.ml: Buffer Bytes Char Int64 Printf String Sys
