lib/serde/archive.mli: Bytes
