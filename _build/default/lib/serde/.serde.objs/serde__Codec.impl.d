lib/serde/codec.ml: Archive Array Ds Hashtbl Int64 Json Lazy List Printf String
