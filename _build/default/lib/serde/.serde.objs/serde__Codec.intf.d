lib/serde/codec.mli: Archive Bytes Ds Hashtbl Json
