(** Composable serialization codecs (the Cereal-equivalent user API).

    A ['a t] knows how to move values of type ['a] through both archive
    backends: the exact binary archive and the textual JSON archive.  Codecs
    compose ({!pair}, {!list}, {!option}, ...) and adapt to new types via
    {!conv} — the analogue of writing a [serialize] function for a custom
    type in Cereal.

    The KaMPIng layer wraps codecs into send/receive buffers via
    [Kamping.Serialization.as_serialized]. *)

type 'a t

(** [name c] is a description used in error messages. *)
val name : 'a t -> string

(** {1 Running codecs} *)

(** [encode c v] serializes into a fresh binary buffer. *)
val encode : 'a t -> 'a -> Bytes.t

(** [decode c b] deserializes a binary buffer.
    @raise Archive.Corrupt on malformed input or trailing bytes. *)
val decode : 'a t -> Bytes.t -> 'a

(** [write c w v] / [read c r] run the codec on an open archive (used to
    nest values into larger messages). *)
val write : 'a t -> Archive.writer -> 'a -> unit

val read : 'a t -> Archive.reader -> 'a

(** [to_json c v] / [of_json c j] run the JSON archive. *)
val to_json : 'a t -> 'a -> Json.t

val of_json : 'a t -> Json.t -> 'a

(** [encode_json c v] / [decode_json c s] are the string-level JSON
    round-trip. *)
val encode_json : 'a t -> 'a -> string

val decode_json : 'a t -> string -> 'a

(** {1 Primitive codecs} *)

val unit : unit t
val bool : bool t
val char : char t

(** Exact in binary; via double (53-bit safe) in JSON. *)
val int : int t

val int64 : int64 t
val float : float t
val string : string t

(** {1 Combinators} *)

val option : 'a t -> 'a option t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t
val list : 'a t -> 'a list t
val array : 'a t -> 'a array t
val vec : 'a t -> 'a Ds.Vec.t t
val result : 'a t -> 'b t -> ('a, 'b) result t

(** [assoc v] serializes string-keyed association lists (the
    [std::unordered_map<std::string, T>] of the paper's Fig. 5). *)
val assoc : 'a t -> (string * 'a) list t

(** [hashtbl k v] serializes hash tables (iteration order is not
    preserved; the table round-trips as a set of bindings). *)
val hashtbl : 'k t -> 'v t -> ('k, 'v) Hashtbl.t t

(** [conv ~name to_repr of_repr repr_codec] derives a codec for a new type
    from an existing representation (Cereal's custom [serialize]). *)
val conv : name:string -> ('a -> 'b) -> ('b -> 'a) -> 'b t -> 'a t

(** [delayed f] builds a codec lazily, enabling recursive types:
    [let rec tree = lazy (delayed (fun () -> ... Lazy.force tree ...))]. *)
val delayed : (unit -> 'a t) -> 'a t
