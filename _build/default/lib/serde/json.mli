(** Minimal JSON values, printer and parser — the text archive backend.

    Cereal offers binary, JSON and XML archives; this module provides the
    JSON one.  Numbers are IEEE doubles, so integers beyond 2^53 lose
    precision in the JSON archive (the binary archive is exact). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Raised by {!parse} on malformed input with a position and message. *)
exception Parse_error of int * string

(** [to_string v] prints compact JSON (escaping control characters and
    quotes). *)
val to_string : t -> string

(** [parse s] parses one JSON value (trailing whitespace allowed). *)
val parse : string -> t

(** [equal a b] is structural equality with exact float comparison. *)
val equal : t -> t -> bool

(** [member key v] looks a field up in an object. *)
val member : string -> t -> t option
