type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s -> escape buf s
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            go item)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* Recursive-descent parser. *)
type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (st.pos, msg))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | Some _ | None -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st (Printf.sprintf "expected %c, found %c" c c')
  | None -> error st (Printf.sprintf "expected %c, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

let parse_string_body st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> begin
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
            (* \uXXXX: decode the code point as a raw byte when < 256,
               '?' otherwise (we never emit multi-byte escapes). *)
            if st.pos + 4 >= String.length st.src then error st "bad \\u escape";
            let hex = String.sub st.src (st.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex) with Failure _ -> error st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            Buffer.add_char buf (if code < 256 then Char.chr code else '?')
        | Some c -> error st (Printf.sprintf "bad escape \\%c" c)
        | None -> error st "unterminated escape");
        advance st;
        go ()
      end
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  if st.pos = start then error st "expected number";
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> error st (Printf.sprintf "bad number %s" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string_body st)
  | Some '[' -> begin
      advance st;
      skip_ws st;
      match peek st with
      | Some ']' ->
          advance st;
          List []
      | _ ->
          let rec items acc =
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                advance st;
                items (v :: acc)
            | Some ']' ->
                advance st;
                List (List.rev (v :: acc))
            | _ -> error st "expected , or ]"
          in
          items []
    end
  | Some '{' -> begin
      advance st;
      skip_ws st;
      match peek st with
      | Some '}' ->
          advance st;
          Obj []
      | _ ->
          let rec fields acc =
            skip_ws st;
            let k = parse_string_body st in
            skip_ws st;
            expect st ':';
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                advance st;
                fields ((k, v) :: acc)
            | Some '}' ->
                advance st;
                Obj (List.rev ((k, v) :: acc))
            | _ -> error st "expected , or }"
          in
          fields []
    end
  | Some _ -> Num (parse_number st)

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then error st "trailing garbage";
  v

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
      List.length xs = List.length ys
      && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) xs ys
  | (Null | Bool _ | Num _ | Str _ | List _ | Obj _), _ -> false

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
