exception Corrupt of string

type writer = Buffer.t

let writer () = Buffer.create 64
let contents w = Buffer.to_bytes w
let size w = Buffer.length w

(* Zig-zag maps small negative ints to small unsigned codes. *)
let zigzag i = (i lsl 1) lxor (i asr (Sys.int_size - 1))
let unzigzag u = (u lsr 1) lxor (-(u land 1))

let write_varint w i =
  let u = ref (zigzag i) in
  let continue = ref true in
  while !continue do
    let b = !u land 0x7F in
    u := !u lsr 7;
    if !u = 0 then begin
      Buffer.add_char w (Char.chr b);
      continue := false
    end
    else Buffer.add_char w (Char.chr (b lor 0x80))
  done

let write_int64 w i =
  for shift = 0 to 7 do
    Buffer.add_char w (Char.chr (Int64.to_int (Int64.shift_right_logical i (8 * shift)) land 0xFF))
  done

let write_float w f = write_int64 w (Int64.bits_of_float f)
let write_byte w c = Buffer.add_char w c
let write_bool w b = Buffer.add_char w (if b then '\001' else '\000')

let write_string w s =
  write_varint w (String.length s);
  Buffer.add_string w s

let write_bytes w b =
  write_varint w (Bytes.length b);
  Buffer.add_bytes w b

type reader = { data : Bytes.t; mutable pos : int }

let reader data = { data; pos = 0 }
let remaining r = Bytes.length r.data - r.pos
let at_end r = remaining r = 0

let need r n = if remaining r < n then raise (Corrupt (Printf.sprintf "need %d bytes, have %d" n (remaining r)))

let read_byte r =
  need r 1;
  let c = Bytes.get r.data r.pos in
  r.pos <- r.pos + 1;
  c

let read_varint r =
  let rec go shift acc =
    if shift > Sys.int_size then raise (Corrupt "varint too long");
    let b = Char.code (read_byte r) in
    let acc = acc lor ((b land 0x7F) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  unzigzag (go 0 0)

let read_int64 r =
  need r 8;
  let v = ref 0L in
  for shift = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code (Bytes.get r.data (r.pos + shift))))
  done;
  r.pos <- r.pos + 8;
  !v

let read_float r = Int64.float_of_bits (read_int64 r)
let read_bool r = read_byte r <> '\000'

let read_string r =
  let n = read_varint r in
  if n < 0 then raise (Corrupt "negative string length");
  need r n;
  let s = Bytes.sub_string r.data r.pos n in
  r.pos <- r.pos + n;
  s

let read_bytes r = Bytes.of_string (read_string r)
