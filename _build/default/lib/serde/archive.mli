(** Low-level binary archives: a growing byte sink for serialization and a
    cursor-based source for deserialization.

    Integers use zig-zag varint coding; floats are raw IEEE-754 bits.  The
    format is self-contained and endianness-independent. *)

(** Raised by readers on malformed or truncated input. *)
exception Corrupt of string

(** {1 Writing} *)

type writer

(** [writer ()] is an empty sink. *)
val writer : unit -> writer

(** [contents w] is everything written so far. *)
val contents : writer -> Bytes.t

(** [size w] is the number of bytes written so far. *)
val size : writer -> int

val write_varint : writer -> int -> unit
val write_int64 : writer -> int64 -> unit
val write_float : writer -> float -> unit
val write_byte : writer -> char -> unit
val write_bool : writer -> bool -> unit
val write_string : writer -> string -> unit
val write_bytes : writer -> Bytes.t -> unit

(** {1 Reading} *)

type reader

(** [reader b] starts a cursor at the beginning of [b]. *)
val reader : Bytes.t -> reader

(** [remaining r] is the number of unread bytes. *)
val remaining : reader -> int

(** [at_end r] is [remaining r = 0]. *)
val at_end : reader -> bool

val read_varint : reader -> int
val read_int64 : reader -> int64
val read_float : reader -> float
val read_byte : reader -> char
val read_bool : reader -> bool
val read_string : reader -> string
val read_bytes : reader -> Bytes.t
