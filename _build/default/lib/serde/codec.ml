type 'a t = {
  name : string;
  write : Archive.writer -> 'a -> unit;
  read : Archive.reader -> 'a;
  to_json : 'a -> Json.t;
  of_json : Json.t -> 'a;
}

let name c = c.name
let write c = c.write
let read c = c.read
let to_json c = c.to_json
let of_json c = c.of_json

let encode c v =
  let w = Archive.writer () in
  c.write w v;
  Archive.contents w

let decode c b =
  let r = Archive.reader b in
  let v = c.read r in
  if not (Archive.at_end r) then
    raise (Archive.Corrupt (Printf.sprintf "%s: %d trailing bytes" c.name (Archive.remaining r)));
  v

let encode_json c v = Json.to_string (c.to_json v)
let decode_json c s = c.of_json (Json.parse s)

let json_error cname expected =
  raise (Archive.Corrupt (Printf.sprintf "%s: JSON value is not a %s" cname expected))

let unit =
  {
    name = "unit";
    write = (fun _ () -> ());
    read = (fun _ -> ());
    to_json = (fun () -> Json.Null);
    of_json = (function Json.Null -> () | _ -> json_error "unit" "null");
  }

let bool =
  {
    name = "bool";
    write = Archive.write_bool;
    read = Archive.read_bool;
    to_json = (fun b -> Json.Bool b);
    of_json = (function Json.Bool b -> b | _ -> json_error "bool" "bool");
  }

let char =
  {
    name = "char";
    write = Archive.write_byte;
    read = Archive.read_byte;
    to_json = (fun c -> Json.Str (String.make 1 c));
    of_json =
      (function Json.Str s when String.length s = 1 -> s.[0] | _ -> json_error "char" "1-char string");
  }

let int =
  {
    name = "int";
    write = Archive.write_varint;
    read = Archive.read_varint;
    to_json = (fun i -> Json.Num (float_of_int i));
    of_json = (function Json.Num f -> int_of_float f | _ -> json_error "int" "number");
  }

let int64 =
  {
    name = "int64";
    write = Archive.write_int64;
    read = Archive.read_int64;
    (* JSON doubles cannot hold all int64s; carry them as strings. *)
    to_json = (fun i -> Json.Str (Int64.to_string i));
    of_json =
      (function
      | Json.Str s -> (
          match Int64.of_string_opt s with Some i -> i | None -> json_error "int64" "int64 string")
      | Json.Num f -> Int64.of_float f
      | _ -> json_error "int64" "string");
  }

let float =
  {
    name = "float";
    write = Archive.write_float;
    read = Archive.read_float;
    to_json = (fun f -> Json.Num f);
    of_json = (function Json.Num f -> f | _ -> json_error "float" "number");
  }

let string =
  {
    name = "string";
    write = Archive.write_string;
    read = Archive.read_string;
    to_json = (fun s -> Json.Str s);
    of_json = (function Json.Str s -> s | _ -> json_error "string" "string");
  }

let option c =
  {
    name = c.name ^ " option";
    write =
      (fun w v ->
        match v with
        | None -> Archive.write_bool w false
        | Some x ->
            Archive.write_bool w true;
            c.write w x);
    read = (fun r -> if Archive.read_bool r then Some (c.read r) else None);
    to_json = (fun v -> match v with None -> Json.Null | Some x -> Json.List [ c.to_json x ]);
    of_json =
      (function
      | Json.Null -> None
      | Json.List [ j ] -> Some (c.of_json j)
      | _ -> json_error "option" "null or singleton list");
  }

let pair a b =
  {
    name = Printf.sprintf "(%s * %s)" a.name b.name;
    write =
      (fun w (x, y) ->
        a.write w x;
        b.write w y);
    read =
      (fun r ->
        let x = a.read r in
        let y = b.read r in
        (x, y));
    to_json = (fun (x, y) -> Json.List [ a.to_json x; b.to_json y ]);
    of_json =
      (function
      | Json.List [ jx; jy ] -> (a.of_json jx, b.of_json jy)
      | _ -> json_error "pair" "2-element list");
  }

let triple a b c =
  {
    name = Printf.sprintf "(%s * %s * %s)" a.name b.name c.name;
    write =
      (fun w (x, y, z) ->
        a.write w x;
        b.write w y;
        c.write w z);
    read =
      (fun r ->
        let x = a.read r in
        let y = b.read r in
        let z = c.read r in
        (x, y, z));
    to_json = (fun (x, y, z) -> Json.List [ a.to_json x; b.to_json y; c.to_json z ]);
    of_json =
      (function
      | Json.List [ jx; jy; jz ] -> (a.of_json jx, b.of_json jy, c.of_json jz)
      | _ -> json_error "triple" "3-element list");
  }

let list c =
  {
    name = c.name ^ " list";
    write =
      (fun w items ->
        Archive.write_varint w (List.length items);
        List.iter (c.write w) items);
    read =
      (fun r ->
        let n = Archive.read_varint r in
        if n < 0 then raise (Archive.Corrupt "negative list length");
        List.init n (fun _ -> c.read r));
    to_json = (fun items -> Json.List (List.map c.to_json items));
    of_json =
      (function Json.List items -> List.map c.of_json items | _ -> json_error "list" "list");
  }

let array c =
  let as_list = list c in
  {
    name = c.name ^ " array";
    write = (fun w items -> as_list.write w (Array.to_list items));
    read = (fun r -> Array.of_list (as_list.read r));
    to_json = (fun items -> as_list.to_json (Array.to_list items));
    of_json = (fun j -> Array.of_list (as_list.of_json j));
  }

let vec c =
  let as_array = array c in
  {
    name = c.name ^ " vec";
    write = (fun w v -> as_array.write w (Ds.Vec.to_array v));
    read = (fun r -> Ds.Vec.of_array (as_array.read r));
    to_json = (fun v -> as_array.to_json (Ds.Vec.to_array v));
    of_json = (fun j -> Ds.Vec.of_array (as_array.of_json j));
  }

let result okc errc =
  {
    name = Printf.sprintf "(%s, %s) result" okc.name errc.name;
    write =
      (fun w v ->
        match v with
        | Ok x ->
            Archive.write_bool w true;
            okc.write w x
        | Error e ->
            Archive.write_bool w false;
            errc.write w e);
    read = (fun r -> if Archive.read_bool r then Ok (okc.read r) else Error (errc.read r));
    to_json =
      (fun v ->
        match v with
        | Ok x -> Json.Obj [ ("ok", okc.to_json x) ]
        | Error e -> Json.Obj [ ("error", errc.to_json e) ]);
    of_json =
      (fun j ->
        match (Json.member "ok" j, Json.member "error" j) with
        | Some jx, None -> Ok (okc.of_json jx)
        | None, Some je -> Error (errc.of_json je)
        | _ -> json_error "result" "{ok} or {error} object");
  }

let assoc c =
  {
    name = c.name ^ " assoc";
    write =
      (fun w bindings ->
        Archive.write_varint w (List.length bindings);
        List.iter
          (fun (k, v) ->
            Archive.write_string w k;
            c.write w v)
          bindings);
    read =
      (fun r ->
        let n = Archive.read_varint r in
        if n < 0 then raise (Archive.Corrupt "negative assoc length");
        List.init n (fun _ ->
            let k = Archive.read_string r in
            let v = c.read r in
            (k, v)));
    to_json = (fun bindings -> Json.Obj (List.map (fun (k, v) -> (k, c.to_json v)) bindings));
    of_json =
      (function
      | Json.Obj fields -> List.map (fun (k, j) -> (k, c.of_json j)) fields
      | _ -> json_error "assoc" "object");
  }

let hashtbl kc vc =
  let bindings = list (pair kc vc) in
  let to_bindings tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let of_bindings bs =
    let tbl = Hashtbl.create (List.length bs) in
    List.iter (fun (k, v) -> Hashtbl.replace tbl k v) bs;
    tbl
  in
  {
    name = Printf.sprintf "(%s, %s) hashtbl" kc.name vc.name;
    write = (fun w tbl -> bindings.write w (to_bindings tbl));
    read = (fun r -> of_bindings (bindings.read r));
    to_json = (fun tbl -> bindings.to_json (to_bindings tbl));
    of_json = (fun j -> of_bindings (bindings.of_json j));
  }

let conv ~name to_repr of_repr repr =
  {
    name;
    write = (fun w v -> repr.write w (to_repr v));
    read = (fun r -> of_repr (repr.read r));
    to_json = (fun v -> repr.to_json (to_repr v));
    of_json = (fun j -> of_repr (repr.of_json j));
  }

let delayed f =
  let forced = lazy (f ()) in
  {
    name = "delayed";
    write = (fun w v -> (Lazy.force forced).write w v);
    read = (fun r -> (Lazy.force forced).read r);
    to_json = (fun v -> (Lazy.force forced).to_json v);
    of_json = (fun j -> (Lazy.force forced).of_json j);
  }
