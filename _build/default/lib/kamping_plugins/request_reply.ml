module K = Kamping.Comm
module V = Ds.Vec

type transport = Dense | Sparse

(* Dense transport: bucket by owner, one alltoallv out, one back.  The
   reply alltoallv's receive counts equal the request send counts, so the
   return trip runs on the zero-overhead path. *)
let dense_roundtrip comm kdt vdt ~lookup (buckets : (int, 'k V.t) Hashtbl.t) =
  let p = K.size comm in
  let flat = Kamping.Flatten.flatten ~comm_size:p buckets in
  let requests =
    K.alltoallv ~recv_counts_out:true ~recv_displs_out:true comm kdt
      ~send_buf:flat.Kamping.Flatten.data ~send_counts:flat.Kamping.Flatten.send_counts
  in
  let rcounts = Option.get requests.K.recv_counts in
  let answers = V.map lookup requests.K.recv_buf in
  K.compute comm (Kamping.Costs.hash_ops (V.length answers));
  let replies =
    K.alltoallv ~recv_counts:flat.Kamping.Flatten.send_counts comm vdt ~send_buf:answers
      ~send_counts:rcounts
  in
  replies.K.recv_buf

(* Sparse transport: two NBX rounds with distinct tags. *)
let sparse_roundtrip comm kdt vdt ~lookup (buckets : (int, 'k V.t) Hashtbl.t) =
  let messages = Hashtbl.fold (fun dest keys acc -> (dest, keys) :: acc) buckets [] in
  let incoming = Sparse_alltoall.exchange ~tag:0x5c1 comm kdt ~messages in
  let outgoing_replies =
    List.map
      (fun (requester, keys) ->
        K.compute comm (Kamping.Costs.hash_ops (V.length keys));
        (requester, V.map lookup keys))
      incoming
  in
  let replies = Sparse_alltoall.exchange ~tag:0x5c2 comm vdt ~messages:outgoing_replies in
  (* reassemble in ascending owner order, as the dense path delivers *)
  let out = V.create () in
  List.iter (fun (_, values) -> V.append out values) replies;
  out

let read ?(transport = Dense) t kdt vdt ~owner ~lookup keys =
  let p = K.size t in
  let buckets : (int, 'k V.t) Hashtbl.t = Hashtbl.create 8 in
  (* remember where each request came from so results return in order *)
  let slots : (int, int V.t) Hashtbl.t = Hashtbl.create 8 in
  V.iteri
    (fun i key ->
      let o = owner key in
      if o < 0 || o >= p then Mpisim.Errors.usage "request_reply: owner %d out of range" o;
      (match Hashtbl.find_opt buckets o with
      | Some b -> V.push b key
      | None -> Hashtbl.add buckets o (V.of_list [ key ]));
      match Hashtbl.find_opt slots o with
      | Some s -> V.push s i
      | None -> Hashtbl.add slots o (V.of_list [ i ]))
    keys;
  let values =
    match transport with
    | Dense -> dense_roundtrip t kdt vdt ~lookup buckets
    | Sparse -> sparse_roundtrip t kdt vdt ~lookup buckets
  in
  (* values arrive grouped by owner rank ascending, within a group in my
     request order: scatter them back to the original positions *)
  let n = V.length keys in
  if V.length values <> n then
    Mpisim.Errors.usage "request_reply: received %d values for %d requests" (V.length values) n;
  if n = 0 then V.create ()
  else begin
    let out = V.init n (fun i -> (V.get keys i, V.get values 0)) in
    let cursor = ref 0 in
    for o = 0 to p - 1 do
      match Hashtbl.find_opt slots o with
      | Some s ->
          V.iter
            (fun original ->
              V.set out original (V.get keys original, V.get values !cursor);
              incr cursor)
            s
      | None -> ()
    done;
    out
  end
