(** d-dimensional grid all-to-all — the paper's future-work direction
    ("generalizing the indirection patterns for all-to-all primitives to
    higher dimensions", Sec. VI), with message aggregation per hop.

    Ranks are arranged in a complete d-dimensional grid whose shape comes
    from factoring p exactly (no partial rows, unlike the 2D plugin's
    ceil-sqrt layout), and a message travels d hops, fixing one coordinate
    of its destination per hop.  Each hop aggregates everything headed for
    the same intermediate into one message, so a rank pays
    O(d * p^(1/d)) message start-ups per exchange at the price of routing
    envelopes on the payload (source and destination ride along) and
    d-fold volume. *)

type t

(** [create ?dims comm ~ndims] builds the grid; [dims] defaults to
    {!Mpisim.Cart.dims_create}[ ~nodes:p ~ndims].
    @raise Mpisim.Errors.Usage_error if the dims product differs from p. *)
val create : ?dims:int array -> Kamping.Comm.t -> ndims:int -> t

(** [dims t] is the grid shape. *)
val dims : t -> int array

(** [max_partners t] is the per-phase partner bound
    [sum (dims - 1)] — the start-up budget of one exchange. *)
val max_partners : t -> int

(** [alltoallv t dt ~send_buf ~send_counts] — same semantics as
    {!Kamping.Comm.alltoallv} with computed receive side: returns the
    received elements grouped by source rank plus the per-source counts.
    The element datatype needs a default element. *)
val alltoallv :
  t ->
  'a Mpisim.Datatype.t ->
  send_buf:'a Ds.Vec.t ->
  send_counts:int array ->
  'a Ds.Vec.t * int array
