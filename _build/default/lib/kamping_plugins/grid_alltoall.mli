(** Two-dimensional grid all-to-all (paper Sec. V-A; Kalé et al., IPDPS
    2003).

    The p ranks are arranged in a virtual (near-)square grid.  A message
    from [src] to [dst] travels two hops: first within [src]'s {e row} to
    the rank sitting in [dst]'s {e column}, then within that column to
    [dst].  Each rank therefore opens O(sqrt p) connections per phase
    instead of O(p), trading a doubled communication volume (payloads carry
    routing envelopes) for O(sqrt p) message start-ups — a hardware-agnostic
    latency reduction with asymptotic guarantees.

    Construction is collective (two communicator splits); the resulting
    value is reusable for any number of exchanges. *)

type t

(** [create comm] builds the grid (collective). *)
val create : Kamping.Comm.t -> t

(** [comm grid] is the communicator the grid spans. *)
val comm : t -> Kamping.Comm.t

(** [columns grid] is the grid width (ceil(sqrt p)). *)
val columns : t -> int

(** [rows grid] is the grid height (the last row may be partial). *)
val rows : t -> int

(** [alltoallv grid dt ~send_buf ~send_counts] has the same semantics as
    {!Kamping.Comm.alltoallv} with internally computed receive parameters:
    returns the received elements grouped by source rank, plus the counts.
    The element datatype needs a default element (routing buffers are
    allocated on intermediate hops). *)
val alltoallv :
  t ->
  'a Mpisim.Datatype.t ->
  send_buf:'a Ds.Vec.t ->
  send_counts:int array ->
  'a Ds.Vec.t * int array
