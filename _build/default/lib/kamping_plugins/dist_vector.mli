(** A distributed vector: first step towards the "distributed containers
    for lightweight bulk parallel computation" the paper sketches as future
    work (Sec. VI, MapReduce/Thrill-inspired — without locking users into a
    framework: the local data is always accessible, and every operation is
    an ordinary KaMPIng call underneath).

    A ['a t] is a globally ordered sequence whose elements live block-wise
    on the ranks of one communicator.  All operations are collective. *)

type 'a t

(** [create comm dt local] wraps this rank's slice (the global order is
    rank order). *)
val create : Kamping.Comm.t -> 'a Mpisim.Datatype.t -> 'a Ds.Vec.t -> 'a t

(** [local v] is this rank's slice (shared, not copied). *)
val local : 'a t -> 'a Ds.Vec.t

(** [global_size v] is the total element count (collective). *)
val global_size : 'a t -> int

(** [map dt_out f v] applies [f] element-wise (embarrassingly parallel). *)
val map : 'b Mpisim.Datatype.t -> ('a -> 'b) -> 'a t -> 'b t

(** [filter p v] keeps matching elements (local lengths shrink; rebalance
    with {!balance} if needed). *)
val filter : ('a -> bool) -> 'a t -> 'a t

(** [reduce f v] combines all elements in the {e fixed global order} using
    the reproducible-reduce plugin: the result is independent of the rank
    count even for floating-point operations.
    @raise Mpisim.Errors.Usage_error on an empty vector. *)
val reduce : ('a -> 'a -> 'a) -> 'a t -> 'a

(** [balance v] redistributes to an even block distribution (one
    alltoallv), preserving the global order. *)
val balance : 'a t -> 'a t

(** [sort ~cmp v] globally sorts (the sorter plugin). *)
val sort : cmp:('a -> 'a -> int) -> 'a t -> 'a t

(** [gather_all v] replicates the whole sequence on every rank. *)
val gather_all : 'a t -> 'a Ds.Vec.t
