(** Fault tolerance via ULFM, with idiomatic exceptions (paper Sec. V-B,
    Fig. 12).

    Failures surface as [Mpisim.Errors.Process_failed] exceptions from any
    operation that depends on a dead peer.  Recovery follows the ULFM
    recipe: catch, [revoke] the communicator so every other rank's pending
    operations abort too, then [shrink] to a survivors-only communicator
    and retry. *)

(** [is_revoked t] tests the ULFM revocation flag. *)
val is_revoked : Kamping.Comm.t -> bool

(** [revoke t] interrupts all current and future operations on the
    communicator everywhere. *)
val revoke : Kamping.Comm.t -> unit

(** [shrink t] builds the survivors-only communicator (collective over the
    survivors). *)
val shrink : Kamping.Comm.t -> Kamping.Comm.t

(** [agree t v] reaches agreement on the bitwise AND of [v] across
    survivors. *)
val agree : Kamping.Comm.t -> int -> int

(** [num_failed t] counts dead members of [t]. *)
val num_failed : Kamping.Comm.t -> int

(** [with_recovery t f] runs [f comm], and on a detected process failure
    performs revoke + shrink and retries [f] on the shrunk communicator —
    the Fig. 12 pattern packaged as a combinator.  Gives up when no rank is
    left ([None]) or after [max_retries]. *)
val with_recovery :
  ?max_retries:int -> Kamping.Comm.t -> (Kamping.Comm.t -> 'a) -> ('a * Kamping.Comm.t) option
