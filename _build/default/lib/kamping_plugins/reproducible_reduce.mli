(** Reproducible reduction (paper Sec. V-C, Fig. 13; Stelz 2022, inspired
    by Villa et al. 2009).

    IEEE-754 addition is not associative, so an [MPI_Reduce] whose tree
    shape depends on the number of ranks returns {e different} float sums
    for different p.  This plugin fixes the reduction order once and for
    all: a binary tree over the {e global element indices} [0..n), split at
    the largest power of two.  Whatever the distribution across ranks, the
    very same additions happen in the very same order, so the result is
    bitwise identical for every p — while still running in parallel with
    only O(log n) messages per rank (each rank forwards the values of its
    maximal boundary subtrees to the rank owning the enclosing node).

    Like normal KaMPIng reduce, the operation may be a built-in constant or
    any OCaml closure. *)

(** [reduce t dt op ~send_buf] reduces the distributed vector formed by
    concatenating all ranks' [send_buf]s in rank order.  Returns the global
    result on every rank (tree reduction to the owner of element 0, then a
    broadcast).  The operation must be associative only {e semantically};
    rounding is applied in the fixed tree order.
    @raise Mpisim.Errors.Usage_error if the global vector is empty. *)
val reduce :
  Kamping.Comm.t -> 'a Mpisim.Datatype.t -> ('a -> 'a -> 'a) -> send_buf:'a Ds.Vec.t -> 'a

(** [local_tree_reduce op values lo hi] is the fixed-order reduction of one
    contiguous index range (exposed for testing: the distributed result
    must equal the single-rank run of this function over [0..n)). *)
val local_tree_reduce : ('a -> 'a -> 'a) -> (int -> 'a) -> int -> int -> 'a
