(** Sparse all-to-all exchange via the NBX algorithm (paper Sec. V-A;
    Hoefler, Siebert, Lumsdaine, PPoPP 2010).

    [MPI_Alltoallv] needs a counts entry {e per rank}, making every exchange
    Omega(p) even when each rank only talks to a handful of neighbors.  NBX
    instead sends each message with a {e synchronous} send, polls for
    incoming messages, and detects global termination with a non-blocking
    barrier entered once all local sends completed: total work proportional
    to the number of actual communication partners.

    Unlike MPI's neighborhood collectives, no topology has to be declared
    upfront — ideal for dynamically changing patterns like BFS frontiers. *)

(** [exchange t dt ~messages] sends each [(dest, payload)] pair and returns
    everything received this round as [(source, payload)] pairs, sorted by
    source.  Every rank of [t] must call it (it is collective despite the
    sparse pattern).

    @param tag distinguishes concurrent exchanges (default a plugin tag)
    @param poll_interval simulated seconds between progress polls *)
val exchange :
  ?tag:int ->
  ?poll_interval:float ->
  Kamping.Comm.t ->
  'a Mpisim.Datatype.t ->
  messages:(int * 'a Ds.Vec.t) list ->
  (int * 'a Ds.Vec.t) list
