module V = Ds.Vec
module P = Mpisim.P2p
module D = Mpisim.Datatype

type t = {
  comm : Kamping.Comm.t;
  grid_dims : int array;
  coords : int array;  (* my position *)
  mutable seq : int;
}

(* row-major, last dimension fastest (as in Cart) *)
let coords_of dims rank =
  let nd = Array.length dims in
  let out = Array.make nd 0 in
  let rest = ref rank in
  for d = nd - 1 downto 0 do
    out.(d) <- !rest mod dims.(d);
    rest := !rest / dims.(d)
  done;
  out

let rank_of dims coords =
  let rank = ref 0 in
  Array.iteri (fun d c -> rank := (!rank * dims.(d)) + c) coords;
  ignore dims;
  !rank

let create ?dims comm ~ndims =
  let p = Kamping.Comm.size comm in
  let grid_dims =
    match dims with Some d -> Array.copy d | None -> Mpisim.Cart.dims_create ~nodes:p ~ndims
  in
  if Array.fold_left ( * ) 1 grid_dims <> p then
    Mpisim.Errors.usage "Hypergrid.create: dims product does not equal the communicator size";
  Kamping.Comm.barrier comm;
  { comm; grid_dims; coords = coords_of grid_dims (Kamping.Comm.rank comm); seq = 0 }

let dims t = Array.copy t.grid_dims
let max_partners t = Array.fold_left (fun acc d -> acc + (d - 1)) 0 t.grid_dims

(* partners of one phase: ranks differing from me only in dimension [dim] *)
let phase_partners t ~dim =
  Array.init t.grid_dims.(dim) (fun c ->
      let coords = Array.copy t.coords in
      coords.(dim) <- c;
      rank_of t.grid_dims coords)

(* counts-then-payload exchange with a fixed symmetric partner set *)
let phase_exchange comm dt ~partners ~outgoing ~count_tag ~data_tag =
  let raw = Kamping.Comm.raw comm in
  let count_reqs =
    Array.to_list partners
    |> List.map (fun src ->
           let buf = [| 0 |] in
           (src, buf, P.irecv raw D.int buf ~src ~tag:count_tag))
  in
  Array.iter
    (fun dst ->
      let n = match outgoing dst with Some v -> V.length v | None -> 0 in
      P.send raw D.int [| n |] ~dst ~tag:count_tag)
    partners;
  let incoming =
    List.map
      (fun (src, buf, req) ->
        ignore (Mpisim.Request.wait req);
        (src, buf.(0)))
      count_reqs
  in
  let fill =
    match D.default_elt dt with
    | Some d -> d
    | None -> Mpisim.Errors.usage "hypergrid: datatype %s needs ~default" (D.name dt)
  in
  let data_reqs =
    incoming
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (src, n) ->
           let buf = Array.make n fill in
           (buf, P.irecv raw dt buf ~src ~tag:data_tag))
  in
  Array.iter
    (fun dst ->
      match outgoing dst with
      | Some v when V.length v > 0 ->
          P.send raw dt (V.unsafe_data v) ~count:(V.length v) ~dst ~tag:data_tag
      | Some _ | None -> ())
    partners;
  List.map
    (fun (buf, req) ->
      ignore (Mpisim.Request.wait req);
      buf)
    data_reqs

let alltoallv t dt ~send_buf ~send_counts =
  let comm = t.comm in
  let p = Kamping.Comm.size comm in
  if Array.length send_counts <> p then
    Mpisim.Errors.usage "hypergrid: send_counts must have one entry per rank";
  t.seq <- t.seq + 1;
  let nd = Array.length t.grid_dims in
  let base = 0x680000 + (2 * nd * t.seq) in
  (* envelope: (source, destination, element) *)
  let dt_routed = D.pair (D.pair D.int D.int) dt in
  let r = Kamping.Comm.rank comm in
  (* initial holdings: my own outgoing messages *)
  let current = ref (V.create ()) in
  let pos = ref 0 in
  Array.iteri
    (fun dst count ->
      for k = 0 to count - 1 do
        V.push !current ((r, dst), V.get send_buf (!pos + k))
      done;
      pos := !pos + count)
    send_counts;
  Kamping.Comm.compute comm (Kamping.Costs.linear (V.length send_buf));
  (* d hops: fix destination coordinate [dim] at hop [dim] *)
  for dim = 0 to nd - 1 do
    let partners = phase_partners t ~dim in
    let buckets : (int, ((int * int) * 'a) V.t) Hashtbl.t = Hashtbl.create 8 in
    V.iter
      (fun (((_, dst), _) as routed) ->
        let dcoords = coords_of t.grid_dims dst in
        let icoords = Array.copy t.coords in
        for d = 0 to dim do
          icoords.(d) <- dcoords.(d)
        done;
        let intermediate = rank_of t.grid_dims icoords in
        match Hashtbl.find_opt buckets intermediate with
        | Some b -> V.push b routed
        | None -> Hashtbl.add buckets intermediate (V.of_list [ routed ]))
      !current;
    Kamping.Comm.compute comm (Kamping.Costs.linear (V.length !current));
    let received =
      phase_exchange comm dt_routed ~partners ~outgoing:(Hashtbl.find_opt buckets)
        ~count_tag:(base + (2 * dim))
        ~data_tag:(base + (2 * dim) + 1)
    in
    let next = V.create () in
    List.iter (fun arr -> Array.iter (V.push next) arr) received;
    current := next
  done;
  (* everything now lives at its destination: group by source *)
  let per_src = Array.make p 0 in
  V.iter (fun ((s, _), _) -> per_src.(s) <- per_src.(s) + 1) !current;
  let displs = Array.make p 0 in
  for i = 1 to p - 1 do
    displs.(i) <- displs.(i - 1) + per_src.(i - 1)
  done;
  let fill =
    match D.default_elt dt with
    | Some d -> d
    | None -> Mpisim.Errors.usage "hypergrid: datatype %s needs ~default" (D.name dt)
  in
  let out = V.make (V.length !current) fill in
  let cursor = Array.copy displs in
  V.iter
    (fun ((s, _), x) ->
      V.set out cursor.(s) x;
      cursor.(s) <- cursor.(s) + 1)
    !current;
  Kamping.Comm.compute comm (Kamping.Costs.linear (2 * V.length !current));
  (out, per_src)
