module K = Kamping.Comm
module V = Ds.Vec

type 'a t = { comm : K.t; dt : 'a Mpisim.Datatype.t; data : 'a V.t }

let create comm dt data = { comm; dt; data }
let local v = v.data

let global_size v =
  K.allreduce_single v.comm Mpisim.Datatype.int Mpisim.Op.int_sum (V.length v.data)

let map dt_out f v =
  Kamping.Comm.compute v.comm (Kamping.Costs.linear (V.length v.data));
  { comm = v.comm; dt = dt_out; data = V.map f v.data }

let filter p v =
  let kept = V.create () in
  V.iter (fun x -> if p x then V.push kept x) v.data;
  Kamping.Comm.compute v.comm (Kamping.Costs.linear (V.length v.data));
  { v with data = kept }

let reduce f v = Reproducible_reduce.reduce v.comm v.dt f ~send_buf:v.data

let balance v =
  let comm = v.comm in
  let p = K.size comm and r = K.rank comm in
  (* global layout: where my slice starts and how large the whole is *)
  let count = V.length v.data in
  let my_start = K.exscan_single ~init:0 comm Mpisim.Datatype.int Mpisim.Op.int_sum count in
  let n = K.allreduce_single comm Mpisim.Datatype.int Mpisim.Op.int_sum count in
  (* target block layout *)
  let target_start t =
    let base = n / p and extra = n mod p in
    (t * base) + min t extra
  in
  let target_end t = target_start (t + 1) in
  (* slice my elements by target owner: both sides can derive all counts *)
  let send_counts = Array.make p 0 in
  for t = 0 to p - 1 do
    let lo = max my_start (target_start t) and hi = min (my_start + count) (target_end t) in
    if hi > lo then send_counts.(t) <- hi - lo
  done;
  let recv_counts = Array.make p 0 in
  let starts = Array.make p 0 in
  ignore
    (K.allgather ~recv_buf:(V.unsafe_of_array starts p) comm Mpisim.Datatype.int
       ~send_buf:(V.of_list [ my_start ]));
  for s = 0 to p - 1 do
    let s_end = if s = p - 1 then n else starts.(s + 1) in
    let lo = max starts.(s) (target_start r) and hi = min s_end (target_end r) in
    if hi > lo then recv_counts.(s) <- hi - lo
  done;
  let res = K.alltoallv ~recv_counts comm v.dt ~send_buf:v.data ~send_counts in
  { v with data = res.K.recv_buf }

let sort ~cmp v = { v with data = Sorter.sort v.comm v.dt ~cmp v.data }

let gather_all v = (K.allgatherv v.comm v.dt ~send_buf:v.data).K.recv_buf
