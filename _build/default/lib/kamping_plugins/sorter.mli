(** STL-like distributed sorter plugin (paper Secs. IV-A / V).

    [sort] globally sorts the distributed vector formed by all ranks' local
    vectors: afterwards every rank holds a contiguous, locally sorted slice
    and slices are ordered across ranks.  The implementation is textbook
    sample sort — random local samples, an allgather of the samples,
    splitter selection, bucket partitioning and one alltoallv — entirely on
    top of the public KaMPIng interface, demonstrating the plugin story. *)

(** [sort t dt ~cmp ~seed data] sorts in place across ranks and returns this
    rank's slice (which replaces its input).  [seed] makes sampling
    deterministic.

    @param oversampling samples per rank (default [16 * log2 p + 1], the
    textbook choice used in the paper's Fig. 7). *)
val sort :
  ?oversampling:int ->
  ?seed:int ->
  Kamping.Comm.t ->
  'a Mpisim.Datatype.t ->
  cmp:('a -> 'a -> int) ->
  'a Ds.Vec.t ->
  'a Ds.Vec.t

(** [is_globally_sorted t dt ~cmp data] checks the global sortedness
    invariant (used by tests): locally sorted and boundary elements ordered
    across adjacent non-empty ranks. *)
val is_globally_sorted :
  Kamping.Comm.t -> 'a Mpisim.Datatype.t -> cmp:('a -> 'a -> int) -> 'a Ds.Vec.t -> bool
