module V = Ds.Vec
module P = Mpisim.P2p
module D = Mpisim.Datatype

(* Ranks are laid out row-major in a [rows x cols] grid whose last row may
   be partial.  A message src -> dst is routed to the intermediate rank
   (row src, col dst); when that slot does not exist (src in the partial
   last row, col dst beyond its width) the slot directly above is used —
   still in dst's column, so phase 2 stays a pure column exchange.

   Phase-1 partner sets are therefore: the own row, widened by the partial
   last row for its upstairs neighbours.  Both phases exchange counts first
   (one small message per partner), then the payloads — O(sqrt p) messages
   per rank in total. *)

type t = {
  comm : Kamping.Comm.t;
  cols : int;
  rows : int;
  phase1_send : int array;  (* potential intermediates I may send to *)
  phase1_recv : int array;  (* ranks whose phase-1 messages I may receive *)
  phase2_peers : int array;  (* my column, both directions *)
  mutable seq : int;
}

let row_of cols r = r / cols
let col_of cols r = r mod cols

let row_members ~p ~cols row =
  let lo = row * cols in
  let hi = min p (lo + cols) in
  Array.init (hi - lo) (fun i -> lo + i)

let col_members ~p ~cols col =
  let rec go r acc = if r >= p then List.rev acc else go (r + cols) (r :: acc) in
  Array.of_list (go col [])

let create comm =
  let p = Kamping.Comm.size comm and r = Kamping.Comm.rank comm in
  let cols = int_of_float (ceil (sqrt (float_of_int p))) in
  let rows = (p + cols - 1) / cols in
  let last_row_partial = p mod cols <> 0 in
  let my_row = row_of cols r in
  let phase1_send =
    if last_row_partial && my_row = rows - 1 then
      Array.append (row_members ~p ~cols my_row) (row_members ~p ~cols (rows - 2))
    else row_members ~p ~cols my_row
  in
  let phase1_recv =
    if last_row_partial && my_row = rows - 2 then
      Array.append (row_members ~p ~cols my_row) (row_members ~p ~cols (rows - 1))
    else row_members ~p ~cols my_row
  in
  let phase2_peers = col_members ~p ~cols (col_of cols r) in
  (* Building the grid is collective: synchronize like a topology create. *)
  Kamping.Comm.barrier comm;
  { comm; cols; rows; phase1_send; phase1_recv; phase2_peers; seq = 0 }

let comm grid = grid.comm
let columns grid = grid.cols
let rows grid = grid.rows

(* One direction of a phase: exchange counts with every potential partner,
   then payloads with the partners that actually have data. *)
let phase_exchange comm dt ~send_to ~recv_from ~outgoing ~count_tag ~data_tag =
  let raw = Kamping.Comm.raw comm in
  let count_reqs =
    Array.to_list recv_from
    |> List.map (fun src ->
           let buf = [| 0 |] in
           (src, buf, P.irecv raw D.int buf ~src ~tag:count_tag))
  in
  Array.iter
    (fun dst ->
      let payload = match outgoing dst with Some v -> V.length v | None -> 0 in
      P.send raw D.int [| payload |] ~dst ~tag:count_tag)
    send_to;
  let incoming_counts =
    List.map
      (fun (src, buf, req) ->
        ignore (Mpisim.Request.wait req);
        (src, buf.(0)))
      count_reqs
  in
  let data_reqs =
    incoming_counts
    |> List.filter (fun (_, n) -> n > 0)
    |> List.map (fun (src, n) ->
           let fill =
             match D.default_elt dt with
             | Some d -> d
             | None ->
                 Mpisim.Errors.usage "grid_alltoall: datatype %s needs ~default" (D.name dt)
           in
           let buf = Array.make n fill in
           (src, buf, P.irecv raw dt buf ~src ~tag:data_tag))
  in
  Array.iter
    (fun dst ->
      match outgoing dst with
      | Some v when V.length v > 0 ->
          P.send raw dt (V.unsafe_data v) ~count:(V.length v) ~dst ~tag:data_tag
      | Some _ | None -> ())
    send_to;
  List.map
    (fun (src, buf, req) ->
      ignore (Mpisim.Request.wait req);
      (src, buf))
    data_reqs

let alltoallv grid dt ~send_buf ~send_counts =
  let comm = grid.comm in
  let p = Kamping.Comm.size comm and r = Kamping.Comm.rank comm in
  if Array.length send_counts <> p then
    Mpisim.Errors.usage "grid_alltoall: send_counts must have one entry per rank";
  grid.seq <- grid.seq + 1;
  let base = 0x600000 + (4 * grid.seq) in
  let dt_routed = D.pair D.int dt in
  (* Phase 1: bucket (dst, elem) pairs by intermediate. *)
  let buckets : (int, (int * 'a) V.t) Hashtbl.t = Hashtbl.create 8 in
  let bucket i =
    match Hashtbl.find_opt buckets i with
    | Some v -> v
    | None ->
        let v = V.create () in
        Hashtbl.add buckets i v;
        v
  in
  let pos = ref 0 in
  Array.iteri
    (fun dst count ->
      if count > 0 then begin
        let i = (row_of grid.cols r * grid.cols) + col_of grid.cols dst in
        let i = if i < p then i else i - grid.cols in
        let b = bucket i in
        for k = 0 to count - 1 do
          V.push b (dst, V.get send_buf (!pos + k))
        done
      end;
      pos := !pos + count)
    send_counts;
  Kamping.Comm.compute comm (Kamping.Costs.linear (V.length send_buf));
  let received1 =
    phase_exchange comm dt_routed ~send_to:grid.phase1_send ~recv_from:grid.phase1_recv
      ~outgoing:(Hashtbl.find_opt buckets) ~count_tag:base ~data_tag:(base + 1)
  in
  (* Phase 2: re-bucket by final destination, tagging the true origin. *)
  let buckets2 : (int, (int * 'a) V.t) Hashtbl.t = Hashtbl.create 8 in
  let bucket2 d =
    match Hashtbl.find_opt buckets2 d with
    | Some v -> v
    | None ->
        let v = V.create () in
        Hashtbl.add buckets2 d v;
        v
  in
  (* Self-messages flow through the same path (the cost model makes them a
     cheap memcpy), so phase 1's result already includes what stayed put. *)
  List.iter
    (fun (src, arr) -> Array.iter (fun (d, x) -> V.push (bucket2 d) (src, x)) arr)
    received1;
  let received2 =
    phase_exchange comm dt_routed ~send_to:grid.phase2_peers ~recv_from:grid.phase2_peers
      ~outgoing:(Hashtbl.find_opt buckets2) ~count_tag:(base + 2) ~data_tag:(base + 3)
  in
  (* Assemble the result grouped by origin. *)
  let per_src = Array.make p 0 in
  let collected : (int * 'a) V.t = V.create () in
  List.iter (fun (_, arr) -> Array.iter (fun (s, x) -> V.push collected (s, x)) arr) received2;
  V.iter (fun (s, _) -> per_src.(s) <- per_src.(s) + 1) collected;
  let displs = Array.make p 0 in
  for i = 1 to p - 1 do
    displs.(i) <- displs.(i - 1) + per_src.(i - 1)
  done;
  let fill =
    match D.default_elt dt with
    | Some d -> d
    | None -> Mpisim.Errors.usage "grid_alltoall: datatype %s needs ~default" (D.name dt)
  in
  let out = V.make (V.length collected) fill in
  let cursor = Array.copy displs in
  V.iter
    (fun (s, x) ->
      V.set out cursor.(s) x;
      cursor.(s) <- cursor.(s) + 1)
    collected;
  Kamping.Comm.compute comm (Kamping.Costs.linear (2 * V.length collected));
  (out, per_src)
