module V = Ds.Vec

let default_oversampling p =
  let logp = int_of_float (ceil (log (float_of_int (max 2 p)) /. log 2.0)) in
  (16 * logp) + 1

let sort ?oversampling ?(seed = 0x5ee) t dt ~cmp data =
  let p = Kamping.Comm.size t and r = Kamping.Comm.rank t in
  if p = 1 then begin
    V.sort cmp data;
    Kamping.Comm.compute t (Kamping.Costs.sort (V.length data));
    data
  end
  else begin
    let num_samples = match oversampling with Some s -> s | None -> default_oversampling p in
    let n = V.length data in
    (* Random local samples (with replacement; an empty rank contributes
       nothing and relies on others' splitters). *)
    let rng = Simnet.Rng.split (Simnet.Rng.create (Int64.of_int seed)) r in
    let samples =
      if n = 0 then V.create ()
      else V.init num_samples (fun _ -> V.get data (Simnet.Rng.int rng n))
    in
    (* Everyone learns every sample; equally many per non-empty rank. *)
    let gsamples = (Kamping.Comm.allgatherv t dt ~send_buf:samples).Kamping.Comm.recv_buf in
    if V.is_empty gsamples then (* the global vector is empty *) data
    else begin
    V.sort cmp gsamples;
    Kamping.Comm.compute t (Kamping.Costs.sort (V.length gsamples));
    (* p-1 equidistant splitters. *)
    let m = V.length gsamples in
    let splitters = V.init (p - 1) (fun i -> V.get gsamples (min (m - 1) ((i + 1) * m / p))) in
    (* Partition into buckets.  Sorting locally first makes the bucket
       boundaries a merge-style scan. *)
    V.sort cmp data;
    Kamping.Comm.compute t (Kamping.Costs.sort n);
    let send_counts = Array.make p 0 in
    let bucket_of x =
      (* first splitter >= x decides the bucket *)
      let lo = ref 0 and hi = ref (p - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cmp (V.get splitters mid) x < 0 then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    V.iter (fun x -> send_counts.(bucket_of x) <- send_counts.(bucket_of x) + 1) data;
    Kamping.Comm.compute t (Kamping.Costs.linear n);
    (* Locally sorted + stable bucketing means [data] is already laid out
       bucket-by-bucket. *)
    let result = Kamping.Comm.alltoallv t dt ~send_buf:data ~send_counts in
    let mine = result.Kamping.Comm.recv_buf in
    V.sort cmp mine;
    Kamping.Comm.compute t (Kamping.Costs.sort (V.length mine));
    mine
    end
  end

let is_globally_sorted t dt ~cmp data =
  let locally_sorted = ref true in
  for i = 1 to V.length data - 1 do
    if cmp (V.get data (i - 1)) (V.get data i) > 0 then locally_sorted := false
  done;
  (* Compare boundaries: gather (first, last, non-empty) of every rank. *)
  let boundary =
    if V.is_empty data then V.create ()
    else V.of_list [ V.get data 0; V.get data (V.length data - 1) ]
  in
  let res = Kamping.Comm.allgatherv ~recv_counts_out:true t dt ~send_buf:boundary in
  let all = res.Kamping.Comm.recv_buf in
  let ordered = ref true in
  for i = 1 to V.length all - 1 do
    if cmp (V.get all (i - 1)) (V.get all i) > 0 then ordered := false
  done;
  let ok = !locally_sorted && !ordered in
  Kamping.Comm.allreduce_single t Mpisim.Datatype.bool Mpisim.Op.bool_and ok
