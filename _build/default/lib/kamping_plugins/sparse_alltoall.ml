module V = Ds.Vec

let plugin_tag = 0x5bc

(* NBX: issend everything, poll (iprobe + receive), enter a non-blocking
   barrier once the local sends completed (each issend completes only when
   matched), finish when the barrier does — at that point every message
   destined to us has been matched, i.e. received. *)
let exchange ?(tag = plugin_tag) ?(poll_interval = 1.0e-6) t dt ~messages =
  let comm = Kamping.Comm.raw t in
  List.iter
    (fun (dest, _) ->
      if dest < 0 || dest >= Kamping.Comm.size t then
        Mpisim.Errors.usage "sparse_alltoall: destination %d out of range" dest)
    messages;
  let sends =
    List.map
      (fun (dest, payload) ->
        Mpisim.P2p.issend comm dt (V.unsafe_data payload) ~count:(V.length payload) ~dst:dest ~tag)
      messages
  in
  let received : (int * 'a V.t) list ref = ref [] in
  let barrier_req = ref None in
  let finished = ref false in
  while not !finished do
    (* Drain every message currently available. *)
    let rec drain () =
      match Mpisim.P2p.iprobe comm ~src:Mpisim.P2p.any_source ~tag with
      | Some st ->
          let buf =
            match Mpisim.Datatype.default_elt dt with
            | Some d -> Array.make (max 1 st.Mpisim.Request.count) d
            | None ->
                Mpisim.Errors.usage
                  "sparse_alltoall: datatype %s needs ~default to allocate receive buffers"
                  (Mpisim.Datatype.name dt)
          in
          let st =
            Mpisim.P2p.recv comm dt buf ~count:st.Mpisim.Request.count
              ~src:st.Mpisim.Request.source ~tag
          in
          received :=
            (st.Mpisim.Request.source, V.unsafe_of_array buf st.Mpisim.Request.count) :: !received;
          drain ()
      | None -> ()
    in
    drain ();
    (match !barrier_req with
    | None ->
        if List.for_all Mpisim.Request.is_complete sends then
          barrier_req := Some (Mpisim.Collectives.ibarrier comm)
    | Some req -> if Mpisim.Request.is_complete req then finished := true);
    if not !finished then Mpisim.Comm.compute comm poll_interval
  done;
  List.sort (fun (a, _) (b, _) -> compare a b) !received
