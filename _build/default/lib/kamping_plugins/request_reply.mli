(** Request-reply reads from globally distributed data (paper Sec. VI:
    "applicable in request-reply patterns when reading from globally
    distributed data").

    Every rank asks for the values of some keys; each key has an owner
    rank that can answer locally.  One collective call routes the requests
    (densely, or sparsely via NBX when the partner set is small), lets the
    owners answer, and routes the replies back — the generalized form of
    the label-propagation ghost pull and the suffix-array rank fetch. *)

(** How the two routing steps are performed. *)
type transport =
  | Dense  (** alltoallv: O(p) per call, best for many partners *)
  | Sparse  (** NBX: proportional to actual partners *)

(** [read t kdt vdt ~owner ~lookup keys] returns the [(key, value)] pairs
    for all requested [keys], in request order.  [owner] must agree on all
    ranks; [lookup] is evaluated on the owner.  Collective. *)
val read :
  ?transport:transport ->
  Kamping.Comm.t ->
  'k Mpisim.Datatype.t ->
  'v Mpisim.Datatype.t ->
  owner:('k -> int) ->
  lookup:('k -> 'v) ->
  'k Ds.Vec.t ->
  ('k * 'v) Ds.Vec.t
