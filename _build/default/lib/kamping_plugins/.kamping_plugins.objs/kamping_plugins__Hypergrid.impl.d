lib/kamping_plugins/hypergrid.ml: Array Ds Hashtbl Kamping List Mpisim
