lib/kamping_plugins/sparse_alltoall.mli: Ds Kamping Mpisim
