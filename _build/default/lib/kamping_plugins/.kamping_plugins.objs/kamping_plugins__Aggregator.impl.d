lib/kamping_plugins/aggregator.ml: Array Ds Kamping List Mpisim
