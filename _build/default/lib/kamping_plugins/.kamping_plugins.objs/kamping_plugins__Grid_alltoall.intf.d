lib/kamping_plugins/grid_alltoall.mli: Ds Kamping Mpisim
