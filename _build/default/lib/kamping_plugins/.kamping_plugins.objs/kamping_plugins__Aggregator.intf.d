lib/kamping_plugins/aggregator.mli: Ds Kamping Mpisim
