lib/kamping_plugins/dist_vector.ml: Array Ds Kamping Mpisim Reproducible_reduce Sorter
