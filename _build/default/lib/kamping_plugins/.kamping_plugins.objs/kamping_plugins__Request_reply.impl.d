lib/kamping_plugins/request_reply.ml: Ds Hashtbl Kamping List Mpisim Option Sparse_alltoall
