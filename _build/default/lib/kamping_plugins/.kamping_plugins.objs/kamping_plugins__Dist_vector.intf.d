lib/kamping_plugins/dist_vector.mli: Ds Kamping Mpisim
