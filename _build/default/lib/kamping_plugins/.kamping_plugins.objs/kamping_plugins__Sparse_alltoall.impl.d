lib/kamping_plugins/sparse_alltoall.ml: Array Ds Kamping List Mpisim
