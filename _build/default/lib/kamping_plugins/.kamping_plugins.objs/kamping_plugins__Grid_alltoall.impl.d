lib/kamping_plugins/grid_alltoall.ml: Array Ds Hashtbl Kamping List Mpisim
