lib/kamping_plugins/reproducible_reduce.mli: Ds Kamping Mpisim
