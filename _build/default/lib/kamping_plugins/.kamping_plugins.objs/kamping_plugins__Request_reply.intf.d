lib/kamping_plugins/request_reply.mli: Ds Kamping Mpisim
