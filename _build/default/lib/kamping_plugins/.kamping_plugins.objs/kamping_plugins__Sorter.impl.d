lib/kamping_plugins/sorter.ml: Array Ds Int64 Kamping Mpisim Simnet
