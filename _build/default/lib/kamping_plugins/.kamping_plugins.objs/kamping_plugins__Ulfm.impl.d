lib/kamping_plugins/ulfm.ml: Kamping Mpisim
