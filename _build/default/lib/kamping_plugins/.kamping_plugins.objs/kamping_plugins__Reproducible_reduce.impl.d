lib/kamping_plugins/reproducible_reduce.ml: Array Ds Kamping List Mpisim
