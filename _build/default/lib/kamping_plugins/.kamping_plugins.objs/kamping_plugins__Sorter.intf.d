lib/kamping_plugins/sorter.mli: Ds Kamping Mpisim
