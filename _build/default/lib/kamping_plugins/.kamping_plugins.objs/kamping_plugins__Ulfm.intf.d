lib/kamping_plugins/ulfm.mli: Kamping
