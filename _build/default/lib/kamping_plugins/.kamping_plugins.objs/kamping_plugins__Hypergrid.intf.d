lib/kamping_plugins/hypergrid.mli: Ds Kamping Mpisim
