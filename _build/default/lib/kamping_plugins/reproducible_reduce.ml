module V = Ds.Vec
module D = Mpisim.Datatype
module P = Mpisim.P2p

let tag_base = 0x700000
let combine_cost = 4.0e-9

(* Split a range at the largest power of two strictly below its size —
   a function of the range only, never of the rank layout. *)
let split lo hi =
  let m = hi - lo in
  let rec p2 x = if 2 * x < m then p2 (2 * x) else x in
  lo + p2 1

let rec local_tree_reduce op elt lo hi =
  if hi - lo = 1 then elt lo
  else begin
    let mid = split lo hi in
    op (local_tree_reduce op elt lo mid) (local_tree_reduce op elt mid hi)
  end

let reduce t dt op ~send_buf =
  let comm = Kamping.Comm.raw t in
  let p = Kamping.Comm.size t in
  let count = V.length send_buf in
  (* Global layout: every rank learns all range starts. *)
  let starts = Array.make p 0 in
  Mpisim.Collectives.allgather comm D.int ~sendbuf:[| count |] ~recvbuf:starts ~count:1;
  let counts = Array.copy starts in
  let acc = ref 0 in
  for i = 0 to p - 1 do
    starts.(i) <- !acc;
    acc := !acc + counts.(i)
  done;
  let n = !acc in
  if n = 0 then Mpisim.Errors.usage "reproducible_reduce: empty global vector";
  let r = Kamping.Comm.rank t in
  let s = starts.(r) in
  let e = s + count in
  (* Owner of a global index: the last rank whose start is <= the index
     (runs of equal starts end at the rank actually holding elements). *)
  let owner j =
    let lo = ref 0 and hi = ref (p - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if starts.(mid) <= j then lo := mid else hi := mid - 1
    done;
    !lo
  in
  let fill =
    match D.default_elt dt with
    | Some d -> d
    | None ->
        if count > 0 then V.get send_buf 0
        else Mpisim.Errors.usage "reproducible_reduce: datatype %s needs ~default" (D.name dt)
  in
  let tag_of node_lo = tag_base + (node_lo land 0xFFFFF) in
  (* Evaluate a tree node whose leftmost leaf this rank owns.  Subranges
     starting beyond our range are received from their owners. *)
  let rec value lo hi =
    if hi <= e then begin
      Kamping.Comm.compute t (combine_cost *. float_of_int (hi - lo - 1));
      local_tree_reduce op (fun j -> V.get send_buf (j - s)) lo hi
    end
    else begin
      let mid = split lo hi in
      let left = value lo mid in
      let right =
        if mid < e then value mid hi
        else begin
          let buf = [| fill |] in
          ignore (P.recv comm dt buf ~src:(owner mid) ~tag:(tag_of mid));
          buf.(0)
        end
      in
      Kamping.Comm.compute t combine_cost;
      op left right
    end
  in
  (* Enumerate this rank's boundary subtrees: right children whose parent
     starts left of our range.  Their values travel to the parent owner. *)
  let send_nodes = ref [] in
  let rec walk lo hi =
    if hi - lo >= 2 && lo < s && hi > s then begin
      let mid = split lo hi in
      if mid >= s then begin
        if mid < e then send_nodes := (mid, hi, lo) :: !send_nodes;
        walk lo mid
      end
      else walk mid hi
    end
  in
  walk 0 n;
  let ordered = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !send_nodes in
  List.iter
    (fun (lo, hi, parent_lo) ->
      let v = value lo hi in
      P.send comm dt [| v |] ~dst:(owner parent_lo) ~tag:(tag_of lo))
    ordered;
  let root_owner = owner 0 in
  let result = if r = root_owner then value 0 n else fill in
  let box = [| result |] in
  Mpisim.Collectives.bcast comm dt box ~root:root_owner;
  box.(0)
