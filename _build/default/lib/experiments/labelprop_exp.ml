(* Sec. IV-B label propagation (the dKaMinPar component): three
   implementations of the same ghost-label exchange — the bespoke
   abstraction layer, plain MPI, and KaMPIng — must coincide in results and
   running time while differing in code size (paper: 106 / 154 / 127 LoC
   roles). *)

module Gen = Graphgen.Generators

type outcome = { variant : string; seconds : float; labels_hash : int }

let measure ?(ranks = 16) ?(vertices_per_rank = 256) ?(avg_degree = 8) () =
  let global_n = ranks * vertices_per_rank in
  let time variant run =
    let res =
      Mpisim.Mpi.run ~ranks (fun comm ->
          let graph =
            Gen.generate Gen.Rgg2d ~rank:(Mpisim.Comm.rank comm) ~comm_size:ranks ~global_n
              ~avg_degree ~seed:41
          in
          let t0 = Mpisim.Comm.now comm in
          let labels = run comm graph ~iterations:4 ~max_cluster_size:(global_n / 8) in
          (labels, Mpisim.Comm.now comm -. t0))
    in
    let parts = Mpisim.Mpi.results_exn res in
    let labels = Array.concat (List.map fst (Array.to_list parts)) in
    {
      variant;
      seconds = Array.fold_left (fun acc (_, t) -> Float.max acc t) 0.0 parts;
      labels_hash = Hashtbl.hash (Array.to_list labels);
    }
  in
  [
    time "custom layer (dKaMinPar-style)" Apps.Lp_custom.run;
    time "plain MPI" Apps.Lp_mpi.run;
    time "kamping" Apps.Lp_kamping.run;
  ]

let run () =
  let outcomes = measure () in
  Table_fmt.print_table ~title:"Sec. IV-B - label propagation, 16 ranks x 256 vertices (RGG)"
    ~header:[ "comm layer"; "time"; "labels fingerprint" ]
    (List.map
       (fun o -> [ o.variant; Table_fmt.seconds o.seconds; Printf.sprintf "%08x" o.labels_hash ])
       outcomes);
  (match outcomes with
  | [ custom; mpi; kamping ] ->
      Printf.printf "all variants compute identical clusterings: %b\n"
        (custom.labels_hash = mpi.labels_hash && mpi.labels_hash = kamping.labels_hash);
      let spread =
        let ts = List.map (fun o -> o.seconds) outcomes in
        (List.fold_left Float.max 0.0 ts -. List.fold_left Float.min infinity ts)
        /. List.fold_left Float.max 0.0 ts
      in
      Printf.printf "running-time spread across layers: %.2f%% (paper: same running times)\n"
        (100.0 *. spread)
  | _ -> ());
  match Loc_table.repo_root () with
  | Some root ->
      let loc f = Loc_table.count_loc (Filename.concat root ("lib/apps/" ^ f)) in
      Table_fmt.print_table ~title:"Sec. IV-B - LoC of the comm-specific part"
        ~header:[ "comm layer"; "LoC here"; "LoC role in paper" ]
        [
          [ "custom layer"; string_of_int (loc "lp_custom.ml"); "106 (+ the layer itself)" ];
          [ "plain MPI"; string_of_int (loc "lp_mpi.ml"); "154" ];
          [ "kamping"; string_of_int (loc "lp_kamping.ml"); "127" ];
        ]
  | None -> ()
