(** Fig. 10: BFS weak scaling across graph families and frontier-exchange
    strategies. *)

type point = { family : string; strategy : string; ranks : int; seconds : float }

val measure : ?vertices_per_rank:int -> ?avg_degree:int -> ?rank_counts:int list -> unit -> point list
val run : unit -> unit
