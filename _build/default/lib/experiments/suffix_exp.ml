(* Sec. IV-A suffix-array construction: correctness at scale plus the
   lines-of-code comparison (paper: prefix doubling needs 163 LoC with
   KaMPIng vs 426 with plain MPI vs 266 with Thrill). *)

let random_text ~n ~sigma ~seed =
  let rng = Simnet.Rng.create (Int64.of_int seed) in
  String.init n (fun _ -> Char.chr (Char.code 'a' + Simnet.Rng.int rng sigma))

let build_with algo text ranks =
  let n = String.length text in
  let res =
    Mpisim.Mpi.run ~ranks (fun comm ->
        let first, local_n =
          Graphgen.Distgraph.block_range ~global_n:n ~comm_size:(Mpisim.Comm.size comm)
            (Mpisim.Comm.rank comm)
        in
        let local = Array.init local_n (fun i -> text.[first + i]) in
        let t0 = Mpisim.Comm.now comm in
        let sa =
          match algo with
          | `Prefix_doubling -> Apps.Suffix_array.build comm ~text:local ~global_n:n
          | `Dcx -> Apps.Dcx.build (Kamping.Comm.wrap comm) ~text:local ~global_n:n
        in
        (sa, Mpisim.Comm.now comm -. t0))
  in
  let parts = Mpisim.Mpi.results_exn res in
  let sa = Array.concat (List.map fst (Array.to_list parts)) in
  let seconds = Array.fold_left (fun acc (_, t) -> Float.max acc t) 0.0 parts in
  (sa, seconds)

let build_distributed text ranks = build_with `Prefix_doubling text ranks

let run () =
  let n = 4096 in
  let text = random_text ~n ~sigma:4 ~seed:77 in
  let reference = Apps.Suffix_array.naive_suffix_array text in
  let rows =
    List.map
      (fun ranks ->
        let sa_pd, t_pd = build_with `Prefix_doubling text ranks in
        let sa_dcx, t_dcx = build_with `Dcx text ranks in
        [
          string_of_int ranks;
          Table_fmt.seconds t_pd;
          (if sa_pd = reference then "yes" else "NO");
          Table_fmt.seconds t_dcx;
          (if sa_dcx = reference then "yes" else "NO");
        ])
      [ 1; 4; 16; 64 ]
  in
  Table_fmt.print_table
    ~title:(Printf.sprintf "Sec. IV-A - suffix array construction, n=%d (simulated)" n)
    ~header:[ "ranks"; "prefix doubling"; "correct"; "DCX"; "correct" ]
    rows;
  (* LoC comparison: our implementation vs the paper's counts *)
  (match Loc_table.repo_root () with
  | Some root ->
      let loc f = Loc_table.count_loc (Filename.concat root ("lib/apps/" ^ f)) in
      Printf.printf
        "prefix doubling LoC: %d here (KaMPIng-style) - paper: 163 KaMPIng / 426 plain MPI / 266 Thrill\n"
        (loc "suffix_array.ml");
      Printf.printf "DCX LoC: %d here (+ %d shared dist_util) - paper: 1264 KaMPIng / 1396 pDCX\n"
        (loc "dcx.ml") (loc "dist_util.ml")
  | None -> ())
