(** Sec. IV-B: the dKaMinPar label-propagation component with three
    communication layers — result equality, runtime parity and LoC. *)

type outcome = { variant : string; seconds : float; labels_hash : int }

val measure : ?ranks:int -> ?vertices_per_rank:int -> ?avg_degree:int -> unit -> outcome list
val run : unit -> unit
