lib/experiments/suffix_exp.mli:
