lib/experiments/table_fmt.ml: List Printf String
