lib/experiments/fig10_bfs.ml: Apps Array Float Graphgen List Mpisim Printf Table_fmt
