lib/experiments/ablation.ml: Apps Array Ds Float Graphgen Kamping Kamping_plugins List Mpisim Printf Simnet Table_fmt
