lib/experiments/overhead.mli:
