lib/experiments/types_bench.ml: Array Bytes Char Ds Float Int64 Kamping List Mpisim Printf Serde Table_fmt
