lib/experiments/ulfm_exp.ml: Array Kamping Kamping_plugins List Mpisim Printf Table_fmt
