lib/experiments/fig8_sort.mli:
