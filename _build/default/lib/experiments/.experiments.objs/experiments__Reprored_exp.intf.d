lib/experiments/reprored_exp.mli:
