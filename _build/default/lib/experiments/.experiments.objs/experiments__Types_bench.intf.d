lib/experiments/types_bench.mli:
