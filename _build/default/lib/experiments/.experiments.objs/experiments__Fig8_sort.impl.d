lib/experiments/fig8_sort.ml: Apps Array Float List Mpisim Printf Table_fmt
