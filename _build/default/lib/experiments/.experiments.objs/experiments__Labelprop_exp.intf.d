lib/experiments/labelprop_exp.mli:
