lib/experiments/fig10_bfs.mli:
