lib/experiments/raxml_exp.ml: Apps Array Float Mpisim Printf Table_fmt
