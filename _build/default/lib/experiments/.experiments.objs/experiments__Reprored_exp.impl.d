lib/experiments/reprored_exp.ml: Array Ds Float Int64 Kamping Kamping_plugins List Mpisim Printf Table_fmt
