lib/experiments/suffix_exp.ml: Apps Array Char Filename Float Graphgen Int64 Kamping List Loc_table Mpisim Printf Simnet String Table_fmt
