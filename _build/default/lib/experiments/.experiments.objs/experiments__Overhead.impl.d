lib/experiments/overhead.ml: Apps Array Ds Float Kamping List Mpisim Printf String Table_fmt
