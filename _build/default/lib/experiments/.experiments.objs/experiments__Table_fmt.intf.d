lib/experiments/table_fmt.mli:
