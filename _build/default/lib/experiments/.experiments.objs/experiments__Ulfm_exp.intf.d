lib/experiments/ulfm_exp.mli:
