lib/experiments/ablation.mli:
