lib/experiments/loc_table.ml: Buffer Filename List Printf String Sys Table_fmt
