lib/experiments/loc_table.mli:
