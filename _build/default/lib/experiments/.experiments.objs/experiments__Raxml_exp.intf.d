lib/experiments/raxml_exp.mli:
