lib/experiments/labelprop_exp.ml: Apps Array Filename Float Graphgen Hashtbl List Loc_table Mpisim Printf Table_fmt
