(** Ablation studies: network-latency sensitivity of the grid plugin, the
    indirection-dimension sweep (Sec. VI future work), the NBX poll
    interval, sample-sort oversampling, and assertion-level costs. *)

val run : unit -> unit
