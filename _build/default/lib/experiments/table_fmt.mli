(** Plain-text table rendering for the benchmark harness. *)

(** [print_table ~title ~header rows] prints an aligned ASCII table. *)
val print_table : title:string -> header:string list -> string list list -> unit

(** [seconds s] formats a duration with an appropriate unit. *)
val seconds : float -> string
