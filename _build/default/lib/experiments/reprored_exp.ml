(* Fig. 13 / Sec. V-C: reproducible reduce.  Two observables:
   1. the float sum of a fixed global vector must be bitwise identical for
      every rank count under the plugin, while the ordinary tree reduce
      drifts with p;
   2. the plugin must be faster than the reproducible fallback
      (gather + local in-order reduce + broadcast) while staying within a
      small factor of the non-reproducible native reduce. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

let global_data n =
  Array.init n (fun i ->
      (10.0 ** float_of_int ((i * 7 mod 33) - 16)) *. (if i mod 3 = 0 then -1.0 else 1.0))

let distribute data p r =
  let n = Array.length data in
  let base = n / p and extra = n mod p in
  let count = base + (if r < extra then 1 else 0) in
  let start = (r * base) + min r extra in
  V.init count (fun i -> data.(start + i))

type variant = Native | Gather_reduce | Tree_plugin

let variant_name = function
  | Native -> "native allreduce (not reproducible)"
  | Gather_reduce -> "gather + local reduce + bcast"
  | Tree_plugin -> "reproducible tree plugin"

let reduce_with variant data comm =
  let kc = K.wrap comm in
  let mine = distribute data (K.size kc) (K.rank kc) in
  match variant with
  | Native ->
      let local = V.fold_left ( +. ) 0.0 mine in
      K.allreduce_single kc D.float Mpisim.Op.float_sum local
  | Gather_reduce ->
      let all = (K.gatherv kc D.float ~send_buf:mine).K.recv_buf in
      let sum = if K.is_root kc then V.fold_left ( +. ) 0.0 all else 0.0 in
      K.compute kc (4.0e-9 *. float_of_int (V.length all));
      K.bcast_single kc D.float sum
  | Tree_plugin -> Kamping_plugins.Reproducible_reduce.reduce kc D.float ( +. ) ~send_buf:mine

let measure ~n ~rank_counts =
  let data = global_data n in
  List.map
    (fun variant ->
      let outcomes =
        List.map
          (fun ranks ->
            let res =
              Mpisim.Mpi.run ~ranks (fun comm ->
                  let t0 = Mpisim.Comm.now comm in
                  let v = reduce_with variant data comm in
                  (v, Mpisim.Comm.now comm -. t0))
            in
            let parts = Mpisim.Mpi.results_exn res in
            let value, _ = parts.(0) in
            let seconds = Array.fold_left (fun acc (_, t) -> Float.max acc t) 0.0 parts in
            (ranks, value, seconds))
          rank_counts
      in
      (variant, outcomes))
    [ Native; Gather_reduce; Tree_plugin ]

let run () =
  let n = 50_000 in
  let rank_counts = [ 1; 4; 16; 64 ] in
  let results = measure ~n ~rank_counts in
  let rows =
    List.map
      (fun (variant, outcomes) ->
        let bits = List.map (fun (_, v, _) -> Int64.bits_of_float v) outcomes in
        let reproducible = List.for_all (Int64.equal (List.hd bits)) bits in
        variant_name variant
        :: ((if reproducible then "yes" else "NO")
            :: List.map (fun (_, _, t) -> Table_fmt.seconds t) outcomes))
      results
  in
  Table_fmt.print_table
    ~title:(Printf.sprintf "Fig. 13 - reproducible reduce, %d doubles" n)
    ~header:
      ("variant" :: "bitwise reproducible"
      :: List.map (fun p -> Printf.sprintf "t(p=%d)" p) rank_counts)
    rows;
  let time_of variant p =
    let _, outcomes = List.find (fun (v, _) -> v = variant) results in
    let _, _, t = List.find (fun (r, _, _) -> r = p) outcomes in
    t
  in
  let pmax = List.fold_left max 0 rank_counts in
  Printf.printf "plugin faster than gather+reduce+bcast at p=%d: %b (%.2fx)\n" pmax
    (time_of Tree_plugin pmax < time_of Gather_reduce pmax)
    (time_of Gather_reduce pmax /. time_of Tree_plugin pmax);
  Printf.printf "plugin within small factor of native reduce at p=%d: %.2fx\n" pmax
    (time_of Tree_plugin pmax /. time_of Native pmax)
