(* Sec. IV-A / III-H: the (near) zero-overhead claim.

   Two observables, as in the paper:
   1. the PMPI view — with all parameters supplied, a KaMPIng call issues
      exactly the MPI calls a hand-rolled implementation issues (also
      enforced by the unit tests);
   2. simulated end-to-end time of the sample-sort kernel: plain MPI vs
      KaMPIng vs KaMPIng with every assertion disabled. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

let profile_row name run =
  let res = run () in
  let calls =
    res.Mpisim.Mpi.profile.Mpisim.Profiling.calls
    |> List.map (fun (n, c) -> Printf.sprintf "%s:%d" n c)
    |> String.concat " "
  in
  [ name; calls; string_of_int res.Mpisim.Mpi.profile.Mpisim.Profiling.messages ]

let call_profiles () =
  let ranks = 8 in
  let handrolled () =
    Mpisim.Mpi.run ~ranks (fun comm ->
        let r = Mpisim.Comm.rank comm and p = Mpisim.Comm.size comm in
        let rc = Array.make p 0 in
        Mpisim.Collectives.allgather comm D.int ~sendbuf:[| r + 1 |] ~recvbuf:rc ~count:1;
        let rd = Array.make p 0 in
        for i = 1 to p - 1 do
          rd.(i) <- rd.(i - 1) + rc.(i - 1)
        done;
        let out = Array.make (rd.(p - 1) + rc.(p - 1)) 0 in
        Mpisim.Collectives.allgatherv comm D.int ~sendbuf:(Array.make (r + 1) r) ~scount:(r + 1)
          ~recvbuf:out ~rcounts:rc ~rdispls:rd)
  in
  let kamping_defaults () =
    Mpisim.Mpi.run ~ranks (fun comm ->
        let kc = K.wrap comm in
        ignore (K.allgatherv kc D.int ~send_buf:(V.make (K.rank kc + 1) (K.rank kc))))
  in
  let kamping_full () =
    Mpisim.Mpi.run ~ranks (fun comm ->
        let kc = K.wrap comm in
        let counts = Array.init ranks (fun i -> i + 1) in
        ignore
          (K.allgatherv ~recv_counts:counts kc D.int ~send_buf:(V.make (K.rank kc + 1) (K.rank kc))))
  in
  [
    profile_row "hand-rolled (Fig. 2)" handrolled;
    profile_row "kamping, defaults (Fig. 1)" kamping_defaults;
    profile_row "kamping, counts given" kamping_full;
  ]

type timing = { variant : string; seconds : float }

let sort_timings ?(ranks = 64) ?(n_per_rank = 20_000) () =
  let time sorter =
    let res =
      Mpisim.Mpi.run ~ranks (fun comm ->
          let data =
            Apps.Ss_common.generate_input ~rank:(Mpisim.Comm.rank comm) ~n_per_rank ~seed:12
          in
          let t0 = Mpisim.Comm.now comm in
          let (_ : int array) = sorter comm data in
          Mpisim.Comm.now comm -. t0)
    in
    Array.fold_left Float.max 0.0 (Mpisim.Mpi.results_exn res)
  in
  [
    { variant = "plain MPI"; seconds = time Apps.Ss_mpi.sort };
    { variant = "kamping (default assertions)"; seconds = time Apps.Ss_kamping.sort };
    {
      variant = "kamping (assertions off)";
      seconds =
        Kamping.Assertions.with_level Kamping.Assertions.Off (fun () -> time Apps.Ss_kamping.sort);
    };
  ]

let run () =
  Table_fmt.print_table ~title:"Sec. III-H - PMPI view of allgatherv (8 ranks)"
    ~header:[ "implementation"; "MPI calls issued"; "messages" ]
    (call_profiles ());
  let timings = sort_timings () in
  Table_fmt.print_table ~title:"Sec. IV-A - sample sort kernel, 64 ranks x 20k (simulated)"
    ~header:[ "variant"; "time" ]
    (List.map (fun t -> [ t.variant; Table_fmt.seconds t.seconds ]) timings);
  match timings with
  | [ mpi; kamping; _off ] ->
      Printf.printf "kamping overhead vs plain MPI: %.2f%%\n"
        (100.0 *. ((kamping.seconds /. mpi.seconds) -. 1.0))
  | _ -> ()
