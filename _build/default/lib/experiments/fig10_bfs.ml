(* Fig. 10: BFS weak scaling across graph families and frontier-exchange
   strategies.  Paper setup: 2^12 vertices and 2^15 edges per rank on three
   families; we scale down to 2^10 vertices / ~2^13 edges per rank.
   Expected shape: kamping == mpi; MPL slowest everywhere; grid best on RHG
   (and good on Erdos-Renyi); sparse near neighborhood collectives and best
   where locality is high (RGG); rebuilding the topology every level
   (neighbor-dyn) does not scale. *)

module Gen = Graphgen.Generators

type point = { family : string; strategy : string; ranks : int; seconds : float }

let strategies : (string * (Mpisim.Comm.t -> Graphgen.Distgraph.t -> src:int -> int array)) list =
  [
    ("mpi", Apps.Bfs_mpi.bfs);
    ("kamping", Apps.Bfs_kamping.bfs);
    ("mpl", Apps.Bfs_mpl.bfs);
    ("sparse", Apps.Bfs_strategies.bfs_sparse);
    ("grid", Apps.Bfs_strategies.bfs_grid);
    ("neighbor", Apps.Bfs_strategies.bfs_neighbor);
    ("neighbor-dyn", Apps.Bfs_strategies.bfs_neighbor_dynamic);
  ]

let families = [ Gen.Erdos_renyi; Gen.Rgg2d; Gen.Rhg ]

let measure ?(vertices_per_rank = 1024) ?(avg_degree = 8) ?(rank_counts = [ 4; 16; 64 ]) () =
  List.concat_map
    (fun family ->
      List.concat_map
        (fun ranks ->
          let global_n = vertices_per_rank * ranks in
          List.map
            (fun (strategy, bfs) ->
              let res =
                Mpisim.Mpi.run ~ranks (fun comm ->
                    let graph =
                      Gen.generate family ~rank:(Mpisim.Comm.rank comm) ~comm_size:ranks ~global_n
                        ~avg_degree ~seed:31
                    in
                    let t0 = Mpisim.Comm.now comm in
                    let (_ : int array) = bfs comm graph ~src:0 in
                    Mpisim.Comm.now comm -. t0)
              in
              let seconds = Array.fold_left Float.max 0.0 (Mpisim.Mpi.results_exn res) in
              { family = Gen.family_name family; strategy; ranks; seconds })
            strategies)
        rank_counts)
    families

let run () =
  let points = measure () in
  let rank_counts = List.sort_uniq compare (List.map (fun p -> p.ranks) points) in
  List.iter
    (fun family ->
      let fname = Gen.family_name family in
      let rows =
        List.map
          (fun (strategy, _) ->
            strategy
            :: List.map
                 (fun ranks ->
                   let p =
                     List.find
                       (fun p -> p.family = fname && p.strategy = strategy && p.ranks = ranks)
                       points
                   in
                   Table_fmt.seconds p.seconds)
                 rank_counts)
          strategies
      in
      Table_fmt.print_table
        ~title:(Printf.sprintf "Fig. 10 - BFS weak scaling on %s (simulated time)" fname)
        ~header:("strategy" :: List.map (fun r -> Printf.sprintf "p=%d" r) rank_counts)
        rows)
    families;
  (* shape checks *)
  let at family strategy ranks =
    (List.find (fun p -> p.family = family && p.strategy = strategy && p.ranks = ranks) points)
      .seconds
  in
  let pmax = List.fold_left max 0 rank_counts in
  Printf.printf "kamping on par with mpi (all families, p=%d): %b\n" pmax
    (List.for_all
       (fun f ->
         let f = Gen.family_name f in
         Float.abs (at f "kamping" pmax -. at f "mpi" pmax) /. at f "mpi" pmax < 0.05)
       families);
  Printf.printf "mpl slower than mpi on all families at p=%d: %b\n" pmax
    (List.for_all
       (fun f ->
         let f = Gen.family_name f in
         at f "mpl" pmax > at f "mpi" pmax)
       families);
  Printf.printf "grid beats plain alltoallv on rhg at p=%d: %b\n" pmax
    (at "rhg" "grid" pmax < at "rhg" "mpi" pmax);
  Printf.printf "sparse beats plain alltoallv on rgg2d at p=%d: %b\n" pmax
    (at "rgg2d" "sparse" pmax < at "rgg2d" "mpi" pmax);
  Printf.printf "rebuilding the topology every level does not scale: %b\n"
    (at "rgg2d" "neighbor-dyn" pmax > at "rgg2d" "neighbor" pmax)
