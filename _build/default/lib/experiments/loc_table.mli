(** Table I: lines of code of the communication-specific part of each
    application per binding, measured on this repository's variant files. *)

(** [repo_root ()] locates the source tree (walks up to dune-project). *)
val repo_root : unit -> string option

(** [count_loc path] counts non-blank lines outside OCaml comments. *)
val count_loc : string -> int

type row = { app : string; mpi : int; boost : int; rwth : int; mpl : int; kamping : int }

(** [measure ()] counts all variant files. *)
val measure : unit -> (row list, string) result

(** [run ()] prints the measured and the paper's tables plus the ordering
    checks. *)
val run : unit -> unit
