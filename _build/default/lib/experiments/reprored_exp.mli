(** Fig. 13 / Sec. V-C: reproducible reduction — bitwise stability across
    rank counts and performance against both baselines. *)

type variant = Native | Gather_reduce | Tree_plugin

val variant_name : variant -> string
val run : unit -> unit
