(** Sec. IV-C: the RAxML-NG abstraction layer before/after KaMPIng. *)

val run : unit -> unit
