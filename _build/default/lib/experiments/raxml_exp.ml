(* Sec. IV-C RAxML-NG: replacing the custom serialize+broadcast layer with
   KaMPIng must not cost measurable running time at ~700 MPI calls/s. *)

let run () =
  let iterations = 200 and ranks = 16 and taxa = 100 in
  let measure variant =
    let res =
      Mpisim.Mpi.run ~ranks (fun comm -> Apps.Raxml_layer.search ~variant ~iterations ~taxa comm)
    in
    let stats = Mpisim.Mpi.results_exn res in
    let seconds = Array.fold_left (fun acc s -> Float.max acc s.Apps.Raxml_layer.sim_seconds) 0.0 stats in
    let calls_per_s =
      (* one allreduce per iteration + one (2-part) bcast every 2nd *)
      float_of_int (iterations * 2) /. seconds
    in
    (seconds, calls_per_s, stats.(0).Apps.Raxml_layer.final_logl)
  in
  let before_s, before_rate, before_logl = measure `Before in
  let after_s, after_rate, after_logl = measure `After in
  Table_fmt.print_table
    ~title:
      (Printf.sprintf "Sec. IV-C - RAxML-NG abstraction layer, %d ranks, %d iterations" ranks
         iterations)
    ~header:[ "layer"; "time"; "MPI calls/s"; "final logL" ]
    [
      [ "custom (before)"; Table_fmt.seconds before_s; Printf.sprintf "%.0f" before_rate;
        Printf.sprintf "%.6f" before_logl ];
      [ "kamping (after)"; Table_fmt.seconds after_s; Printf.sprintf "%.0f" after_rate;
        Printf.sprintf "%.6f" after_logl ];
    ];
  Printf.printf "identical results: %b\n" (before_logl = after_logl);
  Printf.printf "overhead of the kamping layer: %.2f%% (paper: not measurable)\n"
    (100.0 *. ((after_s /. before_s) -. 1.0))
