(** Fig. 12: fault-tolerant execution with the ULFM plugin. *)

type outcome = {
  ranks : int;
  failures : int;
  survivors_done : int;
  rounds_target : int;
  seconds : float;
}

(** [scenario ~ranks ~failures ~rounds] injects [failures] process faults
    into a compute-allreduce loop and reports recovery. *)
val scenario : ranks:int -> failures:int -> rounds:int -> outcome

val run : unit -> unit
