(* Ablation studies for the design choices the library makes:
   1. network sensitivity — how the grid-vs-alltoallv crossover moves when
      the fabric's latency shrinks (the grid plugin trades volume for
      start-ups, so cheap start-ups erode its advantage);
   2. NBX poll interval — termination-detection responsiveness vs. CPU;
   3. sample-sort oversampling — the 16 log p + 1 choice vs. smaller and
      larger sampling factors (splitter quality = load balance);
   4. assertion levels — what the leveled checks cost on the wire. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec
module Gen = Graphgen.Generators

(* -------- 1. network sensitivity -------- *)

let bfs_time ?net strategy ~ranks =
  let global_n = ranks * 1024 in
  let res =
    Mpisim.Mpi.run ?net ~ranks (fun comm ->
        let graph =
          Gen.generate Gen.Rhg ~rank:(Mpisim.Comm.rank comm) ~comm_size:ranks ~global_n
            ~avg_degree:8 ~seed:31
        in
        let t0 = Mpisim.Comm.now comm in
        let (_ : int array) = strategy comm graph ~src:0 in
        Mpisim.Comm.now comm -. t0)
  in
  Array.fold_left Float.max 0.0 (Mpisim.Mpi.results_exn res)

let network_sensitivity () =
  let nets =
    [ ("default (2us latency)", Simnet.Netmodel.default);
      ("low latency (0.5us)", Simnet.Netmodel.low_latency) ]
  in
  let rows =
    List.map
      (fun (name, net) ->
        let direct = bfs_time ~net Apps.Bfs_kamping.bfs ~ranks:64 in
        let grid = bfs_time ~net Apps.Bfs_strategies.bfs_grid ~ranks:64 in
        [ name; Table_fmt.seconds direct; Table_fmt.seconds grid;
          Printf.sprintf "%.2fx" (direct /. grid) ])
      nets
  in
  Table_fmt.print_table ~title:"Ablation 1 - grid advantage vs. network latency (BFS rhg, p=64)"
    ~header:[ "network"; "alltoallv"; "grid"; "grid speedup" ]
    rows;
  print_endline "  (cheaper start-ups shrink the start-up-saving grid's advantage)"

(* -------- 1b. indirection dimension sweep (paper Sec. VI) -------- *)

let dimension_sweep () =
  let ranks = 64 in
  let global_n = ranks * 1024 in
  let exchange_time make_exchange =
    let res =
      Mpisim.Mpi.run ~ranks (fun raw ->
          let comm = K.wrap raw in
          let graph =
            Gen.generate Gen.Erdos_renyi ~rank:(K.rank comm) ~comm_size:ranks ~global_n
              ~avg_degree:8 ~seed:31
          in
          let exchange = make_exchange comm in
          let st = Apps.Bfs_common.init raw graph 0 in
          let all_empty (st : Apps.Bfs_common.state) empty =
            K.allreduce_single (K.wrap st.Apps.Bfs_common.comm) D.bool Mpisim.Op.bool_and empty
          in
          let t0 = K.now comm in
          let (_ : int array) = Apps.Bfs_common.run st ~exchange ~all_empty in
          K.now comm -. t0)
    in
    Array.fold_left Float.max 0.0 (Mpisim.Mpi.results_exn res)
  in
  let direct comm =
    ignore comm;
    fun (st : Apps.Bfs_common.state) remote ->
      let kc = K.wrap st.Apps.Bfs_common.comm in
      let flat = Kamping.Flatten.flatten ~comm_size:(K.size kc) remote in
      (K.alltoallv_flat kc D.int flat).K.recv_buf
  in
  let hyper ndims comm =
    let hg = Kamping_plugins.Hypergrid.create comm ~ndims in
    fun (st : Apps.Bfs_common.state) remote ->
      let p = Mpisim.Comm.size st.Apps.Bfs_common.comm in
      let data, send_counts = Apps.Bfs_common.flatten_buckets p remote in
      fst (Kamping_plugins.Hypergrid.alltoallv hg D.int ~send_buf:data ~send_counts)
  in
  let rows =
    [ ("direct alltoallv (63 partners)", exchange_time direct);
      ("2d grid (14 partners, 2x volume)", exchange_time (hyper 2));
      ("3d grid (9 partners, 3x volume)", exchange_time (hyper 3)) ]
  in
  Table_fmt.print_table
    ~title:"Ablation 1b - indirection dimension (BFS erdos-renyi, p=64; Sec. VI future work)"
    ~header:[ "routing"; "time" ]
    (List.map (fun (name, t) -> [ name; Table_fmt.seconds t ]) rows)

(* -------- 1c. hierarchical fabric (node-aware) -------- *)

let node_awareness () =
  let ranks = 64 in
  let bfs ?node strategy =
    let global_n = ranks * 1024 in
    let res =
      Mpisim.Mpi.run ?node ~ranks (fun comm ->
          let graph =
            Gen.generate Gen.Erdos_renyi ~rank:(Mpisim.Comm.rank comm) ~comm_size:ranks ~global_n
              ~avg_degree:8 ~seed:31
          in
          let t0 = Mpisim.Comm.now comm in
          let (_ : int array) = strategy comm graph ~src:0 in
          Mpisim.Comm.now comm -. t0)
    in
    Array.fold_left Float.max 0.0 (Mpisim.Mpi.results_exn res)
  in
  (* node size 8 = grid row width: phase 1 of the grid plugin becomes
     intra-node traffic *)
  let node = (Simnet.Netmodel.intra_node, 8) in
  let rows =
    [
      [ "flat fabric"; Table_fmt.seconds (bfs Apps.Bfs_kamping.bfs);
        Table_fmt.seconds (bfs Apps.Bfs_strategies.bfs_grid) ];
      [ "8-rank nodes (rows = nodes)"; Table_fmt.seconds (bfs ~node Apps.Bfs_kamping.bfs);
        Table_fmt.seconds (bfs ~node Apps.Bfs_strategies.bfs_grid) ];
    ]
  in
  Table_fmt.print_table
    ~title:"Ablation 1c - node-aware fabric (BFS erdos-renyi, p=64, 8 ranks/node)"
    ~header:[ "fabric"; "alltoallv"; "grid" ]
    rows;
  print_endline
    "  (the grid's first hop stays inside the node when rows align with nodes)"

(* -------- 2. NBX poll interval -------- *)

let nbx_poll_sensitivity () =
  let time_with poll_interval =
    let ranks = 32 in
    let res =
      Mpisim.Mpi.run ~ranks (fun raw ->
          let comm = K.wrap raw in
          let r = K.rank comm in
          let t0 = K.now comm in
          for round = 1 to 5 do
            ignore
              (Kamping_plugins.Sparse_alltoall.exchange ~tag:(0x900 + round) ~poll_interval comm
                 D.int
                 ~messages:[ ((r + 1) mod ranks, V.make 16 r) ])
          done;
          K.now comm -. t0)
    in
    Array.fold_left Float.max 0.0 (Mpisim.Mpi.results_exn res)
  in
  let rows =
    List.map
      (fun poll ->
        [ Printf.sprintf "%.1f us" (1e6 *. poll); Table_fmt.seconds (time_with poll) ])
      [ 0.2e-6; 1.0e-6; 5.0e-6; 20.0e-6 ]
  in
  Table_fmt.print_table ~title:"Ablation 2 - NBX poll interval (5 sparse rounds, p=32)"
    ~header:[ "poll interval"; "time" ] rows

(* -------- 3. sample sort oversampling -------- *)

let oversampling_quality () =
  let ranks = 16 and n_per_rank = 4000 in
  let imbalance oversampling =
    let res =
      Mpisim.Mpi.run ~ranks (fun raw ->
          let comm = K.wrap raw in
          let rng = Simnet.Rng.split (Simnet.Rng.create 3L) (K.rank comm) in
          let data = V.init n_per_rank (fun _ -> Simnet.Rng.int rng 1_000_000) in
          let sorted = Kamping_plugins.Sorter.sort ~oversampling comm D.int ~cmp:compare data in
          V.length sorted)
    in
    let sizes = Mpisim.Mpi.results_exn res in
    let max_size = Array.fold_left max 0 sizes in
    float_of_int max_size /. (float_of_int (ranks * n_per_rank) /. float_of_int ranks)
  in
  let logp = int_of_float (ceil (log (float_of_int ranks) /. log 2.0)) in
  let rows =
    List.map
      (fun (label, s) -> [ label; string_of_int s; Printf.sprintf "%.2f" (imbalance s) ])
      [
        ("1 (minimal)", 1);
        ("4 log p", 4 * logp);
        ("16 log p + 1 (paper)", (16 * logp) + 1);
        ("64 log p", 64 * logp);
      ]
  in
  Table_fmt.print_table
    ~title:"Ablation 3 - sample sort oversampling vs. load imbalance (p=16)"
    ~header:[ "oversampling"; "samples/rank"; "max load / avg load" ]
    rows

(* -------- 4. assertion levels -------- *)

let assertion_levels () =
  let profile level =
    let res =
      Mpisim.Mpi.run ~ranks:8 (fun raw ->
          Kamping.Assertions.with_level level (fun () ->
              let comm = K.wrap raw in
              ignore (K.allgather comm D.int ~send_buf:(V.make 4 (K.rank comm)))))
    in
    let prof = res.Mpisim.Mpi.profile in
    let calls = List.fold_left (fun acc (_, c) -> acc + c) 0 prof.Mpisim.Profiling.calls in
    (calls, prof.Mpisim.Profiling.messages, res.Mpisim.Mpi.sim_time)
  in
  let rows =
    List.map
      (fun (name, level) ->
        let calls, messages, time = profile level in
        [ name; string_of_int calls; string_of_int messages; Table_fmt.seconds time ])
      [
        ("off", Kamping.Assertions.Off);
        ("light (default)", Kamping.Assertions.Light);
        ("normal", Kamping.Assertions.Normal);
        ("heavy (communicating)", Kamping.Assertions.Heavy);
      ]
  in
  Table_fmt.print_table ~title:"Ablation 4 - assertion levels on one allgather (p=8)"
    ~header:[ "level"; "MPI calls"; "messages"; "simulated time" ]
    rows

let run () =
  network_sensitivity ();
  dimension_sweep ();
  node_awareness ();
  nbx_poll_sensitivity ();
  oversampling_quality ();
  assertion_levels ()
