(** Sec. III-D4: contiguous-bytes vs. explicit-struct vs. serialized
    transfers of a gapped record. *)

type sample = { label : string; seconds : float; bytes : int }

val measure : ?count:int -> ?rounds:int -> unit -> sample list
val run : unit -> unit
