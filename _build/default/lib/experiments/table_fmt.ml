(* Plain-text table rendering for the benchmark harness. *)

let print_table ~title ~header rows =
  Printf.printf "\n== %s ==\n" title;
  let columns = List.length header in
  let widths =
    List.init columns (fun c ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row c)))
          (String.length (List.nth header c))
          rows)
  in
  let print_row row =
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        if c = 0 then Printf.printf "| %-*s " w cell else Printf.printf "| %*s " w cell)
      row;
    print_string "|\n"
  in
  let rule () =
    List.iter (fun w -> Printf.printf "+%s" (String.make (w + 2) '-')) widths;
    print_string "+\n"
  in
  rule ();
  print_row header;
  rule ();
  List.iter print_row rows;
  rule ()

let seconds s =
  if s < 1.0e-3 then Printf.sprintf "%.1fus" (s *. 1.0e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1.0e3)
  else Printf.sprintf "%.3fs" s
