(** Sec. IV-A: suffix-array construction (prefix doubling and DCX),
    correctness at scale plus the LoC comparison. *)

(** [random_text ~n ~sigma ~seed] draws a random text over [sigma]
    letters. *)
val random_text : n:int -> sigma:int -> seed:int -> string

(** [build_distributed text ranks] runs the prefix-doubling builder and
    returns [(suffix array, simulated seconds)]. *)
val build_distributed : string -> int -> int array * float

val run : unit -> unit
