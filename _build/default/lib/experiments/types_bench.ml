(* Sec. III-D4 "preliminary experiments": communicating a struct with
   alignment gaps as (a) KaMPIng's contiguous-bytes default, (b) an
   explicit MPI struct type skipping the padding, and (c) explicit
   serialization.  Expected shape: contiguous fastest despite shipping the
   padding; struct pays the strided pack penalty; serialization clearly
   slowest (and its cost visible, because it is explicit). *)

module D = Mpisim.Datatype
module K = Kamping.Comm
module V = Ds.Vec

(* struct MyType { int64 a; double b; char c; int d[3]; } — Fig. 4 *)
let fields = Kamping.Type_traits.[ Int64 "a"; Float "b"; Char "c"; Array ("d", 3, Int "elt") ]

type my_type = { a : int64; b : float; c : char; d : int array }

let default = { a = 0L; b = 0.0; c = '\000'; d = [| 0; 0; 0 |] }

let dt_contiguous : my_type D.t =
  Kamping.Type_traits.trivially_copyable ~default ~name:"MyType(contiguous)" fields

let dt_struct : my_type D.t = Kamping.Type_traits.struct_type ~default ~name:"MyType(struct)" fields

let codec =
  Serde.Codec.conv ~name:"MyType"
    (fun m -> (m.a, (m.b, m.c), m.d))
    (fun (a, (b, c), d) -> { a; b; c; d })
    Serde.Codec.(triple int64 (pair float char) (array int))

let element i =
  { a = Int64.of_int i; b = float_of_int i *. 0.5; c = Char.chr (i land 0x7f); d = [| i; i + 1; i + 2 |] }

type sample = { label : string; seconds : float; bytes : int }

let measure ?(count = 4096) ?(rounds = 8) () =
  let ping variant =
    let res =
      Mpisim.Mpi.run ~ranks:2 (fun comm ->
          let kc = K.wrap comm in
          let payload = V.init count element in
          let t0 = K.now kc in
          for i = 1 to rounds do
            match variant with
            | `Contiguous | `Struct ->
                let dt = if variant = `Contiguous then dt_contiguous else dt_struct in
                if K.rank kc = 0 then K.send ~tag:i kc dt ~send_buf:payload ~dst:1
                else ignore (K.recv ~tag:i ~count kc dt ~src:0)
            | `Serialized ->
                if K.rank kc = 0 then K.send_serialized ~tag:i kc (Serde.Codec.vec codec) payload ~dst:1
                else ignore (K.recv_serialized ~tag:i kc (Serde.Codec.vec codec) ~src:0)
          done;
          K.now kc -. t0)
    in
    Array.fold_left Float.max 0.0 (Mpisim.Mpi.results_exn res)
  in
  let bytes_of = function
    | `Contiguous -> D.extent dt_contiguous * count
    | `Struct -> D.extent dt_struct * count
    | `Serialized ->
        Bytes.length (Serde.Codec.encode (Serde.Codec.vec codec) (V.init count element))
  in
  [
    { label = "contiguous bytes (KaMPIng default)"; seconds = ping `Contiguous; bytes = bytes_of `Contiguous };
    { label = "MPI struct type (no padding)"; seconds = ping `Struct; bytes = bytes_of `Struct };
    { label = "explicit serialization"; seconds = ping `Serialized; bytes = bytes_of `Serialized };
  ]

let run () =
  let samples = measure () in
  Table_fmt.print_table ~title:"Sec. III-D4 - type construction strategies (4096 structs, 8 pings)"
    ~header:[ "mapping"; "wire bytes"; "simulated time" ]
    (List.map
       (fun s -> [ s.label; string_of_int s.bytes; Table_fmt.seconds s.seconds ])
       samples);
  match samples with
  | [ contiguous; strct; serialized ] ->
      Printf.printf "contiguous faster than struct despite more bytes: %b\n"
        (contiguous.seconds < strct.seconds && contiguous.bytes > strct.bytes);
      Printf.printf "serialization has non-negligible overhead: %b (%.2fx contiguous)\n"
        (serialized.seconds > 1.3 *. contiguous.seconds)
        (serialized.seconds /. contiguous.seconds)
  | _ -> ()
