(* Fig. 12 / Sec. V-B: fault-tolerant execution with the ULFM plugin.  A
   compute-allreduce loop loses ranks to injected failures and recovers by
   revoke + shrink; the run reports how many survivors finished and how
   much simulated time the recoveries cost. *)

module K = Kamping.Comm
module D = Mpisim.Datatype

type outcome = {
  ranks : int;
  failures : int;
  survivors_done : int;
  rounds_target : int;
  seconds : float;
}

let scenario ~ranks ~failures ~rounds =
  let failure_times = List.init failures (fun i -> (float_of_int (i + 1) *. 120.0e-6, (i * 3) + 1)) in
  let res =
    Mpisim.Mpi.run ~ranks ~failures:failure_times (fun raw ->
        let comm = ref (K.wrap raw) in
        let completed = ref 0 in
        let attempts = ref 0 in
        while !completed < rounds && !attempts < 10 * rounds do
          incr attempts;
          K.compute !comm 50.0e-6;
          try
            let (_ : int) = K.allreduce_single !comm D.int Mpisim.Op.int_sum 1 in
            incr completed
          with Mpisim.Errors.Process_failed _ | Mpisim.Errors.Comm_revoked ->
            if not (Kamping_plugins.Ulfm.is_revoked !comm) then Kamping_plugins.Ulfm.revoke !comm;
            comm := Kamping_plugins.Ulfm.shrink !comm;
            completed := K.allreduce_single !comm D.int Mpisim.Op.int_min !completed
        done;
        !completed)
  in
  let survivors_done =
    Array.fold_left
      (fun acc r -> match r with Ok c when c = rounds -> acc + 1 | Ok _ | Error _ -> acc)
      0 res.Mpisim.Mpi.results
  in
  { ranks; failures; survivors_done; rounds_target = rounds; seconds = res.Mpisim.Mpi.sim_time }

let run () =
  let rows =
    [ scenario ~ranks:8 ~failures:0 ~rounds:10
    ; scenario ~ranks:8 ~failures:1 ~rounds:10
    ; scenario ~ranks:8 ~failures:2 ~rounds:10
    ; scenario ~ranks:16 ~failures:3 ~rounds:10
    ]
  in
  Table_fmt.print_table ~title:"Fig. 12 - ULFM recovery (revoke + shrink on failure)"
    ~header:[ "ranks"; "injected failures"; "survivors finishing"; "simulated time" ]
    (List.map
       (fun o ->
         [
           string_of_int o.ranks;
           string_of_int o.failures;
           Printf.sprintf "%d/%d" o.survivors_done (o.ranks - o.failures);
           Table_fmt.seconds o.seconds;
         ])
       rows);
  Printf.printf "all survivors completed their %d rounds in every scenario: %b\n"
    (List.hd rows).rounds_target
    (List.for_all (fun o -> o.survivors_done = o.ranks - o.failures) rows)
