(** Fig. 8: sample sort weak scaling across the five binding styles. *)

type point = { binding : string; ranks : int; seconds : float }

(** [measure ()] runs the weak-scaling sweep (simulated seconds, max over
    ranks). *)
val measure : ?n_per_rank:int -> ?rank_counts:int list -> unit -> point list

(** [run ()] prints the table and the paper's shape checks. *)
val run : unit -> unit
