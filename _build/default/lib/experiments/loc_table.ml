(* Table I: lines of code of the communication-specific part of each
   application, per binding.  We count the actual variant source files of
   this repository (non-blank, non-comment lines), exactly as the paper
   counts the binding-specific code after extracting the shared parts. *)

let repo_root () =
  (* walk upward until dune-project is found, so the counter works from
     both `dune exec` (workspace root) and the _build sandbox *)
  let rec go dir depth =
    if depth > 6 then None
    else if Sys.file_exists (Filename.concat dir "dune-project") && Sys.file_exists (Filename.concat dir "lib/apps")
    then Some dir
    else go (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  go (Sys.getcwd ()) 0

(* Count non-blank lines outside (possibly nested) OCaml comments. *)
let count_loc path =
  let ic = open_in path in
  let depth = ref 0 in
  let loc = ref 0 in
  (try
     while true do
       let line = input_line ic in
       let n = String.length line in
       let code = Buffer.create n in
       let i = ref 0 in
       while !i < n do
         if !i + 1 < n && line.[!i] = '(' && line.[!i + 1] = '*' then begin
           incr depth;
           i := !i + 2
         end
         else if !i + 1 < n && line.[!i] = '*' && line.[!i + 1] = ')' && !depth > 0 then begin
           decr depth;
           i := !i + 2
         end
         else begin
           if !depth = 0 then Buffer.add_char code line.[!i];
           incr i
         end
       done;
       if String.trim (Buffer.contents code) <> "" then incr loc
     done
   with End_of_file -> close_in ic);
  !loc

type row = { app : string; mpi : int; boost : int; rwth : int; mpl : int; kamping : int }

let variants app =
  match app with
  | "sample sort" -> ("ss_mpi", "ss_boost", "ss_rwth", "ss_mpl", "ss_kamping")
  | "BFS" -> ("bfs_mpi", "bfs_boost", "bfs_rwth", "bfs_mpl", "bfs_kamping")
  | _ -> invalid_arg "unknown app"

let measure () =
  match repo_root () with
  | None -> Error "source tree not found (run from within the repository)"
  | Some root ->
      let count name = count_loc (Filename.concat root (Printf.sprintf "lib/apps/%s.ml" name)) in
      let row app =
        let m, b, rw, ml, k = variants app in
        { app; mpi = count m; boost = count b; rwth = count rw; mpl = count ml; kamping = count k }
      in
      Ok [ row "sample sort"; row "BFS" ]

(* The paper's numbers for reference in the printed table. *)
let paper_numbers =
  [ ("vector allgather", (14, 5, 5, 12, 1)); ("sample sort", (32, 30, 21, 37, 16)); ("BFS", (46, 42, 32, 49, 22)) ]

let run () =
  match measure () with
  | Error msg -> Printf.printf "Table I skipped: %s\n" msg
  | Ok rows ->
      let to_cells { app; mpi; boost; rwth; mpl; kamping } =
        [ app; string_of_int mpi; string_of_int boost; string_of_int rwth; string_of_int mpl;
          string_of_int kamping ]
      in
      Table_fmt.print_table ~title:"Table I - lines of code per binding (this repo, measured)"
        ~header:[ "app"; "MPI"; "Boost"; "RWTH"; "MPL"; "KaMPIng" ]
        (List.map to_cells rows);
      Table_fmt.print_table ~title:"Table I - lines of code per binding (paper, C++)"
        ~header:[ "app"; "MPI"; "Boost"; "RWTH"; "MPL"; "KaMPIng" ]
        (List.map
           (fun (app, (m, b, rw, ml, k)) ->
             [ app; string_of_int m; string_of_int b; string_of_int rw; string_of_int ml;
               string_of_int k ])
           paper_numbers);
      (* the ordering claim of Table I: KaMPIng tersest, plain MPI and MPL
         most verbose *)
      List.iter
        (fun r ->
          let ok = r.kamping < r.rwth && r.kamping < r.boost && r.kamping < r.mpi && r.kamping < r.mpl in
          Printf.printf "%s: kamping is tersest: %b\n" r.app ok)
        rows
