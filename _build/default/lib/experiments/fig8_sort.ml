(* Fig. 8: weak-scaling running time of sample sort under each binding.
   The paper sorts 1e6 64-bit integers per rank on up to 256 x 48 cores; we
   scale the per-rank load down (the DES runs every rank in one process)
   but keep the weak-scaling setup and the full binding matrix.  Expected
   shape (paper: "KaMPIng introduces no additional overhead compared to a
   hand-rolled implementation in plain MPI or other libraries"): all
   bindings on top of each other — sample sort is dominated by local work
   and a single bulk exchange, so even MPL's Alltoallw path hides here
   (its cost shows in the latency-bound BFS of Fig. 10). *)

type point = { binding : string; ranks : int; seconds : float }

let bindings : (string * (Mpisim.Comm.t -> int array -> int array)) list =
  [
    ("mpi", Apps.Ss_mpi.sort);
    ("kamping", Apps.Ss_kamping.sort);
    ("boost", Apps.Ss_boost.sort);
    ("rwth", Apps.Ss_rwth.sort);
    ("mpl", Apps.Ss_mpl.sort);
  ]

let measure ?(n_per_rank = 20_000) ?(rank_counts = [ 4; 16; 64; 256 ]) () =
  List.concat_map
    (fun ranks ->
      List.map
        (fun (binding, sorter) ->
          let res =
            Mpisim.Mpi.run ~ranks (fun comm ->
                let data =
                  Apps.Ss_common.generate_input ~rank:(Mpisim.Comm.rank comm) ~n_per_rank ~seed:8
                in
                let t0 = Mpisim.Comm.now comm in
                let (_ : int array) = sorter comm data in
                Mpisim.Comm.now comm -. t0)
          in
          let per_rank = Mpisim.Mpi.results_exn res in
          let seconds = Array.fold_left Float.max 0.0 per_rank in
          { binding; ranks; seconds })
        bindings)
    rank_counts

let run () =
  let points = measure () in
  let rank_counts = List.sort_uniq compare (List.map (fun p -> p.ranks) points) in
  let rows =
    List.map
      (fun (binding, _) ->
        binding
        :: List.map
             (fun ranks ->
               let p = List.find (fun p -> p.binding = binding && p.ranks = ranks) points in
               Table_fmt.seconds p.seconds)
             rank_counts)
      bindings
  in
  Table_fmt.print_table
    ~title:"Fig. 8 - sample sort weak scaling, 20k int64/rank (simulated time)"
    ~header:("binding" :: List.map (fun r -> Printf.sprintf "p=%d" r) rank_counts)
    rows;
  (* shape checks from the paper *)
  let at binding ranks = (List.find (fun p -> p.binding = binding && p.ranks = ranks) points).seconds in
  let pmax = List.fold_left max 0 rank_counts in
  let mpi = at "mpi" pmax in
  Printf.printf "kamping within 2%% of plain MPI at p=%d: %b (%.3f vs %.3f ms)\n" pmax
    (Float.abs (at "kamping" pmax -. mpi) /. mpi < 0.02)
    (1e3 *. at "kamping" pmax)
    (1e3 *. mpi);
  Printf.printf "all bindings within 10%% of plain MPI at p=%d: %b\n" pmax
    (List.for_all (fun (b, _) -> Float.abs (at b pmax -. mpi) /. mpi < 0.10) bindings)
