(** Sec. III-H / IV-A: the (near) zero-overhead claim — PMPI call profiles
    and end-to-end sample-sort timing. *)

type timing = { variant : string; seconds : float }

val sort_timings : ?ranks:int -> ?n_per_rank:int -> unit -> timing list
val run : unit -> unit
