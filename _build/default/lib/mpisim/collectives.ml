module Engine = Simnet.Engine

let record comm name = Profiling.record_call (Comm.world comm).World.prof name

let check_root comm root =
  if root < 0 || root >= Comm.size comm then
    Errors.usage "root %d out of range for communicator of size %d" root (Comm.size comm)

let check_count what count =
  if count < 0 then Errors.usage "%s: negative count %d" what count

(* Combine [count] elements of [extra] into [acc] and charge the reduction
   cost. *)
let combine comm op acc extra count =
  for i = 0 to count - 1 do
    acc.(i) <- Op.apply op acc.(i) extra.(i)
  done;
  if count > 0 then Comm.compute comm (float_of_int count *. Op.cost_per_element op)

(* ------------------------------------------------------------------ *)
(* Internal algorithm bodies (not individually recorded).              *)
(* ------------------------------------------------------------------ *)

(* Dissemination barrier: round k talks to ranks +-2^k; all offsets are
   distinct mod p, so one tag suffices. *)
let dissemination comm tag =
  let p = Comm.size comm and r = Comm.rank comm in
  let token = [| 0 |] in
  let k = ref 1 in
  while !k < p do
    let dst = (r + !k) mod p and src = (r - !k + p) mod p in
    let req = P2p.isend ~ctx:Internal comm Datatype.int token ~dst ~tag in
    ignore (P2p.recv ~ctx:Internal comm Datatype.int token ~src ~tag);
    ignore (Request.wait req);
    k := !k lsl 1
  done

(* Binomial-tree broadcast (MPICH-style). *)
let bcast_ comm dt buf pos count ~root ~tag =
  let p = Comm.size comm and r = Comm.rank comm in
  if p > 1 && count > 0 then begin
    let rel = (r - root + p) mod p in
    let mask = ref 1 in
    while !mask < p && rel land !mask = 0 do
      mask := !mask lsl 1
    done;
    if rel <> 0 then begin
      let src = (rel - !mask + root) mod p in
      ignore (P2p.recv ~ctx:Internal ~pos ~count comm dt buf ~src ~tag)
    end;
    mask := !mask lsr 1;
    while !mask > 0 do
      if rel + !mask < p then begin
        let dst = (rel + !mask + root) mod p in
        P2p.send ~ctx:Internal ~pos ~count comm dt buf ~dst ~tag
      end;
      mask := !mask lsr 1
    done
  end

(* Binomial-tree reduction.  Reassociates (and, for the receive-combines,
   commutes) the operation — the canonical source of float irreproducibility
   across different p that Sec. V-C addresses. *)
let reduce_ comm dt op ~sendbuf ~pos ~count ~root ~tag =
  let p = Comm.size comm and r = Comm.rank comm in
  let acc = Array.sub sendbuf pos count in
  if p = 1 || count = 0 then acc
  else begin
    let tmp = Array.copy acc in
    let rel = (r - root + p) mod p in
    let mask = ref 1 in
    let running = ref true in
    while !running && !mask < p do
      if rel land !mask = 0 then begin
        let src_rel = rel lor !mask in
        if src_rel < p then begin
          let src = (src_rel + root) mod p in
          ignore (P2p.recv ~ctx:Internal ~count comm dt tmp ~src ~tag);
          combine comm op acc tmp count
        end
      end
      else begin
        let dst = ((rel lxor !mask) + root) mod p in
        P2p.send ~ctx:Internal ~count comm dt acc ~dst ~tag;
        running := false
      end;
      mask := !mask lsl 1
    done;
    acc
  end

(* Bruck's allgather: logarithmic number of rounds for arbitrary p. *)
let allgather_ comm dt ~recvbuf ~rpos ~count ~tag ~my_block_pos ~my_block_buf =
  let p = Comm.size comm and r = Comm.rank comm in
  if count > 0 then begin
    if p = 1 then begin
      if my_block_buf != recvbuf || my_block_pos <> rpos then
        Array.blit my_block_buf my_block_pos recvbuf rpos count
    end
    else begin
      let temp = Array.make (p * count) my_block_buf.(my_block_pos) in
      Array.blit my_block_buf my_block_pos temp 0 count;
      let m = ref 1 in
      while !m < p do
        let s = min !m (p - !m) in
        let dst = (r - !m + p) mod p and src = (r + !m) mod p in
        let req = P2p.isend ~ctx:Internal ~count:(s * count) comm dt temp ~dst ~tag in
        ignore (P2p.recv ~ctx:Internal ~pos:(!m * count) ~count:(s * count) comm dt temp ~src ~tag);
        ignore (Request.wait req);
        m := !m + s
      done;
      (* Undo the rotation: temp block i holds rank (r+i) mod p's data. *)
      for i = 0 to p - 1 do
        Array.blit temp (i * count) recvbuf (rpos + (((r + i) mod p) * count)) count
      done
    end
  end

(* ------------------------------------------------------------------ *)
(* Public operations.                                                  *)
(* ------------------------------------------------------------------ *)

let barrier comm =
  Comm.check_active comm;
  record comm "MPI_Barrier";
  dissemination comm (Comm.next_collective_tag comm)

let bcast ?(pos = 0) ?count comm dt buf ~root =
  Comm.check_active comm;
  record comm "MPI_Bcast";
  check_root comm root;
  let count = match count with Some c -> c | None -> Array.length buf - pos in
  check_count "bcast" count;
  bcast_ comm dt buf pos count ~root ~tag:(Comm.next_collective_tag comm)

let reduce ?(pos = 0) ?recvbuf comm dt op ~sendbuf ~count ~root =
  Comm.check_active comm;
  record comm "MPI_Reduce";
  check_root comm root;
  check_count "reduce" count;
  let tag = Comm.next_collective_tag comm in
  let acc = reduce_ comm dt op ~sendbuf ~pos ~count ~root ~tag in
  if Comm.rank comm = root then begin
    match recvbuf with
    | Some rb -> Array.blit acc 0 rb 0 count
    | None -> Errors.usage "reduce: the root rank needs a receive buffer"
  end

let allreduce ?(pos = 0) comm dt op ~sendbuf ~recvbuf ~count =
  Comm.check_active comm;
  record comm "MPI_Allreduce";
  check_count "allreduce" count;
  let tag = Comm.next_collective_tag comm in
  let acc = reduce_ comm dt op ~sendbuf ~pos ~count ~root:0 ~tag in
  if Comm.rank comm = 0 then Array.blit acc 0 recvbuf 0 count;
  bcast_ comm dt recvbuf 0 count ~root:0 ~tag:(Comm.next_collective_tag comm)

let allgather ?(inplace = false) ?(spos = 0) ?(rpos = 0) comm dt ~sendbuf ~recvbuf ~count =
  Comm.check_active comm;
  record comm "MPI_Allgather";
  check_count "allgather" count;
  let tag = Comm.next_collective_tag comm in
  let my_block_buf, my_block_pos =
    if inplace then (recvbuf, rpos + (Comm.rank comm * count)) else (sendbuf, spos)
  in
  allgather_ comm dt ~recvbuf ~rpos ~count ~tag ~my_block_pos ~my_block_buf

(* Ring allgatherv: in step s, pass along the block received in step s-1.
   Successive messages between the same neighbours share a tag; the network
   model preserves per-link FIFO order (injection rate >= wire rate). *)
let allgatherv ?(inplace = false) ?(spos = 0) comm dt ~sendbuf ~scount ~recvbuf ~rcounts ~rdispls =
  Comm.check_active comm;
  record comm "MPI_Allgatherv";
  check_count "allgatherv" scount;
  let p = Comm.size comm and r = Comm.rank comm in
  if Array.length rcounts <> p || Array.length rdispls <> p then
    Errors.usage "allgatherv: rcounts/rdispls must have one entry per rank";
  if scount <> rcounts.(r) then
    Errors.usage "allgatherv: send count %d disagrees with rcounts.(%d) = %d" scount r rcounts.(r);
  let tag = Comm.next_collective_tag comm in
  if not inplace then Array.blit sendbuf spos recvbuf rdispls.(r) scount;
  if p > 1 then begin
    let dst = (r + 1) mod p and src = (r - 1 + p) mod p in
    for step = 1 to p - 1 do
      let send_block = (r - step + 1 + p) mod p in
      let recv_block = (r - step + p) mod p in
      let req =
        P2p.isend ~ctx:Internal ~pos:rdispls.(send_block) ~count:rcounts.(send_block) comm dt
          recvbuf ~dst ~tag
      in
      ignore
        (P2p.recv ~ctx:Internal ~pos:rdispls.(recv_block) ~count:rcounts.(recv_block) comm dt
           recvbuf ~src ~tag);
      ignore (Request.wait req)
    done
  end

let gather ?(spos = 0) ?(rpos = 0) ?recvbuf comm dt ~sendbuf ~count ~root =
  Comm.check_active comm;
  record comm "MPI_Gather";
  check_root comm root;
  check_count "gather" count;
  let p = Comm.size comm and r = Comm.rank comm in
  let tag = Comm.next_collective_tag comm in
  if r = root then begin
    let recvbuf =
      match recvbuf with
      | Some rb -> rb
      | None -> Errors.usage "gather: the root rank needs a receive buffer"
    in
    Array.blit sendbuf spos recvbuf (rpos + (r * count)) count;
    for src = 0 to p - 1 do
      if src <> root then
        ignore (P2p.recv ~ctx:Internal ~pos:(rpos + (src * count)) ~count comm dt recvbuf ~src ~tag)
    done
  end
  else P2p.send ~ctx:Internal ~pos:spos ~count comm dt sendbuf ~dst:root ~tag

let gatherv ?(spos = 0) ?recvbuf ?rcounts ?rdispls comm dt ~sendbuf ~scount ~root =
  Comm.check_active comm;
  record comm "MPI_Gatherv";
  check_root comm root;
  check_count "gatherv" scount;
  let p = Comm.size comm and r = Comm.rank comm in
  let tag = Comm.next_collective_tag comm in
  if r = root then begin
    let recvbuf, rcounts, rdispls =
      match (recvbuf, rcounts, rdispls) with
      | Some rb, Some rc, Some rd -> (rb, rc, rd)
      | _ -> Errors.usage "gatherv: the root rank needs recvbuf, rcounts and rdispls"
    in
    Array.blit sendbuf spos recvbuf rdispls.(r) scount;
    for src = 0 to p - 1 do
      if src <> root then
        ignore
          (P2p.recv ~ctx:Internal ~pos:rdispls.(src) ~count:rcounts.(src) comm dt recvbuf ~src ~tag)
    done
  end
  else P2p.send ~ctx:Internal ~pos:spos ~count:scount comm dt sendbuf ~dst:root ~tag

let scatter ?(spos = 0) ?(rpos = 0) ?sendbuf comm dt ~recvbuf ~count ~root =
  Comm.check_active comm;
  record comm "MPI_Scatter";
  check_root comm root;
  check_count "scatter" count;
  let p = Comm.size comm and r = Comm.rank comm in
  let tag = Comm.next_collective_tag comm in
  if r = root then begin
    let sendbuf =
      match sendbuf with
      | Some sb -> sb
      | None -> Errors.usage "scatter: the root rank needs a send buffer"
    in
    Array.blit sendbuf (spos + (r * count)) recvbuf rpos count;
    for dst = 0 to p - 1 do
      if dst <> root then
        P2p.send ~ctx:Internal ~pos:(spos + (dst * count)) ~count comm dt sendbuf ~dst ~tag
    done
  end
  else ignore (P2p.recv ~ctx:Internal ~pos:rpos ~count comm dt recvbuf ~src:root ~tag)

let scatterv ?(rpos = 0) ?sendbuf ?scounts ?sdispls comm dt ~recvbuf ~rcount ~root =
  Comm.check_active comm;
  record comm "MPI_Scatterv";
  check_root comm root;
  check_count "scatterv" rcount;
  let p = Comm.size comm and r = Comm.rank comm in
  let tag = Comm.next_collective_tag comm in
  if r = root then begin
    let sendbuf, scounts, sdispls =
      match (sendbuf, scounts, sdispls) with
      | Some sb, Some sc, Some sd -> (sb, sc, sd)
      | _ -> Errors.usage "scatterv: the root rank needs sendbuf, scounts and sdispls"
    in
    Array.blit sendbuf sdispls.(r) recvbuf rpos scounts.(r);
    for dst = 0 to p - 1 do
      if dst <> root then
        P2p.send ~ctx:Internal ~pos:sdispls.(dst) ~count:scounts.(dst) comm dt sendbuf ~dst ~tag
    done
  end
  else ignore (P2p.recv ~ctx:Internal ~pos:rpos ~count:rcount comm dt recvbuf ~src:root ~tag)

(* Irregular exchanges post every request up front and wait for all of
   them (the linear algorithm real implementations use): latency is hidden
   by overlap, but each of the p-1 peers still costs a message start-up —
   including zero-count pairs, which is exactly why Alltoall(v) has
   Omega(p) complexity per call (paper Sec. V-A). *)
let post_all_exchange comm dt ~tag ~scount_of ~spos_of ~rcount_of ~rpos_of ~sendbuf ~recvbuf =
  let p = Comm.size comm and r = Comm.rank comm in
  Array.blit sendbuf (spos_of r) recvbuf (rpos_of r) (scount_of r);
  let recv_reqs =
    List.init (p - 1) (fun i ->
        let src = (r - 1 - i + p) mod p in
        P2p.irecv ~ctx:Internal ~pos:(rpos_of src) ~count:(rcount_of src) comm dt recvbuf ~src ~tag)
  in
  let send_reqs =
    List.init (p - 1) (fun i ->
        let dst = (r + 1 + i) mod p in
        P2p.isend ~ctx:Internal ~pos:(spos_of dst) ~count:(scount_of dst) comm dt sendbuf ~dst ~tag)
  in
  ignore (Request.wait_all recv_reqs);
  ignore (Request.wait_all send_reqs)

let alltoall comm dt ~sendbuf ~recvbuf ~count =
  Comm.check_active comm;
  record comm "MPI_Alltoall";
  check_count "alltoall" count;
  let tag = Comm.next_collective_tag comm in
  post_all_exchange comm dt ~tag
    ~scount_of:(fun _ -> count)
    ~spos_of:(fun d -> d * count)
    ~rcount_of:(fun _ -> count)
    ~rpos_of:(fun s -> s * count)
    ~sendbuf ~recvbuf

let check_v_arrays what comm scounts sdispls rcounts rdispls =
  let p = Comm.size comm in
  if
    Array.length scounts <> p || Array.length sdispls <> p || Array.length rcounts <> p
    || Array.length rdispls <> p
  then Errors.usage "%s: counts/displacements must have one entry per rank" what

let alltoallv comm dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls =
  Comm.check_active comm;
  record comm "MPI_Alltoallv";
  check_v_arrays "alltoallv" comm scounts sdispls rcounts rdispls;
  let tag = Comm.next_collective_tag comm in
  post_all_exchange comm dt ~tag
    ~scount_of:(fun d -> scounts.(d))
    ~spos_of:(fun d -> sdispls.(d))
    ~rcount_of:(fun s -> rcounts.(s))
    ~rpos_of:(fun s -> rdispls.(s))
    ~sendbuf ~recvbuf

(* The Alltoallw fallback (MPL's path): same linear posting as alltoallv,
   plus a derived-datatype setup per peer and the generic datatype engine
   on every message — the overheads that make MPL's variable collectives
   measurably slower and less scalable (Ghosh et al., paper Sec. II). *)
let alltoallw_style comm dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls =
  Comm.check_active comm;
  record comm "MPI_Alltoallw";
  check_v_arrays "alltoallw" comm scounts sdispls rcounts rdispls;
  let p = Comm.size comm in
  let tag = Comm.next_collective_tag comm in
  let type_setup_cost = 0.3e-6 in
  let datatype_engine_cost = 0.4e-6 (* per message, send and receive side *) in
  Comm.compute comm (float_of_int (2 * p) *. (type_setup_cost +. datatype_engine_cost));
  post_all_exchange comm dt ~tag
    ~scount_of:(fun d -> scounts.(d))
    ~spos_of:(fun d -> sdispls.(d))
    ~rcount_of:(fun s -> rcounts.(s))
    ~rpos_of:(fun s -> rdispls.(s))
    ~sendbuf ~recvbuf

(* Reduce-scatter with equal block sizes: reduce to root, then scatter the
   blocks (the simple algorithm; tuned implementations exist but the cost
   shape — full reduction volume plus a scatter — is the same). *)
let reduce_scatter_block comm dt op ~sendbuf ~recvbuf ~count =
  Comm.check_active comm;
  record comm "MPI_Reduce_scatter_block";
  check_count "reduce_scatter_block" count;
  let p = Comm.size comm and r = Comm.rank comm in
  let total = p * count in
  let tag = Comm.next_collective_tag comm in
  let acc = reduce_ comm dt op ~sendbuf ~pos:0 ~count:total ~root:0 ~tag in
  let stag = Comm.next_collective_tag comm in
  if r = 0 then begin
    Array.blit acc 0 recvbuf 0 count;
    for dst = 1 to p - 1 do
      P2p.send ~ctx:Internal ~pos:(dst * count) ~count comm dt acc ~dst ~tag:stag
    done
  end
  else ignore (P2p.recv ~ctx:Internal ~count comm dt recvbuf ~src:0 ~tag:stag)

(* Recursive-doubling inclusive scan. *)
let scan comm dt op ~sendbuf ~recvbuf ~count =
  Comm.check_active comm;
  record comm "MPI_Scan";
  check_count "scan" count;
  let p = Comm.size comm and r = Comm.rank comm in
  let tag = Comm.next_collective_tag comm in
  Array.blit sendbuf 0 recvbuf 0 count;
  if p > 1 && count > 0 then begin
    let partial = Array.sub sendbuf 0 count in
    let tmp = Array.copy partial in
    let mask = ref 1 in
    while !mask < p do
      let dst = r + !mask and src = r - !mask in
      let req =
        if dst < p then Some (P2p.isend ~ctx:Internal ~count comm dt partial ~dst ~tag) else None
      in
      if src >= 0 then begin
        ignore (P2p.recv ~ctx:Internal ~count comm dt tmp ~src ~tag);
        (* tmp covers ranks below src inclusive: combine on the left. *)
        for i = 0 to count - 1 do
          partial.(i) <- Op.apply op tmp.(i) partial.(i);
          recvbuf.(i) <- Op.apply op tmp.(i) recvbuf.(i)
        done;
        Comm.compute comm (2.0 *. float_of_int count *. Op.cost_per_element op)
      end;
      (match req with Some req -> ignore (Request.wait req) | None -> ());
      mask := !mask lsl 1
    done
  end

let exscan comm dt op ~sendbuf ~recvbuf ~count =
  Comm.check_active comm;
  record comm "MPI_Exscan";
  check_count "exscan" count;
  let p = Comm.size comm and r = Comm.rank comm in
  let tag = Comm.next_collective_tag comm in
  if p > 1 && count > 0 then begin
    let partial = Array.sub sendbuf 0 count in
    let tmp = Array.copy partial in
    let have_result = ref false in
    let mask = ref 1 in
    while !mask < p do
      let dst = r + !mask and src = r - !mask in
      let req =
        if dst < p then Some (P2p.isend ~ctx:Internal ~count comm dt partial ~dst ~tag) else None
      in
      if src >= 0 then begin
        ignore (P2p.recv ~ctx:Internal ~count comm dt tmp ~src ~tag);
        for i = 0 to count - 1 do
          partial.(i) <- Op.apply op tmp.(i) partial.(i);
          recvbuf.(i) <- (if !have_result then Op.apply op tmp.(i) recvbuf.(i) else tmp.(i))
        done;
        have_result := true;
        Comm.compute comm (2.0 *. float_of_int count *. Op.cost_per_element op)
      end;
      (match req with Some req -> ignore (Request.wait req) | None -> ());
      mask := !mask lsl 1
    done
  end

(* Non-blocking collectives: a helper fiber (standing in for an MPI
   progress thread) runs the blocking algorithm and completes the request.
   Internal tags are allocated at call time so they line up across ranks
   regardless of how the helper fibers interleave. *)
let spawn_collective comm ~label body =
  let w = Comm.world comm in
  let req = Request.create w.World.engine in
  let _ : Engine.fiber =
    Engine.spawn w.World.engine ~label (fun () ->
        body ();
        Request.complete req { source = -1; tag = 0; count = 0 })
  in
  req

let ibarrier comm =
  Comm.check_active comm;
  record comm "MPI_Ibarrier";
  let tag = Comm.next_collective_tag comm in
  spawn_collective comm ~label:"ibarrier" (fun () -> dissemination comm tag)

let ibcast ?(pos = 0) ?count comm dt buf ~root =
  Comm.check_active comm;
  record comm "MPI_Ibcast";
  check_root comm root;
  let count = match count with Some c -> c | None -> Array.length buf - pos in
  check_count "ibcast" count;
  let tag = Comm.next_collective_tag comm in
  spawn_collective comm ~label:"ibcast" (fun () -> bcast_ comm dt buf pos count ~root ~tag)

let iallreduce comm dt op ~sendbuf ~recvbuf ~count =
  Comm.check_active comm;
  record comm "MPI_Iallreduce";
  check_count "iallreduce" count;
  let reduce_tag = Comm.next_collective_tag comm in
  let bcast_tag = Comm.next_collective_tag comm in
  spawn_collective comm ~label:"iallreduce" (fun () ->
      let acc = reduce_ comm dt op ~sendbuf ~pos:0 ~count ~root:0 ~tag:reduce_tag in
      if Comm.rank comm = 0 then Array.blit acc 0 recvbuf 0 count;
      bcast_ comm dt recvbuf 0 count ~root:0 ~tag:bcast_tag)

let ialltoallv comm dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls =
  Comm.check_active comm;
  record comm "MPI_Ialltoallv";
  check_v_arrays "ialltoallv" comm scounts sdispls rcounts rdispls;
  let tag = Comm.next_collective_tag comm in
  spawn_collective comm ~label:"ialltoallv" (fun () ->
      post_all_exchange comm dt ~tag
        ~scount_of:(fun d -> scounts.(d))
        ~spos_of:(fun d -> sdispls.(d))
        ~rcount_of:(fun s -> rcounts.(s))
        ~rpos_of:(fun s -> rdispls.(s))
        ~sendbuf ~recvbuf)

(* ------------------------------------------------------------------ *)
(* Communicator management.                                            *)
(* ------------------------------------------------------------------ *)

(* Communicator handles travel between ranks as ordinary (tiny) messages;
   a dedicated opaque datatype keeps that honest in the cost model. *)
let dt_comm : World.comm_shared Datatype.t = Datatype.custom ~name:"MPI_Comm" ~extent:16 ()

(* The leader creates the new shared state and distributes it to the other
   members over the parent communicator. *)
let distribute_shared comm ~members ~tag make_shared =
  let r = Comm.rank comm in
  let leader = members.(0) in
  if r = leader then begin
    let shared = make_shared () in
    let box = [| shared |] in
    Array.iter
      (fun m -> if m <> leader then P2p.send ~ctx:Internal comm dt_comm box ~dst:m ~tag)
      members;
    shared
  end
  else begin
    let box = [| Comm.shared comm |] in
    ignore (P2p.recv ~ctx:Internal comm dt_comm box ~src:leader ~tag);
    box.(0)
  end

let position a x =
  let n = Array.length a in
  let rec go i = if i >= n then Errors.usage "internal: rank not in group" else if a.(i) = x then i else go (i + 1) in
  go 0

let dup comm =
  Comm.check_active comm;
  record comm "MPI_Comm_dup";
  let w = Comm.world comm in
  let tag = Comm.next_collective_tag comm in
  let members = Array.init (Comm.size comm) Fun.id in
  let shared =
    distribute_shared comm ~members ~tag (fun () -> World.fresh_comm w (Array.copy (Comm.group comm)))
  in
  Comm.make w shared ~rank:(Comm.rank comm)

let split comm ~color ~key =
  Comm.check_active comm;
  record comm "MPI_Comm_split";
  let w = Comm.world comm in
  let p = Comm.size comm and r = Comm.rank comm in
  let dt = Datatype.triple Datatype.int Datatype.int Datatype.int in
  let entries = Array.make p (0, 0, 0) in
  let tag = Comm.next_collective_tag comm in
  allgather_ comm dt ~recvbuf:entries ~rpos:0 ~count:1 ~tag ~my_block_pos:0
    ~my_block_buf:[| (color, key, r) |];
  let dist_tag = Comm.next_collective_tag comm in
  if color < 0 then None
  else begin
    let members =
      entries |> Array.to_list
      |> List.filter (fun (c, _, _) -> c = color)
      |> List.sort (fun (_, k1, r1) (_, k2, r2) -> compare (k1, r1) (k2, r2))
      |> List.map (fun (_, _, rank) -> rank)
      |> Array.of_list
    in
    let shared =
      distribute_shared comm ~members ~tag:dist_tag (fun () ->
          World.fresh_comm w (Array.map (Comm.world_rank_of comm) members))
    in
    Some (Comm.make w shared ~rank:(position members r))
  end
