(** Graph topologies and neighborhood collectives (MPI-3).

    [dist_graph_create_adjacent] is collective and pays a setup cost that
    grows with the communicator size and the local degree — which is why
    rebuilding the topology before every exchange does not scale for dynamic
    communication patterns (the paper's argument for the NBX-based sparse
    all-to-all plugin, Sec. V-A). *)

type t

(** [dist_graph_create_adjacent comm ~sources ~destinations] declares the
    static communication graph: this rank will receive from [sources] and
    send to [destinations] (comm ranks, both sides must be consistent).
    Collective over [comm]. *)
val dist_graph_create_adjacent : Comm.t -> sources:int array -> destinations:int array -> t

(** [comm topo] is the communicator the topology was built on. *)
val comm : t -> Comm.t

(** [indegree topo] and [outdegree topo] are the local degrees. *)
val indegree : t -> int

val outdegree : t -> int

(** [neighbor_alltoall topo dt ~sendbuf ~recvbuf ~count] exchanges a fixed
    [count] of elements with every neighbor: block [i] of [sendbuf] goes to
    [destinations.(i)]; block [j] of [recvbuf] comes from [sources.(j)]. *)
val neighbor_alltoall :
  t -> 'a Datatype.t -> sendbuf:'a array -> recvbuf:'a array -> count:int -> unit

(** [neighbor_alltoallv topo dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts
    ~rdispls] is the variable-size neighborhood exchange. *)
val neighbor_alltoallv :
  t ->
  'a Datatype.t ->
  sendbuf:'a array ->
  scounts:int array ->
  sdispls:int array ->
  recvbuf:'a array ->
  rcounts:int array ->
  rdispls:int array ->
  unit
