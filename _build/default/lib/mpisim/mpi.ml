module Engine = Simnet.Engine
module Netmodel = Simnet.Netmodel

exception Rank_died

type 'a run_result = {
  results : ('a, exn) result array;
  sim_time : float;
  profile : Profiling.snapshot;
  events : int;
}

let run ?(net = Netmodel.default) ?node ?(failures = []) ~ranks f =
  let w = World.create ?node ~net_params:net ~size:ranks () in
  let shared = World.fresh_comm w (Array.init ranks Fun.id) in
  let results = Array.make ranks (Error Rank_died) in
  let fibers =
    Array.init ranks (fun r ->
        Engine.spawn w.World.engine ~label:(Printf.sprintf "rank%d" r) (fun () ->
            let comm = Comm.make w shared ~rank:r in
            match f comm with
            | v -> results.(r) <- Ok v
            | exception e -> results.(r) <- Error e))
  in
  w.World.fibers <- fibers;
  List.iter (fun (at, rank) -> Ulfm.schedule_failure w ~at ~world_rank:rank) failures;
  Engine.run w.World.engine;
  {
    results;
    sim_time = Engine.now w.World.engine;
    profile = Profiling.snapshot w.World.prof;
    events = Engine.events_processed w.World.engine;
  }

let results_exn r =
  Array.map (function Ok v -> v | Error e -> raise e) r.results

let run_exn ?net ~ranks f = results_exn (run ?net ~ranks f)
