type t = { comm : Comm.t; dims : int array; periodic : bool array }

let dims_create ~nodes ~ndims =
  if nodes <= 0 || ndims <= 0 then Errors.usage "dims_create: positive arguments required";
  let dims = Array.make ndims 1 in
  (* greedily assign prime factors, largest first, to the smallest dim *)
  let rec factors n d acc =
    if n = 1 then acc
    else if n mod d = 0 then factors (n / d) d (d :: acc)
    else factors n (d + 1) acc
  in
  let fs = List.sort (fun a b -> compare b a) (factors nodes 2 []) in
  List.iter
    (fun f ->
      let smallest = ref 0 in
      Array.iteri (fun i d -> if d < dims.(!smallest) then smallest := i) dims;
      dims.(!smallest) <- dims.(!smallest) * f)
    fs;
  Array.sort (fun a b -> compare b a) dims;
  dims

let create comm ~dims ~periodic =
  let product = Array.fold_left ( * ) 1 dims in
  if product <> Comm.size comm then
    Errors.usage "Cart.create: grid of %d cells does not match communicator size %d" product
      (Comm.size comm);
  if Array.length periodic <> Array.length dims then
    Errors.usage "Cart.create: periodic must have one entry per dimension";
  Profiling.record_call (Comm.world comm).World.prof "MPI_Cart_create";
  Collectives.barrier comm;
  { comm; dims = Array.copy dims; periodic = Array.copy periodic }

let comm t = t.comm
let dims t = Array.copy t.dims

(* row-major: the last dimension varies fastest, as in MPI *)
let coords t rank =
  if rank < 0 || rank >= Comm.size t.comm then Errors.usage "Cart.coords: bad rank %d" rank;
  let nd = Array.length t.dims in
  let out = Array.make nd 0 in
  let rest = ref rank in
  for d = nd - 1 downto 0 do
    out.(d) <- !rest mod t.dims.(d);
    rest := !rest / t.dims.(d)
  done;
  out

let rank_of t coords =
  if Array.length coords <> Array.length t.dims then
    Errors.usage "Cart.rank_of: coordinate arity mismatch";
  let rank = ref 0 in
  Array.iteri
    (fun d c ->
      let c =
        if t.periodic.(d) then ((c mod t.dims.(d)) + t.dims.(d)) mod t.dims.(d)
        else if c < 0 || c >= t.dims.(d) then
          Errors.usage "Cart.rank_of: coordinate %d out of range in dimension %d" c d
        else c
      in
      rank := (!rank * t.dims.(d)) + c)
    coords;
  !rank

let neighbor t ~dim ~disp =
  let my = coords t (Comm.rank t.comm) in
  let c = my.(dim) + disp in
  if t.periodic.(dim) then begin
    let shifted = Array.copy my in
    shifted.(dim) <- c;
    Some (rank_of t shifted)
  end
  else if c < 0 || c >= t.dims.(dim) then None
  else begin
    let shifted = Array.copy my in
    shifted.(dim) <- c;
    Some (rank_of t shifted)
  end

let shift t ~dim ~disp =
  if dim < 0 || dim >= Array.length t.dims then Errors.usage "Cart.shift: bad dimension %d" dim;
  (neighbor t ~dim ~disp:(-disp), neighbor t ~dim ~disp)

let halo_exchange t dt ~dim ~send_low ~send_high ~recv_low ~recv_high =
  Profiling.record_call (Comm.world t.comm).World.prof "MPI_Halo_exchange";
  let low = neighbor t ~dim ~disp:(-1) and high = neighbor t ~dim ~disp:1 in
  let tag_up = Comm.next_collective_tag t.comm in
  let tag_down = Comm.next_collective_tag t.comm in
  let reqs = ref [] in
  (* post receives first, then sends: deadlock-free in any grid *)
  (match low with
  | Some src -> reqs := P2p.irecv ~ctx:Internal t.comm dt recv_low ~src ~tag:tag_up :: !reqs
  | None -> ());
  (match high with
  | Some src -> reqs := P2p.irecv ~ctx:Internal t.comm dt recv_high ~src ~tag:tag_down :: !reqs
  | None -> ());
  (match high with
  | Some dst -> P2p.send ~ctx:Internal t.comm dt send_high ~dst ~tag:tag_up
  | None -> ());
  (match low with
  | Some dst -> P2p.send ~ctx:Internal t.comm dt send_low ~dst ~tag:tag_down
  | None -> ());
  ignore (Request.wait_all !reqs);
  List.length !reqs
