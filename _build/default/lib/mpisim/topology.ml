type t = { comm : Comm.t; sources : int array; destinations : int array }

(* Building the distributed graph requires agreeing on the edge set; real
   implementations exchange and validate adjacency information.  We model
   that with a barrier (synchronization) plus a per-edge setup cost. *)
let dist_graph_create_adjacent comm ~sources ~destinations =
  Comm.check_active comm;
  Profiling.record_call (Comm.world comm).World.prof "MPI_Dist_graph_create_adjacent";
  let check_rank what r =
    if r < 0 || r >= Comm.size comm then Errors.usage "dist_graph_create_adjacent: bad %s rank %d" what r
  in
  Array.iter (check_rank "source") sources;
  Array.iter (check_rank "destination") destinations;
  let per_edge_setup = 0.2e-6 in
  Comm.compute comm
    (float_of_int (Array.length sources + Array.length destinations) *. per_edge_setup);
  let tag = Comm.next_collective_tag comm in
  (* Dissemination barrier synchronizes the collective. *)
  let p = Comm.size comm and r = Comm.rank comm in
  let token = [| 0 |] in
  let k = ref 1 in
  while !k < p do
    let dst = (r + !k) mod p and src = (r - !k + p) mod p in
    let req = P2p.isend ~ctx:Internal comm Datatype.int token ~dst ~tag in
    ignore (P2p.recv ~ctx:Internal comm Datatype.int token ~src ~tag);
    ignore (Request.wait req);
    k := !k lsl 1
  done;
  { comm; sources = Array.copy sources; destinations = Array.copy destinations }

let comm topo = topo.comm
let indegree topo = Array.length topo.sources
let outdegree topo = Array.length topo.destinations

let neighbor_exchange topo dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls ~name =
  let comm = topo.comm in
  Comm.check_active comm;
  Profiling.record_call (Comm.world comm).World.prof name;
  let tag = Comm.next_collective_tag comm in
  let recv_reqs =
    List.init (Array.length topo.sources) (fun j ->
        P2p.irecv ~ctx:Internal ~pos:rdispls.(j) ~count:rcounts.(j) comm dt recvbuf
          ~src:topo.sources.(j) ~tag)
  in
  Array.iteri
    (fun i dst -> P2p.send ~ctx:Internal ~pos:sdispls.(i) ~count:scounts.(i) comm dt sendbuf ~dst ~tag)
    topo.destinations;
  ignore (Request.wait_all recv_reqs)

let neighbor_alltoall topo dt ~sendbuf ~recvbuf ~count =
  let sdispls = Array.init (Array.length topo.destinations) (fun i -> i * count) in
  let rdispls = Array.init (Array.length topo.sources) (fun j -> j * count) in
  let scounts = Array.make (Array.length topo.destinations) count in
  let rcounts = Array.make (Array.length topo.sources) count in
  neighbor_exchange topo dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls
    ~name:"MPI_Neighbor_alltoall"

let neighbor_alltoallv topo dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls =
  if
    Array.length scounts <> Array.length topo.destinations
    || Array.length rcounts <> Array.length topo.sources
  then Errors.usage "neighbor_alltoallv: counts arrays must match the local degrees";
  neighbor_exchange topo dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls
    ~name:"MPI_Neighbor_alltoallv"
