type t = { world_ranks : int array }

let of_comm comm = { world_ranks = Array.copy (Comm.group comm) }
let size g = Array.length g.world_ranks

let check_positions g ranks =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun r ->
      if r < 0 || r >= size g then Errors.usage "Group: position %d out of range" r;
      if Hashtbl.mem seen r then Errors.usage "Group: duplicate position %d" r;
      Hashtbl.add seen r ())
    ranks

let incl g ranks =
  check_positions g ranks;
  { world_ranks = Array.map (fun r -> g.world_ranks.(r)) ranks }

let excl g ranks =
  check_positions g ranks;
  let drop = Hashtbl.create 8 in
  Array.iter (fun r -> Hashtbl.add drop r ()) ranks;
  let keep = ref [] in
  Array.iteri (fun i wr -> if not (Hashtbl.mem drop i) then keep := wr :: !keep) g.world_ranks;
  { world_ranks = Array.of_list (List.rev !keep) }

let mem g wr = Array.exists (fun x -> x = wr) g.world_ranks

let union a b =
  let extra = Array.to_list b.world_ranks |> List.filter (fun wr -> not (mem a wr)) in
  { world_ranks = Array.append a.world_ranks (Array.of_list extra) }

let intersection a b =
  { world_ranks = Array.of_seq (Seq.filter (mem b) (Array.to_seq a.world_ranks)) }

let difference a b =
  { world_ranks = Array.of_seq (Seq.filter (fun wr -> not (mem b wr)) (Array.to_seq a.world_ranks)) }

let position g wr =
  let n = size g in
  let rec go i = if i >= n then None else if g.world_ranks.(i) = wr then Some i else go (i + 1) in
  go 0

let translate_ranks ga ranks gb =
  Array.map
    (fun r ->
      if r < 0 || r >= size ga then Errors.usage "translate_ranks: position %d out of range" r;
      position gb ga.world_ranks.(r))
    ranks

let rank_in g comm = position g (Comm.world_rank_of comm (Comm.rank comm))

(* Group-collective communicator creation: the group leader materializes
   the shared state and hands it to the other members over the parent
   communicator (non-members are not involved, unlike MPI_Comm_create). *)
let dt_comm : World.comm_shared Datatype.t = Datatype.custom ~name:"MPI_Comm_group" ~extent:16 ()

let comm_create_group comm g ~tag =
  Comm.check_active comm;
  Profiling.record_call (Comm.world comm).World.prof "MPI_Comm_create_group";
  if tag < 0 then Errors.usage "comm_create_group: tag must be non-negative";
  let my_world = Comm.world_rank_of comm (Comm.rank comm) in
  let my_pos =
    match position g my_world with
    | Some i -> i
    | None -> Errors.usage "comm_create_group: the caller is not a group member"
  in
  let w = Comm.world comm in
  (* translate group members to parent comm ranks for the distribution *)
  let parent_rank_of wr =
    let grp = Comm.group comm in
    let n = Array.length grp in
    let rec go i =
      if i >= n then Errors.usage "comm_create_group: group member not in the communicator"
      else if grp.(i) = wr then i
      else go (i + 1)
    in
    go 0
  in
  let shared =
    if my_pos = 0 then begin
      let shared = World.fresh_comm w (Array.copy g.world_ranks) in
      let box = [| shared |] in
      Array.iteri
        (fun i wr ->
          if i > 0 then P2p.send ~ctx:Internal comm dt_comm box ~dst:(parent_rank_of wr) ~tag)
        g.world_ranks;
      shared
    end
    else begin
      let box = [| Comm.shared comm |] in
      ignore (P2p.recv ~ctx:Internal comm dt_comm box ~src:(parent_rank_of g.world_ranks.(0)) ~tag);
      box.(0)
    end
  in
  Comm.make w shared ~rank:my_pos
