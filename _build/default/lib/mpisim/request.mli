(** Non-blocking operation handles.

    A request completes with a {!status} (like [MPI_Status]) or fails with
    an exception (ULFM failures surface here).  [wait] parks the calling
    fiber until completion; [test] polls without blocking. *)

(** Completion information of a receive (senders get a synthetic status). *)
type status = {
  source : int;  (** rank of the peer, in the communicator the call used *)
  tag : int;
  count : int;  (** number of elements actually transferred *)
}

type t

(** [create engine] is a fresh pending request. *)
val create : Simnet.Engine.t -> t

(** [completed_now engine status] is an already-complete request (used for
    self-messages and empty transfers). *)
val completed_now : Simnet.Engine.t -> status -> t

(** [complete r status] transitions a pending request to complete and wakes
    the waiter, if any.  Idempotence is a usage error. *)
val complete : t -> status -> unit

(** [abort r exn] fails a pending request; [wait]/[test] will re-raise. *)
val abort : t -> exn -> unit

(** [is_complete r] is true once completed (successfully or not). *)
val is_complete : t -> bool

(** [wait r] blocks the calling fiber until completion.
    @raise the request's failure exception if it was aborted. *)
val wait : t -> status

(** [test r] is [Some status] if complete, [None] otherwise.
    @raise the failure exception if the request was aborted. *)
val test : t -> status option

(** [wait_all rs] waits for every request, returning statuses in order. *)
val wait_all : t list -> status list

(** [wait_any rs] blocks until at least one request in the (non-empty) list
    is complete and returns its index and status. *)
val wait_any : t list -> int * status

(** [test_all rs] is [Some statuses] if all complete, else [None]. *)
val test_all : t list -> status list option
