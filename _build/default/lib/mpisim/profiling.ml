type t = { table : (string, int ref) Hashtbl.t; mutable msg_count : int; mutable byte_count : int }
type snapshot = { calls : (string * int) list; messages : int; bytes : int }

let create () = { table = Hashtbl.create 32; msg_count = 0; byte_count = 0 }

let record_call t name =
  match Hashtbl.find_opt t.table name with
  | Some r -> incr r
  | None -> Hashtbl.add t.table name (ref 1)

let record_message t ~bytes =
  t.msg_count <- t.msg_count + 1;
  t.byte_count <- t.byte_count + bytes

let snapshot t =
  let calls =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { calls; messages = t.msg_count; bytes = t.byte_count }

let reset t =
  Hashtbl.reset t.table;
  t.msg_count <- 0;
  t.byte_count <- 0

let calls_of name s = match List.assoc_opt name s.calls with Some n -> n | None -> 0

let diff ~before ~after =
  let names =
    List.sort_uniq String.compare (List.map fst before.calls @ List.map fst after.calls)
  in
  let calls =
    List.filter_map
      (fun name ->
        let d = calls_of name after - calls_of name before in
        if d = 0 then None else Some (name, d))
      names
  in
  { calls; messages = after.messages - before.messages; bytes = after.bytes - before.bytes }

let pp fmt s =
  Format.fprintf fmt "@[<v>messages=%d bytes=%d" s.messages s.bytes;
  List.iter (fun (name, n) -> Format.fprintf fmt "@,%s: %d" name n) s.calls;
  Format.fprintf fmt "@]"
