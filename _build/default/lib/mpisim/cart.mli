(** Cartesian process topologies (the MPI_Cart family).

    Scientific codes with regular stencils (the domain MPL's layout system
    targets, paper Sec. II) organize ranks in a d-dimensional grid and
    exchange boundary layers with their neighbors.  This module provides
    the MPI primitives: grid creation with optional periodicity, coordinate
    queries, and neighbor shifts. *)

type t

(** [create comm ~dims ~periodic] builds the topology; the product of
    [dims] must equal the communicator size, and [periodic] says per
    dimension whether the grid wraps (collective).
    @raise Errors.Usage_error on a dimension mismatch. *)
val create : Comm.t -> dims:int array -> periodic:bool array -> t

(** [dims_create ~nodes ~ndims] factors [nodes] into a balanced
    [ndims]-dimensional grid (MPI_Dims_create). *)
val dims_create : nodes:int -> ndims:int -> int array

(** [comm t] is the underlying communicator. *)
val comm : t -> Comm.t

(** [dims t] is the grid shape. *)
val dims : t -> int array

(** [coords t rank] are the grid coordinates of [rank]
    (MPI_Cart_coords). *)
val coords : t -> int -> int array

(** [rank_of t coords] is the inverse mapping (MPI_Cart_rank); periodic
    dimensions wrap, non-periodic out-of-range coordinates are a usage
    error. *)
val rank_of : t -> int array -> int

(** [shift t ~dim ~disp] is [(source, dest)] for a shift communication
    along [dim] by [disp] (MPI_Cart_shift): [None] where a non-periodic
    boundary cuts the shift off. *)
val shift : t -> dim:int -> disp:int -> int option * int option

(** [halo_exchange t dt ~dim ~send_low ~send_high ~recv_low ~recv_high]
    swaps boundary layers with both neighbors along [dim] in one deadlock-
    free step ([recv_low] receives from the low neighbor what it sent
    "high", and vice versa).  Buffers for absent neighbors are left
    untouched.  Returns the number of neighbors exchanged with. *)
val halo_exchange :
  t ->
  'a Datatype.t ->
  dim:int ->
  send_low:'a array ->
  send_high:'a array ->
  recv_low:'a array ->
  recv_high:'a array ->
  int
