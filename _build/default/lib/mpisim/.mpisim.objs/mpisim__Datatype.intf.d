lib/mpisim/datatype.mli: Format Type
