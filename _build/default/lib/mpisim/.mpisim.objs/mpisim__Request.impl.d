lib/mpisim/request.ml: Errors List Option Simnet
