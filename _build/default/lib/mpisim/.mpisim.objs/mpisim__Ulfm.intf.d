lib/mpisim/ulfm.mli: Comm World
