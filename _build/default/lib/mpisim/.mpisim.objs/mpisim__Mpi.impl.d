lib/mpisim/mpi.ml: Array Comm Fun List Printf Profiling Simnet Ulfm World
