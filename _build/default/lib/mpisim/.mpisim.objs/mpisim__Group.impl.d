lib/mpisim/group.ml: Array Comm Datatype Errors Hashtbl List P2p Profiling Seq World
