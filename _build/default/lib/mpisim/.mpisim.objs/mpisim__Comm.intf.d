lib/mpisim/comm.mli: World
