lib/mpisim/collectives.ml: Array Comm Datatype Errors Fun List Op P2p Profiling Request Simnet World
