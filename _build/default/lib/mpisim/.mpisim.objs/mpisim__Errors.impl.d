lib/mpisim/errors.ml: Format
