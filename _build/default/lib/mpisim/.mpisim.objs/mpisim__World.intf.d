lib/mpisim/world.mli: Ds Hashtbl Msg Profiling Simnet
