lib/mpisim/world.ml: Array Ds Errors Hashtbl Msg Profiling Simnet
