lib/mpisim/errors.mli: Format
