lib/mpisim/topology.mli: Comm Datatype
