lib/mpisim/op.mli:
