lib/mpisim/cart.ml: Array Collectives Comm Errors List P2p Profiling Request World
