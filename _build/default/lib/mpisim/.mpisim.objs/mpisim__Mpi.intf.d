lib/mpisim/mpi.mli: Comm Profiling Simnet
