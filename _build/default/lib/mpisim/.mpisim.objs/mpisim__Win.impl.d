lib/mpisim/win.ml: Array Collectives Comm Datatype Ds Errors Op P2p Profiling Type World
