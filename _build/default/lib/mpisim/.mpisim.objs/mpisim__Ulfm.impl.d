lib/mpisim/ulfm.ml: Array Collectives Comm Errors Float Hashtbl List Profiling Simnet World
