lib/mpisim/topology.ml: Array Comm Datatype Errors List P2p Profiling Request World
