lib/mpisim/win.mli: Comm Datatype Op
