lib/mpisim/datatype.ml: Array Errors Float Format Hashtbl List Option Printf Type
