lib/mpisim/collectives.mli: Comm Datatype Op Request
