lib/mpisim/msg.ml: Datatype Ds List
