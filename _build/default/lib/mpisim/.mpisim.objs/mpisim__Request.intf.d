lib/mpisim/request.mli: Simnet
