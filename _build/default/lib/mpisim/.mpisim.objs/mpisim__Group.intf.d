lib/mpisim/group.mli: Comm
