lib/mpisim/p2p.ml: Array Comm Datatype Errors Msg Option Profiling Request Simnet Type World
