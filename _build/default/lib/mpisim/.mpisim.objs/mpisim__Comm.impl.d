lib/mpisim/comm.ml: Array Errors Simnet World
