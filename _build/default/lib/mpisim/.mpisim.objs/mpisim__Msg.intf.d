lib/mpisim/msg.mli: Datatype
