lib/mpisim/op.ml: Float
