lib/mpisim/p2p.mli: Comm Datatype Msg Request
