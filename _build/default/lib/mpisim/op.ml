type 'a t = {
  f : 'a -> 'a -> 'a;
  name : string;
  commutative : bool;
  builtin : bool;
  cost_per_element : float;
}

let apply op a b = op.f a b
let name op = op.name
let commutative op = op.commutative
let is_builtin op = op.builtin
let cost_per_element op = op.cost_per_element

let builtin_cost = 1.0e-9
let user_cost = 4.0e-9 (* user lambdas defeat vectorization *)

let of_fun ?(name = "user") ?(commutative = true) f =
  { f; name; commutative; builtin = false; cost_per_element = user_cost }

let builtin name f = { f; name; commutative = true; builtin = true; cost_per_element = builtin_cost }

let int_sum = builtin "MPI_SUM" ( + )
let int_prod = builtin "MPI_PROD" ( * )
let int_max = builtin "MPI_MAX" max
let int_min = builtin "MPI_MIN" min
let int_land = builtin "MPI_BAND" ( land )
let int_lor = builtin "MPI_BOR" ( lor )
let int_lxor = builtin "MPI_BXOR" ( lxor )
let float_sum = builtin "MPI_SUM" ( +. )
let float_prod = builtin "MPI_PROD" ( *. )
let float_max = builtin "MPI_MAX" Float.max
let float_min = builtin "MPI_MIN" Float.min
let bool_and = builtin "MPI_LAND" ( && )
let bool_or = builtin "MPI_LOR" ( || )
