(** Process groups (the MPI_Group family).

    A group is an ordered set of processes, identified here by their world
    ranks.  Groups are local objects (no communication); they become
    communicators through {!comm_create_group}. *)

type t

(** [of_comm comm] is the group of [comm]'s members, in rank order. *)
val of_comm : Comm.t -> t

(** [size g] is the number of members. *)
val size : t -> int

(** [incl g ranks] keeps the listed positions, in the given order
    (MPI_Group_incl).  @raise Errors.Usage_error on bad or duplicate
    positions. *)
val incl : t -> int array -> t

(** [excl g ranks] removes the listed positions (MPI_Group_excl). *)
val excl : t -> int array -> t

(** [union a b] is [a] followed by the members of [b] not already in [a]. *)
val union : t -> t -> t

(** [intersection a b] keeps [a]'s members also present in [b], in [a]'s
    order. *)
val intersection : t -> t -> t

(** [difference a b] keeps [a]'s members not present in [b]. *)
val difference : t -> t -> t

(** [translate_ranks ga ranks gb] maps positions in [ga] to positions in
    [gb] ([None] where the process is not a member — MPI_UNDEFINED). *)
val translate_ranks : t -> int array -> t -> int option array

(** [rank_in g comm_member] is this process's position in [g] given any
    communicator it belongs to, or [None]. *)
val rank_in : t -> Comm.t -> int option

(** [comm_create_group comm g ~tag] builds a communicator containing
    exactly [g]'s members (collective {e over the group members only},
    like MPI_Comm_create_group).  Non-members must not call.  Returns the
    caller's handle. *)
val comm_create_group : Comm.t -> t -> tag:int -> Comm.t
