(** Reduction operations.

    Like KaMPIng (and Boost.MPI), the library recognizes both {e built-in}
    operations — which a real MPI implementation can optimize — and
    arbitrary user lambdas.  Built-ins carry a name so the profiling layer
    can observe that the built-in path was taken. *)

type 'a t

(** [apply op a b] combines two values. *)
val apply : 'a t -> 'a -> 'a -> 'a

(** [name op] is ["user"] for lambdas and the MPI constant name
    (e.g. ["MPI_SUM"]) for built-ins. *)
val name : 'a t -> string

(** [commutative op] tells the collective algorithms whether they may
    reassociate and commute freely. *)
val commutative : 'a t -> bool

(** [is_builtin op] is true for the predefined operations. *)
val is_builtin : 'a t -> bool

(** [cost_per_element op] is the simulated CPU seconds charged per combined
    element. *)
val cost_per_element : 'a t -> float

(** [of_fun ?name ?commutative f] wraps a user lambda (commutative by
    default, as in MPI_Op_create's default expectation when stated). *)
val of_fun : ?name:string -> ?commutative:bool -> ('a -> 'a -> 'a) -> 'a t

(** {1 Built-in operations} *)

val int_sum : int t
val int_prod : int t
val int_max : int t
val int_min : int t

(** Bitwise and / or / xor over ints. *)
val int_land : int t

val int_lor : int t
val int_lxor : int t
val float_sum : float t
val float_prod : float t
val float_max : float t
val float_min : float t
val bool_and : bool t
val bool_or : bool t
