type 'a t = {
  req : Mpisim.Request.t;
  extract : Mpisim.Request.status -> 'a;
  mutable value : 'a option;  (* cache so extraction runs once *)
}

let make req extract = { req; extract; value = None }

let of_value engine v =
  {
    req = Mpisim.Request.completed_now engine { source = -1; tag = -1; count = 0 };
    extract = (fun _ -> v);
    value = None;
  }

let force r status =
  match r.value with
  | Some v -> v
  | None ->
      let v = r.extract status in
      r.value <- Some v;
      v

let wait r = force r (Mpisim.Request.wait r.req)
let test r = Option.map (force r) (Mpisim.Request.test r.req)
let is_complete r = Mpisim.Request.is_complete r.req
let request r = r.req
let map f r = { req = r.req; extract = (fun status -> f (force r status)); value = None }
