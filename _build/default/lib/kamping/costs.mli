(** Calibrated local-computation costs.

    The simulator charges CPU time explicitly ({!Comm.compute}); these
    helpers centralize the constants so applications and plugins charge
    consistent, realistic costs for their sequential work (a ~3 GHz core
    touching cached data). *)

(** [sort n] — comparison sort of [n] elements, [O(n log n)]. *)
val sort : int -> float

(** [linear n] — one pass over [n] elements (bucketing, partitioning,
    counting). *)
val linear : int -> float

(** [hash_ops n] — [n] hash-table operations. *)
val hash_ops : int -> float

(** [memcpy bytes] — a straight copy. *)
val memcpy : int -> float

(** [per_edge m] — scanning [m] graph edges. *)
val per_edge : int -> float
