type t = Resize_to_fit | Grow_only | No_resize

exception Buffer_too_small of { needed : int; capacity : int }

let prepare policy vec ~needed ~filler =
  (match policy with
  | Resize_to_fit -> Ds.Vec.resize vec needed filler
  | Grow_only -> Ds.Vec.ensure_length vec needed filler
  | No_resize ->
      if Ds.Vec.length vec < needed then
        raise (Buffer_too_small { needed; capacity = Ds.Vec.length vec }));
  Ds.Vec.unsafe_data vec

let pp fmt = function
  | Resize_to_fit -> Format.pp_print_string fmt "resize_to_fit"
  | Grow_only -> Format.pp_print_string fmt "grow_only"
  | No_resize -> Format.pp_print_string fmt "no_resize"
