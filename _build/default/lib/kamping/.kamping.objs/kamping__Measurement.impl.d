lib/kamping/measurement.ml: Comm Format Fun Hashtbl List Mpisim String
