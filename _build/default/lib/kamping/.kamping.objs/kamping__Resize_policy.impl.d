lib/kamping/resize_policy.ml: Ds Format
