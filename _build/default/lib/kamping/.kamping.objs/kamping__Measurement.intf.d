lib/kamping/measurement.mli: Comm Format
