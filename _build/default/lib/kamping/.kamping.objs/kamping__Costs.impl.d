lib/kamping/costs.ml:
