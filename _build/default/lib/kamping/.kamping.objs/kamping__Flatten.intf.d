lib/kamping/flatten.mli: Ds Hashtbl
