lib/kamping/costs.mli:
