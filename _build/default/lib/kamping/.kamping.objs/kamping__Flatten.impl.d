lib/kamping/flatten.ml: Array Ds Hashtbl List Mpisim
