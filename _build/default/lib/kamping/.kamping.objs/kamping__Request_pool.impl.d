lib/kamping/request_pool.ml: Ds Mpisim
