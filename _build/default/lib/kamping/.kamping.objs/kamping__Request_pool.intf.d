lib/kamping/request_pool.mli: Mpisim
