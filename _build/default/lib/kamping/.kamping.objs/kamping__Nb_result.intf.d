lib/kamping/nb_result.mli: Mpisim Simnet
