lib/kamping/assertions.mli: Mpisim
