lib/kamping/assertions.ml: Array Fun Mpisim
