lib/kamping/comm.ml: Array Assertions Ds Flatten List Mpisim Nb_result Option Printf Resize_policy Serialization
