lib/kamping/nb_result.ml: Mpisim Option
