lib/kamping/serialization.mli: Mpisim Serde
