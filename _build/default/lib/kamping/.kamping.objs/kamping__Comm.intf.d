lib/kamping/comm.mli: Ds Flatten Mpisim Nb_result Resize_policy Serde
