lib/kamping/resize_policy.mli: Ds Format
