lib/kamping/type_traits.ml: List Mpisim
