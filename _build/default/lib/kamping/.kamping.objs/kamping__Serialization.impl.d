lib/kamping/serialization.ml: Array Bytes Mpisim Serde
