lib/kamping/type_traits.mli: Mpisim
