type field =
  | Int of string
  | Int32 of string
  | Int64 of string
  | Float of string
  | Char of string
  | Bool of string
  | Array of string * int * field

let rec size_of = function
  | Int _ | Int64 _ | Float _ -> 8
  | Int32 _ -> 4
  | Char _ | Bool _ -> 1
  | Array (_, n, elt) -> n * size_of elt

let rec align_of = function
  | Int _ | Int64 _ | Float _ -> 8
  | Int32 _ -> 4
  | Char _ | Bool _ -> 1
  | Array (_, _, elt) -> align_of elt

let field_name = function
  | Int n | Int32 n | Int64 n | Float n | Char n | Bool n -> n
  | Array (n, _, _) -> n

let to_triples fields =
  List.map (fun f -> (field_name f, size_of f, align_of f)) fields

let payload_bytes fields = List.fold_left (fun acc f -> acc + size_of f) 0 fields

let padding fields =
  (* Recompute the C layout the same way Datatype.struct_type does. *)
  let offset = ref 0 and max_align = ref 1 in
  List.iter
    (fun f ->
      let align = align_of f in
      max_align := max !max_align align;
      let misalign = !offset mod align in
      if misalign <> 0 then offset := !offset + (align - misalign);
      offset := !offset + size_of f)
    fields;
  let tail = !offset mod !max_align in
  let extent = if tail = 0 then !offset else !offset + (!max_align - tail) in
  extent - payload_bytes fields

(* The contiguous-bytes mapping copies the whole in-memory object, padding
   included: slightly more bytes on the wire, but a single memcpy. *)
let trivially_copyable ?default ~name fields =
  Mpisim.Datatype.custom ?default ~name ~extent:(payload_bytes fields + padding fields) ()

let struct_type ?default ~name fields = Mpisim.Datatype.struct_type ?default ~name (to_triples fields)

let int = Mpisim.Datatype.int
let float = Mpisim.Datatype.float
let char = Mpisim.Datatype.char
let bool = Mpisim.Datatype.bool
let int32 = Mpisim.Datatype.int32
let int64 = Mpisim.Datatype.int64
let byte = Mpisim.Datatype.byte
let pair = Mpisim.Datatype.pair
let triple = Mpisim.Datatype.triple
