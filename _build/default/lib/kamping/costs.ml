let sort n =
  if n <= 1 then 0.0
  else begin
    let fn = float_of_int n in
    15.0e-9 *. fn *. (log fn /. log 2.0)
  end

let linear n = 2.0e-9 *. float_of_int n
let hash_ops n = 25.0e-9 *. float_of_int n
let memcpy bytes = 0.1e-9 *. float_of_int bytes
let per_edge m = 4.0e-9 *. float_of_int m
