type t = { slots : int option; pending : Mpisim.Request.t Ds.Vec.t }

let create () = { slots = None; pending = Ds.Vec.create () }

let create_bounded ~slots () =
  if slots <= 0 then Mpisim.Errors.usage "Request_pool.create_bounded: need at least one slot";
  { slots = Some slots; pending = Ds.Vec.create () }

(* Drop completed requests from the front to make room. *)
let reap pool =
  let keep = Ds.Vec.create () in
  Ds.Vec.iter
    (fun req -> if not (Mpisim.Request.is_complete req) then Ds.Vec.push keep req)
    pool.pending;
  Ds.Vec.clear pool.pending;
  Ds.Vec.append pool.pending keep

let add pool req =
  (match pool.slots with
  | Some slots when Ds.Vec.length pool.pending >= slots ->
      reap pool;
      (* Still full: block on the oldest request to free a slot. *)
      while Ds.Vec.length pool.pending >= slots do
        let oldest = Ds.Vec.get pool.pending 0 in
        ignore (Mpisim.Request.wait oldest);
        reap pool
      done
  | Some _ | None -> ());
  Ds.Vec.push pool.pending req

let in_flight pool = Ds.Vec.length pool.pending

let wait_all pool =
  let first_error = ref None in
  Ds.Vec.iter
    (fun req ->
      match Mpisim.Request.wait req with
      | (_ : Mpisim.Request.status) -> ()
      | exception e -> if !first_error = None then first_error := Some e)
    pool.pending;
  Ds.Vec.clear pool.pending;
  match !first_error with Some e -> raise e | None -> ()

let test_all pool =
  if Ds.Vec.for_all Mpisim.Request.is_complete pool.pending then begin
    wait_all pool;
    true
  end
  else false
