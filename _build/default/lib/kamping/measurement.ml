type entry = { mutable accumulated : float; mutable started_at : float option }
type t = { comm : Comm.t; entries : (string, entry) Hashtbl.t }

let create comm = { comm; entries = Hashtbl.create 8 }

let entry t phase =
  match Hashtbl.find_opt t.entries phase with
  | Some e -> e
  | None ->
      let e = { accumulated = 0.0; started_at = None } in
      Hashtbl.add t.entries phase e;
      e

let start t phase =
  let e = entry t phase in
  match e.started_at with
  | Some _ -> Mpisim.Errors.usage "Measurement.start: phase %s is already running" phase
  | None -> e.started_at <- Some (Comm.now t.comm)

let stop t phase =
  let e = entry t phase in
  match e.started_at with
  | None -> Mpisim.Errors.usage "Measurement.stop: phase %s is not running" phase
  | Some t0 ->
      e.accumulated <- e.accumulated +. (Comm.now t.comm -. t0);
      e.started_at <- None

let time t phase f =
  start t phase;
  Fun.protect ~finally:(fun () -> stop t phase) f

let local t phase = (entry t phase).accumulated

let phases t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.entries [] |> List.sort String.compare

type stats = { phase : string; min : float; mean : float; max : float }

let aggregate t =
  let names = phases t in
  List.map
    (fun phase ->
      let v = local t phase in
      let min = Comm.allreduce_single t.comm Mpisim.Datatype.float Mpisim.Op.float_min v in
      let max = Comm.allreduce_single t.comm Mpisim.Datatype.float Mpisim.Op.float_max v in
      let sum = Comm.allreduce_single t.comm Mpisim.Datatype.float Mpisim.Op.float_sum v in
      { phase; min; mean = sum /. float_of_int (Comm.size t.comm); max })
    names

let pp_stats fmt s =
  Format.fprintf fmt "%-20s min %.1fus mean %.1fus max %.1fus" s.phase (1e6 *. s.min)
    (1e6 *. s.mean) (1e6 *. s.max)
