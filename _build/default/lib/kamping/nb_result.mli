(** Non-blocking MPI results: memory safety for non-blocking communication
    (paper Sec. III-E).

    A ['a t] encapsulates the [MPI_Request] {e and} every buffer involved in
    the operation.  The data is only reachable through {!wait} (blocks,
    then returns it) or {!test} (returns [Some data] only once the request
    completed) — by construction there is no way to read a receive buffer
    or touch a moved-in send buffer while the operation is in flight.
    This is the role [std::future] cannot play for MPI (no guaranteed
    background progress), realized instead on top of the request.

    Buffers moved into the call are returned to the caller as part of the
    result value, without copying. *)

type 'a t

(** [make request extract] wraps a pending request; [extract status] builds
    the user-visible value on completion (it runs at most once, and its
    result is cached). *)
val make : Mpisim.Request.t -> (Mpisim.Request.status -> 'a) -> 'a t

(** [of_value engine v] is an already-completed result (used when an
    operation completed immediately, e.g. a self-message). *)
val of_value : Simnet.Engine.t -> 'a -> 'a t

(** [wait r] blocks the caller until the operation finished and returns the
    owned data. *)
val wait : 'a t -> 'a

(** [test r] is [Some data] if the operation finished, [None] otherwise —
    the data stays owned by the result until it is surrendered. *)
val test : 'a t -> 'a option

(** [is_complete r] polls the underlying request without surrendering the
    data. *)
val is_complete : 'a t -> bool

(** [request r] exposes the native request handle for interoperability with
    plain-MPI code (the gradual-migration story of Sec. III-F). *)
val request : 'a t -> Mpisim.Request.t

(** [map f r] post-processes the owned data upon completion. *)
val map : ('a -> 'b) -> 'a t -> 'b t
