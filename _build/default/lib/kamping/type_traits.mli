(** Mapping OCaml types to wire datatypes (paper Sec. III-D).

    The equivalents of KaMPIng's [mpi_type_traits] specializations:

    - basic OCaml types map to the predefined datatypes;
    - record types are described by a {!field} list — the substitute for
      Boost.PFR reflection — from which either a {e contiguous-bytes} type
      (KaMPIng's default for trivially copyable data, Sec. III-D4) or an
      {e explicit struct} type (with C alignment padding and its
      pack/unpack penalty) is generated;
    - sizes and offsets are computed by the library, so the definition
      cannot go out of sync the way hand-written [MPI_Type_create_struct]
      calls can.

    Every construction is memoizable by the caller: build the datatype once
    at module initialization and share it, exactly like committing an MPI
    type. *)

(** Field descriptors (name, representation).  The names only serve error
    messages and debugging. *)
type field =
  | Int of string
  | Int32 of string
  | Int64 of string
  | Float of string
  | Char of string
  | Bool of string
  | Array of string * int * field  (** fixed-size inline array, e.g. [std::array<int, 3>] *)

(** [size_of field] is the payload size in bytes. *)
val size_of : field -> int

(** [align_of field] is the C alignment requirement. *)
val align_of : field -> int

(** [trivially_copyable ~name fields] is KaMPIng's default mapping: the
    record is transferred as one contiguous block of bytes {e including}
    any padding — slightly more data on the wire, but a straight memcpy
    (pack factor 1). *)
val trivially_copyable : ?default:'a -> name:string -> field list -> 'a Mpisim.Datatype.t

(** [struct_type ~name fields] is the explicit [MPI_Type_create_struct]
    mapping: C-style padding is computed and skipped on the wire, at the
    cost of strided access (a pack factor > 1 when gaps exist). *)
val struct_type : ?default:'a -> name:string -> field list -> 'a Mpisim.Datatype.t

(** [padding ~name fields] reports how many padding bytes the C layout of
    the record contains (0 means both mappings perform identically). *)
val padding : field list -> int

(** {1 Re-exported basic datatypes}

    Shorthands so that application code only opens this module. *)

val int : int Mpisim.Datatype.t
val float : float Mpisim.Datatype.t
val char : char Mpisim.Datatype.t
val bool : bool Mpisim.Datatype.t
val int32 : int32 Mpisim.Datatype.t
val int64 : int64 Mpisim.Datatype.t
val byte : char Mpisim.Datatype.t
val pair : 'a Mpisim.Datatype.t -> 'b Mpisim.Datatype.t -> ('a * 'b) Mpisim.Datatype.t

val triple :
  'a Mpisim.Datatype.t ->
  'b Mpisim.Datatype.t ->
  'c Mpisim.Datatype.t ->
  ('a * 'b * 'c) Mpisim.Datatype.t
