(** Resize policies: fine-grained control over receive-buffer allocation
    (paper Sec. III-C).

    Every KaMPIng operation that writes into a user-supplied container takes
    a resize policy deciding what happens when the container is smaller than
    the incoming data:

    - [Resize_to_fit]: always resize to exactly the needed size (the
      convenient default of most bindings, with possible hidden
      allocation);
    - [Grow_only]: grow if too small, never shrink (reuses capacity across
      iterations — the algorithm-engineering sweet spot);
    - [No_resize]: never touch the allocation; raise if the data does not
      fit (the zero-allocation mode for highly tuned code, KaMPIng's
      default for user-supplied buffers). *)

type t = Resize_to_fit | Grow_only | No_resize

(** Raised by [No_resize] when the container is too small. *)
exception Buffer_too_small of { needed : int; capacity : int }

(** [prepare policy vec ~needed ~filler] applies the policy so that [vec]
    has length at least [needed] (exactly [needed] for [Resize_to_fit]),
    without initializing the data region beyond what the policy demands.
    Returns [vec]'s backing array for the communication layer. *)
val prepare : t -> 'a Ds.Vec.t -> needed:int -> filler:'a -> 'a array

(** [pp fmt policy] prints the policy name. *)
val pp : Format.formatter -> t -> unit
