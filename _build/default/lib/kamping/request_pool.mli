(** Request pools: bulk completion of non-blocking operations
    (paper Sec. III-E).

    The unbounded pool simply collects requests and completes them together.
    The {e bounded} pool — mentioned in the paper as work in progress — has
    a fixed number of slots and blocks the submitter until a slot frees up,
    which caps the number of concurrent non-blocking requests (useful to
    bound unexpected-message memory). *)

type t

(** [create ()] is an empty, unbounded pool. *)
val create : unit -> t

(** [create_bounded ~slots ()] is a pool with at most [slots] in-flight
    requests; {!add} blocks (completing the oldest requests) when full. *)
val create_bounded : slots:int -> unit -> t

(** [add pool req] submits a request. *)
val add : t -> Mpisim.Request.t -> unit

(** [in_flight pool] counts submitted requests that have not been reaped by
    {!wait_all}. *)
val in_flight : t -> int

(** [wait_all pool] completes every submitted request and empties the
    pool.
    @raise the first failure exception encountered, after draining. *)
val wait_all : t -> unit

(** [test_all pool] is true (and empties the pool) iff every request has
    completed. *)
val test_all : t -> bool
