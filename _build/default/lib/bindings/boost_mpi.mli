(** Style-faithful emulation of Boost.MPI (paper Sec. II).

    Captured design traits: STL-container support with automatic resizing
    (hidden allocation), results for single values, implicit serialization
    for non-MPI types on send/recv, exceptions on error — but {e no}
    [MPI_Alltoallv] binding (applications emulate irregular exchanges with
    point-to-point), and variable-size collectives require the user to
    communicate the counts first. *)

type comm

val wrap : Mpisim.Comm.t -> comm
val rank : comm -> int
val size : comm -> int

(** [broadcast comm dt buf root] broadcasts in place. *)
val broadcast : comm -> 'a Mpisim.Datatype.t -> 'a array -> int -> unit

(** [all_gather comm dt v] gathers one value per rank into a fresh array
    (Boost's out-vector is always resized to fit). *)
val all_gather : comm -> 'a Mpisim.Datatype.t -> 'a -> 'a array

(** [all_gather_block comm dt block] gathers equal-size blocks. *)
val all_gather_block : comm -> 'a Mpisim.Datatype.t -> 'a array -> 'a array

(** [all_gatherv comm dt block sizes] needs user-provided per-rank sizes
    (Boost computes only the displacements). *)
val all_gatherv : comm -> 'a Mpisim.Datatype.t -> 'a array -> int array -> 'a array

(** [all_reduce comm dt op v] reduces a single value. *)
val all_reduce : comm -> 'a Mpisim.Datatype.t -> 'a Mpisim.Op.t -> 'a -> 'a

(** [all_to_all comm dt values] exchanges one value per rank pair. *)
val all_to_all : comm -> 'a Mpisim.Datatype.t -> 'a array -> 'a array

(** [gather comm dt v root] gathers single values at the root. *)
val gather : comm -> 'a Mpisim.Datatype.t -> 'a -> int -> 'a array

(** [scatter comm dt values root] deals one value per rank. *)
val scatter : comm -> 'a Mpisim.Datatype.t -> 'a array option -> int -> 'a

(** Point-to-point with automatic sizing on the receive side (Boost sends a
    size header for container payloads). *)
val send : comm -> 'a Mpisim.Datatype.t -> 'a array -> dst:int -> tag:int -> unit

val recv : comm -> 'a Mpisim.Datatype.t -> src:int -> tag:int -> 'a array

(** [isend]/[irecv] return raw requests; no buffer safety (Sec. III-E). *)
val isend : comm -> 'a Mpisim.Datatype.t -> 'a array -> dst:int -> tag:int -> Mpisim.Request.t

val irecv : comm -> 'a Mpisim.Datatype.t -> 'a array -> src:int -> tag:int -> Mpisim.Request.t

(** [send_serialized]/[recv_serialized]: Boost's implicit serialization —
    the type signature does not reveal that serialization happens. *)
val send_serialized : comm -> 'a Serde.Codec.t -> 'a -> dst:int -> tag:int -> unit

val recv_serialized : comm -> 'a Serde.Codec.t -> src:int -> tag:int -> 'a
