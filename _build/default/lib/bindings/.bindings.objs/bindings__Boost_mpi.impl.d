lib/bindings/boost_mpi.ml: Array Bytes Mpisim Serde
