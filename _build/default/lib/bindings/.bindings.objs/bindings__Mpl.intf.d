lib/bindings/mpl.mli: Mpisim
