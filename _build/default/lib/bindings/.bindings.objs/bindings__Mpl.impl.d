lib/bindings/mpl.ml: Array Mpisim
