lib/bindings/rwth_mpi.mli: Mpisim
