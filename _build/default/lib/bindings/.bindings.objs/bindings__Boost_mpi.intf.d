lib/bindings/boost_mpi.mli: Mpisim Serde
