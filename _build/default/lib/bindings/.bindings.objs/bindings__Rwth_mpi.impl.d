lib/bindings/rwth_mpi.ml: Array Mpisim
