module C = Mpisim.Collectives
module D = Mpisim.Datatype

type comm = Mpisim.Comm.t

let wrap c = c
let rank = Mpisim.Comm.rank
let size = Mpisim.Comm.size
let bcast comm dt buf ~root = C.bcast comm dt buf ~root

let filler dt block =
  if Array.length block > 0 then block.(0)
  else
    match D.default_elt dt with
    | Some d -> d
    | None -> Mpisim.Errors.usage "Rwth_mpi: no element to size the buffer"

let allgather comm dt block =
  let count = Array.length block in
  let out = Array.make (max 1 (size comm * count)) (filler dt block) in
  C.allgather comm dt ~sendbuf:block ~recvbuf:out ~count;
  Array.sub out 0 (size comm * count)

let allgatherv_inplace comm dt buf ~my_count =
  (* internal count gathering, IN_PLACE only: Sec. III-A's footnote 2 *)
  let p = size comm in
  let rcounts = Array.make p 0 in
  C.allgather comm D.int ~sendbuf:[| my_count |] ~recvbuf:rcounts ~count:1;
  let rdispls = Array.make p 0 in
  for i = 1 to p - 1 do
    rdispls.(i) <- rdispls.(i - 1) + rcounts.(i - 1)
  done;
  C.allgatherv ~inplace:true comm dt ~sendbuf:[||] ~scount:rcounts.(rank comm) ~recvbuf:buf
    ~rcounts ~rdispls

let allgatherv comm dt block ~rcounts =
  let p = size comm in
  let rdispls = Array.make p 0 in
  for i = 1 to p - 1 do
    rdispls.(i) <- rdispls.(i - 1) + rcounts.(i - 1)
  done;
  let total = rdispls.(p - 1) + rcounts.(p - 1) in
  let out = Array.make (max 1 total) (filler dt block) in
  C.allgatherv comm dt ~sendbuf:block ~scount:(Array.length block) ~recvbuf:out ~rcounts ~rdispls;
  Array.sub out 0 total

let alltoall comm dt block =
  let out = Array.make (max 1 (Array.length block)) (filler dt block) in
  C.alltoall comm dt ~sendbuf:block ~recvbuf:out ~count:(Array.length block / size comm);
  out

let alltoallv comm dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls =
  C.alltoallv comm dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls

let allreduce comm dt op v =
  let out = [| v |] in
  C.allreduce comm dt op ~sendbuf:[| v |] ~recvbuf:out ~count:1;
  out.(0)

let send comm dt buf ~dst ~tag = Mpisim.P2p.send comm dt buf ~dst ~tag
let recv comm dt buf ~src ~tag = (Mpisim.P2p.recv comm dt buf ~src ~tag).Mpisim.Request.count
let isend comm dt buf ~dst ~tag = Mpisim.P2p.isend comm dt buf ~dst ~tag
let irecv comm dt buf ~src ~tag = Mpisim.P2p.irecv comm dt buf ~src ~tag
