(** Style-faithful emulation of MPL (paper Sec. II).

    Captured design traits: a {e layout} system describes every buffer
    (powerful for halo exchanges, verbose for irregular discrete
    algorithms); variable-size collectives do not pass counts and
    displacements to the native call but construct per-peer derived
    datatypes, so they take the [MPI_Alltoallw] fallback path — the
    documented reason MPL's v-collectives are slower and scale worse
    (Ghosh et al., cited in Sec. II).  No default parameters, no error
    handling, no serialization. *)

type comm

(** A layout describes a window of a buffer: element count and
    displacement. *)
type layout

val wrap : Mpisim.Comm.t -> comm
val rank : comm -> int
val size : comm -> int

(** [contiguous_layout ~count ~displ] is the only layout the discrete
    algorithms here need (MPL offers many more for stencil codes). *)
val contiguous_layout : ?displ:int -> count:int -> unit -> layout

(** [empty_layout] is a zero-element layout. *)
val empty_layout : layout

(** [layouts ls] bundles per-rank layouts for v-collectives. *)
val layout_count : layout -> int

val layout_displ : layout -> int

val bcast : comm -> 'a Mpisim.Datatype.t -> 'a array -> layout -> root:int -> unit

val allgather : comm -> 'a Mpisim.Datatype.t -> 'a array -> 'a array -> count:int -> unit

(** [allgatherv comm dt sendbuf send_layout recvbuf recv_layouts]: goes
    through the alltoallw path. *)
val allgatherv :
  comm -> 'a Mpisim.Datatype.t -> 'a array -> layout -> 'a array -> layout array -> unit

(** [alltoallv comm dt sendbuf send_layouts recvbuf recv_layouts]: goes
    through the alltoallw path. *)
val alltoallv :
  comm -> 'a Mpisim.Datatype.t -> 'a array -> layout array -> 'a array -> layout array -> unit

val alltoall : comm -> 'a Mpisim.Datatype.t -> 'a array -> 'a array -> count:int -> unit
val allreduce : comm -> 'a Mpisim.Datatype.t -> 'a Mpisim.Op.t -> 'a -> 'a
val send : comm -> 'a Mpisim.Datatype.t -> 'a array -> layout -> dst:int -> tag:int -> unit
val recv : comm -> 'a Mpisim.Datatype.t -> 'a array -> layout -> src:int -> tag:int -> int
