module C = Mpisim.Collectives

type comm = Mpisim.Comm.t
type layout = { count : int; displ : int }

let wrap c = c
let rank = Mpisim.Comm.rank
let size = Mpisim.Comm.size
let contiguous_layout ?(displ = 0) ~count () = { count; displ }
let empty_layout = { count = 0; displ = 0 }
let layout_count l = l.count
let layout_displ l = l.displ

let bcast comm dt buf l ~root = C.bcast comm dt buf ~pos:l.displ ~count:l.count ~root

let allgather comm dt sendbuf recvbuf ~count = C.allgather comm dt ~sendbuf ~recvbuf ~count

(* MPL builds one derived datatype per peer instead of passing counts and
   displacements, so the variable collectives land on the Alltoallw
   fallback. *)
let alltoallv comm dt sendbuf send_layouts recvbuf recv_layouts =
  let scounts = Array.map layout_count send_layouts in
  let sdispls = Array.map layout_displ send_layouts in
  let rcounts = Array.map layout_count recv_layouts in
  let rdispls = Array.map layout_displ recv_layouts in
  C.alltoallw_style comm dt ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls

let allgatherv comm dt sendbuf send_layout recvbuf recv_layouts =
  let p = size comm in
  let send_layouts = Array.make p send_layout in
  alltoallv comm dt sendbuf send_layouts recvbuf recv_layouts

let alltoall comm dt sendbuf recvbuf ~count = C.alltoall comm dt ~sendbuf ~recvbuf ~count

let allreduce comm dt op v =
  let out = [| v |] in
  C.allreduce comm dt op ~sendbuf:[| v |] ~recvbuf:out ~count:1;
  out.(0)

let send comm dt buf l ~dst ~tag = Mpisim.P2p.send comm dt buf ~pos:l.displ ~count:l.count ~dst ~tag

let recv comm dt buf l ~src ~tag =
  (Mpisim.P2p.recv comm dt buf ~pos:l.displ ~count:l.count ~src ~tag).Mpisim.Request.count
