(** Style-faithful emulation of RWTH-MPI (Demiralp et al., paper Sec. II).

    Captured design traits: complete standard coverage with overloads at
    several abstraction levels; STL containers for send/receive buffers
    with automatic resizing in {e some} cases; receive counts can only be
    omitted for the in-place variants (the library then gathers them
    internally), otherwise the user exchanges counts manually; direct
    mirroring of the C interface elsewhere; no safety guarantees for
    non-blocking buffers. *)

type comm

val wrap : Mpisim.Comm.t -> comm
val rank : comm -> int
val size : comm -> int

val bcast : comm -> 'a Mpisim.Datatype.t -> 'a array -> root:int -> unit

(** [allgather comm dt block] resizes the result to fit (the convenient
    overload). *)
val allgather : comm -> 'a Mpisim.Datatype.t -> 'a array -> 'a array

(** [allgatherv_inplace comm dt buf ~my_count ~my_displ] is the only
    overload that computes receive counts internally — it requires the data
    to sit at the right offset already (MPI_IN_PLACE), so the user must
    have exchanged counts to compute the displacement anyway. *)
val allgatherv_inplace : comm -> 'a Mpisim.Datatype.t -> 'a array -> my_count:int -> unit

(** [allgatherv comm dt block ~rcounts] mirrors the C call (counts from the
    user, displacements computed). *)
val allgatherv : comm -> 'a Mpisim.Datatype.t -> 'a array -> rcounts:int array -> 'a array

val alltoall : comm -> 'a Mpisim.Datatype.t -> 'a array -> 'a array

(** [alltoallv] mirrors the C interface completely. *)
val alltoallv :
  comm ->
  'a Mpisim.Datatype.t ->
  sendbuf:'a array ->
  scounts:int array ->
  sdispls:int array ->
  recvbuf:'a array ->
  rcounts:int array ->
  rdispls:int array ->
  unit

val allreduce : comm -> 'a Mpisim.Datatype.t -> 'a Mpisim.Op.t -> 'a -> 'a
val send : comm -> 'a Mpisim.Datatype.t -> 'a array -> dst:int -> tag:int -> unit
val recv : comm -> 'a Mpisim.Datatype.t -> 'a array -> src:int -> tag:int -> int
val isend : comm -> 'a Mpisim.Datatype.t -> 'a array -> dst:int -> tag:int -> Mpisim.Request.t
val irecv : comm -> 'a Mpisim.Datatype.t -> 'a array -> src:int -> tag:int -> Mpisim.Request.t
