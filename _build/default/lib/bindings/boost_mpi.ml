module C = Mpisim.Collectives
module D = Mpisim.Datatype

type comm = Mpisim.Comm.t

let wrap c = c
let rank = Mpisim.Comm.rank
let size = Mpisim.Comm.size

let broadcast comm dt buf root = C.bcast comm dt buf ~root

let all_gather comm dt v =
  let out = Array.make (size comm) v in
  C.allgather comm dt ~sendbuf:[| v |] ~recvbuf:out ~count:1;
  out

let all_gather_block comm dt block =
  let count = Array.length block in
  if count = 0 then [||]
  else begin
    let out = Array.make (size comm * count) block.(0) in
    C.allgather comm dt ~sendbuf:block ~recvbuf:out ~count;
    out
  end

let all_gatherv comm dt block sizes =
  (* Boost computes displacements but expects the user to have exchanged
     the counts. *)
  let p = size comm in
  let displs = Array.make p 0 in
  for i = 1 to p - 1 do
    displs.(i) <- displs.(i - 1) + sizes.(i - 1)
  done;
  let total = displs.(p - 1) + sizes.(p - 1) in
  let filler =
    if Array.length block > 0 then block.(0)
    else
      match D.default_elt dt with
      | Some d -> d
      | None -> Mpisim.Errors.usage "Boost_mpi.all_gatherv: no element to size the buffer"
  in
  let out = Array.make (max total 1) filler in
  C.allgatherv comm dt ~sendbuf:block ~scount:(Array.length block) ~recvbuf:out ~rcounts:sizes
    ~rdispls:displs;
  Array.sub out 0 total

let all_reduce comm dt op v =
  let out = [| v |] in
  C.allreduce comm dt op ~sendbuf:[| v |] ~recvbuf:out ~count:1;
  out.(0)

let all_to_all comm dt values =
  let out = Array.copy values in
  C.alltoall comm dt ~sendbuf:values ~recvbuf:out ~count:1;
  out

let gather comm dt v root =
  if rank comm = root then begin
    let out = Array.make (size comm) v in
    C.gather comm dt ~sendbuf:[| v |] ~recvbuf:out ~count:1 ~root;
    out
  end
  else begin
    C.gather comm dt ~sendbuf:[| v |] ~count:1 ~root;
    [||]
  end

let scatter comm dt values root =
  let out =
    match values with
    | Some vs when Array.length vs > 0 -> [| vs.(0) |]
    | _ -> (
        match D.default_elt dt with
        | Some d -> [| d |]
        | None -> Mpisim.Errors.usage "Boost_mpi.scatter: no element to size the buffer")
  in
  (match values with
  | Some vs -> C.scatter ~sendbuf:vs comm dt ~recvbuf:out ~count:1 ~root
  | None -> C.scatter comm dt ~recvbuf:out ~count:1 ~root);
  out.(0)

(* Container payloads travel with a size header so the receiver can resize
   to fit — Boost's hidden allocation. *)
let send comm dt buf ~dst ~tag =
  Mpisim.P2p.send comm D.int [| Array.length buf |] ~dst ~tag;
  if Array.length buf > 0 then Mpisim.P2p.send comm dt buf ~dst ~tag

let recv comm dt ~src ~tag =
  let header = [| 0 |] in
  let st = Mpisim.P2p.recv comm D.int header ~src ~tag in
  let n = header.(0) in
  if n = 0 then [||]
  else begin
    let filler =
      match D.default_elt dt with
      | Some d -> d
      | None -> Mpisim.Errors.usage "Boost_mpi.recv: no element to size the buffer"
    in
    let buf = Array.make n filler in
    ignore (Mpisim.P2p.recv comm dt buf ~src:st.Mpisim.Request.source ~tag);
    buf
  end

let isend comm dt buf ~dst ~tag = Mpisim.P2p.isend comm dt buf ~dst ~tag
let irecv comm dt buf ~src ~tag = Mpisim.P2p.irecv comm dt buf ~src ~tag

let serialization_cost ~bytes = 50.0e-9 +. (2.0e-9 *. float_of_int bytes)

let send_serialized comm codec v ~dst ~tag =
  let b = Serde.Codec.encode codec v in
  let wire = Array.init (Bytes.length b) (Bytes.get b) in
  Mpisim.Comm.compute comm (serialization_cost ~bytes:(Array.length wire));
  Mpisim.P2p.send comm D.int [| Array.length wire |] ~dst ~tag;
  Mpisim.P2p.send comm D.serialized wire ~dst ~tag

let recv_serialized comm codec ~src ~tag =
  let header = [| 0 |] in
  let st = Mpisim.P2p.recv comm D.int header ~src ~tag in
  let buf = Array.make (max header.(0) 1) '\000' in
  ignore (Mpisim.P2p.recv comm D.serialized buf ~src:st.Mpisim.Request.source ~tag);
  Mpisim.Comm.compute comm (serialization_cost ~bytes:header.(0));
  let b = Bytes.init header.(0) (Array.get buf) in
  Serde.Codec.decode codec b
