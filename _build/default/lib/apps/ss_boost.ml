(* Sample sort against the Boost.MPI-style interface.  Boost provides no
   MPI_Alltoallv binding (Sec. II), so the bucket exchange falls back to a
   hand-written irregular exchange over point-to-point messages. *)

module B = Bindings.Boost_mpi
module D = Mpisim.Datatype

let sort raw data =
  let comm = B.wrap raw in
  let p = B.size comm and r = B.rank comm in
  let k = Ss_common.num_samples p in
  let lsamples = Ss_common.draw_samples ~rank:r ~seed:17 data k in
  let gsamples = B.all_gather_block comm D.int lsamples in
  Array.sort compare gsamples;
  let splitters = Ss_common.select_splitters gsamples p in
  Ss_common.local_sort raw data;
  let scounts = Ss_common.bucket_counts data splitters p in
  Ss_common.charge_partition raw (Array.length data);
  let sdispls = Ss_common.exclusive_scan scounts in
  (* no alltoallv: exchange counts, then pairwise isend/recv *)
  let rcounts = B.all_to_all comm D.int scounts in
  let rdispls = Ss_common.exclusive_scan rcounts in
  let total = rdispls.(p - 1) + rcounts.(p - 1) in
  let recvbuf = Array.make (max total 1) 0 in
  Array.blit data sdispls.(r) recvbuf rdispls.(r) scounts.(r);
  let reqs = ref [] in
  for i = 1 to p - 1 do
    let dst = (r + i) mod p in
    if scounts.(dst) > 0 then
      reqs :=
        B.isend comm D.int (Array.sub data sdispls.(dst) scounts.(dst)) ~dst ~tag:0 :: !reqs
  done;
  for i = 1 to p - 1 do
    let src = (r - i + p) mod p in
    if rcounts.(src) > 0 then begin
      let chunk = Array.make rcounts.(src) 0 in
      ignore (Mpisim.Request.wait (B.irecv comm D.int chunk ~src ~tag:0));
      Array.blit chunk 0 recvbuf rdispls.(src) rcounts.(src)
    end
  done;
  List.iter (fun req -> ignore (Mpisim.Request.wait req)) !reqs;
  let result = Array.sub recvbuf 0 total in
  Ss_common.local_sort raw result;
  result
