(** Distributed suffix-array construction by prefix doubling (paper
    Sec. IV-A; Manber-Myers).  The KaMPIng implementation is the paper's
    163-LoC-role artifact (vs. 426 LoC for plain MPI). *)

(** [build comm ~text ~global_n] computes this rank's block of the suffix
    array of the block-distributed [text]. *)
val build : Mpisim.Comm.t -> text:char array -> global_n:int -> int array

(** [naive_suffix_array text] is the O(n^2 log n) sequential reference used
    by the tests. *)
val naive_suffix_array : string -> int array
