(** BFS frontier exchange against the MPL style; the exchange rides the
    Alltoallw path, which is why MPL is slower on every graph family in
    Fig. 10. *)

(** [bfs comm graph ~src] returns the hop distances of this rank's local
    vertices. *)
val bfs : Mpisim.Comm.t -> Graphgen.Distgraph.t -> src:int -> int array
