(* BFS with the alternative all-to-all strategies of Fig. 10 (paper
   Sec. V-A): KaMPIng's sparse (NBX) and grid plugins, and MPI-3
   neighborhood collectives with a static or per-level-rebuilt topology. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec
module G = Graphgen.Distgraph

let all_empty (st : Bfs_common.state) empty =
  K.allreduce_single (K.wrap st.Bfs_common.comm) D.bool Mpisim.Op.bool_and empty

let bfs_sparse comm graph ~src =
  let st = Bfs_common.init comm graph src in
  let exchange (st : Bfs_common.state) remote =
    let kc = K.wrap st.Bfs_common.comm in
    let messages = Hashtbl.fold (fun dest v acc -> (dest, v) :: acc) remote [] in
    let received = Kamping_plugins.Sparse_alltoall.exchange kc D.int ~messages in
    let out = V.create () in
    List.iter (fun (_, v) -> V.append out v) received;
    out
  in
  Bfs_common.run st ~exchange ~all_empty

let bfs_grid comm graph ~src =
  let kc = K.wrap comm in
  let grid = Kamping_plugins.Grid_alltoall.create kc in
  let st = Bfs_common.init comm graph src in
  let exchange (st : Bfs_common.state) remote =
    let p = Mpisim.Comm.size st.Bfs_common.comm in
    let data, send_counts = Bfs_common.flatten_buckets p remote in
    let out, _ = Kamping_plugins.Grid_alltoall.alltoallv grid D.int ~send_buf:data ~send_counts in
    out
  in
  Bfs_common.run st ~exchange ~all_empty

(* The static communication graph: one topology over the ranks that share
   at least one graph edge, built once. *)
let neighbor_exchange topo partners (st : Bfs_common.state) remote =
  let degree = Array.length partners in
  let scounts = Array.make degree 0 in
  let chunks = Array.make degree (V.create ()) in
  Array.iteri
    (fun i dst ->
      match Hashtbl.find_opt remote dst with
      | Some v ->
          scounts.(i) <- V.length v;
          chunks.(i) <- v
      | None -> chunks.(i) <- V.create ())
    partners;
  (* every destination must be a declared neighbor *)
  Hashtbl.iter
    (fun dst v ->
      if V.length v > 0 && not (Array.exists (fun x -> x = dst) partners) then
        Mpisim.Errors.usage "BFS frontier crosses an undeclared topology edge to rank %d" dst)
    remote;
  let sendbuf = V.create () in
  Array.iter (fun v -> V.append sendbuf v) chunks;
  let sdispls = Ss_common.exclusive_scan scounts in
  (* exchange counts over the topology, then the payload *)
  let rcounts = Array.make degree 0 in
  Mpisim.Topology.neighbor_alltoall topo D.int ~sendbuf:scounts ~recvbuf:rcounts ~count:1;
  let rdispls = Ss_common.exclusive_scan rcounts in
  let total = if degree = 0 then 0 else rdispls.(degree - 1) + rcounts.(degree - 1) in
  let recvbuf = Array.make (max total 1) 0 in
  Mpisim.Topology.neighbor_alltoallv topo D.int ~sendbuf:(V.unsafe_data sendbuf) ~scounts ~sdispls
    ~recvbuf ~rcounts ~rdispls;
  ignore st;
  V.unsafe_of_array recvbuf total

let bfs_neighbor comm graph ~src =
  let partners = G.rank_partners graph in
  let topo = Mpisim.Topology.dist_graph_create_adjacent comm ~sources:partners ~destinations:partners in
  let st = Bfs_common.init comm graph src in
  Bfs_common.run st ~exchange:(neighbor_exchange topo partners) ~all_empty

(* Rebuilding the topology before every exchange models dynamically
   changing communication patterns — where neighborhood collectives stop
   scaling (end of Sec. V-A). *)
let bfs_neighbor_dynamic comm graph ~src =
  let partners = G.rank_partners graph in
  let st = Bfs_common.init comm graph src in
  let exchange (st : Bfs_common.state) remote =
    let topo =
      Mpisim.Topology.dist_graph_create_adjacent st.Bfs_common.comm ~sources:partners
        ~destinations:partners
    in
    neighbor_exchange topo partners st remote
  in
  Bfs_common.run st ~exchange ~all_empty
