(* BFS frontier exchange against the Boost.MPI style: no alltoallv binding,
   so counts go through all_to_all and the payload through point-to-point
   messages. *)

module B = Bindings.Boost_mpi
module D = Mpisim.Datatype
module V = Ds.Vec

let all_empty (st : Bfs_common.state) empty =
  B.all_reduce (B.wrap st.Bfs_common.comm) D.bool Mpisim.Op.bool_and empty

let exchange (st : Bfs_common.state) remote =
  let comm = B.wrap st.Bfs_common.comm in
  let p = B.size comm and r = B.rank comm in
  let data, scounts = Bfs_common.flatten_buckets p remote in
  let sdispls = Ss_common.exclusive_scan scounts in
  let rcounts = B.all_to_all comm D.int scounts in
  let rdispls = Ss_common.exclusive_scan rcounts in
  let total = rdispls.(p - 1) + rcounts.(p - 1) in
  let recvbuf = Array.make (max total 1) 0 in
  let reqs = ref [] in
  for i = 1 to p - 1 do
    let dst = (r + i) mod p in
    if scounts.(dst) > 0 then
      reqs :=
        B.isend comm D.int
          (Array.sub (V.unsafe_data data) sdispls.(dst) scounts.(dst))
          ~dst ~tag:1
        :: !reqs
  done;
  for i = 1 to p - 1 do
    let src = (r - i + p) mod p in
    if rcounts.(src) > 0 then begin
      let chunk = Array.make rcounts.(src) 0 in
      ignore (Mpisim.Request.wait (B.irecv comm D.int chunk ~src ~tag:1));
      Array.blit chunk 0 recvbuf rdispls.(src) rcounts.(src)
    end
  done;
  List.iter (fun req -> ignore (Mpisim.Request.wait req)) !reqs;
  V.unsafe_of_array recvbuf total

let bfs comm graph ~src =
  let st = Bfs_common.init comm graph src in
  Bfs_common.run st ~exchange ~all_empty
