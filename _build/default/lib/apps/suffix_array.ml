(* Distributed suffix-array construction by prefix doubling (paper
   Sec. IV-A, Manber-Myers): suffixes are ranked by their first k
   characters; each round fetches the rank of the suffix k positions ahead,
   sorts the (rank, rank+k) pairs globally with the sorter plugin and
   re-ranks, doubling k until all ranks are distinct.

   The text and all arrays are block-distributed; every exchange computes
   its counts locally (block layout), so KaMPIng's alltoallv runs on its
   zero-overhead path. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

let block_range ~n ~p r = Graphgen.Distgraph.block_range ~global_n:n ~comm_size:p r

let owner_of ~n ~p q =
  let base = n / p and extra = n mod p in
  if base = 0 then min q (p - 1)
  else begin
    let boundary = extra * (base + 1) in
    if q < boundary then q / (base + 1) else extra + ((q - boundary) / base)
  end

(* Fetch R[q + k] for every local q (0 beyond the end): both sides of the
   exchange derive their counts from the block layout alone. *)
let fetch_shifted kc ~n ~p ~first ~local_n ~k (ranks : int array) =
  let send_counts = Array.make p 0 in
  let recv_counts = Array.make p 0 in
  for t = 0 to p - 1 do
    let tf, tl = block_range ~n ~p t in
    (* rank t needs positions [tf+k, tf+tl+k) ∩ [0,n); I own [first, first+local_n) *)
    let lo = max (tf + k) first and hi = min (tf + tl + k) (first + local_n) in
    if hi > lo then send_counts.(t) <- hi - lo;
    (* symmetric: what I need from t *)
    let lo = max (first + k) tf and hi = min (first + local_n + k) (tf + tl) in
    if hi > lo then recv_counts.(t) <- hi - lo
  done;
  let send_buf = V.create () in
  for t = 0 to p - 1 do
    let tf, tl = block_range ~n ~p t in
    let lo = max (tf + k) first and hi = min (tf + tl + k) (first + local_n) in
    for q = lo to hi - 1 do
      V.push send_buf ranks.(q - first)
    done
  done;
  let res = K.alltoallv ~recv_counts kc D.int ~send_buf ~send_counts in
  (* received values are R[first+k .. first+local_n+k) clipped at n;
     positions beyond the text rank as -1, strictly below every dense
     rank, so shorter suffixes sort first *)
  let shifted = Array.make (max local_n 1) (-1) in
  let got = res.K.recv_buf in
  for i = 0 to V.length got - 1 do
    shifted.(i) <- V.get got i
  done;
  shifted

(* Pass each slice's last sort key along the rank chain so re-ranking can
   compare across slice boundaries. *)
let boundary_key kc (tuples : (int * int * int) V.t) =
  let p = K.size kc and r = K.rank kc in
  let dt = D.pair D.int D.int in
  let none = (min_int, min_int) in
  let prev = if r > 0 then V.get (K.recv ~count:1 kc dt ~src:(r - 1)) 0 else none in
  let mine =
    if V.is_empty tuples then prev
    else begin
      let a, b, _ = V.get tuples (V.length tuples - 1) in
      (a, b)
    end
  in
  if r < p - 1 then K.send kc dt ~send_buf:(V.of_list [ mine ]) ~dst:(r + 1);
  prev

let build comm ~text ~global_n =
  let kc = K.wrap comm in
  let p = K.size kc and r = K.rank kc in
  let n = global_n in
  let first, local_n = block_range ~n ~p r in
  let dt3 = D.triple D.int D.int D.int in
  let ranks = ref (Array.init (max local_n 1) (fun i -> if i < local_n then Char.code text.(i) else 0)) in
  let sa = Array.make (max local_n 1) 0 in
  let k = ref 1 in
  let finished = ref false in
  while not !finished do
    let shifted = fetch_shifted kc ~n ~p ~first ~local_n ~k:!k !ranks in
    let tuples =
      V.init local_n (fun i -> ((!ranks).(i), shifted.(i), first + i))
    in
    let cmp (a1, b1, i1) (a2, b2, i2) = compare (a1, b1, i1) (a2, b2, i2) in
    let sorted = Kamping_plugins.Sorter.sort ~seed:(0x54 + !k) kc dt3 ~cmp tuples in
    (* dense re-ranking: rank = number of distinct keys before the tuple *)
    let m = V.length sorted in
    let prev_key = boundary_key kc sorted in
    let flags = Array.make (max m 1) 0 in
    let last = ref prev_key in
    for j = 0 to m - 1 do
      let a, b, _ = V.get sorted j in
      if (a, b) <> !last then flags.(j) <- 1;
      last := (a, b)
    done;
    K.compute kc (Kamping.Costs.linear m);
    let local_flag_sum = Array.fold_left ( + ) 0 flags in
    let flags_before = K.exscan_single ~init:0 kc D.int Mpisim.Op.int_sum local_flag_sum in
    let total_distinct = K.allreduce_single kc D.int Mpisim.Op.int_sum local_flag_sum in
    let offset = K.exscan_single ~init:0 kc D.int Mpisim.Op.int_sum m in
    (* route results back to the owner of each suffix index *)
    let out : (int, (int * int) V.t) Hashtbl.t = Hashtbl.create 8 in
    let bucket o =
      match Hashtbl.find_opt out o with
      | Some v -> v
      | None ->
          let v = V.create () in
          Hashtbl.add out o v;
          v
    in
    if total_distinct = n then begin
      (* done: sorted position g holds suffix i -> SA[g] = i *)
      for j = 0 to m - 1 do
        let _, _, i = V.get sorted j in
        let g = offset + j in
        V.push (bucket (owner_of ~n ~p g)) (g, i)
      done;
      let flat = Kamping.Flatten.flatten ~comm_size:p out in
      let res = K.alltoallv_flat kc (D.pair D.int D.int) flat in
      V.iter (fun (g, i) -> sa.(g - first) <- i) res.K.recv_buf;
      finished := true
    end
    else begin
      (* new rank of suffix i = dense id of its key *)
      let acc = ref flags_before in
      for j = 0 to m - 1 do
        acc := !acc + flags.(j);
        let _, _, i = V.get sorted j in
        V.push (bucket (owner_of ~n ~p i)) (i, !acc - 1)
      done;
      let flat = Kamping.Flatten.flatten ~comm_size:p out in
      let res = K.alltoallv_flat kc (D.pair D.int D.int) flat in
      V.iter (fun (i, rk) -> (!ranks).(i - first) <- rk) res.K.recv_buf;
      k := !k * 2;
      if !k > 2 * n then Mpisim.Errors.usage "prefix doubling failed to converge"
    end
  done;
  Array.sub sa 0 local_n

(* Sequential reference for testing: O(n^2 log n) direct suffix sort. *)
let naive_suffix_array text =
  let n = String.length text in
  let suffix i = String.sub text i (n - i) in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> compare (suffix a) (suffix b)) idx;
  idx
