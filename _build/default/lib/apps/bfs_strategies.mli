(** BFS with the alternative all-to-all strategies of Fig. 10 (paper
    Sec. V-A). *)

(** NBX sparse all-to-all: message cost proportional to actual partners. *)
val bfs_sparse : Mpisim.Comm.t -> Graphgen.Distgraph.t -> src:int -> int array

(** Two-hop grid routing: O(sqrt p) message start-ups per exchange. *)
val bfs_grid : Mpisim.Comm.t -> Graphgen.Distgraph.t -> src:int -> int array

(** MPI-3 neighborhood collectives over the static rank-adjacency graph,
    built once. *)
val bfs_neighbor : Mpisim.Comm.t -> Graphgen.Distgraph.t -> src:int -> int array

(** Neighborhood collectives with the topology rebuilt before every level
    — models dynamic communication patterns, where the setup cost stops the
    approach from scaling. *)
val bfs_neighbor_dynamic : Mpisim.Comm.t -> Graphgen.Distgraph.t -> src:int -> int array
