(* Shared, binding-agnostic parts of the distributed BFS (paper Sec. IV-B,
   Fig. 9): frontier expansion and distance bookkeeping.  The binding
   variants differ only in the frontier exchange and termination check. *)

module V = Ds.Vec
module G = Graphgen.Distgraph

let undef = max_int

type state = {
  comm : Mpisim.Comm.t;
  graph : G.t;
  dist : int array;  (* per local vertex *)
  mutable frontier : int V.t;  (* global ids, all local *)
  mutable level : int;
}

let init comm graph src =
  let dist = Array.make (max graph.G.local_n 1) undef in
  let frontier = V.create () in
  if G.is_local graph src then begin
    dist.(G.local_of_global graph src) <- 0;
    V.push frontier src
  end;
  { comm; graph; dist; frontier; level = 0 }

(* Walk the frontier's edges: newly discovered local vertices go straight
   into the next local frontier; remote candidates are bucketed by owner
   rank.  Returns the bucket table for the exchange step. *)
let expand st =
  let g = st.graph in
  let next_local = V.create () in
  let remote : (int, int V.t) Hashtbl.t = Hashtbl.create 8 in
  let bucket o =
    match Hashtbl.find_opt remote o with
    | Some v -> v
    | None ->
        let v = V.create () in
        Hashtbl.add remote o v;
        v
  in
  let edges = ref 0 in
  V.iter
    (fun v ->
      let i = G.local_of_global g v in
      G.iter_neighbors g i (fun u ->
          incr edges;
          if G.is_local g u then begin
            let j = G.local_of_global g u in
            if st.dist.(j) = undef then begin
              st.dist.(j) <- st.level + 1;
              V.push next_local u
            end
          end
          else V.push (bucket (G.owner g u)) u))
    st.frontier;
  Mpisim.Comm.compute st.comm (Kamping.Costs.per_edge !edges);
  (next_local, remote)

(* Merge exchanged candidates into the next frontier. *)
let absorb st next_local received =
  let g = st.graph in
  let frontier = next_local in
  V.iter
    (fun u ->
      let j = G.local_of_global g u in
      if st.dist.(j) = undef then begin
        st.dist.(j) <- st.level + 1;
        V.push frontier u
      end)
    received;
  Mpisim.Comm.compute st.comm (Kamping.Costs.hash_ops (V.length received));
  st.frontier <- frontier;
  st.level <- st.level + 1

(* The generic level loop, parameterized by the exchange strategy and the
   global-termination test. *)
let run st ~exchange ~all_empty =
  while not (all_empty st (V.is_empty st.frontier)) do
    let next_local, remote = expand st in
    let received = exchange st remote in
    absorb st next_local received
  done;
  st.dist

(* Flatten a bucket table into (data, counts) for alltoallv-style
   exchanges — the boilerplate KaMPIng's with_flattened removes. *)
let flatten_buckets p remote =
  let counts = Array.make p 0 in
  let data = V.create () in
  for d = 0 to p - 1 do
    match Hashtbl.find_opt remote d with
    | Some v ->
        counts.(d) <- V.length v;
        V.append data v
    | None -> ()
  done;
  (data, counts)
