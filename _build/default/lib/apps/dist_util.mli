(** Utilities for block-distributed global arrays, shared by the text
    indexing algorithms (prefix doubling, DCX): shifted fetches, routing of
    values to index owners, and dense ranking of globally sorted
    sequences.  All exchanges compute their counts locally from the block
    layout. *)

(** [block_of ~n ~p r] is [(first, count)] of rank [r]'s block. *)
val block_of : n:int -> p:int -> int -> int * int

(** [owner_of ~n ~p q] is the rank owning global index [q]. *)
val owner_of : n:int -> p:int -> int -> int

(** [fetch_shifted comm ~n ~k ~fill dt local] returns this rank's view of
    the global array shifted left by [k] ([fill] past the end). *)
val fetch_shifted :
  Kamping.Comm.t -> n:int -> k:int -> fill:'a -> 'a Mpisim.Datatype.t -> 'a array -> 'a array

(** [route comm ~n dt pairs] delivers each [(index, value)] pair to the
    owner of [index]. *)
val route :
  Kamping.Comm.t -> n:int -> 'v Mpisim.Datatype.t -> (int * 'v) Ds.Vec.t -> (int * 'v) Ds.Vec.t

(** [chain_last comm dt ~none items] passes each slice's last element right
    along the rank chain and returns the predecessor slice's last element
    ([none] on rank 0). *)
val chain_last : Kamping.Comm.t -> 'k Mpisim.Datatype.t -> none:'k -> 'k Ds.Vec.t -> 'k

(** [dense_ranks comm dt ~eq ~none keys] assigns dense 0-based ranks to a
    globally sorted distributed sequence (equal keys share a rank); returns
    [(local ranks, total distinct, global offset of this slice)]. *)
val dense_ranks :
  Kamping.Comm.t ->
  'k Mpisim.Datatype.t ->
  eq:('k -> 'k -> bool) ->
  none:'k ->
  'k Ds.Vec.t ->
  int array * int * int
