(** Label propagation ghost pull against plain MPI: full count and
    displacement bookkeeping per iteration (the 154-LoC role of
    Sec. IV-B). *)

val pull : Mpisim.Comm.t -> Lp_common.ghosts -> int array -> int array -> unit

val run :
  Mpisim.Comm.t -> Graphgen.Distgraph.t -> iterations:int -> max_cluster_size:int -> int array
