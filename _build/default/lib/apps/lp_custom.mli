(** Label propagation ghost pull through a dKaMinPar-style bespoke layer:
    tersest use site (106-LoC role), at the cost of owning the layer. *)

val run :
  Mpisim.Comm.t -> Graphgen.Distgraph.t -> iterations:int -> max_cluster_size:int -> int array
