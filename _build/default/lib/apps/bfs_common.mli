(** Shared, binding-agnostic pieces of the distributed BFS (paper
    Sec. IV-B, Fig. 9): distance bookkeeping, frontier expansion and the
    generic level loop.  Binding variants plug in only the frontier
    exchange and the termination check. *)

(** Distance value of unreached vertices. *)
val undef : int

type state = {
  comm : Mpisim.Comm.t;
  graph : Graphgen.Distgraph.t;
  dist : int array;  (** per local vertex *)
  mutable frontier : int Ds.Vec.t;  (** current frontier, global ids *)
  mutable level : int;
}

(** [init comm graph src] seeds the search at global vertex [src]. *)
val init : Mpisim.Comm.t -> Graphgen.Distgraph.t -> int -> state

(** [expand st] walks the frontier's edges: newly found local vertices join
    the next frontier immediately; remote candidates come back bucketed by
    owner rank. *)
val expand : state -> int Ds.Vec.t * (int, int Ds.Vec.t) Hashtbl.t

(** [absorb st next_local received] merges exchanged candidates and
    advances the level. *)
val absorb : state -> int Ds.Vec.t -> int Ds.Vec.t -> unit

(** [run st ~exchange ~all_empty] drives levels until every rank's frontier
    is empty; returns the distance array. *)
val run :
  state ->
  exchange:(state -> (int, int Ds.Vec.t) Hashtbl.t -> int Ds.Vec.t) ->
  all_empty:(state -> bool -> bool) ->
  int array

(** [flatten_buckets p buckets] lays the buckets out contiguously in rank
    order — the boilerplate [with_flattened] removes. *)
val flatten_buckets : int -> (int, int Ds.Vec.t) Hashtbl.t -> int Ds.Vec.t * int array
