(* BFS frontier exchange against the plain MPI interface — the 46-LoC
   baseline of Table I. *)

module C = Mpisim.Collectives
module D = Mpisim.Datatype
module V = Ds.Vec

let all_empty (st : Bfs_common.state) empty =
  let out = Array.make 1 false in
  C.allreduce st.Bfs_common.comm D.bool Mpisim.Op.bool_and ~sendbuf:[| empty |] ~recvbuf:out
    ~count:1;
  out.(0)

let exchange (st : Bfs_common.state) remote =
  let comm = st.Bfs_common.comm in
  let p = Mpisim.Comm.size comm in
  let data, scounts = Bfs_common.flatten_buckets p remote in
  let sdispls = Array.make p 0 in
  for i = 1 to p - 1 do
    sdispls.(i) <- sdispls.(i - 1) + scounts.(i - 1)
  done;
  let rcounts = Array.make p 0 in
  C.alltoall comm D.int ~sendbuf:scounts ~recvbuf:rcounts ~count:1;
  let rdispls = Array.make p 0 in
  for i = 1 to p - 1 do
    rdispls.(i) <- rdispls.(i - 1) + rcounts.(i - 1)
  done;
  let total = rdispls.(p - 1) + rcounts.(p - 1) in
  let recvbuf = Array.make (max total 1) 0 in
  C.alltoallv comm D.int ~sendbuf:(V.unsafe_data data) ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls;
  V.unsafe_of_array recvbuf total

let bfs comm graph ~src =
  let st = Bfs_common.init comm graph src in
  Bfs_common.run st ~exchange ~all_empty
