(* The RAxML-NG integration benchmark (paper Sec. IV-C, Fig. 11).

   RAxML-NG's parallel abstraction layer broadcasts serialized model state
   (branch lengths, substitution-model parameters) and reduces per-worker
   log-likelihoods, ~700 MPI calls per second.  The [Before] module
   reproduces the hand-written layer (explicit BinaryStream serialization,
   a size broadcast followed by a payload broadcast); [After] is the
   KaMPIng one-liner.  A synthetic likelihood-search loop drives both at
   the original call rate so overhead would show up in the simulated
   runtime. *)

module D = Mpisim.Datatype

(* The "model" travelling between workers. *)
type model = { branch_lengths : float array; alpha : float; logl : float }

let model_codec =
  Serde.Codec.conv ~name:"model"
    (fun m -> (m.branch_lengths, m.alpha, m.logl))
    (fun (branch_lengths, alpha, logl) -> { branch_lengths; alpha; logl })
    Serde.Codec.(triple (array float) float float)

let make_model ~taxa ~seed =
  let rng = Simnet.Rng.create (Int64.of_int seed) in
  {
    branch_lengths = Array.init ((2 * taxa) - 3) (fun _ -> Simnet.Rng.float rng);
    alpha = 0.5 +. Simnet.Rng.float rng;
    logl = 0.0;
  }

let serialization_cost ~bytes = 50.0e-9 +. (2.0e-9 *. float_of_int bytes)

(* ------------------------------------------------------------------ *)
(* Before: RAxML-NG's custom layer (Fig. 11 top).                      *)
(* ------------------------------------------------------------------ *)

module Before = struct
  (* _parallel_buf: the preallocated serialization scratch buffer. *)
  type t = { comm : Mpisim.Comm.t; mutable parallel_buf : char array }

  let create comm = { comm; parallel_buf = Array.make 4096 '\000' }

  let mpi_broadcast_raw t buf ~count ~root =
    Mpisim.Collectives.bcast t.comm D.serialized buf ~count ~root

  (* The hand-rolled pattern: serialize into the scratch buffer, broadcast
     the size, broadcast the bytes, deserialize. *)
  let mpi_broadcast t ~root obj =
    let master = Mpisim.Comm.rank t.comm = root in
    let size =
      if master then begin
        let b = Serde.Codec.encode model_codec obj in
        let n = Bytes.length b in
        if n > Array.length t.parallel_buf then t.parallel_buf <- Array.make (2 * n) '\000';
        for i = 0 to n - 1 do
          t.parallel_buf.(i) <- Bytes.get b i
        done;
        Mpisim.Comm.compute t.comm (serialization_cost ~bytes:n);
        n
      end
      else 0
    in
    let size_box = [| size |] in
    Mpisim.Collectives.bcast t.comm D.int size_box ~root;
    let size = size_box.(0) in
    if (not master) && size > Array.length t.parallel_buf then
      t.parallel_buf <- Array.make (2 * size) '\000';
    mpi_broadcast_raw t t.parallel_buf ~count:size ~root;
    if master then obj
    else begin
      Mpisim.Comm.compute t.comm (serialization_cost ~bytes:size);
      let b = Bytes.init size (Array.get t.parallel_buf) in
      Serde.Codec.decode model_codec b
    end
end

(* ------------------------------------------------------------------ *)
(* After: the layer collapses to KaMPIng calls (Fig. 11 bottom).       *)
(* ------------------------------------------------------------------ *)

module After = struct
  type t = Kamping.Comm.t

  let create comm = Kamping.Comm.wrap comm
  let mpi_broadcast t ~root obj = Kamping.Comm.bcast_serialized ~root t model_codec obj
end

(* ------------------------------------------------------------------ *)
(* The synthetic driver: a likelihood search issuing the RAxML call mix *)
(* ------------------------------------------------------------------ *)

type stats = { iterations : int; final_logl : float; sim_seconds : float }

(* Each iteration: local likelihood work, an allreduce of the likelihood,
   and every [bcast_every] iterations a model broadcast from the current
   best worker — roughly 700 calls/s at the default work size. *)
let search ~variant ~iterations ~taxa comm =
  let start = Mpisim.Comm.now comm in
  let bcast : root:int -> model -> model =
    match variant with
    | `Before ->
        let layer = Before.create comm in
        Before.mpi_broadcast layer
    | `After ->
        let layer = After.create comm in
        After.mpi_broadcast layer
  in
  let model = ref (make_model ~taxa ~seed:7) in
  let r = Mpisim.Comm.rank comm in
  let best = ref neg_infinity in
  for i = 1 to iterations do
    (* local likelihood evaluation: ~1.4 ms of numerics *)
    Mpisim.Comm.compute comm 1.4e-3;
    let local_logl = -1000.0 -. (1.0 /. float_of_int ((i * (r + 1)) + 1)) in
    let out = [| 0.0 |] in
    Mpisim.Collectives.allreduce comm D.float Mpisim.Op.float_max ~sendbuf:[| local_logl |]
      ~recvbuf:out ~count:1;
    best := Float.max !best out.(0);
    if i mod 2 = 0 then begin
      (* the best worker publishes its model *)
      let root = i mod Mpisim.Comm.size comm in
      model := bcast ~root { !model with logl = !best }
    end
  done;
  { iterations; final_logl = !best; sim_seconds = Mpisim.Comm.now comm -. start }
