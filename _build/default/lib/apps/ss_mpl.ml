(* Sample sort against the MPL-style interface: every buffer needs an
   explicit layout object, and the variable-size exchange takes MPL's
   Alltoallw path (the performance trap measured in Fig. 8). *)

module M = Bindings.Mpl
module D = Mpisim.Datatype

let sort raw data =
  let comm = M.wrap raw in
  let p = M.size comm and r = M.rank comm in
  let k = Ss_common.num_samples p in
  let lsamples = Ss_common.draw_samples ~rank:r ~seed:17 data k in
  let gsamples = Array.make (p * k) 0 in
  M.allgather comm D.int lsamples gsamples ~count:k;
  Array.sort compare gsamples;
  let splitters = Ss_common.select_splitters gsamples p in
  Ss_common.local_sort raw data;
  let scounts = Ss_common.bucket_counts data splitters p in
  Ss_common.charge_partition raw (Array.length data);
  let sdispls = Ss_common.exclusive_scan scounts in
  let count_send = Array.make p 0 in
  let count_recv = Array.make p 0 in
  Array.blit scounts 0 count_send 0 p;
  M.alltoall comm D.int count_send count_recv ~count:1;
  let rcounts = count_recv in
  let rdispls = Ss_common.exclusive_scan rcounts in
  let total = rdispls.(p - 1) + rcounts.(p - 1) in
  let recvbuf = Array.make (max total 1) 0 in
  let send_layouts =
    Array.init p (fun d -> M.contiguous_layout ~displ:sdispls.(d) ~count:scounts.(d) ())
  in
  let recv_layouts =
    Array.init p (fun s -> M.contiguous_layout ~displ:rdispls.(s) ~count:rcounts.(s) ())
  in
  M.alltoallv comm D.int data send_layouts recvbuf recv_layouts;
  let result = Array.sub recvbuf 0 total in
  Ss_common.local_sort raw result;
  result
