(* Sample sort with KaMPIng (paper Fig. 7): the collectives collapse to
   one-liners with inferred counts and results by value. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

let sort comm data =
  let kc = K.wrap comm in
  let p = K.size kc and r = K.rank kc in
  let lsamples = Ss_common.draw_samples ~rank:r ~seed:17 data (Ss_common.num_samples p) in
  let gsamples = V.to_array (K.allgather kc D.int ~send_buf:(V.of_array lsamples)) in
  Array.sort compare gsamples;
  let splitters = Ss_common.select_splitters gsamples p in
  Ss_common.local_sort comm data;
  let send_counts = Ss_common.bucket_counts data splitters p in
  Ss_common.charge_partition comm (Array.length data);
  let res = K.alltoallv kc D.int ~send_buf:(V.of_array data) ~send_counts in
  let result = V.to_array res.K.recv_buf in
  Ss_common.local_sort comm result;
  result
