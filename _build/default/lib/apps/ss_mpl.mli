(** Sample sort against the MPL style: explicit layout objects everywhere
    and the variable-size exchange on MPL's Alltoallw path. *)

(** [sort comm data] returns this rank's slice of the globally sorted
    multiset formed by all ranks' inputs. *)
val sort : Mpisim.Comm.t -> int array -> int array
