lib/apps/bfs_common.ml: Array Ds Graphgen Hashtbl Kamping Mpisim
