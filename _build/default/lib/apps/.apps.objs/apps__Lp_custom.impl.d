lib/apps/lp_custom.ml: Array Lp_common Mpisim Ss_common
