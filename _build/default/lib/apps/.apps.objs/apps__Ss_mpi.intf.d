lib/apps/ss_mpi.mli: Mpisim
