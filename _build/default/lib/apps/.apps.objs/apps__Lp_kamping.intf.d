lib/apps/lp_kamping.mli: Graphgen Lp_common Mpisim
