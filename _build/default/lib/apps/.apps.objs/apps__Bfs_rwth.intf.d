lib/apps/bfs_rwth.mli: Graphgen Mpisim
