lib/apps/bfs_boost.ml: Array Bfs_common Bindings Ds List Mpisim Ss_common
