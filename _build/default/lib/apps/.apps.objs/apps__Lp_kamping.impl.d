lib/apps/lp_kamping.ml: Array Ds Kamping Lp_common Mpisim
