lib/apps/ss_common.ml: Array Int64 Kamping Mpisim Simnet
