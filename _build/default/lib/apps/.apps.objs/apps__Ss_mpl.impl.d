lib/apps/ss_mpl.ml: Array Bindings Mpisim Ss_common
