lib/apps/raxml_layer.mli: Mpisim Serde
