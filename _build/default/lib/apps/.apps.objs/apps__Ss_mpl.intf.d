lib/apps/ss_mpl.mli: Mpisim
