lib/apps/ss_rwth.mli: Mpisim
