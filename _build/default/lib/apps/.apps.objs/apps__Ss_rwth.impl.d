lib/apps/ss_rwth.ml: Array Bindings Mpisim Ss_common
