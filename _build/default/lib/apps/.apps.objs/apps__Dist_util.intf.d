lib/apps/dist_util.mli: Ds Kamping Mpisim
