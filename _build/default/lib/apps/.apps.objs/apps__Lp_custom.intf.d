lib/apps/lp_custom.mli: Graphgen Mpisim
