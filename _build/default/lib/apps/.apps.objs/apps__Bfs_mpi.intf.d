lib/apps/bfs_mpi.mli: Graphgen Mpisim
