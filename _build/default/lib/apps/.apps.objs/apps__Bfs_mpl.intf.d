lib/apps/bfs_mpl.mli: Graphgen Mpisim
