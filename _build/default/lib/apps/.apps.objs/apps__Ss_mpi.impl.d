lib/apps/ss_mpi.ml: Array Mpisim Ss_common
