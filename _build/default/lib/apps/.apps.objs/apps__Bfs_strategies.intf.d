lib/apps/bfs_strategies.mli: Graphgen Mpisim
