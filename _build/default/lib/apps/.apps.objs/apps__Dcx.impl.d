lib/apps/dcx.ml: Array Char Dist_util Ds Fun Kamping Kamping_plugins Mpisim
