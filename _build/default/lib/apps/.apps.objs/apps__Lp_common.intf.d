lib/apps/lp_common.mli: Graphgen Hashtbl Mpisim
