lib/apps/ss_common.mli: Mpisim
