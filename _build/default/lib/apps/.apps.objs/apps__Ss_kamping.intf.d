lib/apps/ss_kamping.mli: Mpisim
