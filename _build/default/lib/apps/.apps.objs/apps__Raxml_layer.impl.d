lib/apps/raxml_layer.ml: Array Bytes Float Int64 Kamping Mpisim Serde Simnet
