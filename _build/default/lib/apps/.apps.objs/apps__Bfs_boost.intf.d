lib/apps/bfs_boost.mli: Graphgen Mpisim
