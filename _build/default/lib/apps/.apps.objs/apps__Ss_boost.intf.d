lib/apps/ss_boost.mli: Mpisim
