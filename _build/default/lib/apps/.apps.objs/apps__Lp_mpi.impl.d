lib/apps/lp_mpi.ml: Array Lp_common Mpisim Ss_common
