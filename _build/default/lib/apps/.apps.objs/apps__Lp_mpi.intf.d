lib/apps/lp_mpi.mli: Graphgen Lp_common Mpisim
