lib/apps/ss_boost.ml: Array Bindings List Mpisim Ss_common
