lib/apps/suffix_array.ml: Array Char Ds Fun Graphgen Hashtbl Kamping Kamping_plugins Mpisim String
