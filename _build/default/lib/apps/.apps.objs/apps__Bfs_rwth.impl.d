lib/apps/bfs_rwth.ml: Array Bfs_common Bindings Ds Mpisim Ss_common
