lib/apps/suffix_array.mli: Mpisim
