lib/apps/lp_common.ml: Array Graphgen Hashtbl Kamping List Mpisim Ss_common
