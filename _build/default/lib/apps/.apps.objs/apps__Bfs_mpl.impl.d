lib/apps/bfs_mpl.ml: Array Bfs_common Bindings Ds Mpisim Ss_common
