lib/apps/bfs_common.mli: Ds Graphgen Hashtbl Mpisim
