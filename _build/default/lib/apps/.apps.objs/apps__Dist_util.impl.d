lib/apps/dist_util.ml: Array Ds Graphgen Hashtbl Kamping Mpisim
