lib/apps/bfs_kamping.ml: Bfs_common Kamping Mpisim
