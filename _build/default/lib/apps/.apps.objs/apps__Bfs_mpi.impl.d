lib/apps/bfs_mpi.ml: Array Bfs_common Ds Mpisim
