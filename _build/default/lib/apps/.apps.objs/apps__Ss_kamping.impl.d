lib/apps/ss_kamping.ml: Array Ds Kamping Mpisim Ss_common
