lib/apps/dcx.mli: Kamping
