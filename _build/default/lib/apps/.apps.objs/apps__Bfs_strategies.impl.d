lib/apps/bfs_strategies.ml: Array Bfs_common Ds Graphgen Hashtbl Kamping Kamping_plugins List Mpisim Ss_common
