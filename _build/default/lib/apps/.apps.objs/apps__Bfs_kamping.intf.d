lib/apps/bfs_kamping.mli: Graphgen Mpisim
