(** Label propagation ghost pull with KaMPIng: static receive counts feed
    the zero-overhead alltoallv path (the 127-LoC role of Sec. IV-B). *)

val pull : Mpisim.Comm.t -> Lp_common.ghosts -> int array -> int array -> unit

val run :
  Mpisim.Comm.t -> Graphgen.Distgraph.t -> iterations:int -> max_cluster_size:int -> int array
