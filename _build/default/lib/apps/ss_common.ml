(* Shared, binding-agnostic parts of the sample sort implementations
   (paper Sec. IV-A: "all shared parts of the code have been extracted to
   functions").  Every binding variant below uses exactly these helpers, so
   the variant files measure only the communication code. *)

let undef = min_int

(* 16 log2 p + 1 samples per rank, the textbook choice from Fig. 7. *)
let num_samples p =
  let logp = int_of_float (ceil (log (float_of_int (max 2 p)) /. log 2.0)) in
  (16 * logp) + 1

let generate_input ~rank ~n_per_rank ~seed =
  let rng = Simnet.Rng.split (Simnet.Rng.create (Int64.of_int seed)) rank in
  Array.init n_per_rank (fun _ -> Simnet.Rng.int rng max_int)

let draw_samples ~rank ~seed data k =
  let n = Array.length data in
  if n = 0 then [||]
  else begin
    let rng = Simnet.Rng.split (Simnet.Rng.create (Int64.of_int (seed lxor 0x5a5a))) rank in
    Array.init k (fun _ -> data.(Simnet.Rng.int rng n))
  end

(* p-1 equidistant splitters out of the sorted global sample. *)
let select_splitters gsamples p =
  let m = Array.length gsamples in
  Array.init (p - 1) (fun i -> gsamples.(min (m - 1) ((i + 1) * m / p)))

(* With [data] sorted, bucket i is the contiguous run between splitters;
   returns per-bucket counts. *)
let bucket_counts data splitters p =
  let counts = Array.make p 0 in
  let bucket = ref 0 in
  Array.iter
    (fun x ->
      while !bucket < p - 1 && splitters.(!bucket) < x do
        incr bucket
      done;
      counts.(!bucket) <- counts.(!bucket) + 1)
    data;
  counts

let exclusive_scan counts =
  let d = Array.make (Array.length counts) 0 in
  for i = 1 to Array.length counts - 1 do
    d.(i) <- d.(i - 1) + counts.(i - 1)
  done;
  d

let local_sort comm data =
  Array.sort compare data;
  Mpisim.Comm.compute comm (Kamping.Costs.sort (Array.length data))

let charge_partition comm n = Mpisim.Comm.compute comm (Kamping.Costs.linear n)
