(* Utilities for block-distributed global arrays, shared by the text-index
   algorithms (prefix doubling, DCX): shifted fetches, value routing by
   index owner, and dense ranking of a globally sorted sequence.  All
   exchanges derive their counts from the block layout, so the underlying
   alltoallv calls run on KaMPIng's zero-overhead path where possible. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

let block_of ~n ~p r = Graphgen.Distgraph.block_range ~global_n:n ~comm_size:p r

let owner_of ~n ~p q =
  let base = n / p and extra = n mod p in
  if base = 0 then min q (p - 1)
  else begin
    let boundary = extra * (base + 1) in
    if q < boundary then q / (base + 1) else extra + ((q - boundary) / base)
  end

(* [fetch_shifted comm ~n ~k ~fill dt local] — [local] is this rank's block
   of a global n-element array; the result holds the elements k positions
   ahead ([fill] past the end).  Counts are computed locally on both
   sides. *)
let fetch_shifted comm ~n ~k ~fill dt (local : 'a array) =
  let p = K.size comm and r = K.rank comm in
  let first, local_n = block_of ~n ~p r in
  let send_counts = Array.make p 0 in
  let recv_counts = Array.make p 0 in
  for t = 0 to p - 1 do
    let tf, tl = block_of ~n ~p t in
    let lo = max (tf + k) first and hi = min (tf + tl + k) (first + local_n) in
    if hi > lo then send_counts.(t) <- hi - lo;
    let lo = max (first + k) tf and hi = min (first + local_n + k) (tf + tl) in
    if hi > lo then recv_counts.(t) <- hi - lo
  done;
  let send_buf = V.create () in
  for t = 0 to p - 1 do
    let tf, tl = block_of ~n ~p t in
    let lo = max (tf + k) first and hi = min (tf + tl + k) (first + local_n) in
    for q = lo to hi - 1 do
      V.push send_buf local.(q - first)
    done
  done;
  let res = K.alltoallv ~recv_counts comm dt ~send_buf ~send_counts in
  let shifted = Array.make (max local_n 1) fill in
  V.iteri (fun i x -> shifted.(i) <- x) res.K.recv_buf;
  shifted

(* [route comm ~n dt pairs] delivers each [(index, value)] pair to the rank
   owning [index] in the block layout of an n-element array. *)
let route comm ~n dt (pairs : (int * 'v) V.t) =
  let p = K.size comm in
  let buckets : (int, (int * 'v) V.t) Hashtbl.t = Hashtbl.create 8 in
  V.iter
    (fun ((idx, _) as pair) ->
      let o = owner_of ~n ~p idx in
      match Hashtbl.find_opt buckets o with
      | Some b -> V.push b pair
      | None -> Hashtbl.add buckets o (V.of_list [ pair ]))
    pairs;
  let flat = Kamping.Flatten.flatten ~comm_size:p buckets in
  (K.alltoallv_flat comm (D.pair D.int dt) flat).K.recv_buf

(* Pass each slice's last element along the rank chain (empty slices
   forward what they received) so cross-boundary comparisons work. *)
let chain_last comm dt ~none (items : 'k V.t) =
  let p = K.size comm and r = K.rank comm in
  let prev = if r > 0 then V.get (K.recv ~count:1 comm dt ~src:(r - 1)) 0 else none in
  let mine = if V.is_empty items then prev else V.get items (V.length items - 1) in
  if r < p - 1 then K.send comm dt ~send_buf:(V.of_list [ mine ]) ~dst:(r + 1);
  prev

(* [dense_ranks comm dt ~eq ~none keys] — [keys] is this rank's slice of a
   globally sorted sequence; returns [(ranks, total_distinct, my_offset)]
   where [ranks.(j)] is the 0-based dense rank of element j (equal keys
   share a rank), [total_distinct] counts distinct keys globally, and
   [my_offset] is the global position of this slice's first element. *)
let dense_ranks comm dt ~eq ~none (keys : 'k V.t) =
  let m = V.length keys in
  let prev = chain_last comm dt ~none keys in
  let flags = Array.make (max m 1) 0 in
  let last = ref prev in
  for j = 0 to m - 1 do
    let k = V.get keys j in
    if not (eq k !last) then flags.(j) <- 1;
    last := k
  done;
  K.compute comm (Kamping.Costs.linear m);
  let local_sum = Array.fold_left ( + ) 0 flags in
  let flags_before = K.exscan_single ~init:0 comm D.int Mpisim.Op.int_sum local_sum in
  let total_distinct = K.allreduce_single comm D.int Mpisim.Op.int_sum local_sum in
  let my_offset = K.exscan_single ~init:0 comm D.int Mpisim.Op.int_sum m in
  let ranks = Array.make (max m 1) 0 in
  let acc = ref flags_before in
  for j = 0 to m - 1 do
    acc := !acc + flags.(j);
    ranks.(j) <- !acc - 1
  done;
  (ranks, total_distinct, my_offset)
