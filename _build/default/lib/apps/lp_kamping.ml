(* Label propagation ghost pull with KaMPIng: the static receive counts go
   straight into the alltoallv call, putting it on the zero-overhead path
   while still skipping all displacement bookkeeping (the 127-LoC-role
   variant of Sec. IV-B). *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

let pull comm (ghosts : Lp_common.ghosts) labels ghost_values =
  let kc = K.wrap comm in
  let p = K.size kc in
  let send_counts = Array.make p 0 in
  let send_buf = V.create () in
  Array.iter
    (fun (requester, ids) ->
      send_counts.(requester) <- Array.length ids;
      Array.iter (fun gid -> V.push send_buf labels.(gid - ghosts.Lp_common.first_vertex)) ids)
    ghosts.Lp_common.send_to;
  let recv_counts = Array.make p 0 in
  Array.iter (fun (o, ids) -> recv_counts.(o) <- Array.length ids) ghosts.Lp_common.need;
  let res = K.alltoallv ~recv_counts kc D.int ~send_buf ~send_counts in
  V.iteri (fun slot l -> ghost_values.(slot) <- l) res.K.recv_buf

let run comm graph ~iterations ~max_cluster_size =
  Lp_common.run comm graph ~pull ~iterations ~max_cluster_size
