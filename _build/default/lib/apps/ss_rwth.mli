(** Sample sort against the RWTH-MPI style: convenience overloads for the
    regular collectives, C-style mirroring for alltoallv. *)

(** [sort comm data] returns this rank's slice of the globally sorted
    multiset formed by all ranks' inputs. *)
val sort : Mpisim.Comm.t -> int array -> int array
