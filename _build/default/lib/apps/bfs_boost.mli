(** BFS frontier exchange against the Boost.MPI style (no alltoallv: the
    payload travels point-to-point). *)

(** [bfs comm graph ~src] returns the hop distances of this rank's local
    vertices. *)
val bfs : Mpisim.Comm.t -> Graphgen.Distgraph.t -> src:int -> int array
