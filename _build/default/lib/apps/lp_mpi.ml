(* Label propagation ghost pull against the plain MPI interface: all count
   and displacement bookkeeping spelled out per iteration (the 154-LoC-role
   variant of Sec. IV-B). *)

module C = Mpisim.Collectives
module D = Mpisim.Datatype
let pull comm (ghosts : Lp_common.ghosts) labels ghost_values =
  let p = Mpisim.Comm.size comm in
  (* owners ship the current labels of the statically requested vertices *)
  let scounts = Array.make p 0 in
  Array.iter
    (fun (requester, ids) -> scounts.(requester) <- Array.length ids)
    ghosts.Lp_common.send_to;
  let sdispls = Ss_common.exclusive_scan scounts in
  let total_send = Array.fold_left ( + ) 0 scounts in
  let sendbuf = Array.make (max total_send 1) 0 in
  let cursor = ref 0 in
  Array.iter
    (fun (_, ids) ->
      Array.iter
        (fun gid ->
          sendbuf.(!cursor) <- labels.(gid - ghosts.Lp_common.first_vertex);
          incr cursor)
        ids)
    ghosts.Lp_common.send_to;
  (* receive counts follow from the static request lists *)
  let rcounts = Array.make p 0 in
  Array.iter (fun (o, ids) -> rcounts.(o) <- Array.length ids) ghosts.Lp_common.need;
  let rdispls = Ss_common.exclusive_scan rcounts in
  let total_recv = Array.fold_left ( + ) 0 rcounts in
  let recvbuf = Array.make (max total_recv 1) 0 in
  C.alltoallv comm D.int ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls;
  Array.blit recvbuf 0 ghost_values 0 total_recv

let run comm graph ~iterations ~max_cluster_size =
  Lp_common.run comm graph ~pull ~iterations ~max_cluster_size
