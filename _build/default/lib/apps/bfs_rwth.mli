(** BFS frontier exchange against the RWTH-MPI style — the closest
    competitor in Table I. *)

(** [bfs comm graph ~src] returns the hop distances of this rank's local
    vertices. *)
val bfs : Mpisim.Comm.t -> Graphgen.Distgraph.t -> src:int -> int array
