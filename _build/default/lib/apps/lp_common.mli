(** Shared pieces of the size-constrained label propagation benchmark
    (paper Sec. IV-B, the dKaMinPar component): ghost-vertex bookkeeping
    and the local compute sweep.  The three variants differ only in how
    ghost labels are pulled each iteration. *)

type ghosts = {
  need : (int * int array) array;  (** (owner, my needed global ids) *)
  send_to : (int * int array) array;  (** (requester, my ids to ship) *)
  ghost_index : (int, int) Hashtbl.t;  (** global id -> ghost slot *)
  ghost_count : int;
  first_vertex : int;
}

(** [setup_ghosts comm graph] exchanges the static request lists once. *)
val setup_ghosts : Mpisim.Comm.t -> Graphgen.Distgraph.t -> ghosts

(** [init_labels graph] starts every vertex in its own cluster. *)
val init_labels : Graphgen.Distgraph.t -> int array

(** [sweep comm graph labels ~ghost_label ~max_cluster_size] performs one
    local label-propagation pass; returns the number of changed labels. *)
val sweep :
  Mpisim.Comm.t ->
  Graphgen.Distgraph.t ->
  int array ->
  ghost_label:(int -> int) ->
  max_cluster_size:int ->
  int

(** [run comm graph ~pull ~iterations ~max_cluster_size] is the generic
    driver; [pull] refreshes the ghost label values before each sweep. *)
val run :
  Mpisim.Comm.t ->
  Graphgen.Distgraph.t ->
  pull:(Mpisim.Comm.t -> ghosts -> int array -> int array -> unit) ->
  iterations:int ->
  max_cluster_size:int ->
  int array
