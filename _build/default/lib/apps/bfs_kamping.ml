(* BFS frontier exchange with KaMPIng (paper Fig. 9): with_flattened plus
   a one-line alltoallv, and allreduce_single for the termination test. *)

module K = Kamping.Comm
module D = Mpisim.Datatype

let all_empty (st : Bfs_common.state) empty =
  K.allreduce_single (K.wrap st.Bfs_common.comm) D.bool Mpisim.Op.bool_and empty

let exchange (st : Bfs_common.state) remote =
  let kc = K.wrap st.Bfs_common.comm in
  let flat = Kamping.Flatten.flatten ~comm_size:(K.size kc) remote in
  (K.alltoallv_flat kc D.int flat).K.recv_buf

let bfs comm graph ~src =
  let st = Bfs_common.init comm graph src in
  Bfs_common.run st ~exchange ~all_empty
