(** Sample sort against the Boost.MPI style.  Boost has no
    [MPI_Alltoallv] binding (paper Sec. II), so the bucket exchange is a
    hand-written point-to-point pattern. *)

(** [sort comm data] returns this rank's slice of the globally sorted
    multiset formed by all ranks' inputs. *)
val sort : Mpisim.Comm.t -> int array -> int array
