(* Shared parts of the size-constrained label propagation benchmark (paper
   Sec. IV-B, the dKaMinPar component): ghost-vertex bookkeeping and the
   local compute step.  The three variants (custom layer / plain MPI /
   KaMPIng) differ only in how ghost labels are pulled each iteration. *)

module G = Graphgen.Distgraph

type ghosts = {
  need : (int * int array) array;  (* (owner, my needed global ids), by owner *)
  send_to : (int * int array) array;  (* (requester, my global ids to ship) *)
  ghost_index : (int, int) Hashtbl.t;  (* global id -> slot in ghost value array *)
  ghost_count : int;
  first_vertex : int;  (* to translate own global ids to label indices *)
}

(* One-time setup: exchange the static request lists (who needs which of
   whose vertices).  This part is identical for all variants and uses the
   plain interface. *)
let setup_ghosts comm graph =
  let p = Mpisim.Comm.size comm in
  let wanted = Hashtbl.create 64 in
  for i = 0 to graph.G.local_n - 1 do
    G.iter_neighbors graph i (fun u -> if not (G.is_local graph u) then Hashtbl.replace wanted u ())
  done;
  let by_owner = Array.make p [] in
  Hashtbl.iter (fun u () -> by_owner.(G.owner graph u) <- u :: by_owner.(G.owner graph u)) wanted;
  let need =
    Array.to_list by_owner
    |> List.mapi (fun o ids -> (o, Array.of_list (List.sort compare ids)))
    |> List.filter (fun (_, ids) -> Array.length ids > 0)
    |> Array.of_list
  in
  (* ship the request lists to the owners *)
  let scounts = Array.make p 0 in
  Array.iter (fun (o, ids) -> scounts.(o) <- Array.length ids) need;
  let sdispls = Ss_common.exclusive_scan scounts in
  let sendbuf = Array.make (max 1 (Array.fold_left ( + ) 0 scounts)) 0 in
  Array.iter (fun (o, ids) -> Array.blit ids 0 sendbuf sdispls.(o) (Array.length ids)) need;
  let rcounts = Array.make p 0 in
  Mpisim.Collectives.alltoall comm Mpisim.Datatype.int ~sendbuf:scounts ~recvbuf:rcounts ~count:1;
  let rdispls = Ss_common.exclusive_scan rcounts in
  let total = rdispls.(p - 1) + rcounts.(p - 1) in
  let recvbuf = Array.make (max total 1) 0 in
  Mpisim.Collectives.alltoallv comm Mpisim.Datatype.int ~sendbuf ~scounts ~sdispls ~recvbuf
    ~rcounts ~rdispls;
  let send_to =
    List.init p (fun requester ->
        (requester, Array.sub recvbuf rdispls.(requester) rcounts.(requester)))
    |> List.filter (fun (_, ids) -> Array.length ids > 0)
    |> Array.of_list
  in
  let ghost_index = Hashtbl.create 64 in
  let slot = ref 0 in
  Array.iter
    (fun (_, ids) ->
      Array.iter
        (fun u ->
          Hashtbl.add ghost_index u !slot;
          incr slot)
        ids)
    need;
  { need; send_to; ghost_index; ghost_count = !slot; first_vertex = graph.G.first_vertex }

let init_labels graph = Array.init (max graph.G.local_n 1) (fun i -> G.global_of_local graph i)

(* One local sweep: every vertex adopts the most frequent neighbor label
   (ties to the smaller label) subject to the cluster-size budget tracked
   from locally visible members.  Returns the number of changed labels. *)
let sweep comm graph labels ~ghost_label ~max_cluster_size =
  let sizes = Hashtbl.create 64 in
  let bump l d =
    let cur = match Hashtbl.find_opt sizes l with Some x -> x | None -> 0 in
    Hashtbl.replace sizes l (cur + d)
  in
  Array.iteri (fun i l -> if i < graph.G.local_n then bump l 1) labels;
  let changes = ref 0 in
  let votes = Hashtbl.create 16 in
  for i = 0 to graph.G.local_n - 1 do
    Hashtbl.reset votes;
    G.iter_neighbors graph i (fun u ->
        let l = if G.is_local graph u then labels.(G.local_of_global graph u) else ghost_label u in
        let cur = match Hashtbl.find_opt votes l with Some x -> x | None -> 0 in
        Hashtbl.replace votes l (cur + 1));
    let best = ref labels.(i) and best_votes = ref 0 in
    Hashtbl.iter
      (fun l v -> if v > !best_votes || (v = !best_votes && l < !best) then begin
             best := l;
             best_votes := v
           end)
      votes;
    let size_ok =
      match Hashtbl.find_opt sizes !best with
      | Some s -> s < max_cluster_size
      | None -> true
    in
    if !best <> labels.(i) && size_ok then begin
      bump labels.(i) (-1);
      bump !best 1;
      labels.(i) <- !best;
      incr changes
    end
  done;
  Mpisim.Comm.compute comm (Kamping.Costs.per_edge (G.local_edges graph));
  Mpisim.Comm.compute comm (Kamping.Costs.hash_ops graph.G.local_n);
  !changes

(* The generic driver: [pull] fetches the current labels of all ghosts. *)
let run comm graph ~pull ~iterations ~max_cluster_size =
  let ghosts = setup_ghosts comm graph in
  let labels = init_labels graph in
  let ghost_values = Array.make (max ghosts.ghost_count 1) (-1) in
  let ghost_label u =
    match Hashtbl.find_opt ghosts.ghost_index u with
    | Some slot -> ghost_values.(slot)
    | None -> Mpisim.Errors.usage "label_prop: vertex %d is not a known ghost" u
  in
  for _ = 1 to iterations do
    pull comm ghosts labels ghost_values;
    ignore (sweep comm graph labels ~ghost_label ~max_cluster_size)
  done;
  labels
