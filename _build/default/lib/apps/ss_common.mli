(** Shared, binding-agnostic pieces of the sample sort benchmark
    (paper Sec. IV-A).  All binding variants use exactly these helpers, so
    the per-variant files measure only the communication code — the setup
    behind Table I's LoC numbers. *)

(** Sentinel for uninitialized slots. *)
val undef : int

(** [num_samples p] is the textbook sampling rate [16 log2 p + 1]. *)
val num_samples : int -> int

(** [generate_input ~rank ~n_per_rank ~seed] draws uniform random keys,
    deterministically per rank. *)
val generate_input : rank:int -> n_per_rank:int -> seed:int -> int array

(** [draw_samples ~rank ~seed data k] picks [k] random elements (with
    replacement; empty input yields no samples). *)
val draw_samples : rank:int -> seed:int -> int array -> int -> int array

(** [select_splitters gsamples p] picks the [p-1] equidistant splitters
    from the sorted global sample. *)
val select_splitters : int array -> int -> int array

(** [bucket_counts data splitters p] sizes the per-destination buckets of a
    locally sorted array. *)
val bucket_counts : int array -> int array -> int -> int array

(** [exclusive_scan counts] is the displacement array of [counts]. *)
val exclusive_scan : int array -> int array

(** [local_sort comm data] sorts in place and charges the comparison-sort
    cost to the simulated clock. *)
val local_sort : Mpisim.Comm.t -> int array -> unit

(** [charge_partition comm n] charges one linear pass over [n] elements. *)
val charge_partition : Mpisim.Comm.t -> int -> unit
