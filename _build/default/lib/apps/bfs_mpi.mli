(** BFS frontier exchange against plain MPI — the 46-LoC-role baseline of
    Table I. *)

(** [bfs comm graph ~src] returns the hop distances of this rank's local
    vertices. *)
val bfs : Mpisim.Comm.t -> Graphgen.Distgraph.t -> src:int -> int array
