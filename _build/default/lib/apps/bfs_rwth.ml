(* BFS frontier exchange against the RWTH-MPI style: convenience overloads
   for the regular parts, C mirroring for the irregular exchange — the
   closest competitor in Table I (32 LoC vs. KaMPIng's 22). *)

module R = Bindings.Rwth_mpi
module D = Mpisim.Datatype
module V = Ds.Vec

let all_empty (st : Bfs_common.state) empty =
  R.allreduce (R.wrap st.Bfs_common.comm) D.bool Mpisim.Op.bool_and empty

let exchange (st : Bfs_common.state) remote =
  let comm = R.wrap st.Bfs_common.comm in
  let p = R.size comm in
  let data, scounts = Bfs_common.flatten_buckets p remote in
  let sdispls = Ss_common.exclusive_scan scounts in
  let rcounts = R.alltoall comm D.int scounts in
  let rdispls = Ss_common.exclusive_scan rcounts in
  let total = rdispls.(p - 1) + rcounts.(p - 1) in
  let recvbuf = Array.make (max total 1) 0 in
  R.alltoallv comm D.int ~sendbuf:(V.unsafe_data data) ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls;
  V.unsafe_of_array recvbuf total

let bfs comm graph ~src =
  let st = Bfs_common.init comm graph src in
  Bfs_common.run st ~exchange ~all_empty
