(* BFS frontier exchange against the MPL style: explicit layout objects for
   every window, and the exchange rides MPL's Alltoallw path — considerably
   slower on all graph configurations (Sec. IV-B). *)

module M = Bindings.Mpl
module D = Mpisim.Datatype
module V = Ds.Vec

let all_empty (st : Bfs_common.state) empty =
  M.allreduce (M.wrap st.Bfs_common.comm) D.bool Mpisim.Op.bool_and empty

let exchange (st : Bfs_common.state) remote =
  let comm = M.wrap st.Bfs_common.comm in
  let p = M.size comm in
  let data, scounts = Bfs_common.flatten_buckets p remote in
  let sdispls = Ss_common.exclusive_scan scounts in
  let count_recv = Array.make p 0 in
  M.alltoall comm D.int scounts count_recv ~count:1;
  let rcounts = count_recv in
  let rdispls = Ss_common.exclusive_scan rcounts in
  let total = rdispls.(p - 1) + rcounts.(p - 1) in
  let recvbuf = Array.make (max total 1) 0 in
  let send_layouts =
    Array.init p (fun d -> M.contiguous_layout ~displ:sdispls.(d) ~count:scounts.(d) ())
  in
  let recv_layouts =
    Array.init p (fun s -> M.contiguous_layout ~displ:rdispls.(s) ~count:rcounts.(s) ())
  in
  M.alltoallv comm D.int (V.unsafe_data data) send_layouts recvbuf recv_layouts;
  V.unsafe_of_array recvbuf total

let bfs comm graph ~src =
  let st = Bfs_common.init comm graph src in
  Bfs_common.run st ~exchange ~all_empty
