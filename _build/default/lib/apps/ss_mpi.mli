(** Sample sort against the plain (C-style) MPI interface — the verbose
    baseline of Table I and Fig. 8. *)

(** [sort comm data] returns this rank's slice of the globally sorted
    multiset formed by all ranks' inputs. *)
val sort : Mpisim.Comm.t -> int array -> int array
