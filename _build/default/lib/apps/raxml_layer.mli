(** The RAxML-NG integration benchmark (paper Sec. IV-C, Fig. 11): the
    hand-written serialize+broadcast abstraction layer ("before") against
    the KaMPIng one-liner ("after"), driven by a synthetic likelihood
    search at the original MPI call rate. *)

(** The model state travelling between workers. *)
type model = { branch_lengths : float array; alpha : float; logl : float }

(** Serde codec of {!model} (the role of RAxML's BinaryStream). *)
val model_codec : model Serde.Codec.t

(** [make_model ~taxa ~seed] builds a deterministic pseudo-model. *)
val make_model : taxa:int -> seed:int -> model

(** The original hand-written layer: serialize into a scratch buffer,
    broadcast the size, broadcast the bytes (Fig. 11 top). *)
module Before : sig
  type t

  val create : Mpisim.Comm.t -> t
  val mpi_broadcast : t -> root:int -> model -> model
end

(** The same functionality as one KaMPIng call (Fig. 11 bottom). *)
module After : sig
  type t

  val create : Mpisim.Comm.t -> t
  val mpi_broadcast : t -> root:int -> model -> model
end

type stats = { iterations : int; final_logl : float; sim_seconds : float }

(** [search ~variant ~iterations ~taxa comm] runs the synthetic likelihood
    search with the chosen abstraction layer. *)
val search : variant:[ `Before | `After ] -> iterations:int -> taxa:int -> Mpisim.Comm.t -> stats
