(* Distributed suffix-array construction with DC3 (the DCX algorithm of
   Kärkkäinen-Sanders-Burkhardt for X = 3; paper Sec. IV-A, compared
   against pDCX).

   All arrays are block-distributed.  One level works as follows:
   1. fetch the two following characters for every local position
      (alltoallv with locally derivable counts);
   2. sort the (3-gram, position) tuples of the sample positions
      (i mod 3 <> 0) with the sorter plugin and name them densely;
   3. if names collide, build the recursive text (names arranged as all
      i=1 mod 3 positions followed by all i=2 mod 3 positions), recurse on
      it, and turn its suffix array into unique sample ranks — including
      the canonical dummy sample at position n when n = 1 (mod 3), which
      keeps the recursive comparisons aligned (Karkkainen-Sanders);
   4. fetch sample ranks at i+1 and i+2 for every local position and sort
      {e all} suffixes with the standard DC3 comparator (rank-rank for two
      samples; char/rank comparisons otherwise);
   5. the sorted order is the suffix array; route it back to the block
      owners.

   The recursion bottoms out by gathering tiny subproblems on rank 0. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec
module U = Dist_util

let dt_sample = D.pair (D.triple D.int D.int D.int) D.int
let dt_merge = D.pair (D.triple D.int D.int D.int) (D.triple D.int D.int D.int)

(* Sequential suffix sort for the recursion's base case. *)
let sequential_sa (text : int array) =
  let n = Array.length text in
  let idx = Array.init n Fun.id in
  let rec cmp a b =
    if a >= n && b >= n then 0
    else if a >= n then -1
    else if b >= n then 1
    else if text.(a) <> text.(b) then compare text.(a) text.(b)
    else cmp (a + 1) (b + 1)
  in
  Array.sort cmp idx;
  idx

(* The DC3 merge comparator over (i, c_i, c_i+1) x (rank_i, rank_i+1,
   rank_i+2) tuples; ranks are 1-based at sample positions and 0 at
   non-sample or out-of-range positions. *)
let dc3_compare ((i1, a0, a1), (ra0, ra1, ra2)) ((i2, b0, b1), (rb0, rb1, rb2)) =
  if i1 = i2 then 0
  else begin
    let m1 = i1 mod 3 and m2 = i2 mod 3 in
    if m1 <> 0 && m2 <> 0 then compare ra0 rb0
    else if m1 = 0 && m2 = 0 then compare (a0, ra1, i1) (b0, rb1, i2)
    else begin
      let mixed (c0, c1, r1, r2, m) (d0, d1, s1, s2, mo) =
        ignore mo;
        (* nonsample on the left, sample (m = 1 or 2) on the right *)
        if m = 1 then compare (c0, r1) (d0, s1) else compare (c0, c1, r2) (d0, d1, s2)
      in
      if m1 = 0 then mixed (a0, a1, ra1, ra2, m2) (b0, b1, rb1, rb2, m1)
      else -mixed (b0, b1, rb1, rb2, m1) (a0, a1, ra1, ra2, m2)
    end
  end

let rec build_ints comm (text : int array) ~n =
  let p = K.size comm and r = K.rank comm in
  let first, local_n = U.block_of ~n ~p r in
  if n <= max 64 (3 * p) then begin
    (* base case: solve sequentially on rank 0 *)
    let whole =
      (K.gatherv comm D.int ~send_buf:(V.unsafe_of_array (Array.sub text 0 local_n) local_n))
        .K.recv_buf
    in
    let sa = if r = 0 then sequential_sa (V.to_array whole) else [||] in
    if r = 0 then K.compute comm (Kamping.Costs.sort n);
    let counts = Array.init p (fun t -> snd (U.block_of ~n ~p t)) in
    let mine =
      K.scatterv
        ?send_buf:(if r = 0 then Some (V.unsafe_of_array sa n) else None)
        ?send_counts:(if r = 0 then Some counts else None)
        ~recv_count:local_n comm D.int
    in
    V.to_array mine
  end
  else begin
    let c1 = U.fetch_shifted comm ~n ~k:1 ~fill:0 D.int text in
    let c2 = U.fetch_shifted comm ~n ~k:2 ~fill:0 D.int text in
    (* 2. sort and name the sample 3-grams.  When n = 1 (mod 3), the
       canonical dummy sample at position n (triple (0,0,0)) joins the
       1-mod block so the recursive string compares correctly. *)
    let dummy = n mod 3 = 1 in
    let samples = V.create () in
    for j = 0 to local_n - 1 do
      let i = first + j in
      if i mod 3 <> 0 then V.push samples ((text.(j), c1.(j), c2.(j)), i)
    done;
    if dummy && r = p - 1 then V.push samples ((0, 0, 0), n);
    let sorted = Kamping_plugins.Sorter.sort ~seed:0xdc3 comm dt_sample ~cmp:compare samples in
    let keys = V.map fst sorted in
    let names, distinct, _ =
      U.dense_ranks comm (D.triple D.int D.int D.int)
        ~eq:(fun a b -> a = b)
        ~none:(-2, -2, -2) keys
    in
    let n1 = ((n + 1) / 3) + (if dummy then 1 else 0) and n2 = n / 3 in
    let nr = n1 + n2 in
    let rec_index i = if i mod 3 = 1 then (i - 1) / 3 else n1 + ((i - 2) / 3) in
    let sample_rank_pairs =
      if distinct = nr then begin
        (* all names unique: they already are the sample ranks *)
        let pairs = V.create () in
        V.iteri (fun j (_, i) -> V.push pairs (i, names.(j) + 1)) sorted;
        pairs
      end
      else begin
        (* 3. recurse on the name string *)
        let name_pairs = V.create () in
        V.iteri (fun j (_, i) -> V.push name_pairs (rec_index i, names.(j) + 1)) sorted;
        let routed = U.route comm ~n:nr D.int name_pairs in
        let rfirst, rlocal = U.block_of ~n:nr ~p r in
        let rec_text = Array.make (max rlocal 1) 0 in
        V.iter (fun (j, name) -> rec_text.(j - rfirst) <- name) routed;
        let sa_r = build_ints comm rec_text ~n:nr in
        (* invert: rank of rec position sa_r.(j) is its global SA slot *)
        let isa_pairs = V.init rlocal (fun j -> (sa_r.(j), rfirst + j + 1)) in
        let routed = U.route comm ~n:nr D.int isa_pairs in
        (* translate rec indices back to text positions *)
        let pairs = V.create () in
        V.iter
          (fun (j, rank) ->
            let i = if j < n1 then (3 * j) + 1 else (3 * (j - n1)) + 2 in
            V.push pairs (i, rank))
          routed;
        pairs
      end
    in
    (* 4. scatter sample ranks to the block layout (the dummy at position n
       is dropped), fetch shifted ranks *)
    let real_pairs = V.create () in
    V.iter (fun ((i, _) as pair) -> if i < n then V.push real_pairs pair) sample_rank_pairs;
    let rank12 = Array.make (max local_n 1) 0 in
    V.iter (fun (i, rank) -> rank12.(i - first) <- rank) (U.route comm ~n D.int real_pairs);
    let r1 = U.fetch_shifted comm ~n ~k:1 ~fill:0 D.int rank12 in
    let r2 = U.fetch_shifted comm ~n ~k:2 ~fill:0 D.int rank12 in
    let merge_tuples =
      V.init local_n (fun j ->
          ((first + j, text.(j), c1.(j)), (rank12.(j), r1.(j), r2.(j))))
    in
    let order = Kamping_plugins.Sorter.sort ~seed:0xdcc comm dt_merge ~cmp:dc3_compare merge_tuples in
    (* 5. sorted position -> suffix index, routed to block owners *)
    let offset = K.exscan_single ~init:0 comm D.int Mpisim.Op.int_sum (V.length order) in
    let sa_pairs = V.init (V.length order) (fun j -> (offset + j, fst3 (V.get order j))) in
    let sa = Array.make (max local_n 1) 0 in
    V.iter (fun (g, i) -> sa.(g - first) <- i) (U.route comm ~n D.int sa_pairs);
    Array.sub sa 0 local_n
  end

and fst3 ((i, _, _), _) = i

(* Public entry point: text as characters, block-distributed.  Characters
   shift to 1-based codes so 0 can serve as the past-the-end sentinel. *)
let build comm ~text ~global_n =
  let ints = Array.map (fun c -> Char.code c + 1) text in
  let padded = if Array.length ints = 0 then [| 0 |] else ints in
  build_ints comm padded ~n:global_n
