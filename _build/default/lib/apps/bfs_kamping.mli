(** BFS frontier exchange with KaMPIng (paper Fig. 9): with_flattened plus
    a one-line alltoallv. *)

(** [bfs comm graph ~src] returns the hop distances of this rank's local
    vertices. *)
val bfs : Mpisim.Comm.t -> Graphgen.Distgraph.t -> src:int -> int array
