(* Sample sort against the plain (C-style) MPI interface — the verbose
   baseline of Table I / Fig. 8. *)

module C = Mpisim.Collectives
module D = Mpisim.Datatype

let sort comm data =
  let p = Mpisim.Comm.size comm and r = Mpisim.Comm.rank comm in
  let k = Ss_common.num_samples p in
  let lsamples = Ss_common.draw_samples ~rank:r ~seed:17 data k in
  let gsamples = Array.make (p * k) 0 in
  C.allgather comm D.int ~sendbuf:lsamples ~recvbuf:gsamples ~count:k;
  Array.sort compare gsamples;
  let splitters = Ss_common.select_splitters gsamples p in
  Ss_common.local_sort comm data;
  let scounts = Ss_common.bucket_counts data splitters p in
  Ss_common.charge_partition comm (Array.length data);
  let sdispls = Ss_common.exclusive_scan scounts in
  let rcounts = Array.make p 0 in
  C.alltoall comm D.int ~sendbuf:scounts ~recvbuf:rcounts ~count:1;
  let rdispls = Ss_common.exclusive_scan rcounts in
  let total = rdispls.(p - 1) + rcounts.(p - 1) in
  let recvbuf = Array.make (max total 1) 0 in
  C.alltoallv comm D.int ~sendbuf:data ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls;
  let result = Array.sub recvbuf 0 total in
  Ss_common.local_sort comm result;
  result
