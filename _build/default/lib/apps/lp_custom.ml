(* Label propagation ghost pull through a dKaMinPar-style dedicated
   abstraction layer: a specialized, stateful ghost-exchange object with
   preallocated buffers — the tersest use site (106-LoC role), at the cost
   of owning and maintaining the bespoke layer below. *)

module C = Mpisim.Collectives
module D = Mpisim.Datatype

(* The bespoke layer: everything precomputed at construction. *)
module Ghost_layer = struct
  type t = {
    comm : Mpisim.Comm.t;
    scounts : int array;
    sdispls : int array;
    rcounts : int array;
    rdispls : int array;
    sendbuf : int array;
    recvbuf : int array;
    fill : (int array -> unit);  (* labels -> sendbuf *)
  }

  let create comm (ghosts : Lp_common.ghosts) =
    let p = Mpisim.Comm.size comm in
    let scounts = Array.make p 0 in
    Array.iter (fun (req, ids) -> scounts.(req) <- Array.length ids) ghosts.Lp_common.send_to;
    let sdispls = Ss_common.exclusive_scan scounts in
    let rcounts = Array.make p 0 in
    Array.iter (fun (o, ids) -> rcounts.(o) <- Array.length ids) ghosts.Lp_common.need;
    let rdispls = Ss_common.exclusive_scan rcounts in
    let sendbuf = Array.make (max 1 (Array.fold_left ( + ) 0 scounts)) 0 in
    let recvbuf = Array.make (max 1 (Array.fold_left ( + ) 0 rcounts)) 0 in
    let fill labels =
      let cursor = ref 0 in
      Array.iter
        (fun (_, ids) ->
          Array.iter
            (fun gid ->
              sendbuf.(!cursor) <- labels.(gid - ghosts.Lp_common.first_vertex);
              incr cursor)
            ids)
        ghosts.Lp_common.send_to
    in
    { comm; scounts; sdispls; rcounts; rdispls; sendbuf; recvbuf; fill }

  let pull t labels ghost_values =
    t.fill labels;
    C.alltoallv t.comm D.int ~sendbuf:t.sendbuf ~scounts:t.scounts ~sdispls:t.sdispls
      ~recvbuf:t.recvbuf ~rcounts:t.rcounts ~rdispls:t.rdispls;
    Array.blit t.recvbuf 0 ghost_values 0 (Array.length ghost_values)
end

let run comm graph ~iterations ~max_cluster_size =
  let layer = ref None in
  let pull comm ghosts labels ghost_values =
    let l =
      match !layer with
      | Some l -> l
      | None ->
          let l = Ghost_layer.create comm ghosts in
          layer := Some l;
          l
    in
    Ghost_layer.pull l labels ghost_values
  in
  Lp_common.run comm graph ~pull ~iterations ~max_cluster_size
