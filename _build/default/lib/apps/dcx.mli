(** Distributed suffix-array construction with DC3 (the DCX algorithm of
    Kärkkäinen-Sanders-Burkhardt for X = 3; paper Sec. IV-A, the
    1264-LoC-role artifact compared against pDCX). *)

(** [build comm ~text ~global_n] computes this rank's block of the suffix
    array of the block-distributed [text]. *)
val build : Kamping.Comm.t -> text:char array -> global_n:int -> int array

(** [dc3_compare a b] is the standard DC3 merge comparator (exposed for
    testing). *)
val dc3_compare : (int * int * int) * (int * int * int) -> (int * int * int) * (int * int * int) -> int

(** [sequential_sa ints] is the sequential base-case suffix sort. *)
val sequential_sa : int array -> int array
