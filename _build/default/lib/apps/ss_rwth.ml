(* Sample sort against the RWTH-MPI-style interface: convenient overloads
   for the regular collectives, C-style mirroring for alltoallv. *)

module R = Bindings.Rwth_mpi
module D = Mpisim.Datatype

let sort raw data =
  let comm = R.wrap raw in
  let p = R.size comm and r = R.rank comm in
  let lsamples = Ss_common.draw_samples ~rank:r ~seed:17 data (Ss_common.num_samples p) in
  let gsamples = R.allgather comm D.int lsamples in
  Array.sort compare gsamples;
  let splitters = Ss_common.select_splitters gsamples p in
  Ss_common.local_sort raw data;
  let scounts = Ss_common.bucket_counts data splitters p in
  Ss_common.charge_partition raw (Array.length data);
  let sdispls = Ss_common.exclusive_scan scounts in
  let rcounts = R.alltoall comm D.int scounts in
  let rdispls = Ss_common.exclusive_scan rcounts in
  let total = rdispls.(p - 1) + rcounts.(p - 1) in
  let recvbuf = Array.make (max total 1) 0 in
  R.alltoallv comm D.int ~sendbuf:data ~scounts ~sdispls ~recvbuf ~rcounts ~rdispls;
  let result = Array.sub recvbuf 0 total in
  Ss_common.local_sort raw result;
  result
