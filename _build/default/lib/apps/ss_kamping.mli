(** Sample sort with KaMPIng (paper Fig. 7): collectives collapse to
    one-liners with inferred counts and results returned by value. *)

(** [sort comm data] returns this rank's slice of the globally sorted
    multiset formed by all ranks' inputs. *)
val sort : Mpisim.Comm.t -> int array -> int array
