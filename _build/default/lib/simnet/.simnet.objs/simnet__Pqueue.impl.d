lib/simnet/pqueue.ml: Array
