lib/simnet/engine.mli:
