lib/simnet/rng.ml: Int64
