lib/simnet/netmodel.mli:
