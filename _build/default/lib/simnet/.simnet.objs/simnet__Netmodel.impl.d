lib/simnet/netmodel.ml: Array Float
