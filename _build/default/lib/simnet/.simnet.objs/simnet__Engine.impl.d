lib/simnet/engine.ml: Effect List Pqueue Printf
