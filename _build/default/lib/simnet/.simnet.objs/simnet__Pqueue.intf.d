lib/simnet/pqueue.mli:
