lib/simnet/rng.mli:
