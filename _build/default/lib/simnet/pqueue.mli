(** Binary min-heap priority queue keyed by [(time, sequence)] pairs.

    The sequence number makes event ordering total and deterministic: events
    scheduled for the same simulated time fire in insertion order. *)

type 'a t

(** [create ()] is an empty queue. *)
val create : unit -> 'a t

(** [length q] is the number of queued entries. *)
val length : 'a t -> int

(** [is_empty q] is [length q = 0]. *)
val is_empty : 'a t -> bool

(** [push q ~time ~seq v] inserts [v] with priority [(time, seq)]. *)
val push : 'a t -> time:float -> seq:int -> 'a -> unit

(** [pop_min q] removes and returns the entry with the smallest
    [(time, seq)] key, or [None] when empty. *)
val pop_min : 'a t -> (float * int * 'a) option

(** [peek_time q] is the key time of the minimum entry, if any. *)
val peek_time : 'a t -> float option
