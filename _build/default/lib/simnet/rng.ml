type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash64 = mix
let create seed = { state = mix seed }

let split t i =
  create (Int64.add (mix t.state) (Int64.mul (Int64.of_int (i + 1)) golden_gamma))

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep the top two bits clear so the value fits OCaml's 63-bit int *)
  let x = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  x mod bound

let float t =
  let x = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L
