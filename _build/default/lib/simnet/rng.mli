(** Deterministic SplitMix64 pseudo-random number generator.

    Every rank of the simulated machine owns an independent stream derived
    from [(seed, rank)], so experiment results are reproducible regardless of
    event interleaving — the property the paper's reproducible-reduce plugin
    is about on the numerical side, applied here to workload generation. *)

type t

(** [create seed] is a fresh generator stream. *)
val create : int64 -> t

(** [split t i] is an independent stream derived from [t]'s seed and index
    [i] (used for per-rank and per-cell streams). *)
val split : t -> int -> t

(** [int64 t] is the next raw 64-bit output. *)
val int64 : t -> int64

(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [hash64 x] is the SplitMix64 finalizer applied to [x]: a stateless
    mixing function used for communication-free graph generation. *)
val hash64 : int64 -> int64
