(** Fixed-size bitset over [0 .. length-1].

    Used by graph algorithms (visited sets) and by the runtime (alive-rank
    tracking) where a [bool array] would waste memory at scale. *)

type t

(** [create n] is a bitset of capacity [n] with all bits clear. *)
val create : int -> t

(** [length b] is the capacity given at creation. *)
val length : t -> int

(** [set b i] sets bit [i].  @raise Invalid_argument if out of bounds. *)
val set : t -> int -> unit

(** [clear b i] clears bit [i]. *)
val clear : t -> int -> unit

(** [mem b i] is the value of bit [i]. *)
val mem : t -> int -> bool

(** [count b] is the number of set bits. *)
val count : t -> int

(** [iter_set f b] applies [f] to every set index in increasing order. *)
val iter_set : (int -> unit) -> t -> unit

(** [fill b] sets every bit. *)
val fill : t -> unit

(** [reset b] clears every bit. *)
val reset : t -> unit

(** [copy b] is an independent copy. *)
val copy : t -> t

(** [equal a b] holds iff both bitsets have the same capacity and bits. *)
val equal : t -> t -> bool
