type t = { words : int array; n : int }

let bits_per_word = Sys.int_size

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0; n }

let length b = b.n

let check b i = if i < 0 || i >= b.n then invalid_arg "Bitset: index out of bounds"

let set b i =
  check b i;
  let w = i / bits_per_word and j = i mod bits_per_word in
  b.words.(w) <- b.words.(w) lor (1 lsl j)

let clear b i =
  check b i;
  let w = i / bits_per_word and j = i mod bits_per_word in
  b.words.(w) <- b.words.(w) land lnot (1 lsl j)

let mem b i =
  check b i;
  let w = i / bits_per_word and j = i mod bits_per_word in
  b.words.(w) land (1 lsl j) <> 0

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let count b = Array.fold_left (fun acc w -> acc + popcount w) 0 b.words

let iter_set f b =
  for w = 0 to Array.length b.words - 1 do
    let word = b.words.(w) in
    if word <> 0 then
      for j = 0 to bits_per_word - 1 do
        if word land (1 lsl j) <> 0 then f ((w * bits_per_word) + j)
      done
  done

let fill b =
  Array.fill b.words 0 (Array.length b.words) (-1);
  (* Mask the tail word so that [count] stays within capacity. *)
  let tail = b.n mod bits_per_word in
  if tail <> 0 && Array.length b.words > 0 then
    b.words.(Array.length b.words - 1) <- (1 lsl tail) - 1

let reset b = Array.fill b.words 0 (Array.length b.words) 0
let copy b = { words = Array.copy b.words; n = b.n }
let equal a b = a.n = b.n && a.words = b.words
