(* Growable array.  The backing store is a plain ['a array]; because OCaml
   arrays cannot hold uninitialized slots, growth requires a witness element
   (taken from the existing contents or from the pushed value).  An empty
   vector therefore defers [reserve] requests until the first element
   arrives ([want_cap]). *)

type 'a t = { mutable data : 'a array; mutable len : int; mutable want_cap : int }

let create ?(capacity = 0) () = { data = [||]; len = 0; want_cap = capacity }
let make n x = { data = Array.make (max n 0) x; len = n; want_cap = 0 }
let init n f = { data = Array.init n f; len = n; want_cap = 0 }
let of_array a = { data = Array.copy a; len = Array.length a; want_cap = 0 }
let of_list l = of_array (Array.of_list l)
let length v = v.len
let capacity v = Array.length v.data
let is_empty v = v.len = 0

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  Array.unsafe_get v.data i

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set: index out of bounds";
  Array.unsafe_set v.data i x

(* Grow the backing store to at least [n] slots, using [filler] for the new
   slots. *)
let grow v n filler =
  let cap = Array.length v.data in
  if n > cap then begin
    let new_cap = max (max (2 * cap) n) (max v.want_cap 4) in
    let data = Array.make new_cap filler in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  if v.len = Array.length v.data then grow v (v.len + 1) x;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty vector";
  v.len <- v.len - 1;
  Array.unsafe_get v.data v.len

let clear v = v.len <- 0

let resize v n x =
  if n < 0 then invalid_arg "Vec.resize: negative length";
  if n > v.len then begin
    grow v n x;
    Array.fill v.data v.len (n - v.len) x
  end;
  v.len <- n

let reserve v n =
  if Array.length v.data = 0 then v.want_cap <- max v.want_cap n
  else if n > Array.length v.data then grow v n v.data.(0)

let ensure_length v n x = if n > v.len then resize v n x

let append_array v a =
  let n = Array.length a in
  if n > 0 then begin
    grow v (v.len + n) a.(0);
    Array.blit a 0 v.data v.len n;
    v.len <- v.len + n
  end

let append v w =
  let n = w.len in
  if n > 0 then begin
    grow v (v.len + n) w.data.(0);
    Array.blit w.data 0 v.data v.len n;
    v.len <- v.len + n
  end

let blit src spos dst dpos n =
  if n < 0 || spos < 0 || dpos < 0 || spos + n > src.len || dpos + n > dst.len
  then invalid_arg "Vec.blit: range out of bounds";
  Array.blit src.data spos dst.data dpos n

let sub v pos n =
  if pos < 0 || n < 0 || pos + n > v.len then invalid_arg "Vec.sub";
  { data = Array.sub v.data pos n; len = n; want_cap = 0 }

let copy v = { data = Array.sub v.data 0 v.len; len = v.len; want_cap = 0 }
let to_array v = Array.sub v.data 0 v.len

let to_list v =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.len - 1) []

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let map f v = { data = Array.init v.len (fun i -> f v.data.(i)); len = v.len; want_cap = 0 }

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let sort cmp v =
  (* Sort a dense copy: the backing store may have trailing slack. *)
  if v.len < Array.length v.data then begin
    let dense = Array.sub v.data 0 v.len in
    Array.sort cmp dense;
    Array.blit dense 0 v.data 0 v.len
  end
  else Array.sort cmp v.data

let equal eq a b =
  a.len = b.len
  &&
  let rec go i = i >= a.len || (eq a.data.(i) b.data.(i) && go (i + 1)) in
  go 0

let unsafe_data v = v.data
let unsafe_of_array a n = { data = a; len = n; want_cap = 0 }

let pp pp_elt fmt v =
  Format.fprintf fmt "[@[";
  iteri (fun i x -> if i > 0 then Format.fprintf fmt ";@ %a" pp_elt x else pp_elt fmt x) v;
  Format.fprintf fmt "@]]"
