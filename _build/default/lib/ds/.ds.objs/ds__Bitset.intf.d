lib/ds/bitset.mli:
