lib/ds/vec.mli: Format
