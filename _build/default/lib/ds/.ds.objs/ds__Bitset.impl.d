lib/ds/bitset.ml: Array Sys
