lib/ds/vec.ml: Array Format
