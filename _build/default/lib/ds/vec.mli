(** Growable array ("vector"), the workhorse container of the library.

    [Vec] plays the role that [std::vector] plays for KaMPIng: it is the
    container that communication wrappers receive into, resize according to a
    {!Kamping.Resize_policy.t}, and return by value.  It exposes its backing
    store through {!unsafe_data} so that communication layers can copy
    elements without bounds checks on the hot path. *)

type 'a t

(** [create ()] is an empty vector. *)
val create : ?capacity:int -> unit -> 'a t

(** [make n x] is a vector of length [n] filled with [x]. *)
val make : int -> 'a -> 'a t

(** [init n f] is a vector of length [n] whose [i]-th element is [f i]. *)
val init : int -> (int -> 'a) -> 'a t

(** [of_array a] copies [a] into a fresh vector. *)
val of_array : 'a array -> 'a t

(** [of_list l] copies [l] into a fresh vector. *)
val of_list : 'a list -> 'a t

(** [length v] is the number of elements stored in [v]. *)
val length : 'a t -> int

(** [capacity v] is the size of the backing store of [v]. *)
val capacity : 'a t -> int

(** [is_empty v] is [length v = 0]. *)
val is_empty : 'a t -> bool

(** [get v i] is the [i]-th element.  @raise Invalid_argument if out of
    bounds. *)
val get : 'a t -> int -> 'a

(** [set v i x] replaces the [i]-th element.  @raise Invalid_argument if out
    of bounds. *)
val set : 'a t -> int -> 'a -> unit

(** [push v x] appends [x], growing the backing store geometrically if
    needed. *)
val push : 'a t -> 'a -> unit

(** [pop v] removes and returns the last element.
    @raise Invalid_argument on an empty vector. *)
val pop : 'a t -> 'a

(** [clear v] resets the length to [0] without releasing storage. *)
val clear : 'a t -> unit

(** [resize v n x] sets the length to [n]; new slots are filled with [x].
    Shrinking keeps the backing store. *)
val resize : 'a t -> int -> 'a -> unit

(** [reserve v n] ensures the backing store holds at least [n] elements. *)
val reserve : 'a t -> int -> unit

(** [ensure_length v n x] grows [v] to length [n] (filling with [x]) if it is
    shorter; never shrinks. *)
val ensure_length : 'a t -> int -> 'a -> unit

(** [append v w] appends all elements of [w] to [v]. *)
val append : 'a t -> 'a t -> unit

(** [append_array v a] appends all elements of [a] to [v]. *)
val append_array : 'a t -> 'a array -> unit

(** [blit src spos dst dpos n] copies [n] elements; both ranges must be in
    bounds. *)
val blit : 'a t -> int -> 'a t -> int -> int -> unit

(** [sub v pos n] is a fresh vector with elements [pos..pos+n-1]. *)
val sub : 'a t -> int -> int -> 'a t

(** [copy v] is a fresh vector with the same contents. *)
val copy : 'a t -> 'a t

(** [to_array v] copies the contents into a fresh array of size
    [length v]. *)
val to_array : 'a t -> 'a array

(** [to_list v] is the contents as a list. *)
val to_list : 'a t -> 'a list

(** [iter f v] applies [f] to every element in index order. *)
val iter : ('a -> unit) -> 'a t -> unit

(** [iteri f v] applies [f i x] to every element in index order. *)
val iteri : (int -> 'a -> unit) -> 'a t -> unit

(** [map f v] is a fresh vector with [f] applied to every element. *)
val map : ('a -> 'b) -> 'a t -> 'b t

(** [fold_left f acc v] folds over the elements in index order. *)
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

(** [exists p v] is true iff some element satisfies [p]. *)
val exists : ('a -> bool) -> 'a t -> bool

(** [for_all p v] is true iff every element satisfies [p]. *)
val for_all : ('a -> bool) -> 'a t -> bool

(** [sort cmp v] sorts in place. *)
val sort : ('a -> 'a -> int) -> 'a t -> unit

(** [equal eq a b] is structural equality with element comparison [eq]. *)
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool

(** [unsafe_data v] exposes the backing array.  Only indices
    [0 .. length v - 1] hold valid elements; the array may be replaced by any
    growing operation, so the reference must not be retained across
    mutations. *)
val unsafe_data : 'a t -> 'a array

(** [unsafe_of_array a n] wraps [a] as a vector of length [n] without
    copying.  Ownership of [a] transfers to the vector. *)
val unsafe_of_array : 'a array -> int -> 'a t

(** [pp pp_elt fmt v] prints [v] as [[x0; x1; ...]]. *)
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
