(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the experiment index), plus a Bechamel
   microbenchmark of host-level wrapper overhead.

   Usage:  dune exec bench/main.exe -- experiment ...
   Experiments: table1 fig8 fig10 types overhead suffix labelprop raxml
                ulfm reprored ablation colltuning trace ckpt explore serving
                engine mpi4 micro all
   "colltuning" writes BENCH_collectives.json; "trace" writes
   BENCH_trace.json; "ckpt" writes BENCH_ckpt.json; "explore" writes
   BENCH_explore.json; "serving" writes BENCH_serving.json; "engine"
   writes BENCH_engine.json; "mpi4" writes BENCH_mpi4.json.  With no
   arguments (or --help) the usage is printed. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

(* ---------------- Bechamel microbenchmarks ---------------- *)

(* Host wall-clock of whole simulated operations: the KaMPIng wrapper layer
   (buffers, records, optional arguments) must not add measurable cost over
   calling the simulated MPI layer directly. *)
let micro_tests () =
  let open Bechamel in
  let ranks = 8 in
  let plain_allgatherv () =
    Mpisim.Mpi.run ~ranks (fun comm ->
        let r = Mpisim.Comm.rank comm and p = Mpisim.Comm.size comm in
        let rc = Array.make p 0 in
        Mpisim.Collectives.allgather comm D.int ~sendbuf:[| r + 1 |] ~recvbuf:rc ~count:1;
        let rd = Array.make p 0 in
        for i = 1 to p - 1 do
          rd.(i) <- rd.(i - 1) + rc.(i - 1)
        done;
        let out = Array.make (rd.(p - 1) + rc.(p - 1)) 0 in
        Mpisim.Collectives.allgatherv comm D.int ~sendbuf:(Array.make (r + 1) r) ~scount:(r + 1)
          ~recvbuf:out ~rcounts:rc ~rdispls:rd)
  in
  let kamping_allgatherv () =
    Mpisim.Mpi.run ~ranks (fun comm ->
        let kc = K.wrap comm in
        ignore (K.allgatherv kc D.int ~send_buf:(V.make (K.rank kc + 1) (K.rank kc))))
  in
  let kamping_counts_given () =
    Mpisim.Mpi.run ~ranks (fun comm ->
        let kc = K.wrap comm in
        let counts = Array.init ranks (fun i -> i + 1) in
        ignore
          (K.allgatherv ~recv_counts:counts kc D.int ~send_buf:(V.make (K.rank kc + 1) (K.rank kc))))
  in
  let serde_payload = List.init 1000 (fun i -> i) in
  let serde_codec = Serde.Codec.(list int) in
  let serde_bytes = Serde.Codec.encode serde_codec serde_payload in
  [
    Test.make ~name:"sim: hand-rolled allgatherv (8 ranks)" (Staged.stage plain_allgatherv);
    Test.make ~name:"sim: kamping allgatherv, defaults" (Staged.stage kamping_allgatherv);
    Test.make ~name:"sim: kamping allgatherv, counts given" (Staged.stage kamping_counts_given);
    Test.make ~name:"serde: encode 1000 ints"
      (Staged.stage (fun () -> Serde.Codec.encode serde_codec serde_payload));
    Test.make ~name:"serde: decode 1000 ints"
      (Staged.stage (fun () -> Serde.Codec.decode serde_codec serde_bytes));
    Test.make ~name:"vec: push 1000"
      (Staged.stage (fun () ->
           let v = Ds.Vec.create () in
           for i = 1 to 1000 do
             Ds.Vec.push v i
           done));
  ]

let microbench () =
  let open Bechamel in
  Printf.printf "\n== Bechamel microbenchmarks (host wall-clock per run) ==\n%!";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let grouped = Test.make_grouped ~name:"micro" ~fmt:"%s %s" (micro_tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (est :: _) -> rows := (name, est) :: !rows
      | Some [] | None -> ())
    results;
  List.iter
    (fun (name, ns) -> Printf.printf "  %-50s %12.1f ns/run\n" name ns)
    (List.sort compare !rows);
  (* the wrapper-overhead claim at host level *)
  let ends_with key (name, _) =
    String.length name >= String.length key
    && String.sub name (String.length name - String.length key) (String.length key) = key
  in
  let find key = List.find_opt (ends_with key) !rows in
  match (find "hand-rolled allgatherv (8 ranks)", find "kamping allgatherv, defaults") with
  | Some (_, plain), Some (_, kamping) ->
      Printf.printf "  kamping-vs-plain host overhead: %+.1f%%\n"
        (100.0 *. ((kamping /. plain) -. 1.0))
  | _ -> ()

(* ---------------- collective-tuning sweep ---------------- *)

(* Runs the crossover sweep, prints the table, and leaves the raw numbers
   in BENCH_collectives.json for machine consumption. *)
let colltuning () =
  let cases = Experiments.Coll_tuning_exp.sweep () in
  Experiments.Coll_tuning_exp.print cases;
  let report = Experiments.Coll_tuning_exp.hier_sweep () in
  Experiments.Coll_tuning_exp.print_hier report;
  let path = "BENCH_collectives.json" in
  let json = Experiments.Coll_tuning_exp.to_json cases report in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  (* self-validating: round-trip the file and require every gate in its
     "checks" object (hierarchical speedups, crossover agreement) to hold *)
  Experiments.Coll_tuning_exp.validate_json ~path ~json;
  Printf.printf "  wrote %s (checks passed)\n%!" path

(* ---------------- dispatch ---------------- *)

let experiments =
  [
    ("table1", Experiments.Loc_table.run);
    ("fig8", Experiments.Fig8_sort.run);
    ("fig10", Experiments.Fig10_bfs.run);
    ("types", Experiments.Types_bench.run);
    ("overhead", Experiments.Overhead.run);
    ("suffix", Experiments.Suffix_exp.run);
    ("labelprop", Experiments.Labelprop_exp.run);
    ("raxml", Experiments.Raxml_exp.run);
    ("ulfm", Experiments.Ulfm_exp.run);
    ("reprored", Experiments.Reprored_exp.run);
    ("ablation", Experiments.Ablation.run);
    ("colltuning", colltuning);
    ("trace", Experiments.Trace_exp.run);
    ("ckpt", Experiments.Ckpt_exp.run);
    ("explore", Experiments.Explore_exp.run);
    ("serving", Experiments.Serve_exp.run);
    ("engine", Experiments.Engine_exp.run);
    ("mpi4", Experiments.Mpi4_exp.run);
    ("apps", Experiments.Apps_exp.run);
    ("micro", microbench);
  ]

let usage oc =
  Printf.fprintf oc "usage: %s experiment [experiment ...]\n" Sys.argv.(0);
  Printf.fprintf oc "       %s all\n\n" Sys.argv.(0);
  Printf.fprintf oc "experiments:\n";
  List.iter (fun (name, _) -> Printf.fprintf oc "  %s\n" name) experiments;
  Printf.fprintf oc "  all  (run every experiment)\n"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] || List.mem "--help" args || List.mem "-h" args then begin
    usage stdout;
    exit (if args = [] || args = [ "--help" ] || args = [ "-h" ] then 0 else 2)
  end;
  let requested =
    if List.mem "all" args then List.map fst experiments else args
  in
  (* Validate every name before running anything: a typo late in the list
     must not cost the experiments before it. *)
  let unknown = List.filter (fun n -> not (List.mem_assoc n experiments)) requested in
  if unknown <> [] then begin
    List.iter (fun n -> Printf.eprintf "unknown experiment %S\n" n) unknown;
    Printf.eprintf "\n";
    usage stderr;
    exit 2
  end;
  List.iter
    (fun name ->
      Printf.printf "\n######## %s ########\n%!" name;
      List.assoc name experiments ())
    requested;
  print_newline ()
