#!/bin/sh
# CI entry point: formatting gate (dune files; ocamlformat is not required
# in the image), full build, then the complete test suite.
set -eux

cd "$(dirname "$0")/.."

dune build @fmt
dune build
dune runtest
