#!/bin/sh
# CI entry point: formatting gate (dune files; ocamlformat is not required
# in the image), full build, then the complete test suite.
set -eux

cd "$(dirname "$0")/.."

dune build @fmt
dune build
dune runtest

# Second pass with the MUST-style correctness checker forced to its
# strictest level via the environment: every suite (examples sweep,
# overhead profiling equality, property schedules) must stay green with
# full deadlock/ordering/leak checking enabled.
MPISIM_CHECK=communication dune runtest --force

# Third pass with event tracing forced on: the recorder must be a pure
# observer, so every suite (including the bit-exact determinism and
# profiling-equality tests) must stay green while recording.
MPISIM_TRACE=1 dune runtest --force

# Trace-experiment smoke test: traces fig8 + fig10, asserts the critical
# path covers the whole run, writes BENCH_trace.json and re-parses it
# through lib/serde (validation is built into the experiment; a failed
# check exits non-zero).
dune exec bench/main.exe -- trace
test -s BENCH_trace.json

# Checkpoint/restart smoke test: interval x failure-rate sweep over the
# restartable apps; the experiment self-validates recovered-vs-reference
# bit-identity, Daly-interval minimality and the <10% overhead bound,
# and exits non-zero on any violation.
dune exec bench/main.exe -- ckpt
test -s BENCH_ckpt.json

# Fourth pass under randomized schedule exploration (lib/explore): every
# Mpi.run in the whole suite takes its don't-care decisions (same-time
# event order, wildcard matching, wait-any completion) from a seeded RNG,
# with the checker again at its strictest level.  A fixed seed keeps the
# pass reproducible; bump it deliberately, not per-run.
MPISIM_EXPLORE=random:42 MPISIM_CHECK=communication dune runtest --force

# Mutation smoke as a hard gate: the explore suite re-introduces the PR-4
# Daly-divergence bug behind a test-only flag and fails unless random
# exploration finds it and shrinks the counterexample (see
# test/test_explore.ml).
dune exec test/test_main.exe -- test explore

# Exploration-overhead smoke: Default-strategy hooks must be a pure
# observer (bit-identical simulated time, events and profile) and random
# schedules must agree on the workload's result; self-validating.
dune exec bench/main.exe -- explore
test -s BENCH_explore.json

# Fifth pass: request-serving smoke (lib/serve).  The batching sweep,
# caching and rebalancing comparisons, and the chaos run (jitter + a
# mid-run kill recovered through lib/ckpt) all self-validate against the
# host-side workload oracle: BENCH_serving.json is re-read and every
# entry of its "checks" object must be true, else the experiment exits
# non-zero.
dune exec bench/main.exe -- serving
test -s BENCH_serving.json

# Sixth pass: engine scale smoke.  The synthetic halo exchange runs on
# the frozen pre-refactor engine (binary heap, boxed entries, unpruned
# fibers) and the calendar-queue engine; BENCH_engine.json is re-read
# and every entry of its "checks" object must be true — the >=5x
# speedup at p=4096, the events/sec floor, flat ranks-scaling through
# p=16384 inside the time budget, the zero-alloc steady state, and the
# profiler-off-vs-fine pure-observer equality — else the experiment
# exits non-zero.
dune exec bench/main.exe -- engine
test -s BENCH_engine.json

# Seventh pass: the MPI-4 surface.  The persistent/partitioned gallery
# example (persistent halo swap + partitioned gather, self-comparing
# against the ephemeral transport) must run clean under the strict
# communication checker, then the mpi4 benchmark gates on
# BENCH_mpi4.json: >=1.15x serving throughput on persistent channels
# with oracle-exact stores, idle handles invisible in the profile, and
# bit-identical transports across 20 random schedules — every entry of
# the "checks" object must be true, else the experiment exits non-zero.
MPISIM_CHECK=communication dune exec examples/persistent_halo.exe
dune exec bench/main.exe -- mpi4
test -s BENCH_mpi4.json

# Eighth pass: topology-aware collectives.  The schedule-exploration
# suite (which digest-checks the whole example gallery over >=20 random
# schedules) reruns on a two-tier fabric supplied via the environment,
# with the checker at its strictest level — hierarchical candidates are
# live and every digest must match the flat schedule's — plus the
# dedicated topology suite (spec parsing, tier routing, uplink
# congestion, split_by_node, autotune round-trips, and the differential
# bit-identity property).  Then the collectives bench gates on
# BENCH_collectives.json: on a scattered 48-ranks/node fabric at p=192
# the auto-tuned tables must beat the flat defaults >=1.2x on bcast and
# allreduce, predicted crossovers must land within one sweep step of
# the simulated ones, and the installed pin table must dispatch the
# predicted winner — every entry of the "checks" object must be true,
# else the experiment exits non-zero.
MPISIM_TOPOLOGY=two:4 MPISIM_CHECK=communication dune exec test/test_main.exe -- test explore
MPISIM_CHECK=communication dune exec test/test_main.exe -- test topology
dune exec bench/main.exe -- colltuning
test -s BENCH_collectives.json

# Ninth pass: the scenario gallery.  The three differential workloads
# (PageRank/CC over the generator families, the CG stencil solver over
# its three halo transports, streaming windowed analytics over the
# aggregator) run end-to-end under a randomized explore schedule with
# the communication checker raised — each example internally proves
# variant/transport bit-identity, oracle equality and kill-recovery,
# and fails non-zero on any divergence.  The scenarios suite adds the
# property sweep (degenerate process grids, zero-iteration solves) and
# the chaos regressions (explorer-drawn kills with replayable tokens).
# Then the apps bench gates on BENCH_apps.json: every entry of its
# "checks" object (variant/transport/oracle exactness, p2p-vs-
# persistent noise band) must be true, else the experiment exits
# non-zero.
MPISIM_EXPLORE=random:42 MPISIM_CHECK=communication dune exec examples/graph_analytics.exe
MPISIM_EXPLORE=random:42 MPISIM_CHECK=communication dune exec examples/cg_solver.exe
MPISIM_EXPLORE=random:42 MPISIM_CHECK=communication dune exec examples/stream_windows.exe
MPISIM_CHECK=communication dune exec test/test_main.exe -- test scenarios
dune exec bench/main.exe -- apps
test -s BENCH_apps.json
