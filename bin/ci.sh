#!/bin/sh
# CI entry point: formatting gate (dune files; ocamlformat is not required
# in the image), full build, then the complete test suite.
set -eux

cd "$(dirname "$0")/.."

dune build @fmt
dune build
dune runtest

# Second pass with the MUST-style correctness checker forced to its
# strictest level via the environment: every suite (examples sweep,
# overhead profiling equality, property schedules) must stay green with
# full deadlock/ordering/leak checking enabled.
MPISIM_CHECK=communication dune runtest --force

# Third pass with event tracing forced on: the recorder must be a pure
# observer, so every suite (including the bit-exact determinism and
# profiling-equality tests) must stay green while recording.
MPISIM_TRACE=1 dune runtest --force

# Trace-experiment smoke test: traces fig8 + fig10, asserts the critical
# path covers the whole run, writes BENCH_trace.json and re-parses it
# through lib/serde (validation is built into the experiment; a failed
# check exits non-zero).
dune exec bench/main.exe -- trace
test -s BENCH_trace.json

# Checkpoint/restart smoke test: interval x failure-rate sweep over the
# restartable apps; the experiment self-validates recovered-vs-reference
# bit-identity, Daly-interval minimality and the <10% overhead bound,
# and exits non-zero on any violation.
dune exec bench/main.exe -- ckpt
test -s BENCH_ckpt.json
