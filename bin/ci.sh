#!/bin/sh
# CI entry point: formatting gate (dune files; ocamlformat is not required
# in the image), full build, then the complete test suite.
set -eux

cd "$(dirname "$0")/.."

dune build @fmt
dune build
dune runtest

# Second pass with the MUST-style correctness checker forced to its
# strictest level via the environment: every suite (examples sweep,
# overhead profiling equality, property schedules) must stay green with
# full deadlock/ordering/leak checking enabled.
MPISIM_CHECK=communication dune runtest --force
