(* Thin launcher; the program lives in examples/gallery/reproducible_reduce_example.ml. *)
let () = Gallery.Reproducible_reduce_example.run ()
