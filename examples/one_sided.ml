(* Thin launcher; the program lives in examples/gallery/one_sided.ml. *)
let () = Gallery.One_sided.run ()
