(* Thin launcher; the program lives in examples/gallery/quickstart.ml. *)
let () = Gallery.Quickstart.run ()
