(* Conjugate gradient on a 2-D Laplacian with three interchangeable
   halo transports — paired point-to-point, MPI-4 persistent channels,
   and an RMA window with fence epochs.  The fixed dot-product fold
   makes the iterates bitwise identical across transports and process
   grids, equal to the sequential oracle, and (through lib/ckpt)
   unchanged by a mid-solve rank kill.

   Run with:  dune exec examples/cg_solver.exe *)

module K = Kamping.Comm
module C = Apps.Cg_stencil
module G = Graphgen.Distgraph
module GD = Gallery_digest

let ranks = 6
let dims = [| 3; 2 |]
let nx = 18
let ny = 12
let iters = 12
let seed = 31
let n_shards = 6

let assemble results =
  let field = Array.make (nx * ny) 0.0 in
  Array.iter
    (fun r ->
      for k = 0 to (r.C.lx * r.C.ly) - 1 do
        field.(((r.C.gi0 + (k / r.C.ly)) * ny) + r.C.gj0 + (k mod r.C.ly)) <- r.C.x.(k)
      done)
    results;
  field

let solve transport =
  let res =
    Mpisim.Mpi.run ~ranks (fun raw ->
        C.solve ~transport (K.wrap raw) ~dims ~nx ~ny ~iters ~seed)
  in
  let rs = Mpisim.Mpi.results_exn res in
  (assemble rs, rs.(0).C.rr, res.Mpisim.Mpi.sim_time)

let resilient ?fail_at () =
  Mpisim.Mpi.run ?fail_at ~ranks:4 (fun raw ->
      Apps.Cg_resilient.run ~policy:(Ckpt.Schedule.Every_n 1) (K.wrap raw) ~n_shards ~nx ~ny
        ~iters ~seed)

(* shard blocks from the survivors, assembled into the full field *)
let assemble_resilient res =
  let field = Array.make (nx * ny) 0.0 in
  let seen = Hashtbl.create 8 in
  let rr = ref nan in
  Array.iter
    (function
      | Ok (pairs, r) ->
          rr := r;
          List.iter
            (fun (s, block) ->
              Hashtbl.replace seen s ();
              let gi0, _ = G.block_range ~global_n:nx ~comm_size:n_shards s in
              Array.blit block 0 field (gi0 * ny) (Array.length block))
            pairs
      | Error _ -> ())
    res.Mpisim.Mpi.results;
  if Hashtbl.length seen <> n_shards then failwith "cg_solver: missing shards";
  (field, !rr)

let verdict () =
  let ref_field, ref_rr = C.reference ~dims ~nx ~ny ~iters ~seed in
  let transports_ok =
    List.for_all
      (fun t ->
        let field, rr, _ = solve t in
        field = ref_field && rr = ref_rr)
      C.all_transports
  in
  (* the resilient row-blocked solve matches the [n_shards; 1] grid *)
  let row_ref, row_rr = C.reference ~dims:[| n_shards; 1 |] ~nx ~ny ~iters ~seed in
  let free = resilient () in
  let killed = resilient ~fail_at:[ (1, 0.5 *. free.Mpisim.Mpi.sim_time) ] () in
  let res_ok =
    assemble_resilient free = (row_ref, row_rr) && assemble_resilient killed = (row_ref, row_rr)
  in
  (ref_field, ref_rr, transports_ok && res_ok)

let digest () =
  let field, rr, ok = verdict () in
  Printf.sprintf "x=%d/rr=%d/agree=%b" (GD.floats field) (GD.float_bits rr) ok

let run () =
  Printf.printf "CG on %dx%d grid, %dx%d ranks, %d iterations:\n" nx ny dims.(0) dims.(1) iters;
  List.iter
    (fun t ->
      let _, rr, sim_time = solve t in
      Printf.printf "  %-10s rr=%.6e in %7.0f us simulated\n" (C.transport_name t) rr
        (sim_time *. 1e6))
    C.all_transports;
  let _, _, ok = verdict () in
  Printf.printf "  transports, oracle and kill-recovery agree: %b\n" ok;
  if not ok then failwith "cg_solver: divergence detected"
