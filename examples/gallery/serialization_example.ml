(* Explicit serialization (paper Fig. 5): sending a string map between
   ranks, and the RAxML-NG broadcast one-liner (Fig. 11).

   Run with:  dune exec examples/serialization_example.exe *)

module K = Kamping.Comm

let dict_codec = Serde.Codec.(assoc string)

let body ~verbose raw =
  let comm = K.wrap raw in
  (* point-to-point, Fig. 5 *)
  let received =
    if K.rank comm = 0 then begin
      let data = [ ("hello", "world"); ("kamping", "ocaml") ] in
      K.send_serialized comm dict_codec data ~dst:1;
      []
    end
    else if K.rank comm = 1 then begin
      let dict = K.recv_serialized comm dict_codec ~src:0 in
      if verbose then
        Printf.printf "rank 1 received: %s\n"
          (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) dict));
      dict
    end
    else []
  in
  (* broadcast of an arbitrary object, Fig. 11 *)
  let payload = if K.is_root comm then [ ("model", "GTR+G"); ("taxa", "4242") ] else [] in
  let model = K.bcast_serialized comm dict_codec payload in
  if verbose then begin
    Printf.printf "rank %d has the model: %s\n" (K.rank comm)
      (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) model));
    (* the same codecs also speak JSON (Cereal's text archives) *)
    if K.is_root comm then
      Printf.printf "as JSON: %s\n" (Serde.Codec.encode_json dict_codec model)
  end;
  (received, model)

let compute ~verbose () = Mpisim.Mpi.run_exn ~ranks:4 (body ~verbose)

let digest () =
  let pairs l = String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l) in
  compute ~verbose:false () |> Array.to_list
  |> List.map (fun (received, model) -> pairs received ^ "/" ^ pairs model)
  |> String.concat ";"

let run () = ignore (compute ~verbose:true ())
