(* Helpers for the gallery [digest] entry points.

   Each example exposes [digest : unit -> string]: a compact fingerprint of
   its schedule-independent semantic results (sorted data, distances,
   histogram counts, ...) that excludes anything legitimately
   schedule-dependent (simulated times, poll counts, profiles).  The
   exploration suite (test/test_explore.ml) compares digests across many
   explored schedules: any difference is a schedule-dependence bug in the
   example or the runtime. *)

let combine a x = ((a * 31) + x) land 0x3FFFFFFF
let ints arr = Array.fold_left combine 17 arr
let int_list l = ints (Array.of_list l)

(* bitwise: reproducibility claims are exact, not approximate *)
let float_bits x = Int64.to_int (Int64.bits_of_float x) land 0x3FFFFFFF
let floats arr = Array.fold_left (fun a x -> combine a (float_bits x)) 17 arr
