(* Distributed BFS (paper Fig. 9) over a generated graph, comparing the
   built-in alltoallv exchange with the sparse (NBX) and grid plugins.

   Run with:  dune exec examples/bfs_example.exe *)

module Gen = Graphgen.Generators

let run_strategy ?(verbose = true) name bfs family ~ranks ~global_n =
  let result =
    Mpisim.Mpi.run ~ranks (fun comm ->
        let graph =
          Gen.generate family ~rank:(Mpisim.Comm.rank comm) ~comm_size:ranks ~global_n
            ~avg_degree:6 ~seed:3
        in
        let t0 = Mpisim.Comm.now comm in
        let dist = bfs comm graph ~src:0 in
        (dist, Mpisim.Comm.now comm -. t0))
  in
  let parts = Mpisim.Mpi.results_exn result in
  let dist = Array.concat (List.map fst (Array.to_list parts)) in
  let time = Array.fold_left (fun acc (_, t) -> Float.max acc t) 0.0 parts in
  let reached = Array.fold_left (fun acc d -> if d <> Apps.Bfs_common.undef then acc + 1 else acc) 0 dist in
  let max_level = Array.fold_left (fun acc d -> if d <> Apps.Bfs_common.undef then max acc d else acc) 0 dist in
  if verbose then
    Printf.printf "  %-12s reached %4d/%d vertices, eccentricity %2d, %8.1f us simulated\n" name
      reached global_n max_level (1e6 *. time);
  dist

let digest () =
  (* the full run () is sized for demonstration; the digest keeps all
     three graph families and all three exchange strategies on a smaller
     instance so many explored schedules stay cheap *)
  let ranks = 8 and global_n = 512 in
  [ Gen.Erdos_renyi; Gen.Rgg2d; Gen.Rhg ]
  |> List.map (fun family ->
         let dist strategy = run_strategy ~verbose:false "" strategy family ~ranks ~global_n in
         let reference = dist Apps.Bfs_kamping.bfs in
         let sparse = dist Apps.Bfs_strategies.bfs_sparse in
         let grid = dist Apps.Bfs_strategies.bfs_grid in
         Printf.sprintf "%s=%d/%b/%b" (Gen.family_name family)
           (Gallery_digest.ints reference) (sparse = reference) (grid = reference))
  |> String.concat ";"

let run () =
  let ranks = 16 and global_n = 4096 in
  List.iter
    (fun family ->
      Printf.printf "BFS on %s (%d vertices, %d ranks):\n" (Gen.family_name family) global_n ranks;
      let reference = run_strategy "alltoallv" Apps.Bfs_kamping.bfs family ~ranks ~global_n in
      let sparse = run_strategy "sparse(NBX)" Apps.Bfs_strategies.bfs_sparse family ~ranks ~global_n in
      let grid = run_strategy "grid" Apps.Bfs_strategies.bfs_grid family ~ranks ~global_n in
      assert (sparse = reference);
      assert (grid = reference))
    [ Gen.Erdos_renyi; Gen.Rgg2d; Gen.Rhg ];
  print_endline "all strategies computed identical distances"
