(* Distributed sample sort (paper Fig. 7) on a 16-rank simulated machine.

   Run with:  dune exec examples/sample_sort_example.exe *)

let compute ~ranks ~n_per_rank () =
  Mpisim.Mpi.run ~ranks (fun comm ->
      let data =
        Apps.Ss_common.generate_input ~rank:(Mpisim.Comm.rank comm) ~n_per_rank ~seed:42
      in
      let t0 = Mpisim.Comm.now comm in
      let sorted = Apps.Ss_kamping.sort comm data in
      let elapsed = Mpisim.Comm.now comm -. t0 in
      (* check the local slice and the boundary with the next rank *)
      for i = 1 to Array.length sorted - 1 do
        assert (sorted.(i - 1) <= sorted.(i))
      done;
      (sorted, elapsed))

let digest () =
  (* semantic fingerprint: slice sizes and contents, never simulated times *)
  Mpisim.Mpi.results_exn (compute ~ranks:8 ~n_per_rank:500 ())
  |> Array.to_list
  |> List.map (fun (sorted, _) ->
         Printf.sprintf "%d/%d" (Array.length sorted) (Gallery_digest.ints sorted))
  |> String.concat ";"

let run () =
  let ranks = 16 and n_per_rank = 5_000 in
  let per_rank = Mpisim.Mpi.results_exn (compute ~ranks ~n_per_rank ()) in
  let total = Array.fold_left (fun acc (s, _) -> acc + Array.length s) 0 per_rank in
  Printf.printf "sorted %d integers across %d ranks\n" total ranks;
  Array.iteri
    (fun r (s, t) ->
      Printf.printf "  rank %2d: %5d elements, %.1f us simulated\n" r (Array.length s)
        (1e6 *. t))
    per_rank;
  assert (total = ranks * n_per_rank);
  print_endline "globally sorted: yes"
