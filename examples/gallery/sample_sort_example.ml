(* Distributed sample sort (paper Fig. 7) on a 16-rank simulated machine.

   Run with:  dune exec examples/sample_sort_example.exe *)

let run () =
  let ranks = 16 and n_per_rank = 5_000 in
  let result =
    Mpisim.Mpi.run ~ranks (fun comm ->
        let data =
          Apps.Ss_common.generate_input ~rank:(Mpisim.Comm.rank comm) ~n_per_rank ~seed:42
        in
        let t0 = Mpisim.Comm.now comm in
        let sorted = Apps.Ss_kamping.sort comm data in
        let elapsed = Mpisim.Comm.now comm -. t0 in
        (* check the local slice and the boundary with the next rank *)
        for i = 1 to Array.length sorted - 1 do
          assert (sorted.(i - 1) <= sorted.(i))
        done;
        (Array.length sorted, elapsed))
  in
  let per_rank = Mpisim.Mpi.results_exn result in
  let total = Array.fold_left (fun acc (n, _) -> acc + n) 0 per_rank in
  Printf.printf "sorted %d integers across %d ranks\n" total ranks;
  Array.iteri
    (fun r (n, t) -> Printf.printf "  rank %2d: %5d elements, %.1f us simulated\n" r n (1e6 *. t))
    per_rank;
  assert (total = ranks * n_per_rank);
  print_endline "globally sorted: yes"
