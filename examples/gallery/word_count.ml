(* Word count, MapReduce-style (paper Sec. VI: "with distributed containers
   we want to enable lightweight bulk parallel computation inspired by
   MapReduce and Thrill, while not locking the programmer into the walled
   garden of a particular framework").

   Every rank holds some lines of text; words are shuffled to their hash
   owner with one serialized irregular exchange, counted locally, and the
   global top results are collected with the sorter plugin — all plain
   KaMPIng calls, no framework.

   Run with:  dune exec examples/word_count.exe *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

let corpus =
  [|
    "the quick brown fox jumps over the lazy dog";
    "the dog barks and the fox runs";
    "a quick dog and a lazy fox";
    "message passing is the backbone of high performance computing";
    "the interface is flexible and the overhead is near zero";
    "sorting searching and counting with the quick brown fox";
    "the lazy dog sleeps while the quick fox jumps";
    "zero overhead bindings for the message passing interface";
  |]

let compute ~ranks () =
    Mpisim.Mpi.run ~ranks (fun raw ->
        let comm = K.wrap raw in
        let r = K.rank comm and p = K.size comm in
        (* map: my lines -> words, bucketed by hash owner *)
        let buckets = Array.make p [] in
        Array.iteri
          (fun i line ->
            if i mod p = r then
              String.split_on_char ' ' line
              |> List.iter (fun word ->
                     if word <> "" then begin
                       let owner = Hashtbl.hash word mod p in
                       buckets.(owner) <- word :: buckets.(owner)
                     end))
          corpus;
        (* shuffle: one serialized irregular exchange *)
        let received = K.alltoallv_serialized comm Serde.Codec.(list string) buckets in
        (* reduce: count my words *)
        let counts = Hashtbl.create 64 in
        Array.iter
          (List.iter (fun w ->
               Hashtbl.replace counts w (1 + Option.value ~default:0 (Hashtbl.find_opt counts w))))
          received;
        (* global ranking: sort (count, word-fingerprint) pairs descending *)
        let dt = D.pair D.int D.int in
        let mine = V.create () in
        let names = Hashtbl.create 64 in
        Hashtbl.iter
          (fun w c ->
            Hashtbl.replace names (Hashtbl.hash w) w;
            V.push mine (c, Hashtbl.hash w))
          counts;
        let cmp (c1, h1) (c2, h2) = match compare c2 c1 with 0 -> compare h1 h2 | x -> x in
        let sorted = Kamping_plugins.Sorter.sort comm dt ~cmp mine in
        (* everyone learns the word spellings for display *)
        let all_names =
          K.allgather_serialized comm Serde.Codec.(list (pair int string))
            (Hashtbl.fold (fun h w acc -> (h, w) :: acc) names [])
        in
        let dictionary = Hashtbl.create 64 in
        Array.iter (List.iter (fun (h, w) -> Hashtbl.replace dictionary h w)) all_names;
        let top = K.gatherv comm dt ~send_buf:sorted in
        if K.is_root comm then
          V.to_list (V.sub top.K.recv_buf 0 (min 8 (V.length top.K.recv_buf)))
          |> List.sort cmp
          |> List.map (fun (c, h) -> (Hashtbl.find dictionary h, c))
        else [])

let digest () =
  let per_rank = Mpisim.Mpi.results_exn (compute ~ranks:4 ()) in
  per_rank.(0) |> List.map (fun (w, c) -> Printf.sprintf "%s=%d" w c) |> String.concat ","

let run () =
  let per_rank = Mpisim.Mpi.results_exn (compute ~ranks:4 ()) in
  print_endline "most frequent words:";
  List.iter (fun (w, c) -> Printf.printf "  %-12s %d\n" w c) per_rank.(0)
