(* 1D Jacobi heat diffusion with Cartesian halo exchange — the regular
   stencil workload MPL's layout system targets (paper Sec. II), expressed
   here with the Cartesian topology module plus a reproducible residual
   reduction.

   Run with:  dune exec examples/halo_exchange.exe *)

module D = Mpisim.Datatype
module K = Kamping.Comm

let compute ~ranks ~cells_per_rank ~steps () =
    Mpisim.Mpi.run ~ranks (fun comm ->
        let kc = K.wrap comm in
        let cart = Mpisim.Cart.create comm ~dims:[| ranks |] ~periodic:[| false |] in
        let r = Mpisim.Comm.rank comm in
        (* local cells + one ghost on each side; a hot spike on rank 0 *)
        let n = cells_per_rank in
        let u = Array.make (n + 2) 0.0 in
        if r = 0 then u.(1) <- 1000.0;
        let next = Array.copy u in
        let timer = Kamping.Measurement.create kc in
        for _ = 1 to steps do
          Kamping.Measurement.time timer "halo" (fun () ->
              let send_low = [| u.(1) |] and send_high = [| u.(n) |] in
              let recv_low = [| u.(0) |] and recv_high = [| u.(n + 1) |] in
              ignore
                (Mpisim.Cart.halo_exchange cart D.float ~dim:0 ~send_low ~send_high ~recv_low
                   ~recv_high);
              u.(0) <- recv_low.(0);
              u.(n + 1) <- recv_high.(0));
          Kamping.Measurement.time timer "stencil" (fun () ->
              (* insulated global edges: mirror ghosts (Neumann boundary) *)
              if r = 0 then u.(0) <- u.(1);
              if r = ranks - 1 then u.(n + 1) <- u.(n);
              for i = 1 to n do
                next.(i) <- u.(i) +. (0.25 *. (u.(i - 1) -. (2.0 *. u.(i)) +. u.(i + 1)))
              done;
              Array.blit next 1 u 1 n;
              K.compute kc (Kamping.Costs.linear n))
        done;
        (* reproducible global heat total: independent of the rank count *)
        let local = Ds.Vec.init n (fun i -> u.(i + 1)) in
        let total =
          Kamping_plugins.Reproducible_reduce.reduce kc D.float ( +. ) ~send_buf:local
        in
        let stats = Kamping.Measurement.aggregate timer in
        (total, u.(n / 2), stats))

let digest () =
  (* the reproducible total and the mid-cell temperatures are pure
     functions of the stencil; the measurement stats carry simulated
     times and are excluded *)
  let result = compute ~ranks:8 ~cells_per_rank:32 ~steps:50 () in
  Mpisim.Mpi.results_exn result |> Array.to_list
  |> List.map (fun (total, mid, _stats) ->
         Printf.sprintf "%h/%h" total mid)
  |> String.concat ";"

let run () =
  let result = compute ~ranks:8 ~cells_per_rank:64 ~steps:200 () in
  let per_rank = Mpisim.Mpi.results_exn result in
  let total, _, stats = per_rank.(0) in
  Printf.printf "after %d steps the total heat is %.6f (reproducible across rank counts)\n" 200
    total;
  Printf.printf "temperature mid-cell per rank:";
  Array.iter (fun (_, mid, _) -> Printf.printf " %7.3f" mid) per_rank;
  print_newline ();
  List.iter (fun s -> Format.printf "  %a@." Kamping.Measurement.pp_stats s) stats
