(* Streaming windowed analytics over the message aggregator:
   deterministic per-shard event streams are routed by key, batched by
   threshold with a time-based flush, and folded into tumbling-window
   top-k / count-distinct results.  The pipeline is all-integer, so the
   window results are identical on every rank, independent of schedule,
   equal to the sequential oracle, and survive a mid-stream rank kill
   through lib/ckpt unchanged.

   Run with:  dune exec examples/stream_windows.exe *)

module K = Kamping.Comm
module S = Apps.Stream_analytics
module GD = Gallery_digest

let ranks = 4

let cfg =
  {
    S.n_shards = 6;
    windows = 3;
    events_per_shard = 48;
    n_keys = 12;
    n_values = 40;
    topk = 3;
    threshold = 16;
    flush_every = 40e-6;
    seed = 5;
  }

let result_ints (r : S.window_result) =
  List.concat_map (fun (k, c) -> [ k; c ]) r.S.top @ [ r.S.distinct ]

let hash_results rs = GD.int_list (List.concat_map result_ints (Array.to_list rs))

let live () = Mpisim.Mpi.run ~ranks (fun raw -> S.run (K.wrap raw) cfg)

let resilient ?fail_at () =
  Mpisim.Mpi.run ?fail_at ~ranks (fun raw ->
      S.resilient ~policy:(Ckpt.Schedule.Every_n 1) (K.wrap raw) cfg)

let survivors res =
  List.filter_map
    (function Ok r -> Some r | Error _ -> None)
    (Array.to_list res.Mpisim.Mpi.results)

let verdict () =
  let oracle = S.reference cfg in
  let res = live () in
  let per_rank = Mpisim.Mpi.results_exn res in
  let live_ok = Array.for_all (fun r -> r = oracle) per_rank in
  let free = resilient () in
  let killed = resilient ~fail_at:[ (1, 0.5 *. free.Mpisim.Mpi.sim_time) ] () in
  let res_ok =
    List.for_all (fun r -> r = oracle) (survivors free)
    && survivors killed <> []
    && List.for_all (fun r -> r = oracle) (survivors killed)
  in
  (oracle, live_ok && res_ok)

let digest () =
  let oracle, ok = verdict () in
  Printf.sprintf "windows=%d/agree=%b" (hash_results oracle) ok

let run () =
  let oracle, ok = verdict () in
  Printf.printf "%d tumbling windows over %d shards on %d ranks:\n" cfg.S.windows cfg.S.n_shards
    ranks;
  Array.iteri
    (fun w r ->
      Printf.printf "  window %d: top-%d = %s, distinct = %d\n" w cfg.S.topk
        (String.concat ", " (List.map (fun (k, c) -> Printf.sprintf "%d:%d" k c) r.S.top))
        r.S.distinct)
    oracle;
  Printf.printf "  ranks, oracle and kill-recovery agree: %b\n" ok;
  if not ok then failwith "stream_windows: divergence detected"
