(* Sharded request serving with lib/serve: every rank is client and
   server at once.  Open-loop Zipf streams route through a batching
   aggregator to the shard owners; clients keep a small invalidated
   replica cache; and in the second act rank 1 is killed mid-run and the
   survivors recover the dead rank's shards from buddy checkpoints.

   Puts are commutative increments, so the final store is a pure
   function of the configuration: both the failure-free and the
   recovered run must reproduce the host-side oracle bit for bit.

   Run with:  dune exec examples/serving.exe *)

let ranks = 4

let cfg =
  {
    Serve.n_keys = 64;
    n_shards = 8;
    zipf_s = 1.1;
    rate = 5e4;
    write_ratio = 0.2;
    duration = 1e-3;
    epoch = 0.25e-3;
    tick = 10e-6;
    flush_interval = 30e-6;
    batch_threshold = 8;
    cache_capacity = 8;
    rebalance = false;
    persistent = false;
    seed = 21;
  }

let serve () = Serve.run ~ranks cfg

(* Kill rank 1 at 60% of the horizon; the resilient driver shrinks the
   world, restores from the per-epoch checkpoints and replays. *)
let recovered () =
  let res =
    Mpisim.Mpi.run ~fail_at:[ (1, 0.6 *. cfg.Serve.duration) ] ~ranks (fun comm ->
        Serve.resilient_body ~policy:(Ckpt.Schedule.Every_n 1) cfg comm)
  in
  Serve.summarize cfg ~ranks ~sim_time:res.Mpisim.Mpi.sim_time res.Mpisim.Mpi.results

let digest () =
  (* schedule-independent semantics only: request counts and the final
     store (throughput, latency and hit rate are timing, not semantics) *)
  let r = serve () in
  let k = recovered () in
  Printf.sprintf "issued=%d/completed=%d/store=%d/oracle=%b/recovered=%b"
    r.Serve.issued r.Serve.completed r.Serve.store_digest
    (r.Serve.store_digest = Serve.expected_store_digest cfg)
    (k.Serve.store_digest = r.Serve.store_digest && k.Serve.recoveries >= 1)

let run () =
  let r = serve () in
  Printf.printf "serving %d requests over %d shards on %d ranks (zipf s=%.1f)\n"
    r.Serve.issued cfg.Serve.n_shards ranks cfg.Serve.zipf_s;
  Printf.printf "  throughput %.3g req/s, p50 %.1f us, p99 %.1f us, cache hit rate %.0f%%\n"
    r.Serve.throughput (1e6 *. r.Serve.p50) (1e6 *. r.Serve.p99) (100.0 *. r.Serve.hit_rate);
  let ok = r.Serve.store_digest = Serve.expected_store_digest cfg in
  Printf.printf "  final store matches the host-side oracle: %b\n" ok;
  if not ok then failwith "serving: store diverged from the oracle";
  let k = recovered () in
  Printf.printf "killed rank 1 at %.2f ms: %d recovery, store %s, p99 %.1f us\n"
    (1e3 *. 0.6 *. cfg.Serve.duration) k.Serve.recoveries
    (if k.Serve.store_digest = r.Serve.store_digest then "bit-identical" else "DIVERGED")
    (1e6 *. k.Serve.p99);
  if k.Serve.store_digest <> r.Serve.store_digest then
    failwith "serving: recovered store diverged"
