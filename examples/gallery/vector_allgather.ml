(* The paper's running example (Figs. 2 and 3): gathering a distributed
   vector, migrated step by step from plain MPI to full KaMPIng.

   Run with:  dune exec examples/vector_allgather.exe *)

module C = Mpisim.Collectives
module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

(* Fig. 2: plain MPI — 14 lines of boilerplate in the paper. *)
let plain_mpi comm v =
  let p = Mpisim.Comm.size comm and r = Mpisim.Comm.rank comm in
  let rc = Array.make p 0 in
  rc.(r) <- Array.length v;
  C.allgather ~inplace:true comm D.int ~sendbuf:[||] ~recvbuf:rc ~count:1;
  let rd = Array.make p 0 in
  for i = 1 to p - 1 do
    rd.(i) <- rd.(i - 1) + rc.(i - 1)
  done;
  let n_glob = rc.(p - 1) + rd.(p - 1) in
  let v_glob = Array.make (max n_glob 1) 0 in
  C.allgatherv comm D.int ~sendbuf:v ~scount:(Array.length v) ~recvbuf:v_glob ~rcounts:rc
    ~rdispls:rd;
  Array.sub v_glob 0 n_glob

(* Fig. 3, version 1: KaMPIng's interface, everything explicit. *)
let version1 kc v =
  let p = K.size kc and r = K.rank kc in
  let rc = V.make p 0 in
  V.set rc r (V.length v);
  K.allgather_inplace kc D.int ~send_recv_buf:rc;
  let rd = Array.make p 0 in
  for i = 1 to p - 1 do
    rd.(i) <- rd.(i - 1) + V.get rc (i - 1)
  done;
  let n_glob = V.get rc (p - 1) + rd.(p - 1) in
  let v_glob = V.make n_glob 0 in
  let rc_arr = V.to_array rc in
  ignore (K.allgatherv ~recv_counts:rc_arr ~recv_displs:rd ~recv_buf:v_glob kc D.int ~send_buf:v);
  v_glob

(* Fig. 3, version 2: displacements are computed implicitly. *)
let version2 kc v =
  let p = K.size kc and r = K.rank kc in
  let rc = V.make p 0 in
  V.set rc r (V.length v);
  K.allgather_inplace kc D.int ~send_recv_buf:rc;
  let v_glob = V.create () in
  ignore
    (K.allgatherv ~recv_counts:(V.to_array rc) ~recv_buf:v_glob
       ~recv_policy:Kamping.Resize_policy.Resize_to_fit kc D.int ~send_buf:v);
  v_glob

(* Fig. 3, version 3: counts are automatically exchanged and the result is
   returned by value — the one-liner. *)
let version3 kc v = (K.allgatherv kc D.int ~send_buf:v).K.recv_buf

let compute () =
  Mpisim.Mpi.run ~ranks:6 (fun comm ->
        let kc = K.wrap comm in
        let r = K.rank kc in
        let data = Array.init ((2 * r) + 1) (fun i -> (100 * r) + i) in
        let reference = plain_mpi comm data in
        let vec = V.of_array data in
        let v1 = version1 kc vec in
        let v2 = version2 kc vec in
        let v3 = version3 kc vec in
        assert (V.to_array v1 = reference);
        assert (V.to_array v2 = reference);
        assert (V.to_array v3 = reference);
        (Array.length reference, Gallery_digest.ints reference))

let digest () =
  Mpisim.Mpi.results_exn (compute ())
  |> Array.to_list
  |> List.map (fun (len, h) -> Printf.sprintf "%d/%d" len h)
  |> String.concat ";"

let run () =
  let result = compute () in
  let lengths = Array.map fst (Mpisim.Mpi.results_exn result) in
  Printf.printf "all migration stages agree on every rank; global size = %d\n" lengths.(0);
  Printf.printf "MPI calls issued in total:\n";
  List.iter
    (fun (name, count) -> Printf.printf "  %-20s %d\n" name count)
    result.Mpisim.Mpi.profile.Mpisim.Profiling.calls
