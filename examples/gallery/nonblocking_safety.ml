(* Memory-safe non-blocking communication (paper Fig. 6): the request and
   the buffers live inside the non-blocking result; the data only becomes
   reachable through wait/test.

   Run with:  dune exec examples/nonblocking_safety.exe *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

let run () =
  ignore
    (Mpisim.Mpi.run_exn ~ranks:2 (fun raw ->
         let comm = K.wrap raw in
         if K.rank comm = 0 then begin
           (* the send buffer is moved into the call: the non-blocking
              result keeps it alive and hands it back on completion *)
           let v = V.of_list [ 1; 2; 3; 4 ] in
           let pending = K.isend comm D.int ~send_buf:v ~dst:1 in
           (* ... do other work while the message is in flight ... *)
           K.compute comm 5.0e-6;
           let v_again = Kamping.Nb_result.wait pending in
           Printf.printf "rank 0: buffer returned after completion, %d elements\n"
             (V.length v_again)
         end
         else begin
           let pending = K.irecv ~count:4 comm D.int ~src:0 in
           (* test never exposes the buffer before the data arrived *)
           let polls = ref 0 in
           let rec poll () =
             match Kamping.Nb_result.test pending with
             | None ->
                 incr polls;
                 K.compute comm 1.0e-6;
                 poll ()
             | Some data -> data
           in
           let data = poll () in
           Printf.printf "rank 1: received %s after %d polls\n"
             (String.concat ";" (List.map string_of_int (V.to_list data)))
             !polls
         end;
         (* request pools: submit many operations, complete them at once *)
         let pool = Kamping.Request_pool.create () in
         let peer = 1 - K.rank comm in
         for tag = 10 to 14 do
           let res = K.isend ~tag comm D.int ~send_buf:(V.make 1 tag) ~dst:peer in
           Kamping.Request_pool.add pool (Kamping.Nb_result.request res)
         done;
         for tag = 10 to 14 do
           ignore (K.recv ~tag ~count:1 comm D.int ~src:peer)
         done;
         Kamping.Request_pool.wait_all pool;
         Printf.printf "rank %d: request pool drained\n" (K.rank comm)))
