(* Memory-safe non-blocking communication (paper Fig. 6): the request and
   the buffers live inside the non-blocking result; the data only becomes
   reachable through wait/test.

   Run with:  dune exec examples/nonblocking_safety.exe *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

let body ~verbose raw =
  let comm = K.wrap raw in
  let summary =
    if K.rank comm = 0 then begin
      (* the send buffer is moved into the call: the non-blocking
         result keeps it alive and hands it back on completion *)
      let v = V.of_list [ 1; 2; 3; 4 ] in
      let pending = K.isend comm D.int ~send_buf:v ~dst:1 in
      (* ... do other work while the message is in flight ... *)
      K.compute comm 5.0e-6;
      let v_again = Kamping.Nb_result.wait pending in
      if verbose then
        Printf.printf "rank 0: buffer returned after completion, %d elements\n"
          (V.length v_again);
      [ V.length v_again ]
    end
    else begin
      let pending = K.irecv ~count:4 comm D.int ~src:0 in
      (* test never exposes the buffer before the data arrived *)
      let polls = ref 0 in
      let rec poll () =
        match Kamping.Nb_result.test pending with
        | None ->
            incr polls;
            K.compute comm 1.0e-6;
            poll ()
        | Some data -> data
      in
      let data = poll () in
      if verbose then
        Printf.printf "rank 1: received %s after %d polls\n"
          (String.concat ";" (List.map string_of_int (V.to_list data)))
          !polls;
      (* the poll count is timing-dependent and deliberately NOT part of
         the returned summary *)
      V.to_list data
    end
  in
  (* request pools: submit many operations, complete them at once *)
  let pool = Kamping.Request_pool.create () in
  let peer = 1 - K.rank comm in
  for tag = 10 to 14 do
    let res = K.isend ~tag comm D.int ~send_buf:(V.make 1 tag) ~dst:peer in
    Kamping.Request_pool.add pool (Kamping.Nb_result.request res)
  done;
  let echoed = ref [] in
  for tag = 10 to 14 do
    let got = K.recv ~tag ~count:1 comm D.int ~src:peer in
    echoed := V.get got 0 :: !echoed
  done;
  Kamping.Request_pool.wait_all pool;
  if verbose then Printf.printf "rank %d: request pool drained\n" (K.rank comm);
  (summary, List.rev !echoed)

let compute ~verbose () = Mpisim.Mpi.run_exn ~ranks:2 (body ~verbose)

let digest () =
  compute ~verbose:false () |> Array.to_list
  |> List.map (fun (summary, echoed) ->
         Printf.sprintf "%d/%d" (Gallery_digest.int_list summary)
           (Gallery_digest.int_list echoed))
  |> String.concat ";"

let run () = ignore (compute ~verbose:true ())
