(* 1D Jacobi heat diffusion where the per-step halo swap runs on MPI-4
   persistent requests — the [*_init] calls validate the exchange once,
   every step pays only Start/Wait — followed by a partitioned-send gather
   of the final field at rank 0 (MPI_Psend_init/MPI_Precv_init, each
   partition released independently with MPI_Pready).

   The [~persistent:false] variant moves the same data through ephemeral
   isend/irecv and plain send/recv.  The two transports must produce
   bit-identical fields: [digest] runs both and fails loudly if they ever
   diverge, so the exploration suite re-proves the equivalence on every
   random schedule it tries.

   Run with:  dune exec examples/persistent_halo.exe *)

module D = Mpisim.Datatype
module K = Kamping.Comm
module P = Mpisim.P2p
module Persist = Mpisim.Persist
module Pool = Kamping.Request_pool
module V = Ds.Vec

let tag_low = 1 (* travels leftwards: u(1) into the left peer's high ghost *)
let tag_high = 2 (* travels rightwards: u(n) into the right peer's low ghost *)
let tag_gather = 9
let parts = 4 (* partitions per gathered field *)

let compute ?net ?(persistent = true) ~ranks ~cells_per_rank ~steps () =
  Mpisim.Mpi.run ?net ~ranks (fun comm ->
      let r = Mpisim.Comm.rank comm and p = Mpisim.Comm.size comm in
      let n = cells_per_rank in
      let u = Array.make (n + 2) 0.0 in
      if r = 0 then u.(1) <- 1000.0;
      if r = p - 1 then u.(n) <- 250.0;
      let next = Array.copy u in
      let left = if r > 0 then Some (r - 1) else None in
      let right = if r < p - 1 then Some (r + 1) else None in
      (* fixed envelopes: one staging cell per direction, re-read/refilled
         every round (persistent requests pin buffer identity, not
         contents) *)
      let send_low = [| 0.0 |] and send_high = [| 0.0 |] in
      let recv_low = [| 0.0 |] and recv_high = [| 0.0 |] in
      let kc = K.wrap comm in
      let pool = Pool.create () in
      if persistent then begin
        (match left with
        | Some peer ->
            Pool.request_init pool
              (K.send_init kc D.float ~send_buf:(V.unsafe_of_array send_low 1) ~dst:peer
                 ~tag:tag_low);
            Pool.request_init pool (P.recv_init comm D.float recv_low ~src:peer ~tag:tag_high)
        | None -> ());
        match right with
        | Some peer ->
            Pool.request_init pool
              (K.send_init kc D.float ~send_buf:(V.unsafe_of_array send_high 1) ~dst:peer
                 ~tag:tag_high);
            Pool.request_init pool (P.recv_init comm D.float recv_high ~src:peer ~tag:tag_low)
        | None -> ()
      end;
      let exchange_ephemeral () =
        let reqs = ref [] in
        (match left with
        | Some peer ->
            reqs := P.irecv comm D.float recv_low ~src:peer ~tag:tag_high :: !reqs;
            reqs := P.isend comm D.float send_low ~dst:peer ~tag:tag_low :: !reqs
        | None -> ());
        (match right with
        | Some peer ->
            reqs := P.irecv comm D.float recv_high ~src:peer ~tag:tag_low :: !reqs;
            reqs := P.isend comm D.float send_high ~dst:peer ~tag:tag_high :: !reqs
        | None -> ());
        List.iter (fun req -> ignore (Mpisim.Request.wait req)) !reqs
      in
      for _ = 1 to steps do
        send_low.(0) <- u.(1);
        send_high.(0) <- u.(n);
        if persistent then begin
          Pool.start_all pool;
          Pool.wait_all pool
        end
        else exchange_ephemeral ();
        (* insulated global edges: mirror ghosts (Neumann boundary) *)
        u.(0) <- (match left with Some _ -> recv_low.(0) | None -> u.(1));
        u.(n + 1) <- (match right with Some _ -> recv_high.(0) | None -> u.(n));
        for i = 1 to n do
          next.(i) <- u.(i) +. (0.25 *. (u.(i - 1) -. (2.0 *. u.(i)) +. u.(i + 1)))
        done;
        Array.blit next 1 u 1 n;
        K.compute kc (Kamping.Costs.linear n)
      done;
      if persistent then Pool.free_all pool;
      (* Gather the final interiors at rank 0.  Persistent mode streams
         each field as [parts] independently released partitions; the
         ephemeral variant moves the same bytes with plain send/recv. *)
      assert (n mod parts = 0);
      let interior = Array.sub u 1 n in
      let field =
        if r = 0 then begin
          let field = Array.make (p * n) 0.0 in
          Array.blit interior 0 field 0 n;
          if persistent then begin
            let bufs = Array.init (p - 1) (fun _ -> Array.make n 0.0) in
            let hs =
              Array.init (p - 1) (fun j ->
                  P.precv_init comm D.float bufs.(j) ~partitions:parts ~count:(n / parts)
                    ~src:(j + 1) ~tag:tag_gather)
            in
            Array.iter Persist.start hs;
            Array.iter (fun h -> ignore (Persist.wait h)) hs;
            Array.iter
              (fun h ->
                for i = 0 to parts - 1 do
                  assert (Persist.parrived h i)
                done;
                Persist.free h)
              hs;
            Array.iteri (fun j b -> Array.blit b 0 field ((j + 1) * n) n) bufs
          end
          else
            for src = 1 to p - 1 do
              ignore (P.recv comm D.float field ~pos:(src * n) ~count:n ~src ~tag:tag_gather)
            done;
          Some field
        end
        else begin
          if persistent then begin
            let h =
              P.psend_init comm D.float interior ~partitions:parts ~count:(n / parts) ~dst:0
                ~tag:tag_gather
            in
            Persist.start h;
            for i = 0 to parts - 1 do
              Persist.pready h i
            done;
            ignore (Persist.wait h);
            Persist.free h
          end
          else P.send comm D.float interior ~count:n ~dst:0 ~tag:tag_gather;
          None
        end
      in
      (field, u.((n / 2) + 1)))

let digest_of ~persistent () =
  let result = compute ~persistent ~ranks:6 ~cells_per_rank:16 ~steps:40 () in
  Mpisim.Mpi.results_exn result |> Array.to_list
  |> List.map (fun (field, mid) ->
         let f =
           match field with
           | Some f -> string_of_int (Gallery_digest.floats f)
           | None -> "-"
         in
         Printf.sprintf "%s/%h" f mid)
  |> String.concat ";"

let digest () =
  let pers = digest_of ~persistent:true () in
  let eph = digest_of ~persistent:false () in
  if pers <> eph then
    failwith
      (Printf.sprintf "persistent_halo: transports diverge:\n  persistent: %s\n  ephemeral:  %s"
         pers eph);
  pers

let run () =
  let steps = 100 in
  let result = compute ~persistent:true ~ranks:6 ~cells_per_rank:32 ~steps () in
  let per_rank = Mpisim.Mpi.results_exn result in
  (match per_rank.(0) with
  | Some field, _ ->
      let total = Array.fold_left ( +. ) 0.0 field in
      Printf.printf "after %d persistent halo rounds the total heat is %.6f over %d cells\n" steps
        total (Array.length field)
  | None, _ -> ());
  Printf.printf "temperature mid-cell per rank:";
  Array.iter (fun (_, mid) -> Printf.printf " %7.3f" mid) per_rank;
  print_newline ();
  Printf.printf "ephemeral transport agrees bit-for-bit: %b\n"
    (digest_of ~persistent:true () = digest_of ~persistent:false ())
