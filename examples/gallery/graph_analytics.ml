(* PageRank and connected components as differential-test citizens: the
   same graph workload runs through the sparse (NBX), dense (tuned
   alltoallv) and neighborhood-collective exchange variants, and every
   variant must produce the bit-identical result — which in turn must
   equal the host-side sequential oracle, and survive a mid-run rank
   kill through lib/ckpt unchanged.

   Run with:  dune exec examples/graph_analytics.exe *)

module K = Kamping.Comm
module Gen = Graphgen.Generators
module G = Graphgen.Distgraph
module GD = Gallery_digest

let ranks = 4
let alpha = 0.85
let iters = 8
let n_shards = 6

(* one low-locality and one high-locality family (Fig. 10's spectrum) *)
let workloads = [ (Gen.Erdos_renyi, 60, 3, 23); (Gen.Rgg2d, 64, 4, 7) ]

let graph_for family ~global_n ~avg_degree ~seed raw =
  Gen.generate family ~rank:(Mpisim.Comm.rank raw) ~comm_size:ranks ~global_n ~avg_degree ~seed

let pagerank_scores variant family ~global_n ~avg_degree ~seed =
  let res =
    Mpisim.Mpi.results_exn
      (Mpisim.Mpi.run ~ranks (fun raw ->
           let g = graph_for family ~global_n ~avg_degree ~seed raw in
           Apps.Pagerank.run ~variant (K.wrap raw) g ~alpha ~iters))
  in
  Array.concat (Array.to_list res)

let cc_labels variant family ~global_n ~avg_degree ~seed =
  let res =
    Mpisim.Mpi.results_exn
      (Mpisim.Mpi.run ~ranks (fun raw ->
           let g = graph_for family ~global_n ~avg_degree ~seed raw in
           Apps.Conncomp.run ~variant (K.wrap raw) g))
  in
  Array.concat (Array.to_list res)

(* Assemble the (shard, block) lists the resilient runs return into the
   global vector; every shard must be owned by exactly one survivor. *)
let assemble ~global_n make res =
  let out = Array.make global_n (make 0) in
  let seen = Hashtbl.create 8 in
  Array.iter
    (function
      | Ok pairs ->
          List.iter
            (fun (s, block) ->
              Hashtbl.replace seen s ();
              let first, _ = G.block_range ~global_n ~comm_size:n_shards s in
              Array.blit block 0 out first (Array.length block))
            pairs
      | Error _ -> ())
    res.Mpisim.Mpi.results;
  if Hashtbl.length seen <> n_shards then failwith "graph_analytics: missing shards";
  out

let resilient_pagerank ?fail_at family ~global_n ~avg_degree ~seed =
  Mpisim.Mpi.run ?fail_at ~ranks (fun raw ->
      Apps.Pagerank_resilient.run ~policy:(Ckpt.Schedule.Every_n 1) (K.wrap raw) ~family ~n_shards
        ~global_n ~avg_degree ~seed ~alpha ~iters)

let resilient_cc ?fail_at family ~global_n ~avg_degree ~seed =
  Mpisim.Mpi.run ?fail_at ~ranks (fun raw ->
      Apps.Conncomp_resilient.run ~policy:(Ckpt.Schedule.Every_n 1) (K.wrap raw) ~family ~n_shards
        ~global_n ~avg_degree ~seed)

(* (pagerank digest, cc digest, all-agree flag) for one workload *)
let family_results (family, global_n, avg_degree, seed) =
  let pr_ref = Apps.Pagerank.reference family ~global_n ~avg_degree ~seed ~alpha ~iters in
  let pr_ok =
    List.for_all
      (fun v -> pagerank_scores v family ~global_n ~avg_degree ~seed = pr_ref)
      Apps.Gexchange.all_variants
  in
  let cc_ref = Apps.Conncomp.reference family ~global_n ~avg_degree ~seed in
  let cc_ok =
    List.for_all
      (fun v -> cc_labels v family ~global_n ~avg_degree ~seed = cc_ref)
      Apps.Gexchange.all_variants
  in
  let pr_free = resilient_pagerank family ~global_n ~avg_degree ~seed in
  let t_fail = 0.5 *. pr_free.Mpisim.Mpi.sim_time in
  let pr_killed = resilient_pagerank ~fail_at:[ (1, t_fail) ] family ~global_n ~avg_degree ~seed in
  let pr_res_ok =
    assemble ~global_n (fun _ -> 0.0) pr_free = pr_ref
    && assemble ~global_n (fun _ -> 0.0) pr_killed = pr_ref
  in
  let cc_free = resilient_cc family ~global_n ~avg_degree ~seed in
  let cc_killed =
    resilient_cc ~fail_at:[ (1, 0.5 *. cc_free.Mpisim.Mpi.sim_time) ] family ~global_n ~avg_degree
      ~seed
  in
  let cc_res_ok =
    assemble ~global_n (fun _ -> 0) cc_free = cc_ref
    && assemble ~global_n (fun _ -> 0) cc_killed = cc_ref
  in
  (GD.floats pr_ref, GD.ints cc_ref, pr_ok && cc_ok && pr_res_ok && cc_res_ok)

let digest () =
  String.concat "|"
    (List.map
       (fun ((family, _, _, _) as w) ->
         let pr, cc, ok = family_results w in
         Printf.sprintf "%s:pr=%d,cc=%d,agree=%b" (Gen.family_name family) pr cc ok)
       workloads)

let run () =
  List.iter
    (fun ((family, global_n, avg_degree, seed) as w) ->
      Printf.printf "%s (n=%d, d=%d):\n" (Gen.family_name family) global_n avg_degree;
      List.iter
        (fun v ->
          let t = ref 0.0 in
          let res =
            Mpisim.Mpi.run ~ranks (fun raw ->
                let g = graph_for family ~global_n ~avg_degree ~seed raw in
                let kc = K.wrap raw in
                let pr = Apps.Pagerank.run ~variant:v kc g ~alpha ~iters in
                let cc = Apps.Conncomp.run ~variant:v kc g in
                (pr, cc))
          in
          t := res.Mpisim.Mpi.sim_time;
          Printf.printf "  %-9s pagerank+cc in %7.0f us simulated\n"
            (Apps.Gexchange.variant_name v) (!t *. 1e6))
        Apps.Gexchange.all_variants;
      let _, _, ok = family_results w in
      Printf.printf "  variants, oracle and kill-recovery agree: %b\n" ok;
      if not ok then failwith "graph_analytics: divergence detected")
    workloads
