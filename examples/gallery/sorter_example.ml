(* The STL-like distributed sorter plugin (paper Sec. V): sorting custom
   records with a user comparison function.

   Run with:  dune exec examples/sorter_example.exe *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

(* sort (score, name-id) pairs by descending score *)
let dt = D.pair D.float D.int
let cmp (s1, i1) (s2, i2) = match compare s2 s1 with 0 -> compare i1 i2 | c -> c

let compute () =
  Mpisim.Mpi.run_exn ~ranks:8 (fun raw ->
      let comm = K.wrap raw in
      let rng = Simnet.Rng.split (Simnet.Rng.create 11L) (K.rank comm) in
      let records = V.init 100 (fun i -> (Simnet.Rng.float rng, (K.rank comm * 100) + i)) in
      let sorted = Kamping_plugins.Sorter.sort comm dt ~cmp records in
      assert (Kamping_plugins.Sorter.is_globally_sorted comm dt ~cmp sorted);
      let top = List.init (min 5 (V.length sorted)) (V.get sorted) in
      K.barrier comm;
      (V.length sorted, top))

let digest () =
  compute () |> Array.to_list
  |> List.map (fun (len, top) ->
         Printf.sprintf "%d/%d" len
           (Gallery_digest.int_list
              (List.map (fun (s, id) -> Gallery_digest.combine (Gallery_digest.float_bits s) id) top)))
  |> String.concat ";"

let run () =
  let per_rank = compute () in
  let _, top = per_rank.(0) in
  Printf.printf "rank 0 holds the top %d scores:\n" (List.length top);
  List.iteri
    (fun i (score, id) -> Printf.printf "  #%d: %.4f (record %d)\n" (i + 1) score id)
    top;
  print_endline "globally sorted across all ranks: yes"
