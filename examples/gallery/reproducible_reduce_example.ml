(* Reproducible reduction (paper Sec. V-C, Fig. 13): the same float data
   distributed over different rank counts gives bitwise-identical sums with
   the plugin, while the ordinary reduction drifts.

   Run with:  dune exec examples/reproducible_reduce_example.exe *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

let data =
  Array.init 1000 (fun i ->
      (10.0 ** float_of_int ((i * 7 mod 33) - 16)) *. (if i mod 3 = 0 then -1.0 else 1.0))

let distribute p r =
  let n = Array.length data in
  let base = n / p and extra = n mod p in
  let count = base + (if r < extra then 1 else 0) in
  let start = (r * base) + min r extra in
  V.init count (fun i -> data.(start + i))

let pair_for ranks =
  let naive =
    (Mpisim.Mpi.run_exn ~ranks (fun raw ->
         let comm = K.wrap raw in
         let local = V.fold_left ( +. ) 0.0 (distribute ranks (K.rank comm)) in
         K.allreduce_single comm D.float Mpisim.Op.float_sum local)).(0)
  in
  let repro =
    (Mpisim.Mpi.run_exn ~ranks (fun raw ->
         let comm = K.wrap raw in
         Kamping_plugins.Reproducible_reduce.reduce comm D.float ( +. )
           ~send_buf:(distribute ranks (K.rank comm)))).(0)
  in
  (naive, repro)

let digest () =
  (* both reductions are deterministic per rank count (tree shapes are
     fixed); exact hex floats make any drift visible *)
  [ 1; 2; 3; 7 ]
  |> List.map (fun ranks ->
         let naive, repro = pair_for ranks in
         Printf.sprintf "%d:%h/%h" ranks naive repro)
  |> String.concat ";"

let run () =
  Printf.printf "%-6s  %-26s  %-26s\n" "ranks" "ordinary allreduce" "reproducible plugin";
  List.iter
    (fun ranks ->
      let naive, repro = pair_for ranks in
      Printf.printf "%-6d  %.17e  %.17e\n" ranks naive repro)
    [ 1; 2; 3; 7; 16; 64 ];
  print_endline "note: the right column never changes; the left one depends on the rank count"
