(* Fault tolerance with the ULFM plugin (paper Fig. 12): rank 2 dies
   mid-run; the survivors catch the failure, revoke the communicator,
   shrink to a survivors-only communicator and finish the computation.

   Run with:  dune exec examples/fault_tolerance.exe *)

module K = Kamping.Comm
module D = Mpisim.Datatype

let compute ~verbose () =
  Mpisim.Mpi.run ~ranks:6
    ~failures:[ (100.0e-6, 2) ] (* rank 2 fails after 100 us *)
    (fun raw ->
      let comm = ref (K.wrap raw) in
      let completed = ref 0 in
      while !completed < 8 do
        K.compute !comm 30.0e-6;
        try
          let (_ : int) = K.allreduce_single !comm D.int Mpisim.Op.int_sum 1 in
          incr completed
        with Mpisim.Errors.Process_failed _ | Mpisim.Errors.Comm_revoked ->
          (* the Fig. 12 recovery pattern *)
          if not (Kamping_plugins.Ulfm.is_revoked !comm) then Kamping_plugins.Ulfm.revoke !comm;
          comm := Kamping_plugins.Ulfm.shrink !comm;
          completed := K.allreduce_single !comm D.int Mpisim.Op.int_min !completed;
          if verbose then
            Printf.printf "rank (world) recovered: now %d survivors\n" (K.size !comm)
      done;
      (K.size !comm, !completed))

let digest () =
  (* the final (size, rounds) per survivor and the set of dead ranks are
     schedule-independent; recovery timing is not and stays out *)
  let result = compute ~verbose:false () in
  result.Mpisim.Mpi.results |> Array.to_list
  |> List.map (function
       | Ok (size, rounds) -> Printf.sprintf "%d/%d" size rounds
       | Error (Mpisim.Mpi.Rank_died | Simnet.Engine.Killed) -> "dead"
       | Error e -> raise e)
  |> String.concat ";"

let run () =
  let result = compute ~verbose:true () in
  Array.iteri
    (fun r outcome ->
      match outcome with
      | Ok (size, rounds) ->
          Printf.printf "rank %d finished %d rounds on a %d-rank communicator\n" r rounds size
      | Error Mpisim.Mpi.Rank_died | Error Simnet.Engine.Killed ->
          Printf.printf "rank %d died (injected failure)\n" r
      | Error e -> raise e)
    result.Mpisim.Mpi.results
