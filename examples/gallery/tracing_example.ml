(* Tracing & wait-state analysis: where does simulated time go?

   Run with:  dune exec examples/tracing_example.exe
   (or trace any example with MPISIM_TRACE=1 and export your own runs)

   A 4-rank pipeline with a deliberately slow first stage: rank 0 computes
   twice as long before passing its token on, so every downstream rank
   waits on a late sender.  The trace records every call span, message and
   suspension; the analysis classifies the waits, and the critical path
   explains the whole run end to end.  The same trace exports to Chrome
   trace-event JSON for Perfetto. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

let stage_cost = 100e-6 (* seconds of modelled work per stage *)

let compute () =
  Mpisim.Mpi.run ~trace:true ~ranks:4 (fun raw ->
        let comm = K.wrap raw in
        let rank = K.rank comm and size = K.size comm in
        assert (K.tracing comm);
        (* receive the token from the previous stage *)
        let token =
          if rank = 0 then V.make 1 0
          else K.recv ~count:1 comm D.int ~src:(rank - 1)
        in
        (* user-labelled region: shows up as its own timeline track entry *)
        K.with_region comm "stage-work" (fun () ->
            K.compute comm (if rank = 0 then 2.0 *. stage_cost else stage_cost));
        (* pass it on *)
        if rank < size - 1 then
          K.send comm D.int ~send_buf:(V.map (fun x -> x + 1) token) ~dst:(rank + 1))

let digest () =
  (* event counts and wait durations shift with the schedule; the structural
     invariants of a serial pipeline with a slow head stage do not *)
  let res = compute () in
  ignore (Mpisim.Mpi.results_exn res);
  let data = Option.get res.Mpisim.Mpi.trace in
  let report = Trace.Analysis.analyze data in
  let serial_path =
    Float.abs (Trace.Analysis.critical_length report -. data.Trace.Event.total) < 1e-9
  in
  let has_late_senders =
    List.exists
      (fun ws -> ws.Trace.Analysis.ws_class = Trace.Analysis.Late_sender)
      report.Trace.Analysis.wait_states
  in
  let json = Trace.Chrome.to_json data in
  let round_trips = Serde.Json.equal (Serde.Json.parse (Serde.Json.to_string json)) json in
  Printf.sprintf "serial_path=%b/late_senders=%b/chrome_roundtrip=%b" serial_path
    has_late_senders round_trips

let run () =
  let res = compute () in
  ignore (Mpisim.Mpi.results_exn res);
  let data = Option.get res.Mpisim.Mpi.trace in
  let report = Trace.Analysis.analyze data in
  Trace.Summary.print report;

  (* The pipeline is serial, so the critical path covers the entire run. *)
  let len = Trace.Analysis.critical_length report in
  assert (Float.abs (len -. data.Trace.Event.total) < 1e-9);

  (* Downstream ranks wait on the slow stage 0: late-sender states. *)
  let late_senders =
    List.filter
      (fun ws -> ws.Trace.Analysis.ws_class = Trace.Analysis.Late_sender)
      report.Trace.Analysis.wait_states
  in
  assert (late_senders <> []);
  Printf.printf "\nlate-sender waits: %d (first charged to rank %d, caused by rank %d)\n"
    (List.length late_senders)
    (List.hd late_senders).Trace.Analysis.ws_rank
    (List.hd late_senders).Trace.Analysis.ws_peer;

  (* Chrome trace-event export: load this in https://ui.perfetto.dev *)
  let json = Trace.Chrome.to_json data in
  let reparsed = Serde.Json.parse (Serde.Json.to_string json) in
  assert (Serde.Json.equal reparsed json);
  Printf.printf "Chrome trace: %d events, round-trips through Serde.Json\n"
    (match Serde.Json.member "traceEvents" json with
    | Some (Serde.Json.List l) -> List.length l
    | _ -> 0);
  print_endline "tracing example: OK"
