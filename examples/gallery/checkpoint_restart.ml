(* Checkpoint/restart with lib/ckpt: a restartable BFS survives a rank
   failure and still produces the exact distances of a failure-free run.

   The graph is split into virtual shards checkpointed to buddy ranks
   (XOR partners) every iteration; when rank 1 dies mid-search the
   survivors shrink the communicator, agree on the newest complete
   checkpoint epoch, adopt the orphaned shards from the buddy copies and
   finish the search.

   Run with:  dune exec examples/checkpoint_restart.exe *)

module Gen = Graphgen.Generators

let family = Gen.Erdos_renyi
let n_shards = 4
let global_n = 96
let avg_degree = 4
let seed = 11
let src = 0

let search ?fail_at () =
  Mpisim.Mpi.run ?fail_at ~ranks:4 (fun raw ->
      Apps.Bfs_resilient.run ~policy:(Ckpt.Schedule.Every_n 1) (Kamping.Comm.wrap raw)
        ~family ~n_shards ~global_n ~avg_degree ~seed ~src)

let collect res =
  let by_shard = Hashtbl.create 8 in
  Array.iter
    (function
      | Ok pairs -> List.iter (fun (s, d) -> Hashtbl.replace by_shard s d) pairs
      | Error _ -> ())
    res.Mpisim.Mpi.results;
  List.init n_shards (fun s -> Hashtbl.find by_shard s)

let digest () =
  (* the recovered shard distances must be bitwise those of the
     failure-free run regardless of schedule; recovery cost is timing *)
  let reference = search () in
  let t_fail = 0.5 *. reference.Mpisim.Mpi.sim_time in
  let recovered = search ~fail_at:[ (1, t_fail) ] () in
  let checksum res =
    collect res |> List.map Gallery_digest.ints |> Gallery_digest.int_list
  in
  Printf.sprintf "%d/identical=%b" (checksum reference)
    (collect recovered = collect reference)

let run () =
  let reference = search () in
  Printf.printf "failure-free search: %.0f us simulated\n"
    (reference.Mpisim.Mpi.sim_time *. 1e6);
  (* Now kill rank 1 at half of the failure-free runtime. *)
  let t_fail = 0.5 *. reference.Mpisim.Mpi.sim_time in
  let recovered = search ~fail_at:[ (1, t_fail) ] () in
  Array.iteri
    (fun r outcome ->
      match outcome with
      | Ok pairs ->
          Printf.printf "rank %d finished owning shards [%s]\n" r
            (String.concat "; " (List.map (fun (s, _) -> string_of_int s) pairs))
      | Error (Mpisim.Mpi.Rank_died | Simnet.Engine.Killed) ->
          Printf.printf "rank %d died (injected failure)\n" r
      | Error e -> raise e)
    recovered.Mpisim.Mpi.results;
  let identical = collect recovered = collect reference in
  Printf.printf "recovered distances identical to failure-free run: %b\n" identical;
  if not identical then failwith "checkpoint_restart: recovery diverged";
  Printf.printf "recovery cost: %.0f us simulated (vs %.0f us failure-free)\n"
    (recovered.Mpisim.Mpi.sim_time *. 1e6)
    (reference.Mpisim.Mpi.sim_time *. 1e6)
