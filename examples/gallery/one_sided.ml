(* One-sided communication: a distributed histogram built with RMA windows
   (put/accumulate/get + fence epochs) — the "rest of the MPI standard"
   that the paper's core architecture is designed to absorb (Sec. I).

   Run with:  dune exec examples/one_sided.exe *)

module D = Mpisim.Datatype

let compute ~ranks ~samples_per_rank ~buckets_per_rank () =
  let total_buckets = ranks * buckets_per_rank in
    Mpisim.Mpi.run ~ranks (fun comm ->
        let r = Mpisim.Comm.rank comm in
        (* every rank owns a slice of the histogram *)
        let slice = Array.make buckets_per_rank 0 in
        let win = Mpisim.Win.create comm D.int slice in
        (* accumulate local samples into remote buckets, one epoch *)
        let rng = Simnet.Rng.split (Simnet.Rng.create 2024L) r in
        for _ = 1 to samples_per_rank do
          (* a skewed distribution: squares pile up in the low buckets *)
          let u = Simnet.Rng.float rng in
          let bucket = int_of_float (u *. u *. float_of_int total_buckets) in
          let bucket = min bucket (total_buckets - 1) in
          Mpisim.Win.accumulate win ~target:(bucket / buckets_per_rank)
            ~target_pos:(bucket mod buckets_per_rank) Mpisim.Op.int_sum [| 1 |]
        done;
        Mpisim.Win.fence win;
        (* rank 0 reads the whole histogram one-sidedly *)
        let gets =
          if r = 0 then
            Array.init ranks (fun target ->
                Some (Mpisim.Win.get win ~target ~target_pos:0 ~count:buckets_per_rank))
          else Array.make ranks None
        in
        Mpisim.Win.fence win;
        Mpisim.Win.free win;
        if r = 0 then
          Array.to_list gets
          |> List.concat_map (function Some g -> Array.to_list (Mpisim.Win.get_result g) | None -> [])
        else [])

let digest () =
  (* integer accumulate is commutative and associative, so the final
     histogram is schedule-independent no matter the RMA arrival order *)
  let result = compute ~ranks:8 ~samples_per_rank:200 ~buckets_per_rank:4 () in
  let histogram = (Mpisim.Mpi.results_exn result).(0) in
  String.concat "," (List.map string_of_int histogram)

let run () =
  let ranks = 8 and samples_per_rank = 1000 in
  let result = compute ~ranks ~samples_per_rank ~buckets_per_rank:4 () in
  let histogram = (Mpisim.Mpi.results_exn result).(0) in
  let total = List.fold_left ( + ) 0 histogram in
  Printf.printf "distributed histogram of %d samples (one-sided):\n" total;
  List.iteri
    (fun b count ->
      Printf.printf "  bucket %2d | %-50s %d\n" b (String.make (min 50 (count / 40)) '#') count)
    histogram;
  assert (total = ranks * samples_per_rank)
