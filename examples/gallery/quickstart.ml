(* Quickstart: the paper's Fig. 1 in OCaml.

   Run with:  dune exec examples/quickstart.exe

   A simulated 8-rank machine starts; each rank contributes a vector of
   its own length, and KaMPIng's allgatherv concatenates them on every
   rank — counts and displacements computed by the library. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

let compute () =
  Mpisim.Mpi.run ~ranks:8 (fun raw ->
        let comm = K.wrap raw in
        let rank = K.rank comm in

        (* each rank holds a vector of varying size *)
        let v = V.init (rank + 1) (fun i -> (10 * rank) + i) in

        (* (1) concise code with sensible defaults *)
        let v_global = (K.allgatherv comm D.int ~send_buf:v).K.recv_buf in

        (* (2) ... or detailed tuning of each parameter *)
        let rc = Array.make (K.size comm) 0 in
        Array.iteri (fun i _ -> rc.(i) <- i + 1) rc;
        let reuse = V.create () in
        let detailed =
          K.allgatherv ~recv_counts:rc (* no count exchange *)
            ~recv_buf:reuse (* caller-owned memory *)
            ~recv_policy:Kamping.Resize_policy.Grow_only (* allocation control *)
            ~recv_displs_out:true (* out-parameter *)
            comm D.int ~send_buf:v
        in
        assert (V.equal ( = ) v_global detailed.K.recv_buf);
        assert (detailed.K.recv_displs <> None);

        (* a one-line reduction for good measure *)
        let total = K.allreduce_single comm D.int Mpisim.Op.int_sum (V.length v) in
        (V.length v_global, total))

let digest () =
  Mpisim.Mpi.results_exn (compute ())
  |> Array.to_list
  |> List.map (fun (global_len, total) -> Printf.sprintf "%d/%d" global_len total)
  |> String.concat ";"

let run () =
  let result = compute () in
  let per_rank = Mpisim.Mpi.results_exn result in
  Array.iteri
    (fun r (global_len, total) ->
      Printf.printf "rank %d: global vector has %d elements (allreduce says %d)\n" r global_len
        total)
    per_rank;
  Printf.printf "simulated time: %.1f us, MPI messages: %d\n"
    (1e6 *. result.Mpisim.Mpi.sim_time)
    result.Mpisim.Mpi.profile.Mpisim.Profiling.messages
