(* Thin launcher; the program lives in examples/gallery/cg_solver.ml. *)
let () = Gallery.Cg_solver.run ()
