(* Thin launcher; the program lives in examples/gallery/word_count.ml. *)
let () = Gallery.Word_count.run ()
