(* Thin launcher; the program lives in examples/gallery/serialization_example.ml. *)
let () = Gallery.Serialization_example.run ()
