(* Thin launcher; the program lives in examples/gallery/checkpoint_restart.ml. *)
let () = Gallery.Checkpoint_restart.run ()
