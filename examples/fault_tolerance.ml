(* Thin launcher; the program lives in examples/gallery/fault_tolerance.ml. *)
let () = Gallery.Fault_tolerance.run ()
