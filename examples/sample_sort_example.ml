(* Thin launcher; the program lives in examples/gallery/sample_sort_example.ml. *)
let () = Gallery.Sample_sort_example.run ()
