(* Thin launcher; the program lives in examples/gallery/graph_analytics.ml. *)
let () = Gallery.Graph_analytics.run ()
