(* Thin launcher; the program lives in examples/gallery/sorter_example.ml. *)
let () = Gallery.Sorter_example.run ()
