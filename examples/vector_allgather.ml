(* Thin launcher; the program lives in examples/gallery/vector_allgather.ml. *)
let () = Gallery.Vector_allgather.run ()
