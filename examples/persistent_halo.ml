(* Thin launcher; the program lives in examples/gallery/persistent_halo.ml. *)
let () = Gallery.Persistent_halo.run ()
