(* Thin launcher; the program lives in examples/gallery/halo_exchange.ml. *)
let () = Gallery.Halo_exchange.run ()
