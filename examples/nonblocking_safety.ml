(* Thin launcher; the program lives in examples/gallery/nonblocking_safety.ml. *)
let () = Gallery.Nonblocking_safety.run ()
