(* Thin launcher; the program lives in examples/gallery/tracing_example.ml. *)
let () = Gallery.Tracing_example.run ()
