(* Thin launcher; the program lives in examples/gallery/serving.ml. *)
let () = Gallery.Serving.run ()
