(* Thin launcher; the program lives in examples/gallery/stream_windows.ml. *)
let () = Gallery.Stream_windows.run ()
