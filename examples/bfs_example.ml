(* Thin launcher; the program lives in examples/gallery/bfs_example.ml. *)
let () = Gallery.Bfs_example.run ()
