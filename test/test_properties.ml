(* Cross-cutting property-based tests: randomized workloads checked against
   sequential reference semantics, end to end through the simulated
   machine. *)

open Kamping
module C = Mpisim.Collectives
module D = Mpisim.Datatype
module V = Ds.Vec

let run = Tutil.run
let wrapped ~ranks f = run ~ranks (fun raw -> f (Comm.wrap raw))

let gen_ranks = QCheck2.Gen.int_range 1 9

let prop_bcast =
  Tutil.qtest ~count:30 "bcast replicates any payload from any root"
    QCheck2.Gen.(triple gen_ranks (int_bound 50) (list_size (int_bound 20) int))
    (fun (p, root_seed, payload) ->
      let root = root_seed mod p in
      let payload = Array.of_list payload in
      let results =
        run ~ranks:p (fun comm ->
            let buf =
              if Mpisim.Comm.rank comm = root then Array.copy payload
              else Array.make (Array.length payload) 0
            in
            C.bcast comm D.int buf ~root;
            buf)
      in
      Array.for_all (fun got -> got = payload) results)

let prop_reduce_sum =
  Tutil.qtest ~count:30 "reduce computes element-wise sums"
    QCheck2.Gen.(pair gen_ranks (list_size (int_range 1 10) (int_bound 1000)))
    (fun (p, template) ->
      let n = List.length template in
      let value r i = ((r + 1) * 17) + (i * 3) in
      let results =
        run ~ranks:p (fun comm ->
            let r = Mpisim.Comm.rank comm in
            let sendbuf = Array.init n (value r) in
            let recvbuf = Array.make n 0 in
            C.reduce comm D.int Mpisim.Op.int_sum ~sendbuf ~recvbuf ~count:n ~root:0;
            recvbuf)
      in
      let expected = Array.init n (fun i -> List.init p (fun r -> value r i) |> List.fold_left ( + ) 0) in
      results.(0) = expected)

let prop_allgatherv_one_liner =
  Tutil.qtest ~count:30 "kamping allgatherv equals concatenation"
    QCheck2.Gen.(pair gen_ranks (array_size (return 9) (int_bound 6)))
    (fun (p, sizes) ->
      let size_of r = sizes.(r mod 9) in
      let results =
        wrapped ~ranks:p (fun comm ->
            let r = Comm.rank comm in
            let v = V.init (size_of r) (fun i -> (r * 100) + i) in
            V.to_list (Comm.allgatherv comm D.int ~send_buf:v).Comm.recv_buf)
      in
      let expected =
        List.concat (List.init p (fun r -> List.init (size_of r) (fun i -> (r * 100) + i)))
      in
      Array.for_all (fun got -> got = expected) results)

let prop_scan_prefix =
  Tutil.qtest ~count:30 "scan computes prefix sums" gen_ranks (fun p ->
      let results =
        wrapped ~ranks:p (fun comm ->
            Comm.scan_single comm D.int Mpisim.Op.int_sum ((Comm.rank comm * 2) + 1))
      in
      Array.to_list results
      = List.init p (fun r -> List.init (r + 1) (fun i -> (2 * i) + 1) |> List.fold_left ( + ) 0))

let prop_alltoall_transpose =
  Tutil.qtest ~count:30 "alltoall transposes the data matrix" gen_ranks (fun p ->
      let results =
        run ~ranks:p (fun comm ->
            let r = Mpisim.Comm.rank comm in
            let sendbuf = Array.init p (fun d -> (r * p) + d) in
            let recvbuf = Array.make p (-1) in
            C.alltoall comm D.int ~sendbuf ~recvbuf ~count:1;
            recvbuf)
      in
      let ok = ref true in
      Array.iteri
        (fun r row -> Array.iteri (fun s x -> if x <> (s * p) + r then ok := false) row)
        results;
      !ok)

let prop_scatterv_gatherv_roundtrip =
  Tutil.qtest ~count:25 "scatterv then gatherv restores the original"
    QCheck2.Gen.(pair gen_ranks (array_size (return 9) (int_bound 5)))
    (fun (p, sizes) ->
      let counts = Array.init p (fun r -> sizes.(r mod 9)) in
      let total = Array.fold_left ( + ) 0 counts in
      let original = Array.init total (fun i -> (i * 13) + 1) in
      let results =
        wrapped ~ranks:p (fun comm ->
            let r = Comm.rank comm in
            let mine =
              Comm.scatterv
                ?send_buf:(if r = 0 then Some (V.of_array original) else None)
                ?send_counts:(if r = 0 then Some counts else None)
                comm D.int
            in
            let back = Comm.gatherv comm D.int ~send_buf:mine in
            if r = 0 then V.to_array back.Comm.recv_buf else [||])
      in
      results.(0) = original)

let prop_serde_nested =
  Tutil.qtest ~count:80 "nested codec roundtrips"
    QCheck2.Gen.(
      list_size (int_bound 8)
        (pair (string_size ~gen:(char_range 'a' 'z') (int_bound 8)) (pair (list int) (option float))))
    (fun v ->
      let codec = Serde.Codec.(list (pair string (pair (list int) (option float)))) in
      let back = Serde.Codec.decode codec (Serde.Codec.encode codec v) in
      (* floats compared bitwise through the binary archive *)
      List.length back = List.length v
      && List.for_all2
           (fun (k1, (l1, f1)) (k2, (l2, f2)) ->
             k1 = k2 && l1 = l2
             &&
             match (f1, f2) with
             | None, None -> true
             | Some a, Some b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
             | _ -> false)
           v back)

let prop_hypergrid_random =
  Tutil.qtest ~count:15 "hypergrid equals direct exchange for random shapes"
    QCheck2.Gen.(triple (int_range 2 16) (int_range 2 4) (int_bound 1000))
    (fun (p, ndims, salt) ->
      let payload s d = List.init ((s + d + salt) mod 3) (fun i -> (s * 100) + (d * 10) + i) in
      let results =
        wrapped ~ranks:p (fun comm ->
            let hg = Kamping_plugins.Hypergrid.create comm ~ndims in
            let r = Comm.rank comm in
            let send_buf = V.create () in
            let send_counts = Array.make p 0 in
            for d = 0 to p - 1 do
              let l = payload r d in
              send_counts.(d) <- List.length l;
              List.iter (V.push send_buf) l
            done;
            let out, _ = Kamping_plugins.Hypergrid.alltoallv hg D.int ~send_buf ~send_counts in
            V.to_list out)
      in
      let ok = ref true in
      Array.iteri
        (fun r got ->
          if got <> List.concat (List.init p (fun s -> payload s r)) then ok := false)
        results;
      !ok)

let prop_win_matches_sequential_model =
  Tutil.qtest ~count:15 "RMA epoch equals the sequential model"
    QCheck2.Gen.(triple (int_range 1 6) (int_range 1 8) (int_bound 10_000))
    (fun (p, seg_size, salt) ->
      (* every rank issues a deterministic op sequence derived from salt *)
      let ops_of r =
        List.init 6 (fun i ->
            let h = Hashtbl.hash (r, i, salt) in
            let target = h mod p in
            let pos = h / 7 mod seg_size in
            let value = h mod 1000 in
            if h mod 3 = 0 then `Put (target, pos, value) else `Acc (target, pos, value))
      in
      let results =
        run ~ranks:p (fun comm ->
            let seg = Array.make seg_size 0 in
            let win = Mpisim.Win.create comm D.int seg in
            List.iter
              (function
                | `Put (target, pos, v) -> Mpisim.Win.put win ~target ~target_pos:pos [| v |]
                | `Acc (target, pos, v) ->
                    Mpisim.Win.accumulate win ~target ~target_pos:pos Mpisim.Op.int_sum [| v |])
              (ops_of (Mpisim.Comm.rank comm));
            Mpisim.Win.fence win;
            Mpisim.Win.free win;
            seg)
      in
      (* sequential model: origins in rank order, ops in issue order *)
      let model = Array.init p (fun _ -> Array.make seg_size 0) in
      for origin = 0 to p - 1 do
        List.iter
          (function
            | `Put (target, pos, v) -> model.(target).(pos) <- v
            | `Acc (target, pos, v) -> model.(target).(pos) <- model.(target).(pos) + v)
          (ops_of origin)
      done;
      Array.for_all2 (fun a b -> a = b) results model)

let prop_fetch_shifted =
  Tutil.qtest ~count:25 "fetch_shifted equals a sequential shift"
    QCheck2.Gen.(triple (int_range 1 7) (int_range 1 40) (int_range 0 45))
    (fun (p, n, k) ->
      let global = Array.init n (fun i -> (i * 31) + 5) in
      let results =
        wrapped ~ranks:p (fun comm ->
            let first, local_n = Apps.Dist_util.block_of ~n ~p:(Comm.size comm) (Comm.rank comm) in
            let local = Array.init (max local_n 1) (fun i -> if i < local_n then global.(first + i) else 0) in
            let shifted = Apps.Dist_util.fetch_shifted comm ~n ~k ~fill:(-1) D.int local in
            (first, local_n, shifted))
      in
      Array.for_all
        (fun (first, local_n, shifted) ->
          let ok = ref true in
          for i = 0 to local_n - 1 do
            let expected = if first + i + k < n then global.(first + i + k) else -1 in
            if shifted.(i) <> expected then ok := false
          done;
          !ok)
        results)

let prop_split_groups =
  Tutil.qtest ~count:20 "split groups behave like independent communicators"
    QCheck2.Gen.(pair (int_range 2 9) (int_range 2 4))
    (fun (p, colors) ->
      let results =
        run ~ranks:p (fun comm ->
            let r = Mpisim.Comm.rank comm in
            match C.split comm ~color:(r mod colors) ~key:r with
            | Some sub ->
                let out = Array.make (Mpisim.Comm.size sub) (-1) in
                C.allgather sub D.int ~sendbuf:[| r |] ~recvbuf:out ~count:1;
                Array.to_list out
            | None -> [])
      in
      let ok = ref true in
      Array.iteri
        (fun r members ->
          let expected = List.init p Fun.id |> List.filter (fun x -> x mod colors = r mod colors) in
          if members <> expected then ok := false)
        results;
      !ok)

let prop_reproducible_dist_vector_sort =
  Tutil.qtest ~count:15 "dist sort output independent of p"
    QCheck2.Gen.(list_size (int_bound 60) (int_bound 500))
    (fun pool ->
      let sorted_with p =
        let results =
          wrapped ~ranks:p (fun comm ->
              let mine = List.filteri (fun i _ -> i mod p = Comm.rank comm) pool in
              let dv = Kamping_plugins.Dist_vector.create comm D.int (V.of_list mine) in
              V.to_list (Kamping_plugins.Dist_vector.gather_all (Kamping_plugins.Dist_vector.sort ~cmp:compare dv)))
        in
        results.(0)
      in
      sorted_with 1 = sorted_with 4 && sorted_with 4 = List.sort compare pool)

(* ------------------------------------------------------------------ *)
(* Correctness-checker properties (PR 2): random valid communication
   schedules derived from [Simnet.Rng] seeds are diagnostic-free at the
   strictest checking level, and a single random mutation (dropped recv,
   disagreeing collective) is always flagged with a structured
   diagnostic — the run terminates instead of hanging. *)

type slot = Barrier | Bcast of int | Allreduce of int | Allgather | Ring of int

let gen_schedule ~seed ~len ~p =
  let rng = Simnet.Rng.create (Int64.of_int seed) in
  List.init len (fun _ ->
      match Simnet.Rng.int rng 5 with
      | 0 -> Barrier
      | 1 -> Bcast (Simnet.Rng.int rng p)
      | 2 -> Allreduce (1 + Simnet.Rng.int rng 4)
      | 3 -> Allgather
      | _ -> Ring (Simnet.Rng.int rng 100))

(* The ring slot is eager-isend, then recv, then wait — deadlock-free for
   any [p] (including the send-to-self ring at p = 1). *)
let exec_slot ?(drop_recv = false) comm slot =
  let r = Mpisim.Comm.rank comm and p = Mpisim.Comm.size comm in
  match slot with
  | Barrier -> C.barrier comm
  | Bcast root ->
      let buf = Array.make 3 (if r = root then root + 1 else 0) in
      C.bcast comm D.int buf ~root
  | Allreduce count ->
      let sendbuf = Array.init count (fun i -> r + i) in
      let recvbuf = Array.make count 0 in
      C.allreduce comm D.int Mpisim.Op.int_sum ~sendbuf ~recvbuf ~count
  | Allgather ->
      let recvbuf = Array.make p 0 in
      C.allgather comm D.int ~sendbuf:[| r |] ~recvbuf ~count:1
  | Ring tag ->
      let dst = (r + 1) mod p and src = (r + p - 1) mod p in
      let req = Mpisim.P2p.isend comm D.int [| r; tag |] ~dst ~tag in
      if not drop_recv then ignore (Mpisim.P2p.recv comm D.int (Array.make 2 (-1)) ~src ~tag);
      ignore (Mpisim.Request.wait req)

let diags_of ~ranks f =
  Mpisim.Checker.with_level Mpisim.Checker.Communication (fun () ->
      (Mpisim.Mpi.run ~ranks f).Mpisim.Mpi.diagnostics)

let has_detail pred diags = List.exists (fun d -> pred d.Mpisim.Checker.detail) diags

let prop_checker_random_schedules_clean =
  Tutil.qtest ~count:25 "random valid schedules run clean under the checker"
    QCheck2.Gen.(triple (int_range 1 8) (int_range 1 12) (int_bound 100_000))
    (fun (p, len, seed) ->
      let sched = gen_schedule ~seed ~len ~p in
      let results =
        Tutil.run_checked ~ranks:p (fun comm ->
            List.iter (exec_slot comm) sched;
            Mpisim.Comm.rank comm)
      in
      Array.to_list results = List.init p Fun.id)

let prop_checker_flags_dropped_recv =
  Tutil.qtest ~count:20 "dropped recv yields an unmatched-send diagnostic"
    QCheck2.Gen.(triple (int_range 1 8) (int_range 0 10) (int_bound 100_000))
    (fun (p, len, seed) ->
      (* a guaranteed ring slot up front; one victim rank drops its recv *)
      let sched = Ring 7 :: gen_schedule ~seed ~len ~p in
      let victim = seed mod p in
      let diags =
        diags_of ~ranks:p (fun comm ->
            let r = Mpisim.Comm.rank comm in
            List.iteri (fun i s -> exec_slot ~drop_recv:(i = 0 && r = victim) comm s) sched)
      in
      has_detail (function Mpisim.Checker.Unmatched_send _ -> true | _ -> false) diags)

let prop_checker_flags_collective_mismatch =
  Tutil.qtest ~count:20 "disagreeing collective is flagged, not hung"
    QCheck2.Gen.(triple (int_range 2 8) (int_range 0 10) (int_bound 100_000))
    (fun (p, len, seed) ->
      let sched = gen_schedule ~seed ~len ~p in
      let victim = seed mod p in
      let diags =
        diags_of ~ranks:p (fun comm ->
            let r = Mpisim.Comm.rank comm in
            (* a valid random prefix, then one rank disagrees on the root *)
            List.iter (exec_slot comm) sched;
            let root = if r = victim then 1 else 0 in
            C.bcast comm D.int (Array.make 1 root) ~root)
      in
      has_detail (function Mpisim.Checker.Collective_mismatch _ -> true | _ -> false) diags)

(* ---------- checkpoint/restart recovery (lib/ckpt) ---------- *)

(* Random single-failure schedules over the restartable BFS: whatever
   rank dies at whatever point of the run, the survivors must reproduce
   the failure-free reference bit for bit, with zero checker diagnostics
   at [Communication] level. *)
let ckpt_n_shards = 4

let ckpt_bfs_args = (Graphgen.Generators.Erdos_renyi, 96, 4, 11, 0)

let ckpt_reference =
  lazy
    (let family, global_n, avg_degree, seed, src = ckpt_bfs_args in
     run ~ranks:ckpt_n_shards (fun comm ->
         let g =
           Graphgen.Generators.generate family ~rank:(Mpisim.Comm.rank comm)
             ~comm_size:ckpt_n_shards ~global_n ~avg_degree ~seed
         in
         Apps.Bfs_kamping.bfs comm g ~src))

let ckpt_run ?fail_at ~ranks () =
  let family, global_n, avg_degree, seed, src = ckpt_bfs_args in
  Mpisim.Mpi.run ?fail_at ~ranks (fun comm ->
      Apps.Bfs_resilient.run ~policy:(Ckpt.Schedule.Every_n 1) (Comm.wrap comm) ~family
        ~n_shards:ckpt_n_shards ~global_n ~avg_degree ~seed ~src)

let ckpt_baseline_time =
  let cache = Hashtbl.create 4 in
  fun ~ranks ->
    match Hashtbl.find_opt cache ranks with
    | Some t -> t
    | None ->
        let t = (ckpt_run ~ranks ()).Mpisim.Mpi.sim_time in
        Hashtbl.add cache ranks t;
        t

let prop_ckpt_recovery_bit_identical =
  Tutil.qtest ~count:12 "random single failure: BFS recovers bit-identically"
    QCheck2.Gen.(triple (int_range 2 5) (int_range 0 5) (int_range 20 80))
    (fun (p, victim_seed, pct) ->
      let victim = victim_seed mod p in
      let t_fail = float_of_int pct /. 100. *. ckpt_baseline_time ~ranks:p in
      let res =
        Mpisim.Checker.with_level Mpisim.Checker.Communication (fun () ->
            ckpt_run ~ranks:p ~fail_at:[ (victim, t_fail) ] ())
      in
      let reference = Lazy.force ckpt_reference in
      let got = Hashtbl.create 8 in
      Array.iter
        (function
          | Ok pairs -> List.iter (fun (s, arr) -> Hashtbl.replace got s arr) pairs
          | Error _ -> ())
        res.Mpisim.Mpi.results;
      res.Mpisim.Mpi.diagnostics = []
      && Hashtbl.length got = ckpt_n_shards
      && List.for_all
           (fun s -> Hashtbl.find got s = reference.(s))
           (List.init ckpt_n_shards Fun.id))

let suite =
  [
    prop_bcast;
    prop_reduce_sum;
    prop_allgatherv_one_liner;
    prop_scan_prefix;
    prop_alltoall_transpose;
    prop_scatterv_gatherv_roundtrip;
    prop_serde_nested;
    prop_hypergrid_random;
    prop_win_matches_sequential_model;
    prop_fetch_shifted;
    prop_split_groups;
    prop_reproducible_dist_vector_sort;
    prop_checker_random_schedules_clean;
    prop_checker_flags_dropped_recv;
    prop_checker_flags_collective_mismatch;
    prop_ckpt_recovery_bit_identical;
  ]
