(* The sharded request-serving subsystem (lib/serve): workload streams,
   the shard router/rebalancer, the replica cache, the latency metrics,
   and the full engine against its host-side oracle — including chaos
   recovery through lib/ckpt. *)

module W = Serve.Workload
module SM = Serve.Shard_map
module Cache = Serve.Cache
module Metrics = Serve.Metrics

(* A deliberately small configuration so a full serving session stays a
   fraction-of-a-second simulation: 8 streams at 50 k req/s for 1 ms. *)
let small =
  {
    Serve.default with
    Serve.n_keys = 64;
    n_shards = 8;
    zipf_s = 1.1;
    rate = 5e4;
    duration = 1e-3;
    epoch = 0.25e-3;
    tick = 10e-6;
    flush_interval = 30e-6;
    batch_threshold = 8;
    cache_capacity = 0;
    rebalance = false;
    persistent = false;
    seed = 7;
  }

let report_of ?fail_at ~ranks cfg body =
  let res = Mpisim.Mpi.run ?fail_at ~ranks (fun comm -> body cfg comm) in
  Serve.summarize cfg ~ranks ~sim_time:res.Mpisim.Mpi.sim_time res.Mpisim.Mpi.results

(* ---------- workload ---------- *)

let test_zipf_pmf () =
  let pmf = W.zipf_pmf ~n_keys:100 ~zipf_s:1.2 in
  let total = Array.fold_left ( +. ) 0.0 pmf in
  Alcotest.(check bool) "sums to 1" true (Float.abs (total -. 1.0) < 1e-9);
  for k = 1 to 99 do
    Alcotest.(check bool) "monotone decreasing" true (pmf.(k) <= pmf.(k - 1))
  done;
  let uniform = W.zipf_pmf ~n_keys:10 ~zipf_s:0.0 in
  Alcotest.(check bool) "s=0 is uniform" true (Float.abs (uniform.(0) -. 0.1) < 1e-9)

let drain stream ~limit =
  let rec go acc =
    match W.next_due stream ~now:Float.infinity ~limit with
    | Some r -> go (r :: acc)
    | None -> List.rev acc
  in
  go []

let test_stream_deterministic () =
  let mk () = W.create ~n_keys:64 ~zipf_s:1.1 ~rate:5e4 ~write_ratio:0.3 ~seed:7 ~stream:2 in
  let a = drain (mk ()) ~limit:2e-3 and b = drain (mk ()) ~limit:2e-3 in
  Alcotest.(check bool) "same sequence" true (a = b);
  Alcotest.(check bool) "non-trivial" true (List.length a > 20);
  List.iter
    (fun (r : W.request) ->
      Alcotest.(check bool) "key in range" true (r.W.key >= 0 && r.W.key < 64))
    a;
  (* arrivals strictly before the limit, monotone *)
  let rec mono = function
    | (a : W.request) :: (b : W.request) :: rest ->
        Alcotest.(check bool) "monotone arrivals" true (a.W.at <= b.W.at);
        mono (b :: rest)
    | _ -> ()
  in
  mono a

let test_stream_seek_roundtrip () =
  let mk () = W.create ~n_keys:64 ~zipf_s:1.1 ~rate:5e4 ~write_ratio:0.3 ~seed:7 ~stream:3 in
  let reference = mk () in
  let skipped = drain reference ~limit:1e-3 in
  let tail = drain reference ~limit:2e-3 in
  (* a fresh stream, sought to the recorded cursor, continues identically *)
  let resumed = mk () in
  W.seek resumed (List.length skipped);
  Alcotest.(check int) "pos after seek" (List.length skipped) (W.pos resumed);
  Alcotest.(check bool) "identical continuation" true (drain resumed ~limit:2e-3 = tail);
  (* seek backwards too *)
  W.seek resumed 0;
  Alcotest.(check bool) "rewind replays from scratch" true
    (drain resumed ~limit:1e-3 = skipped)

(* ---------- shard map ---------- *)

let test_shard_map_basics () =
  let m = SM.create ~n_shards:8 ~n_keys:64 ~p:4 in
  (* every key maps to a shard, every shard to a rank; blocks contiguous *)
  for k = 0 to 63 do
    let s = SM.shard_of_key m k in
    Alcotest.(check bool) "shard range" true (s >= 0 && s < 8);
    Alcotest.(check int) "owner consistent" (SM.owner_of_shard m s) (SM.owner_of_key m k)
  done;
  let owned = List.concat_map (fun r -> SM.shards_of m r) [ 0; 1; 2; 3 ] in
  Alcotest.(check (list int)) "partition covers all shards" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.sort compare owned);
  Alcotest.(check int) "contiguous blocks start at rank 0" 0 (SM.owner_of_shard m 0)

let test_lpt_rebalance () =
  let m = SM.create ~n_shards:8 ~n_keys:64 ~p:4 in
  (* Zipf-like: shard 0 dominates *)
  let loads = [| 800; 120; 60; 40; 30; 20; 10; 10 |] in
  let before = SM.imbalance (SM.server_loads m ~shard_loads:loads ~p:4) in
  let plan = SM.lpt_plan m ~shard_loads:loads ~p:4 in
  Alcotest.(check bool) "plan is deterministic" true (plan = SM.lpt_plan m ~shard_loads:loads ~p:4);
  SM.apply_plan m plan;
  let after = SM.imbalance (SM.server_loads m ~shard_loads:loads ~p:4) in
  Alcotest.(check bool)
    (Printf.sprintf "LPT reduces imbalance (%.2f -> %.2f)" before after)
    true (after < before);
  (* the dominant shard is indivisible: LPT's optimum is that shard alone
     in one bin (800 / 136.25-per-shard-mean-over-4 = 800/272.5) *)
  Alcotest.(check (float 1e-9)) "LPT reaches the indivisibility floor" (800.0 /. 272.5) after

let test_imbalance_edge_cases () =
  Alcotest.(check (float 1e-9)) "all equal" 1.0 (SM.imbalance [| 5; 5; 5 |]);
  Alcotest.(check (float 1e-9)) "zero load" 1.0 (SM.imbalance [| 0; 0 |]);
  Alcotest.(check (float 1e-9)) "one hot" 3.0 (SM.imbalance [| 9; 0; 0 |])

(* ---------- metrics ---------- *)

let test_percentiles () =
  let samples = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Metrics.percentile samples 0.5);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Metrics.percentile samples 0.99);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Metrics.percentile samples 1.0);
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Metrics.percentile [||] 0.5))

(* ---------- cache ---------- *)

let test_cache_ops () =
  let c = Cache.create ~capacity:2 () in
  Alcotest.(check bool) "miss on empty" true (Cache.find c 1 = None);
  Cache.insert c ~key:1 ~value:10;
  Cache.insert c ~key:5 ~value:50;
  Alcotest.(check bool) "hit" true (Cache.find c 1 = Some 10);
  (* full: inserting a new key evicts the largest (coldest) key, 5 *)
  Cache.insert c ~key:3 ~value:30;
  Alcotest.(check bool) "victim evicted" true (Cache.find c 5 = None);
  Alcotest.(check bool) "hot key kept" true (Cache.find c 1 = Some 10);
  Cache.invalidate c 1;
  Alcotest.(check bool) "invalidated" true (Cache.find c 1 = None);
  Alcotest.(check int) "lookups counted" 5 (Cache.lookups c);
  Alcotest.(check int) "hits counted" 2 (Cache.hits c)

let test_cache_disabled () =
  let c = Cache.create ~capacity:0 () in
  Cache.insert c ~key:1 ~value:10;
  Alcotest.(check bool) "never hits" true (Cache.find c 1 = None);
  Alcotest.(check int) "no lookups counted" 0 (Cache.lookups c)

(* ---------- the engine against its oracle ---------- *)

let test_serve_matches_oracle () =
  let cfg = small in
  let r =
    Tutil.check_clean "serve baseline" (fun () -> report_of ~ranks:4 cfg Serve.body)
  in
  Alcotest.(check int) "every request issued" (Serve.expected_issued cfg) r.Serve.issued;
  Alcotest.(check int) "every request completed" r.Serve.issued r.Serve.completed;
  Alcotest.(check int) "store matches oracle" (Serve.expected_store_digest cfg)
    r.Serve.store_digest;
  Alcotest.(check bool) "has latency samples" true (r.Serve.p99 > 0.0);
  Alcotest.(check bool) "p50 <= p99" true (r.Serve.p50 <= r.Serve.p99)

let test_serve_caching_preserves_semantics () =
  let cfg = { small with Serve.cache_capacity = 16; zipf_s = 1.3 } in
  let r =
    Tutil.check_clean "serve cached" (fun () -> report_of ~ranks:4 cfg Serve.body)
  in
  Alcotest.(check int) "digest unchanged by caching" (Serve.expected_store_digest cfg)
    r.Serve.store_digest;
  Alcotest.(check bool) "cache actually used" true (r.Serve.hit_rate > 0.0);
  Alcotest.(check int) "every request completed" r.Serve.issued r.Serve.completed

let test_serve_rebalance_preserves_semantics () =
  let cfg = { small with Serve.rebalance = true; zipf_s = 1.4 } in
  let r =
    Tutil.check_clean "serve rebalanced" (fun () -> report_of ~ranks:4 cfg Serve.body)
  in
  Alcotest.(check int) "digest unchanged by migration" (Serve.expected_store_digest cfg)
    r.Serve.store_digest;
  let control = { cfg with Serve.rebalance = false } in
  let c =
    Tutil.check_clean "serve control" (fun () -> report_of ~ranks:4 control Serve.body)
  in
  Alcotest.(check bool)
    (Printf.sprintf "imbalance drops (%.2f -> %.2f, control %.2f)" r.Serve.imbalance_before
       r.Serve.imbalance_after c.Serve.imbalance_after)
    true
    (r.Serve.imbalance_after < c.Serve.imbalance_after);
  Alcotest.(check bool) "skew was real" true (r.Serve.imbalance_before > 1.2)

let test_serve_ranks_invariance () =
  (* the oracle (and therefore the digest) is independent of how many
     ranks serve the shards *)
  let cfg = small in
  List.iter
    (fun ranks ->
      let r = report_of ~ranks cfg Serve.body in
      Alcotest.(check int)
        (Printf.sprintf "digest at p=%d" ranks)
        (Serve.expected_store_digest cfg) r.Serve.store_digest)
    [ 1; 2; 8 ]

let test_serve_recovers_from_kill () =
  let cfg = small in
  let r =
    report_of
      ~fail_at:[ (1, 0.6 *. cfg.Serve.duration) ]
      ~ranks:4 cfg
      (fun cfg comm -> Serve.resilient_body ~policy:(Ckpt.Schedule.Every_n 1) cfg comm)
  in
  Alcotest.(check bool) "a recovery happened" true (r.Serve.recoveries >= 1);
  Alcotest.(check int) "survivors rebuilt the exact store" (Serve.expected_store_digest cfg)
    r.Serve.store_digest;
  Alcotest.(check int) "all streams fully replayed" (Serve.expected_issued cfg) r.Serve.issued;
  Alcotest.(check bool) "tail latency is finite" true (Float.is_finite r.Serve.p99)

let test_serve_resilient_failure_free () =
  (* without failures the resilient driver must agree with the oracle too *)
  let cfg = small in
  let r =
    report_of ~ranks:4 cfg (fun cfg comm ->
        Serve.resilient_body ~policy:(Ckpt.Schedule.Every_n 2) cfg comm)
  in
  Alcotest.(check int) "digest" (Serve.expected_store_digest cfg) r.Serve.store_digest;
  Alcotest.(check int) "no recoveries" 0 r.Serve.recoveries

let suite =
  [
    Alcotest.test_case "zipf pmf" `Quick test_zipf_pmf;
    Alcotest.test_case "stream determinism" `Quick test_stream_deterministic;
    Alcotest.test_case "stream seek round-trip" `Quick test_stream_seek_roundtrip;
    Alcotest.test_case "shard map basics" `Quick test_shard_map_basics;
    Alcotest.test_case "LPT rebalance" `Quick test_lpt_rebalance;
    Alcotest.test_case "imbalance edge cases" `Quick test_imbalance_edge_cases;
    Alcotest.test_case "percentiles" `Quick test_percentiles;
    Alcotest.test_case "cache ops and eviction" `Quick test_cache_ops;
    Alcotest.test_case "cache disabled" `Quick test_cache_disabled;
    Alcotest.test_case "engine matches oracle" `Quick test_serve_matches_oracle;
    Alcotest.test_case "caching preserves semantics" `Quick test_serve_caching_preserves_semantics;
    Alcotest.test_case "rebalancing preserves semantics" `Quick
      test_serve_rebalance_preserves_semantics;
    Alcotest.test_case "digest independent of rank count" `Quick test_serve_ranks_invariance;
    Alcotest.test_case "chaos: kill mid-run, recover bit-identically" `Quick
      test_serve_recovers_from_kill;
    Alcotest.test_case "resilient driver, failure-free" `Quick test_serve_resilient_failure_free;
  ]
