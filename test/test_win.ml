(* Tests for one-sided communication (RMA windows). *)

open Mpisim

let run = Tutil.run

let test_put_get () =
  let results =
    run ~ranks:4 (fun comm ->
        let r = Comm.rank comm and p = Comm.size comm in
        let seg = Array.make 4 (-1) in
        let win = Win.create comm Datatype.int seg in
        (* everyone writes its rank into slot r of its right neighbor *)
        Win.put win ~target:((r + 1) mod p) ~target_pos:r [| r |];
        Win.fence win;
        (* read the left neighbor's whole segment *)
        let g = Win.get win ~target:((r - 1 + p) mod p) ~target_pos:0 ~count:4 in
        Win.fence win;
        Win.free win;
        (Array.copy seg, Win.get_result g))
  in
  Array.iteri
    (fun r (seg, got) ->
      let left = (r + 3) mod 4 in
      (* my segment holds `left` at slot `left` *)
      Alcotest.(check int) "put landed" left seg.(left);
      (* the left neighbor's segment holds `left-1` at slot `left-1` *)
      let ll = (left + 3) mod 4 in
      Alcotest.(check int) "get observed" ll got.(ll))
    results

let test_accumulate () =
  let results =
    run ~ranks:6 (fun comm ->
        let seg = Array.make 2 0 in
        let win = Win.create comm Datatype.int seg in
        (* every rank adds (rank+1, 1) into rank 0's window *)
        Win.accumulate win ~target:0 ~target_pos:0 Op.int_sum [| Comm.rank comm + 1; 1 |];
        Win.fence win;
        Win.free win;
        Array.copy seg)
  in
  Alcotest.(check Tutil.int_array) "accumulated" [| 21; 6 |] results.(0)

let test_epoch_ordering () =
  (* puts from different origins to the same slot: origin-rank order wins *)
  let results =
    run ~ranks:4 (fun comm ->
        let seg = Array.make 1 (-1) in
        let win = Win.create comm Datatype.int seg in
        Win.put win ~target:0 ~target_pos:0 [| Comm.rank comm |];
        Win.fence win;
        Win.free win;
        seg.(0))
  in
  Alcotest.(check int) "last origin wins deterministically" 3 results.(0)

let test_get_before_fence_raises () =
  ignore
    (run ~ranks:2 (fun comm ->
         let win = Win.create comm Datatype.int (Array.make 1 0) in
         let g = Win.get win ~target:0 ~target_pos:0 ~count:1 in
         Alcotest.(check bool) "unfenced get rejected" true
           (match Win.get_result g with
           | (_ : int array) -> false
           | exception Errors.Usage_error _ -> true);
         Win.fence win;
         Win.free win;
         Alcotest.(check Tutil.int_array) "after fence" [| 0 |] (Win.get_result g)))

let test_range_validation () =
  ignore
    (run ~ranks:2 (fun comm ->
         (* uneven segments: rank 0 has 2 slots, rank 1 has 5 *)
         let seg = Array.make (if Comm.rank comm = 0 then 2 else 5) 0 in
         let win = Win.create comm Datatype.int seg in
         Alcotest.(check int) "remote size" (if Comm.rank comm = 0 then 5 else 2)
           (Win.size_of win (1 - Comm.rank comm));
         Alcotest.(check bool) "overflow rejected" true
           (match Win.put win ~target:0 ~target_pos:1 [| 1; 2 |] with
           | () -> false
           | exception Errors.Usage_error _ -> true);
         (* a put that fits on the big segment but not the small one *)
         Win.put win ~target:1 ~target_pos:3 [| 7; 8 |];
         Win.fence win;
         Win.free win;
         if Comm.rank comm = 1 then begin
           Alcotest.(check int) "tail put" 7 seg.(3);
           Alcotest.(check int) "tail put" 8 seg.(4)
         end))

let test_multiple_epochs () =
  (* a one-sided counter: each epoch everyone increments rank 0's slot *)
  let results =
    run ~ranks:3 (fun comm ->
        let seg = Array.make 1 0 in
        let win = Win.create comm Datatype.int seg in
        for _ = 1 to 5 do
          Win.accumulate win ~target:0 ~target_pos:0 Op.int_sum [| 1 |];
          Win.fence win
        done;
        Win.free win;
        seg.(0))
  in
  Alcotest.(check int) "counter" 15 results.(0)

let test_float_window () =
  let results =
    run ~ranks:4 (fun comm ->
        let seg = Array.make 1 0.0 in
        let win = Win.create comm Datatype.float seg in
        Win.accumulate win ~target:0 ~target_pos:0 Op.float_max
          [| float_of_int (Comm.rank comm) *. 1.5 |];
        Win.fence win;
        Win.free win;
        seg.(0))
  in
  Alcotest.(check (float 0.0)) "float max" 4.5 results.(0)

let suite =
  [
    Alcotest.test_case "put/get across ranks" `Quick test_put_get;
    Alcotest.test_case "accumulate" `Quick test_accumulate;
    Alcotest.test_case "deterministic epoch ordering" `Quick test_epoch_ordering;
    Alcotest.test_case "get before fence raises" `Quick test_get_before_fence_raises;
    Alcotest.test_case "range validation / uneven segments" `Quick test_range_validation;
    Alcotest.test_case "multiple epochs" `Quick test_multiple_epochs;
    Alcotest.test_case "float window" `Quick test_float_window;
  ]
