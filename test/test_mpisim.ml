(* Tests for the simulated MPI runtime: datatypes, point-to-point semantics,
   every collective against a sequential reference, communicator management,
   profiling, and failure handling. *)

open Mpisim
module V = Ds.Vec

let run = Tutil.run

(* ------------- datatypes ------------- *)

let test_datatype_basics () =
  Alcotest.(check int) "int extent" 8 (Datatype.extent Datatype.int);
  Alcotest.(check int) "char extent" 1 (Datatype.extent Datatype.char);
  Alcotest.(check int) "bytes" 80 (Datatype.bytes Datatype.int 10);
  Alcotest.(check bool) "self witness" true
    (Datatype.equal_witness Datatype.int Datatype.int <> None);
  Alcotest.(check bool) "distinct types don't match" true
    (Datatype.equal_witness Datatype.int Datatype.float = None)

let test_datatype_pool () =
  let a = Datatype.pair Datatype.int Datatype.float in
  let b = Datatype.pair Datatype.int Datatype.float in
  Alcotest.(check bool) "pair memoized" true (Datatype.equal_witness a b <> None);
  Alcotest.(check int) "pair extent" 16 (Datatype.extent a);
  let c = Datatype.contiguous Datatype.int 4 in
  let d = Datatype.contiguous Datatype.int 4 in
  Alcotest.(check bool) "contiguous memoized" true (Datatype.equal_witness c d <> None);
  let e = Datatype.contiguous Datatype.int 5 in
  Alcotest.(check bool) "different length distinct" true (Datatype.equal_witness c e = None);
  let t1 = Datatype.triple Datatype.int Datatype.int Datatype.char in
  let t2 = Datatype.triple Datatype.int Datatype.int Datatype.char in
  Alcotest.(check bool) "triple memoized" true (Datatype.equal_witness t1 t2 <> None)

let test_datatype_struct_layout () =
  (* struct { double a; char c; } -> padded to 16, payload 9 *)
  let dt : unit Datatype.t =
    Datatype.struct_type ~name:"s" [ ("a", 8, 8); ("c", 1, 1) ]
  in
  Alcotest.(check int) "payload only on wire" 9 (Datatype.extent dt);
  (match Datatype.kind dt with
  | Datatype.Struct { padding_bytes; _ } -> Alcotest.(check int) "padding" 7 padding_bytes
  | _ -> Alcotest.fail "expected struct kind");
  Alcotest.(check bool) "gapped struct packs slower" true (Datatype.pack_factor dt > 1.0);
  let packed : unit Datatype.t = Datatype.struct_type ~name:"p" [ ("a", 8, 8); ("b", 8, 8) ] in
  Alcotest.(check (float 1e-9)) "packed struct has no penalty" 1.0 (Datatype.pack_factor packed)

let test_datatype_commit_tracking () =
  let before = Datatype.live_committed_types () in
  let dt : int Datatype.t = Datatype.custom ~name:"fresh" ~extent:4 () in
  Alcotest.(check bool) "not committed" false (Datatype.committed dt);
  ignore (run ~ranks:2 (fun comm -> Collectives.bcast comm dt [| 1 |] ~root:0));
  Alcotest.(check bool) "committed after use" true (Datatype.committed dt);
  Alcotest.(check int) "exactly one new commit" (before + 1) (Datatype.live_committed_types ())

(* ------------- point-to-point ------------- *)

let test_p2p_blocking () =
  let results =
    run ~ranks:2 (fun comm ->
        if Comm.rank comm = 0 then begin
          P2p.send comm Datatype.int [| 10; 20; 30 |] ~dst:1 ~tag:5;
          [||]
        end
        else begin
          let buf = Array.make 3 0 in
          let st = P2p.recv comm Datatype.int buf ~src:0 ~tag:5 in
          Alcotest.(check int) "status count" 3 st.Request.count;
          Alcotest.(check int) "status source" 0 st.Request.source;
          buf
        end)
  in
  Alcotest.(check Tutil.int_array) "payload" [| 10; 20; 30 |] results.(1)

let test_p2p_any_source_tag () =
  ignore
    (run ~ranks:3 (fun comm ->
         if Comm.rank comm = 2 then begin
           let buf = Array.make 1 0 in
           let st1 = P2p.recv comm Datatype.int buf ~src:P2p.any_source ~tag:P2p.any_tag in
           let st2 = P2p.recv comm Datatype.int buf ~src:P2p.any_source ~tag:P2p.any_tag in
           Alcotest.(check bool) "both senders seen" true
             (List.sort compare [ st1.Request.source; st2.Request.source ] = [ 0; 1 ])
         end
         else P2p.send comm Datatype.int [| Comm.rank comm |] ~dst:2 ~tag:(Comm.rank comm)))

let test_p2p_type_mismatch () =
  ignore
    (run ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then P2p.send comm Datatype.int [| 1 |] ~dst:1 ~tag:0
         else begin
           let buf = [| 0.0 |] in
           match P2p.recv comm Datatype.float buf ~src:0 ~tag:0 with
           | (_ : Request.status) -> Alcotest.fail "expected type mismatch"
           | exception Errors.Type_mismatch { sent; expected } ->
               Alcotest.(check string) "sent" "int" sent;
               Alcotest.(check string) "expected" "double" expected
         end))

let test_p2p_truncation () =
  ignore
    (run ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then P2p.send comm Datatype.int [| 1; 2; 3 |] ~dst:1 ~tag:0
         else begin
           let buf = [| 0 |] in
           match P2p.recv comm Datatype.int buf ~src:0 ~tag:0 with
           | (_ : Request.status) -> Alcotest.fail "expected truncation"
           | exception Errors.Truncated { sent; capacity } ->
               Alcotest.(check int) "sent" 3 sent;
               Alcotest.(check int) "capacity" 1 capacity
         end))

let test_p2p_message_ordering () =
  (* FIFO per (src, tag): messages must arrive in send order. *)
  ignore
    (run ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then
           for i = 1 to 10 do
             P2p.send comm Datatype.int [| i |] ~dst:1 ~tag:3
           done
         else begin
           let buf = [| 0 |] in
           for i = 1 to 10 do
             ignore (P2p.recv comm Datatype.int buf ~src:0 ~tag:3);
             Alcotest.(check int) (Printf.sprintf "message %d in order" i) i buf.(0)
           done
         end))

let test_p2p_nonblocking () =
  ignore
    (run ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then begin
           let req = P2p.isend comm Datatype.int [| 7 |] ~dst:1 ~tag:1 in
           ignore (Request.wait req)
         end
         else begin
           let buf = [| 0 |] in
           let req = P2p.irecv comm Datatype.int buf ~src:0 ~tag:1 in
           let st = Request.wait req in
           Alcotest.(check int) "irecv value" 7 buf.(0);
           Alcotest.(check int) "irecv count" 1 st.Request.count
         end))

let test_p2p_issend_completes_on_match () =
  ignore
    (run ~ranks:2 (fun comm ->
         let w = Comm.world comm in
         if Comm.rank comm = 0 then begin
           let req = P2p.issend comm Datatype.int [| 7 |] ~dst:1 ~tag:1 in
           Alcotest.(check bool) "not complete before receiver matched" false
             (Request.is_complete req);
           ignore (Request.wait req);
           (* receiver waits 50us before receiving *)
           Alcotest.(check bool) "completed after match"
             true
             (Mpisim.World.now w >= 50.0e-6)
         end
         else begin
           Mpisim.Comm.compute comm 50.0e-6;
           let buf = [| 0 |] in
           ignore (P2p.recv comm Datatype.int buf ~src:0 ~tag:1)
         end))

let test_p2p_probe () =
  ignore
    (run ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then begin
           Mpisim.Comm.compute comm 10.0e-6;
           P2p.send comm Datatype.int [| 1; 2; 3; 4 |] ~dst:1 ~tag:9
         end
         else begin
           (* blocking probe parks until the message is announced *)
           let st = P2p.probe comm ~src:P2p.any_source ~tag:9 in
           Alcotest.(check int) "probed count" 4 st.Request.count;
           (* message still there afterwards *)
           let buf = Array.make st.Request.count 0 in
           ignore (P2p.recv comm Datatype.int buf ~src:st.Request.source ~tag:9);
           Alcotest.(check Tutil.int_array) "received" [| 1; 2; 3; 4 |] buf
         end))

let test_p2p_iprobe () =
  ignore
    (run ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then P2p.send comm Datatype.int [| 1 |] ~dst:1 ~tag:2
         else begin
           Alcotest.(check bool) "nothing yet" true (P2p.iprobe comm ~src:0 ~tag:2 = None);
           Mpisim.Comm.compute comm 1.0 (* ample time for delivery *);
           (match P2p.iprobe comm ~src:0 ~tag:2 with
           | Some st -> Alcotest.(check int) "count" 1 st.Request.count
           | None -> Alcotest.fail "message should be probeable");
           let buf = [| 0 |] in
           ignore (P2p.recv comm Datatype.int buf ~src:0 ~tag:2)
         end))

let test_p2p_sendrecv_ring () =
  let results =
    run ~ranks:4 (fun comm ->
        let r = Comm.rank comm and p = Comm.size comm in
        let recv = [| -1 |] in
        ignore
          (P2p.sendrecv comm Datatype.int ~send:[| r |] ~dst:((r + 1) mod p) ~stag:0 ~recv
             ~src:((r - 1 + p) mod p) ~rtag:0 ());
        recv.(0))
  in
  Alcotest.(check Tutil.int_array) "ring shift" [| 3; 0; 1; 2 |] results

let test_p2p_user_tag_validation () =
  ignore
    (run ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then
           match P2p.send comm Datatype.int [| 1 |] ~dst:1 ~tag:(-3) with
           | () -> Alcotest.fail "negative user tag accepted"
           | exception Errors.Usage_error _ -> ()))

let test_p2p_deadlock_detected () =
  (* below checker level Heavy a hang still surfaces as the engine's
     Deadlock exception (Test_checker covers the diagnosing path) *)
  let deadlocked =
    Mpisim.Checker.with_level Mpisim.Checker.Light (fun () ->
        match
          Mpisim.Mpi.run ~ranks:2 (fun comm ->
              if Comm.rank comm = 0 then
                (* recv that never matches *)
                ignore (P2p.recv comm Datatype.int [| 0 |] ~src:1 ~tag:0))
        with
        | (_ : unit Mpisim.Mpi.run_result) -> false
        | exception Simnet.Engine.Deadlock _ -> true)
  in
  Alcotest.(check bool) "hang detected" true deadlocked

(* ------------- collectives ------------- *)

let test_bcast () =
  List.iter
    (fun p ->
      List.iter
        (fun root ->
          let results =
            run ~ranks:p (fun comm ->
                let buf = if Comm.rank comm = root then [| 1; 2; 3 |] else Array.make 3 0 in
                Collectives.bcast comm Datatype.int buf ~root;
                buf)
          in
          Array.iteri
            (fun r got ->
              Alcotest.(check Tutil.int_array)
                (Printf.sprintf "bcast p=%d root=%d rank=%d" p root r)
                [| 1; 2; 3 |] got)
            results)
        [ 0; p - 1 ])
    [ 1; 2; 3; 5; 8; 13 ]

let test_reduce_allreduce () =
  List.iter
    (fun p ->
      let results =
        run ~ranks:p (fun comm ->
            let r = Comm.rank comm in
            let out = Array.make 2 0 in
            Collectives.reduce comm Datatype.int Op.int_sum ~sendbuf:[| r; 2 * r |] ~recvbuf:out
              ~count:2 ~root:0;
            let all = Array.make 2 0 in
            Collectives.allreduce comm Datatype.int Op.int_max ~sendbuf:[| r; -r |] ~recvbuf:all
              ~count:2;
            (out, all))
      in
      let total = p * (p - 1) / 2 in
      let root_out, _ = results.(0) in
      Alcotest.(check Tutil.int_array) (Printf.sprintf "reduce p=%d" p) [| total; 2 * total |]
        root_out;
      Array.iteri
        (fun r (_, all) ->
          Alcotest.(check Tutil.int_array) (Printf.sprintf "allreduce p=%d rank=%d" p r)
            [| p - 1; 0 |] all)
        results)
    [ 1; 2; 4; 7 ]

let test_allgather () =
  List.iter
    (fun p ->
      let results =
        run ~ranks:p (fun comm ->
            let r = Comm.rank comm in
            let recv = Array.make (2 * p) (-1) in
            Collectives.allgather comm Datatype.int ~sendbuf:[| r; r * 10 |] ~recvbuf:recv ~count:2;
            recv)
      in
      let expected = Array.init (2 * p) (fun i -> if i mod 2 = 0 then i / 2 else i / 2 * 10) in
      Array.iteri
        (fun r got ->
          Alcotest.(check Tutil.int_array) (Printf.sprintf "allgather p=%d rank=%d" p r) expected got)
        results)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 16 ]

let test_allgather_inplace () =
  let p = 5 in
  let results =
    run ~ranks:p (fun comm ->
        let r = Comm.rank comm in
        let buf = Array.make p (-1) in
        buf.(r) <- r * r;
        Collectives.allgather ~inplace:true comm Datatype.int ~sendbuf:[||] ~recvbuf:buf ~count:1;
        buf)
  in
  let expected = Array.init p (fun i -> i * i) in
  Array.iter (fun got -> Alcotest.(check Tutil.int_array) "inplace allgather" expected got) results

let test_allgatherv () =
  List.iter
    (fun p ->
      let results =
        run ~ranks:p (fun comm ->
            let r = Comm.rank comm in
            let mine = Array.make (r + 1) r in
            let rcounts = Array.init p (fun i -> i + 1) in
            let rdispls = Array.make p 0 in
            for i = 1 to p - 1 do
              rdispls.(i) <- rdispls.(i - 1) + rcounts.(i - 1)
            done;
            let total = rdispls.(p - 1) + rcounts.(p - 1) in
            let out = Array.make total (-1) in
            Collectives.allgatherv comm Datatype.int ~sendbuf:mine ~scount:(r + 1) ~recvbuf:out
              ~rcounts ~rdispls;
            out)
      in
      let expected =
        Array.concat (List.init p (fun i -> Array.make (i + 1) i))
      in
      Array.iter
        (fun got -> Alcotest.(check Tutil.int_array) (Printf.sprintf "allgatherv p=%d" p) expected got)
        results)
    [ 1; 2; 3; 5; 9 ]

let test_gather_scatter () =
  let p = 6 in
  ignore
    (run ~ranks:p (fun comm ->
         let r = Comm.rank comm in
         (* gather *)
         let recv = if r = 2 then Some (Array.make p 0) else None in
         Collectives.gather ?recvbuf:recv comm Datatype.int ~sendbuf:[| r * 3 |] ~count:1 ~root:2;
         (match recv with
         | Some buf ->
             Alcotest.(check Tutil.int_array) "gather" (Array.init p (fun i -> 3 * i)) buf
         | None -> ());
         (* scatter *)
         let send = if r = 1 then Some (Array.init (2 * p) Fun.id) else None in
         let out = Array.make 2 (-1) in
         Collectives.scatter ?sendbuf:send comm Datatype.int ~recvbuf:out ~count:2 ~root:1;
         Alcotest.(check Tutil.int_array) "scatter" [| 2 * r; (2 * r) + 1 |] out))

let test_gatherv_scatterv () =
  let p = 4 in
  ignore
    (run ~ranks:p (fun comm ->
         let r = Comm.rank comm in
         let counts = Array.init p (fun i -> i + 1) in
         let displs = [| 0; 1; 3; 6 |] in
         let mine = Array.make (r + 1) (100 + r) in
         let recv = if r = 0 then Some (Array.make 10 0) else None in
         Collectives.gatherv ?recvbuf:recv ~rcounts:counts ~rdispls:displs comm Datatype.int
           ~sendbuf:mine ~scount:(r + 1) ~root:0;
         (match recv with
         | Some buf ->
             let expected = Array.concat (List.init p (fun i -> Array.make (i + 1) (100 + i))) in
             Alcotest.(check Tutil.int_array) "gatherv" expected buf
         | None -> ());
         (* scatterv: reverse distribution *)
         let send = if r = 3 then Some (Array.init 10 Fun.id) else None in
         let out = Array.make (r + 1) (-1) in
         Collectives.scatterv ?sendbuf:send
           ?scounts:(if r = 3 then Some counts else None)
           ?sdispls:(if r = 3 then Some displs else None)
           comm Datatype.int ~recvbuf:out ~rcount:(r + 1) ~root:3;
         Alcotest.(check Tutil.int_array) "scatterv"
           (Array.init (r + 1) (fun i -> displs.(r) + i))
           out))

let test_alltoall () =
  List.iter
    (fun p ->
      let results =
        run ~ranks:p (fun comm ->
            let r = Comm.rank comm in
            let send = Array.init p (fun d -> (r * 100) + d) in
            let recv = Array.make p (-1) in
            Collectives.alltoall comm Datatype.int ~sendbuf:send ~recvbuf:recv ~count:1;
            recv)
      in
      Array.iteri
        (fun r got ->
          let expected = Array.init p (fun s -> (s * 100) + r) in
          Alcotest.(check Tutil.int_array) (Printf.sprintf "alltoall p=%d rank=%d" p r) expected got)
        results)
    [ 1; 2; 3; 4; 8 ]

(* Sequential reference for alltoallv given everyone's send layout. *)
let alltoallv_reference ~p ~data ~counts =
  (* data.(s) laid out by destination; returns per-destination received *)
  let received = Array.make p [||] in
  for d = 0 to p - 1 do
    let parts =
      List.init p (fun s ->
          let displ = ref 0 in
          for d' = 0 to d - 1 do
            displ := !displ + counts.(s).(d')
          done;
          Array.sub data.(s) !displ counts.(s).(d))
    in
    received.(d) <- Array.concat parts
  done;
  received

let alltoallv_runner ~use_w p counts_of =
  let counts = Array.init p (fun s -> Array.init p (fun d -> counts_of s d)) in
  let data =
    Array.init p (fun s ->
        Array.init (Array.fold_left ( + ) 0 counts.(s)) (fun i -> (s * 10_000) + i))
  in
  let expected = alltoallv_reference ~p ~data ~counts in
  let results =
    run ~ranks:p (fun comm ->
        let r = Comm.rank comm in
        let scounts = counts.(r) in
        let sdispls = Array.make p 0 in
        for i = 1 to p - 1 do
          sdispls.(i) <- sdispls.(i - 1) + scounts.(i - 1)
        done;
        let rcounts = Array.init p (fun s -> counts.(s).(r)) in
        let rdispls = Array.make p 0 in
        for i = 1 to p - 1 do
          rdispls.(i) <- rdispls.(i - 1) + rcounts.(i - 1)
        done;
        let total = rdispls.(p - 1) + rcounts.(p - 1) in
        let recvbuf = Array.make total (-1) in
        (if use_w then
           Collectives.alltoallw_style comm Datatype.int ~sendbuf:data.(r) ~scounts ~sdispls
             ~recvbuf ~rcounts ~rdispls
         else
           Collectives.alltoallv comm Datatype.int ~sendbuf:data.(r) ~scounts ~sdispls ~recvbuf
             ~rcounts ~rdispls);
        recvbuf)
  in
  Array.iteri
    (fun r got ->
      Alcotest.(check Tutil.int_array)
        (Printf.sprintf "alltoall%s p=%d rank=%d" (if use_w then "w" else "v") p r)
        expected.(r) got)
    results

let test_alltoallv () =
  alltoallv_runner ~use_w:false 4 (fun s d -> ((s + d) mod 3) + 1);
  alltoallv_runner ~use_w:false 5 (fun s d -> if (s + d) mod 2 = 0 then 0 else s + 1);
  alltoallv_runner ~use_w:false 3 (fun _ _ -> 0)

let test_alltoallw_style () =
  alltoallv_runner ~use_w:true 4 (fun s d -> ((s * d) mod 4) + 1);
  alltoallv_runner ~use_w:true 5 (fun s d -> if s = d then 3 else 0)

let prop_alltoallv_random =
  Tutil.qtest ~count:25 "alltoallv random counts match reference"
    QCheck2.Gen.(pair (int_range 2 6) (array_size (return 36) (int_bound 4)))
    (fun (p, raw) ->
      let counts_of s d = raw.(((s * p) + d) mod 36) in
      alltoallv_runner ~use_w:false p counts_of;
      true)

let test_scan_exscan () =
  List.iter
    (fun p ->
      let results =
        run ~ranks:p (fun comm ->
            let r = Comm.rank comm in
            let inc = Array.make 1 0 in
            Collectives.scan comm Datatype.int Op.int_sum ~sendbuf:[| r + 1 |] ~recvbuf:inc ~count:1;
            let exc = Array.make 1 (-777) in
            Collectives.exscan comm Datatype.int Op.int_sum ~sendbuf:[| r + 1 |] ~recvbuf:exc
              ~count:1;
            (inc.(0), exc.(0)))
      in
      Array.iteri
        (fun r (inc, exc) ->
          Alcotest.(check int) (Printf.sprintf "scan p=%d rank=%d" p r) ((r + 1) * (r + 2) / 2) inc;
          if r = 0 then Alcotest.(check int) "exscan rank0 untouched" (-777) exc
          else Alcotest.(check int) (Printf.sprintf "exscan p=%d rank=%d" p r) (r * (r + 1) / 2) exc)
        results)
    [ 1; 2; 3; 5; 8 ]

let test_barrier_synchronizes () =
  let results =
    run ~ranks:4 (fun comm ->
        (* rank 2 is slow; everyone must leave the barrier after it *)
        if Comm.rank comm = 2 then Mpisim.Comm.compute comm 1.0e-3;
        Collectives.barrier comm;
        Mpisim.Comm.now comm)
  in
  Array.iter
    (fun t -> Alcotest.(check bool) "left barrier after slowest rank" true (t >= 1.0e-3))
    results

let test_ibarrier () =
  ignore
    (run ~ranks:4 (fun comm ->
         let req = Collectives.ibarrier comm in
         (* overlap: do local work while the barrier progresses *)
         Mpisim.Comm.compute comm 10.0e-6;
         ignore (Request.wait req)))

let test_scan_non_commutative () =
  (* Composition of affine maps (a, b) : x -> a*x + b is associative but
     not commutative, so it checks the scan's left-to-right order. *)
  let compose (a1, b1) (a2, b2) = (a1 * a2, (a2 * b1) + b2) in
  let elt r = (2, r + 1) in
  List.iter
    (fun p ->
      let results =
        run ~ranks:p (fun comm ->
            let dt = Datatype.pair Datatype.int Datatype.int in
            let out = Array.make 1 (0, 0) in
            Collectives.scan comm dt
              (Op.of_fun ~commutative:false compose)
              ~sendbuf:[| elt (Comm.rank comm) |] ~recvbuf:out ~count:1;
            out.(0))
      in
      Array.iteri
        (fun r got ->
          let expected = ref (elt 0) in
          for i = 1 to r do
            expected := compose !expected (elt i)
          done;
          Alcotest.(check (pair int int)) (Printf.sprintf "scan order p=%d rank=%d" p r) !expected
            got)
        results)
    [ 1; 2; 3; 5; 8 ]

(* ------------- communicator management ------------- *)

let test_dup_isolation () =
  ignore
    (run ~ranks:3 (fun comm ->
         let dup = Collectives.dup comm in
         Alcotest.(check bool) "distinct id" true (Comm.id dup <> Comm.id comm);
         (* traffic on dup does not interfere with comm *)
         if Comm.rank comm = 0 then begin
           P2p.send comm Datatype.int [| 1 |] ~dst:1 ~tag:0;
           P2p.send dup Datatype.int [| 2 |] ~dst:1 ~tag:0
         end
         else if Comm.rank comm = 1 then begin
           let buf = [| 0 |] in
           ignore (P2p.recv dup Datatype.int buf ~src:0 ~tag:0);
           Alcotest.(check int) "dup message" 2 buf.(0);
           ignore (P2p.recv comm Datatype.int buf ~src:0 ~tag:0);
           Alcotest.(check int) "original message" 1 buf.(0)
         end))

let test_split () =
  let results =
    run ~ranks:6 (fun comm ->
        let r = Comm.rank comm in
        match Collectives.split comm ~color:(r mod 2) ~key:(-r) with
        | Some sub ->
            (* key = -r reverses the order within each color *)
            let got = Array.make (Comm.size sub) (-1) in
            Collectives.allgather sub Datatype.int ~sendbuf:[| r |] ~recvbuf:got ~count:1;
            (Comm.rank sub, Comm.size sub, got)
        | None -> Alcotest.fail "no communicator")
  in
  let _, size0, members0 = results.(0) in
  Alcotest.(check int) "even group size" 3 size0;
  Alcotest.(check Tutil.int_array) "reversed by key" [| 4; 2; 0 |] members0;
  let rank5, _, members5 = results.(5) in
  Alcotest.(check int) "rank 5 first in odd group" 0 rank5;
  Alcotest.(check Tutil.int_array) "odd group" [| 5; 3; 1 |] members5

let test_split_undefined () =
  let results =
    run ~ranks:4 (fun comm ->
        let color = if Comm.rank comm < 2 then 0 else -1 in
        match Collectives.split comm ~color ~key:0 with
        | Some sub -> Comm.size sub
        | None -> -1)
  in
  Alcotest.(check Tutil.int_array) "undefined color excluded" [| 2; 2; -1; -1 |] results

(* ------------- profiling ------------- *)

let test_profiling_counts () =
  let res =
    Tutil.run_full ~ranks:4 (fun comm ->
        Collectives.barrier comm;
        Collectives.allreduce comm Datatype.int Op.int_sum ~sendbuf:[| 1 |]
          ~recvbuf:(Array.make 1 0) ~count:1;
        if Comm.rank comm = 0 then P2p.send comm Datatype.int [| 1 |] ~dst:1 ~tag:0
        else if Comm.rank comm = 1 then
          ignore (P2p.recv comm Datatype.int [| 0 |] ~src:0 ~tag:0))
  in
  let prof = res.Mpisim.Mpi.profile in
  Alcotest.(check int) "barrier calls" 4 (Profiling.calls_of "MPI_Barrier" prof);
  Alcotest.(check int) "allreduce calls" 4 (Profiling.calls_of "MPI_Allreduce" prof);
  Alcotest.(check int) "send calls" 1 (Profiling.calls_of "MPI_Send" prof);
  Alcotest.(check int) "recv calls" 1 (Profiling.calls_of "MPI_Recv" prof);
  Alcotest.(check bool) "messages flowed" true (prof.Profiling.messages > 0)

let test_profiling_edge_cases () =
  (* empty snapshots: diff of nothing is nothing, lookups are zero *)
  let empty = Profiling.snapshot (Profiling.create ()) in
  let d0 = Profiling.diff ~before:empty ~after:empty in
  Alcotest.(check (list (pair string int))) "empty diff: no calls" [] d0.Profiling.calls;
  Alcotest.(check (list (pair string int))) "empty diff: no algos" [] d0.algo_calls;
  Alcotest.(check int) "empty diff: no messages" 0 d0.messages;
  Alcotest.(check int) "missing call name counts zero" 0 (Profiling.calls_of "MPI_Nope" empty);
  Alcotest.(check int) "missing algo name counts zero" 0
    (Profiling.algo_calls_of "MPI_Nope[x]" empty);
  (* annotated algorithm names: [calls_of] falls through to the algorithm
     table so callers need not know whether a collective was annotated *)
  let t = Profiling.create () in
  Profiling.record_call t "MPI_Send";
  Profiling.record_algo t "MPI_Allreduce[rabenseifner]";
  Profiling.record_message t ~bytes:64;
  let s = Profiling.snapshot t in
  Alcotest.(check int) "plain name via calls_of" 1 (Profiling.calls_of "MPI_Send" s);
  Alcotest.(check int) "annotated name transparent via calls_of" 1
    (Profiling.calls_of "MPI_Allreduce[rabenseifner]" s);
  Alcotest.(check int) "annotated name via algo_calls_of" 1
    (Profiling.algo_calls_of "MPI_Allreduce[rabenseifner]" s);
  Alcotest.(check int) "annotated name absent from plain table" 0
    (match List.assoc_opt "MPI_Allreduce[rabenseifner]" s.Profiling.calls with
    | Some n -> n
    | None -> 0);
  (* diff against the empty baseline reproduces the snapshot *)
  let d = Profiling.diff ~before:empty ~after:s in
  Alcotest.(check (list (pair string int))) "diff calls" [ ("MPI_Send", 1) ] d.Profiling.calls;
  Alcotest.(check (list (pair string int)))
    "diff algo calls"
    [ ("MPI_Allreduce[rabenseifner]", 1) ]
    d.algo_calls;
  Alcotest.(check int) "diff messages" 1 d.messages;
  Alcotest.(check int) "diff bytes" 64 d.bytes;
  (* a reversed diff is the negation *)
  let neg = Profiling.diff ~before:s ~after:empty in
  Alcotest.(check (list (pair string int))) "negated calls" [ ("MPI_Send", -1) ] neg.Profiling.calls;
  Alcotest.(check int) "negated bytes" (-64) neg.bytes;
  (* reset drops everything; diff across a reset reports the removals *)
  Profiling.reset t;
  let after_reset = Profiling.snapshot t in
  Alcotest.(check (list (pair string int))) "reset clears calls" [] after_reset.Profiling.calls;
  Alcotest.(check int) "reset clears messages" 0 after_reset.messages;
  let across = Profiling.diff ~before:s ~after:after_reset in
  Alcotest.(check (list (pair string int)))
    "diff across reset shows removal" [ ("MPI_Send", -1) ] across.Profiling.calls;
  (* equal non-empty snapshots diff to nothing *)
  Profiling.record_call t "MPI_Bcast";
  let s1 = Profiling.snapshot t in
  let d_same = Profiling.diff ~before:s1 ~after:s1 in
  Alcotest.(check (list (pair string int))) "identical snapshots: empty diff" []
    d_same.Profiling.calls

let test_run_determinism () =
  let go () =
    Tutil.run_full ~ranks:8 (fun comm ->
        let r = Comm.rank comm in
        let out = Array.make 8 0 in
        Collectives.allgather comm Datatype.int ~sendbuf:[| r |] ~recvbuf:out ~count:1;
        Collectives.barrier comm;
        Mpisim.Comm.now comm)
  in
  let a = go () and b = go () in
  Alcotest.(check (float 0.0)) "bitwise identical sim time" a.Mpisim.Mpi.sim_time
    b.Mpisim.Mpi.sim_time;
  Alcotest.(check int) "same event count" a.Mpisim.Mpi.events b.Mpisim.Mpi.events

let suite =
  [
    Alcotest.test_case "datatype basics" `Quick test_datatype_basics;
    Alcotest.test_case "datatype pool memoization" `Quick test_datatype_pool;
    Alcotest.test_case "datatype struct layout" `Quick test_datatype_struct_layout;
    Alcotest.test_case "datatype commit tracking" `Quick test_datatype_commit_tracking;
    Alcotest.test_case "p2p blocking" `Quick test_p2p_blocking;
    Alcotest.test_case "p2p wildcards" `Quick test_p2p_any_source_tag;
    Alcotest.test_case "p2p type mismatch" `Quick test_p2p_type_mismatch;
    Alcotest.test_case "p2p truncation" `Quick test_p2p_truncation;
    Alcotest.test_case "p2p FIFO ordering" `Quick test_p2p_message_ordering;
    Alcotest.test_case "p2p nonblocking" `Quick test_p2p_nonblocking;
    Alcotest.test_case "p2p issend completion" `Quick test_p2p_issend_completes_on_match;
    Alcotest.test_case "p2p blocking probe" `Quick test_p2p_probe;
    Alcotest.test_case "p2p iprobe" `Quick test_p2p_iprobe;
    Alcotest.test_case "p2p sendrecv ring" `Quick test_p2p_sendrecv_ring;
    Alcotest.test_case "p2p user tag validation" `Quick test_p2p_user_tag_validation;
    Alcotest.test_case "p2p deadlock detection" `Quick test_p2p_deadlock_detected;
    Alcotest.test_case "bcast (binomial)" `Quick test_bcast;
    Alcotest.test_case "reduce/allreduce" `Quick test_reduce_allreduce;
    Alcotest.test_case "allgather (Bruck)" `Quick test_allgather;
    Alcotest.test_case "allgather in-place" `Quick test_allgather_inplace;
    Alcotest.test_case "allgatherv (ring)" `Quick test_allgatherv;
    Alcotest.test_case "gather/scatter" `Quick test_gather_scatter;
    Alcotest.test_case "gatherv/scatterv" `Quick test_gatherv_scatterv;
    Alcotest.test_case "alltoall (pairwise)" `Quick test_alltoall;
    Alcotest.test_case "alltoallv" `Quick test_alltoallv;
    Alcotest.test_case "alltoallw-style path" `Quick test_alltoallw_style;
    prop_alltoallv_random;
    Alcotest.test_case "scan/exscan" `Quick test_scan_exscan;
    Alcotest.test_case "scan non-commutative order" `Quick test_scan_non_commutative;
    Alcotest.test_case "barrier synchronizes" `Quick test_barrier_synchronizes;
    Alcotest.test_case "ibarrier overlaps" `Quick test_ibarrier;
    Alcotest.test_case "comm dup isolates traffic" `Quick test_dup_isolation;
    Alcotest.test_case "comm split" `Quick test_split;
    Alcotest.test_case "comm split undefined" `Quick test_split_undefined;
    Alcotest.test_case "profiling counts" `Quick test_profiling_counts;
    Alcotest.test_case "profiling edge cases" `Quick test_profiling_edge_cases;
    Alcotest.test_case "simulation determinism" `Quick test_run_determinism;
  ]
