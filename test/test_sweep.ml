(* Regression sweep (PR 2): every example program and the overhead
   profiling-equality experiment must run with ZERO checker diagnostics at
   the strictest checking level.  The examples live in the [gallery]
   library precisely so this suite can run them in-process and observe the
   checker state of every world they create. *)

let example name run = Alcotest.test_case name `Quick (fun () -> Tutil.check_clean name run)

let test_overhead_profiles () =
  let rows = Tutil.check_clean "overhead.call_profiles" Experiments.Overhead.call_profiles in
  match rows with
  | [ [ _; hand_calls; hand_msgs ]; [ _; default_calls; default_msgs ]; [ _; full_calls; _ ] ] ->
      (* the PMPI equality claim must survive the checker being on: KaMPIng
         with defaults issues exactly the hand-rolled MPI (count exchange
         included), and supplying the counts drops the extra allgather *)
      Alcotest.(check string) "PMPI call equality" hand_calls default_calls;
      Alcotest.(check string) "message-count equality" hand_msgs default_msgs;
      Alcotest.(check string) "counts given: no count exchange" "MPI_Allgatherv:8" full_calls
  | _ -> Alcotest.fail "unexpected overhead table shape"

let test_overhead_sort_kernel () =
  let timings =
    Tutil.check_clean "overhead.sort_timings" (fun () ->
        Experiments.Overhead.sort_timings ~ranks:8 ~n_per_rank:400 ())
  in
  Alcotest.(check int) "three variants" 3 (List.length timings)

let suite =
  [
    example "quickstart" Gallery.Quickstart.run;
    example "vector_allgather" Gallery.Vector_allgather.run;
    example "sample_sort_example" Gallery.Sample_sort_example.run;
    example "bfs_example" Gallery.Bfs_example.run;
    example "nonblocking_safety" Gallery.Nonblocking_safety.run;
    example "serialization_example" Gallery.Serialization_example.run;
    example "fault_tolerance" Gallery.Fault_tolerance.run;
    example "reproducible_reduce_example" Gallery.Reproducible_reduce_example.run;
    example "sorter_example" Gallery.Sorter_example.run;
    example "halo_exchange" Gallery.Halo_exchange.run;
    example "persistent_halo" Gallery.Persistent_halo.run;
    example "word_count" Gallery.Word_count.run;
    example "one_sided" Gallery.One_sided.run;
    example "tracing_example" Gallery.Tracing_example.run;
    example "checkpoint_restart" Gallery.Checkpoint_restart.run;
    example "serving" Gallery.Serving.run;
    example "graph_analytics" Gallery.Graph_analytics.run;
    example "cg_solver" Gallery.Cg_solver.run;
    example "stream_windows" Gallery.Stream_windows.run;
    Alcotest.test_case "overhead: PMPI equality under checker" `Quick test_overhead_profiles;
    Alcotest.test_case "overhead: sort kernel clean" `Quick test_overhead_sort_kernel;
  ]
