(* Tests for the distributed graph substrate and the generator families. *)

module G = Graphgen.Distgraph
module Gen = Graphgen.Generators

let test_block_range_partition () =
  List.iter
    (fun (n, p) ->
      let total = ref 0 in
      let prev_end = ref 0 in
      for r = 0 to p - 1 do
        let first, count = G.block_range ~global_n:n ~comm_size:p r in
        Alcotest.(check int) "contiguous" !prev_end first;
        prev_end := first + count;
        total := !total + count
      done;
      Alcotest.(check int) (Printf.sprintf "covers n=%d p=%d" n p) n !total)
    [ (10, 3); (7, 7); (5, 8); (100, 1); (0, 4) ]

let build_whole family ~p ~n ~d =
  List.init p (fun rank -> Gen.generate family ~rank ~comm_size:p ~global_n:n ~avg_degree:d ~seed:5)

let edge_set g =
  let acc = ref [] in
  for i = 0 to g.G.local_n - 1 do
    G.iter_neighbors g i (fun u -> acc := (G.global_of_local g i, u) :: !acc)
  done;
  !acc

let global_edges parts = List.concat_map edge_set parts |> List.sort compare

let test_generators_independent_of_p () =
  List.iter
    (fun family ->
      let e1 = global_edges (build_whole family ~p:1 ~n:60 ~d:4) in
      let e3 = global_edges (build_whole family ~p:3 ~n:60 ~d:4) in
      let e7 = global_edges (build_whole family ~p:7 ~n:60 ~d:4) in
      Alcotest.(check bool) (Gen.family_name family ^ " p=1 vs p=3") true (e1 = e3);
      Alcotest.(check bool) (Gen.family_name family ^ " p=3 vs p=7") true (e3 = e7))
    [ Gen.Erdos_renyi; Gen.Rgg2d; Gen.Rhg ]

let test_generator_determinism () =
  List.iter
    (fun family ->
      let a = global_edges (build_whole family ~p:4 ~n:40 ~d:3) in
      let b = global_edges (build_whole family ~p:4 ~n:40 ~d:3) in
      Alcotest.(check bool) (Gen.family_name family ^ " deterministic") true (a = b))
    [ Gen.Erdos_renyi; Gen.Rgg2d; Gen.Rhg ]

let test_er_degree () =
  let parts = build_whole Gen.Erdos_renyi ~p:2 ~n:100 ~d:5 in
  List.iter
    (fun g ->
      for i = 0 to g.G.local_n - 1 do
        Alcotest.(check int) "uniform out-degree" 5 (G.degree g i)
      done)
    parts

let test_rgg_symmetric () =
  let edges = global_edges (build_whole Gen.Rgg2d ~p:3 ~n:120 ~d:8) in
  let set = Hashtbl.create 256 in
  List.iter (fun e -> Hashtbl.replace set e ()) edges;
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "(%d,%d) has reverse" u v)
        true
        (Hashtbl.mem set (v, u)))
    edges

let test_rgg_locality_beats_er () =
  (* fraction of cut edges must be far lower for RGG than for ER *)
  let cut_fraction family =
    let p = 8 and n = 400 and d = 6 in
    let parts = build_whole family ~p ~n ~d in
    let total = ref 0 and cut = ref 0 in
    List.iter
      (fun g ->
        for i = 0 to g.G.local_n - 1 do
          G.iter_neighbors g i (fun u ->
              incr total;
              if not (G.is_local g u) then incr cut)
        done)
      parts;
    float_of_int !cut /. float_of_int (max 1 !total)
  in
  let er = cut_fraction Gen.Erdos_renyi and rgg = cut_fraction Gen.Rgg2d in
  Alcotest.(check bool)
    (Printf.sprintf "rgg cut %.2f well below er cut %.2f" rgg er)
    true
    (rgg < 0.6 *. er)

let test_rhg_skew () =
  (* power-law targets produce hub vertices: max in-degree far above the
     average *)
  let parts = build_whole Gen.Rhg ~p:4 ~n:500 ~d:8 in
  let indeg = Array.make 500 0 in
  List.iter
    (fun g ->
      for i = 0 to g.G.local_n - 1 do
        G.iter_neighbors g i (fun u -> indeg.(u) <- indeg.(u) + 1)
      done)
    parts;
  let max_in = Array.fold_left max 0 indeg in
  Alcotest.(check bool)
    (Printf.sprintf "hub degree %d >> avg 8" max_in)
    true (max_in > 40)

let prop_owner_consistent =
  Tutil.qtest "owner matches block_range"
    QCheck2.Gen.(pair (int_range 1 200) (int_range 1 16))
    (fun (n, p) ->
      let g =
        Gen.erdos_renyi ~rank:0 ~comm_size:p ~global_n:n ~avg_degree:1 ~seed:1
      in
      let ok = ref true in
      for r = 0 to p - 1 do
        let first, count = G.block_range ~global_n:n ~comm_size:p r in
        for v = first to first + count - 1 do
          if G.owner g v <> r then ok := false
        done
      done;
      !ok)

let test_of_edges_csr () =
  let edges = Ds.Vec.of_list [ (2, 5); (0, 1); (2, 3); (1, 0); (0, 9) ] in
  let g = G.of_edges ~comm_size:2 ~rank:0 ~global_n:10 edges in
  Alcotest.(check int) "local_n" 5 g.G.local_n;
  Alcotest.(check int) "degree 0" 2 (G.degree g 0);
  Alcotest.(check int) "degree 1" 1 (G.degree g 1);
  Alcotest.(check int) "degree 2" 2 (G.degree g 2);
  Alcotest.(check int) "degree 3" 0 (G.degree g 3);
  let n2 = ref [] in
  G.iter_neighbors g 2 (fun u -> n2 := u :: !n2);
  Alcotest.(check (list int)) "adjacency of 2 in insertion order" [ 5; 3 ] (List.rev !n2)

let test_rank_partners () =
  let edges = Ds.Vec.of_list [ (0, 9); (1, 4); (2, 1) ] in
  let g = G.of_edges ~comm_size:3 ~rank:0 ~global_n:9 edges in
  (* blocks of 3: 9 -> oob? n=9: blocks [0,3) [3,6) [6,9); targets 9 invalid *)
  ignore g;
  let edges = Ds.Vec.of_list [ (0, 8); (1, 4); (2, 1) ] in
  let g = G.of_edges ~comm_size:3 ~rank:0 ~global_n:9 edges in
  Alcotest.(check Tutil.int_array) "partners" [| 1; 2 |] (G.rank_partners g)

(* Property (scenario wave): the edge multiset a generator family
   produces is a function of (family, n, d, seed) only — the same for
   every rank count and under randomized schedules, when the per-rank
   slices are generated inside simulated ranks and gathered. *)
let prop_generator_invariance =
  let gen =
    QCheck2.Gen.(
      map2
        (fun family (n, ds) -> (family, n, ds))
        (oneofl [ Gen.Erdos_renyi; Gen.Rgg2d; Gen.Rhg ])
        (pair (int_range 8 72) (pair (int_range 2 6) (int_range 0 999))))
  in
  let edge_codec = Serde.Codec.(list (pair int int)) in
  let gathered ~p ~family ~n ~d ~seed =
    let res =
      Tutil.run ~ranks:p (fun raw ->
          let g =
            Gen.generate family ~rank:(Mpisim.Comm.rank raw) ~comm_size:p ~global_n:n
              ~avg_degree:d ~seed
          in
          Kamping.Comm.allgather_serialized (Kamping.Comm.wrap raw) edge_codec (edge_set g))
    in
    List.sort compare (List.concat (Array.to_list res.(0)))
  in
  Tutil.qtest ~count:25 "generator edge multiset: rank-count and schedule independent" gen
    (fun (family, n, (d, seed)) ->
      let reference =
        List.sort compare
          (List.concat_map edge_set
             (List.init 1 (fun rank ->
                  Gen.generate family ~rank ~comm_size:1 ~global_n:n ~avg_degree:d ~seed)))
      in
      List.for_all (fun p -> gathered ~p ~family ~n ~d ~seed = reference) [ 1; 2; 4; 8 ]
      &&
      let shuffled, _token =
        Explore.with_strategy
          ~strategy:(Explore.Random { seed = seed + 1 })
          (fun () -> gathered ~p:4 ~family ~n ~d ~seed)
      in
      shuffled = reference)

let suite =
  [
    Alcotest.test_case "block_range partitions" `Quick test_block_range_partition;
    Alcotest.test_case "generators independent of p" `Quick test_generators_independent_of_p;
    Alcotest.test_case "generators deterministic" `Quick test_generator_determinism;
    Alcotest.test_case "er out-degree" `Quick test_er_degree;
    Alcotest.test_case "rgg symmetric" `Quick test_rgg_symmetric;
    Alcotest.test_case "rgg locality beats er" `Quick test_rgg_locality_beats_er;
    Alcotest.test_case "rhg has hubs" `Quick test_rhg_skew;
    prop_owner_consistent;
    Alcotest.test_case "of_edges CSR" `Quick test_of_edges_csr;
    Alcotest.test_case "rank partners" `Quick test_rank_partners;
    prop_generator_invariance;
  ]
