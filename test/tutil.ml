(* Shared helpers for the test suites. *)

let run ~ranks f = Mpisim.Mpi.run_exn ~ranks f

let run_full ?net ?failures ~ranks f = Mpisim.Mpi.run ?net ?failures ~ranks f

let int_array = Alcotest.(array int)

let check_all_ranks name expected results =
  Array.iteri (fun r actual -> Alcotest.(check bool) (Printf.sprintf "%s@rank%d" name r) true (expected r actual)) results

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Checker-backed runs (PR 2).                                         *)
(* ------------------------------------------------------------------ *)

let diag_fail name diags =
  Alcotest.failf "%s: %d checker diagnostic(s):\n%s" name (List.length diags)
    (String.concat "\n" (List.map Mpisim.Checker.to_string diags))

(* [run_checked ~ranks f] runs the SPMD program with the correctness
   checker raised to [level] (default: everything, including the
   collective-ordering checks) and fails the test if any diagnostic was
   recorded.  Returns the per-rank results like [run]. *)
let run_checked ?(level = Mpisim.Checker.Communication) ?net ?node ?failures ~ranks f =
  Mpisim.Checker.with_level level (fun () ->
      let res = Mpisim.Mpi.run ?net ?node ?failures ~ranks f in
      (match res.Mpisim.Mpi.diagnostics with [] -> () | diags -> diag_fail "run_checked" diags);
      Mpisim.Mpi.results_exn res)

(* [check_clean name f] runs a thunk that internally calls [Mpi.run] any
   number of times (e.g. a whole example program) with the checker raised
   to [level], collecting diagnostics across all the worlds it creates,
   and fails the test if any were recorded. *)
let check_clean ?(level = Mpisim.Checker.Communication) name f =
  let result, diags =
    Mpisim.Checker.with_level level (fun () -> Mpisim.Checker.with_collector f)
  in
  (match diags with [] -> () | ds -> diag_fail name ds);
  result
