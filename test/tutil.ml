(* Shared helpers for the test suites. *)

(* ------------------------------------------------------------------ *)
(* Watchdog (PR 5): every harness run carries a simulated-time         *)
(* deadline, so a livelocked workload (e.g. a poll loop that never     *)
(* observes its condition) fails with a diagnostic instead of          *)
(* spinning the discrete-event engine forever.                         *)
(* ------------------------------------------------------------------ *)

(* Simulated seconds — tests complete in micro- to milliseconds, so any
   workload still running after a simulated minute is stuck. *)
let default_deadline = 60.0

let watchdog name f =
  try f () with
  | Simnet.Engine.Limit_exceeded { what; time; events } ->
      Alcotest.failf
        "%s: watchdog tripped — %s limit exceeded at simulated t=%gs after %d events \
         (livelock? raise ?deadline if the workload is legitimately long)"
        name what time events

let run ?(deadline = default_deadline) ~ranks f =
  watchdog "run" (fun () -> Mpisim.Mpi.results_exn (Mpisim.Mpi.run ~deadline ~ranks f))

let run_full ?net ?failures ?(deadline = default_deadline) ~ranks f =
  watchdog "run_full" (fun () -> Mpisim.Mpi.run ?net ?failures ~deadline ~ranks f)

let int_array = Alcotest.(array int)

let check_all_ranks name expected results =
  Array.iteri (fun r actual -> Alcotest.(check bool) (Printf.sprintf "%s@rank%d" name r) true (expected r actual)) results

(* ------------------------------------------------------------------ *)
(* QCheck with reproducible seeds (PR 5).                              *)
(* ------------------------------------------------------------------ *)

(* A fixed generator seed (overridable via QCHECK_SEED) instead of
   qcheck's self-initializing default: a failing property always prints
   how to re-run with the exact same generated inputs, and — when
   schedule exploration is active — the explore replay token of the
   last schedule it drove. *)
let qtest_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 433494437)
  | None -> 433494437

(* The testable core of [qtest], exposed so the failure message itself
   can be unit-tested. *)
let qtest_result ?(count = 200) ?(seed = qtest_seed) name gen prop =
  let test = QCheck2.Test.make ~count ~name gen prop in
  let rand = Random.State.make [| seed |] in
  match QCheck2.Test.check_exn ~rand test with
  | () -> Ok ()
  | exception e ->
      let token =
        match Explore.last_token () with
        | Some t -> Printf.sprintf "\nexplore replay token: %s" (Explore.token_to_string t)
        | None -> ""
      in
      Error
        (Printf.sprintf "%s: generator seed %d (rerun with QCHECK_SEED=%d)%s\n%s" name seed
           seed token (Printexc.to_string e))

let qtest ?count ?seed name gen prop =
  Alcotest.test_case name `Quick (fun () ->
      match qtest_result ?count ?seed name gen prop with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)

(* ------------------------------------------------------------------ *)
(* Checker-backed runs (PR 2).                                         *)
(* ------------------------------------------------------------------ *)

let diag_fail name diags =
  Alcotest.failf "%s: %d checker diagnostic(s):\n%s" name (List.length diags)
    (String.concat "\n" (List.map Mpisim.Checker.to_string diags))

(* [run_checked ~ranks f] runs the SPMD program with the correctness
   checker raised to [level] (default: everything, including the
   collective-ordering checks) and fails the test if any diagnostic was
   recorded.  Returns the per-rank results like [run]. *)
let run_checked ?(level = Mpisim.Checker.Communication) ?net ?node ?fabric ?failures
    ?(deadline = default_deadline) ~ranks f =
  Mpisim.Checker.with_level level (fun () ->
      let res =
        watchdog "run_checked" (fun () ->
            Mpisim.Mpi.run ?net ?node ?fabric ?failures ~deadline ~ranks f)
      in
      (match res.Mpisim.Mpi.diagnostics with [] -> () | diags -> diag_fail "run_checked" diags);
      Mpisim.Mpi.results_exn res)

(* [check_clean name f] runs a thunk that internally calls [Mpi.run] any
   number of times (e.g. a whole example program) with the checker raised
   to [level], collecting diagnostics across all the worlds it creates,
   and fails the test if any were recorded. *)
let check_clean ?(level = Mpisim.Checker.Communication) name f =
  let result, diags =
    Mpisim.Checker.with_level level (fun () ->
        Mpisim.Checker.with_collector (fun () -> watchdog name f))
  in
  (match diags with [] -> () | ds -> diag_fail name ds);
  result

(* ------------------------------------------------------------------ *)
(* Schedule exploration (PR 5).                                        *)
(* ------------------------------------------------------------------ *)

(* [explore name ~ranks f] asserts that the observable result of the
   SPMD program [f] is independent of the schedule: it runs once under
   the incumbent schedule and then under [schedules] random ones, all
   under the checker, and fails — printing the minimized replay token —
   if any schedule crashes, trips the checker, or produces a different
   result digest. *)
let explore ?schedules ?seed ?chaos ?deadline ?verdict ~ranks name f =
  match Explore.explore ?schedules ?seed ?chaos ?deadline ?verdict ~dump:false ~ranks f with
  | Ok (_n : int) -> ()
  | Error ce ->
      Alcotest.failf
        "%s: schedule-dependent behaviour on schedule %d (%d decisions after shrinking)\n\
         reason: %s\nreplay token: %s" name ce.Explore.ce_schedule ce.Explore.ce_decisions
        ce.Explore.ce_reason
        (Explore.token_to_string ce.Explore.ce_token)

(* [check_gallery name digest] asserts a gallery example's semantic
   digest is schedule-independent: equal across ≥ [schedules] random
   schedules and checker-clean on each. *)
let check_gallery ?(schedules = 20) ?(seed = 97) name digest =
  let reference = Explore.unexplored (fun () -> check_clean name digest) in
  for i = 1 to schedules do
    let strategy = Explore.Random { seed = (seed * 1009) + i } in
    let got, _token =
      Explore.with_strategy ~strategy (fun () ->
          check_clean (Printf.sprintf "%s[schedule %d]" name i) digest)
    in
    if got <> reference then
      Alcotest.failf "%s: digest diverged on random schedule %d (seed %d):\n  ref: %s\n  got: %s"
        name i ((seed * 1009) + i) reference got
  done
