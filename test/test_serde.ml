(* Tests for the serialization substrate: binary archives, JSON and
   codecs. *)

open Serde

let roundtrip codec v = Codec.decode codec (Codec.encode codec v)
let roundtrip_json codec v = Codec.decode_json codec (Codec.encode_json codec v)

let test_archive_primitives () =
  let w = Archive.writer () in
  Archive.write_varint w 0;
  Archive.write_varint w (-1);
  Archive.write_varint w max_int;
  Archive.write_varint w min_int;
  Archive.write_float w 3.14;
  Archive.write_string w "héllo";
  Archive.write_bool w true;
  Archive.write_int64 w (-123456789012345L);
  let r = Archive.reader (Archive.contents w) in
  Alcotest.(check int) "varint 0" 0 (Archive.read_varint r);
  Alcotest.(check int) "varint -1" (-1) (Archive.read_varint r);
  Alcotest.(check int) "varint max" max_int (Archive.read_varint r);
  Alcotest.(check int) "varint min" min_int (Archive.read_varint r);
  Alcotest.(check (float 0.0)) "float" 3.14 (Archive.read_float r);
  Alcotest.(check string) "string" "héllo" (Archive.read_string r);
  Alcotest.(check bool) "bool" true (Archive.read_bool r);
  Alcotest.(check int64) "int64" (-123456789012345L) (Archive.read_int64 r);
  Alcotest.(check bool) "consumed" true (Archive.at_end r)

let test_archive_truncated () =
  let w = Archive.writer () in
  Archive.write_string w "hello";
  let full = Archive.contents w in
  let cut = Bytes.sub full 0 (Bytes.length full - 2) in
  Alcotest.(check bool) "raises Corrupt" true
    (match Archive.read_string (Archive.reader cut) with
    | (_ : string) -> false
    | exception Archive.Corrupt _ -> true)

let test_codec_combinators () =
  let c = Codec.(list (pair int string)) in
  let v = [ (1, "a"); (-5, "bb"); (0, "") ] in
  Alcotest.(check bool) "binary roundtrip" true (roundtrip c v = v);
  Alcotest.(check bool) "json roundtrip" true (roundtrip_json c v = v)

let test_codec_option_result () =
  let c = Codec.(option (result int string)) in
  List.iter
    (fun v -> Alcotest.(check bool) "roundtrip" true (roundtrip c v = v))
    [ None; Some (Ok 42); Some (Error "boom") ]

let test_codec_hashtbl () =
  let c = Codec.(hashtbl string int) in
  let tbl = Hashtbl.create 8 in
  Hashtbl.replace tbl "x" 1;
  Hashtbl.replace tbl "y" 2;
  let back = roundtrip c tbl in
  Alcotest.(check (option int)) "x" (Some 1) (Hashtbl.find_opt back "x");
  Alcotest.(check (option int)) "y" (Some 2) (Hashtbl.find_opt back "y");
  Alcotest.(check int) "size" 2 (Hashtbl.length back)

let test_codec_conv () =
  (* A user-defined record, Cereal-style. *)
  let point = Codec.conv ~name:"point" (fun (x, y) -> (x, y)) (fun p -> p) Codec.(pair float float) in
  Alcotest.(check bool) "conv roundtrip" true (roundtrip point (1.5, -2.5) = (1.5, -2.5))

let test_codec_trailing_bytes () =
  let b = Codec.encode Codec.int 7 in
  let padded = Bytes.cat b (Bytes.of_string "x") in
  Alcotest.(check bool) "trailing bytes rejected" true
    (match Codec.decode Codec.int padded with
    | (_ : int) -> false
    | exception Archive.Corrupt _ -> true)

let test_json_print_parse () =
  let v =
    Json.Obj
      [
        ("a", Json.Num 1.0);
        ("b", Json.List [ Json.Null; Json.Bool true; Json.Str "q\"uote\n" ]);
        ("c", Json.Obj []);
      ]
  in
  Alcotest.(check bool) "print/parse" true (Json.equal v (Json.parse (Json.to_string v)))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "reject %S" s) true
        (match Json.parse s with
        | (_ : Json.t) -> false
        | exception Json.Parse_error _ -> true))
    [ ""; "{"; "[1,"; "tru"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let test_json_numbers () =
  (match Json.parse "-1.5e3" with
  | Json.Num f -> Alcotest.(check (float 0.0)) "scientific" (-1500.0) f
  | _ -> Alcotest.fail "expected number");
  Alcotest.(check string) "integral printing" "42" (Json.to_string (Json.Num 42.0))

(* ---------- checkpoint snapshot wire format (lib/ckpt) ---------- *)

let snap epoch rank payload = { Ckpt.Snapshot.epoch; rank; payload = Bytes.of_string payload }

let check_snap name expected actual =
  let open Ckpt.Snapshot in
  Alcotest.(check int) (name ^ ": epoch") expected.epoch actual.epoch;
  Alcotest.(check int) (name ^ ": rank") expected.rank actual.rank;
  Alcotest.(check string) (name ^ ": payload")
    (Bytes.to_string expected.payload)
    (Bytes.to_string actual.payload)

let rejects_corrupt name b =
  Alcotest.(check bool) name true
    (match Ckpt.Snapshot.decode b with
    | (_ : Ckpt.Snapshot.t) -> false
    | exception Archive.Corrupt _ -> true)

let test_snapshot_roundtrip () =
  List.iter
    (fun s ->
      let name = Printf.sprintf "epoch %d rank %d" s.Ckpt.Snapshot.epoch s.Ckpt.Snapshot.rank in
      check_snap name s (Ckpt.Snapshot.decode (Ckpt.Snapshot.encode s));
      check_snap (name ^ " via codec") s (roundtrip Ckpt.Snapshot.codec s))
    [ snap 0 0 ""; snap 3 1 "payload bytes"; snap 4096 63 (String.make 2000 '\xab') ]

let test_snapshot_rejects_corrupt () =
  let b = Ckpt.Snapshot.encode (snap 5 2 "some state") in
  (* Truncation anywhere — inside the header or inside the payload — is
     caught, as are trailing bytes and a clobbered magic tag. *)
  for len = 0 to Bytes.length b - 1 do
    rejects_corrupt (Printf.sprintf "truncated to %d" len) (Bytes.sub b 0 len)
  done;
  rejects_corrupt "trailing byte" (Bytes.cat b (Bytes.make 1 'x'));
  let bad_magic = Bytes.copy b in
  Bytes.set bad_magic 0 '\x00';
  rejects_corrupt "bad magic" bad_magic;
  Alcotest.(check bool) "negative header fields rejected" true
    (match roundtrip Ckpt.Snapshot.codec (snap (-1) 0 "") with
    | (_ : Ckpt.Snapshot.t) -> false
    | exception Archive.Corrupt _ -> true)

let test_snapshot_wrong_epoch () =
  let b = Ckpt.Snapshot.encode (snap 7 1 "state") in
  check_snap "matching epoch accepted" (snap 7 1 "state")
    (Ckpt.Snapshot.decode_expect ~epoch:7 b);
  Alcotest.(check bool) "wrong epoch rejected" true
    (match Ckpt.Snapshot.decode_expect ~epoch:8 b with
    | (_ : Ckpt.Snapshot.t) -> false
    | exception Ckpt.Snapshot.Wrong_epoch { expected = 8; got = 7 } -> true)

let prop_snapshot_roundtrip =
  Tutil.qtest "snapshot header roundtrip"
    QCheck2.Gen.(triple nat nat (string_size (int_bound 64)))
    (fun (epoch, rank, payload) ->
      let s = snap epoch rank payload in
      let back = Ckpt.Snapshot.decode (Ckpt.Snapshot.encode s) in
      back.Ckpt.Snapshot.epoch = epoch && back.rank = rank
      && Bytes.to_string back.payload = payload)

let prop_codec_int_list =
  Tutil.qtest "codec int list roundtrip" QCheck2.Gen.(list int) (fun l ->
      roundtrip Codec.(list int) l = l)

let prop_codec_string_json =
  Tutil.qtest "codec string json roundtrip"
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_bound 50))
    (fun s -> roundtrip_json Codec.string s = s)

let prop_codec_float =
  Tutil.qtest "codec float binary exact" QCheck2.Gen.float (fun f ->
      let back = roundtrip Codec.float f in
      Int64.equal (Int64.bits_of_float back) (Int64.bits_of_float f))

let prop_json_string_escapes =
  Tutil.qtest "json string escaping" QCheck2.Gen.(string_size (int_bound 30)) (fun s ->
      match Json.parse (Json.to_string (Json.Str s)) with Json.Str s' -> s' = s | _ -> false)

let suite =
  [
    Alcotest.test_case "archive primitives" `Quick test_archive_primitives;
    Alcotest.test_case "archive truncation" `Quick test_archive_truncated;
    Alcotest.test_case "codec combinators" `Quick test_codec_combinators;
    Alcotest.test_case "codec option/result" `Quick test_codec_option_result;
    Alcotest.test_case "codec hashtbl" `Quick test_codec_hashtbl;
    Alcotest.test_case "codec conv" `Quick test_codec_conv;
    Alcotest.test_case "codec trailing bytes" `Quick test_codec_trailing_bytes;
    Alcotest.test_case "json print/parse" `Quick test_json_print_parse;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json numbers" `Quick test_json_numbers;
    Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot rejects corrupt buffers" `Quick
      test_snapshot_rejects_corrupt;
    Alcotest.test_case "snapshot wrong-epoch guard" `Quick test_snapshot_wrong_epoch;
    prop_snapshot_roundtrip;
    prop_codec_int_list;
    prop_codec_string_json;
    prop_codec_float;
    prop_json_string_escapes;
  ]
