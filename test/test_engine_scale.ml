(* Scale and equivalence tests for the calendar-queue engine refactor.

   The engine's binary heap was replaced by a calendar queue
   (Simnet.Pqueue) that must preserve the EXACT (time, seq) total order —
   any divergence silently changes every simulated schedule in the repo.
   These tests pin that equivalence differentially against the frozen
   pre-refactor heap (Simnet.Binheap), stress the calendar's resize
   machinery, check the host profiler is a pure observer at every level,
   exercise the engine at 1k-8k ranks, assert the zero-alloc steady
   state, and pin the fiber-table pruning bound. *)

open Simnet

(* ------------------------------------------------------------------ *)
(* Differential: calendar queue vs the frozen binary heap.             *)
(* ------------------------------------------------------------------ *)

(* Clock-relative operation scripts: pushes file an event at
   [clock + delta] (deltas include exact ties, sub-bucket jitter, and
   far-future outliers that land way outside the calendar's current
   year), pops advance the clock.  The calendar enforces push >= last
   popped time, which clock-relative deltas satisfy by construction. *)
type qop = Push of float * int | Pop

let qop_gen =
  QCheck2.Gen.(
    let delta =
      oneof
        [
          return 0.0; (* exact tie with the current clock *)
          float_bound_exclusive 1e-3; (* sub-bucket jitter *)
          map (fun f -> 1.0 +. f) (float_bound_exclusive 100.0);
          map (fun f -> 1e6 +. f) (float_bound_exclusive 1e6); (* far future *)
        ]
    in
    let owner = int_range (-1) 1000 in
    list_size (int_range 10 300)
      (frequency [ (3, map2 (fun d o -> Push (d, o)) delta owner); (2, return Pop) ]))

let prop_differential =
  Tutil.qtest ~count:1000 "calendar queue = binary heap ((time,seq,owner) order)" qop_gen
    (fun ops ->
      let cal = Pqueue.create () in
      let heap : int Binheap.t = Binheap.create () in
      let clock = ref 0.0 in
      let seq = ref 0 in
      let log_cal = ref [] and log_heap = ref [] in
      let pop_both () =
        (match Pqueue.pop_min cal with
        | Some (t, s, o, _) ->
            clock := t;
            log_cal := (t, s, o) :: !log_cal
        | None -> ());
        match Binheap.pop_min heap with
        | Some (t, s, o) -> log_heap := (t, s, o) :: !log_heap
        | None -> ()
      in
      List.iter
        (function
          | Push (d, owner) ->
              let t = !clock +. d in
              incr seq;
              Pqueue.push cal ~time:t ~seq:!seq ~owner (fun () -> ());
              Binheap.push heap ~time:t ~seq:!seq owner
          | Pop -> pop_both ())
        ops;
      while not (Pqueue.is_empty cal) do
        pop_both ()
      done;
      Binheap.is_empty heap && !log_cal = !log_heap)

(* ------------------------------------------------------------------ *)
(* Calendar resize/drain stress.                                       *)
(* ------------------------------------------------------------------ *)

(* Grow through every doubling up to 50k entries (with outliers parked in
   the far future), drain to almost nothing to force halvings, and refill
   — then verify the queue still pops the exact (time, seq) order. *)
let test_resize_stress () =
  let q = Pqueue.create () in
  let seq = ref 0 in
  let pushed = ref [] in
  let popped = ref [] in
  let push time =
    incr seq;
    Pqueue.push q ~time ~seq:!seq ~owner:(!seq land 0xFF) (fun () -> ());
    pushed := (time, !seq) :: !pushed
  in
  let pop () =
    match Pqueue.pop_min q with
    | Some (t, s, _, _) ->
        popped := (t, s) :: !popped;
        t
    | None -> Alcotest.fail "queue empty but entries remain"
  in
  (* growth: 50k entries spread over ~1000s, 1 in 500 a far outlier *)
  for i = 1 to 50_000 do
    let t = float_of_int (i * 7919 mod 100_000) *. 1e-2 in
    push (if i mod 500 = 0 then t +. 1e9 else t)
  done;
  (* drain to 100 — forces repeated halvings *)
  let last = ref 0.0 in
  while Pqueue.length q > 100 do
    last := pop ()
  done;
  (* refill beyond the last popped time, then drain completely *)
  for i = 1 to 10_000 do
    push (!last +. (float_of_int i *. 1e-3))
  done;
  while not (Pqueue.is_empty q) do
    ignore (pop () : float)
  done;
  (* completeness: every pushed (time, seq) came back exactly once *)
  let sorted l = List.sort compare l in
  Alcotest.(check bool) "all entries popped exactly once" true
    (sorted !pushed = sorted !popped);
  (* exactness: each drain ran in nondecreasing (time, seq) order — the
     refill pushed strictly after the first drain's last popped time, so
     the whole popped sequence must be sorted *)
  let rec is_sorted = function
    | a :: (b :: _ as rest) -> a <= b && is_sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "popped in (time, seq) order" true (is_sorted (List.rev !popped));
  let peak, resizes, _ = Pqueue.stats q in
  Alcotest.(check bool) "peak reached 50k" true (peak >= 50_000);
  Alcotest.(check bool) "queue resized both ways" true (resizes >= 8)

(* ------------------------------------------------------------------ *)
(* Host profiler: pure observer over the whole gallery.                *)
(* ------------------------------------------------------------------ *)

module Profile = Simnet.Profile

let all_gallery_digests : (string * (unit -> string)) list =
  [
    ("quickstart", Gallery.Quickstart.digest);
    ("vector_allgather", Gallery.Vector_allgather.digest);
    ("serialization_example", Gallery.Serialization_example.digest);
    ("nonblocking_safety", Gallery.Nonblocking_safety.digest);
    ("one_sided", Gallery.One_sided.digest);
    ("word_count", Gallery.Word_count.digest);
    ("reproducible_reduce_example", Gallery.Reproducible_reduce_example.digest);
    ("tracing_example", Gallery.Tracing_example.digest);
    ("sorter_example", Gallery.Sorter_example.digest);
    ("sample_sort_example", Gallery.Sample_sort_example.digest);
    ("halo_exchange", Gallery.Halo_exchange.digest);
    ("bfs_example", Gallery.Bfs_example.digest);
    ("fault_tolerance", Gallery.Fault_tolerance.digest);
    ("checkpoint_restart", Gallery.Checkpoint_restart.digest);
    ("serving", Gallery.Serving.digest);
  ]

(* Profiling must never perturb a schedule: every gallery example's
   digest is bit-identical with the profiler Off, Coarse and Fine. *)
let test_profiler_pure_observer () =
  List.iter
    (fun (name, digest) ->
      let at level =
        Profile.reset ();
        Profile.with_level level digest
      in
      let off = at Profile.Off in
      let coarse = at Profile.Coarse in
      let fine = at Profile.Fine in
      Profile.reset ();
      Alcotest.(check string) (name ^ ": off = coarse") off coarse;
      Alcotest.(check string) (name ^ ": off = fine") off fine)
    all_gallery_digests

(* Exploration under Fine profiling: the replay token still round-trips
   through its string form and replays to the identical verdict digest,
   i.e. profiling doesn't leak into recorded decisions. *)
let test_explore_token_under_fine () =
  let prog comm =
    let p = Mpisim.Comm.size comm and r = Mpisim.Comm.rank comm in
    let buf = Array.make p 0 in
    Mpisim.Collectives.allgather comm Mpisim.Datatype.int ~sendbuf:[| (r * r) + 1 |]
      ~recvbuf:buf ~count:1;
    Array.fold_left ( + ) 0 buf
  in
  let digest_of obs =
    match Explore.verdict_of obs with
    | Explore.Pass d -> d
    | Explore.Fail reason -> Alcotest.failf "expected a clean run, got: %s" reason
  in
  Profile.reset ();
  let obs =
    Profile.with_level Profile.Fine (fun () ->
        Explore.run ~strategy:(Explore.Random { seed = 11 }) ~ranks:4 prog)
  in
  let tok = obs.Explore.token in
  let s = Explore.token_to_string tok in
  Alcotest.(check bool) "token round-trips" true (Explore.token_of_string s = tok);
  let replayed = Profile.with_level Profile.Fine (fun () -> Explore.replay tok ~ranks:4 prog) in
  Profile.reset ();
  Alcotest.(check string) "replay digest" (digest_of obs) (digest_of replayed)

(* ------------------------------------------------------------------ *)
(* Large-p stress.                                                     *)
(* ------------------------------------------------------------------ *)

(* A 1D Jacobi halo exchange (the gallery workload) at p=1024 under the
   watchdog: the run must finish, and two runs must agree bitwise. *)
let halo_at ~ranks ~steps () =
  Tutil.run ~ranks (fun comm ->
      let cart = Mpisim.Cart.create comm ~dims:[| ranks |] ~periodic:[| false |] in
      let r = Mpisim.Comm.rank comm in
      let u = Array.make 3 0.0 in
      if r = 0 then u.(1) <- 1000.0;
      for _ = 1 to steps do
        let send_low = [| u.(1) |] and send_high = [| u.(1) |] in
        let recv_low = [| u.(0) |] and recv_high = [| u.(2) |] in
        ignore
          (Mpisim.Cart.halo_exchange cart Mpisim.Datatype.float ~dim:0 ~send_low ~send_high
             ~recv_low ~recv_high
            : int);
        u.(0) <- recv_low.(0);
        u.(2) <- recv_high.(0);
        if r = 0 then u.(0) <- u.(1);
        if r = ranks - 1 then u.(2) <- u.(1);
        u.(1) <- u.(1) +. (0.25 *. (u.(0) -. (2.0 *. u.(1)) +. u.(2)))
      done;
      u.(1))

let test_halo_p1024 () =
  let a = halo_at ~ranks:1024 ~steps:3 () in
  let b = halo_at ~ranks:1024 ~steps:3 () in
  Alcotest.(check int) "all ranks answered" 1024 (Array.length a);
  Alcotest.(check bool) "deterministic across runs" true (a = b);
  (* the spike diffuses: rank 0 cooled, rank 1 warmed, far ranks still 0 *)
  Alcotest.(check bool) "heat moved" true (a.(0) < 1000.0 && a.(1) > 0.0 && a.(1023) = 0.0)

(* The synthetic exchange at p=8192 directly on the engine: one
   self-rescheduling chain per rank until a shared budget drains.  The
   steady state must execute events without allocating — the only minor
   words permitted are the calendar's amortized resize temporaries. *)
let test_synthetic_p8192_zero_alloc () =
  let lanes = 8192 in
  let e = Engine.create () in
  Engine.set_deadline e 60.0;
  let budget = ref 500_000 in
  for r = 0 to lanes - 1 do
    let jitter = float_of_int ((r * 2654435761) land 1023) *. 1e-9 in
    let d = 1e-6 +. jitter in
    let rec fire () =
      decr budget;
      if !budget > 0 then Engine.schedule e ~delay:d fire
    in
    Engine.schedule e ~delay:jitter fire
  done;
  let w0 = Gc.minor_words () in
  Engine.run e;
  let w1 = Gc.minor_words () in
  let events = Engine.events_processed e in
  Alcotest.(check bool) "budget drained" true (events >= 500_000 && events < 500_000 + lanes);
  let words_per_event = (w1 -. w0) /. float_of_int events in
  if words_per_event > 2.0 then
    Alcotest.failf "steady state allocates: %.2f minor words/event (want < 2)" words_per_event

(* ------------------------------------------------------------------ *)
(* Fiber-table pruning.                                                *)
(* ------------------------------------------------------------------ *)

(* 10k spawn/complete cycles: the pre-refactor engine kept every fiber
   ever spawned (and scanned the full list on quiesce); the table must
   now stay within the compaction bound. *)
let test_fiber_pruning () =
  let e = Engine.create () in
  for _wave = 1 to 100 do
    for _i = 1 to 100 do
      ignore (Engine.spawn e ~label:"w" (fun () -> Engine.delay e 1e-9) : Engine.fiber)
    done;
    Engine.run e
  done;
  Alcotest.(check int) "no live fibers" 0 (Engine.live_fibers e);
  let tracked = Engine.tracked_fibers e in
  if tracked > 128 then
    Alcotest.failf "fiber table not pruned: %d entries tracked after 10k retirements" tracked

let suite =
  [
    prop_differential;
    Alcotest.test_case "calendar resize/drain stress" `Quick test_resize_stress;
    Alcotest.test_case "profiler is a pure observer (all gallery)" `Slow
      test_profiler_pure_observer;
    Alcotest.test_case "explore token round-trip under Fine" `Quick
      test_explore_token_under_fine;
    Alcotest.test_case "halo exchange at p=1024" `Slow test_halo_p1024;
    Alcotest.test_case "synthetic exchange at p=8192, zero-alloc" `Slow
      test_synthetic_p8192_zero_alloc;
    Alcotest.test_case "fiber table pruning after 10k cycles" `Quick test_fiber_pruning;
  ]
