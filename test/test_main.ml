let () =
  Alcotest.run "kamping-ocaml"
    [
      ("ds", Test_ds.suite);
      ("simnet", Test_simnet.suite);
      ("serde", Test_serde.suite);
      ("mpisim", Test_mpisim.suite);
      ("coll-algos", Test_coll_algos.suite);
      ("kamping", Test_kamping.suite);
      ("plugins", Test_plugins.suite);
      ("graphgen", Test_graphgen.suite);
      ("apps", Test_apps.suite);
      ("extensions", Test_extensions.suite);
      ("cart", Test_cart.suite);
      ("win", Test_win.suite);
      ("building-blocks", Test_building_blocks.suite);
      ("checker", Test_checker.suite);
      ("ckpt", Test_ckpt.suite);
      ("trace", Test_trace.suite);
      ("scenarios", Test_scenarios.suite);
      ("sweep", Test_sweep.suite);
      ("properties", Test_properties.suite);
      ("bindings", Test_bindings.suite);
      ("group", Test_group.suite);
      ("explore", Test_explore.suite);
      ("serve", Test_serve.suite);
      ("stress", Test_stress.suite);
      ("engine-scale", Test_engine_scale.suite);
      ("persist", Test_persist.suite);
      ("topology", Test_topology.suite);
    ]
