(* Schedule-exploration & chaos-testing harness (PR 5): strategy
   behaviour, replay tokens, shrinking, chaos determinism, the watchdog,
   the differential gallery suite, and the mutation smoke proving the
   harness actually finds a real (reintroduced) schedule bug. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module P2p = Mpisim.P2p
module Request = Mpisim.Request
module Checker = Mpisim.Checker

(* substring search, to avoid depending on the Str library *)
let find_sub msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub msg i m = sub then Some i else go (i + 1) in
  go 0

let contains msg sub = find_sub msg sub <> None

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)

(* A schedule-independent mix of collectives. *)
let coll_workload raw =
  let comm = K.wrap raw in
  let r = K.rank comm in
  let sum = K.allreduce_single comm D.int Mpisim.Op.int_sum (r + 1) in
  K.barrier comm;
  let gathered = K.allgather comm D.int ~send_buf:(Ds.Vec.make 1 (r * r)) in
  (sum, Ds.Vec.to_list gathered)

(* Rank 0 drains three concurrently-available wildcard messages and
   reports the order in which the sources matched. *)
let wildcard_workload comm =
  let r = Mpisim.Comm.rank comm in
  if r = 0 then begin
    (* let all three messages arrive and sit in the unexpected queue *)
    Mpisim.Comm.compute comm 200.0e-6;
    List.init 3 (fun _ ->
        let buf = [| 0 |] in
        let st = P2p.recv comm D.int buf ~src:P2p.any_source ~tag:7 in
        st.Request.source)
  end
  else begin
    P2p.send comm D.int [| r |] ~dst:0 ~tag:7;
    []
  end

(* Rank 0 waits on two requests that are both already complete and
   reports which one wait_any observed. *)
let completion_workload comm =
  let r = Mpisim.Comm.rank comm in
  if r = 0 then begin
    let b1 = [| 0 |] and b2 = [| 0 |] in
    let r1 = P2p.irecv comm D.int b1 ~src:1 ~tag:1 in
    let r2 = P2p.irecv comm D.int b2 ~src:2 ~tag:2 in
    Mpisim.Comm.compute comm 200.0e-6;
    let idx, _ = Request.wait_any [ r1; r2 ] in
    ignore (Request.wait (if idx = 0 then r2 else r1));
    idx
  end
  else begin
    P2p.send comm D.int [| r * 11 |] ~dst:0 ~tag:r;
    -1
  end

(* An ordered stream: FIFO must survive chaos jitter. *)
let stream_workload comm =
  let r = Mpisim.Comm.rank comm in
  if r = 1 then begin
    for i = 0 to 9 do
      P2p.send comm D.int [| i |] ~dst:0 ~tag:5
    done;
    [||]
  end
  else
    Array.init 10 (fun _ ->
        let b = [| 0 |] in
        ignore (P2p.recv comm D.int b ~src:1 ~tag:5);
        b.(0))

(* The fault_tolerance recovery pattern, small enough for many runs. *)
let resilient_rounds raw =
  let comm = ref (K.wrap raw) in
  let completed = ref 0 in
  while !completed < 5 do
    K.compute !comm 10.0e-6;
    try
      let (_ : int) = K.allreduce_single !comm D.int Mpisim.Op.int_sum 1 in
      incr completed
    with Mpisim.Errors.Process_failed _ | Mpisim.Errors.Comm_revoked ->
      if not (Kamping_plugins.Ulfm.is_revoked !comm) then Kamping_plugins.Ulfm.revoke !comm;
      comm := Kamping_plugins.Ulfm.shrink !comm;
      completed := K.allreduce_single !comm D.int Mpisim.Op.int_min !completed
  done;
  (K.size !comm, !completed)

let digest_of o =
  match Explore.verdict_of o with
  | Explore.Pass d -> d
  | Explore.Fail reason -> Alcotest.failf "expected a clean run, got: %s" reason

let rank0_of o =
  match o.Explore.outcome with
  | Explore.Finished r -> (
      match r.Mpisim.Mpi.results.(0) with Ok v -> v | Error e -> raise e)
  | Explore.Crashed e -> raise e

(* ------------------------------------------------------------------ *)
(* Tokens                                                              *)

let test_token_round_trip () =
  let tokens =
    [
      { Explore.strategy = Explore.Default; chaos = Explore.no_chaos; trace = [||] };
      { Explore.strategy = Explore.Random { seed = 42 };
        chaos = { Explore.jitter = 1.5e-6; jitter_buckets = 8; kills = []; kill_buckets = 16 };
        trace = [| 1; 0; 2; 7 |] };
      { Explore.strategy = Explore.Pct { seed = 7; depth = 5 };
        chaos =
          { Explore.jitter = 0.0;
            jitter_buckets = 4;
            kills = [ (3, 100.0e-6, 400.0e-6); (0, 0.125, 0.25) ];
            kill_buckets = 32 };
        trace = [| 0; 0; 3 |] };
      { Explore.strategy = Explore.Delay { seed = 3; budget = 16 };
        chaos = Explore.no_chaos;
        trace = Array.init 40 (fun i -> i mod 5) };
    ]
  in
  List.iter
    (fun t ->
      let s = Explore.token_to_string t in
      Alcotest.(check bool) (Printf.sprintf "round-trip %s" s) true
        (Explore.token_of_string s = t))
    tokens;
  List.iter
    (fun bad ->
      Alcotest.(check bool) (Printf.sprintf "reject %S" bad) true
        (match Explore.token_of_string bad with
        | _ -> false
        | exception Failure _ -> true))
    [ ""; "explore{}"; "explore{random:1|trace=1}"; "nonsense" ]

let test_strategy_parsing () =
  let cases =
    [
      ("default", Explore.Default);
      ("random:9", Explore.Random { seed = 9 });
      ("random", Explore.Random { seed = 42 });
      ("pct:7:5", Explore.Pct { seed = 7; depth = 5 });
      ("pct:7", Explore.Pct { seed = 7; depth = 3 });
      ("delay:3:8", Explore.Delay { seed = 3; budget = 8 });
      ("delay:3", Explore.Delay { seed = 3; budget = 16 });
    ]
  in
  List.iter
    (fun (s, expect) ->
      Alcotest.(check bool) s true (Explore.strategy_of_string s = expect);
      Alcotest.(check string) (s ^ " inverse") (Explore.strategy_to_string expect)
        (Explore.strategy_to_string (Explore.strategy_of_string s)))
    cases;
  Alcotest.(check bool) "reject garbage" true
    (match Explore.strategy_of_string "chaos:1" with
    | _ -> false
    | exception Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* The Default strategy is a pure observer                             *)

let test_default_pure_observer () =
  Explore.unexplored (fun () ->
      let baseline =
        Checker.with_level Checker.Communication (fun () ->
            Mpisim.Mpi.run ~ranks:6 coll_workload)
      in
      let observed = Explore.run ~strategy:Explore.Default ~ranks:6 coll_workload in
      match observed.Explore.outcome with
      | Explore.Crashed e -> raise e
      | Explore.Finished r ->
          Alcotest.(check int) "events identical" baseline.Mpisim.Mpi.events r.Mpisim.Mpi.events;
          Alcotest.(check bool) "sim_time identical" true
            (baseline.Mpisim.Mpi.sim_time = r.Mpisim.Mpi.sim_time);
          Alcotest.(check bool) "profile identical" true
            (baseline.Mpisim.Mpi.profile = r.Mpisim.Mpi.profile);
          Alcotest.(check bool) "results identical" true
            (baseline.Mpisim.Mpi.results = r.Mpisim.Mpi.results))

(* ------------------------------------------------------------------ *)
(* Randomized strategies genuinely vary the don't-care decisions       *)

let distinct_over_seeds ~ranks ~seeds extract workload =
  let seen = Hashtbl.create 8 in
  for seed = 1 to seeds do
    let o = Explore.run ~strategy:(Explore.Random { seed }) ~ranks workload in
    Hashtbl.replace seen (extract o) ()
  done;
  Hashtbl.length seen

let test_wildcard_order_varies () =
  let distinct = distinct_over_seeds ~ranks:4 ~seeds:20 rank0_of wildcard_workload in
  Alcotest.(check bool)
    (Printf.sprintf "wildcard match order varies (%d distinct)" distinct)
    true (distinct >= 2);
  (* Default keeps the incumbent order, reproducibly *)
  let d1 = rank0_of (Explore.run ~ranks:4 wildcard_workload) in
  let d2 = rank0_of (Explore.run ~ranks:4 wildcard_workload) in
  Alcotest.(check (list int)) "default order stable" d1 d2

let test_completion_order_varies () =
  let distinct = distinct_over_seeds ~ranks:3 ~seeds:20 rank0_of completion_workload in
  Alcotest.(check int) "wait_any observes both orders" 2 distinct;
  let d1 = rank0_of (Explore.run ~ranks:3 completion_workload) in
  let d2 = rank0_of (Explore.run ~ranks:3 completion_workload) in
  Alcotest.(check int) "default pick stable" d1 d2

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

let test_replay_round_trip () =
  let o = Explore.run ~strategy:(Explore.Random { seed = 11 }) ~ranks:4 wildcard_workload in
  let order = rank0_of o in
  Alcotest.(check bool) "a non-trivial trace was recorded" true
    (Array.length o.Explore.token.Explore.trace > 0);
  let replayed = Explore.replay o.Explore.token ~ranks:4 wildcard_workload in
  Alcotest.(check (list int)) "replay reproduces the match order" order (rank0_of replayed);
  Alcotest.(check string) "replay reproduces the digest" (digest_of o) (digest_of replayed);
  (* ... and survives the printable encoding *)
  let parsed = Explore.token_of_string (Explore.token_to_string o.Explore.token) in
  let reprinted = Explore.replay parsed ~ranks:4 wildcard_workload in
  Alcotest.(check (list int)) "string round-trip replays too" order (rank0_of reprinted)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)

let test_shrink_trace () =
  (* failure depends on positions 5 (= 3) and 20 (<> 0) only *)
  let fails tr =
    let get i = if i < Array.length tr then tr.(i) else 0 in
    get 5 = 3 && get 20 > 0
  in
  let noisy = Array.init 64 (fun i -> if i = 5 then 3 else if i = 20 then 2 else 1 + (i mod 3)) in
  assert (fails noisy);
  let minimized = Explore.shrink_trace ~fails noisy in
  Alcotest.(check bool) "still fails" true (fails minimized);
  Alcotest.(check int) "trailing zeros trimmed" 21 (Array.length minimized);
  let nonzero = Array.to_list minimized |> List.filter (fun x -> x <> 0) |> List.length in
  Alcotest.(check int) "only the two needles survive" 2 nonzero;
  (* zeroing is positional: the needles stay at their positions *)
  Alcotest.(check int) "needle at 5" 3 minimized.(5);
  Alcotest.(check bool) "needle at 20" true (minimized.(20) > 0);
  (* a passing-everywhere predicate minimizes to the empty trace *)
  Alcotest.(check int) "all-zeroable trace vanishes" 0
    (Array.length (Explore.shrink_trace ~fails:(fun _ -> true) [| 1; 2; 3 |]))

(* ------------------------------------------------------------------ *)
(* PCT and Delay strategies                                            *)

let test_pct_and_delay () =
  let reference = digest_of (Explore.run ~ranks:6 coll_workload) in
  List.iter
    (fun strategy ->
      let o = Explore.run ~strategy ~ranks:6 coll_workload in
      Alcotest.(check string)
        (Explore.strategy_to_string strategy ^ " agrees on an invariant workload")
        reference (digest_of o))
    [
      Explore.Pct { seed = 3; depth = 10 };
      Explore.Pct { seed = 8; depth = 0 };
      Explore.Delay { seed = 5; budget = 12 };
      Explore.Random { seed = 21 };
    ]

(* ------------------------------------------------------------------ *)
(* Chaos                                                               *)

let test_chaos_jitter () =
  let chaos = { Explore.no_chaos with Explore.jitter = 20.0e-6 } in
  let go () = Explore.run ~strategy:(Explore.Random { seed = 3 }) ~chaos ~ranks:2 stream_workload in
  let o1 = go () and o2 = go () in
  (* FIFO survives the jitter: the stream arrives in order *)
  Alcotest.(check (array int)) "per-pair FIFO preserved" (Array.init 10 Fun.id) (rank0_of o1);
  (* chaos draws are decisions: deterministic per seed, recorded in the token *)
  Alcotest.(check bool) "jitter draws recorded" true
    (Array.length o1.Explore.token.Explore.trace > 0);
  Alcotest.(check bool) "identical token across runs" true (o1.Explore.token = o2.Explore.token);
  (match (o1.Explore.outcome, o2.Explore.outcome) with
  | Explore.Finished r1, Explore.Finished r2 ->
      Alcotest.(check bool) "identical sim_time across runs" true
        (r1.Mpisim.Mpi.sim_time = r2.Mpisim.Mpi.sim_time)
  | _ -> Alcotest.fail "jittered runs crashed")

let test_chaos_kill () =
  let chaos = { Explore.no_chaos with Explore.kills = [ (2, 20.0e-6, 80.0e-6) ] } in
  let o = Explore.run ~strategy:(Explore.Random { seed = 17 }) ~chaos ~ranks:4 resilient_rounds in
  match o.Explore.outcome with
  | Explore.Crashed e -> raise e
  | Explore.Finished r ->
      (match r.Mpisim.Mpi.results.(2) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "rank 2 should have been killed");
      (match r.Mpisim.Mpi.results.(0) with
      | Ok (size, completed) ->
          Alcotest.(check int) "survivors" 3 size;
          Alcotest.(check int) "rounds completed" 5 completed
      | Error e -> raise e);
      (* the kill-time draw replays exactly *)
      let replayed = Explore.replay o.Explore.token ~ranks:4 resilient_rounds in
      (match replayed.Explore.outcome with
      | Explore.Finished r' ->
          Alcotest.(check bool) "identical sim_time on replay" true
            (r.Mpisim.Mpi.sim_time = r'.Mpisim.Mpi.sim_time)
      | Explore.Crashed e -> raise e)

(* ------------------------------------------------------------------ *)
(* The explore driver                                                  *)

let test_explore_clean_workload () =
  match Explore.explore ~schedules:15 ~ranks:6 coll_workload with
  | Ok n -> Alcotest.(check int) "all schedules agreed" 15 n
  | Error ce -> Alcotest.failf "unexpected counterexample: %s" ce.Explore.ce_reason

let test_tutil_explore_combinator () =
  (* the Tutil wrapper passes on a schedule-independent workload *)
  Tutil.explore ~schedules:10 ~ranks:4 "coll via tutil" coll_workload;
  (* ... and fails with a replayable token on a schedule-dependent one *)
  let schedule_dependent comm = wildcard_workload comm in
  match Tutil.explore ~schedules:30 ~ranks:4 "wildcard via tutil" schedule_dependent with
  | () -> Alcotest.fail "expected the wildcard workload to be flagged"
  | exception e ->
      let msg = Printexc.to_string e in
      Alcotest.(check bool)
        (Printf.sprintf "failure message carries the replay token: %s" msg)
        true (contains msg "explore{")

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)

let livelock_workload comm =
  (* burns simulated time forever waiting on a condition that never
     comes true — a livelock, not a deadlock (events keep firing) *)
  while Mpisim.Comm.rank comm >= 0 do
    Mpisim.Comm.compute comm 1.0e-3
  done

let test_watchdog_livelock () =
  (* engine level: the deadline turns the livelock into an exception *)
  Alcotest.(check bool) "Limit_exceeded raised" true
    (match Mpisim.Mpi.run ~deadline:0.01 ~ranks:1 livelock_workload with
    | _ -> false
    | exception Simnet.Engine.Limit_exceeded { what = _; time; events } ->
        time > 0.01 && events > 0);
  (* harness level: Tutil.run turns it into a diagnostic test failure *)
  match Tutil.run ~deadline:0.01 ~ranks:1 livelock_workload with
  | _ -> Alcotest.fail "expected the watchdog to trip"
  | exception e ->
      let msg = Printexc.to_string e in
      Alcotest.(check bool)
        (Printf.sprintf "diagnostic mentions the watchdog: %s" msg)
        true (contains msg "watchdog")

(* ------------------------------------------------------------------ *)
(* QCheck failure reproducibility                                      *)

let test_qtest_reproducible () =
  let observed_digest = ref "" in
  let prop _n =
    let o = Explore.run ~strategy:(Explore.Random { seed = 23 }) ~ranks:4 wildcard_workload in
    observed_digest := digest_of o;
    false (* always fail: we want the failure report *)
  in
  match Tutil.qtest_result ~count:5 ~seed:123 "always-fails" QCheck2.Gen.small_int prop with
  | Ok () -> Alcotest.fail "property should have failed"
  | Error msg ->
      Alcotest.(check bool) "message names the generator seed" true
        (contains msg "QCHECK_SEED=123");
      (* the message carries the explore token of the last driven schedule *)
      let tok_start =
        match find_sub msg "explore{" with
        | Some i -> i
        | None -> Alcotest.fail "message carries no explore token"
      in
      let tok_end = String.index_from msg tok_start '}' in
      let token = Explore.token_of_string (String.sub msg tok_start (tok_end - tok_start + 1)) in
      (* round-trip: replaying the printed token reproduces the failing run *)
      let replayed = Explore.replay token ~ranks:4 wildcard_workload in
      Alcotest.(check string) "token from the report replays the failing schedule"
        !observed_digest (digest_of replayed)

(* ------------------------------------------------------------------ *)
(* Differential gallery suite                                          *)

let gallery name digest = Tutil.check_gallery ~schedules:20 name digest

let test_gallery_core () =
  gallery "quickstart" Gallery.Quickstart.digest;
  gallery "vector_allgather" Gallery.Vector_allgather.digest;
  gallery "serialization_example" Gallery.Serialization_example.digest;
  gallery "nonblocking_safety" Gallery.Nonblocking_safety.digest

let test_gallery_collectives_rma () =
  gallery "one_sided" Gallery.One_sided.digest;
  gallery "word_count" Gallery.Word_count.digest;
  gallery "reproducible_reduce_example" Gallery.Reproducible_reduce_example.digest;
  gallery "tracing_example" Gallery.Tracing_example.digest

let test_gallery_apps () =
  gallery "sorter_example" Gallery.Sorter_example.digest;
  gallery "sample_sort_example" Gallery.Sample_sort_example.digest;
  gallery "halo_exchange" Gallery.Halo_exchange.digest;
  (* digest itself proves persistent == ephemeral, so each schedule
     re-checks transport equivalence too *)
  gallery "persistent_halo" Gallery.Persistent_halo.digest

let test_gallery_resilience () =
  gallery "bfs_example" Gallery.Bfs_example.digest;
  gallery "fault_tolerance" Gallery.Fault_tolerance.digest;
  gallery "checkpoint_restart" Gallery.Checkpoint_restart.digest;
  gallery "serving" Gallery.Serving.digest

(* the scenario wave: each digest internally proves variant/transport
   bit-identity, oracle equality and kill-recovery — re-checked on every
   explored schedule *)
let test_gallery_scenarios () =
  gallery "graph_analytics" Gallery.Graph_analytics.digest;
  gallery "cg_solver" Gallery.Cg_solver.digest;
  gallery "stream_windows" Gallery.Stream_windows.digest

(* ------------------------------------------------------------------ *)
(* Mutation smoke: the harness finds a real, reintroduced bug          *)

(* A resilient iteration loop whose per-shard state has a constant
   encoded size: with an even shard distribution every rank's snapshot
   is the same size, so the local-size mutation is harmless — until a
   chaos kill forces a recovery, the 8 shards land 3/3/2 on the three
   survivors, and locally-derived Daly periods diverge. *)
let mutation_workload raw =
  let n_shards = 8 and n_iters = 60 and cells = 4096 in
  let state : (int, int array) Hashtbl.t = Hashtbl.create 16 in
  let registry = Ckpt.Registry.create () in
  Ckpt.register registry ~name:"cells"
    Serde.Codec.(array int)
    ~save:(fun ~shard -> Hashtbl.find state shard)
    ~restore:(fun ~shard v -> Hashtbl.replace state shard v);
  Ckpt.run_resilient ~policy:Ckpt.Schedule.Daly ~failure_rate:1e3 ~registry ~n_shards
    (K.wrap raw)
    (fun ctx ~restored ->
      let comm () = Ckpt.comm ctx in
      if not restored then begin
        List.iter (fun s -> Hashtbl.replace state s (Array.make cells 1)) (Ckpt.shards ctx);
        Ckpt.establish ctx
      end;
      (* element 0 holds the per-shard iteration counter; identical on
         every shard (checkpoints are collective), so resuming from any
         owned shard is safe *)
      let start = (Hashtbl.find state (List.hd (Ckpt.shards ctx))).(0) - 1 in
      for it = start to n_iters - 1 do
        K.compute (comm ()) 5.0e-6;
        let (_ : int) = K.allreduce_single (comm ()) D.int Mpisim.Op.int_sum 1 in
        List.iter (fun s -> (Hashtbl.find state s).(0) <- it + 2) (Ckpt.shards ctx);
        Ckpt.maybe_checkpoint ctx
      done;
      let local =
        List.fold_left
          (fun acc s -> acc + Array.fold_left ( + ) 0 (Hashtbl.find state s))
          0 (Ckpt.shards ctx)
      in
      K.allreduce_single (comm ()) D.int Mpisim.Op.int_sum local)

(* Kills leave the victim's result slot as an error, so judge the run by
   rank 0 (never killed): its global total must be schedule-invariant. *)
let rank0_verdict (o : int Explore.observed) =
  match o.Explore.outcome with
  | Explore.Crashed e -> Explore.Fail ("crashed: " ^ Printexc.to_string e)
  | Explore.Finished r ->
      if r.Mpisim.Mpi.diagnostics <> [] then
        Explore.Fail
          ("checker: "
          ^ String.concat "; " (List.map Checker.to_string r.Mpisim.Mpi.diagnostics))
      else (
        match r.Mpisim.Mpi.results.(0) with
        | Ok v -> Explore.Pass (string_of_int v)
        | Error e -> Explore.Fail ("rank 0: " ^ Printexc.to_string e))

let test_mutation_smoke () =
  let chaos = { Explore.no_chaos with Explore.kills = [ (3, 100.0e-6, 400.0e-6) ] } in
  let explore_once ~dump () =
    Explore.explore ~schedules:200 ~seed:5 ~chaos ~verdict:rank0_verdict ~dump ~ranks:4
      mutation_workload
  in
  (* control: the fixed code is schedule-independent even under kills *)
  (match explore_once ~dump:false () with
  | Ok _ -> ()
  | Error ce ->
      Alcotest.failf "control run found a spurious counterexample: %s" ce.Explore.ce_reason);
  Fun.protect
    ~finally:(fun () -> Ckpt.test_resched_local_size := false)
    (fun () ->
      Ckpt.test_resched_local_size := true;
      match explore_once ~dump:true () with
      | Ok n -> Alcotest.failf "mutation not caught within %d schedules" n
      | Error ce ->
          Alcotest.(check bool)
            (Printf.sprintf "found on schedule %d <= 200" ce.Explore.ce_schedule)
            true
            (ce.Explore.ce_schedule >= 1 && ce.Explore.ce_schedule <= 200);
          Alcotest.(check bool)
            (Printf.sprintf "minimized to %d decisions <= 30" ce.Explore.ce_decisions)
            true (ce.Explore.ce_decisions <= 30);
          (* the minimized token still reproduces the failure *)
          let o = Explore.replay ce.Explore.ce_token ~ranks:4 mutation_workload in
          (match rank0_verdict o with
          | Explore.Fail _ -> ()
          | Explore.Pass _ -> Alcotest.fail "minimized token no longer reproduces the bug");
          (* the Chrome postmortem trace was dumped *)
          Option.iter
            (fun path ->
              Alcotest.(check bool) "chrome trace exists" true (Sys.file_exists path);
              Sys.remove path)
            ce.Explore.ce_chrome)

let suite =
  [
    Alcotest.test_case "token round-trip" `Quick test_token_round_trip;
    Alcotest.test_case "strategy parsing" `Quick test_strategy_parsing;
    Alcotest.test_case "default strategy is a pure observer" `Quick test_default_pure_observer;
    Alcotest.test_case "random varies wildcard match order" `Quick test_wildcard_order_varies;
    Alcotest.test_case "random varies wait_any completion order" `Quick
      test_completion_order_varies;
    Alcotest.test_case "replay round-trip" `Quick test_replay_round_trip;
    Alcotest.test_case "shrink_trace minimizes to the needles" `Quick test_shrink_trace;
    Alcotest.test_case "pct and delay strategies" `Quick test_pct_and_delay;
    Alcotest.test_case "chaos jitter: deterministic, FIFO-preserving" `Quick test_chaos_jitter;
    Alcotest.test_case "chaos kill: replayable recovery interleaving" `Quick test_chaos_kill;
    Alcotest.test_case "explore: clean workload passes" `Quick test_explore_clean_workload;
    Alcotest.test_case "tutil explore combinator" `Quick test_tutil_explore_combinator;
    Alcotest.test_case "watchdog catches a livelock" `Quick test_watchdog_livelock;
    Alcotest.test_case "qcheck failures are reproducible" `Quick test_qtest_reproducible;
    Alcotest.test_case "gallery schedule-independent: core" `Quick test_gallery_core;
    Alcotest.test_case "gallery schedule-independent: collectives+rma" `Quick
      test_gallery_collectives_rma;
    Alcotest.test_case "gallery schedule-independent: apps" `Quick test_gallery_apps;
    Alcotest.test_case "gallery schedule-independent: resilience" `Quick
      test_gallery_resilience;
    Alcotest.test_case "gallery schedule-independent: scenarios" `Quick test_gallery_scenarios;
    Alcotest.test_case "mutation smoke: daly divergence found+shrunk" `Quick
      test_mutation_smoke;
  ]
