(* Tests for the extension surface: non-blocking collectives, the
   measurement/timer module, and the distributed-vector plugin. *)

open Kamping
module C = Mpisim.Collectives
module D = Mpisim.Datatype
module V = Ds.Vec

let run = Tutil.run
let wrapped ~ranks f = run ~ranks (fun raw -> f (Comm.wrap raw))
let vec_int = Alcotest.testable (Ds.Vec.pp Format.pp_print_int) (Ds.Vec.equal ( = ))

(* ---------- non-blocking collectives (mpisim) ---------- *)

let test_ibcast () =
  ignore
    (run ~ranks:5 (fun comm ->
         let buf = if Mpisim.Comm.rank comm = 1 then [| 4; 5; 6 |] else Array.make 3 0 in
         let req = C.ibcast comm D.int buf ~root:1 in
         (* overlap with local work *)
         Mpisim.Comm.compute comm 3.0e-6;
         ignore (Mpisim.Request.wait req);
         Alcotest.(check Tutil.int_array) "ibcast payload" [| 4; 5; 6 |] buf))

let test_iallreduce () =
  ignore
    (run ~ranks:6 (fun comm ->
         let r = Mpisim.Comm.rank comm in
         let out = Array.make 2 0 in
         let req = C.iallreduce comm D.int Mpisim.Op.int_sum ~sendbuf:[| r; 1 |] ~recvbuf:out ~count:2 in
         ignore (Mpisim.Request.wait req);
         Alcotest.(check Tutil.int_array) "iallreduce" [| 15; 6 |] out))

let test_ialltoallv () =
  ignore
    (run ~ranks:4 (fun comm ->
         let r = Mpisim.Comm.rank comm and p = Mpisim.Comm.size comm in
         let scounts = Array.make p 1 in
         let sdispls = Array.init p Fun.id in
         let sendbuf = Array.init p (fun d -> (r * 10) + d) in
         let recvbuf = Array.make p (-1) in
         let req =
           C.ialltoallv comm D.int ~sendbuf ~scounts ~sdispls ~recvbuf ~rcounts:scounts
             ~rdispls:sdispls
         in
         ignore (Mpisim.Request.wait req);
         Alcotest.(check Tutil.int_array) "ialltoallv" (Array.init p (fun s -> (s * 10) + r)) recvbuf))

let test_overlapping_nonblocking_collectives () =
  (* two in-flight collectives on the same communicator must not
     cross-match *)
  ignore
    (run ~ranks:4 (fun comm ->
         let r = Mpisim.Comm.rank comm in
         let a = if r = 0 then [| 1 |] else [| 0 |] in
         let b = if r = 0 then [| 2 |] else [| 0 |] in
         let ra = C.ibcast comm D.int a ~root:0 in
         let rb = C.ibcast comm D.int b ~root:0 in
         ignore (Mpisim.Request.wait rb);
         ignore (Mpisim.Request.wait ra);
         Alcotest.(check int) "first bcast" 1 a.(0);
         Alcotest.(check int) "second bcast" 2 b.(0)))

(* ---------- kamping non-blocking wrappers ---------- *)

let test_kamping_ibcast_ownership () =
  ignore
    (wrapped ~ranks:3 (fun comm ->
         let buf = if Comm.rank comm = 0 then V.of_list [ 7; 8 ] else V.make 2 0 in
         let pending = Comm.ibcast comm D.int ~send_recv_buf:buf in
         let back = Nb_result.wait pending in
         Alcotest.(check bool) "buffer returned" true (back == buf);
         Alcotest.check vec_int "payload" (V.of_list [ 7; 8 ]) back))

let test_kamping_iallreduce () =
  ignore
    (wrapped ~ranks:4 (fun comm ->
         let pending = Comm.iallreduce comm D.int Mpisim.Op.int_max ~send_buf:(V.make 1 (Comm.rank comm)) in
         let v = Nb_result.wait pending in
         Alcotest.check vec_int "max" (V.of_list [ 3 ]) v))

let test_kamping_ialltoallv () =
  ignore
    (wrapped ~ranks:3 (fun comm ->
         let p = Comm.size comm and r = Comm.rank comm in
         let counts = Array.make p 1 in
         let pending =
           Comm.ialltoallv comm D.int
             ~send_buf:(V.init p (fun d -> (r * 100) + d))
             ~send_counts:counts ~recv_counts:counts
         in
         let v = Nb_result.wait pending in
         Alcotest.check vec_int "exchange" (V.init p (fun s -> (s * 100) + r)) v))

(* ---------- measurement ---------- *)

let test_measurement_phases () =
  ignore
    (wrapped ~ranks:4 (fun comm ->
         let timer = Measurement.create comm in
         Measurement.time timer "compute" (fun () -> Comm.compute comm 10.0e-6);
         Measurement.time timer "communicate" (fun () -> Comm.barrier comm);
         (* the phase accumulates over repeated sections *)
         Measurement.time timer "compute" (fun () -> Comm.compute comm 5.0e-6);
         Alcotest.(check (float 1e-9)) "accumulated compute" 15.0e-6
           (Measurement.local timer "compute");
         Alcotest.(check (list string)) "phases" [ "communicate"; "compute" ]
           (Measurement.phases timer);
         let stats = Measurement.aggregate timer in
         let compute = List.find (fun s -> s.Measurement.phase = "compute") stats in
         Alcotest.(check (float 1e-9)) "min = max = mean (uniform work)" compute.Measurement.min
           compute.Measurement.max))

let test_measurement_skew () =
  ignore
    (wrapped ~ranks:4 (fun comm ->
         let timer = Measurement.create comm in
         Measurement.time timer "phase" (fun () ->
             Comm.compute comm (float_of_int (Comm.rank comm) *. 1.0e-6));
         let stats = List.hd (Measurement.aggregate timer) in
         Alcotest.(check (float 1e-12)) "min" 0.0 stats.Measurement.min;
         Alcotest.(check (float 1e-12)) "max" 3.0e-6 stats.Measurement.max;
         Alcotest.(check (float 1e-12)) "mean" 1.5e-6 stats.Measurement.mean))

let test_measurement_misuse () =
  ignore
    (wrapped ~ranks:1 (fun comm ->
         let timer = Measurement.create comm in
         Alcotest.(check bool) "stop before start" true
           (match Measurement.stop timer "x" with
           | () -> false
           | exception Mpisim.Errors.Usage_error _ -> true);
         Measurement.start timer "x";
         Alcotest.(check bool) "double start" true
           (match Measurement.start timer "x" with
           | () -> false
           | exception Mpisim.Errors.Usage_error _ -> true)))

let test_measurement_phase_mismatch () =
  (* Ranks recorded different phase sets: [aggregate] must diagnose the
     disagreement on EVERY rank (naming the offending rank and phases)
     instead of hanging in mismatched collectives. *)
  let messages =
    wrapped ~ranks:2 (fun comm ->
        let timer = Measurement.create comm in
        Measurement.time timer "a" (fun () -> Comm.compute comm 1.0e-6);
        if Comm.rank comm = 0 then Measurement.time timer "b" (fun () -> Comm.compute comm 1.0e-6);
        match Measurement.aggregate timer with
        | _ -> "no error"
        | exception Mpisim.Errors.Usage_error msg -> msg)
  in
  Array.iteri
    (fun r msg ->
      let mem needle =
        Alcotest.(check bool)
          (Printf.sprintf "rank %d message mentions %S" r needle)
          true
          (let len = String.length needle in
           let ok = ref false in
           String.iteri
             (fun i _ ->
               if (not !ok) && i + len <= String.length msg then
                 if String.sub msg i len = needle then ok := true)
             msg;
           !ok)
      in
      mem "different phase sets";
      mem "rank 1";
      mem "missing";
      mem "b")
    messages

(* ---------- distributed vector ---------- *)

module DV = Kamping_plugins.Dist_vector

let test_dist_vector_pipeline () =
  let results =
    wrapped ~ranks:4 (fun comm ->
        let r = Comm.rank comm in
        (* uneven initial distribution *)
        let v = DV.create comm D.int (V.init (r * 2) (fun i -> (r * 100) + i)) in
        Alcotest.(check int) "global size" 12 (DV.global_size v);
        let doubled = DV.map D.int (fun x -> 2 * x) v in
        let big = DV.filter (fun x -> x >= 400) doubled in
        Alcotest.(check int) "filtered size" 10 (DV.global_size big);
        let total = DV.reduce ( + ) doubled in
        (V.to_list (DV.gather_all big), total))
  in
  let expected_big = [ 400; 402; 404; 406; 600; 602; 604; 606; 608; 610 ] in
  Array.iter
    (fun (big, total) ->
      Alcotest.(check (list int)) "gathered filtered" expected_big big;
      (* sum of doubled elements *)
      let all = List.concat (List.init 4 (fun r -> List.init (r * 2) (fun i -> 2 * ((r * 100) + i)))) in
      Alcotest.(check int) "reduce" (List.fold_left ( + ) 0 all) total)
    results

let test_dist_vector_balance () =
  ignore
    (wrapped ~ranks:4 (fun comm ->
         let r = Comm.rank comm in
         (* everything starts on rank 0 *)
         let v = DV.create comm D.int (if r = 0 then V.init 10 Fun.id else V.create ()) in
         let balanced = DV.balance v in
         let expected_len = if r < 2 then 3 else 2 in
         Alcotest.(check int) "balanced length" expected_len (V.length (DV.local balanced));
         (* global order preserved *)
         Alcotest.check vec_int "order preserved" (V.init 10 Fun.id) (DV.gather_all balanced)))

let test_dist_vector_sort () =
  ignore
    (wrapped ~ranks:3 (fun comm ->
         let rng = Simnet.Rng.split (Simnet.Rng.create 5L) (Comm.rank comm) in
         let v = DV.create comm D.int (V.init 40 (fun _ -> Simnet.Rng.int rng 1000)) in
         let sorted = DV.sort ~cmp:compare v in
         let all = DV.gather_all sorted in
         let l = V.to_list all in
         Alcotest.(check bool) "sorted" true (l = List.sort compare l);
         Alcotest.(check int) "size preserved" 120 (V.length all)))

let test_dist_vector_reduce_reproducible () =
  (* float reduction through the container is p-independent *)
  let data = Array.init 100 (fun i -> (10.0 ** float_of_int ((i * 5 mod 21) - 10)) *. 1.3) in
  let sum_with ranks =
    (run ~ranks (fun raw ->
         let comm = Comm.wrap raw in
         let base = Array.length data / ranks and extra = Array.length data mod ranks in
         let r = Comm.rank comm in
         let count = base + (if r < extra then 1 else 0) in
         let start = (r * base) + min r extra in
         let v = DV.create comm D.float (V.init count (fun i -> data.(start + i))) in
         DV.reduce ( +. ) v)).(0)
  in
  let s1 = sum_with 1 and s5 = sum_with 5 and s9 = sum_with 9 in
  Alcotest.(check bool) "bitwise stable" true
    (Int64.equal (Int64.bits_of_float s1) (Int64.bits_of_float s5)
    && Int64.equal (Int64.bits_of_float s5) (Int64.bits_of_float s9))

let suite =
  [
    Alcotest.test_case "ibcast" `Quick test_ibcast;
    Alcotest.test_case "iallreduce" `Quick test_iallreduce;
    Alcotest.test_case "ialltoallv" `Quick test_ialltoallv;
    Alcotest.test_case "overlapping nonblocking collectives" `Quick
      test_overlapping_nonblocking_collectives;
    Alcotest.test_case "kamping ibcast ownership" `Quick test_kamping_ibcast_ownership;
    Alcotest.test_case "kamping iallreduce" `Quick test_kamping_iallreduce;
    Alcotest.test_case "kamping ialltoallv" `Quick test_kamping_ialltoallv;
    Alcotest.test_case "measurement phases" `Quick test_measurement_phases;
    Alcotest.test_case "measurement skew aggregation" `Quick test_measurement_skew;
    Alcotest.test_case "measurement misuse" `Quick test_measurement_misuse;
    Alcotest.test_case "measurement phase-set mismatch diagnosed" `Quick
      test_measurement_phase_mismatch;
    Alcotest.test_case "dist_vector map/filter/reduce" `Quick test_dist_vector_pipeline;
    Alcotest.test_case "dist_vector balance" `Quick test_dist_vector_balance;
    Alcotest.test_case "dist_vector sort" `Quick test_dist_vector_sort;
    Alcotest.test_case "dist_vector reproducible float reduce" `Quick
      test_dist_vector_reduce_reproducible;
  ]
