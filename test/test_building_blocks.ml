(* Tests for the Sec. VI building blocks: request-reply reads over
   distributed data and the asynchronous message aggregator. *)

open Kamping
module D = Mpisim.Datatype
module V = Ds.Vec
module RR = Kamping_plugins.Request_reply
module Agg = Kamping_plugins.Aggregator

let wrapped ~ranks f = Tutil.run ~ranks (fun raw -> f (Comm.wrap raw))

(* ---------- request-reply ---------- *)

let rr_scenario transport ~ranks =
  wrapped ~ranks (fun comm ->
      let r = Comm.rank comm and p = Comm.size comm in
      (* a distributed table: owner of key k is k mod p; value is 1000k + owner *)
      let owner k = k mod p in
      let lookup k =
        assert (owner k = r);
        (1000 * k) + r
      in
      (* every rank asks for an interleaved slice of keys *)
      let keys = V.init 20 (fun i -> (i * 7) + r) in
      let got = RR.read ~transport comm D.int D.int ~owner ~lookup keys in
      (V.to_list keys, V.to_list got))

let check_rr transport ~ranks =
  let results = rr_scenario transport ~ranks in
  Array.iter
    (fun (keys, got) ->
      let expected = List.map (fun k -> (k, (1000 * k) + (k mod ranks))) keys in
      Alcotest.(check (list (pair int (pair int int)))) "values in request order"
        (List.mapi (fun i kv -> (i, kv)) expected)
        (List.mapi (fun i kv -> (i, kv)) got))
    results

let test_rr_dense () = List.iter (fun p -> check_rr RR.Dense ~ranks:p) [ 1; 3; 6 ]
let test_rr_sparse () = List.iter (fun p -> check_rr RR.Sparse ~ranks:p) [ 1; 3; 6 ]

let transports = [ ("dense", RR.Dense); ("sparse", RR.Sparse) ]

let test_rr_empty_requests () =
  (* some ranks ask nothing; owners still answer others *)
  List.iter
    (fun (tname, transport) ->
      ignore
        (wrapped ~ranks:4 (fun comm ->
             let r = Comm.rank comm in
             let keys = if r = 2 then V.of_list [ 0; 1; 2; 3 ] else V.create () in
             let got =
               RR.read ~transport comm D.int D.int ~owner:(fun k -> k mod 4)
                 ~lookup:(fun k -> -k)
                 keys
             in
             if r = 2 then
               Alcotest.(check (list (pair int int)))
                 (tname ^ ": answers")
                 [ (0, 0); (1, -1); (2, -2); (3, -3) ]
                 (V.to_list got)
             else Alcotest.(check int) (tname ^ ": nothing") 0 (V.length got))))
    transports

let test_rr_all_empty () =
  (* the degenerate collective: nobody asks anything at all *)
  List.iter
    (fun (tname, transport) ->
      ignore
        (wrapped ~ranks:3 (fun comm ->
             let got =
               RR.read ~transport comm D.int D.int ~owner:(fun k -> k mod 3)
                 ~lookup:(fun k -> k)
                 (V.create ())
             in
             Alcotest.(check int) (tname ^ ": empty result") 0 (V.length got))))
    transports

let test_rr_duplicate_keys () =
  (* duplicates are answered positionally, including duplicates of keys
     owned by the asking rank itself *)
  List.iter
    (fun (tname, transport) ->
      ignore
        (wrapped ~ranks:3 (fun comm ->
             let keys = V.of_list [ 5; 5; 0; 5; 0 ] in
             let got =
               RR.read ~transport comm D.int D.int ~owner:(fun k -> k mod 3)
                 ~lookup:(fun k -> k * k)
                 keys
             in
             Alcotest.(check (list (pair int int)))
               (tname ^ ": duplicates answered")
               [ (5, 25); (5, 25); (0, 0); (5, 25); (0, 0) ]
               (V.to_list got))))
    transports

let prop_rr_transports_agree =
  Tutil.qtest ~count:15 "request-reply: dense and sparse agree"
    QCheck2.Gen.(pair (int_range 1 6) (list_size (int_bound 30) (int_bound 100)))
    (fun (p, pool) ->
      let run transport =
        Tutil.run ~ranks:p (fun raw ->
            let comm = Comm.wrap raw in
            let keys =
              V.of_list (List.filteri (fun i _ -> i mod p = Comm.rank comm) pool)
            in
            V.to_list
              (RR.read ~transport comm D.int D.int ~owner:(fun k -> k mod p)
                 ~lookup:(fun k -> (2 * k) + 1)
                 keys))
      in
      run RR.Dense = run RR.Sparse)

(* ---------- aggregator ---------- *)

let test_aggregator_delivers_everything () =
  List.iter
    (fun threshold ->
      let ranks = 5 in
      let results =
        wrapped ~ranks (fun comm ->
            let r = Comm.rank comm and p = Comm.size comm in
            let received = Array.make p 0 in
            let sum = ref 0 in
            let agg =
              Agg.create ~threshold comm D.int ~handler:(fun ~src block ->
                  received.(src) <- received.(src) + V.length block;
                  V.iter (fun x -> sum := !sum + x) block)
            in
            (* every rank sends 30 items to each other rank *)
            for dst = 0 to p - 1 do
              if dst <> r then
                for i = 1 to 30 do
                  Agg.send agg ~dst ((r * 1000) + i)
                done
            done;
            Agg.finish agg;
            (Array.copy received, !sum))
      in
      Array.iteri
        (fun r (received, sum) ->
          let expected_sum = ref 0 in
          for s = 0 to ranks - 1 do
            if s <> r then begin
              Alcotest.(check int)
                (Printf.sprintf "thr=%d: 30 items from %d" threshold s)
                30 received.(s);
              for i = 1 to 30 do
                expected_sum := !expected_sum + (s * 1000) + i
              done
            end
          done;
          Alcotest.(check int) (Printf.sprintf "thr=%d: payload sum" threshold) !expected_sum sum)
        results)
    [ 1; 7; 1000 ]

let test_aggregator_rounds () =
  (* finish acts as a round boundary; the aggregator is reusable *)
  ignore
    (wrapped ~ranks:3 (fun comm ->
         let r = Comm.rank comm and p = Comm.size comm in
         let this_round = ref 0 in
         let agg =
           Agg.create ~threshold:4 comm D.int ~handler:(fun ~src:_ block ->
               this_round := !this_round + V.length block)
         in
         for round = 1 to 3 do
           this_round := 0;
           let k = round * 2 in
           for _ = 1 to k do
             Agg.send agg ~dst:((r + 1) mod p) 1
           done;
           Agg.finish agg;
           Alcotest.(check int) (Printf.sprintf "round %d" round) k !this_round
         done))

let test_aggregator_threshold_ships_early () =
  ignore
    (wrapped ~ranks:2 (fun comm ->
         let r = Comm.rank comm in
         let agg = Agg.create ~threshold:5 comm D.int ~handler:(fun ~src:_ _ -> ()) in
         if r = 0 then begin
           for i = 1 to 4 do
             Agg.send agg ~dst:1 i
           done;
           Alcotest.(check int) "still buffered" 4 (Agg.pending_items agg);
           Agg.send agg ~dst:1 5;
           Alcotest.(check int) "shipped at threshold" 0 (Agg.pending_items agg)
         end;
         Agg.finish agg))

(* ---------- aggregator flush ---------- *)

let test_aggregator_flush_ships_partial () =
  (* a flushed partial buffer is delivered before any finish; the
     flush-only round is checker-clean *)
  ignore
    (Tutil.run_checked ~ranks:2 (fun raw ->
         let comm = Comm.wrap raw in
         let r = Comm.rank comm in
         let got = ref [] in
         let agg =
           Agg.create ~threshold:1000 comm D.int ~handler:(fun ~src:_ block ->
               V.iter (fun x -> got := x :: !got) block)
         in
         if r = 0 then begin
           for i = 1 to 4 do
             Agg.send agg ~dst:1 (10 * i)
           done;
           Alcotest.(check int) "buffered below threshold" 4 (Agg.pending_items agg);
           Agg.flush agg;
           Alcotest.(check int) "flush ships everything" 0 (Agg.pending_items agg)
         end
         else begin
           (* the block must arrive through plain polling, no finish needed *)
           let tries = ref 0 in
           while List.length !got < 4 && !tries < 10_000 do
             Agg.poll agg;
             Comm.compute comm 1e-6;
             incr tries
           done;
           Alcotest.(check (list int)) "delivered before finish" [ 40; 30; 20; 10 ] !got
         end;
         Agg.finish agg;
         if r = 1 then Alcotest.(check int) "finish adds nothing" 4 (List.length !got)))

let test_aggregator_finish_after_flush_only_rounds () =
  (* several rounds whose traffic ships exclusively via flush (the
     threshold is never reached): every finish terminates and accounts
     for the flushed blocks, checker-clean *)
  ignore
    (Tutil.run_checked ~ranks:3 (fun raw ->
         let comm = Comm.wrap raw in
         let r = Comm.rank comm and p = Comm.size comm in
         let this_round = ref 0 in
         let agg =
           Agg.create ~threshold:1000 comm D.int ~handler:(fun ~src:_ block ->
               this_round := !this_round + V.length block)
         in
         for round = 1 to 3 do
           this_round := 0;
           for i = 1 to round do
             Agg.send agg ~dst:((r + 1) mod p) i
           done;
           Agg.flush agg;
           Alcotest.(check int) (Printf.sprintf "round %d: flushed" round) 0 (Agg.pending_items agg);
           Agg.finish agg;
           Alcotest.(check int) (Printf.sprintf "round %d: delivered" round) round !this_round
         done))

let test_aggregator_finish_zero_sends () =
  (* a round in which nobody sends anything (and an idle flush) still
     terminates, twice in a row, checker-clean *)
  ignore
    (Tutil.run_checked ~ranks:3 (fun raw ->
         let comm = Comm.wrap raw in
         let agg = Agg.create comm D.int ~handler:(fun ~src:_ _ -> Alcotest.fail "no traffic") in
         Agg.flush agg;
         Agg.finish agg;
         Agg.finish agg;
         Alcotest.(check int) "nothing pending" 0 (Agg.pending_items agg)))

let suite =
  [
    Alcotest.test_case "request-reply dense" `Quick test_rr_dense;
    Alcotest.test_case "request-reply sparse (NBX)" `Quick test_rr_sparse;
    Alcotest.test_case "request-reply empty requests" `Quick test_rr_empty_requests;
    Alcotest.test_case "request-reply all ranks empty" `Quick test_rr_all_empty;
    Alcotest.test_case "request-reply duplicate keys" `Quick test_rr_duplicate_keys;
    prop_rr_transports_agree;
    Alcotest.test_case "aggregator delivers everything" `Quick test_aggregator_delivers_everything;
    Alcotest.test_case "aggregator round boundaries" `Quick test_aggregator_rounds;
    Alcotest.test_case "aggregator threshold" `Quick test_aggregator_threshold_ships_early;
    Alcotest.test_case "aggregator flush ships partial buffers" `Quick
      test_aggregator_flush_ships_partial;
    Alcotest.test_case "aggregator finish after flush-only rounds" `Quick
      test_aggregator_finish_after_flush_only_rounds;
    Alcotest.test_case "aggregator finish with zero sends" `Quick test_aggregator_finish_zero_sends;
  ]
