(* Scenario diversity wave: differential and chaos tests for the gallery
   workloads in lib/apps — PageRank / connected components over the
   generator families, the CG stencil solver over its three halo
   transports, and the streaming windowed-analytics pipeline.

   The gallery digests (examples/gallery/{graph_analytics, cg_solver,
   stream_windows}.ml) already prove oracle equality on the default
   schedule; these tests add the property-based sweep over process
   grids (including degenerate 1xN shapes and zero-iteration runs) and
   the chaos regressions: a kill drawn by the explorer mid-run must
   recover bit-identically, and the replay token must reproduce it. *)

module K = Kamping.Comm
module C = Apps.Cg_stencil
module S = Apps.Stream_analytics
module Gen = Graphgen.Generators
module G = Graphgen.Distgraph

(* ------------------------------------------------------------------ *)
(* CG: cross-transport differential property                           *)

(* (ranks, dims, nx, ny): balanced grids plus the degenerate single-row
   and single-column decompositions *)
let cg_shapes =
  [
    (1, [| 1; 1 |], 5, 4);
    (2, [| 2; 1 |], 6, 5);
    (2, [| 1; 2 |], 5, 6);
    (4, [| 2; 2 |], 8, 6);
    (4, [| 4; 1 |], 8, 5);
    (4, [| 1; 4 |], 5, 8);
    (6, [| 3; 2 |], 9, 8);
    (6, [| 1; 6 |], 4, 12);
  ]

let assemble_cg ~nx ~ny results =
  let field = Array.make (nx * ny) 0.0 in
  Array.iter
    (fun r ->
      for k = 0 to (r.C.lx * r.C.ly) - 1 do
        field.(((r.C.gi0 + (k / r.C.ly)) * ny) + r.C.gj0 + (k mod r.C.ly)) <- r.C.x.(k)
      done)
    results;
  field

let prop_cg_transports =
  let gen =
    QCheck2.Gen.(
      map2
        (fun shape (iters, seed) -> (shape, iters, seed))
        (oneofl cg_shapes)
        (pair (int_range 0 6) (int_range 0 999)))
  in
  Tutil.qtest ~count:30 "cg: transports bit-identical across grids" gen
    (fun ((ranks, dims, nx, ny), iters, seed) ->
      let ref_field, ref_rr = C.reference ~dims ~nx ~ny ~iters ~seed in
      List.for_all
        (fun transport ->
          let rs =
            Tutil.run ~ranks (fun raw ->
                C.solve ~transport (K.wrap raw) ~dims ~nx ~ny ~iters ~seed)
          in
          assemble_cg ~nx ~ny rs = ref_field && Array.for_all (fun r -> r.C.rr = ref_rr) rs)
        C.all_transports)

(* ------------------------------------------------------------------ *)
(* Oracle equality on uneven decompositions, under the checker         *)

let test_pagerank_oracle () =
  let global_n = 33 and avg_degree = 3 and seed = 11 and alpha = 0.85 and iters = 6 in
  List.iter
    (fun family ->
      let expect = Apps.Pagerank.reference family ~global_n ~avg_degree ~seed ~alpha ~iters in
      List.iter
        (fun variant ->
          let rs =
            Tutil.run_checked ~ranks:3 (fun raw ->
                let g =
                  Gen.generate family ~rank:(Mpisim.Comm.rank raw) ~comm_size:3 ~global_n
                    ~avg_degree ~seed
                in
                Apps.Pagerank.run ~variant (K.wrap raw) g ~alpha ~iters)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s == reference" (Gen.family_name family)
               (Apps.Gexchange.variant_name variant))
            true
            (Array.concat (Array.to_list rs) = expect))
        Apps.Gexchange.all_variants)
    [ Gen.Erdos_renyi; Gen.Rhg ]

let test_cc_oracle () =
  let global_n = 41 and avg_degree = 2 and seed = 3 in
  let expect = Apps.Conncomp.reference Gen.Rhg ~global_n ~avg_degree ~seed in
  List.iter
    (fun variant ->
      let rs =
        Tutil.run_checked ~ranks:5 (fun raw ->
            let g =
              Gen.generate Gen.Rhg ~rank:(Mpisim.Comm.rank raw) ~comm_size:5 ~global_n
                ~avg_degree ~seed
            in
            Apps.Conncomp.run ~variant (K.wrap raw) g)
      in
      Alcotest.(check bool)
        (Apps.Gexchange.variant_name variant ^ " == union-find")
        true
        (Array.concat (Array.to_list rs) = expect))
    Apps.Gexchange.all_variants

let stream_cfg =
  {
    S.n_shards = 5;
    windows = 2;
    events_per_shard = 32;
    n_keys = 9;
    n_values = 25;
    topk = 2;
    threshold = 12;
    flush_every = 30e-6;
    seed = 21;
  }

let test_stream_oracle () =
  let expect = S.reference stream_cfg in
  let rs = Tutil.run_checked ~ranks:3 (fun raw -> S.run (K.wrap raw) stream_cfg) in
  Array.iteri
    (fun r got ->
      Alcotest.(check bool) (Printf.sprintf "rank %d == reference" r) true (got = expect))
    rs

(* ------------------------------------------------------------------ *)
(* Chaos regressions: explorer-drawn kills recover bit-identically     *)

(* Run [workload] at 4 ranks with a kill of rank 1 drawn inside the
   window, check the survivors against [check], then prove the replay
   token round-trips and reproduces the identical execution. *)
let chaos_recovers name ~seed workload check =
  let chaos = { Explore.no_chaos with Explore.kills = [ (1, 20.0e-6, 120.0e-6) ] } in
  let o = Explore.run ~strategy:(Explore.Random { seed }) ~chaos ~ranks:4 workload in
  match o.Explore.outcome with
  | Explore.Crashed e -> raise e
  | Explore.Finished r ->
      (match r.Mpisim.Mpi.results.(1) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: rank 1 survived the kill window" name);
      check name r;
      (* the token survives a print/parse round-trip ... *)
      let s = Explore.token_to_string o.Explore.token in
      Alcotest.(check bool) (name ^ ": token round-trip") true
        (Explore.token_of_string s = o.Explore.token);
      (* ... and replays the identical execution *)
      (match (Explore.replay o.Explore.token ~ranks:4 workload).Explore.outcome with
      | Explore.Crashed e -> raise e
      | Explore.Finished r' ->
          Alcotest.(check bool) (name ^ ": replay identical") true
            (r.Mpisim.Mpi.sim_time = r'.Mpisim.Mpi.sim_time);
          check (name ^ "[replay]") r')

(* collect (shard, block) pairs from the survivors into the global array *)
let assemble_shards ~global_n ~n_shards zero results =
  let out = Array.make global_n zero in
  let seen = Hashtbl.create 8 in
  Array.iter
    (function
      | Ok pairs ->
          List.iter
            (fun (s, block) ->
              Hashtbl.replace seen s ();
              let first, _ = G.block_range ~global_n ~comm_size:n_shards s in
              Array.blit block 0 out first (Array.length block))
            pairs
      | Error _ -> ())
    results;
  Alcotest.(check int) "all shards recovered" n_shards (Hashtbl.length seen);
  out

let test_chaos_pagerank () =
  let family = Gen.Erdos_renyi and global_n = 48 and avg_degree = 3 and seed = 7 in
  let alpha = 0.85 and iters = 8 and n_shards = 6 in
  let expect = Apps.Pagerank.reference family ~global_n ~avg_degree ~seed ~alpha ~iters in
  chaos_recovers "pagerank" ~seed:101
    (fun raw ->
      Apps.Pagerank_resilient.run ~policy:(Ckpt.Schedule.Every_n 1) (K.wrap raw) ~family
        ~n_shards ~global_n ~avg_degree ~seed ~alpha ~iters)
    (fun name r ->
      Alcotest.(check bool) (name ^ ": scores bit-identical") true
        (assemble_shards ~global_n ~n_shards 0.0 r.Mpisim.Mpi.results = expect))

let test_chaos_cc () =
  let family = Gen.Rgg2d and global_n = 54 and avg_degree = 4 and seed = 13 and n_shards = 6 in
  let expect = Apps.Conncomp.reference family ~global_n ~avg_degree ~seed in
  chaos_recovers "conncomp" ~seed:103
    (fun raw ->
      Apps.Conncomp_resilient.run ~policy:(Ckpt.Schedule.Every_n 1) (K.wrap raw) ~family
        ~n_shards ~global_n ~avg_degree ~seed)
    (fun name r ->
      Alcotest.(check bool) (name ^ ": labels bit-identical") true
        (assemble_shards ~global_n ~n_shards 0 r.Mpisim.Mpi.results = expect))

let test_chaos_cg () =
  let nx = 18 and ny = 12 and iters = 12 and seed = 31 and n_shards = 6 in
  let expect_x, expect_rr = C.reference ~dims:[| n_shards; 1 |] ~nx ~ny ~iters ~seed in
  chaos_recovers "cg" ~seed:107
    (fun raw ->
      Apps.Cg_resilient.run ~policy:(Ckpt.Schedule.Every_n 1) (K.wrap raw) ~n_shards ~nx ~ny
        ~iters ~seed)
    (fun name r ->
      let blocks = Array.map (Result.map fst) r.Mpisim.Mpi.results in
      (* rows divide evenly (nx = 18, 6 shards), so each shard's row block
         is also its contiguous block of the flat field *)
      Alcotest.(check bool) (name ^ ": solution bit-identical") true
        (assemble_shards ~global_n:(nx * ny) ~n_shards 0.0 blocks = expect_x);
      Array.iter
        (function
          | Ok (_, rr) ->
              Alcotest.(check bool) (name ^ ": residual bit-identical") true (rr = expect_rr)
          | Error _ -> ())
        r.Mpisim.Mpi.results)

let test_chaos_stream () =
  let expect = S.reference stream_cfg in
  chaos_recovers "stream" ~seed:109
    (fun raw -> S.resilient ~policy:(Ckpt.Schedule.Every_n 1) (K.wrap raw) stream_cfg)
    (fun name r ->
      let survivors =
        List.filter_map
          (function Ok v -> Some v | Error _ -> None)
          (Array.to_list r.Mpisim.Mpi.results)
      in
      Alcotest.(check bool) (name ^ ": has survivors") true (survivors <> []);
      List.iter
        (fun got ->
          Alcotest.(check bool) (name ^ ": windows bit-identical") true (got = expect))
        survivors)

let suite =
  [
    prop_cg_transports;
    Alcotest.test_case "pagerank oracle (uneven blocks)" `Quick test_pagerank_oracle;
    Alcotest.test_case "conncomp oracle (uneven blocks)" `Quick test_cc_oracle;
    Alcotest.test_case "stream oracle (uneven shards)" `Quick test_stream_oracle;
    Alcotest.test_case "chaos: pagerank recovers bit-identically" `Quick test_chaos_pagerank;
    Alcotest.test_case "chaos: conncomp recovers bit-identically" `Quick test_chaos_cc;
    Alcotest.test_case "chaos: cg recovers bit-identically" `Quick test_chaos_cg;
    Alcotest.test_case "chaos: stream recovers bit-identically" `Quick test_chaos_stream;
  ]
