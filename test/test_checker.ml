(* The correctness checker (PR 2): every seeded bug class must terminate
   with the expected structured diagnostic — no hangs — and clean programs
   must produce zero diagnostics at the strictest level. *)

open Mpisim
module Ck = Mpisim.Checker
module Algo = Coll_algos.Algo

let with_heavy f = Ck.with_level Ck.Heavy f
let with_comm_level f = Ck.with_level Ck.Communication f

let has_detail pred diags = List.exists (fun (d : Ck.diagnostic) -> pred d) diags

let pp_diags diags = String.concat "\n" (List.map Ck.to_string diags)

let check_found what pred (res : _ Mpi.run_result) =
  if not (has_detail pred res.Mpi.diagnostics) then
    Alcotest.failf "expected a %s diagnostic, got:\n%s" what (pp_diags res.Mpi.diagnostics)

(* ------------- deadlock ------------- *)

(* Both ranks receive before sending: the classic head-to-head deadlock. *)
let recv_first_cycle comm =
  let peer = 1 - Comm.rank comm in
  let buf = [| 0 |] in
  ignore (P2p.recv comm Datatype.int buf ~src:peer ~tag:0);
  P2p.send comm Datatype.int [| Comm.rank comm |] ~dst:peer ~tag:0

let test_deadlock_cycle_reported () =
  let res = with_heavy (fun () -> Mpi.run ~ranks:2 recv_first_cycle) in
  check_found "deadlock-cycle"
    (fun d ->
      match d.Ck.detail with
      | Ck.Deadlock_cycle { cycle; blocked } ->
          d.Ck.location = "quiesce"
          && List.mem 0 cycle && List.mem 1 cycle
          && List.exists (fun (r, _) -> r = 0) blocked
          && List.exists (fun (r, _) -> r = 1) blocked
      | _ -> false)
    res;
  (* the run terminated instead of hanging; the stuck ranks report death *)
  Array.iter
    (fun r ->
      Alcotest.(check bool) "rank did not finish" true
        (match r with Error Mpi.Rank_died -> true | _ -> false))
    res.Mpi.results

let test_deadlock_still_raises_below_heavy () =
  Ck.with_level Ck.Light (fun () ->
      Alcotest.(check bool) "Engine.Deadlock at Light" true
        (match Mpi.run ~ranks:2 recv_first_cycle with
        | (_ : unit Mpi.run_result) -> false
        | exception Simnet.Engine.Deadlock _ -> true))

(* ------------- collective ordering ------------- *)

let test_collective_order_mismatch () =
  let res =
    with_comm_level (fun () ->
        Mpi.run ~ranks:2 (fun comm ->
            let buf = [| 1 |] in
            if Comm.rank comm = 0 then begin
              Collectives.barrier comm;
              Collectives.bcast comm Datatype.int buf ~root:0
            end
            else begin
              (* swapped order: bcast where the others call barrier *)
              Collectives.bcast comm Datatype.int buf ~root:0;
              Collectives.barrier comm
            end))
  in
  check_found "collective-mismatch(operation)"
    (fun d ->
      match d.Ck.detail with
      | Ck.Collective_mismatch { index = 0; field = "operation"; expected; got } ->
          expected.Ck.coll_op = "MPI_Barrier" && got.Ck.coll_op = "MPI_Bcast"
      | _ -> false)
    res

let test_collective_root_disagreement () =
  let res =
    with_comm_level (fun () ->
        Mpi.run ~ranks:2 (fun comm ->
            let buf = [| 1 |] in
            (* every rank names itself as the root *)
            Collectives.bcast comm Datatype.int buf ~root:(Comm.rank comm)))
  in
  check_found "collective-mismatch(root)"
    (fun d ->
      match d.Ck.detail with
      | Ck.Collective_mismatch { field = "root"; expected; got } ->
          expected.Ck.coll_root = 0 && got.Ck.coll_root = 1
      | _ -> false)
    res

let test_collective_count_disagreement () =
  let res =
    with_comm_level (fun () ->
        Mpi.run ~ranks:2 (fun comm ->
            let n = if Comm.rank comm = 0 then 3 else 4 in
            Collectives.allreduce comm Datatype.int Op.int_sum ~sendbuf:(Array.make n 1)
              ~recvbuf:(Array.make n 0) ~count:n))
  in
  check_found "collective-mismatch(count)"
    (fun d ->
      match d.Ck.detail with Ck.Collective_mismatch { field = "count"; _ } -> true | _ -> false)
    res

(* ------------- p2p matching errors ------------- *)

let test_truncation_diagnosed () =
  let res =
    Ck.with_level Ck.Light (fun () ->
        Mpi.run ~ranks:2 (fun comm ->
            if Comm.rank comm = 0 then P2p.send comm Datatype.int [| 1; 2; 3; 4 |] ~dst:1 ~tag:0
            else
              match P2p.recv comm Datatype.int (Array.make 2 0) ~src:0 ~tag:0 with
              | (_ : Request.status) -> Alcotest.fail "truncation not raised"
              | exception Errors.Truncated _ -> ()))
  in
  check_found "truncation"
    (fun d ->
      match d.Ck.detail with
      | Ck.Truncation { sent = 4; capacity = 2 } ->
          d.Ck.rank = 1 && d.Ck.location = "p2p-match" && d.Ck.op = "MPI_Recv"
      | _ -> false)
    res

let test_datatype_mismatch_diagnosed () =
  let res =
    Ck.with_level Ck.Light (fun () ->
        Mpi.run ~ranks:2 (fun comm ->
            if Comm.rank comm = 0 then P2p.send comm Datatype.int [| 7 |] ~dst:1 ~tag:0
            else
              match P2p.recv comm Datatype.float (Array.make 1 0.0) ~src:0 ~tag:0 with
              | (_ : Request.status) -> Alcotest.fail "type mismatch not raised"
              | exception Errors.Type_mismatch _ -> ()))
  in
  check_found "datatype-mismatch"
    (fun d ->
      match d.Ck.detail with
      | Ck.Datatype_mismatch { sent; expected } -> sent = "int" && expected = "double"
      | _ -> false)
    res

(* ------------- resource leaks at finalize ------------- *)

let test_request_leak () =
  let res =
    with_heavy (fun () ->
        Mpi.run ~ranks:2 (fun comm ->
            if Comm.rank comm = 0 then
              (* fire and forget: the isend handle is dropped unobserved *)
              ignore (P2p.isend comm Datatype.int [| 9 |] ~dst:1 ~tag:0)
            else ignore (P2p.recv comm Datatype.int [| 0 |] ~src:0 ~tag:0)))
  in
  check_found "request-leak"
    (fun d ->
      match d.Ck.detail with
      | Ck.Request_leak -> d.Ck.rank = 0 && d.Ck.op = "MPI_Isend" && d.Ck.location = "finalize"
      | _ -> false)
    res

let test_waited_request_is_clean () =
  let results =
    Tutil.run_checked ~level:Ck.Heavy ~ranks:2 (fun comm ->
        if Comm.rank comm = 0 then Request.wait (P2p.isend comm Datatype.int [| 9 |] ~dst:1 ~tag:0)
        else P2p.recv comm Datatype.int [| 0 |] ~src:0 ~tag:0)
  in
  Alcotest.(check int) "both ranks done" 2 (Array.length results)

let test_unmatched_send () =
  let res =
    with_heavy (fun () ->
        Mpi.run ~ranks:2 (fun comm ->
            if Comm.rank comm = 0 then
              (* rank 1 never posts the matching receive *)
              P2p.send comm Datatype.int [| 1; 2; 3 |] ~dst:1 ~tag:42))
  in
  check_found "unmatched-send"
    (fun d ->
      match d.Ck.detail with
      | Ck.Unmatched_send { dst = 1; tag = 42; count = 3 } ->
          d.Ck.rank = 0 && d.Ck.location = "finalize"
      | _ -> false)
    res

(* Buddy-checkpoint style traffic abandoned because a THIRD rank failed:
   rank 0's isend to rank 1 is never matched — rank 1 aborted the
   exchange when it observed rank 2's death.  Both endpoints are alive,
   but the communicator is damaged, so the finalize leak scan must not
   flag the in-flight message (regression for the ULFM exclusions). *)
let test_damaged_comm_traffic_not_flagged () =
  let res =
    with_heavy (fun () ->
        Mpi.run ~ranks:3 ~fail_at:[ (2, 10.0e-6) ] (fun comm ->
            match Comm.rank comm with
            | 0 -> ignore (P2p.isend comm Datatype.int [| 1 |] ~dst:1 ~tag:7)
            | 1 -> (
                try ignore (P2p.recv comm Datatype.int [| 0 |] ~src:2 ~tag:0)
                with Errors.Process_failed _ -> ())
            | _ ->
                (* blocks forever; killed at 10us *)
                ignore (P2p.recv comm Datatype.int [| 0 |] ~src:0 ~tag:99)))
  in
  (match res.Mpi.diagnostics with
  | [] -> ()
  | diags -> Alcotest.failf "damaged-comm traffic flagged:\n%s" (pp_diags diags));
  (* The exclusion is scoped to damaged communicators: the same abandoned
     isend with every member alive is still a leak and an unmatched
     send. *)
  let healthy =
    with_heavy (fun () ->
        Mpi.run ~ranks:3 (fun comm ->
            if Comm.rank comm = 0 then
              ignore (P2p.isend comm Datatype.int [| 1 |] ~dst:1 ~tag:7)))
  in
  check_found "request-leak on healthy comm"
    (fun d -> match d.Ck.detail with Ck.Request_leak -> d.Ck.rank = 0 | _ -> false)
    healthy;
  check_found "unmatched-send on healthy comm"
    (fun d ->
      match d.Ck.detail with Ck.Unmatched_send { dst = 1; tag = 7; _ } -> true | _ -> false)
    healthy

(* The damaged-comm exemption is temporal: only traffic already in
   flight when the member died may have been abandoned because of the
   failure.  A leak between two live ranks initiated long AFTER an
   unrelated third member's death is still a genuine leak. *)
let test_leak_after_unrelated_failure_still_flagged () =
  let res =
    with_heavy (fun () ->
        Mpi.run ~ranks:3 ~fail_at:[ (2, 1.0e-6) ] (fun comm ->
            match Comm.rank comm with
            | 0 ->
                (* compute well past rank 2's death, then leak a send *)
                Comm.compute comm 1.0e-3;
                ignore (P2p.isend comm Datatype.int [| 1 |] ~dst:1 ~tag:8)
            | 1 ->
                (* stays alive past the leak; never posts the receive *)
                Comm.compute comm 2.0e-3
            | _ ->
                (* blocks forever; killed at 1us *)
                ignore (P2p.recv comm Datatype.int [| 0 |] ~src:0 ~tag:99)))
  in
  check_found "request-leak after unrelated failure"
    (fun d -> match d.Ck.detail with Ck.Request_leak -> d.Ck.rank = 0 | _ -> false)
    res;
  check_found "unmatched-send after unrelated failure"
    (fun d ->
      match d.Ck.detail with Ck.Unmatched_send { dst = 1; tag = 8; _ } -> true | _ -> false)
    res

let test_window_leak_and_free () =
  let leaked =
    with_heavy (fun () ->
        Mpi.run ~ranks:2 (fun comm ->
            let win = Win.create comm Datatype.int (Array.make 2 0) in
            Win.put win ~target:(1 - Comm.rank comm) ~target_pos:0 [| 5 |];
            Win.fence win))
  in
  check_found "window-leak"
    (fun d -> match d.Ck.detail with Ck.Window_leak -> d.Ck.location = "finalize" | _ -> false)
    leaked;
  (* same program with Win.free runs clean *)
  ignore
    (Tutil.run_checked ~level:Ck.Heavy ~ranks:2 (fun comm ->
         let win = Win.create comm Datatype.int (Array.make 2 0) in
         Win.put win ~target:(1 - Comm.rank comm) ~target_pos:0 [| 5 |];
         Win.fence win;
         Win.free win))

(* A persistent handle left unfreed at finalize is a leak — the standing
   registration pins a matching slot forever — and the diagnostic carries
   the round count so a never-started handle is distinguishable from an
   abandoned hot channel. *)
let test_persistent_leak_and_free () =
  let leaked =
    with_heavy (fun () ->
        Mpi.run ~ranks:2 (fun comm ->
            let peer = 1 - Comm.rank comm in
            let h = P2p.send_init comm Datatype.int [| 1 |] ~dst:peer ~tag:3 in
            let r = P2p.recv_init comm Datatype.int [| 0 |] ~src:peer ~tag:3 in
            Persist.startall [ h; r ];
            ignore (Persist.wait h);
            ignore (Persist.wait r);
            Persist.free r
            (* h is never freed *)))
  in
  check_found "persistent-leak"
    (fun d ->
      match d.Ck.detail with
      | Ck.Persistent_leak { starts } ->
          d.Ck.op = "MPI_Send_init" && d.Ck.location = "finalize" && starts = 1
      | _ -> false)
    leaked;
  (* the same program with the send handle freed runs clean *)
  ignore
    (Tutil.run_checked ~level:Ck.Heavy ~ranks:2 (fun comm ->
         let peer = 1 - Comm.rank comm in
         let h = P2p.send_init comm Datatype.int [| 1 |] ~dst:peer ~tag:3 in
         let r = P2p.recv_init comm Datatype.int [| 0 |] ~src:peer ~tag:3 in
         Persist.startall [ h; r ];
         ignore (Persist.wait h);
         ignore (Persist.wait r);
         Persist.free r;
         Persist.free h))

(* ------------- clean programs ------------- *)

let test_busy_clean_program () =
  let results =
    Tutil.run_checked ~ranks:4 (fun comm ->
        let r = Comm.rank comm and p = Comm.size comm in
        let buf = if r = 0 then [| 11; 22; 33 |] else Array.make 3 0 in
        Collectives.bcast comm Datatype.int buf ~root:0;
        let sum = Array.make 1 0 in
        Collectives.allreduce comm Datatype.int Op.int_sum ~sendbuf:[| r |] ~recvbuf:sum ~count:1;
        let recv = Array.make 1 0 in
        ignore
          (P2p.sendrecv comm Datatype.int ~send:[| r |] ~dst:((r + 1) mod p) ~stag:1 ~recv
             ~src:((r - 1 + p) mod p) ~rtag:1 ());
        let req = P2p.irecv comm Datatype.int (Array.make 1 0) ~src:((r + 1) mod p) ~tag:2 in
        P2p.send comm Datatype.int [| r * 10 |] ~dst:((r - 1 + p) mod p) ~tag:2;
        ignore (Request.wait req);
        Collectives.barrier comm;
        (buf.(2), sum.(0), recv.(0)))
  in
  Array.iteri
    (fun r (b, s, v) ->
      Alcotest.(check int) "bcast" 33 b;
      Alcotest.(check int) "allreduce" 6 s;
      Alcotest.(check int) "ring" ((r + 3) mod 4) v)
    results

let test_nonblocking_collectives_clean () =
  ignore
    (Tutil.run_checked ~ranks:4 (fun comm ->
         let sum = Array.make 1 0 in
         let req =
           Collectives.iallreduce comm Datatype.int Op.int_sum ~sendbuf:[| 1 |] ~recvbuf:sum
             ~count:1
         in
         let breq = Collectives.ibarrier comm in
         ignore (Request.wait req);
         ignore (Request.wait breq);
         Alcotest.(check int) "iallreduce" 4 sum.(0)))

(* ------------- coll_algos degenerate coverage (PR 1 gap) ------------- *)

let test_degenerate_collectives_clean () =
  List.iter
    (fun p ->
      List.iter
        (fun count ->
          ignore
            (Tutil.run_checked ~ranks:p (fun comm ->
                 let data = Array.init count (fun i -> i + 1) in
                 let buf = if Comm.rank comm = 0 then Array.copy data else Array.make count 0 in
                 Collectives.bcast comm Datatype.int buf ~root:0;
                 let red = Array.make count 0 in
                 Collectives.allreduce comm Datatype.int Op.int_sum ~sendbuf:buf ~recvbuf:red
                   ~count;
                 let gathered = Array.make (p * count) 0 in
                 Collectives.allgather comm Datatype.int ~sendbuf:buf ~recvbuf:gathered ~count;
                 let a2a = Array.make (p * count) 0 in
                 Collectives.alltoall comm Datatype.int ~sendbuf:(Array.make (p * count) 7)
                   ~recvbuf:a2a ~count;
                 Alcotest.(check Tutil.int_array) "bcast payload" data buf)))
        [ 0; 1; 5 ])
    [ 1; 4 ]

let test_pinned_algorithms_clean () =
  let pinned_run ~coll ~algo body =
    ignore
      (Tutil.run_checked ~ranks:4 (fun comm ->
           Collectives.pin_algorithm comm ~coll ~algo;
           body comm))
  in
  List.iter
    (fun algo ->
      pinned_run ~coll:"bcast" ~algo:(Algo.bcast_name algo) (fun comm ->
          Collectives.bcast comm Datatype.int (Array.make 8 (Comm.rank comm)) ~root:0))
    Algo.all_bcast;
  List.iter
    (fun algo ->
      pinned_run ~coll:"allreduce" ~algo:(Algo.allreduce_name algo) (fun comm ->
          let out = Array.make 4 0 in
          Collectives.allreduce comm Datatype.int Op.int_sum ~sendbuf:(Array.make 4 1)
            ~recvbuf:out ~count:4))
    Algo.all_allreduce;
  List.iter
    (fun algo ->
      pinned_run ~coll:"allgather" ~algo:(Algo.allgather_name algo) (fun comm ->
          let out = Array.make 8 0 in
          Collectives.allgather comm Datatype.int ~sendbuf:(Array.make 2 (Comm.rank comm))
            ~recvbuf:out ~count:2))
    Algo.all_allgather;
  List.iter
    (fun algo ->
      pinned_run ~coll:"alltoall" ~algo:(Algo.alltoall_name algo) (fun comm ->
          let out = Array.make 4 0 in
          Collectives.alltoall comm Datatype.int ~sendbuf:(Array.make 4 (Comm.rank comm))
            ~recvbuf:out ~count:1))
    Algo.all_alltoall

(* ------------- zero overhead at level Off ------------- *)

let parameterized_program comm =
  let r = Comm.rank comm and p = Comm.size comm in
  let rc = Array.init p (fun i -> i + 1) in
  let rd = Array.make p 0 in
  for i = 1 to p - 1 do
    rd.(i) <- rd.(i - 1) + rc.(i - 1)
  done;
  let out = Array.make (rd.(p - 1) + rc.(p - 1)) 0 in
  Collectives.allgatherv comm Datatype.int ~sendbuf:(Array.make (r + 1) r) ~scount:(r + 1)
    ~recvbuf:out ~rcounts:rc ~rdispls:rd;
  let sum = Array.make 1 0 in
  Collectives.allreduce comm Datatype.int Op.int_sum ~sendbuf:[| r |] ~recvbuf:sum ~count:1

let test_checker_is_pure_observer () =
  (* the checker must add no MPI calls, no messages and no simulated time
     at ANY level: profiling equality between Off and Communication is the
     PMPI-style proof that level [none] stays zero-overhead *)
  let at level = Ck.with_level level (fun () -> Mpi.run ~ranks:8 parameterized_program) in
  let off = at Ck.Off and full = at Ck.Communication in
  Alcotest.(check (list (pair string int)))
    "identical call profile" off.Mpi.profile.Profiling.calls full.Mpi.profile.Profiling.calls;
  Alcotest.(check int) "identical messages" off.Mpi.profile.Profiling.messages
    full.Mpi.profile.Profiling.messages;
  Alcotest.(check (float 0.0)) "identical simulated time" off.Mpi.sim_time full.Mpi.sim_time;
  Alcotest.(check int) "identical event count" off.Mpi.events full.Mpi.events;
  Alcotest.(check (list (pair string int)))
    "identical algorithm annotations" off.Mpi.profile.Profiling.algo_calls
    full.Mpi.profile.Profiling.algo_calls

let test_off_disables_all_recording () =
  let res =
    Ck.with_level Ck.Off (fun () ->
        Mpi.run ~ranks:2 (fun comm ->
            (* a leak and an unmatched send that Heavy would flag *)
            if Comm.rank comm = 0 then begin
              ignore (P2p.isend comm Datatype.int [| 1 |] ~dst:1 ~tag:0);
              P2p.send comm Datatype.int [| 2 |] ~dst:1 ~tag:1
            end))
  in
  Alcotest.(check int) "no diagnostics at Off" 0 (List.length res.Mpi.diagnostics)

let suite =
  [
    Alcotest.test_case "deadlock: cycle reported, no hang" `Quick test_deadlock_cycle_reported;
    Alcotest.test_case "deadlock: raises below Heavy" `Quick test_deadlock_still_raises_below_heavy;
    Alcotest.test_case "collective order mismatch" `Quick test_collective_order_mismatch;
    Alcotest.test_case "collective root disagreement" `Quick test_collective_root_disagreement;
    Alcotest.test_case "collective count disagreement" `Quick test_collective_count_disagreement;
    Alcotest.test_case "truncation diagnosed" `Quick test_truncation_diagnosed;
    Alcotest.test_case "datatype mismatch diagnosed" `Quick test_datatype_mismatch_diagnosed;
    Alcotest.test_case "request leak" `Quick test_request_leak;
    Alcotest.test_case "waited request is clean" `Quick test_waited_request_is_clean;
    Alcotest.test_case "unmatched send" `Quick test_unmatched_send;
    Alcotest.test_case "damaged-comm traffic not flagged" `Quick
      test_damaged_comm_traffic_not_flagged;
    Alcotest.test_case "leak after unrelated failure still flagged" `Quick
      test_leak_after_unrelated_failure_still_flagged;
    Alcotest.test_case "window leak / freed is clean" `Quick test_window_leak_and_free;
    Alcotest.test_case "persistent leak / freed is clean" `Quick test_persistent_leak_and_free;
    Alcotest.test_case "busy clean program: zero diagnostics" `Quick test_busy_clean_program;
    Alcotest.test_case "nonblocking collectives clean" `Quick test_nonblocking_collectives_clean;
    Alcotest.test_case "degenerate collectives clean" `Quick test_degenerate_collectives_clean;
    Alcotest.test_case "pinned algorithms clean" `Quick test_pinned_algorithms_clean;
    Alcotest.test_case "checker is a pure observer" `Quick test_checker_is_pure_observer;
    Alcotest.test_case "level Off records nothing" `Quick test_off_disables_all_recording;
  ]
