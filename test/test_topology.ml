(* Tests for the topology subsystem: fabric descriptions and placement
   maps, tiered routing and uplink congestion in the network model,
   topology-aware group planning, the auto-tuner, node-aware communicator
   splitting, and — the load-bearing property — bit-identity of every
   hierarchical collective body against its flat incumbent. *)

module N = Simnet.Netmodel
module C = Mpisim.Collectives
module D = Mpisim.Datatype
module K = Kamping.Comm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Placement maps                                                      *)

let test_place () =
  Alcotest.(check (array int)) "block" [| 0; 0; 0; 1; 1; 1; 2 |] (Topology.Place.block ~ranks:7 ~node_size:3);
  Alcotest.(check (array int)) "round robin" [| 0; 1; 2; 0; 1; 2 |]
    (Topology.Place.round_robin ~ranks:6 ~nodes:3);
  Alcotest.(check (array int)) "racks" [| 0; 0; 1; 1; 2 |] (Topology.Place.racks ~nodes:5 ~nodes_per_rack:2);
  let sc = Topology.Place.scattered ~ranks:8 ~node_size:2 in
  check_int "scattered nodes" 4 (Topology.Place.node_count sc);
  Alcotest.(check (array int)) "scattered balanced" [| 2; 2; 2; 2 |] (Topology.Place.populations sc);
  check_bool "scattered is not block" true (sc <> Topology.Place.block ~ranks:8 ~node_size:2);
  check_bool "scattered rejects non-divisible" true
    (raises_invalid (fun () -> Topology.Place.scattered ~ranks:7 ~node_size:2));
  check_bool "validate: length mismatch" true
    (raises_invalid (fun () -> Topology.Place.validate ~ranks:3 ~node_of:[| 0; 0 |] ~rack_of:[| 0 |]));
  check_bool "validate: node out of range" true
    (raises_invalid (fun () -> Topology.Place.validate ~ranks:2 ~node_of:[| 0; 1 |] ~rack_of:[| 0 |]));
  check_bool "validate: empty node" true
    (raises_invalid (fun () ->
         Topology.Place.validate ~ranks:2 ~node_of:[| 0; 0 |] ~rack_of:[| 0; 0 |]))

let test_fabric_builders () =
  let f = Topology.Fabric.two_tier ~node_size:4 ~ranks:10 () in
  check_int "two-tier ranks" 10 (Topology.Fabric.ranks f);
  check_int "two-tier nodes" 3 (Topology.Fabric.nodes f);
  check_int "two-tier racks" 1 (Topology.Fabric.racks f);
  check_int "two-tier fullest node" 4 (Topology.Fabric.max_per_node f);
  let ft = Topology.Fabric.fat_tree ~node_size:2 ~nodes_per_rack:2 ~uplinks:3 ~ranks:8 () in
  check_int "fat-tree nodes" 4 (Topology.Fabric.nodes ft);
  check_int "fat-tree racks" 2 (Topology.Fabric.racks ft);
  check_int "fat-tree uplinks" 3 ft.N.f_uplinks;
  check_bool "describe mentions shape" true
    (String.length (Topology.Fabric.describe ft) > 0);
  List.iter
    (fun (name, build) ->
      let f = build ~ranks:96 in
      check_bool (name ^ " builds") true (Topology.Fabric.ranks f = 96))
    Topology.Presets.all;
  check_bool "preset lookup" true (Topology.Presets.find "omnipath" <> None);
  check_bool "scattered preset balanced" true
    (Topology.Fabric.max_per_node (Topology.Presets.omnipath_scattered ~ranks:96) = 48)

let test_spec_parsing () =
  let f = N.fabric_of_spec ~ranks:8 "two:4" in
  Alcotest.(check (array int)) "two: block placement" [| 0; 0; 0; 0; 1; 1; 1; 1 |] f.N.f_node_of;
  check_int "two: single rack" 1 (Topology.Fabric.racks f);
  check_int "two: no uplinks" 0 f.N.f_uplinks;
  let ft = N.fabric_of_spec ~ranks:8 "fat:2:2:3" in
  Alcotest.(check (array int)) "fat: racks" [| 0; 0; 1; 1 |] ft.N.f_rack_of;
  check_int "fat: uplinks" 3 ft.N.f_uplinks;
  List.iter
    (fun spec ->
      check_bool (Printf.sprintf "spec %S rejected" spec) true
        (raises_invalid (fun () -> N.fabric_of_spec ~ranks:8 spec)))
    [ ""; "two"; "two:"; "two:0"; "two:-1"; "three:4"; "fat:2"; "fat:2:2:1:9"; "two:4:junk" ]

(* ------------------------------------------------------------------ *)
(* Tiered routing and congestion in the network model                  *)

let test_tier_selection () =
  let f = Topology.Fabric.fat_tree ~node_size:2 ~nodes_per_rack:2 ~ranks:8 () in
  let t = N.create_fabric f ~ranks:8 in
  check_int "node of rank 5" 2 (N.node_of t 5);
  check_int "rack of rank 5" 1 (N.rack_of_rank t 5);
  let lat src dst = (N.params_between t ~src ~dst).N.latency in
  check_bool "same node uses node tier" true (lat 0 1 = N.intra_node.N.latency);
  check_bool "same rack uses rack tier" true (lat 0 2 = N.low_latency.N.latency);
  check_bool "cross rack uses core tier" true (lat 0 7 = N.default.N.latency)

(* Satellite regression: a group confined to one tier must plan with that
   tier's parameters, not collapse to the pessimistic core tier. *)
let test_params_for_group_pessimism () =
  let f = Topology.Fabric.fat_tree ~node_size:2 ~nodes_per_rack:2 ~ranks:8 () in
  let t = N.create_fabric f ~ranks:8 in
  let lat g = (N.params_for_group t g).N.latency in
  check_bool "single-node group plans intra-node" true (lat [| 2; 3 |] = N.intra_node.N.latency);
  check_bool "single-rack group plans rack tier" true (lat [| 0; 1; 2; 3 |] = N.low_latency.N.latency);
  check_bool "spanning group plans core tier" true (lat [| 0; 7 |] = N.default.N.latency);
  (* flat fabrics keep the flat parameters *)
  let flat = N.create N.default ~ranks:4 in
  check_bool "flat group plans flat params" true
    ((N.params_for_group flat [| 0; 1; 2 |]).N.latency = N.default.N.latency)

let test_hier_for_group () =
  let two = N.create_fabric (N.fabric_of_spec ~ranks:8 "two:4") ~ranks:8 in
  (match N.hier_for_group two (Array.init 8 Fun.id) with
  | Some h ->
      check_int "h_nodes" 2 h.N.h_nodes;
      check_int "h_max_per_node" 4 h.N.h_max_per_node;
      check_bool "h_intra is the node tier" true (h.N.h_intra.N.latency = N.intra_node.N.latency);
      check_bool "h_inter is the spanning tier" true (h.N.h_inter.N.latency = N.default.N.latency)
  | None -> Alcotest.fail "fabric group spanning nodes must have a hier profile");
  check_bool "single-node group has no profile" true
    (N.hier_for_group two [| 0; 1; 2 |] = None);
  let flat = N.create N.default ~ranks:8 in
  check_bool "flat fabric has no profile" true (N.hier_for_group flat (Array.init 8 Fun.id) = None);
  (* the legacy two-tier model deliberately keeps its exact pre-topology
     planning behavior *)
  let legacy = N.create_hierarchical ~inter:N.default ~intra:N.intra_node ~node_size:4 ~ranks:8 in
  check_bool "legacy ?node model opts out" true
    (N.hier_for_group legacy (Array.init 8 Fun.id) = None)

let test_uplink_congestion () =
  (* Two inter-node messages from distinct senders on one node: with one
     shared uplink the second serializes behind the first; with
     uncongested uplinks they only serialize per-sender. *)
  let arrival ~uplinks =
    let f = Topology.Fabric.two_tier ~uplinks ~node_size:2 ~ranks:4 () in
    let t = N.create_fabric f ~ranks:4 in
    let _, _ = N.transfer t ~now:0.0 ~src:0 ~dst:2 ~bytes:1000 ~pack_factor:1.0 in
    let _, a = N.transfer t ~now:0.0 ~src:1 ~dst:3 ~bytes:1000 ~pack_factor:1.0 in
    a
  in
  check_bool "shared uplink serializes inter-node injection" true
    (arrival ~uplinks:1 > arrival ~uplinks:0);
  (* intra-node traffic never touches the uplink ports *)
  let f = Topology.Fabric.two_tier ~uplinks:1 ~node_size:2 ~ranks:4 () in
  let t = N.create_fabric f ~ranks:4 in
  let _, _ = N.transfer t ~now:0.0 ~src:0 ~dst:2 ~bytes:1000 ~pack_factor:1.0 in
  let t2 = N.create_fabric f ~ranks:4 in
  let _, intra_clean = N.transfer t2 ~now:0.0 ~src:1 ~dst:0 ~bytes:64 ~pack_factor:1.0 in
  let _, intra_after = N.transfer t ~now:0.0 ~src:1 ~dst:0 ~bytes:64 ~pack_factor:1.0 in
  check_bool "intra-node unaffected by uplink booking" true (intra_after = intra_clean);
  (* with two ports, the third message waits on the earliest-free one *)
  let f2 = Topology.Fabric.two_tier ~uplinks:2 ~node_size:3 ~ranks:6 () in
  let t3 = N.create_fabric f2 ~ranks:6 in
  let _, a1 = N.transfer t3 ~now:0.0 ~src:0 ~dst:3 ~bytes:1000 ~pack_factor:1.0 in
  let _, a2 = N.transfer t3 ~now:0.0 ~src:1 ~dst:4 ~bytes:1000 ~pack_factor:1.0 in
  check_bool "two ports: two messages in parallel" true (a1 = a2);
  let _, a3 = N.transfer t3 ~now:0.0 ~src:2 ~dst:5 ~bytes:1000 ~pack_factor:1.0 in
  check_bool "third message queues behind a port" true (a3 > a1)

(* ------------------------------------------------------------------ *)
(* World wiring: ?fabric, MPISIM_TOPOLOGY, split_by_node               *)

let nodes_seen ?fabric ~ranks () =
  Mpisim.Mpi.results_exn
    (Mpisim.Mpi.run ?fabric ~ranks (fun comm -> Mpisim.Comm.node_of_rank comm (Mpisim.Comm.rank comm)))

let test_env_topology () =
  Unix.putenv "MPISIM_TOPOLOGY" "two:4";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "MPISIM_TOPOLOGY" "")
    (fun () ->
      Alcotest.(check (array int)) "env spec applies per run" [| 0; 0; 0; 0; 1; 1; 1; 1 |]
        (nodes_seen ~ranks:8 ());
      (* an explicit fabric wins over the environment *)
      let explicit = N.fabric_of_spec ~ranks:8 "two:2" in
      Alcotest.(check (array int)) "explicit fabric wins" [| 0; 0; 1; 1; 2; 2; 3; 3 |]
        (nodes_seen ~fabric:explicit ~ranks:8 ()));
  Alcotest.(check (array int)) "empty env keeps the flat model" [| 0; 1; 2; 3 |]
    (nodes_seen ~ranks:4 ())

let test_split_by_node () =
  let fabric = N.fabric_of_spec ~ranks:8 "two:4" in
  let got =
    Mpisim.Mpi.results_exn
      (Mpisim.Mpi.run ~fabric ~ranks:8 (fun comm ->
           let sub = C.split_by_node comm in
           (* node comms are usable: agree on the node id *)
           let buf = [| Mpisim.Comm.node_of_rank comm (Mpisim.Comm.rank comm) |] in
           C.bcast sub D.int buf ~root:0;
           (Mpisim.Comm.size sub, Mpisim.Comm.rank sub, buf.(0))))
  in
  Array.iteri
    (fun r (size, rank, node) ->
      check_int (Printf.sprintf "size@%d" r) 4 size;
      check_int (Printf.sprintf "rank@%d" r) (r mod 4) rank;
      check_int (Printf.sprintf "node@%d" r) (r / 4) node)
    got;
  (* key reverses the ordering inside each node comm *)
  let rev =
    Mpisim.Mpi.results_exn
      (Mpisim.Mpi.run ~fabric ~ranks:8 (fun comm ->
           Mpisim.Comm.rank (C.split_by_node ~key:(-Mpisim.Comm.rank comm) comm)))
  in
  Alcotest.(check (array int)) "key orders node comm" [| 3; 2; 1; 0; 3; 2; 1; 0 |] rev;
  (* flat fabric: every rank is its own node *)
  let singleton =
    Mpisim.Mpi.results_exn
      (Mpisim.Mpi.run ~ranks:3 (fun comm -> Mpisim.Comm.size (C.split_by_node comm)))
  in
  Alcotest.(check (array int)) "flat split is singletons" [| 1; 1; 1 |] singleton

let test_kamping_surface () =
  let fabric = N.fabric_of_spec ~ranks:8 "two:4" in
  let got =
    Mpisim.Mpi.results_exn
      (Mpisim.Mpi.run ~fabric ~ranks:8 (fun raw ->
           let kc = K.wrap raw in
           let sub = K.split_by_node kc in
           (K.size sub, K.node_of_rank kc 5)))
  in
  Array.iter
    (fun (size, node5) ->
      check_int "kamping node comm size" 4 size;
      check_int "kamping node_of_rank" 1 node5)
    got;
  (* pin-table surface round-trips *)
  Mpisim.Mpi.results_exn
    (Mpisim.Mpi.run ~fabric ~ranks:8 (fun raw ->
         let kc = K.wrap raw in
         let table = [ (0, "binomial"); (4096, "node_leader") ] in
         K.pin_table_algorithm kc ~coll:"bcast" table;
         Alcotest.(check (option (list (pair int string))))
           "kamping pin table visible" (Some table)
           (K.pinned_table_algorithm kc ~coll:"bcast");
         (* dispatch under the table still broadcasts correctly *)
         let buf = if K.rank kc = 0 then Ds.Vec.of_array [| 7; 8; 9 |] else Ds.Vec.make 3 0 in
         K.bcast kc D.int ~send_recv_buf:buf;
         Alcotest.(check (array int)) "table-pinned bcast" [| 7; 8; 9 |] (Ds.Vec.to_array buf)))
  |> ignore

(* ------------------------------------------------------------------ *)
(* Auto-tuning                                                         *)

let test_autotune_plan () =
  let fabric = Topology.Presets.omnipath_scattered ~ranks:192 in
  let plan = Topology.Autotune.tune fabric ~p:192 in
  let anchored table = match table with (0, _) :: _ -> true | _ -> false in
  check_bool "bcast table anchored at 0" true (anchored plan.Topology.Autotune.t_bcast);
  check_bool "allreduce table anchored at 0" true (anchored plan.Topology.Autotune.t_allreduce);
  check_bool "alltoall table anchored at 0" true (anchored plan.Topology.Autotune.t_alltoall);
  let names table = List.map snd table in
  check_bool "tuned bcast goes hierarchical" true
    (List.mem "node_leader" (names plan.Topology.Autotune.t_bcast));
  check_bool "tuned allreduce goes hierarchical" true
    (List.mem "node_leader" (names plan.Topology.Autotune.t_allreduce));
  let asc l = List.sort compare l = l in
  check_bool "crossovers ascend" true
    (asc (Topology.Autotune.crossovers plan.Topology.Autotune.t_allreduce));
  check_bool "plan prints" true (String.length (Topology.Autotune.to_string plan) > 0);
  check_bool "empty sweep rejected" true
    (raises_invalid (fun () -> Topology.Autotune.tune ~sizes:[] fabric ~p:192));
  check_bool "oversized comm rejected" true
    (raises_invalid (fun () -> Topology.Autotune.tune fabric ~p:500))

let test_autotune_flat_is_flat () =
  (* without a hierarchy, the sweep must never name a hierarchical
     variant — the bit-identical-default guarantee at the planning layer *)
  let flat = Topology.Fabric.two_tier ~node_size:8 ~ranks:8 () in
  let plan = Topology.Autotune.tune flat ~p:8 in
  List.iter
    (fun table ->
      check_bool "no hierarchical pick on a single node" true
        (not (List.exists (fun (_, a) -> a = "node_leader" || a = "smp" || a = "hypergrid") table)))
    [ plan.Topology.Autotune.t_bcast; plan.Topology.Autotune.t_allreduce; plan.Topology.Autotune.t_alltoall ]

let test_autotune_install () =
  let fabric = N.fabric_of_spec ~ranks:8 "two:4" in
  Mpisim.Mpi.results_exn
    (Mpisim.Mpi.run ~fabric ~ranks:8 (fun comm ->
         let plan = Topology.Autotune.tune_for_comm comm in
         Topology.Autotune.install plan comm;
         Alcotest.(check (option (list (pair int string))))
           "installed table readable"
           (Some plan.Topology.Autotune.t_bcast)
           (C.pinned_table_algorithm comm ~coll:"bcast");
         (* collectives still work under the installed plan *)
         let buf = Array.make 5 (if Mpisim.Comm.rank comm = 0 then 42 else 0) in
         C.bcast comm D.int buf ~root:0;
         Alcotest.(check (array int)) "tuned bcast correct" (Array.make 5 42) buf))
  |> ignore

(* ------------------------------------------------------------------ *)
(* Flat worlds never auto-select hierarchical variants                 *)

let test_flat_selection_unchanged () =
  let bcast_time ~pin ~ranks =
    let res =
      Mpisim.Mpi.run ~ranks (fun comm ->
          (match pin with Some algo -> C.pin_algorithm comm ~coll:"bcast" ~algo | None -> ());
          let buf = Array.make 64 (Mpisim.Comm.rank comm) in
          C.bcast comm D.int buf ~root:0)
    in
    res.Mpisim.Mpi.sim_time
  in
  (* cost-based selection on a flat world equals the flat incumbent's
     schedule exactly — the hierarchical candidate is never chosen *)
  check_bool "flat auto-selection = flat incumbent" true
    (bcast_time ~pin:None ~ranks:6 = bcast_time ~pin:(Some "binomial") ~ranks:6)

(* ------------------------------------------------------------------ *)
(* Differential qcheck: hierarchical bodies are bit-identical          *)

(* Every hierarchical variant must produce exactly the results of its
   flat incumbent, over small worlds crossing node sizes, placements and
   payload shapes (including empty).  Integer payloads make any
   reassociation exact, so equality is bitwise. *)

type diff_config = { dc_p : int; dc_node_size : int; dc_count : int; dc_scatter : bool; dc_root : int }

let diff_configs =
  List.concat_map
    (fun p ->
      List.concat_map
        (fun node_size ->
          List.concat_map
            (fun count ->
              List.concat_map
                (fun scatter ->
                  List.filter_map
                    (fun root ->
                      if scatter && p mod node_size <> 0 then None
                      else Some { dc_p = p; dc_node_size = node_size; dc_count = count; dc_scatter = scatter; dc_root = root })
                    [ 0; p - 1 ])
                [ false; true ])
            [ 0; 1; 5 ])
        [ 1; 2; 4 ])
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let fabric_of_config c =
  if c.dc_scatter then
    let node_of = Topology.Place.scattered ~ranks:c.dc_p ~node_size:c.dc_node_size in
    let nodes = Topology.Place.node_count node_of in
    Topology.Fabric.make ~node_of ~rack_of:(Array.make nodes 0) ~node:N.intra_node ~rack:N.default
      ~core:N.default ()
  else Topology.Fabric.two_tier ~node_size:c.dc_node_size ~ranks:c.dc_p ()

let collect ~fabric ~ranks ~coll ~algo f =
  Mpisim.Mpi.results_exn
    (Mpisim.Mpi.run ~fabric ~deadline:Tutil.default_deadline ~ranks (fun comm ->
         C.pin_algorithm comm ~coll ~algo;
         f comm))

let diff_pair c ~coll ~incumbent ~variant f =
  let fabric = fabric_of_config c in
  let reference = collect ~fabric ~ranks:c.dc_p ~coll ~algo:incumbent f in
  let got = collect ~fabric ~ranks:c.dc_p ~coll ~algo:variant f in
  if got <> reference then
    QCheck2.Test.fail_reportf "%s: %s diverges from %s at p=%d node_size=%d count=%d scatter=%b root=%d"
      coll variant incumbent c.dc_p c.dc_node_size c.dc_count c.dc_scatter c.dc_root;
  true

let bcast_prog c comm =
  let r = Mpisim.Comm.rank comm in
  let buf =
    if r = c.dc_root then Array.init c.dc_count (fun i -> (c.dc_root * 1000) + (i * 31))
    else Array.make c.dc_count (-1)
  in
  C.bcast comm D.int buf ~root:c.dc_root;
  buf

let allreduce_prog c comm =
  let r = Mpisim.Comm.rank comm in
  let sendbuf = Array.init c.dc_count (fun i -> ((r + 1) * 97) + i) in
  let recvbuf = Array.make c.dc_count 0 in
  C.allreduce comm D.int Mpisim.Op.int_sum ~sendbuf ~recvbuf ~count:c.dc_count;
  recvbuf

let alltoall_prog c comm =
  let r = Mpisim.Comm.rank comm in
  let p = Mpisim.Comm.size comm in
  let sendbuf = Array.init (p * c.dc_count) (fun i -> (r * 10000) + i) in
  let recvbuf = Array.make (p * c.dc_count) 0 in
  C.alltoall comm D.int ~sendbuf ~recvbuf ~count:c.dc_count;
  recvbuf

let prop_hier_bit_identical =
  Tutil.qtest ~count:(List.length diff_configs) "hierarchical bodies bit-identical to incumbents"
    (QCheck2.Gen.oneofl diff_configs)
    (fun c ->
      diff_pair c ~coll:"bcast" ~incumbent:"binomial" ~variant:"node_leader" (bcast_prog c)
      && diff_pair c ~coll:"allreduce" ~incumbent:"reduce_bcast" ~variant:"node_leader"
           (allreduce_prog c)
      && diff_pair c ~coll:"alltoall" ~incumbent:"pairwise" ~variant:"smp" (alltoall_prog c)
      && diff_pair c ~coll:"alltoall" ~incumbent:"pairwise" ~variant:"hypergrid" (alltoall_prog c))

(* ------------------------------------------------------------------ *)
(* Gallery under a two-tier topology                                   *)

(* The whole example gallery, digest-checked over random schedules with
   the checker at Communication level, on a two-tier fabric supplied via
   the environment — hierarchical candidates are live, and every digest
   must match the incumbent schedule's. *)
let with_two_tier f =
  Unix.putenv "MPISIM_TOPOLOGY" "two:4";
  Fun.protect ~finally:(fun () -> Unix.putenv "MPISIM_TOPOLOGY" "") f

let gallery name digest = Tutil.check_gallery ~schedules:20 name digest

let test_gallery_core_two_tier () =
  with_two_tier (fun () ->
      gallery "quickstart@two:4" Gallery.Quickstart.digest;
      gallery "vector_allgather@two:4" Gallery.Vector_allgather.digest;
      gallery "serialization_example@two:4" Gallery.Serialization_example.digest;
      gallery "nonblocking_safety@two:4" Gallery.Nonblocking_safety.digest;
      gallery "one_sided@two:4" Gallery.One_sided.digest;
      gallery "word_count@two:4" Gallery.Word_count.digest;
      gallery "reproducible_reduce_example@two:4" Gallery.Reproducible_reduce_example.digest;
      gallery "tracing_example@two:4" Gallery.Tracing_example.digest)

let test_gallery_apps_two_tier () =
  with_two_tier (fun () ->
      gallery "sorter_example@two:4" Gallery.Sorter_example.digest;
      gallery "sample_sort_example@two:4" Gallery.Sample_sort_example.digest;
      gallery "halo_exchange@two:4" Gallery.Halo_exchange.digest;
      gallery "persistent_halo@two:4" Gallery.Persistent_halo.digest;
      gallery "bfs_example@two:4" Gallery.Bfs_example.digest;
      gallery "fault_tolerance@two:4" Gallery.Fault_tolerance.digest;
      gallery "checkpoint_restart@two:4" Gallery.Checkpoint_restart.digest;
      gallery "serving@two:4" Gallery.Serving.digest;
      gallery "graph_analytics@two:4" Gallery.Graph_analytics.digest;
      gallery "cg_solver@two:4" Gallery.Cg_solver.digest;
      gallery "stream_windows@two:4" Gallery.Stream_windows.digest)

let suite =
  [
    Alcotest.test_case "placement builders and validation" `Quick test_place;
    Alcotest.test_case "fabric builders and presets" `Quick test_fabric_builders;
    Alcotest.test_case "MPISIM_TOPOLOGY spec parsing" `Quick test_spec_parsing;
    Alcotest.test_case "tier selection per pair" `Quick test_tier_selection;
    Alcotest.test_case "group planning uses the tightest tier" `Quick test_params_for_group_pessimism;
    Alcotest.test_case "hier profile gating" `Quick test_hier_for_group;
    Alcotest.test_case "shared uplink congestion" `Quick test_uplink_congestion;
    Alcotest.test_case "MPISIM_TOPOLOGY environment wiring" `Quick test_env_topology;
    Alcotest.test_case "split_by_node" `Quick test_split_by_node;
    Alcotest.test_case "kamping topology surface" `Quick test_kamping_surface;
    Alcotest.test_case "autotune plan on the acceptance fabric" `Quick test_autotune_plan;
    Alcotest.test_case "autotune stays flat without hierarchy" `Quick test_autotune_flat_is_flat;
    Alcotest.test_case "autotune install round-trip" `Quick test_autotune_install;
    Alcotest.test_case "flat auto-selection unchanged" `Quick test_flat_selection_unchanged;
    prop_hier_bit_identical;
    Alcotest.test_case "gallery digests on two-tier topology (core)" `Slow test_gallery_core_two_tier;
    Alcotest.test_case "gallery digests on two-tier topology (apps)" `Slow test_gallery_apps_two_tier;
  ]
