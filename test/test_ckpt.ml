(* Checkpoint/restart subsystem tests: schedule math, registry
   round-trips, and end-to-end recovery of the restartable apps under
   deterministic time-based failure schedules. *)

module S = Ckpt.Schedule
module R = Ckpt.Registry
module Gen = Graphgen.Generators
module K = Kamping.Comm

let close ?(eps = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %g ~ %g" name expected actual)
    true
    (Float.abs (expected -. actual) <= eps *. Float.max 1. (Float.abs expected))

let raises_usage name f =
  Alcotest.(check bool) name true
    (match f () with _ -> false | exception Mpisim.Errors.Usage_error _ -> true)

(* ---------- schedule math ---------- *)

let test_young_daly_formulas () =
  let delta = 0.01 and mtbf = 100. in
  close "young" (sqrt (2. *. delta *. mtbf)) (S.young_interval ~ckpt_cost:delta ~mtbf);
  let r = sqrt (delta /. (2. *. mtbf)) in
  close "daly eq.37"
    (sqrt (2. *. delta *. mtbf) *. (1. +. (r /. 3.) +. (r *. r /. 9.)) -. delta)
    (S.daly_interval ~ckpt_cost:delta ~mtbf);
  (* Degenerate regimes. *)
  close "daly fallback: ckpt_cost >= 2 MTBF" 1.0
    (S.daly_interval ~ckpt_cost:5.0 ~mtbf:1.0);
  Alcotest.(check bool) "young: failure-free is infinity" true
    (S.young_interval ~ckpt_cost:delta ~mtbf:infinity = infinity);
  Alcotest.(check bool) "daly: failure-free is infinity" true
    (S.daly_interval ~ckpt_cost:delta ~mtbf:infinity = infinity);
  (* Daly refines Young downward for non-negligible delta/M but stays
     within the same order of magnitude. *)
  let y = S.young_interval ~ckpt_cost:1.0 ~mtbf:50. in
  let d = S.daly_interval ~ckpt_cost:1.0 ~mtbf:50. in
  Alcotest.(check bool) "daly < young when delta non-negligible" true (d < y);
  Alcotest.(check bool) "daly positive" true (d > 0.)

let test_schedule_every_n () =
  let t = S.create (S.Every_n 3) ~ckpt_cost:0.1 ~failure_rate:0.01 in
  Alcotest.(check bool) "not due initially" false (S.due t);
  S.tick t;
  S.tick t;
  Alcotest.(check bool) "not due after 2" false (S.due t);
  S.tick t;
  Alcotest.(check bool) "due after 3" true (S.due t);
  S.record_checkpoint t ~iter_cost:0.5;
  Alcotest.(check bool) "reset after checkpoint" false (S.due t);
  Alcotest.(check bool) "every_n ignores time" true (S.target_interval t = infinity);
  Alcotest.(check string) "policy name" "every_3" (S.policy_name (S.policy t))

let test_schedule_time_based () =
  (* Interval 2.0 with 0.5 s iterations -> period 4 iterations. *)
  let t = S.create (S.Interval 2.0) ~ckpt_cost:0.1 ~failure_rate:0.01 in
  close "target" 2.0 (S.target_interval t);
  S.record_checkpoint t ~iter_cost:0.5;
  Alcotest.(check int) "period = interval / iter_cost" 4 (S.period t);
  for _ = 1 to 3 do
    S.tick t
  done;
  Alcotest.(check bool) "not due below period" false (S.due t);
  S.tick t;
  Alcotest.(check bool) "due at period" true (S.due t);
  S.reset t;
  Alcotest.(check bool) "reset clears counter" false (S.due t);
  (* Interval infinity (failure-free baseline) never fires. *)
  let never = S.create (S.Interval infinity) ~ckpt_cost:0.1 ~failure_rate:0. in
  S.record_checkpoint never ~iter_cost:0.5;
  for _ = 1 to 1000 do
    S.tick never
  done;
  Alcotest.(check bool) "interval infinity never due" false (S.due never);
  Alcotest.(check string) "never name" "never" (S.policy_name (S.policy never));
  (* Daly resolves the target from cost and rate. *)
  let d = S.create S.Daly ~ckpt_cost:0.01 ~failure_rate:0.01 in
  close "daly target" (S.daly_interval ~ckpt_cost:0.01 ~mtbf:100.) (S.target_interval d)

let test_schedule_validation () =
  raises_usage "Every_n 0" (fun () -> S.create (S.Every_n 0) ~ckpt_cost:0.1 ~failure_rate:0.);
  raises_usage "negative interval" (fun () ->
      S.create (S.Interval (-1.)) ~ckpt_cost:0.1 ~failure_rate:0.);
  raises_usage "nan interval" (fun () ->
      S.create (S.Interval Float.nan) ~ckpt_cost:0.1 ~failure_rate:0.);
  raises_usage "negative failure rate" (fun () ->
      S.create S.Daly ~ckpt_cost:0.1 ~failure_rate:(-0.5))

let test_predict_ckpt_cost () =
  let params = Simnet.Netmodel.default in
  let c = S.predict_ckpt_cost params ~p:4 ~bytes:4096 in
  Alcotest.(check bool) "positive" true (c > 0.);
  Alcotest.(check bool) "monotone in bytes" true
    (S.predict_ckpt_cost params ~p:4 ~bytes:65536 > c);
  (* Single rank: no buddy exchange, just serialization. *)
  Alcotest.(check bool) "p=1 cheaper than p=4" true
    (S.predict_ckpt_cost params ~p:1 ~bytes:4096 < c)

(* ---------- registry ---------- *)

let test_registry_roundtrip () =
  let reg = R.create () in
  Alcotest.(check bool) "fresh registry empty" true (R.is_empty reg);
  let table : (int, int array) Hashtbl.t = Hashtbl.create 4 in
  let extra : (int, string) Hashtbl.t = Hashtbl.create 4 in
  Ckpt.register reg ~name:"dist" Serde.Codec.(array int)
    ~save:(fun ~shard -> Hashtbl.find table shard)
    ~restore:(fun ~shard v -> Hashtbl.replace table shard v);
  Ckpt.register reg ~name:"tag" Serde.Codec.string
    ~save:(fun ~shard -> Hashtbl.find extra shard)
    ~restore:(fun ~shard v -> Hashtbl.replace extra shard v);
  Alcotest.(check (list string)) "names in registration order" [ "dist"; "tag" ]
    (R.names reg);
  Hashtbl.replace table 7 [| 3; 1; 4; 1; 5 |];
  Hashtbl.replace extra 7 "seven";
  let bytes = R.save_shard reg ~shard:7 in
  Hashtbl.replace table 7 [| 0 |];
  Hashtbl.replace extra 7 "clobbered";
  R.restore_shard reg ~shard:7 bytes;
  Alcotest.(check (array int)) "array restored" [| 3; 1; 4; 1; 5 |] (Hashtbl.find table 7);
  Alcotest.(check string) "string restored" "seven" (Hashtbl.find extra 7)

let test_registry_rejects () =
  let reg = R.create () in
  Ckpt.register reg ~name:"x" Serde.Codec.int
    ~save:(fun ~shard -> shard)
    ~restore:(fun ~shard:_ _ -> ());
  raises_usage "duplicate name" (fun () ->
      Ckpt.register reg ~name:"x" Serde.Codec.int
        ~save:(fun ~shard -> shard)
        ~restore:(fun ~shard:_ _ -> ()));
  (* A bundle saved under one registry layout must not restore under
     another. *)
  let bytes = R.save_shard reg ~shard:0 in
  let other = R.create () in
  Ckpt.register other ~name:"y" Serde.Codec.int
    ~save:(fun ~shard -> shard)
    ~restore:(fun ~shard:_ _ -> ());
  Alcotest.(check bool) "wrong layout rejected" true
    (match R.restore_shard other ~shard:0 bytes with
    | () -> false
    | exception Serde.Archive.Corrupt _ -> true);
  Alcotest.(check bool) "truncated bundle rejected" true
    (match R.restore_shard reg ~shard:0 (Bytes.sub bytes 0 (Bytes.length bytes - 1)) with
    | () -> false
    | exception Serde.Archive.Corrupt _ -> true)

(* ---------- end-to-end recovery ---------- *)

let bfs_args = (Gen.Erdos_renyi, 96, 4, 11, 0)

(* The failure-free reference: the plain KaMPIng BFS run on [n_shards]
   physical ranks — shard [s]'s block is rank [s]'s dist array. *)
let bfs_reference ~n_shards =
  let family, global_n, avg_degree, seed, src = bfs_args in
  Tutil.run ~ranks:n_shards (fun comm ->
      let g =
        Gen.generate family ~rank:(Mpisim.Comm.rank comm) ~comm_size:n_shards ~global_n
          ~avg_degree ~seed
      in
      Apps.Bfs_kamping.bfs comm g ~src)

let run_resilient_bfs ?fail_at ?policy ?failure_rate ?max_attempts ~ranks ~n_shards () =
  let family, global_n, avg_degree, seed, src = bfs_args in
  Mpisim.Mpi.run ?fail_at ~ranks (fun comm ->
      Apps.Bfs_resilient.run ?policy ?failure_rate ?max_attempts (K.wrap comm) ~family
        ~n_shards ~global_n ~avg_degree ~seed ~src)

(* Collect the per-shard outputs from the surviving ranks and compare
   them to the reference, shard by shard. *)
let check_against_reference name reference (res : _ Mpisim.Mpi.run_result) ~n_shards =
  let got = Hashtbl.create 16 in
  Array.iter
    (function
      | Ok pairs ->
          List.iter
            (fun (s, arr) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: shard %d reported once" name s)
                false (Hashtbl.mem got s);
              Hashtbl.replace got s arr)
            pairs
      | Error _ -> ())
    res.Mpisim.Mpi.results;
  Alcotest.(check int) (name ^ ": all shards covered") n_shards (Hashtbl.length got);
  for s = 0 to n_shards - 1 do
    Alcotest.(check (array int))
      (Printf.sprintf "%s: shard %d bit-identical" name s)
      reference.(s) (Hashtbl.find got s)
  done

let test_bfs_no_failure_matches_plain () =
  let n_shards = 4 in
  let reference = bfs_reference ~n_shards in
  (* Same rank count as shards, and fewer ranks than shards. *)
  List.iter
    (fun ranks ->
      let res =
        run_resilient_bfs ~ranks ~n_shards ~policy:(S.Every_n 2) ()
      in
      check_against_reference
        (Printf.sprintf "failure-free p=%d" ranks)
        reference res ~n_shards)
    [ 4; 3; 1 ]

(* Kill each rank in turn partway through the run: the survivors must
   reproduce the reference bit for bit whichever buddy pair is hit. *)
let test_bfs_recovers_from_each_single_failure () =
  let n_shards = 4 in
  let reference = bfs_reference ~n_shards in
  let base = run_resilient_bfs ~ranks:4 ~n_shards ~policy:(S.Every_n 1) () in
  let t_total = base.Mpisim.Mpi.sim_time in
  List.iter
    (fun victim ->
      List.iter
        (fun frac ->
          let res =
            run_resilient_bfs ~ranks:4 ~n_shards ~policy:(S.Every_n 1)
              ~fail_at:[ (victim, frac *. t_total) ]
              ()
          in
          let name = Printf.sprintf "victim %d at %.0f%%" victim (frac *. 100.) in
          check_against_reference name reference res ~n_shards;
          (* The victim dies either blocked in an operation ([Rank_died])
             or mid-compute ([Engine.Killed]); every survivor finishes. *)
          Array.iteri
            (fun r slot ->
              match slot with
              | Ok _ when r <> victim -> ()
              | Error (Mpisim.Mpi.Rank_died | Simnet.Engine.Killed) when r = victim -> ()
              | _ -> Alcotest.failf "%s: unexpected outcome at rank %d" name r)
            res.Mpisim.Mpi.results)
        [ 0.3; 0.7 ])
    [ 0; 1; 2; 3 ]

(* Odd communicator size: rank p-1 is its own XOR partner and ships the
   extra copy to rank 0; killing either end of that arrangement must
   still recover. *)
let test_bfs_recovers_odd_size () =
  let n_shards = 5 in
  let reference = bfs_reference ~n_shards in
  let base = run_resilient_bfs ~ranks:5 ~n_shards ~policy:(S.Every_n 1) () in
  let t_total = base.Mpisim.Mpi.sim_time in
  List.iter
    (fun victim ->
      let res =
        run_resilient_bfs ~ranks:5 ~n_shards ~policy:(S.Every_n 1)
          ~fail_at:[ (victim, 0.5 *. t_total) ]
          ()
      in
      check_against_reference
        (Printf.sprintf "odd size victim %d" victim)
        reference res ~n_shards)
    [ 0; 4; 2 ]

(* Daly scheduling with an uneven shard distribution (p does not divide
   n_shards, so per-rank snapshot sizes differ).  The schedule must be
   resolved from the allreduce-agreed maximum snapshot size: a locally
   derived Daly period diverges between ranks, desynchronizing the
   collective checkpoint calls into a deadlock (regression for the
   schedule-resolution fix).  Swept across failure rates so the period
   lands in several rounding regimes, failure-free and with a mid-run
   kill. *)
let test_bfs_daly_uneven_shards () =
  let n_shards = 8 in
  let ranks = 6 in
  let reference = bfs_reference ~n_shards in
  List.iter
    (fun failure_rate ->
      let res =
        run_resilient_bfs ~ranks ~n_shards ~policy:S.Daly ~failure_rate ()
      in
      check_against_reference
        (Printf.sprintf "daly uneven failure-free rate=%g" failure_rate)
        reference res ~n_shards)
    [ 1e3; 1e4; 1e5; 1e6 ];
  let base = run_resilient_bfs ~ranks ~n_shards ~policy:S.Daly ~failure_rate:1e4 () in
  let t = base.Mpisim.Mpi.sim_time in
  List.iter
    (fun victim ->
      let res =
        run_resilient_bfs ~ranks ~n_shards ~policy:S.Daly ~failure_rate:1e4
          ~fail_at:[ (victim, 0.5 *. t) ]
          ()
      in
      check_against_reference
        (Printf.sprintf "daly uneven victim %d" victim)
        reference res ~n_shards)
    [ 0; 5 ]

(* Two failures in sequence (separated enough for a recovery in
   between): survivors keep shrinking and still finish. *)
let test_bfs_recovers_twice () =
  let n_shards = 4 in
  let reference = bfs_reference ~n_shards in
  let base = run_resilient_bfs ~ranks:4 ~n_shards ~policy:(S.Every_n 1) () in
  let t = base.Mpisim.Mpi.sim_time in
  let res =
    run_resilient_bfs ~ranks:4 ~n_shards ~policy:(S.Every_n 1)
      ~fail_at:[ (1, 0.25 *. t); (2, 2.0 *. t) ]
      ()
  in
  check_against_reference "two failures" reference res ~n_shards

let test_attempts_exhausted () =
  let n_shards = 4 in
  let base = run_resilient_bfs ~ranks:4 ~n_shards ~policy:(S.Every_n 1) () in
  let t = base.Mpisim.Mpi.sim_time in
  let res =
    run_resilient_bfs ~ranks:4 ~n_shards ~policy:(S.Every_n 1) ~max_attempts:1
      ~fail_at:[ (3, 0.5 *. t) ]
      ()
  in
  let exhausted =
    Array.exists
      (function Error (Ckpt.Attempts_exhausted { attempts = 1 }) -> true | _ -> false)
      res.Mpisim.Mpi.results
  in
  Alcotest.(check bool) "survivors raise Attempts_exhausted" true exhausted

(* Kill a whole buddy pair between two checkpoints: with both copies of
   their shards gone, no complete epoch survives. *)
let test_unrecoverable_buddy_pair () =
  let n_shards = 4 in
  let base = run_resilient_bfs ~ranks:4 ~n_shards ~policy:(S.Every_n 1) () in
  let t = base.Mpisim.Mpi.sim_time in
  let res =
    run_resilient_bfs ~ranks:4 ~n_shards ~policy:(S.Every_n 1)
      ~fail_at:[ (2, 0.5 *. t); (3, 0.5 *. t) ]
      ()
  in
  let unrecoverable =
    Array.exists
      (function Error (Ckpt.Unrecoverable _) -> true | _ -> false)
      res.Mpisim.Mpi.results
  in
  Alcotest.(check bool) "survivors raise Unrecoverable" true unrecoverable

let test_run_resilient_validation () =
  raises_usage "n_shards = 0" (fun () ->
      Tutil.run ~ranks:1 (fun comm ->
          Ckpt.run_resilient ~registry:(R.create ()) ~n_shards:0 (K.wrap comm)
            (fun _ ~restored:_ -> ())));
  raises_usage "max_attempts = 0" (fun () ->
      Tutil.run ~ranks:1 (fun comm ->
          Ckpt.run_resilient ~max_attempts:0 ~registry:(R.create ()) ~n_shards:1
            (K.wrap comm) (fun _ ~restored:_ -> ())))

(* ---------- label propagation ---------- *)

let lp_args = (Gen.Rgg2d, 80, 4, 5, 6, 40)

let lp_reference ~n_shards =
  let family, global_n, avg_degree, seed, iterations, max_cluster_size = lp_args in
  Tutil.run ~ranks:n_shards (fun comm ->
      let g =
        Gen.generate family ~rank:(Mpisim.Comm.rank comm) ~comm_size:n_shards ~global_n
          ~avg_degree ~seed
      in
      Apps.Lp_kamping.run comm g ~iterations ~max_cluster_size)

let run_resilient_lp ?fail_at ?policy ~ranks ~n_shards () =
  let family, global_n, avg_degree, seed, iterations, max_cluster_size = lp_args in
  Mpisim.Mpi.run ?fail_at ~ranks (fun comm ->
      Apps.Lp_resilient.run ?policy (K.wrap comm) ~family ~n_shards ~global_n ~avg_degree
        ~seed ~iterations ~max_cluster_size)

let test_lp_bit_identical () =
  let n_shards = 4 in
  let reference = lp_reference ~n_shards in
  (* Failure-free on fewer ranks than shards. *)
  let clean = run_resilient_lp ~ranks:3 ~n_shards ~policy:(S.Every_n 2) () in
  check_against_reference "lp failure-free p=3" reference clean ~n_shards;
  (* Mid-run failure. *)
  let base = run_resilient_lp ~ranks:4 ~n_shards ~policy:(S.Every_n 1) () in
  let t = base.Mpisim.Mpi.sim_time in
  let res =
    run_resilient_lp ~ranks:4 ~n_shards ~policy:(S.Every_n 1)
      ~fail_at:[ (1, 0.5 *. t) ]
      ()
  in
  check_against_reference "lp recovered" reference res ~n_shards

(* ---------- checker interplay ---------- *)

(* A recovery cycle (buddy sendrecvs cut short by the failure, revoke,
   shrink, agree, redistribution) must be clean at [Communication]
   level: the damaged-comm exclusions swallow the legitimately abandoned
   buddy traffic. *)
let test_recovery_checker_clean () =
  let n_shards = 4 in
  let reference = bfs_reference ~n_shards in
  let base = run_resilient_bfs ~ranks:4 ~n_shards ~policy:(S.Every_n 1) () in
  let t = base.Mpisim.Mpi.sim_time in
  let res =
    Mpisim.Checker.with_level Mpisim.Checker.Communication (fun () ->
        run_resilient_bfs ~ranks:4 ~n_shards ~policy:(S.Every_n 1)
          ~fail_at:[ (2, 0.5 *. t) ]
          ())
  in
  (match res.Mpisim.Mpi.diagnostics with
  | [] -> ()
  | diags ->
      Alcotest.failf "recovery not checker-clean: %s"
        (String.concat "\n" (List.map Mpisim.Checker.to_string diags)));
  check_against_reference "checked recovery" reference res ~n_shards

(* ---------- deterministic failure schedules (mpisim satellite) ---------- *)

let test_fail_at_deterministic () =
  let run () =
    Mpisim.Mpi.run ~ranks:4 ~fail_at:[ (2, 1e-4) ] (fun comm ->
        let kc = K.wrap comm in
        (* Every surviving rank reduces until it observes the failure,
           then revokes (the ULFM recipe) so peers still blocked on it
           abort too instead of deadlocking. *)
        let rec loop acc =
          match K.allreduce_single kc Mpisim.Datatype.int Mpisim.Op.int_sum 1 with
          | n -> loop (acc + n)
          | exception Mpisim.Errors.Process_failed { world_rank } ->
              Kamping_plugins.Ulfm.revoke kc;
              (world_rank, acc)
          | exception Mpisim.Errors.Comm_revoked -> (-1, acc)
        in
        loop 0)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same sim time" true
    (a.Mpisim.Mpi.sim_time = b.Mpisim.Mpi.sim_time);
  Alcotest.(check int) "same event count" a.Mpisim.Mpi.events b.Mpisim.Mpi.events;
  Array.iteri
    (fun r slot ->
      match (slot, b.Mpisim.Mpi.results.(r)) with
      | Ok x, Ok y -> Alcotest.(check bool) "same outcome" true (x = y)
      | Error _, Error _ -> ()
      | _ -> Alcotest.fail "divergent outcomes across identical runs")
    a.Mpisim.Mpi.results;
  let detected =
    Array.exists (function Ok (2, n) -> n > 0 | _ -> false) a.Mpisim.Mpi.results
  in
  Alcotest.(check bool) "some survivor pinpoints rank 2 mid-run" true detected;
  (* Validation happens before anything is armed. *)
  raises_usage "rank out of range" (fun () ->
      Mpisim.Mpi.run ~ranks:2 ~fail_at:[ (5, 1.0) ] (fun _ -> ()));
  raises_usage "nan time" (fun () ->
      Mpisim.Mpi.run ~ranks:2 ~fail_at:[ (0, Float.nan) ] (fun _ -> ()))

let suite =
  [
    Alcotest.test_case "schedule: young/daly formulas" `Quick test_young_daly_formulas;
    Alcotest.test_case "schedule: every_n policy" `Quick test_schedule_every_n;
    Alcotest.test_case "schedule: time-based policies" `Quick test_schedule_time_based;
    Alcotest.test_case "schedule: validation" `Quick test_schedule_validation;
    Alcotest.test_case "schedule: LogGP cost prediction" `Quick test_predict_ckpt_cost;
    Alcotest.test_case "registry: round-trip" `Quick test_registry_roundtrip;
    Alcotest.test_case "registry: rejects bad input" `Quick test_registry_rejects;
    Alcotest.test_case "bfs: failure-free matches plain" `Quick
      test_bfs_no_failure_matches_plain;
    Alcotest.test_case "bfs: recovers from each single failure" `Quick
      test_bfs_recovers_from_each_single_failure;
    Alcotest.test_case "bfs: recovers at odd size" `Quick test_bfs_recovers_odd_size;
    Alcotest.test_case "bfs: daly with uneven shards" `Quick test_bfs_daly_uneven_shards;
    Alcotest.test_case "bfs: recovers twice" `Quick test_bfs_recovers_twice;
    Alcotest.test_case "attempts exhausted" `Quick test_attempts_exhausted;
    Alcotest.test_case "unrecoverable buddy-pair loss" `Quick
      test_unrecoverable_buddy_pair;
    Alcotest.test_case "run_resilient validation" `Quick test_run_resilient_validation;
    Alcotest.test_case "lp: bit-identical with and without failure" `Quick
      test_lp_bit_identical;
    Alcotest.test_case "recovery is checker-clean" `Quick test_recovery_checker_clean;
    Alcotest.test_case "fail_at: deterministic schedule" `Quick test_fail_at_deterministic;
  ]
