(* Tests for the discrete-event engine, priority queue, RNG and network
   model. *)

open Simnet

let test_pqueue_order () =
  let q = Pqueue.create () in
  (* owner doubles as the payload identity in the monomorphic queue *)
  Pqueue.push q ~time:2.0 ~seq:1 ~owner:1 (fun () -> ());
  Pqueue.push q ~time:1.0 ~seq:2 ~owner:2 (fun () -> ());
  Pqueue.push q ~time:2.0 ~seq:0 ~owner:3 (fun () -> ());
  let pop () = match Pqueue.pop_min q with Some (_, _, o, _) -> o | None -> -1 in
  let x1 = pop () in
  let x2 = pop () in
  let x3 = pop () in
  let x4 = pop () in
  Alcotest.(check (list int)) "ordering" [ 2; 3; 1; -1 ] [ x1; x2; x3; x4 ]

let prop_pqueue_sorted =
  Tutil.qtest "pqueue pops sorted" QCheck2.Gen.(list (pair (float_bound_exclusive 100.0) nat))
    (fun entries ->
      let q = Pqueue.create () in
      List.iteri (fun i (t, _) -> Pqueue.push q ~time:t ~seq:i ~owner:(i land 0xFFFF) (fun () -> ())) entries;
      let rec drain acc =
        match Pqueue.pop_min q with
        | Some (t, s, _, _) -> drain ((t, s) :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      List.sort compare popped = popped)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  let xs = List.init 10 (fun _ -> Rng.int64 a) in
  let ys = List.init 10 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "same stream" true (xs = ys);
  let c = Rng.split (Rng.create 42L) 1 and d = Rng.split (Rng.create 42L) 2 in
  Alcotest.(check bool) "split streams differ" true (Rng.int64 c <> Rng.int64 d)

let test_rng_ranges () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 10);
    let f = Rng.float r in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_engine_delay_order () =
  let e = Engine.create () in
  let log = ref [] in
  let _ =
    Engine.spawn e ~label:"a" (fun () ->
        Engine.delay e 2.0;
        log := "a2" :: !log)
  in
  let _ =
    Engine.spawn e ~label:"b" (fun () ->
        Engine.delay e 1.0;
        log := "b1" :: !log;
        Engine.delay e 2.0;
        log := "b3" :: !log)
  in
  Engine.run e;
  Alcotest.(check (list string)) "event order" [ "b1"; "a2"; "b3" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 3.0 (Engine.now e)

let test_engine_suspend_resume () =
  let e = Engine.create () in
  let slot = ref None in
  let got = ref 0 in
  let _ =
    Engine.spawn e (fun () ->
        let v = Engine.suspend e (fun r -> slot := Some r) in
        got := v)
  in
  Engine.schedule e ~delay:5.0 (fun () ->
      match !slot with Some r -> Engine.resume r 42 | None -> Alcotest.fail "not parked");
  Engine.run e;
  Alcotest.(check int) "resumed value" 42 !got;
  Alcotest.(check (float 1e-9)) "resumed at" 5.0 (Engine.now e)

let test_engine_fail_resumer () =
  let e = Engine.create () in
  let caught = ref false in
  let slot = ref None in
  let _ =
    Engine.spawn e (fun () ->
        match Engine.suspend e (fun r -> slot := Some r) with
        | (_ : int) -> ()
        | exception Not_found -> caught := true)
  in
  Engine.schedule e ~delay:1.0 (fun () -> Engine.fail (Option.get !slot) Not_found);
  Engine.run e;
  Alcotest.(check bool) "exception delivered at suspension point" true !caught

let test_engine_deadlock_detection () =
  let e = Engine.create () in
  let _ = Engine.spawn e ~label:"stuck" (fun () -> ignore (Engine.suspend e (fun _ -> ()))) in
  (match Engine.run e with
  | () -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock fibers ->
      Alcotest.(check int) "one parked fiber" 1 (List.length fibers);
      Alcotest.(check bool) "label reported" true
        (String.length (List.hd fibers) > 0 && String.sub (List.hd fibers) 0 5 = "stuck"))

let test_engine_kill () =
  let e = Engine.create () in
  let reached = ref false in
  let fiber =
    Engine.spawn e (fun () ->
        Engine.delay e 10.0;
        reached := true)
  in
  Engine.schedule e ~delay:1.0 (fun () -> Engine.kill e fiber);
  Engine.run e;
  Alcotest.(check bool) "killed before resumption" false !reached;
  Alcotest.(check bool) "not alive" false (Engine.alive fiber)

let test_engine_one_shot_resumer () =
  let e = Engine.create () in
  let slot = ref None in
  let count = ref 0 in
  let _ =
    Engine.spawn e (fun () ->
        let (_ : int) = Engine.suspend e (fun r -> slot := Some r) in
        incr count)
  in
  Engine.schedule e ~delay:1.0 (fun () ->
      let r = Option.get !slot in
      Engine.resume r 1;
      Engine.resume r 2 (* second resume must be ignored *));
  Engine.run e;
  Alcotest.(check int) "resumed exactly once" 1 !count

let test_netmodel_latency_bandwidth () =
  let p = Netmodel.default in
  let t = Netmodel.create p ~ranks:2 in
  let injected, arrival = Netmodel.transfer t ~now:0.0 ~src:0 ~dst:1 ~bytes:0 ~pack_factor:1.0 in
  Alcotest.(check bool) "zero-byte message costs latency" true
    (arrival >= p.latency && arrival < p.latency +. 2e-6);
  Alcotest.(check bool) "injection before arrival" true (injected < arrival);
  let _, arrival_big =
    Netmodel.transfer (Netmodel.create p ~ranks:2) ~now:0.0 ~src:0 ~dst:1 ~bytes:1_000_000
      ~pack_factor:1.0
  in
  Alcotest.(check bool) "1MB dominated by bandwidth" true
    (arrival_big > 0.9 *. (1_000_000.0 *. p.byte_time))

let test_netmodel_port_serialization () =
  let p = Netmodel.default in
  let t = Netmodel.create p ~ranks:3 in
  let _, a1 = Netmodel.transfer t ~now:0.0 ~src:0 ~dst:1 ~bytes:100_000 ~pack_factor:1.0 in
  let _, a2 = Netmodel.transfer t ~now:0.0 ~src:0 ~dst:2 ~bytes:100_000 ~pack_factor:1.0 in
  Alcotest.(check bool) "second message waits for the sender port" true (a2 > a1);
  (* two different senders to different receivers do not serialize *)
  let t2 = Netmodel.create p ~ranks:4 in
  let _, b1 = Netmodel.transfer t2 ~now:0.0 ~src:0 ~dst:1 ~bytes:100_000 ~pack_factor:1.0 in
  let _, b2 = Netmodel.transfer t2 ~now:0.0 ~src:2 ~dst:3 ~bytes:100_000 ~pack_factor:1.0 in
  Alcotest.(check (float 1e-12)) "parallel links" b1 b2

let test_netmodel_pack_factor () =
  let p = Netmodel.default in
  let t = Netmodel.create p ~ranks:2 in
  let _, a = Netmodel.transfer t ~now:0.0 ~src:0 ~dst:1 ~bytes:100_000 ~pack_factor:1.0 in
  let t2 = Netmodel.create p ~ranks:2 in
  let _, b = Netmodel.transfer t2 ~now:0.0 ~src:0 ~dst:1 ~bytes:100_000 ~pack_factor:2.0 in
  Alcotest.(check bool) "pack factor slows transfer" true (b > a)

let test_netmodel_self_message () =
  let p = Netmodel.default in
  let t = Netmodel.create p ~ranks:2 in
  let _, a = Netmodel.transfer t ~now:0.0 ~src:0 ~dst:0 ~bytes:1000 ~pack_factor:1.0 in
  Alcotest.(check bool) "self message cheaper than latency" true (a < p.latency)

let suite =
  [
    Alcotest.test_case "pqueue order with seq tie-break" `Quick test_pqueue_order;
    prop_pqueue_sorted;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
    Alcotest.test_case "engine delay ordering" `Quick test_engine_delay_order;
    Alcotest.test_case "engine suspend/resume" `Quick test_engine_suspend_resume;
    Alcotest.test_case "engine failing resumer" `Quick test_engine_fail_resumer;
    Alcotest.test_case "engine deadlock detection" `Quick test_engine_deadlock_detection;
    Alcotest.test_case "engine kill" `Quick test_engine_kill;
    Alcotest.test_case "engine one-shot resumer" `Quick test_engine_one_shot_resumer;
    Alcotest.test_case "netmodel latency/bandwidth" `Quick test_netmodel_latency_bandwidth;
    Alcotest.test_case "netmodel port serialization" `Quick test_netmodel_port_serialization;
    Alcotest.test_case "netmodel pack factor" `Quick test_netmodel_pack_factor;
    Alcotest.test_case "netmodel self message" `Quick test_netmodel_self_message;
  ]
