(* The MPI-4 surface (PR 8): persistent and partitioned requests,
   sessions, and 64-bit counts.

   Pillars:
   - persistent handles validate once at [*_init] and reuse one pooled
     envelope across rounds — restarting a handle with refilled buffers
     delivers the fresh contents every round;
   - partitioned transfers complete per partition, in any release order;
   - sessions derive communicators from named process sets without
     touching world state — same name shares, different names isolate;
   - counts beyond 2^31 round-trip through the sparse representation,
     the split/join encoding, and the kamping serialization helpers,
     with explicit overflow/truncation diagnostics instead of silent
     wraparound;
   - tracing persistent ops stays a pure observer, and late-sender time
     attributes to the Start/Wait of the round, never the init. *)

module C = Mpisim.Collectives
module Ck = Mpisim.Checker
module Comm = Mpisim.Comm
module D = Mpisim.Datatype
module Errors = Mpisim.Errors
module K = Kamping.Comm
module Mpi = Mpisim.Mpi
module P = Mpisim.P2p
module Persist = Mpisim.Persist
module Pool = Kamping.Request_pool
module Req = Mpisim.Request
module V = Ds.Vec

let ranks = 4
let rounds = 5

(* ------------------------------------------------------------------ *)
(* Persistent point-to-point                                           *)
(* ------------------------------------------------------------------ *)

(* A ring where every rank reuses ONE send and ONE recv handle across
   [rounds] rounds, refilling the pinned envelope each time.  The
   received value must track the refill — proof the restart reuses the
   buffer identity, not a stale snapshot. *)
let test_ring_restart () =
  let per_rank =
    Tutil.run_checked ~ranks (fun comm ->
        let r = Comm.rank comm and p = Comm.size comm in
        let right = (r + 1) mod p and left = (r + p - 1) mod p in
        let sbuf = [| 0 |] and rbuf = [| 0 |] in
        let sh = P.send_init comm D.int sbuf ~dst:right ~tag:3 in
        let rh = P.recv_init comm D.int rbuf ~src:left ~tag:3 in
        let got = Array.make rounds 0 in
        for round = 0 to rounds - 1 do
          sbuf.(0) <- (100 * round) + r;
          Persist.startall [ sh; rh ];
          ignore (Persist.wait sh);
          let st = Persist.wait rh in
          Alcotest.(check int) "status source" left st.Req.source;
          Alcotest.(check int) "status count" 1 st.Req.count;
          got.(round) <- rbuf.(0)
        done;
        Alcotest.(check int) "send rounds counted" rounds (Persist.starts sh);
        Alcotest.(check bool) "inactive between rounds" false (Persist.is_active sh);
        (* waiting on an inactive handle is the MPI-4 no-op *)
        Alcotest.(check bool) "inactive wait = empty status" true
          (Persist.wait sh = Req.empty_status);
        Persist.free sh;
        Persist.free rh;
        Alcotest.(check bool) "freed is terminal" true (Persist.is_freed sh);
        got)
  in
  Array.iteri
    (fun r got ->
      let left = (r + ranks - 1) mod ranks in
      Array.iteri
        (fun round v ->
          Alcotest.(check int)
            (Printf.sprintf "rank %d round %d" r round)
            ((100 * round) + left)
            v)
        got)
    per_rank

(* Lifecycle misuse is rejected exactly as the state machine promises. *)
let test_lifecycle_errors () =
  ignore
    (Tutil.run_checked ~ranks:2 (fun comm ->
         let r = Comm.rank comm in
         if r = 0 then begin
           let h = P.send_init comm D.int [| 7 |] ~dst:1 ~tag:0 in
           Persist.start h;
           Alcotest.(check bool) "double start rejected" true
             (match Persist.start h with
             | () -> false
             | exception Errors.Usage_error _ -> true);
           Alcotest.(check bool) "free while active rejected" true
             (match Persist.free h with
             | () -> false
             | exception Errors.Usage_error _ -> true);
           ignore (Persist.wait h);
           Persist.free h;
           Alcotest.(check bool) "start after free rejected" true
             (match Persist.start h with
             | () -> false
             | exception Errors.Usage_error _ -> true)
         end
         else ignore (P.recv comm D.int [| 0 |] ~src:0 ~tag:0)))

(* The kamping named-parameter surface over a request pool: register the
   handles once, then start_all/wait_all per round; free_all retires the
   whole set. *)
let test_kamping_pool_surface () =
  let per_rank =
    Tutil.run_checked ~ranks (fun comm ->
        let kc = K.wrap comm in
        let r = K.rank kc and p = K.size kc in
        let right = (r + 1) mod p and left = (r + p - 1) mod p in
        let send_buf = V.make 2 0 in
        let pool = Pool.create () in
        Pool.request_init pool (K.send_init kc D.int ~send_buf ~dst:right ~tag:1);
        let rh, recv_buf = K.recv_init ~count:2 kc D.int ~src:left ~tag:1 in
        Pool.request_init pool rh;
        Alcotest.(check int) "pool tracks both handles" 2 (Pool.persistent_count pool);
        let sums = Array.make rounds 0 in
        for round = 0 to rounds - 1 do
          V.set send_buf 0 round;
          V.set send_buf 1 r;
          Pool.start_all pool;
          Pool.wait_all pool;
          Alcotest.(check bool) "idle pool tests complete" true (Pool.test_all pool);
          sums.(round) <- V.get recv_buf 0 + V.get recv_buf 1
        done;
        Pool.free_all pool;
        Alcotest.(check int) "free_all empties the pool" 0 (Pool.persistent_count pool);
        sums)
  in
  Array.iteri
    (fun r sums ->
      let left = (r + ranks - 1) mod ranks in
      Array.iteri
        (fun round s ->
          Alcotest.(check int) (Printf.sprintf "rank %d round %d sum" r round) (round + left) s)
        sums)
    per_rank

(* A freed handle may not be re-registered. *)
let test_pool_rejects_freed () =
  ignore
    (Tutil.run_checked ~ranks:1 (fun comm ->
         let h = C.bcast_init comm D.int [| 0 |] ~root:0 in
         Persist.free h;
         let pool = Pool.create () in
         Alcotest.(check bool) "request_init on freed handle rejected" true
           (match Pool.request_init pool h with
           | () -> false
           | exception Errors.Usage_error _ -> true)))

(* ------------------------------------------------------------------ *)
(* Persistent collectives                                              *)
(* ------------------------------------------------------------------ *)

let test_bcast_init_rounds () =
  let per_rank =
    Tutil.run_checked ~ranks (fun comm ->
        let r = Comm.rank comm in
        let buf = [| 0 |] in
        let h = C.bcast_init comm D.int buf ~root:0 in
        let got = Array.make rounds 0 in
        for round = 0 to rounds - 1 do
          buf.(0) <- (if r = 0 then 1000 + round else -1);
          Persist.start h;
          ignore (Persist.wait h);
          got.(round) <- buf.(0)
        done;
        Persist.free h;
        got)
  in
  Array.iteri
    (fun r got ->
      Array.iteri
        (fun round v ->
          Alcotest.(check int) (Printf.sprintf "rank %d round %d bcast" r round) (1000 + round) v)
        got)
    per_rank

(* ------------------------------------------------------------------ *)
(* Partitioned communication                                           *)
(* ------------------------------------------------------------------ *)

(* Partitions released in REVERSE order still land, [parrived] reports
   per-partition completion, and the same handles carry several rounds. *)
let test_partitioned_reverse_release () =
  let parts = 4 and per = 3 in
  let per_rank =
    Tutil.run_checked ~ranks:2 (fun comm ->
        let r = Comm.rank comm in
        let n = parts * per in
        if r = 0 then begin
          let buf = Array.make n 0 in
          let h = P.psend_init comm D.int buf ~partitions:parts ~count:per ~dst:1 ~tag:2 in
          for round = 0 to 1 do
            Array.iteri (fun i _ -> buf.(i) <- (round * 1000) + i) buf;
            Persist.start h;
            for i = parts - 1 downto 0 do
              Persist.pready h i
            done;
            ignore (Persist.wait h)
          done;
          Persist.free h;
          [||]
        end
        else begin
          let buf = Array.make n (-1) in
          let h = P.precv_init comm D.int buf ~partitions:parts ~count:per ~src:0 ~tag:2 in
          let out = Array.make (2 * n) 0 in
          for round = 0 to 1 do
            Persist.start h;
            ignore (Persist.wait h);
            for i = 0 to parts - 1 do
              Alcotest.(check bool)
                (Printf.sprintf "partition %d arrived" i)
                true (Persist.parrived h i)
            done;
            Array.blit buf 0 out (round * n) n
          done;
          Persist.free h;
          out
        end)
  in
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "recv elt %d" i) ((i / 12 * 1000) + (i mod 12)) v)
    per_rank.(1)

let test_partitioned_usage_errors () =
  ignore
    (Tutil.run_checked ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then begin
           (* a wildcard source is not allowed on partitioned receives *)
           Alcotest.(check bool) "precv_init rejects any_source" true
             (match
                P.precv_init comm D.int (Array.make 4 0) ~partitions:2 ~count:2
                  ~src:P.any_source ~tag:0
              with
             | (_ : Persist.t) -> false
             | exception Errors.Usage_error _ -> true);
           (* pready on a plain persistent send is not partitioned *)
           let h = P.send_init comm D.int [| 0 |] ~dst:1 ~tag:9 in
           Persist.start h;
           Alcotest.(check bool) "pready outside partitioned op rejected" true
             (match Persist.pready h 0 with
             | () -> false
             | exception Errors.Usage_error _ -> true);
           ignore (Persist.wait h);
           Persist.free h
         end
         else ignore (P.recv comm D.int [| 0 |] ~src:0 ~tag:9)))

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

let test_session_isolation () =
  ignore
    (Tutil.run_checked ~ranks (fun comm ->
        let kc = K.wrap comm in
        let serving = K.session ~name:"serving" kc in
        let ckpt = K.session ~name:"ckpt" kc in
        let serving2 = K.session ~name:"serving" kc in
        (* same session name memoizes the communicator; different names
           get distinct shared state over the same process set *)
        let a = Mpisim.Session.comm_of_pset serving "mpi://world" in
        let a' = Mpisim.Session.comm_of_pset serving2 "mpi://world" in
        let b = Mpisim.Session.comm_of_pset ckpt "mpi://world" in
        Alcotest.(check int) "same name, same comm" (Comm.id a) (Comm.id a');
        Alcotest.(check bool) "different names, distinct comms" true (Comm.id a <> Comm.id b);
        Alcotest.(check int) "derived size is the set size" ranks (Comm.size a);
        Alcotest.(check int) "derived rank is the caller's" (K.rank kc) (Comm.rank a);
        (* mpi://self is the singleton set *)
        let self = Mpisim.Session.comm_of_pset serving "mpi://self" in
        Alcotest.(check int) "self size" 1 (Comm.size self);
        Alcotest.(check int) "self rank" 0 (Comm.rank self);
        (* registration is idempotent for identical membership, an error
           for conflicting membership *)
        Mpisim.Session.register_pset serving "app://even" [| 0; 2 |];
        Mpisim.Session.register_pset serving "app://even" [| 0; 2 |];
        Alcotest.(check bool) "conflicting re-registration rejected" true
          (match Mpisim.Session.register_pset serving "app://even" [| 1; 3 |] with
          | () -> false
          | exception Errors.Usage_error _ -> true);
        (* the sessions' comms actually carry traffic independently: the
           same collective, in opposite creation order per library, still
           matches within each session *)
        let ka = K.wrap a and kb = K.wrap b in
        let sa = K.allreduce ka D.int Mpisim.Op.int_sum ~send_buf:(V.make 1 1) in
        let sb = K.allreduce kb D.int Mpisim.Op.int_sum ~send_buf:(V.make 1 2) in
        Alcotest.(check int) "serving-session allreduce" ranks (V.get sa 0);
        Alcotest.(check int) "ckpt-session allreduce" (2 * ranks) (V.get sb 0);
        (* members-only subset comm over a registered pset *)
        if K.rank kc mod 2 = 0 then begin
          let even = K.comm_of_pset serving "app://even" in
          Alcotest.(check int) "pset comm size" 2 (K.size even);
          let s = K.allreduce even D.int Mpisim.Op.int_sum ~send_buf:(V.make 1 1) in
          Alcotest.(check int) "pset allreduce" 2 (V.get s 0)
        end
        else
          Alcotest.(check bool) "non-member derivation rejected" true
            (match Mpisim.Session.comm_of_pset serving "app://even" with
            | (_ : Comm.t) -> false
            | exception Errors.Usage_error _ -> true)))

(* ------------------------------------------------------------------ *)
(* 64-bit counts                                                       *)
(* ------------------------------------------------------------------ *)

let huge_count_gen =
  (* counts well past 2^31, the range real MPI_Count exists for *)
  QCheck2.Gen.(map2 (fun hi lo -> (hi lsl 31) lor lo) (int_range 0 0xFFFF) (int_bound D.max_small_count))

let test_split_join_roundtrip =
  Tutil.qtest "split_count/join_count round-trip" huge_count_gen (fun c ->
      let hi, lo = D.split_count c in
      hi >= 0 && hi <= D.max_small_count && lo >= 0 && lo <= D.max_small_count
      && D.join_count ~hi ~lo = c)

let test_serialization_count_roundtrip =
  Tutil.qtest "kamping encode_count/decode_count round-trip" huge_count_gen (fun c ->
      Kamping.Serialization.decode_count (Kamping.Serialization.encode_count c) = c)

(* Sparse transfers carry counts > 2^31 end-to-end: the status reports
   the 64-bit count exactly, with no buffer allocated anywhere. *)
let test_sparse_huge_count () =
  let big = (3 * (D.max_small_count + 1)) + 17 in
  ignore
    (Tutil.run_checked ~ranks:2 (fun comm ->
         if Comm.rank comm = 0 then P.send_sparse comm D.int ~count:big ~dst:1 ~tag:4
         else begin
           let st = P.recv_sparse comm D.int ~capacity:(big + 1) ~src:0 ~tag:4 in
           Alcotest.(check bool) "64-bit count preserved" true (st.Req.count = big)
         end))

(* A 2^32-element message into a 2^31-capacity sparse receive is the
   canonical silent-wraparound bug; it must be a loud truncation. *)
let test_sparse_truncation_diagnostic () =
  let big = 2 * (D.max_small_count + 1) in
  let res =
    Ck.with_level Ck.Communication (fun () ->
        Mpi.run ~ranks:2 (fun comm ->
            if Comm.rank comm = 0 then P.send_sparse comm D.int ~count:big ~dst:1 ~tag:4
            else ignore (P.recv_sparse comm D.int ~capacity:D.max_small_count ~src:0 ~tag:4)))
  in
  Alcotest.(check bool) "rank 1 sees Truncated with exact 64-bit counts" true
    (match res.Mpi.results.(1) with
    | Error (Errors.Truncated { sent; capacity }) ->
        sent = big && capacity = D.max_small_count
    | _ -> false)

let test_count_overflow_diagnostics () =
  (* byte sizing refuses to wrap: count * extent past the host range *)
  Alcotest.(check bool) "Datatype.bytes overflows loudly" true
    (match D.bytes D.int max_int with
    | (_ : int) -> false
    | exception Errors.Count_overflow { count; extent = _ } -> count = max_int);
  Alcotest.(check bool) "negative count rejected" true
    (match D.split_count (-1) with
    | (_ : int * int) -> false
    | exception Errors.Count_overflow _ -> true);
  (* flatten's total refuses to overflow too *)
  let flat = { Kamping.Flatten.data = V.create (); send_counts = [| max_int; 1 |] } in
  Alcotest.(check bool) "Flatten.total_count overflows loudly" true
    (match Kamping.Flatten.total_count flat with
    | (_ : int) -> false
    | exception Errors.Count_overflow _ -> true);
  let ok = { Kamping.Flatten.data = V.create (); send_counts = [| 3; 0; 4 |] } in
  Alcotest.(check int) "total_count sums" 7 (Kamping.Flatten.total_count ok)

(* ------------------------------------------------------------------ *)
(* Tracing: attribution and pure observation                           *)
(* ------------------------------------------------------------------ *)

(* Rank 0 computes 300us before starting its persistent send; rank 1
   starts its persistent recv at t=0 and waits.  The late-sender wait
   must charge rank 1 inside MPI_Wait — the round's blocking call —
   never inside MPI_Recv_init, which ran long before the delay. *)
let test_late_sender_charged_to_wait () =
  let res =
    Mpi.run ~trace:true ~ranks:2 (fun comm ->
        let r = Comm.rank comm in
        if r = 0 then begin
          let h = P.send_init comm D.int [| 42 |] ~dst:1 ~tag:6 in
          Comm.compute comm 300e-6;
          Persist.start h;
          ignore (Persist.wait h);
          Persist.free h
        end
        else begin
          let h = P.recv_init comm D.int [| 0 |] ~src:0 ~tag:6 in
          Persist.start h;
          ignore (Persist.wait h);
          Persist.free h
        end)
  in
  ignore (Mpi.results_exn res);
  let data = Option.get res.Mpi.trace in
  let ops = List.map (fun (s : Trace.Event.span) -> s.Trace.Event.sp_op) data.Trace.Event.spans in
  List.iter
    (fun op ->
      Alcotest.(check bool) (op ^ " span present") true (List.mem op ops))
    [ "MPI_Send_init"; "MPI_Recv_init"; "MPI_Start"; "MPI_Wait" ];
  let report = Trace.Analysis.analyze data in
  let late =
    List.filter
      (fun (ws : Trace.Analysis.wait_state) -> ws.Trace.Analysis.ws_class = Trace.Analysis.Late_sender)
      report.Trace.Analysis.wait_states
  in
  Alcotest.(check bool) "a late-sender wait was found" true (late <> []);
  List.iter
    (fun (ws : Trace.Analysis.wait_state) ->
      Alcotest.(check int) "charged to the receiver" 1 ws.Trace.Analysis.ws_rank;
      Alcotest.(check string) "attributed to the round's wait" "MPI_Wait"
        ws.Trace.Analysis.ws_op)
    late

(* Tracing a persistent/partitioned workload must not perturb it: same
   simulated time, event count and profile with the recorder off and on. *)
let test_persistent_trace_pure_observer () =
  let workload comm =
    let r = Comm.rank comm and p = Comm.size comm in
    let right = (r + 1) mod p and left = (r + p - 1) mod p in
    let sh = P.send_init comm D.int [| r |] ~dst:right ~tag:7 in
    let rh = P.recv_init comm D.int [| 0 |] ~src:left ~tag:7 in
    for _ = 1 to 3 do
      Persist.startall [ sh; rh ];
      ignore (Persist.wait sh);
      ignore (Persist.wait rh)
    done;
    Persist.free sh;
    Persist.free rh
  in
  let off = Mpi.run ~ranks workload in
  let on = Mpi.run ~trace:true ~ranks workload in
  ignore (Mpi.results_exn off);
  ignore (Mpi.results_exn on);
  Alcotest.(check bool) "trace captured" true (on.Mpi.trace <> None);
  Alcotest.check (Alcotest.float 0.0) "sim time" off.Mpi.sim_time on.Mpi.sim_time;
  Alcotest.(check int) "events" off.Mpi.events on.Mpi.events;
  Alcotest.(check (list (pair string int)))
    "profile" off.Mpi.profile.Mpisim.Profiling.calls on.Mpi.profile.Mpisim.Profiling.calls

(* ------------------------------------------------------------------ *)
(* The serving engine on persistent channels                           *)
(* ------------------------------------------------------------------ *)

(* Swapping the aggregator transport must be invisible to the store: the
   persistent run matches the host oracle, hence the ephemeral run. *)
let test_serve_persistent_digest () =
  let cfg =
    {
      Serve.default with
      Serve.n_keys = 64;
      n_shards = 8;
      rate = 5e4;
      duration = 1e-3;
      epoch = 0.25e-3;
      batch_threshold = 8;
      persistent = true;
      seed = 7;
    }
  in
  let r =
    Tutil.check_clean "serve on persistent channels" (fun () -> Serve.run ~ranks:4 cfg)
  in
  Alcotest.(check int) "store matches oracle" (Serve.expected_store_digest cfg)
    r.Serve.store_digest;
  Alcotest.(check int) "every request completed" r.Serve.issued r.Serve.completed;
  let eph = { cfg with Serve.persistent = false } in
  let re = Tutil.check_clean "serve ephemeral reference" (fun () -> Serve.run ~ranks:4 eph) in
  Alcotest.(check int) "transports agree on the store" re.Serve.store_digest r.Serve.store_digest

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "persistent ring: restart reuses refilled envelope" `Quick
      test_ring_restart;
    Alcotest.test_case "lifecycle misuse rejected" `Quick test_lifecycle_errors;
    Alcotest.test_case "kamping pool surface: init/start_all/wait_all/free_all" `Quick
      test_kamping_pool_surface;
    Alcotest.test_case "pool rejects freed handles" `Quick test_pool_rejects_freed;
    Alcotest.test_case "bcast_init across rounds" `Quick test_bcast_init_rounds;
    Alcotest.test_case "partitioned: reverse pready order, parrived" `Quick
      test_partitioned_reverse_release;
    Alcotest.test_case "partitioned usage errors" `Quick test_partitioned_usage_errors;
    Alcotest.test_case "sessions: memoized, isolated, pset-derived comms" `Quick
      test_session_isolation;
    test_split_join_roundtrip;
    test_serialization_count_roundtrip;
    Alcotest.test_case "sparse transfer beyond 2^31 elements" `Quick test_sparse_huge_count;
    Alcotest.test_case "sparse truncation keeps 64-bit counts exact" `Quick
      test_sparse_truncation_diagnostic;
    Alcotest.test_case "count-overflow diagnostics" `Quick test_count_overflow_diagnostics;
    Alcotest.test_case "late sender charged to Start/Wait, not init" `Quick
      test_late_sender_charged_to_wait;
    Alcotest.test_case "tracing persistent ops is a pure observer" `Quick
      test_persistent_trace_pure_observer;
    Alcotest.test_case "serving store identical on persistent channels" `Quick
      test_serve_persistent_digest;
  ]
