(* Tests for the tuned collective-algorithm subsystem: every pinned variant
   must produce the same (element-wise checked) results as an independent
   reference, the selector must land on the documented crossovers, the
   annotated profiling category must record the choice, and cost-based
   selection must beat the old hardcoded algorithm somewhere. *)

module Algo = Coll_algos.Algo
module Cost = Coll_algos.Cost
module Select = Coll_algos.Select
module Netmodel = Simnet.Netmodel
module C = Mpisim.Collectives
module Comm = Mpisim.Comm
module D = Mpisim.Datatype
module Op = Mpisim.Op
module Profiling = Mpisim.Profiling

let run = Mpisim.Mpi.run_exn

(* The grid deliberately includes p = 1, non-powers of two and count = 0:
   every algorithm must survive its own edge cases. *)
let sizes = [ 1; 2; 3; 4; 5; 8 ]

let counts = [ 0; 1; 5 ]

let check_arrays what expected got =
  Alcotest.(check Tutil.int_array) what expected got

(* ------------- variant equivalence, element-wise ------------- *)

let test_bcast_variants () =
  List.iter
    (fun algo ->
      List.iter
        (fun p ->
          List.iter
            (fun count ->
              let root = min 1 (p - 1) in
              let data = Array.init count (fun i -> 100 + i) in
              let results =
                run ~ranks:p (fun comm ->
                    C.pin_algorithm comm ~coll:"bcast" ~algo;
                    let buf = if Comm.rank comm = root then Array.copy data else Array.make count 0 in
                    C.bcast comm D.int buf ~root;
                    buf)
              in
              Array.iteri
                (fun r got ->
                  check_arrays (Printf.sprintf "bcast[%s] p=%d count=%d rank=%d" algo p count r)
                    data got)
                results)
            counts)
        sizes)
    (List.map Algo.bcast_name Algo.all_bcast)

let test_allreduce_variants () =
  List.iter
    (fun algo ->
      List.iter
        (fun p ->
          List.iter
            (fun count ->
              let expected =
                Array.init count (fun i ->
                    let s = ref 0 in
                    for r = 0 to p - 1 do
                      s := !s + ((r + 1) * (i + 1))
                    done;
                    !s)
              in
              let results =
                run ~ranks:p (fun comm ->
                    C.pin_algorithm comm ~coll:"allreduce" ~algo;
                    let r = Comm.rank comm in
                    let sendbuf = Array.init count (fun i -> (r + 1) * (i + 1)) in
                    let recvbuf = Array.make count 0 in
                    C.allreduce comm D.int Op.int_sum ~sendbuf ~recvbuf ~count;
                    recvbuf)
              in
              Array.iteri
                (fun r got ->
                  check_arrays
                    (Printf.sprintf "allreduce[%s] p=%d count=%d rank=%d" algo p count r)
                    expected got)
                results)
            counts)
        sizes)
    (List.map Algo.allreduce_name Algo.all_allreduce)

(* recursive_doubling is infeasible on non-power-of-two communicators; the
   pin must fall back to a correct algorithm rather than fail. *)
let test_allgather_variants () =
  List.iter
    (fun algo ->
      List.iter
        (fun p ->
          List.iter
            (fun count ->
              let expected =
                Array.init (p * count) (fun j -> ((j / count) * 10) + (j mod count))
              in
              let results =
                run ~ranks:p (fun comm ->
                    C.pin_algorithm comm ~coll:"allgather" ~algo;
                    let r = Comm.rank comm in
                    let sendbuf = Array.init count (fun i -> (r * 10) + i) in
                    let recvbuf = Array.make (p * count) (-1) in
                    C.allgather comm D.int ~sendbuf ~recvbuf ~count;
                    recvbuf)
              in
              Array.iteri
                (fun r got ->
                  check_arrays
                    (Printf.sprintf "allgather[%s] p=%d count=%d rank=%d" algo p count r)
                    expected got)
                results)
            counts)
        sizes)
    (List.map Algo.allgather_name Algo.all_allgather)

let test_allgather_inplace_variants () =
  List.iter
    (fun algo ->
      let p = 4 and count = 3 in
      let expected = Array.init (p * count) (fun j -> ((j / count) * 10) + (j mod count)) in
      let results =
        run ~ranks:p (fun comm ->
            C.pin_algorithm comm ~coll:"allgather" ~algo;
            let r = Comm.rank comm in
            let recvbuf = Array.make (p * count) (-1) in
            for i = 0 to count - 1 do
              recvbuf.((r * count) + i) <- (r * 10) + i
            done;
            C.allgather ~inplace:true comm D.int ~sendbuf:[||] ~recvbuf ~count;
            recvbuf)
      in
      Array.iteri
        (fun r got -> check_arrays (Printf.sprintf "inplace allgather[%s] rank=%d" algo r) expected got)
        results)
    (List.map Algo.allgather_name Algo.all_allgather)

let test_alltoall_variants () =
  List.iter
    (fun algo ->
      List.iter
        (fun p ->
          List.iter
            (fun count ->
              let results =
                run ~ranks:p (fun comm ->
                    C.pin_algorithm comm ~coll:"alltoall" ~algo;
                    let r = Comm.rank comm in
                    let sendbuf =
                      Array.init (p * count) (fun j ->
                          (r * 1000) + ((j / count) * 10) + (j mod count))
                    in
                    let recvbuf = Array.make (p * count) (-1) in
                    C.alltoall comm D.int ~sendbuf ~recvbuf ~count;
                    recvbuf)
              in
              Array.iteri
                (fun r got ->
                  let expected =
                    Array.init (p * count) (fun j ->
                        ((j / count) * 1000) + (r * 10) + (j mod count))
                  in
                  check_arrays
                    (Printf.sprintf "alltoall[%s] p=%d count=%d rank=%d" algo p count r)
                    expected got)
                results)
            counts)
        sizes)
    (List.map Algo.alltoall_name Algo.all_alltoall)

(* ------------- selection engine ------------- *)

let prm = Netmodel.default

let test_selector_crossovers () =
  let sel = Select.create () in
  (* small payloads keep the latency-optimal incumbents *)
  Alcotest.(check string) "small bcast" "binomial"
    (Algo.bcast_name (Select.bcast sel ~cid:0 prm ~p:16 ~bytes:8));
  Alcotest.(check string) "small allgather stays bruck" "bruck"
    (Algo.allgather_name (Select.allgather sel ~cid:0 prm ~p:16 ~bytes:8));
  (* large payloads cross over to bandwidth-optimal algorithms *)
  Alcotest.(check string) "large bcast" "scatter_allgather"
    (Algo.bcast_name (Select.bcast sel ~cid:0 prm ~p:16 ~bytes:(1 lsl 20)));
  Alcotest.(check string) "small allreduce" "recursive_doubling"
    (Algo.allreduce_name
       (Select.allreduce sel ~cid:0 prm ~p:16 ~bytes:8 ~elems:1 ~op_cost:1e-9 ~commutative:true));
  Alcotest.(check string) "large allreduce" "rabenseifner"
    (Algo.allreduce_name
       (Select.allreduce sel ~cid:0 prm ~p:16 ~bytes:(1 lsl 20) ~elems:(1 lsl 17) ~op_cost:1e-9
          ~commutative:true));
  Alcotest.(check string) "non-commutative allreduce" "reduce_bcast"
    (Algo.allreduce_name
       (Select.allreduce sel ~cid:0 prm ~p:16 ~bytes:8 ~elems:1 ~op_cost:1e-9 ~commutative:false));
  Alcotest.(check string) "small alltoall at scale" "bruck"
    (Algo.alltoall_name (Select.alltoall sel ~cid:0 prm ~p:16 ~bytes:8));
  Alcotest.(check string) "large alltoall" "pairwise"
    (Algo.alltoall_name (Select.alltoall sel ~cid:0 prm ~p:16 ~bytes:(1 lsl 16)))

let test_pin_table () =
  let sel = Select.create () in
  Alcotest.(check (option string)) "no pin yet" None (Select.pinned sel ~cid:3 ~coll:"bcast");
  Select.pin sel ~cid:3 ~coll:"bcast" ~algo:"scatter_allgather";
  Alcotest.(check (option string)) "pin visible" (Some "scatter_allgather")
    (Select.pinned sel ~cid:3 ~coll:"bcast");
  Alcotest.(check string) "pin wins over cost" "scatter_allgather"
    (Algo.bcast_name (Select.bcast sel ~cid:3 prm ~p:16 ~bytes:8));
  Alcotest.(check string) "other cid unaffected" "binomial"
    (Algo.bcast_name (Select.bcast sel ~cid:4 prm ~p:16 ~bytes:8));
  Select.unpin sel ~cid:3 ~coll:"bcast";
  Alcotest.(check (option string)) "unpinned" None (Select.pinned sel ~cid:3 ~coll:"bcast");
  Alcotest.check_raises "unknown collective"
    (Invalid_argument
       "Coll_algos.Select.pin: unknown collective \"reduce\" (expected one of bcast, allreduce, \
        allgather, alltoall)") (fun () -> Select.pin sel ~cid:0 ~coll:"reduce" ~algo:"binomial");
  Alcotest.check_raises "unknown algorithm"
    (Invalid_argument "Coll_algos.Select.pin: unknown bcast algorithm \"magic\"") (fun () ->
      Select.pin sel ~cid:0 ~coll:"bcast" ~algo:"magic")

let test_pin_size_table () =
  let sel = Select.create () in
  Select.pin_table sel ~cid:7 ~coll:"bcast" [ (4096, "scatter_allgather"); (0, "binomial") ];
  (* rows are kept sorted; last threshold <= bytes wins *)
  Alcotest.(check (option (list (pair int string)))) "table visible, sorted"
    (Some [ (0, "binomial"); (4096, "scatter_allgather") ])
    (Select.pinned_table sel ~cid:7 ~coll:"bcast");
  Alcotest.(check (option string)) "table is not a fixed pin" None
    (Select.pinned sel ~cid:7 ~coll:"bcast");
  Alcotest.(check string) "below threshold" "binomial"
    (Algo.bcast_name (Select.bcast sel ~cid:7 prm ~p:16 ~bytes:8));
  Alcotest.(check string) "at threshold" "scatter_allgather"
    (Algo.bcast_name (Select.bcast sel ~cid:7 prm ~p:16 ~bytes:4096));
  Alcotest.(check string) "above threshold" "scatter_allgather"
    (Algo.bcast_name (Select.bcast sel ~cid:7 prm ~p:16 ~bytes:(1 lsl 20)));
  (* a table whose first row starts above 0 falls back to cost selection
     for smaller payloads *)
  Select.pin_table sel ~cid:8 ~coll:"bcast" [ (1 lsl 30, "scatter_allgather") ];
  Alcotest.(check string) "unmatched payload uses cost" "binomial"
    (Algo.bcast_name (Select.bcast sel ~cid:8 prm ~p:16 ~bytes:8));
  Select.unpin sel ~cid:7 ~coll:"bcast";
  Alcotest.(check (option (list (pair int string)))) "unpin clears tables" None
    (Select.pinned_table sel ~cid:7 ~coll:"bcast");
  Alcotest.check_raises "empty table"
    (Invalid_argument "Coll_algos.Select.pin_table: empty table") (fun () ->
      Select.pin_table sel ~cid:0 ~coll:"bcast" []);
  Alcotest.check_raises "negative threshold"
    (Invalid_argument "Coll_algos.Select.pin_table: negative size threshold") (fun () ->
      Select.pin_table sel ~cid:0 ~coll:"bcast" [ (-1, "binomial") ]);
  Alcotest.check_raises "unknown algo in table"
    (Invalid_argument "Coll_algos.Select.pin: unknown bcast algorithm \"magic\"") (fun () ->
      Select.pin_table sel ~cid:0 ~coll:"bcast" [ (0, "magic") ])

let test_hier_cost_gating () =
  (* without a topology profile every hierarchical candidate predicts
     infinity — the reason flat worlds can never auto-select one *)
  Alcotest.(check bool) "bcast gated" true
    (Cost.bcast prm ~p:16 ~bytes:4096 Algo.Bcast_node_leader = infinity);
  Alcotest.(check bool) "allreduce gated" true
    (Cost.allreduce prm ~p:16 ~bytes:4096 ~elems:512 ~op_cost:1e-9 Algo.Ar_node_leader = infinity);
  Alcotest.(check bool) "alltoall smp gated" true
    (Cost.alltoall prm ~p:16 ~bytes:4096 Algo.A2a_smp = infinity);
  Alcotest.(check bool) "alltoall hypergrid gated" true
    (Cost.alltoall prm ~p:16 ~bytes:4096 Algo.A2a_hypergrid = infinity);
  let hier =
    {
      Netmodel.h_intra = Netmodel.intra_node;
      h_inter = Netmodel.default;
      h_nodes = 4;
      h_max_per_node = 4;
    }
  in
  List.iter
    (fun (name, cost) -> Alcotest.(check bool) (name ^ " unlocked") true (cost < infinity))
    [
      ("bcast", Cost.bcast ~hier prm ~p:16 ~bytes:4096 Algo.Bcast_node_leader);
      ( "allreduce",
        Cost.allreduce ~hier prm ~p:16 ~bytes:4096 ~elems:512 ~op_cost:1e-9 Algo.Ar_node_leader );
      ("alltoall smp", Cost.alltoall ~hier prm ~p:16 ~bytes:4096 Algo.A2a_smp);
      ("alltoall hypergrid", Cost.alltoall ~hier prm ~p:16 ~bytes:4096 Algo.A2a_hypergrid);
    ];
  (* flat candidates ignore the profile entirely *)
  Alcotest.(check (float 0.0)) "flat cost independent of hier"
    (Cost.bcast prm ~p:16 ~bytes:4096 Algo.Bcast_binomial)
    (Cost.bcast ~hier prm ~p:16 ~bytes:4096 Algo.Bcast_binomial)

let test_hierarchical_params () =
  let node_size = 4 in
  let net =
    Netmodel.create_hierarchical ~inter:Netmodel.default ~intra:Netmodel.intra_node ~node_size
      ~ranks:16
  in
  let one_node = Netmodel.params_for_group net [| 4; 5; 7 |] in
  Alcotest.(check (float 0.0)) "intra-node latency" Netmodel.intra_node.Netmodel.latency
    one_node.Netmodel.latency;
  let spanning = Netmodel.params_for_group net [| 3; 4 |] in
  Alcotest.(check (float 0.0)) "inter-node latency" Netmodel.default.Netmodel.latency
    spanning.Netmodel.latency

(* ------------- profiling annotations ------------- *)

let test_profiling_annotations () =
  let res =
    Mpisim.Mpi.run ~ranks:4 (fun comm ->
        C.pin_algorithm comm ~coll:"allreduce" ~algo:"rabenseifner";
        let sendbuf = [| Comm.rank comm |] and recvbuf = Array.make 1 0 in
        C.allreduce comm D.int Op.int_sum ~sendbuf ~recvbuf ~count:1;
        C.allreduce comm D.int Op.int_sum ~sendbuf ~recvbuf ~count:1)
  in
  let prof = res.Mpisim.Mpi.profile in
  (* the plain MPI name still counts exactly once per call ... *)
  Alcotest.(check int) "plain calls" 8 (Profiling.calls_of "MPI_Allreduce" prof);
  (* ... and the annotated choice lands in the algorithm category *)
  Alcotest.(check int) "annotated calls" 8
    (Profiling.algo_calls_of "MPI_Allreduce[rabenseifner]" prof);
  Alcotest.(check int) "no other annotation" 0
    (Profiling.algo_calls_of "MPI_Allreduce[ring]" prof)

let test_noncommutative_annotation () =
  (* a non-commutative operation must take the reduce+bcast path even though
     recursive doubling would be cheaper *)
  let op = Op.of_fun ~name:"noncomm" ~commutative:false (fun a b -> a + b) in
  let res =
    Mpisim.Mpi.run ~ranks:4 (fun comm ->
        let sendbuf = [| Comm.rank comm + 1 |] and recvbuf = Array.make 1 0 in
        C.allreduce comm D.int op ~sendbuf ~recvbuf ~count:1;
        recvbuf.(0))
  in
  Array.iter (fun (v : (int, exn) result) ->
      Alcotest.(check int) "sum" 10 (Result.get_ok v))
    res.Mpisim.Mpi.results;
  Alcotest.(check int) "forced reduce_bcast" 4
    (Profiling.algo_calls_of "MPI_Allreduce[reduce_bcast]" res.Mpisim.Mpi.profile)

(* ------------- tuning beats the hardcoded choice ------------- *)

let sim_time_of ~pin body =
  let res =
    Mpisim.Mpi.run ~ranks:16 (fun comm ->
        (match pin with
        | Some (coll, algo) -> C.pin_algorithm comm ~coll ~algo
        | None -> ());
        body comm)
  in
  ignore (Mpisim.Mpi.results_exn res);
  res.Mpisim.Mpi.sim_time

let test_tuning_beats_incumbent () =
  (* tiny alltoall on 16 ranks: Bruck (selected) needs 4 startups instead of
     pairwise's 15 *)
  let body comm =
    let p = Comm.size comm in
    let sendbuf = Array.make p (Comm.rank comm) and recvbuf = Array.make p 0 in
    C.alltoall comm D.int ~sendbuf ~recvbuf ~count:1
  in
  let auto = sim_time_of ~pin:None body in
  let incumbent = sim_time_of ~pin:(Some ("alltoall", "pairwise")) body in
  Alcotest.(check bool)
    (Printf.sprintf "auto (%.2e s) beats pairwise (%.2e s)" auto incumbent)
    true (auto < incumbent);
  (* large allreduce: rabenseifner (selected) beats the old reduce+bcast *)
  let body comm =
    let count = 1 lsl 14 in
    let sendbuf = Array.make count (Comm.rank comm) and recvbuf = Array.make count 0 in
    C.allreduce comm D.int Op.int_sum ~sendbuf ~recvbuf ~count
  in
  let auto = sim_time_of ~pin:None body in
  let incumbent = sim_time_of ~pin:(Some ("allreduce", "reduce_bcast")) body in
  Alcotest.(check bool)
    (Printf.sprintf "auto (%.2e s) beats reduce_bcast (%.2e s)" auto incumbent)
    true (auto < incumbent)

(* ------------- cost model sanity ------------- *)

let test_cost_model_matches_simulation () =
  (* the predictor and the simulator implement the same LogGP arithmetic;
     for a pinned binomial bcast they must agree to rounding *)
  let count = 1024 in
  let bytes = D.bytes D.int count in
  let predicted = Cost.bcast prm ~p:8 ~bytes Algo.Bcast_binomial in
  let t =
    let res =
      Mpisim.Mpi.run ~ranks:8 (fun comm ->
          C.pin_algorithm comm ~coll:"bcast" ~algo:"binomial";
          let buf = Array.make count 0 in
          C.bcast comm D.int buf ~root:0)
    in
    ignore (Mpisim.Mpi.results_exn res);
    res.Mpisim.Mpi.sim_time
  in
  Alcotest.(check bool)
    (Printf.sprintf "prediction %.3e within 5%% of simulation %.3e" predicted t)
    true
    (Float.abs (predicted -. t) <= 0.05 *. t)

let suite =
  [
    Alcotest.test_case "bcast variants agree" `Quick test_bcast_variants;
    Alcotest.test_case "allreduce variants agree" `Quick test_allreduce_variants;
    Alcotest.test_case "allgather variants agree" `Quick test_allgather_variants;
    Alcotest.test_case "allgather in-place variants" `Quick test_allgather_inplace_variants;
    Alcotest.test_case "alltoall variants agree" `Quick test_alltoall_variants;
    Alcotest.test_case "selector crossovers" `Quick test_selector_crossovers;
    Alcotest.test_case "pin table" `Quick test_pin_table;
    Alcotest.test_case "size-keyed pin tables" `Quick test_pin_size_table;
    Alcotest.test_case "hierarchical cost gating" `Quick test_hier_cost_gating;
    Alcotest.test_case "hierarchical params" `Quick test_hierarchical_params;
    Alcotest.test_case "profiling annotations" `Quick test_profiling_annotations;
    Alcotest.test_case "non-commutative fallback" `Quick test_noncommutative_annotation;
    Alcotest.test_case "tuning beats incumbent" `Quick test_tuning_beats_incumbent;
    Alcotest.test_case "cost model matches simulation" `Quick test_cost_model_matches_simulation;
  ]
