(* Tests for Cartesian topologies, halo exchange, reduce_scatter_block and
   sendrecv_replace. *)

open Mpisim

let run = Tutil.run

let test_dims_create () =
  Alcotest.(check Tutil.int_array) "12 in 2d" [| 4; 3 |] (Cart.dims_create ~nodes:12 ~ndims:2);
  Alcotest.(check Tutil.int_array) "8 in 3d" [| 2; 2; 2 |] (Cart.dims_create ~nodes:8 ~ndims:3);
  Alcotest.(check Tutil.int_array) "7 in 2d" [| 7; 1 |] (Cart.dims_create ~nodes:7 ~ndims:2);
  Alcotest.(check Tutil.int_array) "1 in 1d" [| 1 |] (Cart.dims_create ~nodes:1 ~ndims:1);
  let d = Cart.dims_create ~nodes:36 ~ndims:2 in
  Alcotest.(check int) "36 product" 36 (d.(0) * d.(1))

let test_coords_roundtrip () =
  ignore
    (run ~ranks:12 (fun comm ->
         let cart = Cart.create comm ~dims:[| 3; 4 |] ~periodic:[| false; false |] in
         for rank = 0 to 11 do
           let c = Cart.coords cart rank in
           Alcotest.(check int) "roundtrip" rank (Cart.rank_of cart c);
           Alcotest.(check bool) "in range" true (c.(0) < 3 && c.(1) < 4)
         done;
         (* row-major: rank = x * 4 + y *)
         Alcotest.(check Tutil.int_array) "rank 7 coords" [| 1; 3 |] (Cart.coords cart 7)))

let test_shift () =
  ignore
    (run ~ranks:6 (fun comm ->
         let cart = Cart.create comm ~dims:[| 2; 3 |] ~periodic:[| false; true |] in
         if Comm.rank comm = 0 then begin
           (* non-periodic dim 0 at the boundary *)
           let src, dst = Cart.shift cart ~dim:0 ~disp:1 in
           Alcotest.(check (option int)) "no source below" None src;
           Alcotest.(check (option int)) "dest is rank 3" (Some 3) dst;
           (* periodic dim 1 wraps *)
           let src, dst = Cart.shift cart ~dim:1 ~disp:1 in
           Alcotest.(check (option int)) "wrapped source" (Some 2) src;
           Alcotest.(check (option int)) "dest" (Some 1) dst
         end))

let test_create_validation () =
  ignore
    (run ~ranks:4 (fun comm ->
         Alcotest.(check bool) "bad dims rejected" true
           (match Cart.create comm ~dims:[| 3; 2 |] ~periodic:[| false; false |] with
           | (_ : Cart.t) -> false
           | exception Errors.Usage_error _ -> true)))

let test_halo_exchange_ring () =
  (* 1D periodic ring: each rank's halos are exactly the neighbors' data *)
  ignore
    (run ~ranks:5 (fun comm ->
         let r = Comm.rank comm and p = Comm.size comm in
         let cart = Cart.create comm ~dims:[| 5 |] ~periodic:[| true |] in
         let send_low = [| r * 10 |] and send_high = [| (r * 10) + 1 |] in
         let recv_low = [| -1 |] and recv_high = [| -1 |] in
         let n = Cart.halo_exchange cart Datatype.int ~dim:0 ~send_low ~send_high ~recv_low ~recv_high in
         Alcotest.(check int) "two neighbors" 2 n;
         Alcotest.(check int) "low halo = left neighbor's high" ((((r - 1 + p) mod p) * 10) + 1)
           recv_low.(0);
         Alcotest.(check int) "high halo = right neighbor's low" (((r + 1) mod p) * 10) recv_high.(0)))

let test_halo_exchange_boundary () =
  (* non-periodic: edges have only one neighbor, buffers stay untouched *)
  ignore
    (run ~ranks:4 (fun comm ->
         let r = Comm.rank comm in
         let cart = Cart.create comm ~dims:[| 4 |] ~periodic:[| false |] in
         let recv_low = [| -7 |] and recv_high = [| -7 |] in
         let n =
           Cart.halo_exchange cart Datatype.int ~dim:0 ~send_low:[| r |] ~send_high:[| r |]
             ~recv_low ~recv_high
         in
         let expected_neighbors = if r = 0 || r = 3 then 1 else 2 in
         Alcotest.(check int) "neighbor count" expected_neighbors n;
         if r = 0 then Alcotest.(check int) "no low neighbor" (-7) recv_low.(0)
         else Alcotest.(check int) "low halo" (r - 1) recv_low.(0);
         if r = 3 then Alcotest.(check int) "no high neighbor" (-7) recv_high.(0)
         else Alcotest.(check int) "high halo" (r + 1) recv_high.(0)))

let test_halo_2d_grid () =
  (* halos along both dimensions of a 2x3 grid *)
  ignore
    (run ~ranks:6 (fun comm ->
         let cart = Cart.create comm ~dims:[| 2; 3 |] ~periodic:[| false; false |] in
         let r = Comm.rank comm in
         let rl = [| -1 |] and rh = [| -1 |] in
         ignore (Cart.halo_exchange cart Datatype.int ~dim:1 ~send_low:[| r |] ~send_high:[| r |]
                   ~recv_low:rl ~recv_high:rh);
         let c = Cart.coords cart r in
         if c.(1) > 0 then Alcotest.(check int) "left neighbor" (r - 1) rl.(0);
         if c.(1) < 2 then Alcotest.(check int) "right neighbor" (r + 1) rh.(0)))

let test_reduce_scatter_block () =
  let p = 4 in
  let results =
    run ~ranks:p (fun comm ->
        let r = Comm.rank comm in
        (* each rank contributes [r, r, ...]: block i sums to p*(p-1)/2 + i pattern *)
        let sendbuf = Array.init (2 * p) (fun j -> (r * 100) + j) in
        let recvbuf = Array.make 2 0 in
        Collectives.reduce_scatter_block comm Datatype.int Op.int_sum ~sendbuf ~recvbuf ~count:2;
        recvbuf)
  in
  (* sum over r of (r*100 + j) = 100*6 + 4j *)
  Array.iteri
    (fun r got ->
      let expected = Array.init 2 (fun k -> 600 + (4 * ((2 * r) + k))) in
      Alcotest.(check Tutil.int_array) (Printf.sprintf "block@%d" r) expected got)
    results

let test_sendrecv_replace () =
  let results =
    run ~ranks:4 (fun comm ->
        let r = Comm.rank comm and p = Comm.size comm in
        let buf = [| r; r * 2 |] in
        ignore
          (P2p.sendrecv_replace comm Datatype.int buf ~dst:((r + 1) mod p) ~stag:1
             ~src:((r - 1 + p) mod p) ~rtag:1);
        buf)
  in
  Array.iteri
    (fun r got ->
      let prev = (r + 3) mod 4 in
      Alcotest.(check Tutil.int_array) "rotated" [| prev; prev * 2 |] got)
    results

(* Scenario wave: halo exchange and the neighborhood collectives over a
   Cart-derived topology, checker-clean on a two-tier fabric (the
   MPISIM_TOPOLOGY=two:4 shape: 4-rank nodes under a slower top tier). *)
let test_neighbor_exchange_two_tier () =
  let ranks = 8 in
  let fabric = Simnet.Netmodel.fabric_of_spec ~ranks "two:4" in
  ignore
    (Tutil.run_checked ~fabric ~ranks (fun comm ->
         let cart = Cart.create comm ~dims:[| 4; 2 |] ~periodic:[| false; false |] in
         let r = Comm.rank comm in
         let c = Cart.coords cart r in
         (* halos in both dimensions *)
         let rl = [| -1 |] and rh = [| -1 |] in
         ignore
           (Cart.halo_exchange cart Datatype.int ~dim:0 ~send_low:[| r |] ~send_high:[| r |]
              ~recv_low:rl ~recv_high:rh);
         if c.(0) > 0 then Alcotest.(check int) "north halo" (r - 2) rl.(0);
         if c.(0) < 3 then Alcotest.(check int) "south halo" (r + 2) rh.(0);
         ignore
           (Cart.halo_exchange cart Datatype.int ~dim:1 ~send_low:[| r |] ~send_high:[| r |]
              ~recv_low:rl ~recv_high:rh);
         (* neighborhood collective over the Cart adjacency *)
         let neighbors = ref [] in
         Array.iter
           (fun dim ->
             match Cart.shift cart ~dim ~disp:1 with
             | lo, hi ->
                 Option.iter (fun s -> neighbors := s :: !neighbors) lo;
                 Option.iter (fun d -> neighbors := d :: !neighbors) hi)
           [| 0; 1 |];
         let partners = Array.of_list (List.sort_uniq compare !neighbors) in
         let topo =
           Topology.dist_graph_create_adjacent comm ~sources:partners ~destinations:partners
         in
         let deg = Array.length partners in
         let sendbuf = Array.make deg r in
         let recvbuf = Array.make deg (-1) in
         Topology.neighbor_alltoall topo Datatype.int ~sendbuf ~recvbuf ~count:1;
         Array.iteri
           (fun i p -> Alcotest.(check int) "neighbor id round-trip" p recvbuf.(i))
           partners))

let suite =
  [
    Alcotest.test_case "dims_create" `Quick test_dims_create;
    Alcotest.test_case "coords roundtrip" `Quick test_coords_roundtrip;
    Alcotest.test_case "shift with periodicity" `Quick test_shift;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "halo exchange on a ring" `Quick test_halo_exchange_ring;
    Alcotest.test_case "halo exchange at boundaries" `Quick test_halo_exchange_boundary;
    Alcotest.test_case "halo exchange on a 2d grid" `Quick test_halo_2d_grid;
    Alcotest.test_case "reduce_scatter_block" `Quick test_reduce_scatter_block;
    Alcotest.test_case "sendrecv_replace" `Quick test_sendrecv_replace;
    Alcotest.test_case "neighbor exchange on two-tier fabric" `Quick
      test_neighbor_exchange_two_tier;
  ]
