(* Tracing & wait-state analysis (PR 3).

   Three pillars:
   - the recorder is a PURE OBSERVER: every gallery example produces the
     same profile, event count and final simulated time with tracing off
     and on (mirrors the checker's profile-equality regression);
   - the analysis is exact on constructed scenarios: a serial pipeline's
     critical path covers the whole run, waits decompose per rank, and
     late-sender / late-receiver / wait-at-collective states are
     classified with the right rank, peer and call site;
   - the Chrome exporter round-trips through lib/serde and carries one
     track per rank plus one flow pair per matched message. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec
module Mpi = Mpisim.Mpi

let exact = Alcotest.float 0.0
let close = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Pure-observer equality over the gallery                             *)
(* ------------------------------------------------------------------ *)

let summaries enabled run =
  let (), runs =
    Trace.Recorder.with_default enabled (fun () -> Mpi.with_run_collector run)
  in
  runs

let check_observer_equal name run =
  let off = summaries false run and on = summaries true run in
  Alcotest.(check int) (name ^ ": same run count") (List.length off) (List.length on);
  List.iteri
    (fun i (a : Mpi.run_summary) ->
      let b = List.nth on i in
      let lbl what = Printf.sprintf "%s run %d: %s" name i what in
      Alcotest.check exact (lbl "sim time") a.Mpi.rs_sim_time b.Mpi.rs_sim_time;
      Alcotest.(check int) (lbl "engine events") a.rs_events b.rs_events;
      Alcotest.(check (list (pair string int)))
        (lbl "call profile") a.rs_profile.Mpisim.Profiling.calls b.rs_profile.calls;
      Alcotest.(check (list (pair string int)))
        (lbl "algorithm annotations") a.rs_profile.algo_calls b.rs_profile.algo_calls;
      Alcotest.(check int) (lbl "messages") a.rs_profile.messages b.rs_profile.messages;
      Alcotest.(check int) (lbl "bytes") a.rs_profile.bytes b.rs_profile.bytes)
    off

let observer name run =
  Alcotest.test_case ("pure observer: " ^ name) `Quick (fun () ->
      check_observer_equal name run)

(* ------------------------------------------------------------------ *)
(* Constructed scenarios                                               *)
(* ------------------------------------------------------------------ *)

let traced ~ranks f =
  let res = Trace.Recorder.with_default false (fun () -> Mpi.run ~trace:true ~ranks f) in
  ignore (Mpi.results_exn res);
  Option.get res.Mpi.trace

let stage = 100e-6

(* Serial pipeline: rank r waits for r-1, computes, passes the token on.
   The run is one long dependency chain, so the critical path must cover
   it end to end and the waiting time must grow with the rank. *)
let pipeline_data () =
  traced ~ranks:4 (fun raw ->
      let c = K.wrap raw in
      let r = K.rank c and p = K.size c in
      if r > 0 then ignore (K.recv ~count:1 c D.int ~src:(r - 1));
      K.compute c stage;
      if r < p - 1 then K.send c D.int ~send_buf:(V.make 1 r) ~dst:(r + 1))

let test_pipeline_critical_path () =
  let data = pipeline_data () in
  let report = Trace.Analysis.analyze data in
  Alcotest.check close "critical path covers the whole run" data.Trace.Event.total
    (Trace.Analysis.critical_length report);
  (* forward order, gap-free coverage of [0, total] *)
  let t = ref 0.0 in
  List.iter
    (fun (s : Trace.Analysis.step) ->
      Alcotest.check close "steps are contiguous" !t s.st_t0;
      Alcotest.(check bool) "steps go forward" true (s.st_t1 >= s.st_t0);
      t := s.st_t1)
    report.Trace.Analysis.critical_path;
  Alcotest.check close "path ends at the final time" data.total !t;
  (* the chain hops through every rank via message transfers *)
  let transfers =
    List.filter
      (fun (s : Trace.Analysis.step) -> s.st_kind = Trace.Analysis.Transfer)
      report.critical_path
  in
  Alcotest.(check int) "one transfer per pipeline edge" 3 (List.length transfers)

let test_pipeline_rank_decomposition () =
  let data = pipeline_data () in
  let report = Trace.Analysis.analyze data in
  Alcotest.(check int) "stats for every rank" 4 (Array.length report.Trace.Analysis.per_rank);
  Array.iter
    (fun (s : Trace.Analysis.rank_stats) ->
      Alcotest.check close
        (Printf.sprintf "rank %d: waiting + working = span" s.rank)
        s.span (s.waiting +. s.working);
      Alcotest.check exact
        (Printf.sprintf "rank %d: span = recorded finish" s.rank)
        data.Trace.Event.rank_end.(s.rank) s.span)
    report.per_rank;
  Alcotest.check exact "head of the pipeline never waits" 0.0
    report.per_rank.(0).waiting;
  Alcotest.(check bool) "tail waits for all upstream stages" true
    (report.per_rank.(3).waiting > 3.0 *. stage);
  Alcotest.(check bool) "waiting grows along the pipeline" true
    (report.per_rank.(1).waiting < report.per_rank.(2).waiting
    && report.per_rank.(2).waiting < report.per_rank.(3).waiting)

let test_late_sender () =
  (* rank 1 posts its receive immediately; rank 0 computes first: the
     match is classified as a late sender charged to the receiver. *)
  let data =
    traced ~ranks:2 (fun raw ->
        let c = K.wrap raw in
        if K.rank c = 0 then begin
          K.compute c (2.0 *. stage);
          K.send c D.int ~send_buf:(V.make 1 7) ~dst:1
        end
        else ignore (K.recv ~count:1 c D.int ~src:0))
  in
  let report = Trace.Analysis.analyze data in
  let ls =
    List.filter
      (fun ws -> ws.Trace.Analysis.ws_class = Trace.Analysis.Late_sender)
      report.Trace.Analysis.wait_states
  in
  Alcotest.(check int) "exactly one late-sender state" 1 (List.length ls);
  let ws = List.hd ls in
  Alcotest.(check int) "charged to the receiver" 1 ws.Trace.Analysis.ws_rank;
  Alcotest.(check int) "caused by the sender" 0 ws.ws_peer;
  Alcotest.(check string) "attributed to the receive" "MPI_Recv" ws.ws_op;
  Alcotest.(check bool) "wait is at least the compute delay" true
    (ws.ws_amount >= 2.0 *. stage);
  Alcotest.check close "rank stats agree" ws.ws_amount
    report.per_rank.(1).late_sender

let test_late_receiver () =
  (* rank 0 sends immediately; rank 1 computes before receiving: the
     payload sits in the mailbox and the exposure is charged to the
     sender side. *)
  let data =
    traced ~ranks:2 (fun raw ->
        let c = K.wrap raw in
        if K.rank c = 0 then K.send c D.int ~send_buf:(V.make 1 7) ~dst:1
        else begin
          K.compute c (2.0 *. stage);
          ignore (K.recv ~count:1 c D.int ~src:0)
        end)
  in
  let report = Trace.Analysis.analyze data in
  let lr =
    List.filter
      (fun ws -> ws.Trace.Analysis.ws_class = Trace.Analysis.Late_receiver)
      report.Trace.Analysis.wait_states
  in
  Alcotest.(check int) "exactly one late-receiver state" 1 (List.length lr);
  let ws = List.hd lr in
  Alcotest.(check int) "charged to the sender" 0 ws.Trace.Analysis.ws_rank;
  Alcotest.(check int) "caused by the receiver" 1 ws.ws_peer;
  (* exposure = matched - arrived: the compute delay minus the (small)
     network latency the message spent in flight *)
  Alcotest.(check bool) "exposure is most of the compute delay" true
    (ws.ws_amount > stage && ws.ws_amount <= 2.0 *. stage);
  Alcotest.(check (list Alcotest.reject)) "no late-sender states" []
    (List.filter
       (fun ws -> ws.Trace.Analysis.ws_class = Trace.Analysis.Late_sender)
       report.wait_states)

let test_wait_at_collective () =
  (* staggered arrival at a barrier: rank r computes r * stage first, so
     every rank but the last waits inside the collective. *)
  let ranks = 4 in
  let data =
    traced ~ranks (fun raw ->
        let c = K.wrap raw in
        K.compute c (float_of_int (K.rank c) *. stage);
        K.barrier c)
  in
  let report = Trace.Analysis.analyze data in
  let cw =
    List.filter
      (fun ws -> ws.Trace.Analysis.ws_class = Trace.Analysis.Wait_at_collective)
      report.Trace.Analysis.wait_states
  in
  Alcotest.(check bool) "collective waits were classified" true (cw <> []);
  List.iter
    (fun ws ->
      Alcotest.(check string) "attributed to the barrier" "MPI_Barrier"
        ws.Trace.Analysis.ws_op;
      Alcotest.(check int) "collective-wide: no single peer" (-1) ws.ws_peer;
      Alcotest.(check bool) "the last arrival does not wait" true (ws.ws_rank < ranks - 1))
    cw;
  let amount r =
    List.fold_left
      (fun acc ws -> if ws.Trace.Analysis.ws_rank = r then acc +. ws.ws_amount else acc)
      0.0 cw
  in
  Alcotest.(check bool) "earliest arrival waits longest" true (amount 0 > amount 2)

(* ------------------------------------------------------------------ *)
(* Chrome export                                                       *)
(* ------------------------------------------------------------------ *)

let test_chrome_export () =
  let data = pipeline_data () in
  let json = Trace.Chrome.to_json data in
  let text = Serde.Json.to_string json in
  Alcotest.(check bool) "round-trips through lib/serde" true
    (Serde.Json.equal (Serde.Json.parse text) json);
  let events =
    match Serde.Json.member "traceEvents" json with
    | Some (Serde.Json.List l) -> l
    | _ -> Alcotest.fail "missing traceEvents array"
  in
  let field ev name =
    match ev with Serde.Json.Obj _ -> Serde.Json.member name ev | _ -> None
  in
  let phase ev = match field ev "ph" with Some (Serde.Json.Str s) -> s | _ -> "?" in
  let tid ev =
    match field ev "tid" with Some (Serde.Json.Num n) -> int_of_float n | _ -> -1
  in
  (* one complete-event track per rank *)
  for r = 0 to data.Trace.Event.ranks - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "rank %d has a complete-event track" r)
      true
      (List.exists (fun ev -> phase ev = "X" && tid ev = r) events)
  done;
  (* one flow pair per matched message *)
  let matched =
    List.length (List.filter Trace.Event.matched data.Trace.Event.messages)
  in
  let count ph = List.length (List.filter (fun ev -> phase ev = ph) events) in
  Alcotest.(check int) "one flow start per matched message" matched (count "s");
  Alcotest.(check int) "flow starts and finishes pair up" matched (count "f");
  (* timestamps are microseconds *)
  let num ev name =
    match field ev name with Some (Serde.Json.Num n) -> n | _ -> 0.0
  in
  let max_end =
    List.fold_left (fun acc ev -> Float.max acc (num ev "ts" +. num ev "dur")) 0.0 events
  in
  let last_recorded =
    List.fold_left
      (fun acc (s : Trace.Event.span) -> Float.max acc s.sp_t1)
      (List.fold_left
         (fun acc (w : Trace.Event.wait) -> Float.max acc w.w_t1)
         0.0 data.waits)
      data.spans
  in
  Alcotest.(check bool) "timestamps scaled to microseconds" true
    (Float.abs (max_end -. (last_recorded *. 1e6)) < 1e-3)

(* ------------------------------------------------------------------ *)
(* Enablement plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let test_enablement () =
  let prog raw = ignore (K.rank (K.wrap raw)) in
  let trace_of res = res.Mpi.trace in
  Trace.Recorder.with_default false (fun () ->
      Alcotest.(check bool) "default off: no trace" true
        (trace_of (Mpi.run ~ranks:2 prog) = None);
      Alcotest.(check bool) "explicit on overrides default" true
        (trace_of (Mpi.run ~trace:true ~ranks:2 prog) <> None));
  Trace.Recorder.with_default true (fun () ->
      Alcotest.(check bool) "default on: trace present" true
        (trace_of (Mpi.run ~ranks:2 prog) <> None);
      Alcotest.(check bool) "explicit off overrides default" true
        (trace_of (Mpi.run ~trace:false ~ranks:2 prog) = None));
  Alcotest.(check bool) "inert recorder is inactive" false
    (Trace.Recorder.active Trace.Recorder.inert);
  Alcotest.(check bool) "created recorder is active" true
    (Trace.Recorder.active (Trace.Recorder.create ~ranks:2))

let suite =
  [
    Alcotest.test_case "pipeline: critical path" `Quick test_pipeline_critical_path;
    Alcotest.test_case "pipeline: per-rank decomposition" `Quick
      test_pipeline_rank_decomposition;
    Alcotest.test_case "late sender classified" `Quick test_late_sender;
    Alcotest.test_case "late receiver classified" `Quick test_late_receiver;
    Alcotest.test_case "wait-at-collective classified" `Quick test_wait_at_collective;
    Alcotest.test_case "chrome export" `Quick test_chrome_export;
    Alcotest.test_case "enablement plumbing" `Quick test_enablement;
    observer "quickstart" Gallery.Quickstart.run;
    observer "vector_allgather" Gallery.Vector_allgather.run;
    observer "sample_sort_example" Gallery.Sample_sort_example.run;
    observer "bfs_example" Gallery.Bfs_example.run;
    observer "nonblocking_safety" Gallery.Nonblocking_safety.run;
    observer "serialization_example" Gallery.Serialization_example.run;
    observer "fault_tolerance" Gallery.Fault_tolerance.run;
    observer "reproducible_reduce_example" Gallery.Reproducible_reduce_example.run;
    observer "sorter_example" Gallery.Sorter_example.run;
    observer "halo_exchange" Gallery.Halo_exchange.run;
    observer "word_count" Gallery.Word_count.run;
    observer "one_sided" Gallery.One_sided.run;
    observer "checkpoint_restart" Gallery.Checkpoint_restart.run;
  ]
