(* Tests for the plugin library: sparse (NBX) all-to-all, grid all-to-all,
   reproducible reduce, the distributed sorter and ULFM fault tolerance. *)

open Kamping
module V = Ds.Vec
module D = Mpisim.Datatype

let wrapped ~ranks f = Tutil.run ~ranks (fun raw -> f (Comm.wrap raw))
let vec_int = Alcotest.testable (Ds.Vec.pp Format.pp_print_int) (Ds.Vec.equal ( = ))

(* ---------- sparse all-to-all (NBX) ---------- *)

let test_sparse_basic () =
  let results =
    wrapped ~ranks:5 (fun comm ->
        let r = Comm.rank comm and p = Comm.size comm in
        (* ring pattern: each rank messages its two neighbors *)
        let messages =
          [ ((r + 1) mod p, V.of_list [ r; r ]); ((r + p - 1) mod p, V.of_list [ -r ]) ]
        in
        Kamping_plugins.Sparse_alltoall.exchange comm D.int ~messages)
  in
  Array.iteri
    (fun r got ->
      let p = 5 in
      let left = (r + p - 1) mod p and right = (r + 1) mod p in
      let expected =
        List.sort compare [ (left, [ left; left ]); (right, [ -right ]) ]
      in
      let got = List.map (fun (s, v) -> (s, V.to_list v)) got in
      Alcotest.(check (list (pair int (list int)))) (Printf.sprintf "nbx@%d" r) expected got)
    results

let test_sparse_no_messages () =
  (* a round where nobody sends anything must still terminate *)
  let results = wrapped ~ranks:4 (fun comm -> Kamping_plugins.Sparse_alltoall.exchange comm D.int ~messages:[]) in
  Array.iter (fun got -> Alcotest.(check int) "nothing received" 0 (List.length got)) results

let test_sparse_skewed () =
  (* rank 0 receives from everyone; nobody else receives *)
  let results =
    wrapped ~ranks:6 (fun comm ->
        let r = Comm.rank comm in
        let messages = if r = 0 then [] else [ (0, V.make r r) ] in
        Kamping_plugins.Sparse_alltoall.exchange comm D.int ~messages)
  in
  let at0 = List.map (fun (s, v) -> (s, V.length v)) results.(0) in
  Alcotest.(check (list (pair int int))) "all-to-one" [ (1, 1); (2, 2); (3, 3); (4, 4); (5, 5) ] at0;
  for r = 1 to 5 do
    Alcotest.(check int) "others idle" 0 (List.length results.(r))
  done

let test_sparse_matches_alltoallv () =
  (* NBX must transport exactly what alltoallv would *)
  List.iter
    (fun p ->
      let payload s d = if (s + d) mod 3 = 0 then [] else List.init ((s + d) mod 3) (fun i -> (s * 100) + (d * 10) + i) in
      let results =
        wrapped ~ranks:p (fun comm ->
            let r = Comm.rank comm in
            let messages =
              List.init p (fun d -> (d, V.of_list (payload r d)))
              |> List.filter (fun (_, v) -> not (V.is_empty v))
            in
            Kamping_plugins.Sparse_alltoall.exchange comm D.int ~messages)
      in
      Array.iteri
        (fun r got ->
          let expected =
            List.init p (fun s -> (s, payload s r)) |> List.filter (fun (_, l) -> l <> [])
          in
          let got = List.map (fun (s, v) -> (s, V.to_list v)) got in
          Alcotest.(check (list (pair int (list int)))) (Printf.sprintf "p=%d rank=%d" p r) expected
            got)
        results)
    [ 2; 3; 7 ]

let test_sparse_message_count_scales_with_partners () =
  (* the point of NBX: message volume depends on partners, not on p *)
  let run_pattern p =
    (Tutil.run_full ~ranks:p (fun raw ->
         let comm = Comm.wrap raw in
         let r = Comm.rank comm in
         let messages = [ ((r + 1) mod p, V.of_list [ r ]) ] in
         ignore (Kamping_plugins.Sparse_alltoall.exchange comm D.int ~messages)))
      .Mpisim.Mpi.profile
      .Mpisim.Profiling.messages
  in
  let m8 = run_pattern 8 and m32 = run_pattern 32 in
  (* alltoallv counts alone would cost p^2 ints; NBX stays near-linear *)
  Alcotest.(check bool) "sub-quadratic growth" true (float_of_int m32 < 8.0 *. float_of_int m8)

(* ---------- grid all-to-all ---------- *)

let grid_reference p payload r =
  (* expected receive buffer at rank r, grouped by source ascending *)
  List.concat (List.init p (fun s -> payload s r))

let test_grid_matches_alltoallv () =
  List.iter
    (fun p ->
      let payload s d = List.init ((s + (2 * d)) mod 4) (fun i -> (s * 1000) + (d * 10) + i) in
      let results =
        wrapped ~ranks:p (fun comm ->
            let grid = Kamping_plugins.Grid_alltoall.create comm in
            let r = Comm.rank comm in
            let send_buf = V.create () in
            let send_counts = Array.make p 0 in
            for d = 0 to p - 1 do
              let l = payload r d in
              send_counts.(d) <- List.length l;
              List.iter (V.push send_buf) l
            done;
            let out, counts = Kamping_plugins.Grid_alltoall.alltoallv grid D.int ~send_buf ~send_counts in
            (V.to_list out, counts))
      in
      Array.iteri
        (fun r (got, counts) ->
          Alcotest.(check (list int)) (Printf.sprintf "grid p=%d rank=%d" p r)
            (grid_reference p payload r) got;
          Array.iteri
            (fun s c ->
              Alcotest.(check int) (Printf.sprintf "count p=%d r=%d s=%d" p r s)
                (List.length (payload s r)) c)
            counts)
        results)
    [ 2; 3; 4; 5; 7; 9; 12; 16 ]

let test_grid_shape () =
  ignore
    (wrapped ~ranks:7 (fun comm ->
         let grid = Kamping_plugins.Grid_alltoall.create comm in
         Alcotest.(check int) "columns" 3 (Kamping_plugins.Grid_alltoall.columns grid);
         Alcotest.(check int) "rows" 3 (Kamping_plugins.Grid_alltoall.rows grid)))

let test_grid_reuse () =
  (* one grid, several exchanges *)
  ignore
    (wrapped ~ranks:6 (fun comm ->
         let grid = Kamping_plugins.Grid_alltoall.create comm in
         let p = Comm.size comm and r = Comm.rank comm in
         for round = 1 to 3 do
           let send_counts = Array.make p 1 in
           let send_buf = V.init p (fun d -> (round * 100) + (r * 10) + d) in
           let out, _ = Kamping_plugins.Grid_alltoall.alltoallv grid D.int ~send_buf ~send_counts in
           let expected = V.init p (fun s -> (round * 100) + (s * 10) + r) in
           Alcotest.check vec_int (Printf.sprintf "round %d" round) expected out
         done))

(* ---------- hypergrid (d-dimensional) all-to-all ---------- *)

let test_hypergrid_matches_alltoallv () =
  List.iter
    (fun (p, ndims) ->
      let payload s d = List.init ((s + (3 * d)) mod 4) (fun i -> (s * 1000) + (d * 10) + i) in
      let results =
        wrapped ~ranks:p (fun comm ->
            let hg = Kamping_plugins.Hypergrid.create comm ~ndims in
            let r = Comm.rank comm in
            let send_buf = V.create () in
            let send_counts = Array.make p 0 in
            for d = 0 to p - 1 do
              let l = payload r d in
              send_counts.(d) <- List.length l;
              List.iter (V.push send_buf) l
            done;
            let out, counts = Kamping_plugins.Hypergrid.alltoallv hg D.int ~send_buf ~send_counts in
            (V.to_list out, counts))
      in
      Array.iteri
        (fun r (got, counts) ->
          let expected = List.concat (List.init p (fun s -> payload s r)) in
          Alcotest.(check (list int)) (Printf.sprintf "hypergrid p=%d d=%d rank=%d" p ndims r)
            expected got;
          Array.iteri
            (fun s c ->
              Alcotest.(check int) (Printf.sprintf "count p=%d r=%d s=%d" p r s)
                (List.length (payload s r)) c)
            counts)
        results)
    [ (8, 3); (12, 2); (12, 3); (16, 4); (7, 3); (27, 3); (5, 2) ]

let test_hypergrid_fewer_partners () =
  ignore
    (wrapped ~ranks:64 (fun comm ->
         let g2 = Kamping_plugins.Hypergrid.create comm ~ndims:2 in
         let g3 = Kamping_plugins.Hypergrid.create comm ~ndims:3 in
         Alcotest.(check int) "2d partner budget" 14 (Kamping_plugins.Hypergrid.max_partners g2);
         Alcotest.(check int) "3d partner budget" 9 (Kamping_plugins.Hypergrid.max_partners g3)))

let test_hypergrid_bad_dims () =
  ignore
    (wrapped ~ranks:6 (fun comm ->
         Alcotest.(check bool) "dims product mismatch" true
           (match Kamping_plugins.Hypergrid.create ~dims:[| 2; 2 |] comm ~ndims:2 with
           | (_ : Kamping_plugins.Hypergrid.t) -> false
           | exception Mpisim.Errors.Usage_error _ -> true)))

(* ---------- reproducible reduce ---------- *)

let global_data n = Array.init n (fun i -> Float.of_int ((i * 7919 mod 1000) - 500) *. 0.001)

let distribute data p r =
  (* block distribution with uneven tail *)
  let n = Array.length data in
  let base = n / p and extra = n mod p in
  let count = base + (if r < extra then 1 else 0) in
  let start = (r * base) + min r extra in
  V.init count (fun i -> data.(start + i))

let repro_run ~n ~p =
  let data = global_data n in
  (Tutil.run ~ranks:p (fun raw ->
       let comm = Comm.wrap raw in
       Kamping_plugins.Reproducible_reduce.reduce comm D.float ( +. )
         ~send_buf:(distribute data p (Comm.rank comm)))).(0)

let test_repro_reduce_correct () =
  let n = 100 in
  let data = global_data n in
  let expected = Kamping_plugins.Reproducible_reduce.local_tree_reduce ( +. ) (fun i -> data.(i)) 0 n in
  List.iter
    (fun p ->
      let got = repro_run ~n ~p in
      Alcotest.(check bool) (Printf.sprintf "bitwise equal p=%d" p) true
        (Int64.equal (Int64.bits_of_float got) (Int64.bits_of_float expected)))
    [ 1; 2; 3; 4; 5; 7; 8; 16 ]

let test_repro_reduce_uneven_and_empty () =
  (* some ranks hold nothing at all *)
  let results =
    Tutil.run ~ranks:6 (fun raw ->
        let comm = Comm.wrap raw in
        let r = Comm.rank comm in
        let mine = if r mod 2 = 0 then V.create () else V.of_list [ float_of_int r ] in
        Kamping_plugins.Reproducible_reduce.reduce comm D.float ( +. ) ~send_buf:mine)
  in
  Array.iter (fun v -> Alcotest.(check (float 0.0)) "sum 1+3+5" 9.0 v) results

let test_repro_vs_naive_divergence () =
  (* demonstrate that the naive tree reduction is NOT reproducible across p
     while the plugin is: use a catastrophic-cancellation-prone series *)
  let n = 64 in
  (* magnitudes spanning 32 decades with mixed signs: the grouping of the
     additions visibly changes the rounded result *)
  let data =
    Array.init n (fun i ->
        (10.0 ** float_of_int ((i * 7 mod 33) - 16)) *. (if i mod 3 = 0 then -1.0 else 1.0))
  in
  let naive p =
    (Tutil.run ~ranks:p (fun raw ->
         let comm = Comm.wrap raw in
         (* pin the binomial reduce+bcast path: the tuned selector may pick
            an algorithm whose grouping happens to agree across these p *)
         Comm.pin_algorithm comm ~coll:"allreduce" ~algo:"reduce_bcast";
         let mine = distribute data p (Comm.rank comm) in
         (* local fold + binomial tree: order depends on p *)
         let local = V.fold_left ( +. ) 0.0 mine in
         Comm.allreduce_single comm D.float Mpisim.Op.float_sum local)).(0)
  in
  let repro p =
    (Tutil.run ~ranks:p (fun raw ->
         let comm = Comm.wrap raw in
         Kamping_plugins.Reproducible_reduce.reduce comm D.float ( +. )
           ~send_buf:(distribute data p (Comm.rank comm)))).(0)
  in
  let naive_results = List.map naive [ 1; 2; 3; 5; 8 ] in
  let repro_results = List.map repro [ 1; 2; 3; 5; 8 ] in
  let all_equal l = List.for_all (fun x -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float (List.hd l))) l in
  Alcotest.(check bool) "plugin reproducible" true (all_equal repro_results);
  Alcotest.(check bool) "naive varies with p (demonstrates the problem)" false
    (all_equal naive_results)

let test_repro_reduce_int_ops () =
  (* works with any op, e.g. max *)
  let results =
    Tutil.run ~ranks:4 (fun raw ->
        let comm = Comm.wrap raw in
        let r = Comm.rank comm in
        Kamping_plugins.Reproducible_reduce.reduce comm D.int max
          ~send_buf:(V.of_list [ r * 3; 7 - r ]))
  in
  Array.iter (fun v -> Alcotest.(check int) "max" 9 v) results

let prop_repro_reduce =
  Tutil.qtest ~count:20 "reproducible reduce equals sequential tree for random data"
    QCheck2.Gen.(pair (int_range 1 50) (int_range 1 9))
    (fun (n, p) ->
      let data = Array.init n (fun i -> float_of_int (((i * 31) mod 17) - 8) /. 3.0) in
      let expected =
        Kamping_plugins.Reproducible_reduce.local_tree_reduce ( +. ) (fun i -> data.(i)) 0 n
      in
      let got =
        (Tutil.run ~ranks:p (fun raw ->
             let comm = Comm.wrap raw in
             Kamping_plugins.Reproducible_reduce.reduce comm D.float ( +. )
               ~send_buf:(distribute data p (Comm.rank comm)))).(0)
      in
      Int64.equal (Int64.bits_of_float got) (Int64.bits_of_float expected))

(* ---------- sorter ---------- *)

let test_sorter_basic () =
  let p = 4 in
  let per_rank = 50 in
  let results =
    wrapped ~ranks:p (fun comm ->
        let rng = Simnet.Rng.split (Simnet.Rng.create 99L) (Comm.rank comm) in
        let data = V.init per_rank (fun _ -> Simnet.Rng.int rng 10_000) in
        let before = V.fold_left ( + ) 0 data in
        let sorted = Kamping_plugins.Sorter.sort comm D.int ~cmp:compare data in
        let ok = Kamping_plugins.Sorter.is_globally_sorted comm D.int ~cmp:compare sorted in
        let after_sum = Comm.allreduce_single comm D.int Mpisim.Op.int_sum (V.fold_left ( + ) 0 sorted) in
        let before_sum = Comm.allreduce_single comm D.int Mpisim.Op.int_sum before in
        (ok, before_sum = after_sum, V.length sorted))
  in
  let total = Array.fold_left (fun acc (_, _, n) -> acc + n) 0 results in
  Alcotest.(check int) "no elements lost" (p * per_rank) total;
  Array.iter
    (fun (ok, preserved, _) ->
      Alcotest.(check bool) "globally sorted" true ok;
      Alcotest.(check bool) "multiset preserved" true preserved)
    results

let test_sorter_single_rank () =
  ignore
    (wrapped ~ranks:1 (fun comm ->
         let sorted = Kamping_plugins.Sorter.sort comm D.int ~cmp:compare (V.of_list [ 3; 1; 2 ]) in
         Alcotest.check vec_int "local" (V.of_list [ 1; 2; 3 ]) sorted))

let test_sorter_custom_order () =
  ignore
    (wrapped ~ranks:3 (fun comm ->
         let r = Comm.rank comm in
         let data = V.init 20 (fun i -> (r * 20) + i) in
         let cmp a b = compare b a (* descending *) in
         let sorted = Kamping_plugins.Sorter.sort comm D.int ~cmp data in
         Alcotest.(check bool) "descending global order" true
           (Kamping_plugins.Sorter.is_globally_sorted comm D.int ~cmp sorted)))

let prop_sorter =
  Tutil.qtest ~count:15 "sample sort sorts any distribution"
    QCheck2.Gen.(pair (int_range 1 6) (list_size (int_bound 80) (int_bound 1000)))
    (fun (p, pool) ->
      let results =
        Tutil.run ~ranks:p (fun raw ->
            let comm = Comm.wrap raw in
            let r = Comm.rank comm in
            (* deal the pool round-robin *)
            let mine = List.filteri (fun i _ -> i mod p = r) pool in
            let sorted = Kamping_plugins.Sorter.sort comm D.int ~cmp:compare (V.of_list mine) in
            V.to_list sorted)
      in
      let flat = List.concat (Array.to_list results) in
      flat = List.sort compare pool)

(* ---------- ULFM ---------- *)

let test_ulfm_failure_detected () =
  let res =
    Tutil.run_full ~ranks:4
      ~failures:[ (5.0e-6, 2) ]
      (fun raw ->
        let comm = Comm.wrap raw in
        (* wait until after the failure, then try to talk to rank 2 *)
        Comm.compute comm 50.0e-6;
        if Comm.rank comm = 0 then
          match Comm.recv ~count:1 comm D.int ~src:2 with
          | (_ : int V.t) -> `Unexpected
          | exception Mpisim.Errors.Process_failed { world_rank } ->
              Alcotest.(check int) "failed rank identified" 2 world_rank;
              `Detected
        else `Idle)
  in
  (match res.Mpisim.Mpi.results.(0) with
  | Ok `Detected -> ()
  | Ok _ -> Alcotest.fail "failure not detected"
  | Error e -> raise e);
  match res.Mpisim.Mpi.results.(2) with
  | Error Mpisim.Mpi.Rank_died | Error Simnet.Engine.Killed -> ()
  | Ok _ | Error _ -> Alcotest.fail "rank 2 should have died"

let test_ulfm_fig12_recovery () =
  (* The Fig. 12 pattern: allreduce loop, failure mid-run, revoke + shrink,
     survivors finish. *)
  let res =
    Tutil.run_full ~ranks:6
      ~failures:[ (30.0e-6, 3) ]
      (fun raw ->
        let comm = ref (Comm.wrap raw) in
        let completed = ref 0 in
        let rounds = ref 0 in
        while !completed < 5 && !rounds < 50 do
          incr rounds;
          Comm.compute !comm 20.0e-6;
          try
            let (_ : int) = Comm.allreduce_single !comm D.int Mpisim.Op.int_sum 1 in
            incr completed
          with Mpisim.Errors.Process_failed _ | Mpisim.Errors.Comm_revoked ->
            if not (Kamping_plugins.Ulfm.is_revoked !comm) then Kamping_plugins.Ulfm.revoke !comm;
            comm := Kamping_plugins.Ulfm.shrink !comm;
            (* survivors may have observed different numbers of successful
               rounds: resynchronize the counter so the collective call
               sequences line up again *)
            completed := Comm.allreduce_single !comm D.int Mpisim.Op.int_min !completed
        done;
        (!completed, Comm.size !comm))
  in
  Array.iteri
    (fun r outcome ->
      if r <> 3 then begin
        match outcome with
        | Ok (completed, size) ->
            Alcotest.(check int) (Printf.sprintf "rank %d finished all rounds" r) 5 completed;
            Alcotest.(check int) "shrunk to survivors" 5 size
        | Error e -> raise e
      end)
    res.Mpisim.Mpi.results

let test_ulfm_with_recovery_combinator () =
  let res =
    Tutil.run_full ~ranks:4
      ~failures:[ (10.0e-6, 1) ]
      (fun raw ->
        let comm = Comm.wrap raw in
        if Comm.rank comm = 1 then begin
          (* will die mid-compute *)
          Comm.compute comm 1.0;
          None
        end
        else
          Kamping_plugins.Ulfm.with_recovery comm (fun c ->
              Comm.compute c 30.0e-6;
              Comm.allreduce_single c D.int Mpisim.Op.int_sum 1)
          |> Option.map (fun (v, c) -> (v, Comm.size c)))
  in
  Array.iteri
    (fun r outcome ->
      if r <> 1 then
        match outcome with
        | Ok (Some (sum, size)) ->
            Alcotest.(check int) "survivor count" 3 size;
            Alcotest.(check int) "reduced over survivors" 3 sum
        | Ok None -> Alcotest.fail "recovery gave up"
        | Error e -> raise e)
    res.Mpisim.Mpi.results

(* A persistent failure schedule: one rank dies in every attempt.  With
   [?max_attempts] the combinator must stop with a diagnostic exception
   naming the attempt count instead of silently looping or returning
   [None]. *)
let test_ulfm_max_attempts_exhausted () =
  let res =
    Mpisim.Mpi.run ~ranks:4
      ~fail_at:[ (1, 10.0e-6); (2, 100.0e-6); (3, 200.0e-6) ]
      (fun raw ->
        let comm = Comm.wrap raw in
        match
          Kamping_plugins.Ulfm.with_recovery ~max_attempts:3 comm (fun c ->
              while true do
                Comm.compute c 20.0e-6;
                ignore (Comm.allreduce_single c D.int Mpisim.Op.int_sum 1)
              done)
        with
        | _ -> `Completed
        | exception Kamping_plugins.Ulfm.Recovery_exhausted { attempts } ->
            `Exhausted attempts)
  in
  (match res.Mpisim.Mpi.results.(0) with
  | Ok (`Exhausted 3) -> ()
  | Ok `Completed -> Alcotest.fail "infinite body cannot complete"
  | Ok (`Exhausted n) -> Alcotest.failf "expected 3 attempts, got %d" n
  | Error e -> raise e);
  (* Bounded attempts still succeed when the failures stop. *)
  let ok =
    Mpisim.Mpi.run ~ranks:4 ~fail_at:[ (1, 10.0e-6) ] (fun raw ->
        let comm = Comm.wrap raw in
        if Comm.rank comm = 1 then None
        else
          Kamping_plugins.Ulfm.with_recovery ~max_attempts:3 comm (fun c ->
              Comm.compute c 30.0e-6;
              Comm.allreduce_single c D.int Mpisim.Op.int_sum 1)
          |> Option.map fst)
  in
  (match ok.Mpisim.Mpi.results.(0) with
  | Ok (Some 3) -> ()
  | Ok _ -> Alcotest.fail "bounded recovery should have completed over 3 survivors"
  | Error e -> raise e);
  Alcotest.(check bool) "max_attempts = 0 rejected" true
    (match
       Mpisim.Mpi.run_exn ~ranks:1 (fun raw ->
           Kamping_plugins.Ulfm.with_recovery ~max_attempts:0 (Comm.wrap raw) (fun _ -> ()))
     with
    | _ -> false
    | exception Mpisim.Errors.Usage_error _ -> true)

let test_ulfm_agree () =
  let res =
    Tutil.run_full ~ranks:4
      ~failures:[ (1.0e-6, 2) ]
      (fun raw ->
        let comm = Comm.wrap raw in
        if Comm.rank comm = 2 then begin
          Comm.compute comm 1.0;
          -1
        end
        else begin
          Comm.compute comm 20.0e-6;
          Kamping_plugins.Ulfm.agree comm (0b1110 lor Comm.rank comm)
        end)
  in
  Array.iteri
    (fun r outcome ->
      if r <> 2 then
        match outcome with
        | Ok v -> Alcotest.(check int) (Printf.sprintf "agree@%d" r) 0b1110 v
        | Error e -> raise e)
    res.Mpisim.Mpi.results

let suite =
  [
    Alcotest.test_case "nbx: ring pattern" `Quick test_sparse_basic;
    Alcotest.test_case "nbx: empty round terminates" `Quick test_sparse_no_messages;
    Alcotest.test_case "nbx: skewed all-to-one" `Quick test_sparse_skewed;
    Alcotest.test_case "nbx: equals alltoallv transport" `Quick test_sparse_matches_alltoallv;
    Alcotest.test_case "nbx: messages scale with partners" `Quick
      test_sparse_message_count_scales_with_partners;
    Alcotest.test_case "grid: equals alltoallv transport" `Quick test_grid_matches_alltoallv;
    Alcotest.test_case "grid: shape" `Quick test_grid_shape;
    Alcotest.test_case "grid: reusable across rounds" `Quick test_grid_reuse;
    Alcotest.test_case "hypergrid: equals alltoallv transport" `Quick test_hypergrid_matches_alltoallv;
    Alcotest.test_case "hypergrid: partner budget shrinks with d" `Quick test_hypergrid_fewer_partners;
    Alcotest.test_case "hypergrid: dims validation" `Quick test_hypergrid_bad_dims;
    Alcotest.test_case "repro reduce: bitwise equal across p" `Quick test_repro_reduce_correct;
    Alcotest.test_case "repro reduce: empty/uneven ranks" `Quick test_repro_reduce_uneven_and_empty;
    Alcotest.test_case "repro reduce: naive diverges, plugin does not" `Quick
      test_repro_vs_naive_divergence;
    Alcotest.test_case "repro reduce: arbitrary op" `Quick test_repro_reduce_int_ops;
    prop_repro_reduce;
    Alcotest.test_case "sorter: sample sort" `Quick test_sorter_basic;
    Alcotest.test_case "sorter: single rank" `Quick test_sorter_single_rank;
    Alcotest.test_case "sorter: custom order" `Quick test_sorter_custom_order;
    prop_sorter;
    Alcotest.test_case "ulfm: failure detection" `Quick test_ulfm_failure_detected;
    Alcotest.test_case "ulfm: Fig. 12 revoke+shrink recovery" `Quick test_ulfm_fig12_recovery;
    Alcotest.test_case "ulfm: with_recovery combinator" `Quick test_ulfm_with_recovery_combinator;
    Alcotest.test_case "ulfm: max_attempts exhaustion" `Quick test_ulfm_max_attempts_exhausted;
    Alcotest.test_case "ulfm: agreement" `Quick test_ulfm_agree;
  ]
