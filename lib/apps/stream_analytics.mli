(** Streaming windowed analytics over the message aggregator.

    Deterministic per-shard event streams (key/value pairs hashed from
    the seed) are routed by key to owner shards through
    {!Kamping_plugins.Aggregator} — batched by threshold, with a
    time-based {!Kamping_plugins.Aggregator.flush} bounding latency —
    and folded into tumbling windows.  Each window closes with NBX
    termination ([finish]), computes per-shard top-k candidates and
    count-distinct, and merges them globally (sorted by shard), so every
    rank holds the same window results and the whole pipeline is
    integral: independent of rank count and schedule, and equal to the
    sequential {!reference}.

    {!resilient} runs the same pipeline under {!Ckpt.run_resilient}:
    window results and the stream position are the per-shard registered
    state, checkpointed at window boundaries; a mid-window failure
    replays the window from its deterministic source streams and
    recovers bit-identically. *)

type cfg = {
  n_shards : int;  (** virtual shards (sources and owners) *)
  windows : int;  (** number of tumbling windows *)
  events_per_shard : int;  (** events per source shard per window *)
  n_keys : int;  (** key space, <= 65536 *)
  n_values : int;  (** value space, <= 65536 *)
  topk : int;
  threshold : int;  (** aggregator block threshold *)
  flush_every : float;  (** simulated seconds between time-based flushes *)
  seed : int;
}

type window_result = {
  top : (int * int) list;  (** (key, count), count desc then key asc *)
  distinct : int;  (** distinct values across the window *)
}

(** [run kc cfg] processes all windows and returns the per-window
    results (identical on every rank).  Collective. *)
val run : Kamping.Comm.t -> cfg -> window_result array

(** [resilient ?policy ?failure_rate ?max_attempts kc cfg] is the
    checkpointed variant; survivors adopt orphaned shards and the
    result is bitwise equal to a failure-free {!run}. *)
val resilient :
  ?policy:Ckpt.Schedule.policy ->
  ?failure_rate:float ->
  ?max_attempts:int ->
  Kamping.Comm.t ->
  cfg ->
  window_result array

(** [reference cfg] is the sequential host-side oracle. *)
val reference : cfg -> window_result array
