(* Checkpointed PageRank: the Pagerank push iteration run over virtual
   shards, with the same fixed floating-point order (tree-reduced
   dangling mass over global indices, contributions in ascending
   source-vertex order) so recovery is bit-identical to the
   failure-free run — and to Pagerank.run and Pagerank.reference. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec
module G = Graphgen.Distgraph
module R = Kamping_plugins.Reproducible_reduce

type shard_state = { mutable pr : float array; mutable it : int }

let state_codec =
  Serde.Codec.(
    conv ~name:"pagerank_shard"
      (fun s -> (s.pr, s.it))
      (fun (pr, it) -> { pr; it })
      (pair (array float) int))

let msg_codec = Serde.Codec.(list (triple int int (list (pair int float))))
let dang_codec = Serde.Codec.(list (pair int (array float)))

let run ?policy ?failure_rate ?max_attempts comm ~family ~n_shards ~global_n ~avg_degree ~seed
    ~alpha ~iters =
  let data : (int, shard_state) Hashtbl.t = Hashtbl.create 8 in
  let registry = Ckpt.Registry.create () in
  Ckpt.register registry ~name:"pagerank" state_codec
    ~save:(fun ~shard -> Hashtbl.find data shard)
    ~restore:(fun ~shard d -> Hashtbl.replace data shard d);
  Ckpt.run_resilient ?policy ?failure_rate ?max_attempts ~registry ~n_shards comm
    (fun ctx ~restored ->
      let kc = Ckpt.comm ctx in
      let me = K.rank kc and p = K.size kc in
      let shards = Ckpt.shards ctx in
      let graphs =
        List.map
          (fun s ->
            ( s,
              Graphgen.Generators.generate family ~rank:s ~comm_size:n_shards ~global_n
                ~avg_degree ~seed ))
          shards
      in
      if not restored then begin
        Hashtbl.reset data;
        List.iter
          (fun (s, g) ->
            Hashtbl.replace data s
              { pr = Array.make g.G.local_n (1.0 /. float_of_int global_n); it = 0 })
          graphs
      end;
      Ckpt.establish ctx;
      let running = ref true in
      while !running do
        let local =
          List.fold_left (fun m s -> max m (Hashtbl.find data s).it) min_int shards
        in
        let it = K.allreduce_single kc D.int Mpisim.Op.int_max local in
        if it >= iters then running := false
        else begin
          (* dangling mass: everyone assembles the full per-vertex
             contribution vector and folds the reproducible tree over
             the global indices — the same additions Pagerank.run's
             plugin reduce performs *)
          let mine =
            List.map
              (fun (s, g) ->
                let st = Hashtbl.find data s in
                ( s,
                  Array.init g.G.local_n (fun i ->
                      if G.degree g i = 0 then Pagerank.dangling_weight ~alpha st.pr.(i) else 0.0)
                ))
              graphs
          in
          let all = K.allgather_serialized kc dang_codec mine in
          let full = Array.make global_n 0.0 in
          Array.iter
            (List.iter (fun (s, contribs) ->
                 let first, _ = G.block_range ~global_n ~comm_size:n_shards s in
                 Array.blit contribs 0 full first (Array.length contribs)))
            all;
          let dangling = R.local_tree_reduce ( +. ) (fun u -> full.(u)) 0 global_n in
          let base = Pagerank.base_score ~alpha ~n:global_n ~dangling in
          (* push contributions between shards, routed via owner ranks *)
          let inbox : (int, (int * (int * float) list) list ref) Hashtbl.t = Hashtbl.create 8 in
          let inbox_for ds =
            match Hashtbl.find_opt inbox ds with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add inbox ds r;
                r
          in
          let outgoing = Array.make p [] in
          List.iter
            (fun (s, g) ->
              let st = Hashtbl.find data s in
              let buckets : (int, (int * float) V.t) Hashtbl.t = Hashtbl.create 8 in
              let bucket ds =
                match Hashtbl.find_opt buckets ds with
                | Some v -> v
                | None ->
                    let v = V.create () in
                    Hashtbl.add buckets ds v;
                    v
              in
              for i = 0 to g.G.local_n - 1 do
                let deg = G.degree g i in
                if deg > 0 then begin
                  let c = Pagerank.push_weight ~alpha st.pr.(i) deg in
                  G.iter_neighbors g i (fun v -> V.push (bucket (G.owner g v)) (v, c))
                end
              done;
              Hashtbl.iter
                (fun ds pairs ->
                  let owner = Ckpt.owner_of ctx ds in
                  if owner = me then inbox_for ds := (s, V.to_list pairs) :: !(inbox_for ds)
                  else outgoing.(owner) <- (s, ds, V.to_list pairs) :: outgoing.(owner))
                buckets)
            graphs;
          let received = K.alltoallv_serialized kc msg_codec outgoing in
          Array.iter
            (List.iter (fun (s, ds, pairs) -> inbox_for ds := (s, pairs) :: !(inbox_for ds)))
            received;
          List.iter
            (fun (s, g) ->
              let st = Hashtbl.find data s in
              let first = g.G.first_vertex in
              let next = Array.make g.G.local_n base in
              let streams =
                match Hashtbl.find_opt inbox s with
                | Some r -> List.sort (fun (a, _) (b, _) -> compare a b) !r
                | None -> []
              in
              List.iter
                (fun (_, pairs) ->
                  List.iter (fun (v, c) -> next.(v - first) <- next.(v - first) +. c) pairs)
                streams;
              st.pr <- next;
              st.it <- it + 1)
            graphs;
          Ckpt.maybe_checkpoint ctx
        end
      done;
      List.map (fun (s, _) -> (s, (Hashtbl.find data s).pr)) graphs)
