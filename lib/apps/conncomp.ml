(* Weakly connected components: symmetrize the edge set once, then
   propagate minimum labels to a fixpoint.  All arithmetic is integral
   and min-idempotent, so every variant and rank count agrees. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec
module G = Graphgen.Distgraph

let dt_pair = D.pair D.int D.int

(* Undirected adjacency: local out-edges plus the reversals received
   from the ranks owning our in-neighbors. *)
let build_adjacency ex variant (graph : G.t) =
  let local_n = graph.G.local_n in
  let adj = Array.init local_n (fun _ -> V.create ()) in
  let buckets : (int, (int * int) V.t) Hashtbl.t = Hashtbl.create 8 in
  let bucket dst =
    match Hashtbl.find_opt buckets dst with
    | Some v -> v
    | None ->
        let v = V.create () in
        Hashtbl.add buckets dst v;
        v
  in
  for i = 0 to local_n - 1 do
    let u = G.global_of_local graph i in
    G.iter_neighbors graph i (fun v ->
        V.push adj.(i) v;
        V.push (bucket (G.owner graph v)) (v, u))
  done;
  let messages = Hashtbl.fold (fun dst v acc -> (dst, v) :: acc) buckets [] in
  let received = Gexchange.exchange ex variant dt_pair ~messages in
  List.iter
    (fun (_, payload) ->
      V.iter (fun (v, u) -> V.push adj.(v - graph.G.first_vertex) u) payload)
    received;
  adj

let run ?(variant = Gexchange.Sparse) kc (graph : G.t) =
  if graph.G.comm_size <> K.size kc then
    Mpisim.Errors.usage "Conncomp.run: graph built for %d ranks, communicator has %d"
      graph.G.comm_size (K.size kc);
  let local_n = graph.G.local_n and first = graph.G.first_vertex in
  let ex = Gexchange.create kc ~partners:(G.rank_partners graph) in
  let adj = build_adjacency ex variant graph in
  let labels = Array.init local_n (fun i -> first + i) in
  let any_changed = ref true in
  while !any_changed do
    let changed = ref false in
    let buckets : (int, (int * int) V.t) Hashtbl.t = Hashtbl.create 8 in
    let bucket dst =
      match Hashtbl.find_opt buckets dst with
      | Some v -> v
      | None ->
          let v = V.create () in
          Hashtbl.add buckets dst v;
          v
    in
    for i = 0 to local_n - 1 do
      let lbl = labels.(i) in
      V.iter (fun v -> V.push (bucket (G.owner graph v)) (v, lbl)) adj.(i)
    done;
    let messages = Hashtbl.fold (fun dst v acc -> (dst, v) :: acc) buckets [] in
    let received = Gexchange.exchange ex variant dt_pair ~messages in
    List.iter
      (fun (_, payload) ->
        V.iter
          (fun (v, lbl) ->
            let i = v - first in
            if lbl < labels.(i) then begin
              labels.(i) <- lbl;
              changed := true
            end)
          payload)
      received;
    any_changed := K.allreduce_single kc D.bool Mpisim.Op.bool_or !changed
  done;
  labels

let reference family ~global_n ~avg_degree ~seed =
  let g = Graphgen.Generators.generate family ~rank:0 ~comm_size:1 ~global_n ~avg_degree ~seed in
  let parent = Array.init global_n (fun i -> i) in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(max ra rb) <- min ra rb
  in
  for u = 0 to global_n - 1 do
    G.iter_neighbors g u (fun v -> union u v)
  done;
  Array.init global_n (fun u -> find u)
