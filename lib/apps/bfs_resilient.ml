(* Restartable BFS: the Fig. 9 level loop run over checkpointed virtual
   shards.  Every shard behaves exactly like one rank of a plain
   [n_shards]-rank BFS (the graph generators are rank-count independent),
   so survivors adopting orphaned shards reproduce the reference output
   bit for bit. *)

module V = Ds.Vec
module K = Kamping.Comm
module D = Mpisim.Datatype

type shard_data = { dist : int array; mutable frontier : int V.t; mutable level : int }

let data_codec =
  Serde.Codec.(
    conv ~name:"bfs_shard"
      (fun d -> (d.dist, d.frontier, d.level))
      (fun (dist, frontier, level) -> { dist; frontier; level })
      (triple (array int) (vec int) int))

(* Route one level's remote candidates between shards: locally owned
   destination shards are delivered directly, the rest ride one serialized
   message per destination rank. *)
let exchange ctx kc expansions =
  let me = K.rank kc and p = K.size kc in
  let inbox : (int, int V.t) Hashtbl.t = Hashtbl.create 8 in
  let inbox_for s =
    match Hashtbl.find_opt inbox s with
    | Some v -> v
    | None ->
        let v = V.create () in
        Hashtbl.add inbox s v;
        v
  in
  let outgoing = Array.make p [] in
  List.iter
    (fun (_, _, _, remote) ->
      Hashtbl.iter
        (fun dshard v ->
          let owner = Ckpt.owner_of ctx dshard in
          if owner = me then V.append (inbox_for dshard) v
          else outgoing.(owner) <- (dshard, V.to_list v) :: outgoing.(owner))
        remote)
    expansions;
  let messages =
    Array.map (List.sort (fun (a, _) (b, _) -> compare a b)) outgoing
  in
  let received =
    K.alltoallv_serialized kc Serde.Codec.(list (pair int (list int))) messages
  in
  Array.iter
    (List.iter (fun (dshard, ids) ->
         let v = inbox_for dshard in
         List.iter (V.push v) ids))
    received;
  inbox

let run ?policy ?failure_rate ?max_attempts ?(on_complete = fun (_ : Ckpt.ctx) -> ()) comm
    ~family ~n_shards ~global_n ~avg_degree ~seed ~src =
  let data : (int, shard_data) Hashtbl.t = Hashtbl.create 8 in
  let registry = Ckpt.Registry.create () in
  Ckpt.register registry ~name:"bfs" data_codec
    ~save:(fun ~shard -> Hashtbl.find data shard)
    ~restore:(fun ~shard d -> Hashtbl.replace data shard d);
  Ckpt.run_resilient ?policy ?failure_rate ?max_attempts ~registry ~n_shards comm
    (fun ctx ~restored ->
      let kc = Ckpt.comm ctx in
      let raw = K.raw kc in
      let shards = Ckpt.shards ctx in
      (* Derived structure, rebuilt every attempt: each owned shard's slice
         of the (deterministic, rank-count-independent) graph. *)
      let graphs =
        List.map
          (fun s ->
            ( s,
              Graphgen.Generators.generate family ~rank:s ~comm_size:n_shards ~global_n
                ~avg_degree ~seed ))
          shards
      in
      if not restored then begin
        Hashtbl.reset data;
        List.iter
          (fun (s, g) ->
            let st = Bfs_common.init raw g src in
            Hashtbl.replace data s
              { dist = st.Bfs_common.dist; frontier = st.Bfs_common.frontier; level = 0 })
          graphs
      end;
      Ckpt.establish ctx;
      let finished = ref false in
      while not !finished do
        let empty =
          List.for_all (fun (s, _) -> V.is_empty (Hashtbl.find data s).frontier) graphs
        in
        if K.allreduce_single kc D.bool Mpisim.Op.bool_and empty then finished := true
        else begin
          let expansions =
            List.map
              (fun (s, g) ->
                let d = Hashtbl.find data s in
                let st =
                  {
                    Bfs_common.comm = raw;
                    graph = g;
                    dist = d.dist;
                    frontier = d.frontier;
                    level = d.level;
                  }
                in
                let next_local, remote = Bfs_common.expand st in
                (d, st, next_local, remote))
              graphs
          in
          let inbox = exchange ctx kc expansions in
          List.iter
            (fun ((s, _), (d, st, next_local, _)) ->
              let received =
                match Hashtbl.find_opt inbox s with Some v -> v | None -> V.create ()
              in
              Bfs_common.absorb st next_local received;
              d.frontier <- st.Bfs_common.frontier;
              d.level <- st.Bfs_common.level)
            (List.combine graphs expansions);
          Ckpt.maybe_checkpoint ctx
        end
      done;
      on_complete ctx;
      List.map (fun (s, _) -> (s, (Hashtbl.find data s).dist)) graphs)
