(** Variant-dispatched sparse message exchange for the graph workloads.

    The Fig. 10 communication regimes as one interchangeable primitive:
    the same [(destination rank, payload)] buckets can travel through the
    NBX-based sparse all-to-all plugin, a dense tuned [alltoallv], or
    MPI-3 neighborhood collectives over a static topology — and every
    variant hands back the {e bit-identical} [(source, payload)] stream,
    sorted by source, so the applications differential-test the whole
    transport axis for free.

    Messages addressed to the caller's own rank never touch the wire:
    they are spliced into the result at their sorted position, which
    keeps the delivered stream independent of the variant (NBX has no
    self-channel, [alltoallv] does). *)

type variant = Sparse | Dense | Neighbor

val variant_name : variant -> string
val all_variants : variant list

type t

(** [create kc ~partners] declares the static communication pattern:
    this rank may exchange with [partners] (own rank entries are
    ignored).  Collective — the partner relation is symmetrized with an
    all-to-all of flags so the neighborhood topology is consistent even
    for directed edge sets.  The MPI-3 topology is built once, here
    (rebuilding it per exchange is exactly what Sec. V-A argues does not
    scale). *)
val create : Kamping.Comm.t -> partners:int array -> t

(** [partners t] is the symmetrized partner set, ascending, without the
    own rank. *)
val partners : t -> int array

(** [exchange t variant dt ~messages] routes each [(dst, payload)]
    bucket and returns the received [(src, payload)] pairs sorted by
    source, empty payloads dropped — the same list for every variant.
    Collective over the communicator of [create].
    @raise Mpisim.Errors.Usage_error when a non-empty bucket addresses a
    rank outside the declared partner set (plus self). *)
val exchange :
  t -> variant -> 'a Mpisim.Datatype.t -> messages:(int * 'a Ds.Vec.t) list -> (int * 'a Ds.Vec.t) list
