(** Distributed PageRank over block-distributed CSR graphs.

    Push-style power iteration: each vertex sends
    [alpha * pr(u) / deg(u)] along its out-edges through a {!Gexchange}
    variant; dangling mass is folded with the reproducible-reduction
    plugin (fixed binary tree over the global vertex indices), and
    contributions are applied in ascending source-vertex order — so the
    result is {e bitwise identical} for every rank count, every exchange
    variant, and every schedule, and equals the host-side {!reference}
    bit for bit. *)

(** The shared scalar kernels, exposed so the resilient variant and the
    reference perform the exact same operations in the same order. *)

val base_score : alpha:float -> n:int -> dangling:float -> float
val push_weight : alpha:float -> float -> int -> float
val dangling_weight : alpha:float -> float -> float

(** [run ?variant kc graph ~alpha ~iters] returns this rank's block of
    the score vector after [iters] power iterations (damping [alpha],
    uniform teleport).  Collective; [graph.comm_size] must equal the
    communicator size. *)
val run :
  ?variant:Gexchange.variant ->
  Kamping.Comm.t ->
  Graphgen.Distgraph.t ->
  alpha:float ->
  iters:int ->
  float array

(** [reference family ~global_n ~avg_degree ~seed ~alpha ~iters] is the
    sequential host-side oracle: the full score vector, computed without
    any communicator, bitwise equal to the concatenated {!run} blocks. *)
val reference :
  Graphgen.Generators.family ->
  global_n:int ->
  avg_degree:int ->
  seed:int ->
  alpha:float ->
  iters:int ->
  float array
