(* CG over Cart halo exchange.  The floating-point story mirrors
   Pagerank: every reduction order is fixed (per-block partial dots in
   local row-major order, combined over the rank index with the
   reproducible tree), and the stencil arithmetic is a shared kernel, so
   p2p, persistent and RMA transports — and the sequential reference —
   agree bit for bit. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module P = Mpisim.P2p
module G = Graphgen.Distgraph

type transport = P2p | Persistent | Rma

let transport_name = function P2p -> "p2p" | Persistent -> "persistent" | Rma -> "rma"
let all_transports = [ P2p; Persistent; Rma ]

type result = { x : float array; rr : float; gi0 : int; gj0 : int; lx : int; ly : int }

(* Right-hand side hashed from the global cell index: deterministic,
   communication-free, in [-1, 1). *)
let b_at ~seed gi gj ~ny =
  let h = Simnet.Rng.hash64 (Int64.of_int ((((gi * ny) + gj + 1) * 2654435761) + seed)) in
  (Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0 *. 2.0) -. 1.0

(* --- shared scalar kernels (used verbatim by the reference) --- *)

(* 5-point Laplacian on one block, ghosts supplying the outside layer. *)
let apply_block ~lx ~ly ~gn ~gs ~gw ~ge src dst =
  for i = 0 to lx - 1 do
    for j = 0 to ly - 1 do
      let c = src.((i * ly) + j) in
      let up = if i > 0 then src.(((i - 1) * ly) + j) else gn.(j) in
      let dn = if i < lx - 1 then src.(((i + 1) * ly) + j) else gs.(j) in
      let lf = if j > 0 then src.((i * ly) + j - 1) else gw.(i) in
      let rt = if j < ly - 1 then src.((i * ly) + j + 1) else ge.(i) in
      dst.((i * ly) + j) <- (4.0 *. c) -. up -. dn -. lf -. rt
    done
  done

let partial_dot a b len =
  let s = ref 0.0 in
  for k = 0 to len - 1 do
    s := !s +. (a.(k) *. b.(k))
  done;
  !s

let combine_partials parts =
  Kamping_plugins.Reproducible_reduce.local_tree_reduce ( +. )
    (fun r -> parts.(r))
    0 (Array.length parts)

let axpy dst alpha src len =
  for k = 0 to len - 1 do
    dst.(k) <- dst.(k) +. (alpha *. src.(k))
  done

let update_p p_ r beta len =
  for k = 0 to len - 1 do
    p_.(k) <- r.(k) +. (beta *. p_.(k))
  done

let check_geometry ~dims ~nx ~ny p =
  if Array.length dims <> 2 then Mpisim.Errors.usage "Cg_stencil: dims must be 2-dimensional";
  let px = dims.(0) and py = dims.(1) in
  if px * py <> p then
    Mpisim.Errors.usage "Cg_stencil: dims %dx%d do not cover %d ranks" px py p;
  if nx < px || ny < py then
    Mpisim.Errors.usage "Cg_stencil: grid %dx%d smaller than process grid %dx%d" nx ny px py

(* --- halo transports ---------------------------------------------- *)

(* Staging and ghost layers around one block.  [exchange src] refreshes
   the four ghost arrays from the neighbors' boundary layers of [src];
   physical-boundary ghosts stay 0 (Dirichlet). *)
type halo = { gn : float array; gs : float array; gw : float array; ge : float array;
              exchange : float array -> unit; free : unit -> unit }

let fill_staging ~lx ~ly ~sn ~ss ~sw ~se src =
  for j = 0 to ly - 1 do
    sn.(j) <- src.(j);
    ss.(j) <- src.(((lx - 1) * ly) + j)
  done;
  for i = 0 to lx - 1 do
    sw.(i) <- src.(i * ly);
    se.(i) <- src.((i * ly) + ly - 1)
  done

let make_halo transport cart ~lx ~ly =
  let raw = Mpisim.Cart.comm cart in
  let gn = Array.make ly 0.0 and gs = Array.make ly 0.0 in
  let gw = Array.make lx 0.0 and ge = Array.make lx 0.0 in
  let sn = Array.make ly 0.0 and ss = Array.make ly 0.0 in
  let sw = Array.make lx 0.0 and se = Array.make lx 0.0 in
  let stage src = fill_staging ~lx ~ly ~sn ~ss ~sw ~se src in
  match transport with
  | P2p ->
      let exchange src =
        stage src;
        ignore
          (Mpisim.Cart.halo_exchange cart D.float ~dim:0 ~send_low:sn ~send_high:ss ~recv_low:gn
             ~recv_high:gs);
        ignore
          (Mpisim.Cart.halo_exchange cart D.float ~dim:1 ~send_low:sw ~send_high:se ~recv_low:gw
             ~recv_high:ge)
      in
      { gn; gs; gw; ge; exchange; free = (fun () -> ()) }
  | Persistent ->
      (* Standing channels, one per populated direction; tags name the
         direction of travel (901 north, 902 south, 903 west, 904 east). *)
      let up, down = Mpisim.Cart.shift cart ~dim:0 ~disp:1 in
      let left, right = Mpisim.Cart.shift cart ~dim:1 ~disp:1 in
      let handles = ref [] in
      let add h = handles := h :: !handles in
      (match up with
      | Some u ->
          add (P.send_init raw D.float sn ~dst:u ~tag:901);
          add (P.recv_init raw D.float gn ~src:u ~tag:902)
      | None -> ());
      (match down with
      | Some d ->
          add (P.send_init raw D.float ss ~dst:d ~tag:902);
          add (P.recv_init raw D.float gs ~src:d ~tag:901)
      | None -> ());
      (match left with
      | Some l ->
          add (P.send_init raw D.float sw ~dst:l ~tag:903);
          add (P.recv_init raw D.float gw ~src:l ~tag:904)
      | None -> ());
      (match right with
      | Some r ->
          add (P.send_init raw D.float se ~dst:r ~tag:904);
          add (P.recv_init raw D.float ge ~src:r ~tag:903)
      | None -> ());
      let handles = List.rev !handles in
      let exchange src =
        stage src;
        Mpisim.Persist.startall handles;
        List.iter (fun h -> ignore (Mpisim.Persist.wait h)) handles
      in
      { gn; gs; gw; ge; exchange; free = (fun () -> List.iter Mpisim.Persist.free handles) }
  | Rma ->
      (* One window holding the four ghost slots; neighbors put their
         boundary layers straight into place, one fence per exchange. *)
      let up, down = Mpisim.Cart.shift cart ~dim:0 ~disp:1 in
      let left, right = Mpisim.Cart.shift cart ~dim:1 ~disp:1 in
      let win_arr = Array.make ((2 * ly) + (2 * lx)) 0.0 in
      let win = Mpisim.Win.create raw D.float win_arr in
      let exchange src =
        stage src;
        (* my north boundary is the south ghost of the rank above, etc. *)
        (match up with Some u -> Mpisim.Win.put win ~target:u ~target_pos:ly sn | None -> ());
        (match down with Some d -> Mpisim.Win.put win ~target:d ~target_pos:0 ss | None -> ());
        (match left with
        | Some l -> Mpisim.Win.put win ~target:l ~target_pos:((2 * ly) + lx) sw
        | None -> ());
        (match right with
        | Some r -> Mpisim.Win.put win ~target:r ~target_pos:(2 * ly) se
        | None -> ());
        Mpisim.Win.fence win;
        Array.blit win_arr 0 gn 0 ly;
        Array.blit win_arr ly gs 0 ly;
        Array.blit win_arr (2 * ly) gw 0 lx;
        Array.blit win_arr ((2 * ly) + lx) ge 0 lx
      in
      let free () =
        Mpisim.Win.fence win;
        Mpisim.Win.free win
      in
      { gn; gs; gw; ge; exchange; free }

(* --- the solver ---------------------------------------------------- *)

let solve ?(transport = P2p) kc ~dims ~nx ~ny ~iters ~seed =
  let p = K.size kc in
  check_geometry ~dims ~nx ~ny p;
  let px = dims.(0) and py = dims.(1) in
  let cart = Mpisim.Cart.create (K.raw kc) ~dims ~periodic:[| false; false |] in
  let coords = Mpisim.Cart.coords cart (K.rank kc) in
  let gi0, lx = G.block_range ~global_n:nx ~comm_size:px coords.(0) in
  let gj0, ly = G.block_range ~global_n:ny ~comm_size:py coords.(1) in
  let len = lx * ly in
  let b = Array.init len (fun k -> b_at ~seed (gi0 + (k / ly)) (gj0 + (k mod ly)) ~ny) in
  let x = Array.make len 0.0 in
  let r = Array.copy b in
  let p_ = Array.copy b in
  let q = Array.make len 0.0 in
  let halo = make_halo transport cart ~lx ~ly in
  let dot a bv =
    let parts = K.allgather_serialized kc Serde.Codec.float (partial_dot a bv len) in
    combine_partials parts
  in
  let rr = ref (dot r r) in
  for _ = 1 to iters do
    halo.exchange p_;
    apply_block ~lx ~ly ~gn:halo.gn ~gs:halo.gs ~gw:halo.gw ~ge:halo.ge p_ q;
    let pq = dot p_ q in
    let alpha = if pq = 0.0 then 0.0 else !rr /. pq in
    axpy x alpha p_ len;
    axpy r (-.alpha) q len;
    let rr' = dot r r in
    let beta = if !rr = 0.0 then 0.0 else rr' /. !rr in
    update_p p_ r beta len;
    rr := rr'
  done;
  halo.free ();
  { x; rr = !rr; gi0; gj0; lx; ly }

(* --- the host-side oracle ------------------------------------------ *)

let reference ~dims ~nx ~ny ~iters ~seed =
  let px = dims.(0) and py = dims.(1) in
  check_geometry ~dims ~nx ~ny (px * py);
  let len = nx * ny in
  let b = Array.init len (fun k -> b_at ~seed (k / ny) (k mod ny) ~ny) in
  let x = Array.make len 0.0 in
  let r = Array.copy b in
  let p_ = Array.copy b in
  let q = Array.make len 0.0 in
  (* per-rank partial dots in block row-major order, combined over the
     rank index — the very additions the distributed run performs *)
  let blocks =
    Array.init (px * py) (fun rank ->
        let gi0, blx = G.block_range ~global_n:nx ~comm_size:px (rank / py) in
        let gj0, bly = G.block_range ~global_n:ny ~comm_size:py (rank mod py) in
        (gi0, blx, gj0, bly))
  in
  let dot a bv =
    let parts =
      Array.map
        (fun (gi0, blx, gj0, bly) ->
          let s = ref 0.0 in
          for i = gi0 to gi0 + blx - 1 do
            for j = gj0 to gj0 + bly - 1 do
              let k = (i * ny) + j in
              s := !s +. (a.(k) *. bv.(k))
            done
          done;
          !s)
        blocks
    in
    combine_partials parts
  in
  let apply src dst =
    for i = 0 to nx - 1 do
      for j = 0 to ny - 1 do
        let k = (i * ny) + j in
        let c = src.(k) in
        let up = if i > 0 then src.(k - ny) else 0.0 in
        let dn = if i < nx - 1 then src.(k + ny) else 0.0 in
        let lf = if j > 0 then src.(k - 1) else 0.0 in
        let rt = if j < ny - 1 then src.(k + 1) else 0.0 in
        dst.(k) <- (4.0 *. c) -. up -. dn -. lf -. rt
      done
    done
  in
  let rr = ref (dot r r) in
  for _ = 1 to iters do
    apply p_ q;
    let pq = dot p_ q in
    let alpha = if pq = 0.0 then 0.0 else !rr /. pq in
    axpy x alpha p_ len;
    axpy r (-.alpha) q len;
    let rr' = dot r r in
    let beta = if !rr = 0.0 then 0.0 else rr' /. !rr in
    update_p p_ r beta len;
    rr := rr'
  done;
  (x, !rr)
