(* One primitive, three transports (paper Fig. 10): NBX sparse
   all-to-all, dense tuned alltoallv, MPI-3 neighborhood collectives.
   All variants deliver the same (source, payload) stream, sorted by
   source, with self-addressed buckets spliced in locally. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec

type variant = Sparse | Dense | Neighbor

let variant_name = function Sparse -> "sparse" | Dense -> "dense" | Neighbor -> "neighbor"
let all_variants = [ Sparse; Dense; Neighbor ]

type t = { kc : K.t; partners : int array; topo : Mpisim.Topology.t }

let create kc ~partners =
  let p = K.size kc and me = K.rank kc in
  let flags = Array.make p 0 in
  Array.iter (fun d -> if d <> me then flags.(d) <- 1) partners;
  (* symmetrize: rank i hears from rank j whether j listed i *)
  let listed_by = K.alltoall kc D.int ~send_buf:(V.of_array flags) in
  let sym = V.create () in
  for r = 0 to p - 1 do
    if r <> me && (flags.(r) = 1 || V.get listed_by r = 1) then V.push sym r
  done;
  let sym = V.to_array sym in
  let topo =
    Mpisim.Topology.dist_graph_create_adjacent (K.raw kc) ~sources:sym ~destinations:sym
  in
  { kc; partners = sym; topo }

let partners t = t.partners

(* Normalize the message list into one bucket per destination rank
   (payload order preserved), splitting off the self-addressed bucket. *)
let buckets t ~messages =
  let p = K.size t.kc and me = K.rank t.kc in
  let out : 'a V.t option array = Array.make p None in
  List.iter
    (fun (dst, v) ->
      if dst < 0 || dst >= p then Mpisim.Errors.usage "Gexchange: destination %d out of range" dst;
      if V.length v > 0 then
        match out.(dst) with
        | Some b -> V.append b v
        | None -> out.(dst) <- Some (V.copy v))
    messages;
  Array.iteri
    (fun dst b ->
      match b with
      | Some _ when dst <> me && not (Array.exists (fun x -> x = dst) t.partners) ->
          Mpisim.Errors.usage "Gexchange: message crosses an undeclared edge to rank %d" dst
      | _ -> ())
    out;
  let self = out.(me) in
  out.(me) <- None;
  (out, self)

(* Splice the self bucket into the received stream at its sorted spot. *)
let deliver t ~self received =
  let me = K.rank t.kc in
  let received = List.filter (fun (_, v) -> V.length v > 0) received in
  match self with
  | None -> received
  | Some v ->
      let rec ins = function
        | (src, _) :: _ as rest when src > me -> (me, v) :: rest
        | pair :: rest -> pair :: ins rest
        | [] -> [ (me, v) ]
      in
      ins received

let exchange_sparse t dt out =
  let messages = ref [] in
  for dst = K.size t.kc - 1 downto 0 do
    match out.(dst) with Some v -> messages := (dst, v) :: !messages | None -> ()
  done;
  Kamping_plugins.Sparse_alltoall.exchange t.kc dt ~messages:!messages

let exchange_dense t dt out =
  let p = K.size t.kc in
  let send_counts = Array.make p 0 in
  let send_buf = V.create () in
  Array.iteri
    (fun dst b ->
      match b with
      | Some v ->
          send_counts.(dst) <- V.length v;
          V.append send_buf v
      | None -> ())
    out;
  let res = K.alltoallv ~recv_counts_out:true t.kc dt ~send_buf ~send_counts in
  let rcounts = match res.K.recv_counts with Some c -> c | None -> assert false in
  let received = ref [] and pos = ref 0 in
  for src = 0 to p - 1 do
    if rcounts.(src) > 0 then received := (src, V.sub res.K.recv_buf !pos rcounts.(src)) :: !received;
    pos := !pos + rcounts.(src)
  done;
  List.rev !received

let exchange_neighbor t dt out =
  let degree = Array.length t.partners in
  let scounts = Array.make degree 0 in
  let sendbuf = V.create () in
  Array.iteri
    (fun i dst ->
      match out.(dst) with
      | Some v ->
          scounts.(i) <- V.length v;
          V.append sendbuf v
      | None -> ())
    t.partners;
  let sdispls = Ss_common.exclusive_scan scounts in
  let rcounts = Array.make degree 0 in
  Mpisim.Topology.neighbor_alltoall t.topo D.int ~sendbuf:scounts ~recvbuf:rcounts ~count:1;
  let rdispls = Ss_common.exclusive_scan rcounts in
  let total = if degree = 0 then 0 else rdispls.(degree - 1) + rcounts.(degree - 1) in
  let recvbuf =
    if total = 0 then [||]
    else
      let sample =
        match D.default_elt dt with
        | Some x -> x
        | None when V.length sendbuf > 0 -> V.get sendbuf 0
        | None -> Mpisim.Errors.usage "Gexchange: datatype needs a default element"
      in
      Array.make total sample
  in
  Mpisim.Topology.neighbor_alltoallv t.topo dt ~sendbuf:(V.unsafe_data sendbuf) ~scounts ~sdispls
    ~recvbuf ~rcounts ~rdispls;
  (* partners are ascending, so the per-partner slices come out sorted *)
  let received = ref [] in
  for i = degree - 1 downto 0 do
    if rcounts.(i) > 0 then
      received := (t.partners.(i), V.sub (V.unsafe_of_array recvbuf total) rdispls.(i) rcounts.(i)) :: !received
  done;
  !received

let exchange t variant dt ~messages =
  let out, self = buckets t ~messages in
  let received =
    match variant with
    | Sparse -> exchange_sparse t dt out
    | Dense -> exchange_dense t dt out
    | Neighbor -> exchange_neighbor t dt out
  in
  deliver t ~self received
