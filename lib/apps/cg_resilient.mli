(** Restartable CG over checkpointed virtual shards.

    The grid is row-blocked over [n_shards] virtual ranks (full width
    per shard), halo rows travel between owner ranks, and both dot
    products fold the per-shard partials with the reproducible tree over
    the shard index — exactly the additions of
    [Cg_stencil.solve ~dims:[|n_shards; 1|]] on [n_shards] ranks, so a
    recovered run is bit-identical to that failure-free one. *)

(** [run ?policy ?failure_rate ?max_attempts comm ~n_shards ~nx ~ny
    ~iters ~seed] returns the surviving rank's [(shard, x block)] list
    and the final global squared residual. *)
val run :
  ?policy:Ckpt.Schedule.policy ->
  ?failure_rate:float ->
  ?max_attempts:int ->
  Kamping.Comm.t ->
  n_shards:int ->
  nx:int ->
  ny:int ->
  iters:int ->
  seed:int ->
  (int * float array) list * float
