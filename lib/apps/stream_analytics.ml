(* Tumbling-window top-k / count-distinct over the aggregator.  All
   state is integral and the merge is sorted by shard, so the window
   results are independent of rank count, schedule, transport batching
   and failures — and equal to the sequential reference. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec
module A = Kamping_plugins.Aggregator

type cfg = {
  n_shards : int;
  windows : int;
  events_per_shard : int;
  n_keys : int;
  n_values : int;
  topk : int;
  threshold : int;
  flush_every : float;
  seed : int;
}

type window_result = { top : (int * int) list; distinct : int }

let check_cfg cfg =
  if cfg.n_shards <= 0 || cfg.windows < 0 || cfg.topk <= 0 then
    Mpisim.Errors.usage "Stream_analytics: invalid shard/window/topk configuration";
  if cfg.n_keys <= 0 || cfg.n_keys > 65536 || cfg.n_values <= 0 || cfg.n_values > 65536 then
    Mpisim.Errors.usage "Stream_analytics: key and value spaces must be in 1..65536"

(* One aggregator item: (window, kind, payload) packed into an int.
   kind 0 = count item keyed by key, kind 1 = distinct item keyed by
   value. *)
let pack ~window ~kind ~payload = (((window * 2) + kind) * 65536) + payload

let unpack x =
  let payload = x mod 65536 in
  let t = x / 65536 in
  (t / 2, t land 1, payload)

let count_shard cfg key = key mod cfg.n_shards
let distinct_shard cfg v = v mod cfg.n_shards

(* The deterministic source stream of one (shard, window): independent
   of placement, so replay after a failure regenerates the same
   events. *)
let stream_rng cfg ~shard ~window =
  Simnet.Rng.split
    (Simnet.Rng.create (Int64.of_int (cfg.seed + 1)))
    ((shard * cfg.windows) + window + 1)

(* Transient per-window accumulators, indexed by owner shard. *)
type tables = { counts : (int, int) Hashtbl.t array; vals : (int, unit) Hashtbl.t array }

let make_tables cfg =
  {
    counts = Array.init cfg.n_shards (fun _ -> Hashtbl.create 16);
    vals = Array.init cfg.n_shards (fun _ -> Hashtbl.create 16);
  }

let clear_tables t =
  Array.iter Hashtbl.reset t.counts;
  Array.iter Hashtbl.reset t.vals

let handler cfg tables ~src:_ block =
  V.iter
    (fun item ->
      let _window, kind, payload = unpack item in
      if kind = 0 then begin
        let tbl = tables.counts.(count_shard cfg payload) in
        let c = match Hashtbl.find_opt tbl payload with Some c -> c | None -> 0 in
        Hashtbl.replace tbl payload (c + 1)
      end
      else Hashtbl.replace tables.vals.(distinct_shard cfg payload) payload ())
    block

let generate kc agg cfg ~owner ~shard ~window =
  let rng = stream_rng cfg ~shard ~window in
  let last_flush = ref (K.now kc) in
  for e = 1 to cfg.events_per_shard do
    let key = Simnet.Rng.int rng cfg.n_keys in
    let value = Simnet.Rng.int rng cfg.n_values in
    A.send agg ~dst:(owner (count_shard cfg key)) (pack ~window ~kind:0 ~payload:key);
    A.send agg ~dst:(owner (distinct_shard cfg value)) (pack ~window ~kind:1 ~payload:value);
    if e mod 8 = 0 then begin
      (* event arrival pacing; the time-based flush bounds batching
         latency for whatever sits below the threshold *)
      K.compute kc 2.0e-6;
      A.poll agg;
      if K.now kc -. !last_flush >= cfg.flush_every then begin
        A.flush agg;
        last_flush := K.now kc
      end
    end
  done

(* (count desc, key asc): a total order, so ties break identically
   everywhere. *)
let by_rank (k1, c1) (k2, c2) = if c1 <> c2 then compare c2 c1 else compare k1 k2

let rec take n = function [] -> [] | _ when n <= 0 -> [] | x :: tl -> x :: take (n - 1) tl

(* Per-shard candidates: any key in the global top-k is in its own
   shard's top-k (keys are partitioned), so merging candidate lists is
   lossless. *)
let shard_summary cfg tables s =
  let cands = Hashtbl.fold (fun k c acc -> (k, c) :: acc) tables.counts.(s) [] in
  (s, take cfg.topk (List.sort by_rank cands), Hashtbl.length tables.vals.(s))

let summary_codec = Serde.Codec.(list (triple int (list (pair int int)) int))

let merge cfg summaries =
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare a b) summaries in
  let cands = List.concat_map (fun (_, c, _) -> c) sorted in
  {
    top = take cfg.topk (List.sort by_rank cands);
    distinct = List.fold_left (fun acc (_, _, d) -> acc + d) 0 sorted;
  }

(* One window on an open communicator: generate, close the round with
   NBX termination, then merge the per-shard summaries globally. *)
let process_window kc agg cfg tables ~owner ~my_shards ~window =
  clear_tables tables;
  List.iter (fun s -> generate kc agg cfg ~owner ~shard:s ~window) my_shards;
  A.finish agg;
  let mine = List.map (fun s -> shard_summary cfg tables s) my_shards in
  let all = K.allgather_serialized kc summary_codec mine in
  merge cfg (List.concat (Array.to_list all))

let run kc cfg =
  check_cfg cfg;
  let p = K.size kc and me = K.rank kc in
  let owner s = s mod p in
  let my_shards =
    List.filter (fun s -> owner s = me) (List.init cfg.n_shards (fun s -> s))
  in
  let tables = make_tables cfg in
  let agg = A.create ~threshold:cfg.threshold kc D.int ~handler:(handler cfg tables) in
  let out =
    Array.init cfg.windows (fun w -> process_window kc agg cfg tables ~owner ~my_shards ~window:w)
  in
  A.close agg;
  out

(* --- resilient variant --------------------------------------------- *)

type shard_state = { mutable next_window : int; mutable results : window_result list }

let wr_codec =
  Serde.Codec.(
    conv ~name:"window_result"
      (fun r -> (r.top, r.distinct))
      (fun (top, distinct) -> { top; distinct })
      (pair (list (pair int int)) int))

let state_codec =
  Serde.Codec.(
    conv ~name:"stream_shard"
      (fun s -> (s.next_window, s.results))
      (fun (next_window, results) -> { next_window; results })
      (pair int (list wr_codec)))

let resilient ?policy ?failure_rate ?max_attempts kc cfg =
  check_cfg cfg;
  let data : (int, shard_state) Hashtbl.t = Hashtbl.create 8 in
  let registry = Ckpt.Registry.create () in
  Ckpt.register registry ~name:"stream" state_codec
    ~save:(fun ~shard -> Hashtbl.find data shard)
    ~restore:(fun ~shard d -> Hashtbl.replace data shard d);
  (* Survivor-local copy of the merged results: replayed windows
     overwrite their slot with the identical value. *)
  let acc = Array.make (max cfg.windows 1) None in
  Ckpt.run_resilient ?policy ?failure_rate ?max_attempts ~registry ~n_shards:cfg.n_shards kc
    (fun ctx ~restored ->
      let kc = Ckpt.comm ctx in
      let shards = Ckpt.shards ctx in
      if not restored then begin
        Hashtbl.reset data;
        List.iter (fun s -> Hashtbl.replace data s { next_window = 0; results = [] }) shards
      end;
      Ckpt.establish ctx;
      let tables = make_tables cfg in
      let agg = A.create ~threshold:cfg.threshold kc D.int ~handler:(handler cfg tables) in
      let owner s = Ckpt.owner_of ctx s in
      let running = ref true in
      while !running do
        let local =
          List.fold_left (fun m s -> max m (Hashtbl.find data s).next_window) min_int shards
        in
        let w = K.allreduce_single kc D.int Mpisim.Op.int_max local in
        if w >= cfg.windows then running := false
        else begin
          let res = process_window kc agg cfg tables ~owner ~my_shards:shards ~window:w in
          acc.(w) <- Some res;
          List.iter
            (fun s ->
              let st = Hashtbl.find data s in
              st.results <- take w st.results @ [ res ];
              st.next_window <- w + 1)
            shards;
          Ckpt.maybe_checkpoint ctx
        end
      done;
      A.close agg;
      Array.init cfg.windows (fun w ->
          match acc.(w) with
          | Some r -> r
          | None ->
              (* this rank never saw window w live (it cannot happen for
                 ranks alive since the start); fall back to shard state *)
              (match shards with
              | s :: _ -> List.nth (Hashtbl.find data s).results w
              | [] -> Mpisim.Errors.usage "Stream_analytics.resilient: no shard to recover window %d" w)))

let reference cfg =
  check_cfg cfg;
  Array.init cfg.windows (fun w ->
      let counts : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let vals : (int, unit) Hashtbl.t = Hashtbl.create 64 in
      for s = 0 to cfg.n_shards - 1 do
        let rng = stream_rng cfg ~shard:s ~window:w in
        for _ = 1 to cfg.events_per_shard do
          let key = Simnet.Rng.int rng cfg.n_keys in
          let value = Simnet.Rng.int rng cfg.n_values in
          let c = match Hashtbl.find_opt counts key with Some c -> c | None -> 0 in
          Hashtbl.replace counts key (c + 1);
          Hashtbl.replace vals value ()
        done
      done;
      let cands = Hashtbl.fold (fun k c a -> (k, c) :: a) counts [] in
      { top = take cfg.topk (List.sort by_rank cands); distinct = Hashtbl.length vals })
