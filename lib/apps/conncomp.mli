(** Distributed connected components by min-label propagation.

    The directed edge set is symmetrized once at setup (a reversal-edge
    exchange through the same {!Gexchange} variant used for the
    iterations), then every round each vertex offers its current label
    to all undirected neighbors until a fixpoint; a vertex ends up
    labeled with the smallest vertex id of its (weakly) connected
    component.  Min is idempotent and commutative, so the result is
    independent of rank count, exchange variant, and schedule. *)

(** [run ?variant kc graph] returns this rank's block of the label
    vector.  Collective; [graph.comm_size] must equal the communicator
    size. *)
val run :
  ?variant:Gexchange.variant -> Kamping.Comm.t -> Graphgen.Distgraph.t -> int array

(** [reference family ~global_n ~avg_degree ~seed] is the host-side
    oracle: union-find over the full edge list, labels rewritten to the
    component minimum. *)
val reference :
  Graphgen.Generators.family -> global_n:int -> avg_degree:int -> seed:int -> int array
