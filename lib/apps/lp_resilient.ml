(* Restartable label propagation: Lp_common's deterministic sweep run per
   virtual shard, with ghost labels pulled shard-to-shard through one
   serialized exchange per iteration.  The registered state is the label
   array plus the remaining-iteration count of every shard; ghosts and
   graphs are derived and rebuilt after recovery. *)

module G = Graphgen.Distgraph
module K = Kamping.Comm
module D = Mpisim.Datatype

type shard_data = { labels : int array; mutable remaining : int }

let data_codec =
  Serde.Codec.(
    conv ~name:"lp_shard"
      (fun d -> (d.labels, d.remaining))
      (fun (labels, remaining) -> { labels; remaining })
      (pair (array int) int))

(* Per-shard ghost bookkeeping, in shard (not rank) space. *)
type shard_ghosts = {
  need : (int * int array) array;  (* (owner shard, my needed ids, sorted) *)
  send_to : (int * int array) array;  (* (requester shard, my ids to ship) *)
  ghost_index : (int, int) Hashtbl.t;
  ghost_values : int array;
}

(* The static request lists: which of each other shard's vertices a shard
   needs.  The "who needs mine" direction crosses ranks once per attempt. *)
let setup_ghosts ctx kc graphs =
  let me = K.rank kc and p = K.size kc in
  let needs =
    List.map
      (fun (s, g) ->
        let wanted = Hashtbl.create 64 in
        for i = 0 to g.G.local_n - 1 do
          G.iter_neighbors g i (fun u ->
              if not (G.is_local g u) then Hashtbl.replace wanted u ())
        done;
        let by_owner = Hashtbl.create 8 in
        Hashtbl.iter
          (fun u () ->
            let o = G.owner g u in
            Hashtbl.replace by_owner o (u :: Option.value (Hashtbl.find_opt by_owner o) ~default:[]))
          wanted;
        let need =
          Hashtbl.fold (fun o ids acc -> (o, Array.of_list (List.sort compare ids)) :: acc) by_owner []
          |> List.sort (fun (a, _) (b, _) -> compare a b)
          |> Array.of_list
        in
        (s, need))
      graphs
  in
  (* Ship each request list to the rank owning the target shard. *)
  let requests : (int, (int * int list) list) Hashtbl.t = Hashtbl.create 8 in
  (* owner shard -> (requester shard, ids) received here *)
  let deliver (oshard, item) =
    Hashtbl.replace requests oshard
      (item :: Option.value (Hashtbl.find_opt requests oshard) ~default:[])
  in
  let outgoing = Array.make p [] in
  List.iter
    (fun (s, need) ->
      Array.iter
        (fun (oshard, ids) ->
          let owner = Ckpt.owner_of ctx oshard in
          let item = (oshard, (s, Array.to_list ids)) in
          if owner = me then deliver item
          else outgoing.(owner) <- item :: outgoing.(owner))
        need)
    needs;
  let messages = Array.map (List.sort compare) outgoing in
  let received =
    K.alltoallv_serialized kc
      Serde.Codec.(list (pair int (pair int (list int))))
      messages
  in
  Array.iter (List.iter deliver) received;
  List.map
    (fun (s, need) ->
      let send_to =
        Option.value (Hashtbl.find_opt requests s) ~default:[]
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.map (fun (requester, ids) -> (requester, Array.of_list ids))
        |> Array.of_list
      in
      let ghost_index = Hashtbl.create 64 in
      let slot = ref 0 in
      Array.iter
        (fun (_, ids) ->
          Array.iter
            (fun u ->
              Hashtbl.add ghost_index u !slot;
              incr slot)
            ids)
        need;
      (s, { need; send_to; ghost_index; ghost_values = Array.make (max !slot 1) (-1) }))
    needs

(* One iteration's ghost pull: owners push the requested label values back
   to the requesting shards. *)
let pull ctx kc graphs ghosts data =
  let me = K.rank kc and p = K.size kc in
  let first_vertex = List.map (fun (s, g) -> (s, g.G.first_vertex)) graphs in
  let value oshard gid =
    (Hashtbl.find data oshard).labels.(gid - List.assoc oshard first_vertex)
  in
  let fills = ref [] in
  (* (requester shard, owner shard, values) delivered to this rank *)
  let outgoing = Array.make p [] in
  List.iter
    (fun (oshard, sg) ->
      Array.iter
        (fun (requester, ids) ->
          let owner = Ckpt.owner_of ctx requester in
          let values = Array.to_list (Array.map (value oshard) ids) in
          if owner = me then fills := (requester, oshard, values) :: !fills
          else outgoing.(owner) <- (requester, oshard, values) :: outgoing.(owner))
        sg.send_to)
    ghosts;
  let messages = Array.map (List.sort compare) outgoing in
  let received =
    K.alltoallv_serialized kc Serde.Codec.(list (triple int int (list int))) messages
  in
  Array.iter (List.iter (fun item -> fills := item :: !fills)) received;
  List.iter
    (fun (requester, oshard, values) ->
      let sg = List.assoc requester ghosts in
      let ids =
        match Array.find_opt (fun (o, _) -> o = oshard) sg.need with
        | Some (_, ids) -> ids
        | None -> Mpisim.Errors.usage "lp_resilient: unexpected ghost fill %d<-%d" requester oshard
      in
      List.iteri
        (fun i v -> sg.ghost_values.(Hashtbl.find sg.ghost_index ids.(i)) <- v)
        values)
    !fills

let run ?policy ?failure_rate ?max_attempts ?(on_complete = fun (_ : Ckpt.ctx) -> ()) comm
    ~family ~n_shards ~global_n ~avg_degree ~seed ~iterations ~max_cluster_size =
  let data : (int, shard_data) Hashtbl.t = Hashtbl.create 8 in
  let registry = Ckpt.Registry.create () in
  Ckpt.register registry ~name:"lp" data_codec
    ~save:(fun ~shard -> Hashtbl.find data shard)
    ~restore:(fun ~shard d -> Hashtbl.replace data shard d);
  Ckpt.run_resilient ?policy ?failure_rate ?max_attempts ~registry ~n_shards comm
    (fun ctx ~restored ->
      let kc = Ckpt.comm ctx in
      let raw = K.raw kc in
      let shards = Ckpt.shards ctx in
      let graphs =
        List.map
          (fun s ->
            ( s,
              Graphgen.Generators.generate family ~rank:s ~comm_size:n_shards ~global_n
                ~avg_degree ~seed ))
          shards
      in
      if not restored then begin
        Hashtbl.reset data;
        List.iter
          (fun (s, g) ->
            Hashtbl.replace data s { labels = Lp_common.init_labels g; remaining = iterations })
          graphs
      end;
      let ghosts = setup_ghosts ctx kc graphs in
      Ckpt.establish ctx;
      let finished = ref false in
      while not !finished do
        let local_rem =
          List.fold_left (fun acc (s, _) -> Int.max acc (Hashtbl.find data s).remaining) 0 graphs
        in
        if K.allreduce_single kc D.int Mpisim.Op.int_max local_rem = 0 then finished := true
        else begin
          pull ctx kc graphs ghosts data;
          List.iter
            (fun (s, g) ->
              let d = Hashtbl.find data s in
              let sg = List.assoc s ghosts in
              let ghost_label u =
                match Hashtbl.find_opt sg.ghost_index u with
                | Some slot -> sg.ghost_values.(slot)
                | None -> Mpisim.Errors.usage "lp_resilient: vertex %d is not a known ghost" u
              in
              ignore (Lp_common.sweep raw g d.labels ~ghost_label ~max_cluster_size);
              d.remaining <- d.remaining - 1)
            graphs;
          Ckpt.maybe_checkpoint ctx
        end
      done;
      on_complete ctx;
      List.map (fun (s, _) -> (s, (Hashtbl.find data s).labels)) graphs)
