(* Push-style PageRank with a fixed floating-point order: dangling mass
   through the reproducible-reduction tree and contributions applied in
   ascending source-vertex order, so every rank count, exchange variant
   and schedule produces the same bits. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec
module G = Graphgen.Distgraph

let dt_contrib = D.pair D.int D.float

(* The shared scalar kernel: both the distributed run and the host
   reference must perform these exact operations in this exact order. *)
let base_score ~alpha ~n ~dangling =
  ((1.0 -. alpha) /. float_of_int n) +. (dangling /. float_of_int n)

let push_weight ~alpha score deg = alpha *. score /. float_of_int deg
let dangling_weight ~alpha score = alpha *. score

let run ?(variant = Gexchange.Sparse) kc (graph : G.t) ~alpha ~iters =
  if graph.G.comm_size <> K.size kc then
    Mpisim.Errors.usage "Pagerank.run: graph built for %d ranks, communicator has %d"
      graph.G.comm_size (K.size kc);
  let n = graph.G.global_n and local_n = graph.G.local_n in
  let first = graph.G.first_vertex in
  let ex = Gexchange.create kc ~partners:(G.rank_partners graph) in
  let pr = ref (Array.make local_n (1.0 /. float_of_int n)) in
  for _ = 1 to iters do
    let cur = !pr in
    let dangling_buf =
      V.init local_n (fun i ->
          if G.degree graph i = 0 then dangling_weight ~alpha cur.(i) else 0.0)
    in
    let dangling = Kamping_plugins.Reproducible_reduce.reduce kc D.float ( +. ) ~send_buf:dangling_buf in
    let buckets : (int, (int * float) V.t) Hashtbl.t = Hashtbl.create 8 in
    let bucket dst =
      match Hashtbl.find_opt buckets dst with
      | Some v -> v
      | None ->
          let v = V.create () in
          Hashtbl.add buckets dst v;
          v
    in
    for i = 0 to local_n - 1 do
      let deg = G.degree graph i in
      if deg > 0 then begin
        let c = push_weight ~alpha cur.(i) deg in
        G.iter_neighbors graph i (fun v -> V.push (bucket (G.owner graph v)) (v, c))
      end
    done;
    let messages = Hashtbl.fold (fun dst v acc -> (dst, v) :: acc) buckets [] in
    let received = Gexchange.exchange ex variant dt_contrib ~messages in
    let next = Array.make local_n (base_score ~alpha ~n ~dangling) in
    (* received is sorted by source rank and each payload is in ascending
       source-vertex order, so per destination the additions happen in
       global source order — the reference's order. *)
    List.iter
      (fun (_, payload) -> V.iter (fun (v, c) -> next.(v - first) <- next.(v - first) +. c) payload)
      received;
    pr := next
  done;
  !pr

let reference family ~global_n ~avg_degree ~seed ~alpha ~iters =
  let g = Graphgen.Generators.generate family ~rank:0 ~comm_size:1 ~global_n ~avg_degree ~seed in
  let n = global_n in
  let pr = ref (Array.make n (1.0 /. float_of_int n)) in
  for _ = 1 to iters do
    let cur = !pr in
    let dangling =
      Kamping_plugins.Reproducible_reduce.local_tree_reduce ( +. )
        (fun u -> if G.degree g u = 0 then dangling_weight ~alpha cur.(u) else 0.0)
        0 n
    in
    let next = Array.make n (base_score ~alpha ~n ~dangling) in
    for u = 0 to n - 1 do
      let deg = G.degree g u in
      if deg > 0 then begin
        let c = push_weight ~alpha cur.(u) deg in
        G.iter_neighbors g u (fun v -> next.(v) <- next.(v) +. c)
      end
    done;
    pr := next
  done;
  !pr
