(** Restartable PageRank over checkpointed virtual shards.

    Every shard behaves exactly like one rank of a plain
    [n_shards]-rank {!Pagerank.run}: per-shard graph slices are
    regenerated from the (rank-count independent) generators, dangling
    mass is folded over the global vertex indices with the reproducible
    tree, and contributions apply in ascending source-vertex order — so
    survivors adopting orphaned shards reproduce the failure-free (and
    the non-resilient, and the sequential-reference) scores bit for
    bit. *)

(** [run ?policy ?failure_rate ?max_attempts comm ~family ~n_shards
    ~global_n ~avg_degree ~seed ~alpha ~iters] returns the surviving
    rank's [(shard, scores)] blocks after [iters] iterations. *)
val run :
  ?policy:Ckpt.Schedule.policy ->
  ?failure_rate:float ->
  ?max_attempts:int ->
  Kamping.Comm.t ->
  family:Graphgen.Generators.family ->
  n_shards:int ->
  global_n:int ->
  avg_degree:int ->
  seed:int ->
  alpha:float ->
  iters:int ->
  (int * float array) list
