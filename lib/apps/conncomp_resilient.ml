(* Checkpointed connected components: per-shard label vectors are the
   registered state; the symmetrized adjacency is derived and rebuilt on
   every attempt with a shard-level reversal-edge exchange. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module V = Ds.Vec
module G = Graphgen.Distgraph

let rev_codec = Serde.Codec.(list (pair int (list (pair int int))))
let lbl_codec = Serde.Codec.(list (pair int (list (pair int int))))

(* Route per-destination-shard payloads through the owner ranks; the
   locally owned destinations are delivered directly. *)
let route ctx kc codec outgoing_of =
  let me = K.rank kc and p = K.size kc in
  let inbox : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  let inbox_for ds =
    match Hashtbl.find_opt inbox ds with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add inbox ds r;
        r
  in
  let outgoing = Array.make p [] in
  outgoing_of (fun ds pairs ->
      let owner = Ckpt.owner_of ctx ds in
      if owner = me then inbox_for ds := List.rev_append pairs !(inbox_for ds)
      else outgoing.(owner) <- (ds, pairs) :: outgoing.(owner));
  let received = K.alltoallv_serialized kc codec outgoing in
  Array.iter
    (List.iter (fun (ds, pairs) -> inbox_for ds := List.rev_append pairs !(inbox_for ds)))
    received;
  inbox

let run ?policy ?failure_rate ?max_attempts comm ~family ~n_shards ~global_n ~avg_degree ~seed =
  let data : (int, int array) Hashtbl.t = Hashtbl.create 8 in
  let registry = Ckpt.Registry.create () in
  Ckpt.register registry ~name:"conncomp"
    Serde.Codec.(array int)
    ~save:(fun ~shard -> Hashtbl.find data shard)
    ~restore:(fun ~shard d -> Hashtbl.replace data shard d);
  Ckpt.run_resilient ?policy ?failure_rate ?max_attempts ~registry ~n_shards comm
    (fun ctx ~restored ->
      let kc = Ckpt.comm ctx in
      let shards = Ckpt.shards ctx in
      let graphs =
        List.map
          (fun s ->
            ( s,
              Graphgen.Generators.generate family ~rank:s ~comm_size:n_shards ~global_n
                ~avg_degree ~seed ))
          shards
      in
      if not restored then begin
        Hashtbl.reset data;
        List.iter
          (fun (s, g) ->
            Hashtbl.replace data s (Array.init g.G.local_n (fun i -> g.G.first_vertex + i)))
          graphs
      end;
      Ckpt.establish ctx;
      (* derived undirected adjacency, rebuilt every attempt *)
      let adj_of = Hashtbl.create 8 in
      List.iter
        (fun (s, g) -> Hashtbl.replace adj_of s (Array.init g.G.local_n (fun _ -> V.create ())))
        graphs;
      let rev_inbox =
        route ctx kc rev_codec (fun emit ->
            List.iter
              (fun (s, g) ->
                let buckets : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 8 in
                let adj : int V.t array = Hashtbl.find adj_of s in
                for i = 0 to g.G.local_n - 1 do
                  let u = G.global_of_local g i in
                  G.iter_neighbors g i (fun v ->
                      V.push adj.(i) v;
                      let ds = G.owner g v in
                      match Hashtbl.find_opt buckets ds with
                      | Some r -> r := (v, u) :: !r
                      | None -> Hashtbl.add buckets ds (ref [ (v, u) ]))
                done;
                Hashtbl.iter (fun ds r -> emit ds !r) buckets)
              graphs)
      in
      List.iter
        (fun (s, g) ->
          let adj : int V.t array = Hashtbl.find adj_of s in
          match Hashtbl.find_opt rev_inbox s with
          | Some r -> List.iter (fun (v, u) -> V.push adj.(v - g.G.first_vertex) u) !r
          | None -> ())
        graphs;
      let any_changed = ref true in
      while !any_changed do
        let changed = ref false in
        let inbox =
          route ctx kc lbl_codec (fun emit ->
              List.iter
                (fun (s, g) ->
                  let labels = Hashtbl.find data s in
                  let adj : int V.t array = Hashtbl.find adj_of s in
                  let buckets : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 8 in
                  for i = 0 to g.G.local_n - 1 do
                    let lbl = labels.(i) in
                    V.iter
                      (fun v ->
                        let ds = G.owner g v in
                        match Hashtbl.find_opt buckets ds with
                        | Some r -> r := (v, lbl) :: !r
                        | None -> Hashtbl.add buckets ds (ref [ (v, lbl) ]))
                      adj.(i)
                  done;
                  Hashtbl.iter (fun ds r -> emit ds !r) buckets)
                graphs)
        in
        List.iter
          (fun (s, g) ->
            let labels = Hashtbl.find data s in
            match Hashtbl.find_opt inbox s with
            | Some r ->
                List.iter
                  (fun (v, lbl) ->
                    let i = v - g.G.first_vertex in
                    if lbl < labels.(i) then begin
                      labels.(i) <- lbl;
                      changed := true
                    end)
                  !r
            | None -> ())
          graphs;
        any_changed := K.allreduce_single kc D.bool Mpisim.Op.bool_or !changed;
        if !any_changed then Ckpt.maybe_checkpoint ctx
      done;
      List.map (fun (s, _) -> (s, Hashtbl.find data s)) graphs)
