(** Conjugate gradient on the 5-point 2-D Laplacian over a Cartesian
    process grid, with three interchangeable halo transports.

    The domain is an [nx * ny] interior grid with zero Dirichlet
    boundary, block-partitioned over a [px * py] process grid
    ({!Mpisim.Cart}); the right-hand side is hashed from the global cell
    index, so every rank regenerates its block without communication.
    Each iteration exchanges one boundary layer per side — via paired
    point-to-point ({!Mpisim.Cart.halo_exchange}), standing MPI-4
    persistent channels ([send_init]/[recv_init]), or an RMA window with
    fence epochs — and folds the two dot products in a fixed per-block
    order (allgather of per-rank partials, reproducible tree over the
    rank index), so the iterates are {e bitwise identical} across
    transports and schedules and equal the host-side {!reference}. *)

type transport = P2p | Persistent | Rma

val transport_name : transport -> string
val all_transports : transport list

type result = {
  x : float array;  (** local block of the solution, row-major *)
  rr : float;  (** final squared residual norm (global) *)
  gi0 : int;  (** first global row of the block *)
  gj0 : int;  (** first global column of the block *)
  lx : int;  (** block rows *)
  ly : int;  (** block columns *)
}

(** [solve ?transport kc ~dims ~nx ~ny ~iters ~seed] runs [iters] CG
    iterations.  [dims = [|px; py|]] must multiply to the communicator
    size, and every block must be non-empty ([nx >= px], [ny >= py]).
    Collective. *)
val solve :
  ?transport:transport ->
  Kamping.Comm.t ->
  dims:int array ->
  nx:int ->
  ny:int ->
  iters:int ->
  seed:int ->
  result

(** [reference ~dims ~nx ~ny ~iters ~seed] is the sequential host-side
    oracle: the full solution field (row-major) and final residual,
    with the dot products folded in the same [dims]-blocked order —
    bitwise equal to the assembled {!solve} blocks. *)
val reference : dims:int array -> nx:int -> ny:int -> iters:int -> seed:int -> float array * float

(** {1 Shared kernels}

    Exposed so the resilient variant performs the exact same scalar
    operations in the same order (see {!Cg_resilient}). *)

val b_at : seed:int -> int -> int -> ny:int -> float

val apply_block :
  lx:int ->
  ly:int ->
  gn:float array ->
  gs:float array ->
  gw:float array ->
  ge:float array ->
  float array ->
  float array ->
  unit

val partial_dot : float array -> float array -> int -> float
val combine_partials : float array -> float
val axpy : float array -> float -> float array -> int -> unit
val update_p : float array -> float array -> float -> int -> unit
