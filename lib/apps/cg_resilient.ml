(* Checkpointed CG on the row-blocked grid.  Per-shard state is the CG
   vectors plus the scalar recurrence; the halo rows are re-exchanged
   every iteration through the owner ranks.  All scalar kernels come
   from Cg_stencil, and the dots fold per-shard partials over the shard
   index, so the iterates equal Cg_stencil.solve ~dims:[|n_shards; 1|]
   bit for bit — with or without failures. *)

module K = Kamping.Comm
module D = Mpisim.Datatype
module G = Graphgen.Distgraph
module C = Cg_stencil

type shard_state = {
  x : float array;
  r : float array;
  p_ : float array;
  mutable rr : float;
  mutable it : int;
}

let state_codec =
  Serde.Codec.(
    conv ~name:"cg_shard"
      (fun s -> (s.x, s.r, (s.p_, s.rr, s.it)))
      (fun (x, r, (p_, rr, it)) -> { x; r; p_; rr; it })
      (triple (array float) (array float) (triple (array float) float int)))

let halo_codec = Serde.Codec.(list (triple int int (array float)))
let dot_codec = Serde.Codec.(list (pair int float))

let run ?policy ?failure_rate ?max_attempts comm ~n_shards ~nx ~ny ~iters ~seed =
  if nx < n_shards then
    Mpisim.Errors.usage "Cg_resilient: grid rows %d smaller than %d shards" nx n_shards;
  let data : (int, shard_state) Hashtbl.t = Hashtbl.create 8 in
  let registry = Ckpt.Registry.create () in
  Ckpt.register registry ~name:"cg" state_codec
    ~save:(fun ~shard -> Hashtbl.find data shard)
    ~restore:(fun ~shard d -> Hashtbl.replace data shard d);
  let geom s =
    let gi0, lx = G.block_range ~global_n:nx ~comm_size:n_shards s in
    (gi0, lx)
  in
  Ckpt.run_resilient ?policy ?failure_rate ?max_attempts ~registry ~n_shards comm
    (fun ctx ~restored ->
      let kc = Ckpt.comm ctx in
      let me = K.rank kc and p = K.size kc in
      let shards = Ckpt.shards ctx in
      let dot field_of =
        let mine =
          List.map
            (fun s ->
              let _, lx = geom s in
              let a, b = field_of (Hashtbl.find data s) in
              (s, C.partial_dot a b (lx * ny)))
            shards
        in
        let all = K.allgather_serialized kc dot_codec mine in
        let parts = Array.make n_shards 0.0 in
        Array.iter (List.iter (fun (s, v) -> parts.(s) <- v)) all;
        C.combine_partials parts
      in
      if not restored then begin
        Hashtbl.reset data;
        List.iter
          (fun s ->
            let gi0, lx = geom s in
            let b =
              Array.init (lx * ny) (fun k -> C.b_at ~seed (gi0 + (k / ny)) (k mod ny) ~ny)
            in
            Hashtbl.replace data s
              { x = Array.make (lx * ny) 0.0; r = Array.copy b; p_ = Array.copy b; rr = 0.0; it = 0 })
          shards;
        let rr0 = dot (fun st -> (st.r, st.r)) in
        List.iter (fun s -> (Hashtbl.find data s).rr <- rr0) shards
      end;
      Ckpt.establish ctx;
      let running = ref true in
      while !running do
        let local = List.fold_left (fun m s -> max m (Hashtbl.find data s).it) min_int shards in
        let it = K.allreduce_single kc D.int Mpisim.Op.int_max local in
        if it >= iters then running := false
        else begin
          (* halo rows: shard s's top row is s-1's south ghost, its
             bottom row s+1's north ghost; messages carry (dshard,
             sshard, row) through the owner ranks *)
          let inbox : (int * int * float array) list ref = ref [] in
          let outgoing = Array.make p [] in
          let emit ds msg =
            let owner = Ckpt.owner_of ctx ds in
            if owner = me then inbox := msg :: !inbox else outgoing.(owner) <- msg :: outgoing.(owner)
          in
          List.iter
            (fun s ->
              let _, lx = geom s in
              let st = Hashtbl.find data s in
              if s > 0 then emit (s - 1) (s - 1, s, Array.sub st.p_ 0 ny);
              if s < n_shards - 1 then emit (s + 1) (s + 1, s, Array.sub st.p_ ((lx - 1) * ny) ny))
            shards;
          let received = K.alltoallv_serialized kc halo_codec outgoing in
          let ghosts : (int, float array * float array) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun s -> Hashtbl.replace ghosts s (Array.make ny 0.0, Array.make ny 0.0))
            shards;
          let deliver (ds, ss, row) =
            let gn, gs = Hashtbl.find ghosts ds in
            if ss < ds then Array.blit row 0 gn 0 ny else Array.blit row 0 gs 0 ny
          in
          List.iter deliver !inbox;
          Array.iter (List.iter deliver) received;
          let rr = match shards with s :: _ -> (Hashtbl.find data s).rr | [] -> 0.0 in
          let qs =
            List.map
              (fun s ->
                let _, lx = geom s in
                let st = Hashtbl.find data s in
                let gn, gs = Hashtbl.find ghosts s in
                let q = Array.make (lx * ny) 0.0 in
                C.apply_block ~lx ~ly:ny ~gn ~gs ~gw:(Array.make lx 0.0) ~ge:(Array.make lx 0.0)
                  st.p_ q;
                (s, q))
              shards
          in
          let pq =
            let mine =
              List.map
                (fun (s, q) ->
                  let _, lx = geom s in
                  (s, C.partial_dot (Hashtbl.find data s).p_ q (lx * ny)))
                qs
            in
            let all = K.allgather_serialized kc dot_codec mine in
            let parts = Array.make n_shards 0.0 in
            Array.iter (List.iter (fun (s, v) -> parts.(s) <- v)) all;
            C.combine_partials parts
          in
          let alpha = if pq = 0.0 then 0.0 else rr /. pq in
          List.iter2
            (fun s (_, q) ->
              let _, lx = geom s in
              let st = Hashtbl.find data s in
              C.axpy st.x alpha st.p_ (lx * ny);
              C.axpy st.r (-.alpha) q (lx * ny))
            shards qs;
          let rr' = dot (fun st -> (st.r, st.r)) in
          let beta = if rr = 0.0 then 0.0 else rr' /. rr in
          List.iter
            (fun s ->
              let _, lx = geom s in
              let st = Hashtbl.find data s in
              C.update_p st.p_ st.r beta (lx * ny);
              st.rr <- rr';
              st.it <- it + 1)
            shards;
          Ckpt.maybe_checkpoint ctx
        end
      done;
      let rr =
        match shards with s :: _ -> (Hashtbl.find data s).rr | [] -> 0.0
      in
      (List.map (fun s -> (s, (Hashtbl.find data s).x)) shards, rr))
