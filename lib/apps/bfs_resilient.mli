(** Restartable distributed BFS over checkpointed virtual shards.

    The graph is partitioned into [n_shards] {e shards} — virtual ranks,
    fixed for the computation's lifetime — and each physical rank runs
    the Fig. 9 level loop for the shards it currently owns (see
    {!Ckpt}).  Because the generators are rank-count independent and the
    per-shard partition never changes, the distance arrays a recovered
    run produces are {e bit-identical} to a failure-free run — and to a
    plain BFS over [n_shards] physical ranks. *)

(** [run comm ~family ~n_shards ~global_n ~avg_degree ~seed ~src] returns
    [(shard, distances of that shard's vertex block)] for every shard
    this rank owns when the search completes, ascending by shard.
    Failures detected during the search roll back to the newest
    checkpoint and resume on the shrunken communicator.  [policy],
    [failure_rate] and [max_attempts] are passed to
    {!Ckpt.run_resilient}; [on_complete] observes the engine (checkpoint
    count, predicted cost, recoveries) right before the final attempt
    returns. *)
val run :
  ?policy:Ckpt.Schedule.policy ->
  ?failure_rate:float ->
  ?max_attempts:int ->
  ?on_complete:(Ckpt.ctx -> unit) ->
  Kamping.Comm.t ->
  family:Graphgen.Generators.family ->
  n_shards:int ->
  global_n:int ->
  avg_degree:int ->
  seed:int ->
  src:int ->
  (int * int array) list
