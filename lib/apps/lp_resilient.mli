(** Restartable size-constrained label propagation over checkpointed
    virtual shards.

    Like {!Bfs_resilient}, the vertex set is partitioned into [n_shards]
    shards fixed for the computation's lifetime; each physical rank
    sweeps the shards it currently owns and pulls ghost labels shard to
    shard, so the label arrays of a recovered run are bit-identical to a
    failure-free run (and to the plain variant on [n_shards] ranks). *)

(** [run comm ~family ~n_shards ~global_n ~avg_degree ~seed ~iterations
    ~max_cluster_size] returns [(shard, labels of that shard's vertex
    block)] for every shard this rank owns after [iterations] sweeps,
    ascending by shard. *)
val run :
  ?policy:Ckpt.Schedule.policy ->
  ?failure_rate:float ->
  ?max_attempts:int ->
  ?on_complete:(Ckpt.ctx -> unit) ->
  Kamping.Comm.t ->
  family:Graphgen.Generators.family ->
  n_shards:int ->
  global_n:int ->
  avg_degree:int ->
  seed:int ->
  iterations:int ->
  max_cluster_size:int ->
  (int * int array) list
