(** Restartable connected components over checkpointed virtual shards.

    Min-label propagation is monotone and idempotent, so recovery from
    any checkpoint converges to the same fixpoint: the component-minimum
    labels, bit-identical to {!Conncomp.run} and its reference. *)

(** [run ?policy ?failure_rate ?max_attempts comm ~family ~n_shards
    ~global_n ~avg_degree ~seed] returns the surviving rank's
    [(shard, labels)] blocks. *)
val run :
  ?policy:Ckpt.Schedule.policy ->
  ?failure_rate:float ->
  ?max_attempts:int ->
  Kamping.Comm.t ->
  family:Graphgen.Generators.family ->
  n_shards:int ->
  global_n:int ->
  avg_degree:int ->
  seed:int ->
  (int * int array) list
