(** Fault tolerance via ULFM, with idiomatic exceptions (paper Sec. V-B,
    Fig. 12).

    Failures surface as [Mpisim.Errors.Process_failed] exceptions from any
    operation that depends on a dead peer.  Recovery follows the ULFM
    recipe: catch, [revoke] the communicator so every other rank's pending
    operations abort too, then [shrink] to a survivors-only communicator
    and retry. *)

(** Raised by {!with_recovery} when [?max_attempts] attempts all ended in
    a detected failure — the diagnostic carries how many were made. *)
exception Recovery_exhausted of { attempts : int }

(** [is_revoked t] tests the ULFM revocation flag. *)
val is_revoked : Kamping.Comm.t -> bool

(** [revoke t] interrupts all current and future operations on the
    communicator everywhere. *)
val revoke : Kamping.Comm.t -> unit

(** [shrink t] builds the survivors-only communicator (collective over the
    survivors). *)
val shrink : Kamping.Comm.t -> Kamping.Comm.t

(** [agree t v] reaches agreement on the bitwise AND of [v] across
    survivors. *)
val agree : Kamping.Comm.t -> int -> int

(** [num_failed t] counts dead members of [t]. *)
val num_failed : Kamping.Comm.t -> int

(** [with_recovery t f] runs [f comm], and on a detected process failure
    performs revoke + shrink and retries [f] on the shrunk communicator —
    the Fig. 12 pattern packaged as a combinator.  Gives up when no rank is
    left ([None]) or after [max_retries].

    [?max_attempts] bounds the {e total} number of attempts (calls to
    [f]) with a hard stop: under a persistent failure schedule the
    legacy [max_retries] cut-off silently returns [None], which callers
    tend to treat as "no survivors"; with [max_attempts] the combinator
    instead raises {!Recovery_exhausted} naming the attempt count, so
    the caller can tell exhaustion from extinction.  When given, it
    takes precedence over [max_retries].
    @raise Recovery_exhausted when [max_attempts] attempts all failed.
    @raise Mpisim.Errors.Usage_error on [max_attempts <= 0]. *)
val with_recovery :
  ?max_retries:int ->
  ?max_attempts:int ->
  Kamping.Comm.t ->
  (Kamping.Comm.t -> 'a) ->
  ('a * Kamping.Comm.t) option
