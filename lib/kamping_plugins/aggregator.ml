module V = Ds.Vec
module D = Mpisim.Datatype

type 'a t = {
  comm : Kamping.Comm.t;
  dt : 'a D.t;
  threshold : int;
  tag : int;
  handler : src:int -> 'a V.t -> unit;
  buffers : 'a V.t array; (* per destination *)
  mutable in_flight : Mpisim.Request.t list; (* synchronous-send handles *)
}

let create ?(threshold = 256) ?(tag = 0xa99) comm dt ~handler =
  if threshold <= 0 then Mpisim.Errors.usage "Aggregator.create: threshold must be positive";
  {
    comm;
    dt;
    threshold;
    tag;
    handler;
    buffers = Array.init (Kamping.Comm.size comm) (fun _ -> V.create ());
    in_flight = [];
  }

let pending_items t = Array.fold_left (fun acc b -> acc + V.length b) 0 t.buffers

(* Deliver everything currently available, without blocking. *)
let poll t =
  let raw = Kamping.Comm.raw t.comm in
  let rec drain () =
    match Mpisim.P2p.iprobe raw ~src:Mpisim.P2p.any_source ~tag:t.tag with
    | Some st ->
        let fill =
          match D.default_elt t.dt with
          | Some d -> d
          | None -> Mpisim.Errors.usage "Aggregator: datatype %s needs ~default" (D.name t.dt)
        in
        let buf = Array.make (max 1 st.Mpisim.Request.count) fill in
        let st =
          Mpisim.P2p.recv raw t.dt buf ~count:st.Mpisim.Request.count
            ~src:st.Mpisim.Request.source ~tag:t.tag
        in
        t.handler ~src:st.Mpisim.Request.source
          (V.unsafe_of_array buf st.Mpisim.Request.count);
        drain ()
    | None -> ()
  in
  drain ();
  t.in_flight <- List.filter (fun req -> not (Mpisim.Request.is_complete req)) t.in_flight

let ship t dst =
  let block = t.buffers.(dst) in
  if not (V.is_empty block) then begin
    let raw = Kamping.Comm.raw t.comm in
    let req =
      Mpisim.P2p.issend raw t.dt (V.unsafe_data block) ~count:(V.length block) ~dst ~tag:t.tag
    in
    t.in_flight <- req :: t.in_flight;
    t.buffers.(dst) <- V.create ()
  end

let send t ~dst item =
  if dst < 0 || dst >= Kamping.Comm.size t.comm then
    Mpisim.Errors.usage "Aggregator.send: bad destination %d" dst;
  V.push t.buffers.(dst) item;
  if V.length t.buffers.(dst) >= t.threshold then begin
    ship t dst;
    poll t
  end

(* Non-collective flush: ship every partial buffer now, without entering
   termination.  Receivers pick the blocks up on their next [poll]; the
   blocks count as part of the current round, so a later [finish] still
   accounts for them.  This is what bounds batching latency: a time-based
   flush ships whatever has accumulated instead of waiting for the
   threshold. *)
let flush t =
  for dst = 0 to Array.length t.buffers - 1 do
    ship t dst
  done;
  poll t

(* ULFM semantics: NBX termination depends on every member, so a dead
   member must surface as [Process_failed] instead of a livelock (a block
   issend'ed to a dead rank is never matched, and a dead rank never
   enters the barrier). *)
let check_failures t =
  let raw = Kamping.Comm.raw t.comm in
  match Mpisim.World.any_dead (Mpisim.Comm.world raw) (Mpisim.Comm.group raw) with
  | Some wr -> raise (Mpisim.Errors.Process_failed { world_rank = wr })
  | None -> ()

(* NBX-style termination: once this rank's blocks are all matched, enter a
   non-blocking barrier; when it completes, every block of the round has
   been received (matching implies delivery here, since we receive in the
   same loop). *)
let finish t =
  for dst = 0 to Array.length t.buffers - 1 do
    ship t dst
  done;
  let barrier = ref None in
  let finished = ref false in
  while not !finished do
    check_failures t;
    poll t;
    (match !barrier with
    | None ->
        if t.in_flight = [] then barrier := Some (Mpisim.Collectives.ibarrier (Kamping.Comm.raw t.comm))
    | Some req -> if Mpisim.Request.is_complete req then finished := true);
    if not !finished then Kamping.Comm.compute t.comm 1.0e-6
  done;
  poll t
