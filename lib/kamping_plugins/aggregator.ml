module V = Ds.Vec
module D = Mpisim.Datatype
module Persist = Mpisim.Persist

(* A standing persistent endpoint: one MPI-4 [*_init] handle plus its
   fixed envelope buffer (capacity = threshold items). *)
type 'a chan = { handle : Persist.t; cbuf : 'a array }

type 'a t = {
  comm : Kamping.Comm.t;
  dt : 'a D.t;
  threshold : int;
  tag : int;
  handler : src:int -> 'a V.t -> unit;
  buffers : 'a V.t array; (* per destination *)
  mutable in_flight : Mpisim.Request.t list; (* ephemeral synchronous-send handles *)
  (* Persistent mode (MPI-4): one standing receive channel per source and
     one persistent synchronous send per destination, lazily created on
     the first full block.  Empty arrays in ephemeral mode. *)
  channels : 'a chan array;
  send_chans : 'a chan option array;
  mutable closed : bool;
}

let default_of t =
  match D.default_elt t.dt with
  | Some d -> d
  | None -> Mpisim.Errors.usage "Aggregator: datatype %s needs ~default" (D.name t.dt)

let create ?(threshold = 256) ?(tag = 0xa99) ?(persistent = false) comm dt ~handler =
  if threshold <= 0 then Mpisim.Errors.usage "Aggregator.create: threshold must be positive";
  let p = Kamping.Comm.size comm in
  let t =
    {
      comm;
      dt;
      threshold;
      tag;
      handler;
      buffers = Array.init p (fun _ -> V.create ());
      in_flight = [];
      channels = [||];
      send_chans = (if persistent then Array.make p None else [||]);
      closed = false;
    }
  in
  if not persistent then t
  else begin
    (* Standing receive channels: matching state is validated once at
       init; every block from [src] lands in the same pooled envelope.
       A partial (sub-threshold) block still matches — the round's
       status carries the true item count. *)
    let fill = default_of t in
    let raw = Kamping.Comm.raw comm in
    let channels =
      Array.init p (fun src ->
          let cbuf = Array.make threshold fill in
          let handle = Mpisim.P2p.recv_init raw dt cbuf ~count:threshold ~src ~tag in
          Persist.start handle;
          { handle; cbuf })
    in
    { t with channels }
  end

let is_persistent t = Array.length t.channels > 0
let pending_items t = Array.fold_left (fun acc b -> acc + V.length b) 0 t.buffers

let deliver_block t ~src arr count =
  t.handler ~src (V.unsafe_of_array (Array.sub arr 0 count) count)

(* Deliver everything currently available, without blocking. *)
let poll t =
  let raw = Kamping.Comm.raw t.comm in
  (* Standing channels first (per-source FIFO: a channel round always
     matched before anything now sitting in the unexpected queue). *)
  Array.iteri
    (fun src chan ->
      let rec drain_chan () =
        match Persist.test chan.handle with
        | Some st ->
            deliver_block t ~src chan.cbuf st.Mpisim.Request.count;
            (* restart may complete instantly off the unexpected queue *)
            Persist.start chan.handle;
            drain_chan ()
        | None -> ()
      in
      drain_chan ())
    t.channels;
  let rec drain () =
    match Mpisim.P2p.iprobe raw ~src:Mpisim.P2p.any_source ~tag:t.tag with
    | Some st ->
        let buf = Array.make (max 1 st.Mpisim.Request.count) (default_of t) in
        let st =
          Mpisim.P2p.recv raw t.dt buf ~count:st.Mpisim.Request.count
            ~src:st.Mpisim.Request.source ~tag:t.tag
        in
        t.handler ~src:st.Mpisim.Request.source
          (V.unsafe_of_array buf st.Mpisim.Request.count);
        drain ()
    | None -> ()
  in
  drain ();
  t.in_flight <- List.filter (fun req -> not (Mpisim.Request.is_complete req)) t.in_flight;
  (* Retire persistent sends whose round has completed (receiver matched). *)
  Array.iter
    (function
      | Some chan when Persist.is_active chan.handle -> ignore (Persist.test chan.handle)
      | Some _ | None -> ())
    t.send_chans

let send_chan_for t dst =
  match t.send_chans.(dst) with
  | Some chan -> chan
  | None ->
      let raw = Kamping.Comm.raw t.comm in
      let cbuf = Array.make t.threshold (default_of t) in
      (* Synchronous mode: NBX termination counts on every block being
         matched before the barrier, exactly like the ephemeral issend. *)
      let handle = Mpisim.P2p.ssend_init raw t.dt cbuf ~count:t.threshold ~dst ~tag:t.tag in
      let chan = { handle; cbuf } in
      t.send_chans.(dst) <- Some chan;
      chan

let ship t dst =
  let block = t.buffers.(dst) in
  if not (V.is_empty block) then begin
    let raw = Kamping.Comm.raw t.comm in
    let shipped_persistently =
      is_persistent t
      && V.length block = t.threshold
      &&
      let chan = send_chan_for t dst in
      if Persist.is_active chan.handle then false
      else begin
        Array.blit (V.unsafe_data block) 0 chan.cbuf 0 t.threshold;
        Persist.start chan.handle;
        true
      end
    in
    if not shipped_persistently then begin
      (* partial block, or the previous round to [dst] is still in
         flight: fall back to an ephemeral synchronous send (same tag,
         so it matches the same standing channel on the receiver) *)
      let req =
        Mpisim.P2p.issend raw t.dt (V.unsafe_data block) ~count:(V.length block) ~dst ~tag:t.tag
      in
      t.in_flight <- req :: t.in_flight
    end;
    t.buffers.(dst) <- V.create ()
  end

let send t ~dst item =
  if dst < 0 || dst >= Kamping.Comm.size t.comm then
    Mpisim.Errors.usage "Aggregator.send: bad destination %d" dst;
  V.push t.buffers.(dst) item;
  if V.length t.buffers.(dst) >= t.threshold then begin
    ship t dst;
    poll t
  end

(* Non-collective flush: ship every partial buffer now, without entering
   termination.  Receivers pick the blocks up on their next [poll]; the
   blocks count as part of the current round, so a later [finish] still
   accounts for them.  This is what bounds batching latency: a time-based
   flush ships whatever has accumulated instead of waiting for the
   threshold. *)
let flush t =
  for dst = 0 to Array.length t.buffers - 1 do
    ship t dst
  done;
  poll t

(* ULFM semantics: NBX termination depends on every member, so a dead
   member must surface as [Process_failed] instead of a livelock (a block
   issend'ed to a dead rank is never matched, and a dead rank never
   enters the barrier). *)
let check_failures t =
  let raw = Kamping.Comm.raw t.comm in
  match Mpisim.World.any_dead (Mpisim.Comm.world raw) (Mpisim.Comm.group raw) with
  | Some wr -> raise (Mpisim.Errors.Process_failed { world_rank = wr })
  | None -> ()

let sends_quiet t =
  t.in_flight = []
  && Array.for_all
       (function Some chan -> not (Persist.is_active chan.handle) | None -> true)
       t.send_chans

(* NBX-style termination: once this rank's blocks are all matched, enter a
   non-blocking barrier; when it completes, every block of the round has
   been received (matching implies delivery here, since we receive in the
   same loop). *)
let finish t =
  for dst = 0 to Array.length t.buffers - 1 do
    ship t dst
  done;
  let barrier = ref None in
  let finished = ref false in
  while not !finished do
    check_failures t;
    poll t;
    (match !barrier with
    | None ->
        if sends_quiet t then barrier := Some (Mpisim.Collectives.ibarrier (Kamping.Comm.raw t.comm))
    | Some req -> if Mpisim.Request.is_complete req then finished := true);
    if not !finished then Kamping.Comm.compute t.comm 1.0e-6
  done;
  poll t

(* Retire the standing endpoints.  Only legal at quiescence (after a
   [finish]): cancelling a receive channel drops any round still in
   flight. *)
let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (fun chan ->
        if Persist.is_active chan.handle then Persist.cancel chan.handle;
        Persist.free chan.handle)
      t.channels;
    Array.iter
      (function
        | Some chan ->
            if Persist.is_active chan.handle then ignore (Persist.wait chan.handle);
            Persist.free chan.handle
        | None -> ())
      t.send_chans
  end
