exception Recovery_exhausted of { attempts : int }

let is_revoked t = Mpisim.Ulfm.is_revoked (Kamping.Comm.raw t)
let revoke t = Mpisim.Ulfm.revoke (Kamping.Comm.raw t)
let shrink t = Kamping.Comm.wrap (Mpisim.Ulfm.shrink (Kamping.Comm.raw t))
let agree t v = Mpisim.Ulfm.agree (Kamping.Comm.raw t) v
let num_failed t = Mpisim.Ulfm.num_failed (Kamping.Comm.raw t)

let with_recovery ?(max_retries = 8) ?max_attempts t f =
  let limit, raise_on_exhaust =
    match max_attempts with
    | Some n ->
        if n <= 0 then Mpisim.Errors.usage "Ulfm.with_recovery: max_attempts %d" n;
        (n, true)
    | None -> (max_retries + 1, false)
  in
  let rec attempt comm tries =
    if tries >= limit then
      if raise_on_exhaust then raise (Recovery_exhausted { attempts = tries }) else None
    else if Kamping.Comm.size comm = 0 then None
    else
      match f comm with
      | v -> Some (v, comm)
      | exception (Mpisim.Errors.Process_failed _ | Mpisim.Errors.Comm_revoked) ->
          if not (is_revoked comm) then revoke comm;
          let survivors = shrink comm in
          attempt survivors (tries + 1)
  in
  attempt t 0
