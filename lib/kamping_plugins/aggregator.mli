(** Asynchronous message aggregation (paper Sec. VI: "we are currently
    working on generalizing the indirection patterns ... while also
    incorporating message aggregation.  This is applicable in ... algorithms
    with highly-irregular communication without hard synchronization").

    Small items addressed to individual ranks are buffered per destination
    and shipped in blocks once a buffer reaches the threshold; incoming
    blocks are handed to a user callback as they arrive, without any global
    synchronization.  {!finish} ends a round with NBX-style termination
    detection (all sent blocks matched + non-blocking barrier), after which
    every item sent by any rank has been delivered to its handler. *)

type 'a t

(** [create comm dt ~handler] builds an aggregator.  [handler ~src block]
    runs on the receiving rank for every arriving block; it must not call
    back into the same aggregator.

    @param threshold items buffered per destination before a block ships
    (default 256)
    @param tag plugin tag, in case several aggregators overlap
    @param persistent use MPI-4 persistent channels (default false): one
    standing [recv_init] per source (capacity [threshold], restarted after
    each delivered block) and one [ssend_init] per destination for full
    blocks, so steady-state rounds skip per-call validation and matching
    setup entirely.  Partial blocks (from {!flush}/{!finish}) and blocks
    overtaking a still-in-flight round fall back to ephemeral synchronous
    sends on the same tag, which match the same standing channels.  The
    datatype needs a [~default] element; retire the endpoints with
    {!close}. *)
val create :
  ?threshold:int ->
  ?tag:int ->
  ?persistent:bool ->
  Kamping.Comm.t ->
  'a Mpisim.Datatype.t ->
  handler:(src:int -> 'a Ds.Vec.t -> unit) ->
  'a t

(** [is_persistent t] is true when the aggregator runs on persistent
    channels. *)
val is_persistent : 'a t -> bool

(** [send t ~dst item] buffers [item] for [dst], shipping a block if the
    buffer is full.  Also opportunistically delivers any blocks that have
    already arrived here. *)
val send : 'a t -> dst:int -> 'a -> unit

(** [pending_items t] counts locally buffered (unshipped) items. *)
val pending_items : 'a t -> int

(** [poll t] delivers whatever blocks have arrived (non-blocking). *)
val poll : 'a t -> unit

(** [flush t] ships every non-empty partial buffer now, without NBX
    termination (non-collective, non-blocking).  Receivers deliver the
    blocks on their next {!poll}; a later {!finish} accounts for them as
    part of the current round.  Use it to bound batching latency: a
    time-based flush ships whatever accumulated below the threshold. *)
val flush : 'a t -> unit

(** [finish t] is collective: flushes all buffers, keeps delivering until
    global termination (every block sent by every rank in this round has
    been handled), then returns.  The aggregator is reusable afterwards.
    @raise Mpisim.Errors.Process_failed when a communicator member has
    died — termination can never be reached, so the failure surfaces
    ULFM-style for a recovery layer (e.g. {!Ckpt.run_resilient}) to
    handle. *)
val finish : 'a t -> unit

(** [close t] retires the persistent endpoints: cancels and frees every
    standing receive channel and frees every persistent send handle (the
    checker's finalize leak scan requires this).  Only legal at
    quiescence — call it after the last {!finish}.  A no-op in ephemeral
    mode and on a second call. *)
val close : 'a t -> unit
