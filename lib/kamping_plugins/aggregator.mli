(** Asynchronous message aggregation (paper Sec. VI: "we are currently
    working on generalizing the indirection patterns ... while also
    incorporating message aggregation.  This is applicable in ... algorithms
    with highly-irregular communication without hard synchronization").

    Small items addressed to individual ranks are buffered per destination
    and shipped in blocks once a buffer reaches the threshold; incoming
    blocks are handed to a user callback as they arrive, without any global
    synchronization.  {!finish} ends a round with NBX-style termination
    detection (all sent blocks matched + non-blocking barrier), after which
    every item sent by any rank has been delivered to its handler. *)

type 'a t

(** [create comm dt ~handler] builds an aggregator.  [handler ~src block]
    runs on the receiving rank for every arriving block; it must not call
    back into the same aggregator.

    @param threshold items buffered per destination before a block ships
    (default 256)
    @param tag plugin tag, in case several aggregators overlap *)
val create :
  ?threshold:int ->
  ?tag:int ->
  Kamping.Comm.t ->
  'a Mpisim.Datatype.t ->
  handler:(src:int -> 'a Ds.Vec.t -> unit) ->
  'a t

(** [send t ~dst item] buffers [item] for [dst], shipping a block if the
    buffer is full.  Also opportunistically delivers any blocks that have
    already arrived here. *)
val send : 'a t -> dst:int -> 'a -> unit

(** [pending_items t] counts locally buffered (unshipped) items. *)
val pending_items : 'a t -> int

(** [poll t] delivers whatever blocks have arrived (non-blocking). *)
val poll : 'a t -> unit

(** [flush t] ships every non-empty partial buffer now, without NBX
    termination (non-collective, non-blocking).  Receivers deliver the
    blocks on their next {!poll}; a later {!finish} accounts for them as
    part of the current round.  Use it to bound batching latency: a
    time-based flush ships whatever accumulated below the threshold. *)
val flush : 'a t -> unit

(** [finish t] is collective: flushes all buffers, keeps delivering until
    global termination (every block sent by every rank in this round has
    been handled), then returns.  The aggregator is reusable afterwards.
    @raise Mpisim.Errors.Process_failed when a communicator member has
    died — termination can never be reached, so the failure surfaces
    ULFM-style for a recovery layer (e.g. {!Ckpt.run_resilient}) to
    handle. *)
val finish : 'a t -> unit
