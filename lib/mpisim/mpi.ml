module Engine = Simnet.Engine
module Netmodel = Simnet.Netmodel

exception Rank_died

type 'a run_result = {
  results : ('a, exn) result array;
  sim_time : float;
  profile : Profiling.snapshot;
  events : int;
  diagnostics : Checker.diagnostic list;
  trace : Trace.Event.data option;
}

type run_summary = {
  rs_sim_time : float;
  rs_events : int;
  rs_profile : Profiling.snapshot;
}

(* Tee of every completed run's summary, for tests that drive polymorphic
   programs through a uniform harness (mirrors Checker.with_collector). *)
let run_collector : (run_summary -> unit) option ref = ref None

let with_run_collector f =
  let acc = ref [] in
  let old = !run_collector in
  run_collector := Some (fun s -> acc := s :: !acc);
  let finish () = run_collector := old in
  match f () with
  | v ->
      finish ();
      (v, List.rev !acc)
  | exception e ->
      finish ();
      raise e

let run ?(net = Netmodel.default) ?node ?fabric ?(failures = []) ?(fail_at = []) ?trace ?hooks
    ?deadline ~ranks f =
  let tracing =
    match trace with Some b -> b | None -> Trace.Recorder.default_enabled ()
  in
  let recorder =
    if tracing then Trace.Recorder.create ~ranks else Trace.Recorder.inert
  in
  (* Exploration hooks: an explicit argument wins; otherwise consult the
     registered factory (env-driven activation, e.g. MPISIM_EXPLORE). *)
  let exhook = match hooks with Some _ -> hooks | None -> !Exhook.factory () in
  (* Topology: an explicit fabric wins; otherwise MPISIM_TOPOLOGY supplies
     a spec (read per run, so tests can toggle it with putenv).  An unset
     or empty variable keeps the flat/legacy model — the bit-identical
     default. *)
  let fabric =
    match fabric with
    | Some _ -> fabric
    | None -> (
        match Sys.getenv_opt "MPISIM_TOPOLOGY" with
        | None | Some "" -> None
        | Some spec -> Some (Netmodel.fabric_of_spec ~ranks spec))
  in
  let w = World.create ?node ?fabric ~trace:recorder ?exhook ~net_params:net ~size:ranks () in
  (match exhook with
  | Some h ->
      Engine.set_chooser w.World.engine
        (Some (fun ~kind ~ids -> h.Exhook.choose ~kind ~ids))
  | None -> ());
  (match deadline with Some d -> Engine.set_deadline w.World.engine d | None -> ());
  if Trace.Recorder.active recorder then
    (* Forward genuine waits (suspensions) of rank fibers to the recorder.
       Delays are the ranks' own modelled computation, and helper fibers
       (non-blocking collectives) carry tag -1 — neither is rank waiting
       time.  Installing the observer adds no events and cannot perturb
       scheduling, keeping traced runs identical to untraced ones. *)
    Engine.set_park_observer w.World.engine
      (Some
         (fun ~tag ~kind ~parked_at ~resumed_at ->
           match kind with
           | Engine.Park_suspend when tag >= 0 ->
               Trace.Recorder.add_wait recorder ~rank:tag ~t0:parked_at
                 ~t1:resumed_at
           | _ -> ()));
  let shared = World.fresh_comm w (Array.init ranks Fun.id) in
  let results = Array.make ranks (Error Rank_died) in
  let fibers =
    Array.init ranks (fun r ->
        Engine.spawn w.World.engine ~label:(Printf.sprintf "rank%d" r) ~tag:r (fun () ->
            let comm = Comm.make w shared ~rank:r in
            (match f comm with
            | v -> results.(r) <- Ok v
            | exception e -> results.(r) <- Error e);
            Trace.Recorder.rank_done recorder ~rank:r ~time:(World.now w)))
  in
  w.World.fibers <- fibers;
  List.iter (fun (at, rank) -> Ulfm.schedule_failure w ~at ~world_rank:rank) failures;
  Ulfm.schedule_failures w ~fail_at;
  (* [Simnet.Profile.span] is the host profiler: exactly [Engine.run] when
     profiling is off, wall-time attribution when on.  Fine-level envelope
     pool stats ride along — a pure observation either way. *)
  (match Simnet.Profile.span "mpi.run" (fun () -> Engine.run w.World.engine) with
  | () ->
      (* clean quiesce: run the end-of-run leak checks *)
      Checker.finalize w.World.check ~mailboxes:w.World.mailboxes ~rank_alive:(World.is_alive w)
        ~comm_revoked:(World.comm_revoked w) ~comm_failed_at:(World.comm_failed_at w)
  | exception Engine.Deadlock _ when Checker.enabled Heavy ->
      (* diagnose instead of hanging the caller with an opaque exception:
         the run terminates normally, carrying the structured report *)
      let parked = ref [] in
      Array.iteri (fun r fib -> if Engine.is_parked fib then parked := r :: !parked) fibers;
      ignore
        (Checker.diagnose_deadlock w.World.check ~mailboxes:w.World.mailboxes
           ~parked:(List.rev !parked) ~rank_alive:(World.is_alive w)));
  if Simnet.Profile.fine () then begin
    let made, reused = Msg.pool_stats w.World.env_pool in
    Simnet.Profile.record_max "mpi.envelopes_made" made;
    Simnet.Profile.record_max "mpi.envelopes_reused" reused
  end;
  let result =
    {
      results;
      sim_time = Engine.now w.World.engine;
      profile = Profiling.snapshot w.World.prof;
      events = Engine.events_processed w.World.engine;
      diagnostics = Checker.diagnostics w.World.check;
      trace =
        (if Trace.Recorder.active recorder then
           Some (Trace.Recorder.finish recorder ~total:(Engine.now w.World.engine))
         else None);
    }
  in
  (match !run_collector with
  | Some tee ->
      tee
        {
          rs_sim_time = result.sim_time;
          rs_events = result.events;
          rs_profile = result.profile;
        }
  | None -> ());
  result

let results_exn r =
  Array.map (function Ok v -> v | Error e -> raise e) r.results

let run_exn ?net ~ranks f = results_exn (run ?net ~ranks f)
