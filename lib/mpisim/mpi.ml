module Engine = Simnet.Engine
module Netmodel = Simnet.Netmodel

exception Rank_died

type 'a run_result = {
  results : ('a, exn) result array;
  sim_time : float;
  profile : Profiling.snapshot;
  events : int;
  diagnostics : Checker.diagnostic list;
}

let run ?(net = Netmodel.default) ?node ?(failures = []) ~ranks f =
  let w = World.create ?node ~net_params:net ~size:ranks () in
  let shared = World.fresh_comm w (Array.init ranks Fun.id) in
  let results = Array.make ranks (Error Rank_died) in
  let fibers =
    Array.init ranks (fun r ->
        Engine.spawn w.World.engine ~label:(Printf.sprintf "rank%d" r) (fun () ->
            let comm = Comm.make w shared ~rank:r in
            match f comm with
            | v -> results.(r) <- Ok v
            | exception e -> results.(r) <- Error e))
  in
  w.World.fibers <- fibers;
  List.iter (fun (at, rank) -> Ulfm.schedule_failure w ~at ~world_rank:rank) failures;
  (match Engine.run w.World.engine with
  | () ->
      (* clean quiesce: run the end-of-run leak checks *)
      Checker.finalize w.World.check ~mailboxes:w.World.mailboxes ~rank_alive:(World.is_alive w)
        ~comm_revoked:(World.comm_revoked w)
  | exception Engine.Deadlock _ when Checker.enabled Heavy ->
      (* diagnose instead of hanging the caller with an opaque exception:
         the run terminates normally, carrying the structured report *)
      let parked = ref [] in
      Array.iteri (fun r fib -> if Engine.is_parked fib then parked := r :: !parked) fibers;
      ignore
        (Checker.diagnose_deadlock w.World.check ~mailboxes:w.World.mailboxes
           ~parked:(List.rev !parked) ~rank_alive:(World.is_alive w)));
  {
    results;
    sim_time = Engine.now w.World.engine;
    profile = Profiling.snapshot w.World.prof;
    events = Engine.events_processed w.World.engine;
    diagnostics = Checker.diagnostics w.World.check;
  }

let results_exn r =
  Array.map (function Ok v -> v | Error e -> raise e) r.results

let run_exn ?net ~ranks f = results_exn (run ?net ~ranks f)
