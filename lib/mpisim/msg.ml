let any_source = -1
let any_tag = -1

type ctx = User | Internal
type packed =
  | Packed : 'a Datatype.t * 'a array -> packed
  | Sparse : 'a Datatype.t * int -> packed

(* Envelopes are mutable so the runtime can recycle them through a
   free-list pool: at 10k+ ranks the per-message envelope allocation was
   a measurable share of minor-heap churn.  [pooled] guards against
   double-release; an envelope sitting in the free list must never be
   read. *)
type envelope = {
  mutable src : int;
  mutable src_world : int;
  mutable tag : int;
  mutable comm_id : int;
  mutable ctx : ctx;
  mutable count : int;
  mutable bytes : int;
  mutable sent_at : float;
  mutable payload : packed;
  mutable on_matched : (unit -> unit) option;
  mutable trace : Trace.Event.message option;
  mutable pooled : bool;
}

type pending_recv = {
  want_src : int;
  want_tag : int;
  want_comm : int;
  want_ctx : ctx;
  src_world : int;
  comm_group : int array;
  deliver : envelope -> unit;
  on_fail : exn -> unit;
  owner_world : int;
  mutable live : bool;
}

type probe_waiter = {
  p_src : int;
  p_tag : int;
  p_comm : int;
  p_ctx : ctx;
  p_src_world : int;
  p_group : int array;
  notify : envelope -> unit;
  p_on_fail : exn -> unit;
  p_owner_world : int;
  mutable p_live : bool;
}

type mailbox = {
  unexpected : envelope Ds.Vec.t;
  mutable posted : pending_recv list;
  mutable probes : probe_waiter list;
}

let create () = { unexpected = Ds.Vec.create (); posted = []; probes = [] }

(* {2 Envelope pool} *)

type pool = { free : envelope Ds.Vec.t; mutable made : int; mutable reused : int }

let create_pool () = { free = Ds.Vec.create (); made = 0; reused = 0 }

let empty_payload = Packed (Datatype.int, [||])

let make_envelope pool ~src ~src_world ~tag ~comm_id ~ctx ~count ~bytes ~sent_at ~payload
    ~on_matched ~trace =
  if Ds.Vec.is_empty pool.free then begin
    pool.made <- pool.made + 1;
    { src; src_world; tag; comm_id; ctx; count; bytes; sent_at; payload; on_matched; trace;
      pooled = false }
  end
  else begin
    pool.reused <- pool.reused + 1;
    let e = Ds.Vec.pop pool.free in
    e.pooled <- false;
    e.src <- src;
    e.src_world <- src_world;
    e.tag <- tag;
    e.comm_id <- comm_id;
    e.ctx <- ctx;
    e.count <- count;
    e.bytes <- bytes;
    e.sent_at <- sent_at;
    e.payload <- payload;
    e.on_matched <- on_matched;
    e.trace <- trace;
    e
  end

let release pool env =
  if not env.pooled then begin
    env.pooled <- true;
    (* drop payload / closure / trace references so the pool retains no
       dead data between messages *)
    env.payload <- empty_payload;
    env.on_matched <- None;
    env.trace <- None;
    Ds.Vec.push pool.free env
  end

let pool_stats pool = (pool.made, pool.reused)

let matches pr env =
  pr.want_comm = env.comm_id
  && pr.want_ctx = env.ctx
  && (pr.want_src = any_source || pr.want_src = env.src)
  && (pr.want_tag = any_tag || pr.want_tag = env.tag)

let pattern_matches ~src ~tag ~comm ~ctx env =
  comm = env.comm_id
  && ctx = env.ctx
  && (src = any_source || src = env.src)
  && (tag = any_tag || tag = env.tag)

let probe_matches pw env =
  pw.p_comm = env.comm_id
  && pw.p_ctx = env.ctx
  && (pw.p_src = any_source || pw.p_src = env.src)
  && (pw.p_tag = any_tag || pw.p_tag = env.tag)

let arrive pool mb env =
  (* Probe waiters observe the message without consuming it. *)
  let notified, waiting = List.partition (fun pw -> pw.p_live && probe_matches pw env) mb.probes in
  mb.probes <- waiting;
  List.iter
    (fun pw ->
      pw.p_live <- false;
      pw.notify env)
    notified;
  let rec find_posted acc = function
    | [] -> None
    | pr :: rest when pr.live && matches pr env ->
        mb.posted <- List.rev_append acc rest;
        Some pr
    | pr :: rest -> find_posted (pr :: acc) rest
  in
  match find_posted [] mb.posted with
  | Some pr ->
      pr.live <- false;
      (match env.on_matched with Some hook -> hook () | None -> ());
      pr.deliver env;
      (* deliver consumes the envelope synchronously (copy into the
         receive window, then resume/complete), so it can go back to the
         pool.  Unexpected envelopes stay queued and are released by the
         take_unexpected fast paths in {!P2p}. *)
      release pool env
  | None -> Ds.Vec.push mb.unexpected env

let find_unexpected mb ~src ~tag ~comm ~ctx =
  let n = Ds.Vec.length mb.unexpected in
  let rec go i =
    if i >= n then None
    else if pattern_matches ~src ~tag ~comm ~ctx (Ds.Vec.get mb.unexpected i) then Some i
    else go (i + 1)
  in
  go 0

let remove_unexpected mb i =
  let env = Ds.Vec.get mb.unexpected i in
  let n = Ds.Vec.length mb.unexpected in
  (* Preserve arrival order: shift the tail left. *)
  for j = i to n - 2 do
    Ds.Vec.set mb.unexpected j (Ds.Vec.get mb.unexpected (j + 1))
  done;
  ignore (Ds.Vec.pop mb.unexpected);
  env

(* Under a wildcard source, MPI only mandates per-(src,dst) non-overtaking:
   among *different* sources, any interleaving of match order is legal.
   [candidate_sources] returns the index of the first (oldest) matching
   envelope per distinct source — each is a legal wildcard match that still
   preserves every pair's FIFO order. *)
let candidate_sources mb ~tag ~comm ~ctx =
  let n = Ds.Vec.length mb.unexpected in
  let seen = Hashtbl.create 4 in
  let acc = ref [] in
  for i = 0 to n - 1 do
    let env = Ds.Vec.get mb.unexpected i in
    if
      pattern_matches ~src:any_source ~tag ~comm ~ctx env
      && not (Hashtbl.mem seen env.src_world)
    then begin
      Hashtbl.add seen env.src_world ();
      acc := (i, env.src_world) :: !acc
    end
  done;
  List.rev !acc

let take_unexpected ?choose mb ~src ~tag ~comm ~ctx =
  let pick =
    match (choose, src = any_source) with
    | Some c, true -> (
        match candidate_sources mb ~tag ~comm ~ctx with
        | [] -> None
        | [ (i, _) ] -> Some i
        | cands ->
            let arr = Array.of_list cands in
            let j = c (Array.map snd arr) in
            let j = if j < 0 || j >= Array.length arr then 0 else j in
            Some (fst arr.(j)))
    | _ -> find_unexpected mb ~src ~tag ~comm ~ctx
  in
  match pick with
  | Some i ->
      let env = remove_unexpected mb i in
      (match env.on_matched with Some hook -> hook () | None -> ());
      Some env
  | None -> None

let peek_unexpected mb ~src ~tag ~comm ~ctx =
  match find_unexpected mb ~src ~tag ~comm ~ctx with
  | Some i -> Some (Ds.Vec.get mb.unexpected i)
  | None -> None

let post mb pr = mb.posted <- mb.posted @ [ pr ]
let post_probe mb pw = mb.probes <- mb.probes @ [ pw ]

let fail_matching mb ~pred ~exn =
  let failing, keep = List.partition (fun pr -> pr.live && pred pr) mb.posted in
  mb.posted <- keep;
  List.iter
    (fun pr ->
      pr.live <- false;
      pr.on_fail exn)
    failing;
  let probe_pred pw =
    pred
      {
        want_src = pw.p_src;
        want_tag = pw.p_tag;
        want_comm = pw.p_comm;
        want_ctx = pw.p_ctx;
        src_world = pw.p_src_world;
        comm_group = pw.p_group;
        deliver = ignore;
        on_fail = ignore;
        owner_world = -1;
        live = true;
      }
  in
  let failing_probes, waiting = List.partition (fun pw -> pw.p_live && probe_pred pw) mb.probes in
  mb.probes <- waiting;
  List.iter
    (fun pw ->
      pw.p_live <- false;
      pw.p_on_fail exn)
    failing_probes

let drop_owned mb ~world_rank =
  mb.posted <-
    List.filter
      (fun pr ->
        if pr.owner_world = world_rank then begin
          pr.live <- false;
          false
        end
        else true)
      mb.posted

let pending_count mb = List.length (List.filter (fun pr -> pr.live) mb.posted)
let unexpected_count mb = Ds.Vec.length mb.unexpected

(* Checker views: the correctness layer inspects mailbox contents at
   quiesce and finalize without consuming anything. *)
let live_posted mb = List.filter (fun pr -> pr.live) mb.posted
let live_probes mb = List.filter (fun pw -> pw.p_live) mb.probes
let iter_unexpected mb f = Ds.Vec.iter f mb.unexpected
