(** SPMD entry point: run one program on every rank of a simulated machine.

    [run ~ranks f] spawns [ranks] fibers, each executing [f comm] with its
    own view of the world communicator, runs the discrete-event simulation
    to completion, and reports per-rank results, the total simulated time,
    and the PMPI-style profile of every MPI call issued. *)

(** Raised in a result slot when the rank's fiber never finished (e.g. it
    was killed by failure injection before producing a value). *)
exception Rank_died

type 'a run_result = {
  results : ('a, exn) result array;  (** per-rank outcome *)
  sim_time : float;  (** simulated seconds until the last event *)
  profile : Profiling.snapshot;  (** all MPI calls, messages and bytes *)
  events : int;  (** discrete events processed (determinism diagnostic) *)
  diagnostics : Checker.diagnostic list;
      (** correctness findings (deadlock, collective mismatch, leaks, ...)
          recorded by {!Checker} at the current checking level *)
  trace : Trace.Event.data option;
      (** the recorded event trace when the run was traced, else [None];
          feed it to {!Trace.Analysis.analyze} or {!Trace.Chrome.to_json} *)
}

(** [run ?net ?node ?failures ?trace ~ranks f] executes the SPMD program.

    @param net network cost-model parameters (default {!Simnet.Netmodel.default})
    @param node [(intra-node params, node size)] switches to the legacy
    two-tier hierarchy (e.g. [(Simnet.Netmodel.intra_node, 8)])
    @param fabric a general tiered fabric ({!Simnet.Netmodel.fabric});
    takes precedence over [node].  When neither is given, the
    [MPISIM_TOPOLOGY] environment variable (read per run; a
    {!Simnet.Netmodel.fabric_of_spec} spec such as ["two:48"] or
    ["fat:48:4:8"]) supplies one — unset or empty keeps the flat model,
    replaying every pre-topology schedule bit-identically
    @param failures [(time, world_rank)] process failures to inject
    @param fail_at [(world_rank, time)] deterministic time-based failure
    schedule, armed via {!Ulfm.schedule_failures} (validated up front;
    both parameters may be combined)
    @param trace record an event trace of the run (default: the
    [MPISIM_TRACE] environment toggle, see {!Trace.Recorder.default_enabled});
    tracing is a pure observer — it changes no timing, event count or profile
    @param hooks schedule-exploration hooks routing every nondeterminism
    point (same-time ready sets, wildcard matching, completion order,
    chaos draws) through a decision procedure; default: whatever
    {!Exhook.factory} returns (set by [lib/explore] under [MPISIM_EXPLORE],
    [None] otherwise — the incumbent deterministic schedule)
    @param deadline simulated-time watchdog: the run raises
    {!Simnet.Engine.Limit_exceeded} once the clock passes this many
    simulated seconds (default: none) — turns livelocks into diagnosable
    failures
    @raise Simnet.Engine.Deadlock if the program hangs and the checker level
    is below [Heavy]; at [Heavy] and above the run instead terminates
    normally with a structured {!Checker.Deadlock_cycle} diagnostic (hung
    ranks report [Rank_died] in [results]) *)
val run :
  ?net:Simnet.Netmodel.params ->
  ?node:Simnet.Netmodel.params * int ->
  ?fabric:Simnet.Netmodel.fabric ->
  ?failures:(float * int) list ->
  ?fail_at:(int * float) list ->
  ?trace:bool ->
  ?hooks:Exhook.t ->
  ?deadline:float ->
  ranks:int ->
  (Comm.t -> 'a) ->
  'a run_result

(** [run_exn ?net ~ranks f] is {!run} but unwraps the per-rank results,
    re-raising the first rank failure. *)
val run_exn : ?net:Simnet.Netmodel.params -> ranks:int -> (Comm.t -> 'a) -> 'a array

(** [results_exn r] unwraps [r.results], re-raising the first failure. *)
val results_exn : 'a run_result -> 'a array

(** {1 Run observation}

    A monomorphic digest of a completed run, teed to
    {!with_run_collector} — lets a test harness compare observable run
    behaviour (time, event count, profile) across configurations for
    programs whose ['a run_result] types differ. *)

type run_summary = {
  rs_sim_time : float;
  rs_events : int;
  rs_profile : Profiling.snapshot;
}

(** [with_run_collector f] runs [f] while collecting a {!run_summary} for
    every {!run} that completes inside it (in completion order), restoring
    the previous collector afterwards. *)
val with_run_collector : (unit -> 'a) -> 'a * run_summary list
