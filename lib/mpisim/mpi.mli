(** SPMD entry point: run one program on every rank of a simulated machine.

    [run ~ranks f] spawns [ranks] fibers, each executing [f comm] with its
    own view of the world communicator, runs the discrete-event simulation
    to completion, and reports per-rank results, the total simulated time,
    and the PMPI-style profile of every MPI call issued. *)

(** Raised in a result slot when the rank's fiber never finished (e.g. it
    was killed by failure injection before producing a value). *)
exception Rank_died

type 'a run_result = {
  results : ('a, exn) result array;  (** per-rank outcome *)
  sim_time : float;  (** simulated seconds until the last event *)
  profile : Profiling.snapshot;  (** all MPI calls, messages and bytes *)
  events : int;  (** discrete events processed (determinism diagnostic) *)
  diagnostics : Checker.diagnostic list;
      (** correctness findings (deadlock, collective mismatch, leaks, ...)
          recorded by {!Checker} at the current checking level *)
}

(** [run ?net ?node ?failures ~ranks f] executes the SPMD program.

    @param net network cost-model parameters (default {!Simnet.Netmodel.default})
    @param node [(intra-node params, node size)] switches to a hierarchical
    fabric (e.g. [(Simnet.Netmodel.intra_node, 8)])
    @param failures [(time, world_rank)] process failures to inject
    @raise Simnet.Engine.Deadlock if the program hangs and the checker level
    is below [Heavy]; at [Heavy] and above the run instead terminates
    normally with a structured {!Checker.Deadlock_cycle} diagnostic (hung
    ranks report [Rank_died] in [results]) *)
val run :
  ?net:Simnet.Netmodel.params ->
  ?node:Simnet.Netmodel.params * int ->
  ?failures:(float * int) list ->
  ranks:int ->
  (Comm.t -> 'a) ->
  'a run_result

(** [run_exn ?net ~ranks f] is {!run} but unwraps the per-rank results,
    re-raising the first rank failure. *)
val run_exn : ?net:Simnet.Netmodel.params -> ranks:int -> (Comm.t -> 'a) -> 'a array

(** [results_exn r] unwraps [r.results], re-raising the first failure. *)
val results_exn : 'a run_result -> 'a array
