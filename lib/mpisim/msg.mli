(** Message envelopes and per-rank mailboxes.

    Matching follows MPI semantics: a posted receive matches an incoming
    envelope when communicator, context (user vs. library-internal), source
    and tag agree, where source/tag may be wildcards.  Unexpected messages
    queue in arrival order; posted receives match in post order. *)

(** Wildcard constants (match any source / any tag). *)
val any_source : int

val any_tag : int

(** Matching context: user-level traffic and library-internal collective
    traffic live in separate matching spaces (real MPI uses separate context
    ids for this). *)
type ctx = User | Internal

(** A message in flight: either a dense copy of the sent elements together
    with its datatype (the witness lets the receiver copy type-safely), or a
    {e sparse} payload — datatype + element count with no materialized
    buffer.  Sparse payloads let large-count tests and benchmarks move
    multi-GiB transfers (counts > 2^31) through the full matching/cost path
    without allocating real element arrays; the receiver side type-checks
    and count-checks exactly like the dense path but performs no copy. *)
type packed =
  | Packed : 'a Datatype.t * 'a array -> packed
  | Sparse : 'a Datatype.t * int -> packed

(** Envelopes are mutable because the runtime recycles them through a
    free-list {!pool}: a delivered envelope's record is reused for a later
    message instead of being reallocated (a measurable share of minor-heap
    churn at large rank counts).  Consumers must not retain an envelope
    past the call that handed it to them. *)
type envelope = {
  mutable src : int;  (** sender's rank in the communicator *)
  mutable src_world : int;  (** sender's world rank (for checker attribution) *)
  mutable tag : int;
  mutable comm_id : int;
  mutable ctx : ctx;
  mutable count : int;
  mutable bytes : int;
  mutable sent_at : float;  (** injection time (for the checker's finalize scan) *)
  mutable payload : packed;
  mutable on_matched : (unit -> unit) option;  (** synchronous-send completion hook *)
  mutable trace : Trace.Event.message option;
      (** tracing record for this message, when the run is traced *)
  mutable pooled : bool;  (** true while the envelope sits in a free list *)
}

(** A posted (pending) receive. *)
type pending_recv = {
  want_src : int;  (** comm rank or {!any_source} *)
  want_tag : int;  (** tag or {!any_tag} *)
  want_comm : int;
  want_ctx : ctx;
  src_world : int;  (** world rank of [want_src], [-1] for wildcard *)
  comm_group : int array;  (** comm rank -> world rank, for failure checks *)
  deliver : envelope -> unit;
  on_fail : exn -> unit;
  owner_world : int;  (** the receiving rank *)
  mutable live : bool;
}

(** A parked blocking probe: notified (without consuming) when a matching
    message arrives. *)
type probe_waiter = {
  p_src : int;
  p_tag : int;
  p_comm : int;
  p_ctx : ctx;
  p_src_world : int;
  p_group : int array;
  notify : envelope -> unit;
  p_on_fail : exn -> unit;
  p_owner_world : int;  (** the probing rank *)
  mutable p_live : bool;
}

type mailbox

(** [create ()] is an empty mailbox. *)
val create : unit -> mailbox

(** [matches pr env] is the matching predicate. *)
val matches : pending_recv -> envelope -> bool

(** {1 Envelope pool}

    One pool per {!World}: envelopes cycle sender → mailbox → receiver →
    free list, so the steady-state message path allocates only the payload
    copy. *)

type pool

val create_pool : unit -> pool

(** [make_envelope pool ~src ... ~trace] is a fresh or recycled envelope
    with the given contents. *)
val make_envelope :
  pool ->
  src:int ->
  src_world:int ->
  tag:int ->
  comm_id:int ->
  ctx:ctx ->
  count:int ->
  bytes:int ->
  sent_at:float ->
  payload:packed ->
  on_matched:(unit -> unit) option ->
  trace:Trace.Event.message option ->
  envelope

(** [release pool env] returns [env] to the free list, dropping its
    payload/closure references.  Releasing an already-released envelope is
    a no-op (the [pooled] guard), so ownership hand-offs need not be
    exactly-once. *)
val release : pool -> envelope -> unit

(** [pool_stats pool] is [(made, reused)] — envelopes allocated fresh vs.
    recycled (the engine bench reports the reuse ratio). *)
val pool_stats : pool -> int * int

(** [arrive pool mb env] delivers an envelope: hands it to the first live
    matching posted receive (then releases it back to [pool] — delivery
    consumes the envelope synchronously), else queues it as unexpected. *)
val arrive : pool -> mailbox -> envelope -> unit

(** [take_unexpected mb ~src ~tag ~comm ~ctx] removes and returns the first
    queued envelope matching the given (possibly wildcard) pattern.

    When [choose] is given and [src] is {!any_source}, the candidates are
    the oldest matching envelope of each distinct source (every one a legal
    wildcard match under MPI's per-pair non-overtaking rule); [choose]
    receives their source world ranks and picks by index (clamped).
    Without [choose] the oldest match overall wins — the incumbent
    behaviour. *)
val take_unexpected :
  ?choose:(int array -> int) ->
  mailbox -> src:int -> tag:int -> comm:int -> ctx:ctx -> envelope option

(** [peek_unexpected mb ~src ~tag ~comm ~ctx] is like {!take_unexpected}
    without removing (probe). *)
val peek_unexpected : mailbox -> src:int -> tag:int -> comm:int -> ctx:ctx -> envelope option

(** [post mb pr] appends a pending receive. *)
val post : mailbox -> pending_recv -> unit

(** [post_probe mb pw] parks a blocking probe. *)
val post_probe : mailbox -> probe_waiter -> unit

(** [fail_matching mb ~pred ~exn] fails (and removes) every live posted
    receive satisfying [pred] — used for failure injection and revocation. *)
val fail_matching : mailbox -> pred:(pending_recv -> bool) -> exn:exn -> unit

(** [drop_owned mb ~world_rank] deactivates posted receives owned by a dead
    rank. *)
val drop_owned : mailbox -> world_rank:int -> unit

(** [pending_count mb] is the number of live posted receives (diagnostics). *)
val pending_count : mailbox -> int

(** [unexpected_count mb] is the number of queued unexpected messages. *)
val unexpected_count : mailbox -> int

(** {1 Checker views}

    Non-destructive inspection used by the correctness checker at quiesce
    (deadlock diagnosis) and finalize (leak detection). *)

(** [live_posted mb] is every live posted receive, in post order. *)
val live_posted : mailbox -> pending_recv list

(** [live_probes mb] is every parked blocking probe. *)
val live_probes : mailbox -> probe_waiter list

(** [iter_unexpected mb f] applies [f] to each queued unexpected envelope. *)
val iter_unexpected : mailbox -> (envelope -> unit) -> unit
