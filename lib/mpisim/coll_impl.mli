(** Collective algorithm bodies, implemented on point-to-point messaging.

    This is the runtime half of the tuned-collective subsystem: the
    algorithm catalogue and the cost-driven selection live in
    {!Coll_algos}, while this module holds one body per
    [Coll_algos.Algo.*] constructor, plus the shared building blocks the
    irregular collectives use.  All bodies take their internal tags
    explicitly so the non-blocking wrappers can allocate tags at call time
    (keeping rank-local tag counters aligned) and run the body inside a
    helper fiber.

    Bodies are not individually profiled; the dispatching layer
    ({!Collectives}) records both the plain MPI call name and the
    annotated algorithm choice. *)

(** [combine comm op acc tmp count ~received_left] element-wise folds [tmp]
    into [acc] and charges the reduction cost; [received_left] puts the
    received data on the left of the operator (its origin ranks are lower),
    which keeps deterministic ordering for the reduction schedules. *)
val combine :
  Comm.t -> 'a Op.t -> 'a array -> 'a array -> int -> received_left:bool -> unit

(** Dissemination barrier: [ceil(log2 p)] rounds of +-2^k exchanges. *)
val dissemination : Comm.t -> tag:int -> unit

(** {1 Broadcast} *)

val bcast_binomial :
  Comm.t -> 'a Datatype.t -> 'a array -> int -> int -> root:int -> tag:int -> unit

(** van de Geijn: binomial scatter of the payload, then a ring allgather of
    the blocks.  [tag] covers the scatter phase, [tag2] the allgather. *)
val bcast_scatter_allgather :
  Comm.t -> 'a Datatype.t -> 'a array -> int -> int -> root:int -> tag:int -> tag2:int -> unit

(** {1 Reduce} *)

(** Binomial-tree reduction; returns the accumulated vector (meaningful at
    the root). *)
val reduce_binomial :
  Comm.t ->
  'a Datatype.t ->
  'a Op.t ->
  sendbuf:'a array ->
  pos:int ->
  count:int ->
  root:int ->
  tag:int ->
  'a array

(** {1 Allreduce}

    All bodies leave the reduced vector in [recvbuf.(0 .. count-1)] on
    every rank. *)

val allreduce_reduce_bcast :
  Comm.t ->
  'a Datatype.t ->
  'a Op.t ->
  sendbuf:'a array ->
  pos:int ->
  recvbuf:'a array ->
  count:int ->
  tag:int ->
  tag2:int ->
  unit

val allreduce_recursive_doubling :
  Comm.t ->
  'a Datatype.t ->
  'a Op.t ->
  sendbuf:'a array ->
  pos:int ->
  recvbuf:'a array ->
  count:int ->
  tag_fold:int ->
  tag:int ->
  unit

val allreduce_rabenseifner :
  Comm.t ->
  'a Datatype.t ->
  'a Op.t ->
  sendbuf:'a array ->
  pos:int ->
  recvbuf:'a array ->
  count:int ->
  tag_fold:int ->
  tag_rs:int ->
  tag_ag:int ->
  unit

val allreduce_ring :
  Comm.t ->
  'a Datatype.t ->
  'a Op.t ->
  sendbuf:'a array ->
  pos:int ->
  recvbuf:'a array ->
  count:int ->
  tag_rs:int ->
  tag_ag:int ->
  unit

(** {1 Allgather}

    [my_block_buf.(my_block_pos ..)] is the caller's block; the
    concatenation lands in [recvbuf.(rpos ..)]. *)

val allgather_bruck :
  Comm.t ->
  'a Datatype.t ->
  recvbuf:'a array ->
  rpos:int ->
  count:int ->
  tag:int ->
  my_block_pos:int ->
  my_block_buf:'a array ->
  unit

val allgather_ring :
  Comm.t ->
  'a Datatype.t ->
  recvbuf:'a array ->
  rpos:int ->
  count:int ->
  tag:int ->
  my_block_pos:int ->
  my_block_buf:'a array ->
  unit

(** Requires a power-of-two communicator size. *)
val allgather_recursive_doubling :
  Comm.t ->
  'a Datatype.t ->
  recvbuf:'a array ->
  rpos:int ->
  count:int ->
  tag:int ->
  my_block_pos:int ->
  my_block_buf:'a array ->
  unit

(** {1 Alltoall} *)

(** The generic posted-exchange engine shared by alltoall(v/w): every peer
    pair gets a message, all requests posted up front. *)
val post_all_exchange :
  Comm.t ->
  'a Datatype.t ->
  tag:int ->
  scount_of:(int -> int) ->
  spos_of:(int -> int) ->
  rcount_of:(int -> int) ->
  rpos_of:(int -> int) ->
  sendbuf:'a array ->
  recvbuf:'a array ->
  unit

val alltoall_pairwise :
  Comm.t -> 'a Datatype.t -> sendbuf:'a array -> recvbuf:'a array -> count:int -> tag:int -> unit

(** Bruck's alltoall: log rounds of aggregated blocks — fewer startups than
    pairwise at the price of shipping each element ~log2(p)/2 times. *)
val alltoall_bruck :
  Comm.t -> 'a Datatype.t -> sendbuf:'a array -> recvbuf:'a array -> count:int -> tag:int -> unit

(** {1 Hierarchical bodies}

    Each takes [nodes]: the node id of every communicator rank (from
    [Simnet.Netmodel.node_of] over the communicator's group).  All ranks
    derive the same node-membership structure from it — a node's members
    are its comm ranks ascending, its leader the lowest — so no routing
    envelopes are needed and results are bit-identical to the flat
    incumbents for exact (integer) operations. *)

(** Node-leader broadcast: binomial over one representative per node (the
    root for its own node), then binomial within each node.  [tag] covers
    the inter-leader phase, [tag2] the intra-node phase. *)
val bcast_node_leader :
  Comm.t ->
  'a Datatype.t ->
  'a array ->
  int ->
  int ->
  root:int ->
  nodes:int array ->
  tag:int ->
  tag2:int ->
  unit

(** Node-leader allreduce: binomial reduce to each node's leader
    ([tag_up]), recursive doubling across leaders ([tag_fold]/[tag_rd]),
    binomial broadcast back down ([tag_down]). *)
val allreduce_node_leader :
  Comm.t ->
  'a Datatype.t ->
  'a Op.t ->
  sendbuf:'a array ->
  pos:int ->
  recvbuf:'a array ->
  count:int ->
  nodes:int array ->
  tag_up:int ->
  tag_fold:int ->
  tag_rd:int ->
  tag_down:int ->
  unit

(** SMP-aware alltoall: on-node blocks exchanged directly ([tag_local]);
    remote blocks gathered at the node leader ([tag_up]), shipped as one
    bundle per node pair ([tag_net]) and scattered on arrival
    ([tag_down]). *)
val alltoall_smp :
  Comm.t ->
  'a Datatype.t ->
  sendbuf:'a array ->
  recvbuf:'a array ->
  count:int ->
  nodes:int array ->
  tag_local:int ->
  tag_up:int ->
  tag_net:int ->
  tag_down:int ->
  unit

(** Grid alltoall (the paper's Fig. 9): two coordinate-fixing phases over
    a near-square grid ([Coll_algos.Cost.grid_dims]), [O(sqrt p)] startups
    per rank.  Falls back to the direct exchange when the grid degenerates
    to a line (prime [p]). *)
val alltoall_hypergrid :
  Comm.t ->
  'a Datatype.t ->
  sendbuf:'a array ->
  recvbuf:'a array ->
  count:int ->
  tag:int ->
  tag2:int ->
  unit
