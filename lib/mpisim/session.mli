(** Sessions-style isolated initialization (MPI-4 §11).

    A session is one rank's private handle for deriving communicators from
    {e named process sets}, without any collective call, shared counter
    mutation, or ordering constraint visible to other libraries on the same
    ranks.  Two libraries (say, the serving engine and the checkpoint
    engine) can each [init] their own session and build their own
    communicators over the same ranks in any relative order — the isolation
    guarantee that `MPI_COMM_WORLD`-era initialization lacks.

    Process sets are named rank groups registered in the {!World};
    ["mpi://world"] (all ranks) and ["mpi://self"] (the calling rank) are
    built in, mirroring the standard's predefined sets.

    Isolation rules:
    - communicators are memoized per (session name, process set): all
      members using the same session name obtain the {e same} communicator
      shared state, while different session names over the same set yield
      {e distinct} communicators (separate collective sequences and tag
      spaces);
    - deriving a communicator involves no communication and advances no
      counter another session can observe;
    - registering a process set is idempotent for identical membership and
      a usage error for conflicting membership. *)

type t

(** [init ?name comm] opens a session for the calling rank.  [comm] only
    supplies the world handle and the caller's identity (nothing on it is
    mutated or communicated with); [name] scopes the session — use your
    library's name. *)
val init : ?name:string -> Comm.t -> t

val name : t -> string

(** [pset_names s] lists the registered process-set names, sorted. *)
val pset_names : t -> string list

(** [register_pset s name ranks] names a set of world ranks. *)
val register_pset : t -> string -> int array -> unit

(** [comm_of_pset s name] derives this session's communicator over the
    named set.  A usage error when the set is unknown or the caller is not
    a member. *)
val comm_of_pset : t -> string -> Comm.t
