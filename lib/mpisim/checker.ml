module V = Ds.Vec

type level = Off | Light | Heavy | Communication

let rank_of_level = function Off -> 0 | Light -> 1 | Heavy -> 2 | Communication -> 3

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "none" -> Some Off
  | "light" -> Some Light
  | "heavy" -> Some Heavy
  | "communication" | "comm" -> Some Communication
  | _ -> None

let current =
  ref
    (match Option.bind (Sys.getenv_opt "MPISIM_CHECK") level_of_string with
    | Some l -> l
    | None -> Light)

let set_level l = current := l
let level () = !current
let enabled l = rank_of_level l <= rank_of_level !current

let with_level l f =
  let saved = !current in
  current := l;
  Fun.protect ~finally:(fun () -> current := saved) f

type coll_sig = { coll_op : string; coll_root : int; coll_count : int; coll_dt : string }

type detail =
  | Deadlock_cycle of { cycle : int list; blocked : (int * string) list }
  | Collective_mismatch of { index : int; field : string; expected : coll_sig; got : coll_sig }
  | Truncation of { sent : int; capacity : int }
  | Datatype_mismatch of { sent : string; expected : string }
  | Request_leak
  | Persistent_leak of { starts : int }
  | Unmatched_send of { dst : int; tag : int; count : int }
  | Window_leak

type diagnostic = { rank : int; comm : int; op : string; location : string; detail : detail }

exception Violation of diagnostic

let sig_to_string s =
  Printf.sprintf "%s(root=%d, count=%d, datatype=%s)" s.coll_op s.coll_root s.coll_count
    (if s.coll_dt = "" then "?" else s.coll_dt)

let detail_to_string = function
  | Deadlock_cycle { cycle; blocked } ->
      let cycle_s =
        match cycle with
        | [] -> "no cycle (a peer exited without sending)"
        | c -> "cycle " ^ String.concat " -> " (List.map string_of_int c)
      in
      Printf.sprintf "deadlock: %s; blocked: %s" cycle_s
        (String.concat ", "
           (List.map (fun (r, what) -> Printf.sprintf "rank %d in %s" r what) blocked))
  | Collective_mismatch { index; field; expected; got } ->
      Printf.sprintf "collective #%d disagrees on %s: expected %s, got %s" index field
        (sig_to_string expected) (sig_to_string got)
  | Truncation { sent; capacity } ->
      Printf.sprintf "truncation: %d elements sent into capacity %d" sent capacity
  | Datatype_mismatch { sent; expected } ->
      Printf.sprintf "datatype mismatch: sent %s, receiver expects %s" sent expected
  | Request_leak -> "request leak: completion never waited for or tested"
  | Persistent_leak { starts } ->
      Printf.sprintf
        "persistent request leak: never freed with MPI_Request_free (%d start%s)" starts
        (if starts = 1 then "" else "s")
  | Unmatched_send { dst; tag; count } ->
      Printf.sprintf "unmatched send: %d elements to rank %d (tag %d) never received" count dst tag
  | Window_leak -> "window leak: RMA window never freed"

let to_string d =
  Printf.sprintf "[%s] rank %d, comm %d, %s: %s" d.location d.rank d.comm d.op
    (detail_to_string d.detail)

let pp fmt d = Format.pp_print_string fmt (to_string d)

(* ------------------------------------------------------------------ *)
(* Per-world state.                                                    *)
(* ------------------------------------------------------------------ *)

type window_token = { mutable freed : bool }

type tracked_request = {
  tr_rank : int;
  tr_comm : int;
  tr_op : string;
  tr_at : float;  (* simulated time the request was created *)
  tr_req : Request.t;
}
type tracked_window = { tw_rank : int; tw_comm : int; tw_tok : window_token }

(* Persistent handles are tracked through closures (reading the handle's
   phase/round counter at finalize time) so the checker does not depend on
   the [Persist] module. *)
type tracked_persistent = {
  tp_rank : int;
  tp_comm : int;
  tp_op : string;
  tp_at : float;
  tp_freed : unit -> bool;
  tp_starts : unit -> int;
}

type state = {
  diags : diagnostic V.t;
  coll_log : (int, coll_sig V.t) Hashtbl.t; (* cid -> agreed call sequence *)
  coll_pos : (int * int, int ref) Hashtbl.t; (* (cid, world rank) -> next index *)
  reqs : tracked_request V.t;
  windows : tracked_window V.t;
  persistents : tracked_persistent V.t;
}

let create () =
  {
    diags = V.create ();
    coll_log = Hashtbl.create 8;
    coll_pos = Hashtbl.create 16;
    reqs = V.create ();
    windows = V.create ();
    persistents = V.create ();
  }

let collector : (diagnostic -> unit) option ref = ref None

let with_collector f =
  let saved = !collector in
  let seen = V.create () in
  collector := Some (fun d -> V.push seen d);
  let finally () = collector := saved in
  let result = Fun.protect ~finally f in
  (result, V.to_list seen)

let report st d =
  V.push st.diags d;
  match !collector with Some tee -> tee d | None -> ()

let diagnostics st = V.to_list st.diags

(* ------------------------------------------------------------------ *)
(* Collective-ordering agreement.                                      *)
(* ------------------------------------------------------------------ *)

(* The first rank to issue its [i]-th collective on a communicator defines
   the reference signature for position [i]; every later rank is compared
   against it.  Ranks progress at different speeds but each appends in its
   own order, so the log is exactly the agreed sequence when the program is
   correct. *)
let first_disagreement expected got =
  if expected.coll_op <> got.coll_op then Some "operation"
  else if expected.coll_root <> got.coll_root then Some "root"
  else if expected.coll_count >= 0 && got.coll_count >= 0 && expected.coll_count <> got.coll_count
  then Some "count"
  else if expected.coll_dt <> "" && got.coll_dt <> "" && expected.coll_dt <> got.coll_dt then
    Some "datatype"
  else None

let record_collective st ~rank ~comm ~op ~root ~count ~datatype =
  if enabled Communication then begin
    let got = { coll_op = op; coll_root = root; coll_count = count; coll_dt = datatype } in
    let pos =
      match Hashtbl.find_opt st.coll_pos (comm, rank) with
      | Some r -> r
      | None ->
          let r = ref 0 in
          Hashtbl.add st.coll_pos (comm, rank) r;
          r
    in
    let log =
      match Hashtbl.find_opt st.coll_log comm with
      | Some l -> l
      | None ->
          let l = V.create () in
          Hashtbl.add st.coll_log comm l;
          l
    in
    let index = !pos in
    incr pos;
    if index >= V.length log then V.push log got
    else begin
      let expected = V.get log index in
      match first_disagreement expected got with
      | None -> ()
      | Some field ->
          let d =
            {
              rank;
              comm;
              op;
              location = "collective";
              detail = Collective_mismatch { index; field; expected; got };
            }
          in
          report st d;
          raise (Violation d)
    end
  end

(* ------------------------------------------------------------------ *)
(* Match-time errors.                                                  *)
(* ------------------------------------------------------------------ *)

let record_match_error st ~rank ~comm ~op ~src ~tag e =
  ignore src;
  ignore tag;
  if enabled Light then
    match e with
    | Errors.Truncated { sent; capacity } ->
        report st { rank; comm; op; location = "p2p-match"; detail = Truncation { sent; capacity } }
    | Errors.Type_mismatch { sent; expected } ->
        report st
          { rank; comm; op; location = "p2p-match"; detail = Datatype_mismatch { sent; expected } }
    | _ -> ()

(* ------------------------------------------------------------------ *)
(* Resource tracking.                                                  *)
(* ------------------------------------------------------------------ *)

let track_request st ~rank ~comm ~op ~at req =
  if enabled Heavy then
    V.push st.reqs { tr_rank = rank; tr_comm = comm; tr_op = op; tr_at = at; tr_req = req }

let track_persistent st ~rank ~comm ~op ~at ~freed ~starts =
  if enabled Heavy then
    V.push st.persistents
      { tp_rank = rank; tp_comm = comm; tp_op = op; tp_at = at; tp_freed = freed;
        tp_starts = starts }

let inert_token = { freed = true }

let track_window st ~rank ~comm =
  if enabled Heavy then begin
    let tok = { freed = false } in
    V.push st.windows { tw_rank = rank; tw_comm = comm; tw_tok = tok };
    tok
  end
  else inert_token

let release_window tok = tok.freed <- true

(* ------------------------------------------------------------------ *)
(* Deadlock diagnosis.                                                 *)
(* ------------------------------------------------------------------ *)

let describe_pending (pr : Msg.pending_recv) =
  let what = match pr.want_ctx with Msg.User -> "recv" | Msg.Internal -> "collective/internal recv" in
  let src = if pr.want_src = -1 then "any" else string_of_int pr.want_src in
  let tag = if pr.want_tag = -1 then "any" else string_of_int pr.want_tag in
  Printf.sprintf "%s(src=%s, tag=%s, comm=%d)" what src tag pr.want_comm

let describe_probe (pw : Msg.probe_waiter) =
  let src = if pw.p_src = -1 then "any" else string_of_int pw.p_src in
  Printf.sprintf "probe(src=%s, comm=%d)" src pw.p_comm

(* One wait-for edge per rank a blocked receive could be satisfied by; a
   wildcard receive contributes an edge to every live group member. *)
let wait_targets ~rank_alive ~owner ~src_world ~group =
  if src_world >= 0 then if src_world <> owner then [ src_world ] else []
  else
    Array.to_list group |> List.filter (fun g -> g <> owner && rank_alive g) |> List.sort_uniq compare

let find_cycle edges =
  (* [edges]: (from, to) list.  Iterative DFS with an explicit path; the
     first back-edge into the current path yields the cycle. *)
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      let cur = match Hashtbl.find_opt adj a with Some l -> l | None -> [] in
      Hashtbl.replace adj a (b :: cur))
    edges;
  let visited = Hashtbl.create 16 in
  let result = ref None in
  let rec dfs path node =
    if !result = None then
      match List.find_index (fun n -> n = node) path with
      | Some i ->
          (* path is most-recent-first: the cycle is the prefix up to node *)
          result := Some (List.rev (node :: List.filteri (fun j _ -> j <= i) path))
      | None ->
          if not (Hashtbl.mem visited node) then begin
            Hashtbl.add visited node ();
            let succs = match Hashtbl.find_opt adj node with Some l -> l | None -> [] in
            List.iter (fun s -> dfs (node :: path) s) succs
          end
  in
  Hashtbl.iter (fun node _ -> if !result = None then dfs [] node) adj;
  match !result with Some cycle -> cycle | None -> []

let diagnose_deadlock st ~mailboxes ~parked ~rank_alive =
  let blocked = ref [] and edges = ref [] in
  Array.iter
    (fun mb ->
      List.iter
        (fun (pr : Msg.pending_recv) ->
          blocked := (pr.Msg.owner_world, describe_pending pr) :: !blocked;
          List.iter
            (fun t -> edges := (pr.Msg.owner_world, t) :: !edges)
            (wait_targets ~rank_alive ~owner:pr.Msg.owner_world ~src_world:pr.Msg.src_world
               ~group:pr.Msg.comm_group))
        (Msg.live_posted mb);
      List.iter
        (fun (pw : Msg.probe_waiter) ->
          blocked := (pw.Msg.p_owner_world, describe_probe pw) :: !blocked;
          List.iter
            (fun t -> edges := (pw.Msg.p_owner_world, t) :: !edges)
            (wait_targets ~rank_alive ~owner:pw.Msg.p_owner_world ~src_world:pw.Msg.p_src_world
               ~group:pw.Msg.p_group))
        (Msg.live_probes mb))
    mailboxes;
  (* parked ranks with no posted receive are blocked in a request wait or
     an agreement; report them too so no stuck rank goes unmentioned *)
  List.iter
    (fun r ->
      if not (List.exists (fun (o, _) -> o = r) !blocked) then
        blocked := (r, "parked (waiting on a request or agreement)") :: !blocked)
    parked;
  let blocked = List.sort compare (List.rev !blocked) in
  let cycle = find_cycle !edges in
  let rank = match cycle with r :: _ -> r | [] -> ( match blocked with (r, _) :: _ -> r | [] -> -1)
  in
  let comm, op =
    let from_posted =
      Array.to_list mailboxes
      |> List.concat_map (fun mb -> Msg.live_posted mb)
      |> List.find_opt (fun (pr : Msg.pending_recv) -> pr.Msg.owner_world = rank)
    in
    match from_posted with
    | Some pr -> (pr.Msg.want_comm, describe_pending pr)
    | None -> (-1, "quiesce")
  in
  let d = { rank; comm; op; location = "quiesce"; detail = Deadlock_cycle { cycle; blocked } } in
  report st d;
  d

(* ------------------------------------------------------------------ *)
(* Finalize leak checks.                                               *)
(* ------------------------------------------------------------------ *)

let finalize st ~mailboxes ~rank_alive ~comm_revoked ~comm_failed_at =
  (* Traffic that was already in flight when a member of its communicator
     died may have been legitimately abandoned (e.g. one half of a buddy
     [sendrecv] whose surrounding protocol a third rank's failure tore
     down before any revocation).  Traffic initiated {e after} the
     failure has no such excuse: a live-to-live leak on a damaged
     communicator is still a leak. *)
  let abandoned ~comm ~at =
    let failed = comm_failed_at comm in
    failed < infinity && at <= failed
  in
  if enabled Heavy then begin
    V.iter
      (fun tr ->
        if
          rank_alive tr.tr_rank
          && (not (comm_revoked tr.tr_comm))
          && (not (abandoned ~comm:tr.tr_comm ~at:tr.tr_at))
          && (not (Request.was_observed tr.tr_req))
          && not (Request.is_failed tr.tr_req)
        then
          report st
            {
              rank = tr.tr_rank;
              comm = tr.tr_comm;
              op = tr.tr_op;
              location = "finalize";
              detail = Request_leak;
            })
      st.reqs;
    Array.iteri
      (fun dst mb ->
        Msg.iter_unexpected mb (fun (env : Msg.envelope) ->
            if
              env.Msg.ctx = Msg.User && rank_alive dst && rank_alive env.Msg.src_world
              && (not (comm_revoked env.Msg.comm_id))
              && not (abandoned ~comm:env.Msg.comm_id ~at:env.Msg.sent_at)
            then
              report st
                {
                  rank = env.Msg.src_world;
                  comm = env.Msg.comm_id;
                  op = "MPI_Send";
                  location = "finalize";
                  detail = Unmatched_send { dst; tag = env.Msg.tag; count = env.Msg.count };
                }))
      mailboxes;
    V.iter
      (fun tp ->
        if
          rank_alive tp.tp_rank
          && (not (comm_revoked tp.tp_comm))
          && (not (abandoned ~comm:tp.tp_comm ~at:tp.tp_at))
          && not (tp.tp_freed ())
        then
          report st
            {
              rank = tp.tp_rank;
              comm = tp.tp_comm;
              op = tp.tp_op;
              location = "finalize";
              detail = Persistent_leak { starts = tp.tp_starts () };
            })
      st.persistents;
    V.iter
      (fun tw ->
        if (not tw.tw_tok.freed) && rank_alive tw.tw_rank then
          report st
            {
              rank = tw.tw_rank;
              comm = tw.tw_comm;
              op = "MPI_Win_create";
              location = "finalize";
              detail = Window_leak;
            })
      st.windows
  end
