module Engine = Simnet.Engine

type status = { source : int; tag : int; count : int }
type state = Pending | Complete of status | Failed of exn

type t = {
  engine : Engine.t;
  mutable state : state;
  mutable waiter : status Engine.resumer option;
  mutable observed : bool;  (* did the program ever see this request complete? *)
}

let create engine = { engine; state = Pending; waiter = None; observed = false }
let completed_now engine status = { engine; state = Complete status; waiter = None; observed = false }

(* Status of an operation that never ran: MPI_Status set to "empty"
   (MPI-4 §3.7.3) — used by persistent requests waited on while inactive. *)
let empty_status = { source = -1; tag = -1; count = 0 }

let reactivate r =
  match r.state with
  | Pending -> Errors.usage "Request.reactivate: request is still active"
  | Complete _ | Failed _ ->
      r.state <- Pending;
      r.waiter <- None;
      r.observed <- false

let notify r =
  match r.waiter with
  | None -> ()
  | Some w -> (
      r.waiter <- None;
      match r.state with
      | Complete status -> Engine.resume w status
      | Failed e -> Engine.fail w e
      | Pending -> assert false)

let complete r status =
  (match r.state with
  | Pending -> r.state <- Complete status
  | Complete _ | Failed _ -> Errors.usage "Request.complete: request already completed");
  notify r

let abort r e =
  match r.state with
  | Pending ->
      r.state <- Failed e;
      notify r
  | Complete _ | Failed _ -> () (* completion won the race; failure is moot *)

let is_complete r =
  match r.state with
  | Pending -> false
  | Complete _ | Failed _ ->
      r.observed <- true;
      true

let wait r =
  r.observed <- true;
  match r.state with
  | Complete status -> status
  | Failed e -> raise e
  | Pending -> Engine.suspend r.engine (fun resumer -> r.waiter <- Some resumer)

let test r =
  match r.state with
  | Complete status ->
      r.observed <- true;
      Some status
  | Failed e ->
      r.observed <- true;
      raise e
  | Pending -> None

let was_observed r = r.observed
let is_failed r = match r.state with Failed _ -> true | Pending | Complete _ -> false

let wait_all rs = List.map wait rs

let wait_any rs =
  if rs = [] then Errors.usage "Request.wait_any: empty request list";
  let arr = Array.of_list rs in
  let engine = arr.(0).engine in
  let find_ready () =
    let ready = ref [] in
    Array.iteri
      (fun i r ->
        match r.state with Pending -> () | Complete _ | Failed _ -> ready := i :: !ready)
      arr;
    match List.rev !ready with
    | [] -> None
    | ready ->
        (* Which of several simultaneously complete requests a wait-any
           observes is a nondeterminism point; without exploration the
           chooser answers 0, the first ready — the incumbent behaviour.
           Only the observed request counts as seen for leak checking. *)
        let ids = Array.of_list ready in
        let i = ids.(Engine.choose engine ~kind:Completion ~ids) in
        let r = arr.(i) in
        r.observed <- true;
        (match r.state with
        | Complete status -> Some (i, status)
        | Failed e -> raise e
        | Pending -> assert false)
  in
  match find_ready () with
  | Some res -> res
  | None ->
      (* Park once; the engine's resumer is one-shot, so later completions
         of the other requests are recorded in their state but do not wake
         us twice. *)
      let _ = Engine.suspend engine (fun resumer -> List.iter (fun r -> r.waiter <- Some resumer) rs)
      in
      List.iter (fun r -> r.waiter <- None) rs;
      (match find_ready () with Some res -> res | None -> assert false)

let test_all rs =
  if List.for_all is_complete rs then Some (List.map (fun r -> wait r) rs) else None
