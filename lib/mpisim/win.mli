(** One-sided communication (MPI RMA windows, active-target fence mode).

    The paper notes that KaMPIng's core "is designed with the rest of the
    MPI standard in mind, facilitating a straightforward implementation in
    the future" (Sec. I) — this module is that claim exercised: windows,
    put/get/accumulate and fence synchronization built on the same typed
    runtime.

    Semantics follow MPI's fence epochs: origin-side calls between two
    {!fence}s are {e queued}; the closing fence (collective) applies every
    put and accumulate at the targets and materializes every get.  Within
    one epoch, updates to the same target window are applied in origin-rank
    order, then per origin in issue order (a deterministic refinement of
    MPI's "undefined unless separated by fences"). *)

type 'a t

(** A pending one-sided read; its value exists after the closing fence. *)
type 'a pending_get

(** [create comm dt local] exposes [local] as this rank's window segment
    (collective).  The array is shared, not copied: local loads/stores are
    ordinary array accesses, as with MPI windows. *)
val create : Comm.t -> 'a Datatype.t -> 'a array -> 'a t

(** [local win] is this rank's window segment. *)
val local : 'a t -> 'a array

(** [size_of win target] is the length of [target]'s segment (collected at
    creation). *)
val size_of : 'a t -> int -> int

(** [put win ~target ~target_pos data] queues a store of [data] into the
    target's segment. *)
val put : 'a t -> target:int -> target_pos:int -> 'a array -> unit

(** [accumulate win ~target ~target_pos op data] queues an element-wise
    read-modify-write. *)
val accumulate : 'a t -> target:int -> target_pos:int -> 'a Op.t -> 'a array -> unit

(** [get win ~target ~target_pos ~count] queues a read; the result is
    available from the returned handle after the next {!fence}. *)
val get : 'a t -> target:int -> target_pos:int -> count:int -> 'a pending_get

(** [get_result g] returns the data read.
    @raise Errors.Usage_error before the closing fence. *)
val get_result : 'a pending_get -> 'a array

(** [fence win] closes the current epoch (collective): applies all queued
    puts and accumulates, answers all gets, and synchronizes. *)
val fence : 'a t -> unit

(** [free win] releases the window (local bookkeeping only — call it after
    a closing {!fence} on every rank, like [MPI_Win_free]).  The checker's
    finalize pass reports windows never freed as {!Checker.Window_leak}. *)
val free : 'a t -> unit
