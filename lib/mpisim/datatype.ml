type kind =
  | Basic
  | Contiguous_bytes
  | Struct of { fields : int; payload_bytes : int; padding_bytes : int }
  | Serialized

type 'a t = {
  id : 'a Type.Id.t;
  name : string;
  extent : int;
  pack_factor : float;
  kind : kind;
  default : 'a option;
  mutable committed : bool;
}

let name dt = dt.name
let extent dt = dt.extent
let kind dt = dt.kind
let pack_factor dt = dt.pack_factor
(* Largest count representable in an MPI-3 style [int] count field (2^31-1).
   Counts at or below this bound with extents at or below it cannot overflow
   the 63-bit host int, so the hot path stays two compares + one multiply. *)
let max_small_count = 0x7FFFFFFF

let bytes dt count =
  if count < 0 || (count > max_small_count && count > max_int / dt.extent) then
    raise (Errors.Count_overflow { count; extent = dt.extent });
  count * dt.extent

let split_count count =
  if count < 0 then raise (Errors.Count_overflow { count; extent = 1 });
  (count lsr 31, count land max_small_count)

let join_count ~hi ~lo =
  if hi < 0 || hi > max_small_count || lo < 0 || lo > max_small_count then
    Errors.usage "Datatype.join_count: halves (%d, %d) out of 31-bit range" hi lo;
  (hi lsl 31) lor lo
let equal_witness a b = Type.Id.provably_equal a.id b.id
let pp fmt dt = Format.pp_print_string fmt dt.name

let committed_count = ref 0

let make ?default ~name ~extent ~pack_factor ~kind () =
  { id = Type.Id.make (); name; extent; pack_factor; kind; default; committed = false }

let basic name extent default =
  make ~default ~name ~extent ~pack_factor:1.0 ~kind:Basic ()

let int = basic "int" 8 0
let float = basic "double" 8 0.0
let char = basic "char" 1 '\000'
let bool = basic "bool" 1 false
let int32 = basic "int32" 4 0l
let int64 = basic "int64" 8 0L
let byte = basic "byte" 1 '\000'

let default_elt dt = dt.default

(* Global type pool for memoized derived types.  Looking an entry up
   recovers the type witness by comparing the stored component ids, so the
   stored datatype can be returned at its original type. *)

type pooled =
  | Pooled_pair : 'a t * 'b t * ('a * 'b) t -> pooled
  | Pooled_triple : 'a t * 'b t * 'c t * ('a * 'b * 'c) t -> pooled
  | Pooled_contig : 'a t * int * 'a array t -> pooled

let pool : (string, pooled) Hashtbl.t = Hashtbl.create 64

let pool_key_pair a b = Printf.sprintf "p:%d:%d" (Type.Id.uid a.id) (Type.Id.uid b.id)

let pool_key_triple a b c =
  Printf.sprintf "t:%d:%d:%d" (Type.Id.uid a.id) (Type.Id.uid b.id) (Type.Id.uid c.id)

let pool_key_contig a n = Printf.sprintf "c:%d:%d" (Type.Id.uid a.id) n

let pair (type a b) (a : a t) (b : b t) : (a * b) t =
  let key = pool_key_pair a b in
  let build () =
    let default =
      match (a.default, b.default) with Some x, Some y -> Some (x, y) | _ -> None
    in
    let dt =
      make ?default
        ~name:(Printf.sprintf "(%s * %s)" a.name b.name)
        ~extent:(a.extent + b.extent)
        ~pack_factor:(Float.max a.pack_factor b.pack_factor)
        ~kind:Contiguous_bytes ()
    in
    Hashtbl.replace pool key (Pooled_pair (a, b, dt));
    dt
  in
  match Hashtbl.find_opt pool key with
  | Some (Pooled_pair (a', b', dt)) -> begin
      match (Type.Id.provably_equal a.id a'.id, Type.Id.provably_equal b.id b'.id) with
      | Some Type.Equal, Some Type.Equal -> dt
      | _ -> build ()
    end
  | Some _ | None -> build ()

let triple (type a b c) (a : a t) (b : b t) (c : c t) : (a * b * c) t =
  let key = pool_key_triple a b c in
  let build () =
    let default =
      match (a.default, b.default, c.default) with
      | Some x, Some y, Some z -> Some (x, y, z)
      | _ -> None
    in
    let dt =
      make ?default
        ~name:(Printf.sprintf "(%s * %s * %s)" a.name b.name c.name)
        ~extent:(a.extent + b.extent + c.extent)
        ~pack_factor:(Float.max a.pack_factor (Float.max b.pack_factor c.pack_factor))
        ~kind:Contiguous_bytes ()
    in
    Hashtbl.replace pool key (Pooled_triple (a, b, c, dt));
    dt
  in
  match Hashtbl.find_opt pool key with
  | Some (Pooled_triple (a', b', c', dt)) -> begin
      match
        ( Type.Id.provably_equal a.id a'.id,
          Type.Id.provably_equal b.id b'.id,
          Type.Id.provably_equal c.id c'.id )
      with
      | Some Type.Equal, Some Type.Equal, Some Type.Equal -> dt
      | _ -> build ()
    end
  | Some _ | None -> build ()

let contiguous (type a) (a : a t) n : a array t =
  if n <= 0 then Errors.usage "Datatype.contiguous: block length %d must be positive" n;
  let key = pool_key_contig a n in
  let build () =
    let default = Option.map (fun d -> Array.make n d) a.default in
    let dt =
      make ?default
        ~name:(Printf.sprintf "%s[%d]" a.name n)
        ~extent:(n * a.extent)
        ~pack_factor:a.pack_factor
        ~kind:Contiguous_bytes ()
    in
    Hashtbl.replace pool key (Pooled_contig (a, n, dt));
    dt
  in
  match Hashtbl.find_opt pool key with
  | Some (Pooled_contig (a', n', dt)) -> begin
      match Type.Id.provably_equal a.id a'.id with
      | Some Type.Equal when n = n' -> dt
      | _ -> build ()
    end
  | Some _ | None -> build ()

let custom ?default ~name ~extent () =
  if extent <= 0 then Errors.usage "Datatype.custom: extent %d must be positive" extent;
  make ?default ~name ~extent ~pack_factor:1.0 ~kind:Contiguous_bytes ()

(* Struct layout computation, C-style: each field is aligned to its
   alignment requirement, and the total extent is padded to the maximum
   alignment.  The wire only carries the payload bytes (MPI does not
   transfer gaps) but the pack penalty grows with the fraction of padding,
   modelling the non-contiguous memory accesses of Sec. III-D4. *)
let struct_type ?default ~name fields =
  if fields = [] then Errors.usage "Datatype.struct_type: empty field list";
  let offset = ref 0 in
  let max_align = ref 1 in
  let payload = ref 0 in
  List.iter
    (fun (fname, size, align) ->
      if size <= 0 || align <= 0 then
        Errors.usage "Datatype.struct_type: field %s has invalid size/alignment" fname;
      max_align := max !max_align align;
      let misalign = !offset mod align in
      if misalign <> 0 then offset := !offset + (align - misalign);
      offset := !offset + size;
      payload := !payload + size)
    fields;
  let tail = !offset mod !max_align in
  let extent = if tail = 0 then !offset else !offset + (!max_align - tail) in
  let padding = extent - !payload in
  (* Gapped layouts pay for strided copies; a fully packed struct costs the
     same as contiguous bytes. *)
  let pack_factor = 1.0 +. (1.5 *. float_of_int padding /. float_of_int extent) in
  make ?default ~name
    ~extent:!payload (* only payload bytes travel *)
    ~pack_factor
    ~kind:(Struct { fields = List.length fields; payload_bytes = !payload; padding_bytes = padding })
    ()

let serialized = make ~default:'\000' ~name:"serialized" ~extent:1 ~pack_factor:1.0 ~kind:Serialized ()

let committed dt = dt.committed

let mark_committed dt =
  if not dt.committed then begin
    dt.committed <- true;
    incr committed_count
  end

let live_committed_types () = !committed_count
