(** MPI datatypes with static type-safety.

    A ['a t] describes how values of the OCaml type ['a] appear on the
    simulated wire: their size in bytes ([extent]), their layout class
    ([kind], which determines the pack/unpack cost multiplier, reproducing
    the paper's Sec. III-D4 observation that struct types with alignment
    gaps communicate slower than contiguous bytes), and a runtime type
    witness ([Type.Id]) used to check sender/receiver type matching.

    Matching is by datatype identity: like MPI type signatures, the sender's
    and receiver's datatypes must agree, and a mismatch raises
    {!Errors.Type_mismatch} at matching time.  Derived-type constructors
    ({!pair}, {!contiguous}) are memoized in a global type pool (the
    analogue of Boost.MPI's and KaMPIng's type registries), so structurally
    equal derived types are physically equal and match. *)

(** Layout class of a datatype. *)
type kind =
  | Basic  (** built-in scalar *)
  | Contiguous_bytes  (** trivially-copyable block; fastest layout *)
  | Struct of { fields : int; payload_bytes : int; padding_bytes : int }
      (** explicit struct layout; pays a non-contiguous access penalty and
          does not transfer padding *)
  | Serialized  (** opaque serialized byte stream *)

type 'a t

(** [name dt] is a human-readable type name (used in error messages). *)
val name : 'a t -> string

(** [extent dt] is the number of bytes one element occupies on the wire. *)
val extent : 'a t -> int

(** [kind dt] is the layout class. *)
val kind : 'a t -> kind

(** [pack_factor dt] is the cost multiplier for moving this layout through
    the network model (1.0 for contiguous layouts, >1 for gapped structs). *)
val pack_factor : 'a t -> float

(** [bytes dt count] is [count * extent dt].  Raises
    {!Errors.Count_overflow} when [count] is negative or the product does
    not fit the host integer — the large-count-safe byte-size path every
    transfer goes through (MPI-4 [MPI_Count]). *)
val bytes : 'a t -> int -> int

(** Largest count representable in an MPI-3 style 32-bit signed count field
    ([2^31 - 1]).  Counts above this use the large-count wire encoding
    ({!split_count}/{!join_count}). *)
val max_small_count : int

(** [split_count c] encodes a (possibly > 2^31) count as [(hi, lo)] 31-bit
    halves for transport through 32-bit wire fields.  Raises
    {!Errors.Count_overflow} on negative counts. *)
val split_count : int -> int * int

(** [join_count ~hi ~lo] inverts {!split_count}.  Raises
    {!Errors.Usage_error} when either half is out of 31-bit range. *)
val join_count : hi:int -> lo:int -> int

(** [equal_witness a b] is the type-equality proof if [a] and [b] are the
    same datatype. *)
val equal_witness : 'a t -> 'b t -> ('a, 'b) Type.eq option

(** [pp fmt dt] prints the datatype name. *)
val pp : Format.formatter -> 'a t -> unit

(** [default_elt dt] is a sample element used to allocate receive buffers
    (all basic types have one; derived types inherit it; [custom] types
    provide one explicitly). *)
val default_elt : 'a t -> 'a option

(** {1 Basic datatypes} *)

val int : int t
val float : float t
val char : char t
val bool : bool t
val int32 : int32 t
val int64 : int64 t

(** Raw bytes, extent 1 — the carrier of serialized payloads. *)
val byte : char t

(** {1 Derived datatypes} *)

(** [pair a b] is the product type; memoized, so repeated calls with the
    same components return the identical datatype. *)
val pair : 'a t -> 'b t -> ('a * 'b) t

(** [triple a b c] is the 3-way product type; memoized. *)
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

(** [contiguous dt n] is a block of [n] elements of [dt] treated as one
    element (MPI_Type_contiguous); memoized per [(dt, n)]. *)
val contiguous : 'a t -> int -> 'a array t

(** [custom ~name ~extent ()] declares a fresh user datatype with a
    contiguous-bytes layout (the paper's default for trivially copyable
    types).  Each call creates a distinct type: create it once, then
    share.  [default] supplies a sample element so the library can allocate
    receive buffers of this type (see {!default_elt}). *)
val custom : ?default:'a -> name:string -> extent:int -> unit -> 'a t

(** [struct_type ~name fields] builds an explicit struct layout from
    [(field_name, size, alignment)] triples, computing padded extent like a
    C compiler would.  The resulting type transfers only the payload bytes
    but pays a non-contiguous pack penalty — the trade-off measured in
    Sec. III-D4. *)
val struct_type : ?default:'a -> name:string -> (string * int * int) list -> 'a t

(** [serialized] tags a [char array] buffer as an opaque serialized
    payload. *)
val serialized : char t

(** {1 Commit tracking}

    MPI requires committing derived types before use; the simulated runtime
    does this transparently on first use (Construct-On-First-Use) but tracks
    it so tests can observe that no type is leaked or double-committed. *)

(** [committed dt] is true once the type has been used in communication. *)
val committed : 'a t -> bool

(** [mark_committed dt] records first use. *)
val mark_committed : 'a t -> unit

(** [live_committed_types ()] is the number of committed types currently
    registered (for leak tests). *)
val live_committed_types : unit -> int
