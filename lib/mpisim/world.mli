(** Global state of one simulated machine: the event engine, the network
    model, one mailbox per rank, liveness for failure injection, and the
    profiling counters.

    Communicator {e shared state} ([comm_shared]) lives here: one value per
    communicator shared by all member ranks — it is what ULFM's [revoke]
    flips and what the group mapping reads. *)

type comm_shared = {
  cid : int;
  group : int array;  (** comm rank -> world rank *)
  mutable revoked : bool;
}

type t = {
  engine : Simnet.Engine.t;
  net : Simnet.Netmodel.t;
  size : int;
  mailboxes : Msg.mailbox array;
  env_pool : Msg.pool;  (** world-wide envelope free list *)
  prof : Profiling.t;
  mutable next_comm_id : int;
  alive : Ds.Bitset.t;
  death_times : float array;
      (** world rank -> kill time; [infinity] while alive *)
  mutable fibers : Simnet.Engine.fiber array;
  detection_delay : float;  (** simulated failure-detection latency *)
  shrink_memo : (int * int, comm_shared) Hashtbl.t;
      (** (parent cid, epoch) -> shrunk communicator state *)
  agree_memo : (int * int, agree_cell) Hashtbl.t;
      (** (cid, epoch) -> in-progress agreement *)
  tuning : Coll_algos.Select.t;
      (** per-communicator collective-algorithm overrides and selection *)
  check : Checker.state;  (** correctness-checker state for this world *)
  trace : Trace.Recorder.t;  (** event recorder ({!Trace.Recorder.inert} when off) *)
  comms : (int, comm_shared) Hashtbl.t;
      (** cid -> shared state, for finalize-time revocation queries *)
  exhook : Exhook.t option;
      (** schedule-exploration hooks; [None] = incumbent deterministic run *)
  psets : (string, int array) Hashtbl.t;
      (** named process sets (sessions); ["mpi://world"] is built in *)
  session_comms : (string, comm_shared) Hashtbl.t;
      (** session-derived communicators, memoized per pset key so every
          member obtains the same shared state without collective
          communication or world counters visible to other libraries *)
}

(** State of one in-progress ULFM agreement: survivors deposit their
    contribution and park until the last one completes the round. *)
and agree_cell = {
  mutable acc : int;
  mutable remaining : int;
  mutable agree_waiters : int Simnet.Engine.resumer list;
}

(** [create ~net_params ~size ()] builds a world of [size] ranks, all
    alive; [node] switches to the legacy two-tier hierarchy of
    [(intra-node params, node size)]; [fabric] installs a general tiered
    fabric (see {!Simnet.Netmodel.fabric}) and takes precedence over
    [node]; [trace] installs an event recorder (default: the inert one —
    tracing off). *)
val create :
  ?node:Simnet.Netmodel.params * int ->
  ?fabric:Simnet.Netmodel.fabric ->
  ?trace:Trace.Recorder.t ->
  ?exhook:Exhook.t ->
  net_params:Simnet.Netmodel.params ->
  size:int ->
  unit ->
  t

(** [now w] is the simulated clock. *)
val now : t -> float

(** [match_chooser w] is the wildcard-receive source chooser derived from
    the exploration hooks, or [None] for the incumbent arrival-order
    matching. *)
val match_chooser : t -> (int array -> int) option

(** [arrival_adjust w] is the chaos-layer latency-jitter hook, if any. *)
val arrival_adjust : t -> (src:int -> dst:int -> arrival:float -> float) option

(** [fresh_comm ~world group] registers a new communicator over the given
    world ranks. *)
val fresh_comm : t -> int array -> comm_shared

(** [register_pset w name ranks] names a process set (session support).
    Idempotent for identical membership; re-registering a name with a
    different membership, out-of-range or duplicate ranks, and empty sets
    are usage errors.  The membership is stored sorted. *)
val register_pset : t -> string -> int array -> unit

(** [pset w name] is the sorted membership of a named process set.
    ["mpi://world"] is always present. *)
val pset : t -> string -> int array option

(** [pset_names w] lists registered process-set names, sorted. *)
val pset_names : t -> string list

(** [session_comm w ~key group] is the communicator shared state derived
    from a process set, memoized by [key]: the first caller allocates it,
    later callers (other session members) receive the identical state.
    Unlike {!fresh_comm} via [comm_dup], this requires no collective
    agreement — session isolation. *)
val session_comm : t -> key:string -> int array -> comm_shared

(** [comm_revoked w cid] is true when communicator [cid] exists and was
    revoked (checker query). *)
val comm_revoked : t -> int -> bool

(** [comm_has_failed w cid] is true when communicator [cid] exists and at
    least one of its members has died — even if the communicator was
    never revoked. *)
val comm_has_failed : t -> int -> bool

(** [comm_failed_at w cid] is the earliest simulated time at which a
    member of communicator [cid] died, or [infinity] when all members
    are alive (or [cid] is unknown).  Checker query: traffic already in
    flight at that time may have been legitimately abandoned when the
    failure tore down the surrounding protocol, whereas traffic
    initiated afterwards is still held to the usual leak rules. *)
val comm_failed_at : t -> int -> float

(** [is_alive w r] is rank [r]'s liveness. *)
val is_alive : t -> int -> bool

(** [any_dead w group] is the world rank of a dead member, if any. *)
val any_dead : t -> int array -> int option

(** [kill w r] fails world rank [r] {e now}: its fiber dies on next
    resumption, its posted receives vanish, and every posted receive
    anywhere that expects a message from [r] (directly or via wildcard over
    a group containing [r]) fails with [Process_failed] after the detection
    delay. *)
val kill : t -> int -> unit

(** [revoke w shared] marks the communicator revoked and fails every posted
    receive on it with [Comm_revoked]. *)
val revoke : t -> comm_shared -> unit
