(** Point-to-point communication (blocking and non-blocking).

    Buffers are plain OCaml arrays with an optional [pos]/[count] window,
    mirroring MPI's (pointer, count, datatype) triples.  All functions
    must be called from inside a rank fiber.

    The optional [ctx] argument separates user traffic from
    library-internal collective traffic; it defaults to user context and is
    only set to [Internal] by the collective algorithms. *)

(** Match any sender. *)
val any_source : int

(** Match any tag. *)
val any_tag : int

(** [send comm dt buf ~dst ~tag] blocks until the message is injected into
    the network (standard-mode send: local completion). *)
val send :
  ?ctx:Msg.ctx ->
  ?pos:int ->
  ?count:int ->
  Comm.t ->
  'a Datatype.t ->
  'a array ->
  dst:int ->
  tag:int ->
  unit

(** [isend comm dt buf ~dst ~tag] is the non-blocking send; the request
    completes at injection time.  The runtime copies the payload eagerly, so
    the simulation itself is race-free — the ownership discipline that makes
    this safe in real MPI is enforced by the {e KaMPIng layer} on top. *)
val isend :
  ?ctx:Msg.ctx ->
  ?pos:int ->
  ?count:int ->
  Comm.t ->
  'a Datatype.t ->
  'a array ->
  dst:int ->
  tag:int ->
  Request.t

(** [issend comm dt buf ~dst ~tag] is the non-blocking {e synchronous} send:
    the request completes only once the receiver has matched the message
    (the building block of the NBX sparse all-to-all algorithm). *)
val issend :
  ?ctx:Msg.ctx ->
  ?pos:int ->
  ?count:int ->
  Comm.t ->
  'a Datatype.t ->
  'a array ->
  dst:int ->
  tag:int ->
  Request.t

(** [recv comm dt buf ~src ~tag] blocks until a matching message arrives and
    is copied into [buf] starting at [pos]; [count] bounds the capacity.
    @raise Errors.Type_mismatch on datatype disagreement
    @raise Errors.Truncated if the message does not fit
    @raise Errors.Process_failed if the awaited peer has failed *)
val recv :
  ?ctx:Msg.ctx ->
  ?pos:int ->
  ?count:int ->
  Comm.t ->
  'a Datatype.t ->
  'a array ->
  src:int ->
  tag:int ->
  Request.status

(** [irecv comm dt buf ~src ~tag] posts a non-blocking receive. *)
val irecv :
  ?ctx:Msg.ctx ->
  ?pos:int ->
  ?count:int ->
  Comm.t ->
  'a Datatype.t ->
  'a array ->
  src:int ->
  tag:int ->
  Request.t

(** [probe comm ~src ~tag] blocks until a matching message is available
    (without receiving it) and returns its status — the way to learn a
    message's size before allocating the receive buffer. *)
val probe : ?ctx:Msg.ctx -> Comm.t -> src:int -> tag:int -> Request.status

(** [iprobe comm ~src ~tag] checks for a matching unexpected message without
    receiving it. *)
val iprobe : ?ctx:Msg.ctx -> Comm.t -> src:int -> tag:int -> Request.status option

(** [sendrecv comm dt ~send ~dst ~stag ~recv ~src ~rtag] exchanges messages
    with two (possibly different) peers without deadlocking. *)
val sendrecv :
  ?ctx:Msg.ctx ->
  Comm.t ->
  'a Datatype.t ->
  send:'a array ->
  ?send_pos:int ->
  ?send_count:int ->
  dst:int ->
  stag:int ->
  recv:'a array ->
  ?recv_pos:int ->
  ?recv_count:int ->
  src:int ->
  rtag:int ->
  unit ->
  Request.status

(** [sendrecv_replace comm dt buf ~dst ~stag ~src ~rtag] sends the buffer's
    contents and receives the reply into the same buffer
    (MPI_Sendrecv_replace). *)
val sendrecv_replace :
  ?ctx:Msg.ctx ->
  ?pos:int ->
  ?count:int ->
  Comm.t ->
  'a Datatype.t ->
  'a array ->
  dst:int ->
  stag:int ->
  src:int ->
  rtag:int ->
  Request.status

(** {1 Large-count transfers (MPI-4 [MPI_Count])}

    The sparse path moves a transfer of any representable byte size through
    the full matching, cost-model, checker and trace machinery {e without}
    materializing an element buffer — counts above
    {!Datatype.max_small_count} (2 GiB-class transfers) are first-class.
    A sparse message matched by a buffered [recv] passes the same type and
    capacity checks but copies nothing. *)

(** [send_sparse comm dt ~count ~dst ~tag] sends [count] elements of [dt]
    without a backing buffer.
    @raise Errors.Count_overflow when [count * extent] is unrepresentable *)
val send_sparse : ?ctx:Msg.ctx -> Comm.t -> 'a Datatype.t -> count:int -> dst:int -> tag:int -> unit

(** [recv_sparse comm dt ~capacity ~src ~tag] receives a message of up to
    [capacity] elements without a backing buffer, returning its status
    (including the true large count).
    @raise Errors.Truncated when the sender's count exceeds [capacity] *)
val recv_sparse :
  ?ctx:Msg.ctx -> Comm.t -> 'a Datatype.t -> capacity:int -> src:int -> tag:int -> Request.status

(** {1 Persistent operations (MPI-4 §3.9)}

    The [*_init] calls validate everything once — communicator, tag, window
    bounds, datatype commit, peer rank — charge the per-call setup cost
    once, register the handle with the checker, and return an {e inactive}
    {!Persist.t}.  Each {!Persist.start} then reuses the validated fast
    path and the world's pooled envelopes, paying only the network cost:
    matching-once is what the persistent API amortizes. *)

(** [send_init comm dt buf ~dst ~tag] is the persistent standard-mode send;
    each round's request completes at injection time (like {!isend}).  The
    payload is re-read from [buf] at each [start]. *)
val send_init :
  ?ctx:Msg.ctx ->
  ?pos:int ->
  ?count:int ->
  Comm.t ->
  'a Datatype.t ->
  'a array ->
  dst:int ->
  tag:int ->
  Persist.t

(** [ssend_init comm dt buf ~dst ~tag] is the persistent {e synchronous}
    send: each round completes only once the receiver matched it (the
    persistent analogue of {!issend}, safe under NBX-style termination). *)
val ssend_init :
  ?ctx:Msg.ctx ->
  ?pos:int ->
  ?count:int ->
  Comm.t ->
  'a Datatype.t ->
  'a array ->
  dst:int ->
  tag:int ->
  Persist.t

(** [recv_init comm dt buf ~src ~tag] is the persistent receive ([src] may
    be {!any_source}).  The handle supports {!Persist.cancel}, so a
    standing channel can be retired before [free]. *)
val recv_init :
  ?ctx:Msg.ctx ->
  ?pos:int ->
  ?count:int ->
  Comm.t ->
  'a Datatype.t ->
  'a array ->
  src:int ->
  tag:int ->
  Persist.t

(** {1 Partitioned communication (MPI-4 §4)}

    [count] is {e per partition}; the buffer must hold
    [partitions * count] elements.  Each partition travels independently:
    the sender releases partition [i] with {!Persist.pready}, the receiver
    observes arrival with {!Persist.parrived}, and the round's request
    completes when every partition has transferred. *)

val psend_init :
  ?ctx:Msg.ctx ->
  Comm.t ->
  'a Datatype.t ->
  'a array ->
  partitions:int ->
  count:int ->
  dst:int ->
  tag:int ->
  Persist.t

(** [precv_init comm dt buf ~partitions ~count ~src ~tag] — the wildcard
    source is not allowed (as in MPI-4). *)
val precv_init :
  ?ctx:Msg.ctx ->
  Comm.t ->
  'a Datatype.t ->
  'a array ->
  partitions:int ->
  count:int ->
  src:int ->
  tag:int ->
  Persist.t
