(** Error conditions of the simulated MPI runtime.

    Mirroring the paper's taxonomy (Sec. III-G): {e usage errors} (invalid
    parameters, type mismatches, truncation) are programming bugs and raise
    {!Usage_error}-family exceptions; {e failures} (process faults, revoked
    communicators) are runtime conditions that fault-tolerant programs may
    catch and recover from. *)

(** Invalid parameters passed to an MPI call (counts out of range, bad rank,
    tag misuse, ...). *)
exception Usage_error of string

(** Sender and receiver datatypes do not match.  Carries both type names. *)
exception Type_mismatch of { sent : string; expected : string }

(** The matched message carries more elements than the receive buffer can
    hold. *)
exception Truncated of { sent : int; capacity : int }

(** [count * extent] does not fit the host integer range, or a negative
    count was supplied to a large-count path (MPI-4 [MPI_Count]
    semantics: the byte size of a transfer must be representable). *)
exception Count_overflow of { count : int; extent : int }

(** A peer process involved in the operation has failed (ULFM).  Carries the
    world rank of (one of) the failed process(es). *)
exception Process_failed of { world_rank : int }

(** The communicator was revoked (ULFM). *)
exception Comm_revoked

(** [usage fmt ...] raises {!Usage_error} with a formatted message. *)
val usage : ('a, Format.formatter, unit, 'b) format4 -> 'a
