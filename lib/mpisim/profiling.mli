(** PMPI-style profiling interface.

    Every logical MPI call entering the runtime is counted by name, along
    with per-message statistics.  The paper uses MPI's profiling interface
    to verify that KaMPIng issues {e only the expected} MPI calls when it
    computes default parameters internally (Sec. III-H); our test suite does
    the same with this module. *)

type t

(** A snapshot of the counters at one point in time. *)
type snapshot = {
  calls : (string * int) list;  (** logical MPI calls by name, sorted *)
  algo_calls : (string * int) list;
      (** per-call collective-algorithm choices, recorded as annotated
          names like ["MPI_Allreduce[rabenseifner]"]; kept out of [calls]
          so the plain-call counts retain their PMPI meaning *)
  messages : int;  (** point-to-point messages transferred *)
  bytes : int;  (** payload bytes transferred *)
}

(** [create ()] is a fresh counter set. *)
val create : unit -> t

(** [record_call t name] counts one logical MPI call. *)
val record_call : t -> string -> unit

(** [record_algo t name] counts one collective-algorithm choice under its
    annotated name (e.g. ["MPI_Bcast[binomial]"]). *)
val record_algo : t -> string -> unit

(** [record_message t ~bytes] counts one wire message. *)
val record_message : t -> bytes:int -> unit

(** [snapshot t] reads the counters. *)
val snapshot : t -> snapshot

(** [reset t] zeroes all counters. *)
val reset : t -> unit

(** [calls_of name s] is the count for a given call name in a snapshot;
    annotated algorithm names are looked up transparently. *)
val calls_of : string -> snapshot -> int

(** [algo_calls_of name s] is the count for an annotated algorithm name. *)
val algo_calls_of : string -> snapshot -> int

(** [diff ~before ~after] subtracts two snapshots counter-wise. *)
val diff : before:snapshot -> after:snapshot -> snapshot

(** [pp fmt s] prints a snapshot for debugging. *)
val pp : Format.formatter -> snapshot -> unit
