module Engine = Simnet.Engine
module Netmodel = Simnet.Netmodel

let any_source = Msg.any_source
let any_tag = Msg.any_tag

let check_tag ~ctx tag =
  match (ctx : Msg.ctx) with
  | User -> if tag < 0 then Errors.usage "user message tags must be non-negative (got %d)" tag
  | Internal -> ()

(* Receive-side patterns may use the wildcard. *)
let check_recv_tag ~ctx tag = if tag <> any_tag then check_tag ~ctx tag

let window_bounds ~what buf pos count =
  let len = Array.length buf in
  let count = match count with Some c -> c | None -> len - pos in
  if pos < 0 || count < 0 || pos + count > len then
    Errors.usage "%s: window [%d, %d) exceeds buffer of length %d" what pos (pos + count) len;
  count

let record w name = Profiling.record_call w.World.prof name

let my_world comm = Comm.world_rank_of comm (Comm.rank comm)

let track comm ~op req =
  let w = Comm.world comm in
  Checker.track_request w.World.check ~rank:(my_world comm) ~comm:(Comm.id comm) ~op
    ~at:(World.now w) req

let record_mismatch comm ~op ~src ~tag e =
  Checker.record_match_error (Comm.world comm).World.check ~rank:(my_world comm)
    ~comm:(Comm.id comm) ~op ~src ~tag e

(* Record a call span around [f] when this is a user-level call on a traced
   run.  [Fun.protect] spans the fiber's suspensions, so the span covers the
   full blocking time of the call; exceptional exits are closed too. *)
let traced ~ctx comm ~op f =
  let w = Comm.world comm in
  if ctx <> Msg.User || not (Trace.Recorder.active w.World.trace) then f ()
  else begin
    let rank = my_world comm in
    let t0 = World.now w in
    Fun.protect
      ~finally:(fun () ->
        Trace.Recorder.add_span w.World.trace
          {
            Trace.Event.sp_rank = rank;
            sp_op = op;
            sp_cat = "p2p";
            sp_comm = Comm.id comm;
            sp_seq = -1;
            sp_t0 = t0;
            sp_t1 = World.now w;
          })
      f
  end

(* Stamp the receive-side timestamps on a matched message's trace record. *)
let stamp_env_match (env : Msg.envelope) ~posted ~time =
  match env.Msg.trace with
  | Some m -> Trace.Event.stamp_match m ~posted ~time
  | None -> ()

(* Book the message into the network and schedule its arrival.  Returns the
   injection-complete time (when the sender's buffer is reusable). *)
let inject comm dt buf pos count ~dst ~tag ~ctx ~on_matched =
  Comm.check_active comm;
  check_tag ~ctx tag;
  Datatype.mark_committed dt;
  let count = window_bounds ~what:"send" buf pos count in
  let w = Comm.world comm in
  let src_world = Comm.world_rank_of comm (Comm.rank comm) in
  let dst_world = Comm.world_rank_of comm dst in
  let bytes = Datatype.bytes dt count in
  Profiling.record_message w.World.prof ~bytes;
  let now = World.now w in
  let injected, arrival =
    Netmodel.transfer w.World.net ~now ~src:src_world ~dst:dst_world ~bytes
      ~pack_factor:(Datatype.pack_factor dt)
  in
  (* Chaos-layer latency jitter: the adjusted arrival is used for both the
     trace record and the delivery event, so traced explored runs stay
     self-consistent.  The hook preserves per-(src,dst) FIFO order. *)
  let arrival =
    match World.arrival_adjust w with
    | None -> arrival
    | Some adj -> Float.max arrival (adj ~src:src_world ~dst:dst_world ~arrival)
  in
  (* Record every injected message — internal collective traffic included,
     so the critical path can thread through collectives.  The arrival time
     is known now (the network model is deterministic), so no extra event is
     scheduled: tracing must not perturb the event count. *)
  let trace_msg =
    if Trace.Recorder.active w.World.trace then
      Some
        (Trace.Recorder.add_message w.World.trace ~src:src_world ~dst:dst_world ~tag ~bytes
           ~user:(ctx = Msg.User) ~sent:now ~arrived:arrival)
    else None
  in
  if World.is_alive w dst_world then begin
    let env =
      Msg.make_envelope w.World.env_pool ~src:(Comm.rank comm) ~src_world ~tag
        ~comm_id:(Comm.id comm) ~ctx ~count ~bytes ~sent_at:now
        ~payload:(Msg.Packed (dt, Array.sub buf pos count))
        ~on_matched ~trace:trace_msg
    in
    Engine.schedule w.World.engine
      ~delay:(arrival -. now)
      (fun () -> Msg.arrive w.World.env_pool w.World.mailboxes.(dst_world) env)
  end;
  injected

let send ?(ctx = Msg.User) ?(pos = 0) ?count comm dt buf ~dst ~tag =
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Send";
  traced ~ctx comm ~op:"MPI_Send" @@ fun () ->
  let injected = inject comm dt buf pos count ~dst ~tag ~ctx ~on_matched:None in
  Engine.delay w.World.engine (injected -. World.now w)

let isend ?(ctx = Msg.User) ?(pos = 0) ?count comm dt buf ~dst ~tag =
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Isend";
  let req = Request.create w.World.engine in
  if ctx = Msg.User then track comm ~op:"MPI_Isend" req;
  let count' = window_bounds ~what:"isend" buf pos count in
  traced ~ctx comm ~op:"MPI_Isend" @@ fun () ->
  let injected = inject comm dt buf pos count ~dst ~tag ~ctx ~on_matched:None in
  Engine.schedule w.World.engine
    ~delay:(injected -. World.now w)
    (fun () -> Request.complete req { source = dst; tag; count = count' });
  req

let issend ?(ctx = Msg.User) ?(pos = 0) ?count comm dt buf ~dst ~tag =
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Issend";
  let req = Request.create w.World.engine in
  if ctx = Msg.User then track comm ~op:"MPI_Issend" req;
  let count' = window_bounds ~what:"issend" buf pos count in
  let latency = (Netmodel.params w.World.net).latency in
  let on_matched =
    Some
      (fun () ->
        (* The acknowledgment travels back to the sender. *)
        Engine.schedule w.World.engine ~delay:latency (fun () ->
            Request.complete req { source = dst; tag; count = count' }))
  in
  traced ~ctx comm ~op:"MPI_Issend" @@ fun () ->
  ignore (inject comm dt buf pos count ~dst ~tag ~ctx ~on_matched);
  req

(* Copy a matched envelope into the receive window, enforcing MPI's type
   and size rules. *)
let copy_payload (type a) (env : Msg.envelope) (rdt : a Datatype.t) (buf : a array) pos capacity :
    (Request.status, exn) result =
  let (Msg.Packed (sdt, data)) = env.payload in
  match Datatype.equal_witness sdt rdt with
  | None ->
      Error (Errors.Type_mismatch { sent = Datatype.name sdt; expected = Datatype.name rdt })
  | Some Type.Equal ->
      let n = Array.length data in
      if n > capacity then Error (Errors.Truncated { sent = n; capacity })
      else begin
        Array.blit data 0 buf pos n;
        Ok { Request.source = env.src; tag = env.tag; count = n }
      end

(* Detect whether a receive from [src] can never be satisfied because the
   peer (or, for wildcards, some group member) has failed. *)
let dead_peer comm ~src =
  let w = Comm.world comm in
  if src = any_source then World.any_dead w (Comm.group comm)
  else begin
    let sw = Comm.world_rank_of comm src in
    if World.is_alive w sw then None else Some sw
  end

let make_pending comm ~src ~tag ~ctx ~deliver ~on_fail : Msg.pending_recv =
  {
    Msg.want_src = src;
    want_tag = tag;
    want_comm = Comm.id comm;
    want_ctx = ctx;
    src_world = (if src = any_source then -1 else Comm.world_rank_of comm src);
    comm_group = Comm.group comm;
    deliver;
    on_fail;
    owner_world = Comm.world_rank_of comm (Comm.rank comm);
    live = true;
  }

let recv ?(ctx = Msg.User) ?(pos = 0) ?count comm dt buf ~src ~tag =
  Comm.check_active comm;
  check_recv_tag ~ctx tag;
  Datatype.mark_committed dt;
  let capacity = window_bounds ~what:"recv" buf pos count in
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Recv";
  traced ~ctx comm ~op:"MPI_Recv" @@ fun () ->
  let posted = World.now w in
  let mb = w.World.mailboxes.(my_world comm) in
  match
    Msg.take_unexpected ?choose:(World.match_chooser w) mb ~src ~tag ~comm:(Comm.id comm) ~ctx
  with
  | Some env -> begin
      stamp_env_match env ~posted ~time:(World.now w);
      let copied = copy_payload env dt buf pos capacity in
      Msg.release w.World.env_pool env;
      match copied with
      | Ok st -> st
      | Error e ->
          record_mismatch comm ~op:"MPI_Recv" ~src ~tag e;
          raise e
    end
  | None -> begin
      match dead_peer comm ~src with
      | Some wr ->
          Engine.delay w.World.engine w.World.detection_delay;
          raise (Errors.Process_failed { world_rank = wr })
      | None ->
          Engine.suspend w.World.engine (fun resumer ->
              let deliver env =
                stamp_env_match env ~posted ~time:(World.now w);
                match copy_payload env dt buf pos capacity with
                | Ok st -> Engine.resume resumer st
                | Error e ->
                    record_mismatch comm ~op:"MPI_Recv" ~src ~tag e;
                    Engine.fail resumer e
              in
              let on_fail e = Engine.fail resumer e in
              Msg.post mb (make_pending comm ~src ~tag ~ctx ~deliver ~on_fail))
    end

let irecv ?(ctx = Msg.User) ?(pos = 0) ?count comm dt buf ~src ~tag =
  Comm.check_active comm;
  check_recv_tag ~ctx tag;
  Datatype.mark_committed dt;
  let capacity = window_bounds ~what:"irecv" buf pos count in
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Irecv";
  let req = Request.create w.World.engine in
  if ctx = Msg.User then track comm ~op:"MPI_Irecv" req;
  let mb = w.World.mailboxes.(my_world comm) in
  traced ~ctx comm ~op:"MPI_Irecv" @@ fun () ->
  let posted = World.now w in
  (match
     Msg.take_unexpected ?choose:(World.match_chooser w) mb ~src ~tag ~comm:(Comm.id comm) ~ctx
   with
  | Some env -> begin
      stamp_env_match env ~posted ~time:(World.now w);
      let copied = copy_payload env dt buf pos capacity in
      Msg.release w.World.env_pool env;
      match copied with
      | Ok st -> Request.complete req st
      | Error e ->
          record_mismatch comm ~op:"MPI_Irecv" ~src ~tag e;
          Request.abort req e
    end
  | None -> begin
      match dead_peer comm ~src with
      | Some wr ->
          Engine.schedule w.World.engine ~delay:w.World.detection_delay (fun () ->
              Request.abort req (Errors.Process_failed { world_rank = wr }))
      | None ->
          let deliver env =
            stamp_env_match env ~posted ~time:(World.now w);
            match copy_payload env dt buf pos capacity with
            | Ok st -> Request.complete req st
            | Error e ->
                record_mismatch comm ~op:"MPI_Irecv" ~src ~tag e;
                Request.abort req e
          in
          let on_fail e = Request.abort req e in
          Msg.post mb (make_pending comm ~src ~tag ~ctx ~deliver ~on_fail)
    end);
  req

let probe ?(ctx = Msg.User) comm ~src ~tag =
  Comm.check_active comm;
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Probe";
  traced ~ctx comm ~op:"MPI_Probe" @@ fun () ->
  let mb = w.World.mailboxes.(Comm.world_rank_of comm (Comm.rank comm)) in
  match Msg.peek_unexpected mb ~src ~tag ~comm:(Comm.id comm) ~ctx with
  | Some env -> { Request.source = env.Msg.src; tag = env.Msg.tag; count = env.Msg.count }
  | None -> begin
      match dead_peer comm ~src with
      | Some wr ->
          Engine.delay w.World.engine w.World.detection_delay;
          raise (Errors.Process_failed { world_rank = wr })
      | None ->
          Engine.suspend w.World.engine (fun resumer ->
              let notify (env : Msg.envelope) =
                Engine.resume resumer
                  { Request.source = env.src; tag = env.tag; count = env.count }
              in
              Msg.post_probe mb
                {
                  Msg.p_src = src;
                  p_tag = tag;
                  p_comm = Comm.id comm;
                  p_ctx = ctx;
                  p_src_world = (if src = any_source then -1 else Comm.world_rank_of comm src);
                  p_group = Comm.group comm;
                  notify;
                  p_on_fail = (fun e -> Engine.fail resumer e);
                  p_owner_world = my_world comm;
                  p_live = true;
                })
    end

let iprobe ?(ctx = Msg.User) comm ~src ~tag =
  Comm.check_active comm;
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Iprobe";
  let mb = w.World.mailboxes.(Comm.world_rank_of comm (Comm.rank comm)) in
  Msg.peek_unexpected mb ~src ~tag ~comm:(Comm.id comm) ~ctx
  |> Option.map (fun (env : Msg.envelope) ->
         { Request.source = env.src; tag = env.tag; count = env.count })

let sendrecv ?(ctx = Msg.User) comm dt ~send:sbuf ?(send_pos = 0) ?send_count ~dst ~stag ~recv:rbuf
    ?(recv_pos = 0) ?recv_count ~src ~rtag () =
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Sendrecv";
  traced ~ctx comm ~op:"MPI_Sendrecv" @@ fun () ->
  let sreq = isend ~ctx ~pos:send_pos ?count:send_count comm dt sbuf ~dst ~tag:stag in
  let status = recv ~ctx ~pos:recv_pos ?count:recv_count comm dt rbuf ~src ~tag:rtag in
  ignore (Request.wait sreq);
  status

let sendrecv_replace ?(ctx = Msg.User) ?(pos = 0) ?count comm dt buf ~dst ~stag ~src ~rtag =
  let w = Comm.world comm in
  if ctx = Msg.User then record w "MPI_Sendrecv_replace";
  traced ~ctx comm ~op:"MPI_Sendrecv_replace" @@ fun () ->
  (* the outgoing data is snapshotted at injection time (the runtime copies
     payloads eagerly), so receiving into the same window is safe *)
  let sreq = isend ~ctx ~pos ?count comm dt buf ~dst ~tag:stag in
  let status = recv ~ctx ~pos ?count comm dt buf ~src ~tag:rtag in
  ignore (Request.wait sreq);
  status
